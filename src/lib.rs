//! # acdc — AC/DC TCP, virtual congestion control enforcement
//!
//! Umbrella crate re-exporting the whole workspace (see the README for the
//! layered architecture). The fastest way in is the experiment harness:
//!
//! ```
//! use acdc::core::{Scheme, Testbed};
//! use acdc::stats::time::MILLISECOND;
//!
//! // Two-pair dumbbell; guests run CUBIC but AC/DC enforces DCTCP.
//! let mut tb = Testbed::dumbbell(2, Scheme::acdc(), 9000);
//! let flow = tb.add_bulk(0, 2, Some(1 << 20), 0); // 1 MB transfer
//! tb.run_until(50 * MILLISECOND);
//!
//! assert_eq!(tb.acked_bytes(flow), 1 << 20, "transfer completed");
//! let rewrites = tb
//!     .host_mut(0)
//!     .datapath()
//!     .counters()
//!     .rwnd_rewrites
//!     .load(std::sync::atomic::Ordering::Relaxed);
//! assert!(rewrites > 0, "the vSwitch enforced its window");
//! ```
//!
//! Individual layers are available under their own names:
//! [`packet`] (wire formats), [`netsim`] (the simulator), [`cc`]
//! (congestion-control algorithms), [`tcp`] (guest endpoints),
//! [`vswitch`] (the AC/DC datapath), [`workloads`], [`stats`], and
//! [`core`] (hosts, schemes, topologies).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use acdc_cc as cc;
pub use acdc_core as core;
pub use acdc_faults as faults;
pub use acdc_netsim as netsim;
pub use acdc_packet as packet;
pub use acdc_stats as stats;
pub use acdc_tcp as tcp;
pub use acdc_vswitch as vswitch;
pub use acdc_workloads as workloads;
