//! Incast: N senders hammer one receiver (Figures 18/19).
//!
//! ```text
//! cargo run --release --example incast -- [senders]
//! ```
//!
//! Compares the three schemes at the given fan-in (default 32) and prints
//! throughput, fairness, RTT and drop rate — including the paper's
//! observation that AC/DC beats even native DCTCP on RTT because its
//! byte-granular windows can drop below DCTCP's 2-packet floor.

use acdc_core::{Scheme, Testbed};
use acdc_stats::time::{MILLISECOND, SECOND};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    if !(2..=47).contains(&n) {
        eprintln!("error: senders must be in 2..=47 (got {n})");
        std::process::exit(2);
    }
    println!("incast: {n} senders → 1 receiver, 9 KB MTU, 10 GbE");
    println!(
        "{:<22} {:>12} {:>8} {:>12} {:>14} {:>10}",
        "scheme", "avg Mbps", "jain", "p50 RTT", "p99.9 RTT", "drops"
    );

    for scheme in [Scheme::Cubic, Scheme::Dctcp, Scheme::acdc()] {
        let name = scheme.name();
        // Hosts 0..n = senders, n = receiver, n+1 = RTT probe.
        let mut tb = Testbed::star(n + 2, scheme, 9000);
        let flows: Vec<_> = (0..n).map(|s| tb.add_bulk(s, n, None, 0)).collect();
        let probe = tb.add_pingpong(n + 1, n, 64, MILLISECOND, 0);

        let dur = SECOND / 2;
        tb.run_until(dur / 4);
        let base: Vec<u64> = flows.iter().map(|&h| tb.acked_bytes(h)).collect();
        tb.run_until(dur);

        let w = (dur - dur / 4) as f64;
        let tputs: Vec<f64> = flows
            .iter()
            .zip(&base)
            .map(|(&h, &b)| (tb.acked_bytes(h) - b) as f64 * 8.0 / w * 1000.0)
            .collect();
        let avg = tputs.iter().sum::<f64>() / tputs.len() as f64;
        let jain = acdc_stats::jain_index(&tputs).unwrap();

        let mut rtt = acdc_stats::Distribution::new();
        rtt.extend(tb.rtt_samples_ms(probe).into_iter().skip(5));
        println!(
            "{name:<22} {avg:>12.0} {jain:>8.3} {:>9.3} ms {:>11.3} ms {:>9.3}%",
            rtt.percentile(50.0).unwrap_or(f64::NAN),
            rtt.percentile(99.9).unwrap_or(f64::NAN),
            tb.drop_rate() * 100.0
        );
    }
    println!(
        "\nfair share would be {:.0} Mbps per flow",
        10_000.0 / n as f64
    );
}
