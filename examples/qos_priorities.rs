//! Per-flow QoS via priority-weighted congestion control (§3.4, Eq. 1).
//!
//! ```text
//! cargo run --release --example qos_priorities -- 4 4 2 1
//! ```
//!
//! Starts one long-lived flow per β argument (on a 4-point scale, as in
//! Figure 13) through the AC/DC vSwitch, and shows the resulting
//! bandwidth differentiation — no rate limiters, no switch QoS classes,
//! just Equation 1 inside the vSwitch.

use std::sync::Arc;

use acdc_cc::CcKind;
use acdc_core::{Scheme, Testbed};
use acdc_stats::time::SECOND;
use acdc_vswitch::CcPolicy;

fn main() {
    let quarters: Vec<u8> = {
        let args: Vec<u8> = std::env::args()
            .skip(1)
            .map(|a| a.parse().expect("betas are integers 0..=4"))
            .collect();
        if args.is_empty() {
            vec![4, 3, 2, 1]
        } else {
            args
        }
    };
    assert!(quarters.iter().all(|&q| q <= 4), "betas are quarters 0..=4");
    let n = quarters.len();
    println!("per-flow priorities (β/4): {quarters:?}");

    // AC/DC with a custom policy: β looked up by the sender's address.
    let betas: Arc<Vec<f64>> = Arc::new(quarters.iter().map(|&q| f64::from(q) / 4.0).collect());
    let policy_betas = Arc::clone(&betas);
    let mut tb = Testbed::dumbbell_with(n, Scheme::acdc(), 9000, move |cfg| {
        let betas = Arc::clone(&policy_betas);
        cfg.policy = CcPolicy::Custom(Arc::new(move |key| {
            let idx = (key.src_ip[3] as usize).saturating_sub(1);
            betas
                .get(idx)
                .map(|&b| CcKind::DctcpPriority(b))
                .unwrap_or(CcKind::Dctcp)
        }));
    });

    let flows: Vec<_> = (0..n).map(|i| tb.add_bulk(i, n + i, None, 0)).collect();
    let dur = SECOND;
    tb.run_until(dur / 5);
    let base: Vec<u64> = flows.iter().map(|&h| tb.acked_bytes(h)).collect();
    tb.run_until(dur);

    let w = (dur - dur / 5) as f64;
    println!("{:<8} {:>6} {:>12}", "flow", "β/4", "tput (Gbps)");
    for (i, (&h, &b)) in flows.iter().zip(&base).enumerate() {
        let gbps = (tb.acked_bytes(h) - b) as f64 * 8.0 / w;
        println!(
            "{:<8} {:>6} {:>12.2}",
            format!("f{}", i + 1),
            quarters[i],
            gbps
        );
    }
    println!("\nhigher β ⇒ gentler backoff to marks ⇒ proportionally more bandwidth");
}
