//! The headline demo: five guests with five *different* TCP stacks share
//! one bottleneck — first on plain OVS (Figure 1's chaos), then under
//! AC/DC (Figure 17's fairness), without touching the guests.
//!
//! ```text
//! cargo run --release --example mixed_stacks
//! ```

use acdc_cc::CcKind;
use acdc_core::{ConnTaps, Scheme, Testbed};
use acdc_stats::time::SECOND;

const STACKS: [CcKind; 5] = [
    CcKind::Illinois,
    CcKind::Cubic,
    CcKind::Reno,
    CcKind::Vegas,
    CcKind::HighSpeed,
];

fn run(scheme: Scheme) -> Vec<f64> {
    let mut tb = Testbed::dumbbell(5, scheme, 9000);
    let flows: Vec<_> = STACKS
        .iter()
        .enumerate()
        .map(|(i, &cc)| {
            tb.add_bulk_with_cc(
                i,
                5 + i,
                cc,
                false,
                None,
                (i as u64) * 100_000,
                ConnTaps::default(),
            )
        })
        .collect();
    let dur = SECOND;
    tb.run_until(dur / 5);
    let base: Vec<u64> = flows.iter().map(|&h| tb.acked_bytes(h)).collect();
    tb.run_until(dur);
    flows
        .iter()
        .zip(&base)
        .map(|(&h, &b)| (tb.acked_bytes(h) - b) as f64 * 8.0 / (dur - dur / 5) as f64)
        .collect()
}

fn main() {
    println!("five guests, five stacks, one 10 G bottleneck\n");
    let plain = run(Scheme::Plain {
        host_cc: CcKind::Cubic,
        ecn: false,
    });
    let acdc = run(Scheme::acdc());

    println!(
        "{:<12} {:>18} {:>18}",
        "guest stack", "plain OVS (Gbps)", "under AC/DC (Gbps)"
    );
    for (i, kind) in STACKS.iter().enumerate() {
        println!("{:<12} {:>18.2} {:>18.2}", kind.name(), plain[i], acdc[i]);
    }
    let j = |v: &[f64]| acdc_stats::jain_index(v).unwrap();
    println!(
        "\nJain fairness: plain {:.3} → AC/DC {:.3}",
        j(&plain),
        j(&acdc)
    );
    println!("the guests did not change — the vSwitch did.");
}
