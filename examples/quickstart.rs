//! Quickstart: put AC/DC under a CUBIC guest and watch the vSwitch
//! enforce DCTCP.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a two-pair dumbbell (Figure 7a, shrunk), runs a 50 MB transfer
//! from a CUBIC guest with AC/DC enabled, and prints what the datapath
//! did: flows tracked, PACK feedback exchanged, receive-window rewrites,
//! and the throughput/latency the guest observed.

use std::sync::atomic::Ordering;

use acdc_core::{Scheme, Testbed};
use acdc_stats::time::{MILLISECOND, SECOND};

fn main() {
    // The paper's three configurations, one line each:
    //   Scheme::Cubic  — host CUBIC, plain OVS, no switch marking
    //   Scheme::Dctcp  — host DCTCP, plain OVS, WRED/ECN marking
    //   Scheme::acdc() — host CUBIC, AC/DC enforcing DCTCP in the vSwitch
    let scheme = Scheme::acdc();
    println!("scheme: {}", scheme.name());

    // 2 sender/receiver pairs over a shared 10 G trunk, 9 KB MTU.
    let mut tb = Testbed::dumbbell(2, scheme, 9000);

    // A 50 MB transfer from host 0 to host 2, plus an RTT probe on the
    // second pair so we can see the queueing the transfer causes.
    let flow = tb.add_bulk(0, 2, Some(50 << 20), 0);
    let probe = tb.add_pingpong(1, 3, 64, MILLISECOND, 0);

    // Run one virtual second.
    tb.run_until(SECOND);

    // What did the guest see?
    let fct = tb.fct_of(flow);
    let sample = fct.samples()[0];
    println!(
        "transfer: {} MB in {:.1} ms = {:.2} Gbps",
        sample.bytes >> 20,
        sample.fct() as f64 / MILLISECOND as f64,
        sample.bytes as f64 * 8.0 / sample.fct() as f64
    );

    let rtts = tb.rtt_samples_ms(probe);
    let mut d = acdc_stats::Distribution::new();
    d.extend(rtts.into_iter().skip(3));
    println!(
        "probe RTT while the transfer ran: p50 {:.0} µs, p99 {:.0} µs",
        d.percentile(50.0).unwrap() * 1000.0,
        d.percentile(99.0).unwrap() * 1000.0
    );

    // What did the vSwitch do? (§3 of the paper, in counters.)
    let dp = tb.host_mut(0).datapath();
    let c = dp.counters();
    println!("AC/DC datapath at the sender host:");
    println!("  flows tracked:        {}", dp.flows());
    println!(
        "  PACK feedback rx:     {}",
        c.packs_received.load(Ordering::Relaxed)
    );
    println!(
        "  RWND rewrites:        {}",
        c.rwnd_rewrites.load(Ordering::Relaxed)
    );
    println!(
        "  inferred fast rtx:    {}",
        c.inferred_fast_rtx.load(Ordering::Relaxed)
    );
    println!(
        "  inferred timeouts:    {}",
        c.inferred_timeouts.load(Ordering::Relaxed)
    );

    // The administrator's view: what the vSwitch knows about each flow.
    println!("per-flow view (vSwitch flow table):");
    for f in tb.host_mut(0).datapath().flow_stats() {
        println!(
            "  {} cc={} cwnd={}B in_flight={}B srtt={:?} rx={}B marked={}B",
            f.key, f.cc_name, f.cwnd, f.in_flight, f.srtt, f.rx_total, f.rx_marked
        );
    }

    // The enforced window is what the guest saw as its peer's RWND.
    let ep = tb.client_endpoint(flow);
    println!(
        "guest stack: {} | cwnd {} B | enforced (peer) window {} B",
        ep.cc().name(),
        ep.cwnd(),
        ep.peer_rwnd()
    );
    println!("note: the guest runs CUBIC, yet the flow behaved like DCTCP — that is AC/DC.");
}
