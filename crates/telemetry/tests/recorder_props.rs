//! Property tests for the flight recorder and registry (ISSUE 5,
//! satellite 4): same plan + seed ⇒ byte-identical JSONL dump; ring
//! wraparound never reorders or duplicates events; registered metric
//! names are unique and all appear in `snapshot_all()`.

use acdc_packet::FlowKey;
use acdc_stats::time::Nanos;
use acdc_telemetry::{EventKind, FlightRecorder, MetricsRegistry, NO_FLOW};
use proptest::prelude::*;

/// A synthetic event "plan": the deterministic function from (plan,
/// index) to event that stands in for the simulator's event stream.
#[derive(Debug, Clone)]
struct Plan {
    seed: u64,
    count: usize,
    capacity: usize,
}

fn planned_event(plan: &Plan, i: usize) -> (Nanos, FlowKey, EventKind) {
    // A cheap splitmix-style draw keyed on (seed, i): deterministic,
    // portable, and varied enough to exercise every variant shape.
    let mut x = plan.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    let flow = FlowKey {
        src_ip: [10, 0, 0, (x % 250) as u8 + 1],
        dst_ip: [10, 0, 1, ((x >> 8) % 250) as u8 + 1],
        src_port: 40_000 + (x % 1_000) as u16,
        dst_port: 5_001,
    };
    let kind = match x % 6 {
        0 => EventKind::FlowCreated,
        1 => EventKind::PacketDropped {
            cause: "corrupt-fcs",
        },
        2 => EventKind::CwndCut {
            cause: "fast-retransmit",
            cwnd: x % 100_000,
        },
        3 => EventKind::RtoFired { cwnd: x % 100_000 },
        4 => EventKind::FaultInjected { effect: "corrupt" },
        _ => EventKind::AlphaUpdate {
            alpha_micros: x % 1_000_000,
        },
    };
    ((i as Nanos) * 1_000, flow, kind)
}

fn run_plan(plan: &Plan) -> FlightRecorder {
    let rec = FlightRecorder::new(plan.capacity);
    for i in 0..plan.count {
        let (at, flow, kind) = planned_event(plan, i);
        rec.record(at, flow, kind);
    }
    rec
}

proptest! {
    /// Same plan + seed ⇒ byte-identical JSONL dump.
    #[test]
    fn same_plan_and_seed_dumps_identically(
        seed in any::<u64>(),
        count in 0usize..600,
        capacity in 1usize..96,
    ) {
        let plan = Plan { seed, count, capacity };
        let a = run_plan(&plan).dump_jsonl();
        let b = run_plan(&plan).dump_jsonl();
        prop_assert_eq!(a.as_bytes(), b.as_bytes());
    }

    /// Wraparound keeps exactly the newest `capacity` events, in record
    /// order, with strictly increasing sequence numbers (no reorder, no
    /// duplicate, no gap in the retained suffix).
    #[test]
    fn wraparound_never_reorders_or_duplicates(
        seed in any::<u64>(),
        count in 0usize..600,
        capacity in 1usize..96,
    ) {
        let plan = Plan { seed, count, capacity };
        let rec = run_plan(&plan);
        let events = rec.events();

        let kept = count.min(capacity);
        prop_assert_eq!(events.len(), kept);
        prop_assert_eq!(rec.total_recorded(), count as u64);
        prop_assert_eq!(rec.overwritten(), (count - kept) as u64);

        // The retained window is the contiguous suffix of the stream.
        for (j, e) in events.iter().enumerate() {
            let expect_seq = (count - kept + j) as u64;
            prop_assert_eq!(e.seq, expect_seq, "event {} out of order", j);
            let (at, flow, kind) = planned_event(&plan, expect_seq as usize);
            prop_assert_eq!(e.at, at);
            prop_assert_eq!(e.flow, flow);
            prop_assert_eq!(e.kind, kind);
        }
    }

    /// Every registered metric name is unique and appears in
    /// `snapshot_all()` with the value its handle reports.
    #[test]
    fn registered_names_are_unique_and_all_snapshot(
        n_counters in 0usize..24,
        n_gauges in 0usize..24,
        bumps in proptest::collection::vec(0u64..1000, 0..24),
    ) {
        let reg = MetricsRegistry::new();
        let counters: Vec<_> = (0..n_counters)
            .map(|i| reg.counter(format!("c.m{i}")))
            .collect();
        let _gauges: Vec<_> = (0..n_gauges)
            .map(|i| reg.gauge(format!("g.m{i}")))
            .collect();
        for (i, b) in bumps.iter().enumerate() {
            if let Some(c) = counters.get(i % n_counters.max(1)) {
                c.add(*b);
            }
        }

        let names = reg.names();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), names.len(), "names must be unique");

        let snap = reg.snapshot_all();
        prop_assert_eq!(snap.len(), names.len());
        for name in &names {
            let m = snap.iter().find(|m| &m.name == name);
            prop_assert!(m.is_some(), "{} missing from snapshot_all()", name);
            prop_assert_eq!(m.unwrap().value, reg.value(name).unwrap());
        }
    }
}

#[test]
fn dump_replays_through_recorder_events() {
    // The dump is a pure function of the recorded stream: rebuilding a
    // recorder from `events()` reproduces the dump byte-for-byte.
    let plan = Plan {
        seed: 0xACDC,
        count: 300,
        capacity: 64,
    };
    let rec = run_plan(&plan);
    let replay = FlightRecorder::new(plan.capacity);
    for e in run_plan(&plan).events() {
        replay.record(e.at, e.flow, e.kind);
    }
    // Seqs restart from 0 in the replay ring, so compare everything else.
    let a = rec.events();
    let b = replay.events();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!((x.at, x.flow, x.kind), (y.at, y.flow, y.kind));
    }
    let _ = NO_FLOW; // taxonomy smoke: the shared zero key is exported
}
