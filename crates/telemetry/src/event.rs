//! The structured event taxonomy (DESIGN.md §11).
//!
//! One [`Event`] is one observable state change somewhere in the stack:
//! a flow was admitted, a window was cut, the health ladder moved, a
//! fault fired on a link, a packet was dropped. Every event carries the
//! virtual time at which it happened and the [`FlowKey`] it concerns
//! ([`NO_FLOW`] for datapath- or link-scoped events that have no single
//! flow). Events are plain `Copy` data — recording one never allocates —
//! and serialize to one JSON Lines object via [`Event::to_jsonl`].

use acdc_packet::FlowKey;
use acdc_stats::time::Nanos;

/// The all-zero key used to stamp events that are not attributable to a
/// single flow (health transitions, datapath resets, drops of frames too
/// mangled to parse a key out of).
pub const NO_FLOW: FlowKey = FlowKey {
    src_ip: [0; 4],
    dst_ip: [0; 4],
    src_port: 0,
    dst_port: 0,
};

/// What happened. Field payloads use stable `&'static str` labels so the
/// enum stays `Copy` and the JSONL encoding never allocates per-variant
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A flow entry was created in the connection-tracking table.
    FlowCreated,
    /// A flow entry left the table. `reason` is `"capacity"` (evicted to
    /// admit the flow this event is stamped with), `"gc"` (idle
    /// collection; stamped with the evicted flow's own key) or
    /// `"reset"`.
    FlowEvicted {
        /// Why the entry was removed.
        reason: &'static str,
    },
    /// The admission policy refused to create a flow entry.
    AdmissionRejected,
    /// The per-flow DCTCP `alpha` estimate moved (quantized to integer
    /// micro-units so the event stays `Eq` and replay-comparable).
    AlphaUpdate {
        /// New `alpha` in units of 1e-6.
        alpha_micros: u64,
    },
    /// The enforced congestion window was cut. `cause` is
    /// `"fast-retransmit"` or `"ecn"`.
    CwndCut {
        /// What triggered the cut.
        cause: &'static str,
        /// Window in bytes after the cut.
        cwnd: u64,
    },
    /// A (real or vSwitch-inferred) retransmission timeout fired.
    RtoFired {
        /// Window in bytes after the RTO reaction.
        cwnd: u64,
    },
    /// The datapath health ladder moved one way or the other.
    HealthTransition {
        /// Rung before the move (`HealthState::name()` label).
        from: &'static str,
        /// Rung after the move.
        to: &'static str,
    },
    /// A fault process acted on a traversing packet. `effect` is one of
    /// `"drop-random"`, `"drop-scripted"`, `"drop-link-down"`,
    /// `"corrupt"`, `"duplicate"`, `"reorder"`, `"jitter"`, `"ce-mark"`.
    FaultInjected {
        /// Which fault fired.
        effect: &'static str,
    },
    /// A packet was dropped. `cause` is one of `"policed"`,
    /// `"malformed"`, `"corrupt-fcs"`, `"queue-full"`,
    /// `"fault-injected"`.
    PacketDropped {
        /// Why the packet was dropped.
        cause: &'static str,
    },
    /// The datapath was restarted (`AcdcDatapath::reset`).
    DatapathReset {
        /// Flow entries discarded by the restart.
        flows_cleared: u64,
    },
}

impl EventKind {
    /// Stable kind label used as the `"kind"` field of the JSONL form.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::FlowCreated => "flow-created",
            EventKind::FlowEvicted { .. } => "flow-evicted",
            EventKind::AdmissionRejected => "admission-rejected",
            EventKind::AlphaUpdate { .. } => "alpha-update",
            EventKind::CwndCut { .. } => "cwnd-cut",
            EventKind::RtoFired { .. } => "rto-fired",
            EventKind::HealthTransition { .. } => "health-transition",
            EventKind::FaultInjected { .. } => "fault-injected",
            EventKind::PacketDropped { .. } => "drop",
            EventKind::DatapathReset { .. } => "datapath-reset",
        }
    }

    /// Append this kind's variant-specific JSON fields (each preceded by
    /// a comma) to `out`.
    fn write_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            EventKind::FlowCreated | EventKind::AdmissionRejected => {}
            EventKind::FlowEvicted { reason } => {
                let _ = write!(out, ",\"reason\":\"{reason}\"");
            }
            EventKind::AlphaUpdate { alpha_micros } => {
                let _ = write!(out, ",\"alpha_micros\":{alpha_micros}");
            }
            EventKind::CwndCut { cause, cwnd } => {
                let _ = write!(out, ",\"cause\":\"{cause}\",\"cwnd\":{cwnd}");
            }
            EventKind::RtoFired { cwnd } => {
                let _ = write!(out, ",\"cwnd\":{cwnd}");
            }
            EventKind::HealthTransition { from, to } => {
                let _ = write!(out, ",\"from\":\"{from}\",\"to\":\"{to}\"");
            }
            EventKind::FaultInjected { effect } => {
                let _ = write!(out, ",\"effect\":\"{effect}\"");
            }
            EventKind::PacketDropped { cause } => {
                let _ = write!(out, ",\"cause\":\"{cause}\"");
            }
            EventKind::DatapathReset { flows_cleared } => {
                let _ = write!(out, ",\"flows_cleared\":{flows_cleared}");
            }
        }
    }
}

/// One recorded observation: when, which flow, what happened, plus the
/// recorder-assigned sequence number that makes wraparound auditable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Monotonic per-recorder sequence number (assigned at record time).
    pub seq: u64,
    /// Virtual time of the observation.
    pub at: Nanos,
    /// The flow concerned, or [`NO_FLOW`].
    pub flow: FlowKey,
    /// What happened.
    pub kind: EventKind,
}

/// Render a flow key as `a.b.c.d:p>e.f.g.h:q` (or `-` for [`NO_FLOW`]).
pub fn flow_label(key: &FlowKey) -> String {
    if *key == NO_FLOW {
        return "-".to_string();
    }
    let [a, b, c, d] = key.src_ip;
    let [e, f, g, h] = key.dst_ip;
    format!(
        "{a}.{b}.{c}.{d}:{sp}>{e}.{f}.{g}.{h}:{dp}",
        sp = key.src_port,
        dp = key.dst_port
    )
}

impl Event {
    /// One JSON object, no trailing newline. All labels are static and
    /// contain no characters needing JSON escaping, so the encoding is a
    /// straight format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"seq\":{},\"at\":{},\"flow\":\"{}\",\"kind\":\"{}\"",
            self.seq,
            self.at,
            flow_label(&self.flow),
            self.kind.name()
        );
        self.kind.write_fields(&mut out);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_shape() {
        let e = Event {
            seq: 7,
            at: 1_000,
            flow: FlowKey {
                src_ip: [10, 0, 0, 1],
                dst_ip: [10, 0, 0, 2],
                src_port: 40000,
                dst_port: 5001,
            },
            kind: EventKind::PacketDropped {
                cause: "corrupt-fcs",
            },
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"seq\":7,\"at\":1000,\"flow\":\"10.0.0.1:40000>10.0.0.2:5001\",\
             \"kind\":\"drop\",\"cause\":\"corrupt-fcs\"}"
        );
    }

    #[test]
    fn no_flow_renders_as_dash() {
        let e = Event {
            seq: 0,
            at: 5,
            flow: NO_FLOW,
            kind: EventKind::HealthTransition {
                from: "enforcing",
                to: "log-only",
            },
        };
        let line = e.to_jsonl();
        assert!(line.contains("\"flow\":\"-\""), "{line}");
        assert!(line.contains("\"from\":\"enforcing\""), "{line}");
    }
}
