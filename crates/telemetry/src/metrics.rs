//! The metrics registry (DESIGN.md §11).
//!
//! Every counter in the workspace is an `Arc<AtomicU64>` cell registered
//! here once, under a unique dotted name (`"acdc.packs_sent"`,
//! `"port0.queue_full_drops"`, `"fault.ab.corrupted"`). Producers keep a
//! cheap [`Counter`] / [`Gauge`] handle — bumping is exactly the atomic
//! add the pre-registry counter structs did — while consumers read
//! everything through one interface: [`MetricsRegistry::snapshot_all`]
//! for point-in-time values, [`MetricsRegistry::series`] for the
//! per-metric [`TimeSeries`] filled in by the 10 ms maintenance tick, and
//! [`MetricsRegistry::snapshot_json`] for the JSON schema shared by
//! tests, benches and `scripts/bench.sh`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use acdc_stats::series::TimeSeries;
use acdc_stats::time::Nanos;
use parking_lot::Mutex;

/// Handle to a registered monotonic counter. Dereferences to the shared
/// [`AtomicU64`] so call sites migrated from raw atomic fields keep
/// working (`c.load(..)`, `c.fetch_add(..)`) unchanged.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter backed by its own unregistered cell. Producers that may
    /// run with or without a registry (e.g. simulator ports) start
    /// standalone and are adopted later via
    /// [`MetricsRegistry::adopt_counter`] — the cell, and any value it
    /// already accumulated, carries over.
    pub fn standalone() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::ops::Deref for Counter {
    type Target = AtomicU64;
    fn deref(&self) -> &AtomicU64 {
        &self.0
    }
}

/// Handle to a registered gauge (a sampled instantaneous value, e.g.
/// flow-table occupancy or the health rung).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge backed by its own unregistered cell (see
    /// [`Counter::standalone`]).
    pub fn standalone() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Overwrite the gauge value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Is a metric a monotonic counter or an instantaneous gauge?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing.
    Counter,
    /// Set to an instantaneous value; may go down.
    Gauge,
}

impl MetricKind {
    /// Stable label used in the JSON snapshot.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One metric's point-in-time value, as returned by
/// [`MetricsRegistry::snapshot_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricValue {
    /// Registered name.
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Value at snapshot time.
    pub value: u64,
}

struct Slot {
    name: String,
    kind: MetricKind,
    cell: Arc<AtomicU64>,
    series: TimeSeries,
}

/// A registry of named counters and gauges. One registry exists per
/// observability domain (one per datapath/host, one per simulated
/// network, one per fault tap); names are unique within a registry and
/// registering a duplicate panics — metrics are registered once, at
/// construction time, never dynamically per packet.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<Vec<Slot>>,
    /// Upper bound on retained samples per metric series (0 = unbounded).
    /// Amortized: a series is trimmed back to the cap once it reaches
    /// twice the cap, so steady-state memory stays within `2 × cap`.
    series_cap: AtomicU64,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register(&self, name: String, kind: MetricKind, cell: Arc<AtomicU64>) -> Arc<AtomicU64> {
        let mut slots = self.slots.lock();
        assert!(
            !slots.iter().any(|s| s.name == name),
            "metric name registered twice: {name}"
        );
        slots.push(Slot {
            name,
            kind,
            cell: Arc::clone(&cell),
            series: TimeSeries::new(),
        });
        cell
    }

    /// Register a monotonic counter. Panics if `name` is already taken.
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        Counter(self.register(
            name.into(),
            MetricKind::Counter,
            Arc::new(AtomicU64::new(0)),
        ))
    }

    /// Register a gauge. Panics if `name` is already taken.
    pub fn gauge(&self, name: impl Into<String>) -> Gauge {
        Gauge(self.register(name.into(), MetricKind::Gauge, Arc::new(AtomicU64::new(0))))
    }

    /// Register an existing [`Counter::standalone`] cell under `name`,
    /// preserving whatever it already counted. Panics on a duplicate name.
    pub fn adopt_counter(&self, name: impl Into<String>, counter: &Counter) {
        self.register(name.into(), MetricKind::Counter, Arc::clone(&counter.0));
    }

    /// Register an existing [`Gauge::standalone`] cell under `name`.
    /// Panics on a duplicate name.
    pub fn adopt_gauge(&self, name: impl Into<String>, gauge: &Gauge) {
        self.register(name.into(), MetricKind::Gauge, Arc::clone(&gauge.0));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.slots.lock().iter().map(|s| s.name.clone()).collect()
    }

    /// Current value of one metric by name.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.slots
            .lock()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.cell.load(Ordering::Relaxed))
    }

    /// Overwrite the named metric's cell with a checkpointed value
    /// (DESIGN.md §15). Returns `false` when no metric of that name is
    /// registered — the caller decides whether an unknown name is a
    /// checkpoint/config mismatch worth failing on. The sampled
    /// [`TimeSeries`] is left untouched: series history is diagnostic
    /// state, not part of the checkpoint contract.
    pub fn restore_value(&self, name: &str, value: u64) -> bool {
        let slots = self.slots.lock();
        match slots.iter().find(|s| s.name == name) {
            Some(s) => {
                s.cell.store(value, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Bound the per-metric sampled history to roughly `cap` samples
    /// (`0` restores the unbounded default). Long-haul runs — hours of
    /// 10 ms maintenance ticks in the soak harness — must cap diagnostic
    /// history or the series alone grow to hundreds of megabytes. The
    /// trim is amortized: a series is cut back to `cap` samples whenever
    /// it reaches `2 × cap`.
    pub fn set_series_cap(&self, cap: usize) {
        self.series_cap.store(cap as u64, Ordering::Relaxed);
    }

    /// Push every metric's current value onto its [`TimeSeries`] with
    /// timestamp `at`. Called from the existing 10 ms maintenance tick.
    pub fn sample(&self, at: Nanos) {
        let cap = self.series_cap.load(Ordering::Relaxed) as usize;
        let mut slots = self.slots.lock();
        for s in slots.iter_mut() {
            let v = s.cell.load(Ordering::Relaxed);
            s.series.push(at, v as f64);
            if cap > 0 && s.series.len() >= 2 * cap {
                s.series.truncate_front(cap);
            }
        }
    }

    /// Clone of one metric's sampled series.
    pub fn series(&self, name: &str) -> Option<TimeSeries> {
        self.slots
            .lock()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.series.clone())
    }

    /// Point-in-time values of every registered metric, sorted by name.
    pub fn snapshot_all(&self) -> Vec<MetricValue> {
        let slots = self.slots.lock();
        let mut out: Vec<MetricValue> = slots
            .iter()
            .map(|s| MetricValue {
                name: s.name.clone(),
                kind: s.kind,
                value: s.cell.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// The shared snapshot schema (hand-rolled, no serde):
    ///
    /// ```json
    /// {"schema":"acdc-telemetry/v1","at":12345,
    ///  "metrics":[{"name":"acdc.packs_sent","kind":"counter","value":9}]}
    /// ```
    pub fn snapshot_json(&self, at: Nanos) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(64 + self.len() * 56);
        let _ = write!(
            out,
            "{{\"schema\":\"acdc-telemetry/v1\",\"at\":{at},\"metrics\":["
        );
        for (i, m) in self.snapshot_all().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"value\":{}}}",
                m.name,
                m.kind.name(),
                m.value
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x.count_a");
        let g = reg.gauge("x.depth");
        c.inc();
        c.add(4);
        g.set(9);
        assert_eq!(reg.value("x.count_a"), Some(5));
        assert_eq!(reg.value("x.depth"), Some(9));
        assert_eq!(reg.value("missing"), None);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let reg = MetricsRegistry::new();
        let _a = reg.counter("dup");
        let _b = reg.gauge("dup");
    }

    #[test]
    fn deref_keeps_atomic_call_sites_working() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("compat");
        c.fetch_add(3, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 3);
        assert_eq!(reg.value("compat"), Some(3));
    }

    #[test]
    fn sample_fills_series_in_lockstep() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("s.c");
        reg.sample(10);
        c.add(2);
        reg.sample(20);
        let series = reg.series("s.c").expect("registered");
        let vals: Vec<(Nanos, f64)> = series.samples().iter().map(|s| (s.at, s.value)).collect();
        assert_eq!(vals, vec![(10, 0.0), (20, 2.0)]);
    }

    #[test]
    fn series_cap_bounds_sampled_history() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("cap.c");
        reg.set_series_cap(4);
        for i in 0..20 {
            c.inc();
            reg.sample(i * 10);
        }
        let series = reg.series("cap.c").expect("registered");
        assert!(
            series.len() < 8,
            "cap 4 must keep the series under 2 × cap, got {}",
            series.len()
        );
        // The newest sample always survives the trim.
        let last = series.samples().last().unwrap();
        assert_eq!((last.at, last.value), (190, 20.0));
    }

    #[test]
    fn adopted_cells_keep_accumulated_values() {
        let c = Counter::standalone();
        c.add(7);
        let g = Gauge::standalone();
        g.set(3);
        let reg = MetricsRegistry::new();
        reg.adopt_counter("late.c", &c);
        reg.adopt_gauge("late.g", &g);
        assert_eq!(reg.value("late.c"), Some(7));
        assert_eq!(reg.value("late.g"), Some(3));
        c.inc();
        assert_eq!(reg.value("late.c"), Some(8));
    }

    #[test]
    fn snapshot_json_shape() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("b.n");
        let _g = reg.gauge("a.g");
        c.inc();
        let json = reg.snapshot_json(42);
        assert_eq!(
            json,
            "{\"schema\":\"acdc-telemetry/v1\",\"at\":42,\"metrics\":[\
             {\"name\":\"a.g\",\"kind\":\"gauge\",\"value\":0},\
             {\"name\":\"b.n\",\"kind\":\"counter\",\"value\":1}]}"
        );
    }
}
