//! Deterministic merging of per-worker telemetry hubs (DESIGN.md §13).
//!
//! The run-to-completion worker engine gives every worker a private hub
//! so recording never contends — or interleaves nondeterministically —
//! across workers. The price is paid here, once, at snapshot time:
//!
//! * **Metrics** merge by name: counters *sum* (each worker counted a
//!   disjoint share of the packets), gauges take the *max* (they sample
//!   instantaneous state; the merged view reports the high-water rung).
//!   The result is sorted by name, like `snapshot_all`, so the merged
//!   JSON is byte-identical run-to-run for deterministic inputs.
//! * **Events** merge k-way by `(at, hub index, seq)`: within one hub
//!   the recorder's own sequence numbers order events; across hubs at
//!   the same virtual instant the hub (worker) index breaks the tie.
//!   Same seed + same hub list ⇒ the same byte-identical event stream,
//!   regardless of OS thread scheduling during the run.

use std::fmt::Write as _;

use acdc_stats::time::Nanos;

use crate::event::Event;
use crate::metrics::{MetricKind, MetricValue};
use crate::Telemetry;

/// Merge point-in-time metric values from several hubs: counters sum,
/// gauges max, result sorted by name. Panics if two hubs register the
/// same name with different kinds — the worker sinks all share one
/// registration schema, so that is a construction bug, not input noise.
pub fn merge_snapshots(hubs: &[&Telemetry]) -> Vec<MetricValue> {
    let mut merged: Vec<MetricValue> = Vec::new();
    for hub in hubs {
        for m in hub.registry().snapshot_all() {
            match merged.iter_mut().find(|x| x.name == m.name) {
                Some(x) => {
                    assert!(
                        x.kind == m.kind,
                        "metric `{}` registered as {} in one hub and {} in another",
                        m.name,
                        x.kind.name(),
                        m.kind.name()
                    );
                    x.value = match m.kind {
                        MetricKind::Counter => x.value + m.value,
                        MetricKind::Gauge => x.value.max(m.value),
                    };
                }
                None => merged.push(m),
            }
        }
    }
    merged.sort_by(|a, b| a.name.cmp(&b.name));
    merged
}

/// Total flight-recorder events lost to ring wraparound across `hubs` —
/// the merged analogue of one recorder's `overwritten()`. A merged event
/// stream silently missing this many events is not the same thing as a
/// quiet run, so the soak watchdog gates on the sum.
pub fn merged_dropped_events(hubs: &[&Telemetry]) -> u64 {
    hubs.iter().map(|h| h.recorder().overwritten()).sum()
}

/// [`merge_snapshots`] serialized in the `acdc-telemetry/v2` snapshot
/// schema — a drop-in replacement for one registry's `snapshot_json`
/// when the run was split across worker hubs. v2 adds the one field a
/// merged view would otherwise lose: `dropped_events`, the summed
/// per-hub flight-recorder overwrite tallies
/// ([`merged_dropped_events`]), so a consumer can tell a complete merged
/// event stream from one with wraparound holes.
pub fn merged_snapshot_json(hubs: &[&Telemetry], at: Nanos) -> String {
    let merged = merge_snapshots(hubs);
    let dropped = merged_dropped_events(hubs);
    let mut out = String::with_capacity(64 + merged.len() * 56);
    let _ = write!(
        out,
        "{{\"schema\":\"acdc-telemetry/v2\",\"at\":{at},\"dropped_events\":{dropped},\"metrics\":["
    );
    for (i, m) in merged.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"value\":{}}}",
            m.name,
            m.kind.name(),
            m.value
        );
    }
    out.push_str("]}");
    out
}

/// K-way merge of every hub's event ring into one deterministic stream,
/// ordered by `(at, hub index, seq)`. Hub order in `hubs` is the
/// tiebreak at equal timestamps, so pass workers in index order.
pub fn merge_events(hubs: &[&Telemetry]) -> Vec<Event> {
    let mut keyed: Vec<(Nanos, usize, u64, Event)> = Vec::new();
    for (idx, hub) in hubs.iter().enumerate() {
        for e in hub.recorder().events() {
            keyed.push((e.at, idx, e.seq, e));
        }
    }
    keyed.sort_by_key(|(at, idx, seq, _)| (*at, *idx, *seq));
    keyed.into_iter().map(|(_, _, _, e)| e).collect()
}

/// [`merge_events`] as JSON Lines (one event per line, trailing newline
/// after every line) — the merged-stream analogue of one recorder's
/// `dump_jsonl`.
pub fn merged_events_jsonl(hubs: &[&Telemetry]) -> String {
    let events = merge_events(hubs);
    let mut out = String::with_capacity(events.len() * 96);
    for e in &events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NO_FLOW};

    #[test]
    fn counters_sum_and_gauges_max() {
        let a = Telemetry::new(8);
        let b = Telemetry::new(8);
        a.registry().counter("acdc.x").add(3);
        b.registry().counter("acdc.x").add(4);
        a.registry().gauge("acdc.depth").set(2);
        b.registry().gauge("acdc.depth").set(7);
        a.registry().counter("acdc.only_a").add(1);
        let merged = merge_snapshots(&[&a, &b]);
        let get = |n: &str| merged.iter().find(|m| m.name == n).unwrap().value;
        assert_eq!(get("acdc.x"), 7);
        assert_eq!(get("acdc.depth"), 7);
        assert_eq!(get("acdc.only_a"), 1);
        assert!(merged.windows(2).all(|w| w[0].name < w[1].name), "sorted");
    }

    #[test]
    fn merged_json_is_v2_with_dropped_events() {
        let a = Telemetry::new(8);
        a.registry().counter("acdc.x").add(5);
        a.registry().gauge("acdc.g").set(2);
        assert_eq!(
            merged_snapshot_json(&[&a], 99),
            "{\"schema\":\"acdc-telemetry/v2\",\"at\":99,\"dropped_events\":0,\"metrics\":[\
             {\"name\":\"acdc.g\",\"kind\":\"gauge\",\"value\":2},\
             {\"name\":\"acdc.x\",\"kind\":\"counter\",\"value\":5}]}"
        );
        // Apart from the envelope, the metrics array matches the
        // single-hub v1 serialization for one input.
        let single = a.registry().snapshot_json(99);
        let merged = merged_snapshot_json(&[&a], 99);
        let tail = |s: &str| s.split("\"metrics\":").nth(1).unwrap().to_string();
        assert_eq!(tail(&merged), tail(&single));
    }

    #[test]
    fn merged_dropped_events_sums_recorder_overwrites() {
        let a = Telemetry::new(2);
        let b = Telemetry::new(2);
        for at in 0..5 {
            a.record(at, NO_FLOW, EventKind::FlowCreated); // 3 overwritten
            if at < 3 {
                b.record(at, NO_FLOW, EventKind::FlowCreated); // 1 overwritten
            }
        }
        assert_eq!(merged_dropped_events(&[&a, &b]), 4);
        let json = merged_snapshot_json(&[&a, &b], 7);
        assert!(json.contains("\"dropped_events\":4"), "got: {json}");
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_panic() {
        let a = Telemetry::new(8);
        let b = Telemetry::new(8);
        a.registry().counter("dup").inc();
        b.registry().gauge("dup").set(1);
        merge_snapshots(&[&a, &b]);
    }

    #[test]
    fn events_merge_by_time_then_hub_then_seq() {
        let a = Telemetry::new(8);
        let b = Telemetry::new(8);
        a.record(10, NO_FLOW, EventKind::FlowCreated);
        a.record(30, NO_FLOW, EventKind::FlowCreated);
        b.record(10, NO_FLOW, EventKind::AdmissionRejected);
        b.record(20, NO_FLOW, EventKind::AdmissionRejected);
        let merged = merge_events(&[&a, &b]);
        let shape: Vec<(Nanos, u64)> = merged.iter().map(|e| (e.at, e.seq)).collect();
        // t=10: hub a before hub b; then b@20, a@30.
        assert_eq!(shape, vec![(10, 0), (10, 0), (20, 1), (30, 1)]);
        assert!(matches!(merged[0].kind, EventKind::FlowCreated));
        assert!(matches!(merged[1].kind, EventKind::AdmissionRejected));
    }

    #[test]
    fn merged_stream_is_stable_across_calls() {
        let a = Telemetry::new(8);
        let b = Telemetry::new(8);
        for at in 0..5 {
            a.record(at, NO_FLOW, EventKind::FlowCreated);
            b.record(at, NO_FLOW, EventKind::AdmissionRejected);
        }
        assert_eq!(
            merged_events_jsonl(&[&a, &b]),
            merged_events_jsonl(&[&a, &b])
        );
    }
}
