//! # acdc-telemetry — the observability spine of the reproduction
//!
//! The paper's evaluation (§4) is an exercise in per-flow visibility:
//! congestion-window convergence (Fig. 4/16), ECN feedback, RTO
//! behaviour, per-port drop accounting. This crate is the one interface
//! all of that flows through, replacing the ad-hoc counter structs that
//! grew per-crate (`AcdcCounters`, `PortCounters`, `FaultStats`,
//! `health_trace`):
//!
//! * [`Event`] / [`EventKind`] — the structured **event bus** taxonomy:
//!   flow lifecycle, CC state changes (alpha updates, cwnd cuts, RTO
//!   fires), health-ladder transitions, admission/eviction, fault
//!   injections and drops, each stamped with virtual-time [`Nanos`] and
//!   a [`FlowKey`].
//! * [`FlightRecorder`] — a **bounded ring** of the most recent events
//!   per datapath/host/link; seed-replayable and dumpable as JSON Lines
//!   (on test failure via [`TraceGuard`], offline via
//!   `cargo run -p acdc-xtask -- dump-trace`).
//! * [`MetricsRegistry`] — named monotonic [`Counter`]s and [`Gauge`]s
//!   registered once, sampled onto [`acdc_stats::TimeSeries`] from the
//!   existing 10 ms maintenance tick, and exported through one
//!   `snapshot_all()` JSON schema shared by tests, benches and
//!   `scripts/bench.sh`.
//!
//! ## Determinism contract
//!
//! Everything observable here derives from the deterministic simulator:
//! virtual timestamps, seeded fault draws, ordered event dispatch. A
//! recorder therefore replays byte-identically for the same seed, which
//! is what lets chaos tests assert "this injected fault produced exactly
//! that drop" instead of comparing aggregate counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod merge;
pub mod metrics;
pub mod recorder;

pub use event::{flow_label, Event, EventKind, NO_FLOW};
pub use merge::{
    merge_events, merge_snapshots, merged_dropped_events, merged_events_jsonl, merged_snapshot_json,
};
pub use metrics::{Counter, Gauge, MetricKind, MetricValue, MetricsRegistry};
pub use recorder::{trace_dir, FlightRecorder, TraceGuard, DEFAULT_CAPACITY};

use std::sync::Arc;

use acdc_packet::FlowKey;
use acdc_stats::time::Nanos;

/// One observability domain: a flight recorder plus a metrics registry,
/// shared by every component that reports into it (an `AcdcDatapath` and
/// its `HostNode`; a `Network`; a `FaultyLink`).
pub struct Telemetry {
    recorder: FlightRecorder,
    registry: MetricsRegistry,
}

impl Telemetry {
    /// A hub whose recorder holds `capacity` events.
    pub fn new(capacity: usize) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            recorder: FlightRecorder::new(capacity),
            registry: MetricsRegistry::new(),
        })
    }

    /// A hub with the default recorder capacity.
    pub fn with_default_capacity() -> Arc<Telemetry> {
        Telemetry::new(DEFAULT_CAPACITY)
    }

    /// The event ring.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Record one event (convenience for `recorder().record(..)`).
    #[inline]
    pub fn record(&self, at: Nanos, flow: FlowKey, kind: EventKind) {
        self.recorder.record(at, flow, kind);
    }
}
