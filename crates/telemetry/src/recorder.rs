//! The bounded flight recorder (DESIGN.md §11).
//!
//! A fixed-capacity ring of the most recent [`Event`]s per datapath /
//! host / link. Recording is cheap (one mutex, no allocation beyond the
//! pre-sized ring) and the ring never grows: under event pressure the
//! *oldest* events are overwritten, never the newest, and sequence
//! numbers keep the overwrite auditable. Because every producer in the
//! workspace is driven by the deterministic simulator, the ring's
//! contents — and therefore [`FlightRecorder::dump_jsonl`] — are
//! byte-identical across same-seed runs.

use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use acdc_packet::FlowKey;
use acdc_stats::time::Nanos;
use parking_lot::Mutex;

use crate::event::{Event, EventKind};

/// Default ring capacity used by datapaths and fault taps. Big enough to
/// hold every event a typical chaos scenario produces; small enough that
/// a recorder is a fixed ~¼ MB worst case.
pub const DEFAULT_CAPACITY: usize = 4096;

struct Ring {
    buf: VecDeque<Event>,
    next_seq: u64,
    overwritten: u64,
}

/// A bounded, seed-replayable ring of recent events.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Ring>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            inner: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity),
                next_seq: 0,
                overwritten: 0,
            }),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event, assigning it the next sequence number. If the
    /// ring is full the oldest event is overwritten.
    pub fn record(&self, at: Nanos, flow: FlowKey, kind: EventKind) {
        let mut r = self.inner.lock();
        let seq = r.next_seq;
        r.next_seq += 1;
        if r.buf.len() == self.capacity {
            r.buf.pop_front();
            r.overwritten += 1;
        }
        r.buf.push_back(Event {
            seq,
            at,
            flow,
            kind,
        });
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// True when nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Events lost to ring wraparound so far.
    pub fn overwritten(&self) -> u64 {
        self.inner.lock().overwritten
    }

    /// Restore checkpointed ring bookkeeping (DESIGN.md §15): the next
    /// event recorded carries sequence number `next_seq`, and the
    /// overwrite tally resumes from `overwritten` — so a restored
    /// recorder's subsequent event stream is sequence-identical to the
    /// uninterrupted run's. The buffered events themselves are *not*
    /// restored (the ring is cleared): ring content is a diagnostic
    /// window, and checkpointed events would carry dangling payloads.
    pub fn restore_counters(&self, next_seq: u64, overwritten: u64) {
        let mut r = self.inner.lock();
        r.buf.clear();
        r.next_seq = next_seq;
        r.overwritten = overwritten;
    }

    /// Snapshot of the ring, oldest event first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().buf.iter().copied().collect()
    }

    /// The whole ring as JSON Lines (one event object per line, oldest
    /// first, trailing newline after every line).
    pub fn dump_jsonl(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96);
        for e in &events {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Write [`FlightRecorder::dump_jsonl`] to `path`, creating parent
    /// directories as needed.
    pub fn dump_to_file(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.dump_jsonl().as_bytes())
    }
}

/// Directory failing tests dump flight-recorder traces into, relative to
/// the working directory of the test process: `target/acdc-traces/`.
/// `cargo run -p acdc-xtask -- dump-trace` reads the same location.
pub fn trace_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    Path::new(&target).join("acdc-traces")
}

/// Dump-on-failure guard: holds named telemetry hubs for the duration of
/// a test and, if the thread unwinds (assertion failure), writes each
/// hub's recorder to `target/acdc-traces/<test>.<label>.jsonl` so the
/// failing run's event history survives for `acdc-xtask dump-trace`.
pub struct TraceGuard {
    test: &'static str,
    hubs: Vec<(&'static str, Arc<crate::Telemetry>)>,
}

impl TraceGuard {
    /// A guard for the named test with no recorders attached yet.
    pub fn new(test: &'static str) -> TraceGuard {
        TraceGuard {
            test,
            hubs: Vec::new(),
        }
    }

    /// Attach a telemetry hub under `label`; returns `self` for chaining.
    pub fn watch(mut self, label: &'static str, hub: Arc<crate::Telemetry>) -> TraceGuard {
        self.hubs.push((label, hub));
        self
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let dir = trace_dir();
        for (label, hub) in &self.hubs {
            let path = dir.join(format!("{}.{}.jsonl", self.test, label));
            if hub.recorder().dump_to_file(&path).is_ok() {
                eprintln!("flight recorder dumped to {}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_FLOW;

    fn ev(rec: &FlightRecorder, at: Nanos) {
        rec.record(at, NO_FLOW, EventKind::FlowCreated);
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let rec = FlightRecorder::new(3);
        for at in 0..5 {
            ev(&rec, at);
        }
        let got = rec.events();
        assert_eq!(got.len(), 3);
        assert_eq!(
            got.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "wraparound must drop the oldest, keep the newest"
        );
        assert_eq!(rec.total_recorded(), 5);
        assert_eq!(rec.overwritten(), 2);
    }

    #[test]
    fn dump_is_one_line_per_event() {
        let rec = FlightRecorder::new(8);
        ev(&rec, 1);
        ev(&rec, 2);
        let dump = rec.dump_jsonl();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.ends_with('\n'));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let rec = FlightRecorder::new(0);
        ev(&rec, 1);
        assert_eq!(rec.len(), 1);
    }
}
