//! Traffic-pattern schedules for the macrobenchmarks (§5.2): who sends
//! what to whom, and when. Pure data — the experiment harness in
//! `acdc-core` turns these into hosts, connections and apps.

use rand::seq::SliceRandom;
use rand::Rng;

use acdc_stats::time::Nanos;

/// One planned transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Sender host index.
    pub src: usize,
    /// Receiver host index.
    pub dst: usize,
    /// Bytes to move.
    pub bytes: u64,
    /// Start time.
    pub start: Nanos,
}

/// Incast (Figures 18/19): `n` senders start simultaneously toward one
/// receiver (host index `n`), each with a long-lived flow.
pub fn incast(n: usize) -> Vec<Transfer> {
    (0..n)
        .map(|s| Transfer {
            src: s,
            dst: n,
            bytes: u64::MAX, // long-lived; the harness maps this to unlimited
            start: 0,
        })
        .collect()
}

/// Concurrent stride (Figure 21): each of `n` servers sends `bytes` to
/// servers `i+1..=i+width (mod n)` sequentially. Returns per-source
/// ordered destination lists.
pub fn stride_background(n: usize, width: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| (1..=width).map(|k| (i + k) % n).collect())
        .collect()
}

/// The stride/shuffle mice overlay: server `i` messages server
/// `(i + n/2) mod n` (the paper uses `(i+8) mod 17`).
pub fn mice_peer(i: usize, n: usize) -> usize {
    (i + n / 2) % n
}

/// Shuffle (Figure 22): every server sends `bytes` to every other server
/// in random order. Returns per-source randomized destination orders;
/// the harness runs at most `concurrency` (2 in the paper) at a time.
pub fn shuffle_orders<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| {
            let mut dsts: Vec<usize> = (0..n).filter(|&d| d != i).collect();
            dsts.shuffle(rng);
            dsts
        })
        .collect()
}

/// The all-ports-congested workload of Figure 20: 46 NICs in group A each
/// send 4 intra-group flows (`NIC i → [i+1, i+4] mod 46`) plus one flow
/// to B1, congesting 47 of 48 ports; B2→B1 carries the RTT probe.
pub fn all_ports(group_a: usize) -> Vec<Transfer> {
    let mut out = Vec::new();
    for i in 0..group_a {
        for k in 1..=4 {
            out.push(Transfer {
                src: i,
                dst: (i + k) % group_a,
                bytes: u64::MAX,
                start: 0,
            });
        }
        // Everyone also blasts B1 (index group_a).
        out.push(Transfer {
            src: i,
            dst: group_a,
            bytes: u64::MAX,
            start: 0,
        });
    }
    out
}

/// Convergence test (Figure 14): `n` flows on one bottleneck; flow `i`
/// starts at `i · step` and stops at `(2n − 1 − i) · step` (flows are
/// added one by one, then removed in reverse order).
pub fn convergence_schedule(n: usize, step: Nanos) -> Vec<(Nanos, Nanos)> {
    (0..n)
        .map(|i| {
            let start = i as u64 * step;
            let stop = (2 * n - 1 - i) as u64 * step;
            (start, stop)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn incast_targets_single_receiver() {
        let t = incast(47);
        assert_eq!(t.len(), 47);
        assert!(t.iter().all(|x| x.dst == 47));
        assert!(t.iter().all(|x| x.src != x.dst));
    }

    #[test]
    fn stride_wraps_mod_n() {
        let s = stride_background(17, 4);
        assert_eq!(s.len(), 17);
        assert_eq!(s[16], vec![0, 1, 2, 3]);
        assert_eq!(s[0], vec![1, 2, 3, 4]);
    }

    #[test]
    fn mice_peer_matches_paper() {
        // 17 servers: i → (i+8) mod 17.
        assert_eq!(mice_peer(0, 17), 8);
        assert_eq!(mice_peer(16, 17), 7);
    }

    #[test]
    fn shuffle_orders_cover_everyone_once() {
        let mut rng = StdRng::seed_from_u64(3);
        let orders = shuffle_orders(17, &mut rng);
        for (i, order) in orders.iter().enumerate() {
            assert_eq!(order.len(), 16);
            assert!(!order.contains(&i));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            let expect: Vec<usize> = (0..17).filter(|&d| d != i).collect();
            assert_eq!(sorted, expect);
        }
    }

    #[test]
    fn all_ports_congests_47_of_48() {
        let t = all_ports(46);
        assert_eq!(t.len(), 46 * 5);
        // Every group-A NIC receives 4 flows; B1 receives 46.
        let mut rx = vec![0usize; 48];
        for x in &t {
            rx[x.dst] += 1;
        }
        assert_eq!(rx[46], 46, "B1 incast");
        assert_eq!(rx[47], 0, "B2 idle (probe only)");
        assert!(rx[..46].iter().all(|&c| c == 4));
    }

    #[test]
    fn convergence_is_nested() {
        let sched = convergence_schedule(5, 30);
        assert_eq!(sched[0], (0, 270));
        assert_eq!(sched[4], (120, 150));
        // Flow i's lifetime strictly contains flow i+1's.
        for w in sched.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 > w[1].1);
        }
    }
}
