//! Per-connection applications.
//!
//! An [`App`] owns one side of one connection and is polled by its host:
//! once when the connection establishes, after every transport progress
//! event (ACKs arriving, data delivered), and at the wake-up times it
//! requests. Apps talk to the endpoint through [`AppConn`], a narrow
//! interface implemented by [`acdc_tcp::Endpoint`].

use acdc_packet::FlowKey;
use acdc_stats::time::{Nanos, MILLISECOND};

use crate::fct::{FctKind, FctRecorder};

/// The slice of a transport endpoint an application may touch.
pub trait AppConn {
    /// Enqueue bytes for transmission.
    fn send(&mut self, bytes: u64);
    /// Close the sending direction.
    fn close(&mut self);
    /// Stream bytes acknowledged by the peer so far.
    fn acked_bytes(&self) -> u64;
    /// Stream bytes handed to the transport so far.
    fn queued_bytes(&self) -> u64;
    /// In-order stream bytes received so far.
    fn delivered_bytes(&self) -> u64;
    /// Can data flow yet?
    fn is_established(&self) -> bool;
    /// The wire 5-tuple of the egress direction, if the transport has one
    /// (FCT samples are attributed to it).
    fn flow_key(&self) -> Option<FlowKey> {
        None
    }
}

impl AppConn for acdc_tcp::Endpoint {
    fn send(&mut self, bytes: u64) {
        acdc_tcp::Endpoint::send(self, bytes);
    }
    fn close(&mut self) {
        acdc_tcp::Endpoint::close(self);
    }
    fn acked_bytes(&self) -> u64 {
        acdc_tcp::Endpoint::acked_bytes(self)
    }
    fn queued_bytes(&self) -> u64 {
        acdc_tcp::Endpoint::queued_bytes(self)
    }
    fn delivered_bytes(&self) -> u64 {
        acdc_tcp::Endpoint::delivered_bytes(self)
    }
    fn is_established(&self) -> bool {
        acdc_tcp::Endpoint::is_established(self)
    }
    fn flow_key(&self) -> Option<FlowKey> {
        Some(acdc_tcp::Endpoint::flow_key(self))
    }
}

/// A traffic application bound to one connection.
pub trait App: Send {
    /// React to transport progress and the clock; return the next absolute
    /// time this app wants to be polled (None = event-driven only).
    fn poll(&mut self, now: Nanos, conn: &mut dyn AppConn) -> Option<Nanos>;

    /// Has the app finished its work?
    fn is_done(&self) -> bool {
        false
    }

    /// Completed-flow records, if this app measures FCTs.
    fn fct(&self) -> Option<&FctRecorder> {
        None
    }

    /// RTT samples in milliseconds, if this app measures RTTs.
    fn rtt_samples_ms(&self) -> Option<&[f64]> {
        None
    }
}

// ----------------------------------------------------------------------
// Bulk sender (iperf)
// ----------------------------------------------------------------------

/// Sends a fixed number of bytes (or runs forever) as fast as the
/// transport allows; records the FCT of bounded transfers.
#[derive(Debug)]
pub struct BulkSender {
    total: Option<u64>,
    kind: FctKind,
    started: Option<Nanos>,
    done: bool,
    fct: FctRecorder,
}

impl BulkSender {
    /// A bounded transfer of `bytes`.
    pub fn new(bytes: u64, kind: FctKind) -> BulkSender {
        BulkSender {
            total: Some(bytes),
            kind,
            started: None,
            done: false,
            fct: FctRecorder::new(),
        }
    }

    /// An unbounded (long-lived) flow.
    pub fn unlimited() -> BulkSender {
        BulkSender {
            total: None,
            kind: FctKind::Background,
            started: None,
            done: false,
            fct: FctRecorder::new(),
        }
    }
}

/// Bytes enqueued for "unlimited" flows (never drains in any experiment).
const FOREVER_BYTES: u64 = 1 << 44;

impl App for BulkSender {
    fn poll(&mut self, now: Nanos, conn: &mut dyn AppConn) -> Option<Nanos> {
        if self.done || !conn.is_established() {
            return None;
        }
        if self.started.is_none() {
            self.started = Some(now);
            conn.send(self.total.unwrap_or(FOREVER_BYTES));
        }
        if let Some(total) = self.total {
            if conn.acked_bytes() >= total {
                self.fct.record_flow(
                    self.kind,
                    self.started.unwrap(),
                    now,
                    total,
                    conn.flow_key(),
                );
                self.done = true;
            }
        }
        None
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn fct(&self) -> Option<&FctRecorder> {
        Some(&self.fct)
    }
}

// ----------------------------------------------------------------------
// Periodic message sender (the 16 KB / 100 ms mice generator)
// ----------------------------------------------------------------------

/// Sends a `msg_bytes` message every `period`, measuring each message's
/// FCT from its scheduled send time to the ACK of its last byte.
#[derive(Debug)]
pub struct MessageSender {
    msg_bytes: u64,
    period: Nanos,
    limit: Option<u64>,
    sent: u64,
    next_send: Option<Nanos>,
    /// Outstanding messages: (stream offset of last byte, start time).
    pending: Vec<(u64, Nanos)>,
    kind: FctKind,
    fct: FctRecorder,
}

impl MessageSender {
    /// `msg_bytes` every `period`, forever (or up to `limit` messages).
    pub fn new(msg_bytes: u64, period: Nanos, limit: Option<u64>, kind: FctKind) -> MessageSender {
        assert!(msg_bytes > 0 && period > 0);
        MessageSender {
            msg_bytes,
            period,
            limit,
            sent: 0,
            next_send: None,
            pending: Vec::new(),
            kind,
            fct: FctRecorder::new(),
        }
    }
}

impl App for MessageSender {
    fn poll(&mut self, now: Nanos, conn: &mut dyn AppConn) -> Option<Nanos> {
        if !conn.is_established() {
            return None;
        }
        let next = *self.next_send.get_or_insert(now);
        let mut next = next;
        while now >= next && self.limit.is_none_or(|l| self.sent < l) {
            conn.send(self.msg_bytes);
            self.pending.push((conn.queued_bytes(), next));
            self.sent += 1;
            next += self.period;
        }
        self.next_send = Some(next);

        // Completions.
        let acked = conn.acked_bytes();
        while let Some(&(end, start)) = self.pending.first() {
            if acked >= end {
                self.fct
                    .record_flow(self.kind, start, now, self.msg_bytes, conn.flow_key());
                self.pending.remove(0);
            } else {
                break;
            }
        }

        if self.limit.is_none_or(|l| self.sent < l) {
            Some(next)
        } else {
            None
        }
    }

    fn is_done(&self) -> bool {
        self.limit.is_some_and(|l| self.sent >= l) && self.pending.is_empty()
    }

    fn fct(&self) -> Option<&FctRecorder> {
        Some(&self.fct)
    }
}

// ----------------------------------------------------------------------
// Sequential transfers (shuffle)
// ----------------------------------------------------------------------

/// Sends a list of transfers back to back on one connection ("when a
/// transfer is finished, the next one is started"), recording each FCT.
#[derive(Debug)]
pub struct SequentialSender {
    sizes: Vec<u64>,
    idx: usize,
    cur_end: u64,
    cur_start: Nanos,
    active: bool,
    kind: FctKind,
    fct: FctRecorder,
}

impl SequentialSender {
    /// Transfers of the given sizes, in order.
    pub fn new(sizes: Vec<u64>, kind: FctKind) -> SequentialSender {
        SequentialSender {
            sizes,
            idx: 0,
            cur_end: 0,
            cur_start: 0,
            active: false,
            kind,
            fct: FctRecorder::new(),
        }
    }
}

impl App for SequentialSender {
    fn poll(&mut self, now: Nanos, conn: &mut dyn AppConn) -> Option<Nanos> {
        if !conn.is_established() {
            return None;
        }
        loop {
            if !self.active {
                let &size = self.sizes.get(self.idx)?;
                conn.send(size);
                self.cur_end = conn.queued_bytes();
                self.cur_start = now;
                self.active = true;
            }
            if conn.acked_bytes() >= self.cur_end {
                let size = self.sizes[self.idx];
                self.fct
                    .record_flow(self.kind, self.cur_start, now, size, conn.flow_key());
                self.idx += 1;
                self.active = false;
                if self.idx >= self.sizes.len() {
                    return None;
                }
                // Loop to start the next transfer immediately.
            } else {
                return None;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.idx >= self.sizes.len()
    }

    fn fct(&self) -> Option<&FctRecorder> {
        Some(&self.fct)
    }
}

// ----------------------------------------------------------------------
// Ping-pong RTT probe (sockperf) + echo server
// ----------------------------------------------------------------------

/// Client half of a sockperf-style ping-pong: sends a small message, waits
/// for the echo, records the application-level round-trip time.
#[derive(Debug)]
pub struct PingPong {
    msg_bytes: u64,
    interval: Nanos,
    outstanding: Option<(Nanos, u64)>,
    next_ping: Option<Nanos>,
    rtts_ms: Vec<f64>,
}

impl PingPong {
    /// Probe with `msg_bytes` pings every `interval`.
    pub fn new(msg_bytes: u64, interval: Nanos) -> PingPong {
        assert!(msg_bytes > 0);
        PingPong {
            msg_bytes,
            interval,
            outstanding: None,
            next_ping: None,
            rtts_ms: Vec::new(),
        }
    }

    /// Collected RTTs in milliseconds.
    pub fn rtts_ms(&self) -> &[f64] {
        &self.rtts_ms
    }
}

impl App for PingPong {
    fn poll(&mut self, now: Nanos, conn: &mut dyn AppConn) -> Option<Nanos> {
        if !conn.is_established() {
            return None;
        }
        // Completion of the outstanding ping?
        if let Some((sent_at, expect)) = self.outstanding {
            if conn.delivered_bytes() >= expect {
                self.rtts_ms
                    .push((now - sent_at) as f64 / MILLISECOND as f64);
                self.outstanding = None;
                self.next_ping = Some(sent_at + self.interval);
            }
        }
        // Time for the next ping?
        let next = *self.next_ping.get_or_insert(now);
        if self.outstanding.is_none() && now >= next {
            conn.send(self.msg_bytes);
            self.outstanding = Some((now, conn.delivered_bytes() + self.msg_bytes));
            self.next_ping = Some(now + self.interval);
        }
        // While a ping is in flight we are purely event-driven (the echo
        // arrival re-polls us); asking for a wake-up would spin the host.
        if self.outstanding.is_some() {
            None
        } else {
            self.next_ping
        }
    }

    fn rtt_samples_ms(&self) -> Option<&[f64]> {
        Some(&self.rtts_ms)
    }
}

/// Server half: echoes every delivered byte back.
#[derive(Debug, Default)]
pub struct EchoServer {
    echoed: u64,
}

impl EchoServer {
    /// New echo server.
    pub fn new() -> EchoServer {
        EchoServer::default()
    }
}

impl App for EchoServer {
    fn poll(&mut self, _now: Nanos, conn: &mut dyn AppConn) -> Option<Nanos> {
        if !conn.is_established() {
            return None;
        }
        let delivered = conn.delivered_bytes();
        if delivered > self.echoed {
            conn.send(delivered - self.echoed);
            self.echoed = delivered;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory fake transport: what is sent is instantly "acked"
    /// after `advance()`, and deliveries are injected by the test.
    #[derive(Default)]
    struct FakeConn {
        established: bool,
        queued: u64,
        acked: u64,
        delivered: u64,
    }

    impl AppConn for FakeConn {
        fn send(&mut self, bytes: u64) {
            self.queued += bytes;
        }
        fn close(&mut self) {}
        fn acked_bytes(&self) -> u64 {
            self.acked
        }
        fn queued_bytes(&self) -> u64 {
            self.queued
        }
        fn delivered_bytes(&self) -> u64 {
            self.delivered
        }
        fn is_established(&self) -> bool {
            self.established
        }
    }

    #[test]
    fn bulk_sender_records_fct_on_completion() {
        let mut app = BulkSender::new(1_000_000, FctKind::Background);
        let mut conn = FakeConn::default();
        assert!(app.poll(0, &mut conn).is_none());
        assert_eq!(conn.queued, 0, "nothing before establishment");
        conn.established = true;
        app.poll(5, &mut conn);
        assert_eq!(conn.queued, 1_000_000);
        conn.acked = 400_000;
        app.poll(10, &mut conn);
        assert!(!app.is_done());
        conn.acked = 1_000_000;
        app.poll(42, &mut conn);
        assert!(app.is_done());
        let s = app.fct().unwrap().samples();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].start, 5);
        assert_eq!(s[0].end, 42);
    }

    #[test]
    fn unlimited_bulk_never_completes() {
        let mut app = BulkSender::unlimited();
        let mut conn = FakeConn {
            established: true,
            ..FakeConn::default()
        };
        app.poll(0, &mut conn);
        conn.acked = conn.queued / 2;
        app.poll(100, &mut conn);
        assert!(!app.is_done());
        assert!(conn.queued >= 1 << 40);
    }

    #[test]
    fn message_sender_schedules_periodically() {
        let mut app = MessageSender::new(16_384, 100 * MILLISECOND, Some(3), FctKind::Mice);
        let mut conn = FakeConn {
            established: true,
            ..FakeConn::default()
        };
        let wake = app.poll(0, &mut conn).unwrap();
        assert_eq!(conn.queued, 16_384);
        assert_eq!(wake, 100 * MILLISECOND);
        // First completes quickly.
        conn.acked = 16_384;
        app.poll(2 * MILLISECOND, &mut conn);
        assert_eq!(app.fct().unwrap().len(), 1);
        // Second and third fire at their periods.
        app.poll(100 * MILLISECOND, &mut conn);
        assert_eq!(conn.queued, 2 * 16_384);
        app.poll(200 * MILLISECOND, &mut conn);
        assert_eq!(conn.queued, 3 * 16_384);
        conn.acked = conn.queued;
        app.poll(205 * MILLISECOND, &mut conn);
        assert!(app.is_done());
        assert_eq!(app.fct().unwrap().len(), 3);
        // FCT of msg 2 measured from its scheduled time (100 ms).
        let s = app.fct().unwrap().samples()[1];
        assert_eq!(s.start, 100 * MILLISECOND);
    }

    #[test]
    fn message_sender_catches_up_after_stall() {
        // If polls are late, missed periods are sent immediately.
        let mut app = MessageSender::new(1_000, 10 * MILLISECOND, None, FctKind::Mice);
        let mut conn = FakeConn {
            established: true,
            ..FakeConn::default()
        };
        app.poll(0, &mut conn);
        app.poll(35 * MILLISECOND, &mut conn);
        // t=0, 10, 20, 30 all due by 35 ms.
        assert_eq!(conn.queued, 4_000);
    }

    #[test]
    fn sequential_sender_walks_the_list() {
        let mut app = SequentialSender::new(vec![100, 200, 300], FctKind::Background);
        let mut conn = FakeConn {
            established: true,
            ..FakeConn::default()
        };
        app.poll(0, &mut conn);
        assert_eq!(conn.queued, 100);
        conn.acked = 100;
        app.poll(10, &mut conn);
        assert_eq!(conn.queued, 300, "second transfer started");
        conn.acked = 300;
        app.poll(20, &mut conn);
        conn.acked = 600;
        app.poll(30, &mut conn);
        assert!(app.is_done());
        assert_eq!(app.fct().unwrap().len(), 3);
    }

    #[test]
    fn ping_pong_measures_rtt() {
        let mut app = PingPong::new(64, 10 * MILLISECOND);
        let mut conn = FakeConn {
            established: true,
            ..FakeConn::default()
        };
        app.poll(0, &mut conn);
        assert_eq!(conn.queued, 64);
        // Echo arrives 300 µs later.
        conn.delivered = 64;
        app.poll(300_000, &mut conn);
        assert_eq!(app.rtts_ms().len(), 1);
        assert!((app.rtts_ms()[0] - 0.3).abs() < 1e-9);
        // Next ping not before the interval.
        app.poll(5 * MILLISECOND, &mut conn);
        assert_eq!(conn.queued, 64);
        app.poll(10 * MILLISECOND, &mut conn);
        assert_eq!(conn.queued, 128);
    }

    #[test]
    fn echo_server_echoes_exactly_once() {
        let mut app = EchoServer::new();
        let mut conn = FakeConn {
            established: true,
            ..FakeConn::default()
        };
        conn.delivered = 500;
        app.poll(0, &mut conn);
        assert_eq!(conn.queued, 500);
        app.poll(1, &mut conn);
        assert_eq!(conn.queued, 500, "no double echo");
        conn.delivered = 700;
        app.poll(2, &mut conn);
        assert_eq!(conn.queued, 700);
    }
}
