//! Empirical flow-size distributions for the trace-driven workloads
//! (Figure 23).
//!
//! The paper samples message sizes from a **web-search** trace (the DCTCP
//! paper \[3\]) and a **data-mining** trace (VL2 \[25\]) "whose flow size
//! distribution has a heavier tail". The production traces are not
//! public; what *is* public — and what every simulator reproduction of
//! these workloads uses — are the CDFs published in those papers. We
//! encode those CDF points and sample by inverse transform with linear
//! interpolation, which preserves exactly the property the experiment
//! tests (mice-vs-elephant mix and tail weight).

use rand::{Rng, RngExt};

/// An empirical flow-size CDF: `(bytes, cumulative_probability)` points.
#[derive(Debug, Clone)]
pub struct FlowSizeDist {
    name: &'static str,
    /// Strictly increasing in both coordinates; first prob > 0, last = 1.
    points: Vec<(f64, f64)>,
}

impl FlowSizeDist {
    /// The web-search workload CDF (DCTCP paper, sizes in bytes).
    pub fn web_search() -> FlowSizeDist {
        const KB: f64 = 1_000.0;
        FlowSizeDist {
            name: "web-search",
            points: vec![
                (1.0 * KB, 0.0),
                (6.0 * KB, 0.15),
                (13.0 * KB, 0.30),
                (19.0 * KB, 0.45),
                (33.0 * KB, 0.60),
                (53.0 * KB, 0.70),
                (133.0 * KB, 0.80),
                (667.0 * KB, 0.90),
                (1_467.0 * KB, 0.95),
                (3_333.0 * KB, 0.98),
                (6_667.0 * KB, 0.99),
                (20_000.0 * KB, 1.0),
            ],
        }
    }

    /// The data-mining workload CDF (VL2 paper; heavier tail).
    pub fn data_mining() -> FlowSizeDist {
        const KB: f64 = 1_000.0;
        FlowSizeDist {
            name: "data-mining",
            points: vec![
                (0.1 * KB, 0.0),
                (1.0 * KB, 0.50),
                (2.0 * KB, 0.60),
                (3.0 * KB, 0.70),
                (7.0 * KB, 0.80),
                (267.0 * KB, 0.90),
                (2_107.0 * KB, 0.95),
                (66_667.0 * KB, 0.99),
                (666_667.0 * KB, 1.0),
            ],
        }
    }

    /// Distribution name for reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sample one flow size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        self.quantile(u)
    }

    /// The size at cumulative probability `u ∈ [0, 1]` (linear
    /// interpolation between CDF points).
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let pts = &self.points;
        if u <= pts[0].1 {
            return pts[0].0 as u64;
        }
        for w in pts.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if u <= p1 {
                let frac = if p1 > p0 { (u - p0) / (p1 - p0) } else { 1.0 };
                return (x0 + frac * (x1 - x0)).max(1.0) as u64;
            }
        }
        pts.last().unwrap().0 as u64
    }

    /// Mean flow size implied by the CDF (trapezoidal; used to pick
    /// message counts for a target load).
    pub fn mean(&self) -> f64 {
        let mut mean = 0.0;
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            mean += (p1 - p0) * (x0 + x1) / 2.0;
        }
        mean + self.points[0].0 * self.points[0].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantiles_match_cdf_points() {
        let ws = FlowSizeDist::web_search();
        assert_eq!(ws.quantile(0.15), 6_000);
        assert_eq!(ws.quantile(0.90), 667_000);
        assert_eq!(ws.quantile(1.0), 20_000_000);
        let dm = FlowSizeDist::data_mining();
        assert_eq!(dm.quantile(0.5), 1_000);
        assert_eq!(dm.quantile(1.0), 666_667_000);
    }

    #[test]
    fn interpolation_is_monotone() {
        let ws = FlowSizeDist::web_search();
        let mut prev = 0;
        for i in 0..=100 {
            let q = ws.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile not monotone at {i}");
            prev = q;
        }
    }

    #[test]
    fn sampling_matches_quantiles_statistically() {
        let ws = FlowSizeDist::web_search();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let small = (0..n)
            .map(|_| ws.sample(&mut rng))
            .filter(|&s| s <= 13_000)
            .count();
        // P(size ≤ 13KB) = 0.30.
        let frac = small as f64 / n as f64;
        assert!((frac - 0.30).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn data_mining_tail_is_heavier() {
        // Compare tail mass: P(size > 1MB).
        let ws = FlowSizeDist::web_search();
        let dm = FlowSizeDist::data_mining();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 30_000;
        let count_over = |d: &FlowSizeDist, rng: &mut StdRng| {
            (0..n).filter(|_| d.sample(rng) > 10_000_000).count()
        };
        let ws_tail = count_over(&ws, &mut rng);
        let dm_tail = count_over(&dm, &mut rng);
        assert!(
            dm_tail > ws_tail,
            "data-mining tail ({dm_tail}) should exceed web-search ({ws_tail})"
        );
        // And the mining mean is dominated by the tail.
        assert!(dm.mean() > ws.mean());
    }

    #[test]
    fn deterministic_with_same_seed() {
        let ws = FlowSizeDist::web_search();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| ws.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| ws.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
