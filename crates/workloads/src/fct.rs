//! Flow-completion-time bookkeeping.
//!
//! FCT is "the right metric for congestion control" \[19\] and what
//! Figures 21–23 report. A [`FctRecorder`] collects `(kind, start, end,
//! bytes)` tuples; experiment code splits mice from background flows by
//! kind and feeds the distributions in `acdc-stats`.

use acdc_packet::FlowKey;
use acdc_stats::time::{Nanos, MILLISECOND};
use acdc_stats::Distribution;

/// Flow class, for splitting CDFs the way the paper's figures do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FctKind {
    /// Small latency-sensitive message ("mice": 16 KB messages, or
    /// trace-driven flows < 10 KB).
    Mice,
    /// Bulk background transfer (512 MB in stride/shuffle).
    Background,
    /// Anything else.
    Other,
}

/// One completed flow.
#[derive(Debug, Clone, Copy)]
pub struct FctSample {
    /// Flow class.
    pub kind: FctKind,
    /// When the message was handed to the transport.
    pub start: Nanos,
    /// When the final byte was acknowledged.
    pub end: Nanos,
    /// Message size in bytes.
    pub bytes: u64,
    /// The wire 5-tuple the transfer ran on (the same [`FlowKey`] the
    /// vSwitch table and the host demux use), when the recorder knows it.
    pub flow: Option<FlowKey>,
}

impl FctSample {
    /// Completion time.
    pub fn fct(&self) -> Nanos {
        self.end.saturating_sub(self.start)
    }
}

/// Accumulates completed-flow samples.
#[derive(Debug, Clone, Default)]
pub struct FctRecorder {
    samples: Vec<FctSample>,
}

impl FctRecorder {
    /// New empty recorder.
    pub fn new() -> FctRecorder {
        FctRecorder::default()
    }

    /// Record a completion with no flow attribution.
    pub fn record(&mut self, kind: FctKind, start: Nanos, end: Nanos, bytes: u64) {
        self.samples.push(FctSample {
            kind,
            start,
            end,
            bytes,
            flow: None,
        });
    }

    /// Record a completion attributed to a wire flow, so samples can be
    /// joined against vSwitch [`flow_stats`](FlowKey) by key.
    pub fn record_flow(
        &mut self,
        kind: FctKind,
        start: Nanos,
        end: Nanos,
        bytes: u64,
        flow: Option<FlowKey>,
    ) {
        self.samples.push(FctSample {
            kind,
            start,
            end,
            bytes,
            flow,
        });
    }

    /// Samples attributed to `flow`.
    pub fn samples_for(&self, flow: FlowKey) -> impl Iterator<Item = &FctSample> {
        self.samples.iter().filter(move |s| s.flow == Some(flow))
    }

    /// All samples.
    pub fn samples(&self) -> &[FctSample] {
        &self.samples
    }

    /// Merge another recorder's samples into this one.
    pub fn merge(&mut self, other: &FctRecorder) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Number of completions recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// No samples?
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// FCT distribution (milliseconds) for one kind.
    pub fn distribution_ms(&self, kind: FctKind) -> Distribution {
        let mut d = Distribution::new();
        d.extend(
            self.samples
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.fct() as f64 / MILLISECOND as f64),
        );
        d
    }

    /// FCT distribution (milliseconds) for flows smaller than `cutoff`
    /// bytes (the trace-driven figures use "< 10 KB" as mice).
    pub fn distribution_ms_by_size(&self, max_bytes: u64) -> Distribution {
        let mut d = Distribution::new();
        d.extend(
            self.samples
                .iter()
                .filter(|s| s.bytes < max_bytes)
                .map(|s| s.fct() as f64 / MILLISECOND as f64),
        );
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_split_by_kind() {
        let mut r = FctRecorder::new();
        r.record(FctKind::Mice, 0, 2 * MILLISECOND, 16_384);
        r.record(FctKind::Mice, 0, 4 * MILLISECOND, 16_384);
        r.record(FctKind::Background, 0, 1_000 * MILLISECOND, 512 << 20);
        let mut mice = r.distribution_ms(FctKind::Mice);
        assert_eq!(mice.len(), 2);
        assert_eq!(mice.median(), Some(3.0));
        let bg = r.distribution_ms(FctKind::Background);
        assert_eq!(bg.len(), 1);
    }

    #[test]
    fn split_by_size() {
        let mut r = FctRecorder::new();
        r.record(FctKind::Other, 0, MILLISECOND, 5_000);
        r.record(FctKind::Other, 0, MILLISECOND, 50_000);
        assert_eq!(r.distribution_ms_by_size(10_000).len(), 1);
    }

    #[test]
    fn merge_combines() {
        let mut a = FctRecorder::new();
        a.record(FctKind::Mice, 0, 1, 1);
        let mut b = FctRecorder::new();
        b.record(FctKind::Mice, 0, 2, 1);
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn fct_saturates() {
        let s = FctSample {
            kind: FctKind::Other,
            start: 10,
            end: 5,
            bytes: 0,
            flow: None,
        };
        assert_eq!(s.fct(), 0);
    }

    #[test]
    fn samples_join_by_flow_key() {
        let key = FlowKey {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            src_port: 40_000,
            dst_port: 5_001,
        };
        let mut r = FctRecorder::new();
        r.record(FctKind::Mice, 0, 1, 100);
        r.record_flow(FctKind::Mice, 0, 2, 100, Some(key));
        r.record_flow(FctKind::Mice, 0, 3, 100, Some(key.reverse()));
        assert_eq!(r.samples_for(key).count(), 1);
        assert_eq!(r.samples_for(key.reverse()).count(), 1);
    }
}
