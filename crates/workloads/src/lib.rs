//! # acdc-workloads — datacenter traffic workloads
//!
//! The applications and traffic patterns of the paper's evaluation (§5):
//!
//! * [`apps`] — per-connection applications: bulk senders (iperf),
//!   fixed-size message generators, sequential transfers, and a
//!   sockperf-style ping-pong RTT probe with its echo server;
//! * [`dist`] — empirical flow-size distributions for the trace-driven
//!   workloads: the web-search CDF (DCTCP \[3\]) and the heavier-tailed
//!   data-mining CDF (VL2 \[25\]);
//! * [`fct`] — flow-completion-time bookkeeping;
//! * [`patterns`] — schedule builders for incast, concurrent stride and
//!   shuffle.
//!
//! Apps drive an [`acdc_tcp::Endpoint`] through the narrow [`apps::AppConn`]
//! interface, so they stay independent of the simulator that hosts them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod dist;
pub mod fct;
pub mod patterns;

pub use apps::{App, AppConn, BulkSender, EchoServer, MessageSender, PingPong, SequentialSender};
pub use dist::FlowSizeDist;
pub use fct::{FctKind, FctRecorder};
