//! Scheduler equivalence: the hierarchical timing wheel must be
//! observationally identical to the sorted `(timestamp, insertion
//! sequence)` heap it replaced. For arbitrary interleavings of
//! `schedule` / `cancel` / `advance-and-drain` — deadline mixes spanning
//! every wheel level, the far-future overflow heap, and same-timestamp
//! ties — both schedulers must emit the exact same pop sequence. This is
//! the property that pins the engine's documented total order (equal
//! deadlines fire in insertion order) across the heap → wheel port.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use acdc_netsim::TimerWheel;
use proptest::prelude::*;

/// One scheduler operation. Deltas are relative to the current virtual
/// time, mirroring how the engine always schedules at `now + delay`.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule a timer `dt` past the current floor.
    Schedule { dt: u64 },
    /// Cancel the `pick`-th live timer (modulo how many are live).
    Cancel { pick: usize },
    /// Advance the clock by `dt` and drain everything due.
    Advance { dt: u64 },
}

/// Deadline deltas weighted to stress every storage tier: same-slot
/// ties, the three wheel levels (slot sizes 2^10 / 2^18 / 2^26 ns), and
/// the overflow heap past the 2^34 ns horizon.
fn arb_dt() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..4,                          // same-slot ties
        4 => 0u64..(1 << 12),                  // level 0
        3 => (1u64 << 12)..(1 << 20),          // level 1
        3 => (1u64 << 20)..(1 << 28),          // level 2
        2 => (1u64 << 28)..(1 << 36),          // level 2 far + overflow
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => arb_dt().prop_map(|dt| Op::Schedule { dt }),
        1 => any::<usize>().prop_map(|pick| Op::Cancel { pick }),
        3 => arb_dt().prop_map(|dt| Op::Advance { dt }),
    ]
}

/// The reference scheduler: exactly the engine's old implementation — a
/// min-heap on `(timestamp, sequence)` with lazy cancellation.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    cancelled: BTreeSet<u64>,
}

impl HeapModel {
    fn schedule(&mut self, at: u64, seq: u64, val: u32) {
        self.heap.push(Reverse((at, seq, val)));
    }

    fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
    }

    fn pop_before(&mut self, limit: u64) -> Option<(u64, u64, u32)> {
        while let Some(&Reverse((at, seq, val))) = self.heap.peek() {
            if at > limit {
                return None;
            }
            self.heap.pop();
            if self.cancelled.remove(&seq) {
                continue;
            }
            return Some((at, seq, val));
        }
        None
    }
}

proptest! {
    #[test]
    fn wheel_matches_heap_on_arbitrary_op_sequences(
        ops in prop::collection::vec(arb_op(), 1..120),
    ) {
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        let mut model = HeapModel::default();
        let mut now = 0u64;
        let mut next_seq = 0u64;
        let mut live: Vec<u64> = Vec::new(); // seqs scheduled, not popped/cancelled

        for op in &ops {
            match *op {
                Op::Schedule { dt } => {
                    let at = now + dt;
                    let seq = next_seq;
                    next_seq += 1;
                    // The payload encodes the seq so value mismatches
                    // are caught independently of ordering mismatches.
                    let val = seq as u32;
                    wheel.schedule(at, seq, val);
                    model.schedule(at, seq, val);
                    live.push(seq);
                }
                Op::Cancel { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let seq = live.remove(pick % live.len());
                    wheel.cancel(seq);
                    model.cancel(seq);
                }
                Op::Advance { dt } => {
                    let limit = now + dt;
                    loop {
                        let got = wheel.pop_before(limit);
                        let want = model.pop_before(limit);
                        prop_assert_eq!(got, want, "pop divergence at limit {}", limit);
                        match got {
                            Some((at, seq, _)) => {
                                prop_assert!(at <= limit);
                                live.retain(|&s| s != seq);
                            }
                            None => break,
                        }
                    }
                    now = limit;
                }
            }
            prop_assert_eq!(wheel.len(), live.len(), "live-count divergence");
        }

        // Final total drain: everything still pending must come out of
        // both schedulers in the same order.
        loop {
            let got = wheel.pop_before(u64::MAX);
            let want = model.pop_before(u64::MAX);
            prop_assert_eq!(got, want, "final drain divergence");
            if got.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// Equal-deadline bursts specifically: N timers on one timestamp,
    /// scheduled in interleaved batches, must fire strictly in insertion
    /// order (the FIFO-tie contract `Network::schedule_timer_at`
    /// documents).
    #[test]
    fn equal_deadline_ties_fire_in_insertion_order(
        base in 0u64..(1 << 30),
        burst in 2usize..24,
    ) {
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        for seq in 0..burst as u64 {
            wheel.schedule(base, seq, seq as u32);
        }
        let mut fired = Vec::new();
        while let Some((at, seq, val)) = wheel.pop_before(u64::MAX) {
            prop_assert_eq!(at, base);
            prop_assert_eq!(seq as u32, val);
            fired.push(seq);
        }
        let expect: Vec<u64> = (0..burst as u64).collect();
        prop_assert_eq!(fired, expect);
    }
}
