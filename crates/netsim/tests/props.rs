//! Property-based tests for the discrete-event engine and switch model.

use std::any::Any;

use acdc_netsim::{Ctx, LinkSpec, Network, Node, PortId, SwitchConfig, SwitchNode};
use acdc_packet::{Ecn, Ipv4Repr, Segment, TcpFlags, TcpRepr, PROTO_TCP};
use proptest::prelude::*;

fn seg(dst: [u8; 4], ecn: Ecn, payload: usize) -> Segment {
    let ip = Ipv4Repr {
        src_addr: [10, 0, 0, 1],
        dst_addr: dst,
        protocol: PROTO_TCP,
        ecn,
        payload_len: 0,
        ttl: 64,
    };
    let mut t = TcpRepr::new(1, 2);
    t.flags = TcpFlags::ACK;
    Segment::new_tcp(ip, t, payload)
}

/// Sink that records arrival order and bytes.
struct Sink {
    got: Vec<(u64, usize)>,
}
impl Node for Sink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, s: Segment) {
        self.got.push((ctx.now(), s.wire_len()));
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Blasts a scripted schedule of packets.
struct Blaster {
    port: PortId,
    schedule: Vec<(u64, usize, bool)>, // (time, payload, ect)
    sent: usize,
}
impl Node for Blaster {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: PortId, _s: Segment) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        let now = ctx.now();
        while self.sent < self.schedule.len() && self.schedule[self.sent].0 <= now {
            let (_, payload, ect) = self.schedule[self.sent];
            let e = if ect { Ecn::Ect0 } else { Ecn::NotEct };
            ctx.enqueue(self.port, seg([10, 0, 0, 9], e, payload));
            self.sent += 1;
        }
        if self.sent < self.schedule.len() {
            let at = self.schedule[self.sent].0;
            ctx.set_timer(at - now, 0);
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn arb_schedule() -> impl Strategy<Value = Vec<(u64, usize, bool)>> {
    prop::collection::vec((0u64..2_000_000, 1usize..9000, any::<bool>()), 1..80).prop_map(
        |mut v| {
            v.sort_by_key(|x| x.0);
            v
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every packet offered to a switch is either forwarded
    /// (and eventually delivered) or counted as dropped; arrivals at the
    /// sink are in nondecreasing time order and spaced at least a
    /// serialization time apart on the bottleneck.
    #[test]
    fn switch_conserves_packets(schedule in arb_schedule(), wred in any::<bool>()) {
        let n_offered = schedule.len() as u64;
        let mut net = Network::new();
        let h = net.reserve_node();
        let sw = net.reserve_node();
        let dst = net.add_node(Box::new(Sink { got: Vec::new() }));
        let (hp, _) = net.connect(h, sw, LinkSpec::ten_gbe(1_000));
        let bottleneck = LinkSpec {
            rate_bps: 1_000_000_000,
            propagation: 1_000,
        };
        let (op, _) = net.connect(sw, dst, bottleneck);
        let cfg = if wred {
            SwitchConfig::with_wred_ecn(10_000)
        } else {
            SwitchConfig {
                shared_buffer_bytes: 40_000,
                ..SwitchConfig::default()
            }
        };
        let mut s = SwitchNode::new(cfg);
        s.add_route([10, 0, 0, 9], op);
        net.install(sw, Box::new(s));
        net.install(h, Box::new(Blaster { port: hp, schedule, sent: 0 }));
        net.schedule_timer_at(h, 0, 0);
        net.run_until(10_000_000_000);

        let delivered = net.node_mut::<Sink>(dst).unwrap().got.clone();
        // Arrival order is time-sorted.
        for w in delivered.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
        }
        let sw = net.node_mut::<SwitchNode>(sw).unwrap();
        let c = sw.counters();
        prop_assert_eq!(c.forwarded, delivered.len() as u64, "forwarded = delivered");
        prop_assert_eq!(c.forwarded + c.total_drops(), n_offered, "conservation");
        // Occupancy fully drains.
        prop_assert_eq!(sw.port_occupancy(op), 0);
    }

    /// Determinism: two identical runs produce identical arrival traces.
    #[test]
    fn engine_is_deterministic(schedule in arb_schedule()) {
        let run = |schedule: Vec<(u64, usize, bool)>| {
            let mut net = Network::new();
            let h = net.reserve_node();
            let sw = net.reserve_node();
            let dst = net.add_node(Box::new(Sink { got: Vec::new() }));
            let (hp, _) = net.connect(h, sw, LinkSpec::ten_gbe(500));
            let (op, _) = net.connect(sw, dst, LinkSpec {
                rate_bps: 2_000_000_000,
                propagation: 700,
            });
            let mut s = SwitchNode::new(SwitchConfig::with_wred_ecn(20_000));
            s.add_route([10, 0, 0, 9], op);
            net.install(sw, Box::new(s));
            net.install(h, Box::new(Blaster { port: hp, schedule, sent: 0 }));
            net.schedule_timer_at(h, 0, 0);
            net.run_until(10_000_000_000);
            net.node_mut::<Sink>(dst).unwrap().got.clone()
        };
        prop_assert_eq!(run(schedule.clone()), run(schedule));
    }

    /// ECT traffic is never WRED-dropped; it is only ever marked.
    #[test]
    fn ect_never_wred_dropped(schedule in arb_schedule()) {
        let schedule: Vec<_> = schedule.into_iter().map(|(t, p, _)| (t, p, true)).collect();
        let mut net = Network::new();
        let h = net.reserve_node();
        let sw = net.reserve_node();
        let dst = net.add_node(Box::new(Sink { got: Vec::new() }));
        let (hp, _) = net.connect(h, sw, LinkSpec::ten_gbe(1_000));
        let (op, _) = net.connect(sw, dst, LinkSpec {
            rate_bps: 500_000_000,
            propagation: 1_000,
        });
        let mut s = SwitchNode::new(SwitchConfig::with_wred_ecn(5_000));
        s.add_route([10, 0, 0, 9], op);
        net.install(sw, Box::new(s));
        net.install(h, Box::new(Blaster { port: hp, schedule, sent: 0 }));
        net.schedule_timer_at(h, 0, 0);
        net.run_until(10_000_000_000);
        let c = net.node_mut::<SwitchNode>(sw).unwrap().counters();
        prop_assert_eq!(c.wred_drops, 0, "ECT must be marked, not dropped");
    }

    /// The serialization model: back-to-back deliveries on one link are
    /// separated by at least the serialization time of the later packet.
    #[test]
    fn serialization_spacing(payloads in prop::collection::vec(1usize..9000, 2..40)) {
        let link = LinkSpec {
            rate_bps: 1_000_000_000,
            propagation: 5_000,
        };
        let schedule: Vec<(u64, usize, bool)> =
            payloads.iter().map(|&p| (0u64, p, true)).collect();
        let mut net = Network::new();
        let h = net.reserve_node();
        let dst = net.add_node(Box::new(Sink { got: Vec::new() }));
        let (hp, _) = net.connect(h, dst, link);
        net.install(h, Box::new(Blaster { port: hp, schedule, sent: 0 }));
        net.schedule_timer_at(h, 0, 0);
        net.run_until(10_000_000_000);
        let got = net.node_mut::<Sink>(dst).unwrap().got.clone();
        prop_assert_eq!(got.len(), payloads.len());
        for w in got.windows(2) {
            let gap = w[1].0 - w[0].0;
            let ser = link.serialization_delay(w[1].1);
            prop_assert!(gap >= ser, "gap {gap} < serialization {ser}");
        }
    }
}
