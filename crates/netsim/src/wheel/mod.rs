//! Hierarchical timing wheel: the engine's event scheduler.
//!
//! Three levels of 256 slots replace the old global `BinaryHeap`:
//!
//! | level | slot width | horizon from the cursor |
//! |-------|-----------:|------------------------:|
//! | L0    | 2¹⁰ ns ≈ 1 µs   | 2¹⁸ ns ≈ 262 µs  |
//! | L1    | 2¹⁸ ns ≈ 262 µs | 2²⁶ ns ≈ 67 ms   |
//! | L2    | 2²⁶ ns ≈ 67 ms  | 2³⁴ ns ≈ 17.2 s  |
//!
//! Scheduling drops an entry into the innermost level whose horizon
//! covers its deadline — O(1), no comparisons — and anything beyond L2's
//! horizon goes to the sorted far-future heap in [`overflow`] (the only
//! module in this crate allowed to name `BinaryHeap`; lint rule D004).
//! As the cursor advances, higher-level slots *cascade*: their entries
//! redistribute into the levels below, which the slot-width alignment
//! (each level's granularity divides the next) makes exact — a higher
//! level slot boundary can never bisect a lower-level slot.
//!
//! ## Ordering contract
//!
//! Pops come out in `(deadline, insertion sequence)` order — the
//! engine's documented total order, with equal-deadline ties firing in
//! insertion order. Slot residents are unsorted until their slot is
//! drained; the drain sorts once by `(at, seq)` into the `ready` batch,
//! and because `seq` is unique the sort is a total order. The
//! equivalence proptest in `tests/wheel_props.rs` drives this scheduler
//! and a `BinaryHeap` reference model with arbitrary interleaved
//! schedule/cancel/advance sequences and asserts identical pop streams.
//!
//! ## Same-timestamp batching
//!
//! Draining a slot serves every event in it — in particular whole
//! same-timestamp runs — from one scan. Each pop served from an
//! already-drained batch (a peek the old heap would have re-done)
//! increments the `engine.wheel.same_slot_batches` counter.

use std::collections::{BTreeSet, VecDeque};
use std::mem;

use acdc_stats::time::Nanos;
use acdc_telemetry::Counter;

pub(crate) mod overflow;

const SLOTS: usize = 256;
const WORDS: usize = SLOTS / 64;
const LEVELS: usize = 3;
/// Bit position of each level's slot width (1 µs, 262 µs, 67 ms).
const SHIFTS: [u32; LEVELS] = [10, 18, 26];

/// One scheduled event: deadline, insertion sequence, payload.
struct Entry<T> {
    at: Nanos,
    seq: u64,
    val: T,
}

/// One wheel level: 256 slots plus an occupancy bitmap so the cursor
/// skips empty stretches in O(1) words instead of slot-by-slot.
struct Level<T> {
    slots: Vec<Vec<Entry<T>>>,
    occupied: [u64; WORDS],
}

impl<T> Level<T> {
    fn new() -> Level<T> {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
        }
    }

    fn mark(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1 << (idx % 64);
    }

    fn unmark(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1 << (idx % 64));
    }

    /// Distance (0..SLOTS, wrapping) from slot index `from` to the first
    /// occupied slot, or `None` if the level is empty.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let (fw, fb) = (from / 64, from % 64);
        let head = self.occupied[fw] >> fb;
        if head != 0 {
            return Some(head.trailing_zeros() as usize);
        }
        for k in 1..=WORDS {
            let wi = (fw + k) % WORDS;
            let base = k * 64 - fb;
            if wi == fw {
                // Wrapped all the way around: only the bits below `from`
                // in the starting word remain.
                let tail = self.occupied[fw] & ((1u64 << fb) - 1);
                return if tail != 0 {
                    Some(base + tail.trailing_zeros() as usize)
                } else {
                    None
                };
            }
            let w = self.occupied[wi];
            if w != 0 {
                return Some(base + w.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// The hierarchical timing wheel (see module docs). Generic over the
/// payload so the equivalence proptest can drive it with plain tokens
/// while the engine stores event kinds.
pub struct TimerWheel<T> {
    levels: [Level<T>; LEVELS],
    overflow: overflow::FarFuture<T>,
    /// The already-drained, `(at, seq)`-sorted batch pops are served
    /// from. Always the globally earliest live entries.
    ready: VecDeque<Entry<T>>,
    /// Absolute L0 slot number `ready` was drained from, while `ready`
    /// is non-empty: same-slot schedules merge straight into the batch.
    drained_slot: Option<u64>,
    /// Time floor: no live entry is earlier than this, and schedules
    /// below it clamp up to it (fire as soon as possible).
    cur: Nanos,
    /// Live (scheduled − popped − cancelled) entries.
    len: usize,
    /// Lazily-reaped cancelled sequences (see [`TimerWheel::cancel`]).
    cancelled: BTreeSet<u64>,
    /// Set once the first entry of a drained batch has been served;
    /// every further same-batch pop counts a saved re-scan.
    batch_started: bool,
    batches: Counter,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with its cursor at time zero.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            levels: [Level::new(), Level::new(), Level::new()],
            overflow: overflow::FarFuture::new(),
            ready: VecDeque::new(),
            drained_slot: None,
            cur: 0,
            len: 0,
            cancelled: BTreeSet::new(),
            batch_started: false,
            batches: Counter::standalone(),
        }
    }

    /// Live entries (scheduled, not yet popped or cancelled).
    pub fn len(&self) -> usize {
        self.len
    }

    /// No live entries?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pops served from an already-drained same-slot batch — each one a
    /// peek/rescan the `BinaryHeap` engine would have paid.
    pub fn same_slot_batches(&self) -> u64 {
        self.batches.get()
    }

    /// The live counter cell behind [`TimerWheel::same_slot_batches`],
    /// for adoption into a telemetry registry.
    pub fn batches_cell(&self) -> &Counter {
        &self.batches
    }

    /// Schedule `val` at absolute time `at` with insertion sequence
    /// `seq`. Sequences must be unique and increasing across calls (the
    /// engine's `next_seq` provides this); a deadline earlier than the
    /// cursor clamps up to it, i.e. fires as soon as possible.
    pub fn schedule(&mut self, at: Nanos, seq: u64, val: T) {
        let at = at.max(self.cur);
        self.len += 1;
        let e = Entry { at, seq, val };
        if self.drained_slot == Some(at >> SHIFTS[0]) && !self.ready.is_empty() {
            // The batch covering this deadline is already drained:
            // merge in sequence position instead of re-touching slots.
            let pos = self
                .ready
                .partition_point(|x| (x.at, x.seq) < (e.at, e.seq));
            self.ready.insert(pos, e);
            return;
        }
        self.place(e);
    }

    /// Lazily cancel the pending entry with sequence `seq`. The caller
    /// must know `seq` is live (scheduled, not yet popped or cancelled);
    /// the entry's storage is reaped when its deadline comes around.
    pub fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
        self.len -= 1;
    }

    /// Pop the earliest live entry with deadline ≤ `limit`, as
    /// `(at, seq, payload)`, or `None` if every live entry is later.
    pub fn pop_before(&mut self, limit: Nanos) -> Option<(Nanos, u64, T)> {
        loop {
            while let Some(head) = self.ready.front() {
                if head.at > limit {
                    return None;
                }
                let e = self.ready.pop_front().expect("front() was Some");
                if self.ready.is_empty() {
                    self.drained_slot = None;
                }
                if self.cancelled.remove(&e.seq) {
                    continue; // len already decremented by cancel()
                }
                self.len -= 1;
                if self.batch_started {
                    self.batches.inc();
                } else {
                    self.batch_started = true;
                }
                return Some((e.at, e.seq, e.val));
            }
            if !self.refill(limit) {
                return None;
            }
        }
    }

    /// Deadline of the earliest pending entry. Exact for everything in
    /// the wheel proper; a cancelled-but-unreaped entry at the very head
    /// of the far-future overflow may be reported until reaped (the
    /// engine never cancels, so its peeks are always exact).
    pub fn peek_at(&self) -> Option<Nanos> {
        let mut best: Option<Nanos> = None;
        let mut fold = |t: Option<Nanos>| {
            best = match (best, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        fold(
            self.ready
                .iter()
                .find(|e| !self.cancelled.contains(&e.seq))
                .map(|e| e.at),
        );
        for (i, level) in self.levels.iter().enumerate() {
            fold(self.level_min(level, i));
        }
        fold(match self.overflow.peek_seq() {
            Some(seq) if self.cancelled.contains(&seq) => None,
            _ => self.overflow.peek_at(),
        });
        best
    }

    /// Earliest live deadline stored in `level` (index `i`): walk
    /// occupied slots cursor-outward; the first slot with a live entry
    /// holds the level minimum (later slots only hold later deadlines).
    fn level_min(&self, level: &Level<T>, i: usize) -> Option<Nanos> {
        let cs = self.cur >> SHIFTS[i];
        let mut from = (cs as usize) % SLOTS;
        let mut walked = 0usize;
        while walked < SLOTS {
            let d = level.next_occupied(from)?;
            if walked + d >= SLOTS {
                return None;
            }
            let idx = (from + d) % SLOTS;
            let min = level.slots[idx]
                .iter()
                .filter(|e| !self.cancelled.contains(&e.seq))
                .map(|e| e.at)
                .min();
            if min.is_some() {
                return min;
            }
            walked += d + 1;
            from = (idx + 1) % SLOTS;
        }
        None
    }

    /// Drop `e` into the innermost level whose window (256 slots from
    /// the cursor's slot) covers its deadline, else the overflow heap.
    fn place(&mut self, e: Entry<T>) {
        debug_assert!(e.at >= self.cur);
        for (i, &sh) in SHIFTS.iter().enumerate() {
            if (e.at >> sh) - (self.cur >> sh) < SLOTS as u64 {
                let idx = ((e.at >> sh) as usize) % SLOTS;
                self.levels[i].slots[idx].push(e);
                self.levels[i].mark(idx);
                return;
            }
        }
        self.overflow.push(e);
    }

    /// Advance the cursor toward the earliest pending work and drain one
    /// L0 slot into `ready`, cascading higher levels and pulling from
    /// the overflow heap as their boundaries are crossed. Returns false
    /// — touching nothing — when the earliest pending deadline (or its
    /// conservatively-early slot start) exceeds `limit`, so the cursor
    /// never outruns the caller's clock.
    fn refill(&mut self, limit: Nanos) -> bool {
        if self.len == 0 && self.cancelled.is_empty() {
            return false;
        }
        loop {
            // Per-level candidate: start time of the first occupied slot.
            let mut cand: [Option<u64>; LEVELS] = [None; LEVELS];
            for (i, level) in self.levels.iter().enumerate() {
                let cs = self.cur >> SHIFTS[i];
                cand[i] = level
                    .next_occupied((cs as usize) % SLOTS)
                    .map(|d| cs + d as u64);
            }
            let t = |i: usize| cand[i].map(|sn| sn << SHIFTS[i]);
            let (c0, c1, c2) = (t(0), t(1), t(2));
            let cof = self.overflow.peek_at();

            let min_aligned = [c0, c1, c2].into_iter().flatten().min();
            let Some(min_t) = [min_aligned, cof].into_iter().flatten().min() else {
                return false;
            };
            if min_t > limit {
                return false;
            }

            // The L0 candidate's slot covers [start, end): an overflow
            // head inside that window must migrate in before the slot
            // may drain (exact times versus aligned slot starts).
            let l0_end = cand[0].map(|sn| (sn << SHIFTS[0]).saturating_add(1 << SHIFTS[0]));
            let overflow_first = match (cof, min_aligned) {
                (Some(of), None) => Some(of),
                (Some(of), Some(ma)) if of <= ma => Some(of),
                (Some(of), _) if c0 == min_aligned && Some(of) < l0_end => Some(of),
                _ => None,
            };

            if let Some(of) = overflow_first {
                self.cur = self.cur.max(of);
                while let Some(at) = self.overflow.peek_at() {
                    if (at >> SHIFTS[LEVELS - 1]) - (self.cur >> SHIFTS[LEVELS - 1]) >= SLOTS as u64
                    {
                        break;
                    }
                    let e = self.overflow.pop().expect("peeked entry exists");
                    self.place(e);
                }
                continue;
            }
            // Cascade outer levels first on ties so their residents land
            // in the inner levels before an inner slot drains.
            if c2.is_some() && (c1.is_none() || c2 <= c1) && (c0.is_none() || c2 <= c0) {
                self.cascade(2, cand[2].expect("c2 is Some"));
                continue;
            }
            if c1.is_some() && (c0.is_none() || c1 <= c0) {
                self.cascade(1, cand[1].expect("c1 is Some"));
                continue;
            }
            let sn = cand[0].expect("some level had the minimum");
            self.cur = self.cur.max(sn << SHIFTS[0]);
            let idx = (sn as usize) % SLOTS;
            let mut batch = mem::take(&mut self.levels[0].slots[idx]);
            self.levels[0].unmark(idx);
            batch.sort_unstable_by_key(|e| (e.at, e.seq));
            self.ready.extend(batch);
            if self.ready.is_empty() {
                // Slot held only already-reaped storage; keep walking.
                continue;
            }
            self.drained_slot = Some(sn);
            self.batch_started = false;
            return true;
        }
    }

    /// Move every resident of `level` slot `sn` down into the levels
    /// below (guaranteed to fit once the cursor reaches the slot start).
    fn cascade(&mut self, level: usize, sn: u64) {
        self.cur = self.cur.max(sn << SHIFTS[level]);
        let idx = (sn as usize) % SLOTS;
        let entries = mem::take(&mut self.levels[level].slots[idx]);
        self.levels[level].unmark(idx);
        for e in entries {
            self.place(e);
        }
    }
}
