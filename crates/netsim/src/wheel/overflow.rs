//! The wheel's far-future overflow level: a plain min-heap ordered by
//! `(deadline, insertion sequence)`.
//!
//! Events beyond the top wheel level's horizon (~17 virtual seconds
//! from the wheel's cursor) are rare — long RTO backoffs, soak-scale
//! schedules — so they pay the classic O(log n) heap here and migrate
//! into the wheel proper when the cursor catches up. This module is the
//! **only** place in `crates/netsim/src` allowed to name `BinaryHeap`
//! (lint rule D004); everything near-horizon must go through the O(1)
//! wheel slots instead.

use std::collections::BinaryHeap;

use acdc_stats::time::Nanos;

use super::Entry;

/// Heap wrapper giving [`Entry`] the earliest-first order the scheduler
/// needs, independent of the payload type.
struct FarEntry<T>(Entry<T>);

impl<T> PartialEq for FarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for FarEntry<T> {}
impl<T> PartialOrd for FarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for FarEntry<T> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// Sorted far-future storage: push anything, pop in `(at, seq)` order.
pub(super) struct FarFuture<T> {
    heap: BinaryHeap<FarEntry<T>>,
}

impl<T> FarFuture<T> {
    pub(super) fn new() -> FarFuture<T> {
        FarFuture {
            heap: BinaryHeap::new(),
        }
    }

    pub(super) fn push(&mut self, e: Entry<T>) {
        self.heap.push(FarEntry(e));
    }

    /// Deadline of the earliest stored entry.
    pub(super) fn peek_at(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.0.at)
    }

    /// Sequence of the earliest stored entry (for exact peeks).
    pub(super) fn peek_seq(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.0.seq)
    }

    pub(super) fn pop(&mut self) -> Option<Entry<T>> {
        self.heap.pop().map(|e| e.0)
    }
}
