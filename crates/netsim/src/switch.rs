//! An output-queued datacenter switch with a shared buffer pool and
//! WRED/ECN marking — the model of the paper's IBM G8264 (9 MB of buffer
//! shared by forty-eight 10 G ports).
//!
//! ## Buffer management
//!
//! Ports draw from one shared pool. Admission uses the classic dynamic
//! threshold (Choudhury–Hahne, as in Broadcom silicon): a packet is
//! admitted to port `p` only if
//!
//! ```text
//! q_p + len ≤ alpha · (B − Σ q)      and      Σ q + len ≤ B
//! ```
//!
//! where `B` is the pool size and `alpha` the burst-absorption factor.
//! This reproduces the paper's Figure 20 experiment, which deliberately
//! pressures dynamic buffer allocation by congesting 47 of 48 ports.
//!
//! ## WRED/ECN
//!
//! When enabled (the DCTCP and AC/DC configurations), ECT packets are
//! **CE-marked** when the *instantaneous* queue is at or above the
//! threshold `K` (DCTCP-style step marking), while non-ECT packets are
//! **dropped** when the *WRED-averaged* queue is at or above `K` — real
//! WRED profiles run on an EWMA of the queue depth, which is precisely
//! why ECN-incapable flows fare so badly on a fabric that DCTCP keeps
//! hovering at the threshold (the Judd \[36\] / Wu \[72\] coexistence hazard
//! of Figures 15/16). When disabled (the CUBIC baseline), only the
//! buffer limits drop packets.

use std::any::Any;
use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use acdc_packet::Segment;
use acdc_stats::time::Nanos;
use acdc_stats::TimeSeries;
use acdc_telemetry::{Counter, Telemetry};

use crate::engine::{Ctx, Node, PortId};

/// WRED/ECN marking parameters.
#[derive(Debug, Clone, Copy)]
pub struct WredEcnConfig {
    /// Marking threshold `K` in bytes of *instantaneous* queue occupancy:
    /// ECT packets are CE-marked at or above this depth (DCTCP-style step
    /// marking).
    pub threshold_bytes: u64,
    /// WRED ramp for **non-ECT** packets, evaluated on the *averaged*
    /// queue: drop probability rises linearly from 0 at `drop_min_bytes`
    /// to `drop_p_max` at `drop_max_bytes`, and is 1 beyond it.
    pub drop_min_bytes: u64,
    /// Upper end of the WRED ramp.
    pub drop_max_bytes: u64,
    /// Drop probability at the top of the ramp.
    pub drop_p_max: f64,
}

impl WredEcnConfig {
    /// A WRED/ECN profile centred on marking threshold `k` with the
    /// classic ramp (85%–115% of `k`, max probability 15%).
    pub fn centered_on(k: u64) -> WredEcnConfig {
        WredEcnConfig {
            threshold_bytes: k,
            drop_min_bytes: k * 85 / 100,
            drop_max_bytes: k * 115 / 100,
            drop_p_max: 0.15,
        }
    }

    /// DCTCP-style threshold for a 10 Gbps network: the paper's testbed
    /// used K ≈ 90 KB-class thresholds (65 × 1.5 KB packets).
    pub fn dctcp_10g() -> WredEcnConfig {
        WredEcnConfig::centered_on(90_000)
    }

    /// Drop probability for a non-ECT packet at averaged depth `avg`.
    pub fn drop_probability(&self, avg: f64) -> f64 {
        if avg < self.drop_min_bytes as f64 {
            0.0
        } else if avg >= self.drop_max_bytes as f64 {
            1.0
        } else {
            self.drop_p_max * (avg - self.drop_min_bytes as f64)
                / (self.drop_max_bytes - self.drop_min_bytes).max(1) as f64
        }
    }
}

/// Switch configuration.
#[derive(Debug, Clone, Copy)]
pub struct SwitchConfig {
    /// Shared buffer pool size in bytes (9 MB on the G8264).
    pub shared_buffer_bytes: u64,
    /// Dynamic-threshold alpha: per-port limit = alpha × free buffer.
    pub dynamic_alpha: f64,
    /// WRED/ECN marking; `None` disables it (baseline CUBIC config).
    pub wred_ecn: Option<WredEcnConfig>,
}

impl Default for SwitchConfig {
    fn default() -> SwitchConfig {
        SwitchConfig {
            shared_buffer_bytes: 9 * 1024 * 1024,
            dynamic_alpha: 8.0,
            wred_ecn: None,
        }
    }
}

impl SwitchConfig {
    /// The G8264 with WRED/ECN configured (DCTCP / AC/DC experiments).
    pub fn with_wred_ecn(threshold_bytes: u64) -> SwitchConfig {
        SwitchConfig {
            wred_ecn: Some(WredEcnConfig::centered_on(threshold_bytes)),
            ..SwitchConfig::default()
        }
    }
}

/// Drop/marking counters (the paper reads drop rates off switch counters).
/// This is the snapshot *view* of the live [`Counter`] cells inside
/// [`SwitchMetrics`], loaded by [`SwitchNode::counters`]; the cells are
/// adopted into an attached telemetry registry as `"switchN.<field>"`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchCounters {
    /// Packets forwarded (admitted to an output queue or transmitter).
    pub forwarded: u64,
    /// Packets CE-marked by WRED/ECN.
    pub ce_marked: u64,
    /// Non-ECT packets dropped by WRED above the threshold.
    pub wred_drops: u64,
    /// Packets dropped by buffer admission (shared pool or dynamic limit).
    pub buffer_drops: u64,
    /// Packets dropped because no route matched.
    pub no_route_drops: u64,
}

impl SwitchCounters {
    /// Total packets dropped for any reason.
    pub fn total_drops(&self) -> u64 {
        self.wred_drops + self.buffer_drops + self.no_route_drops
    }

    /// Drop rate over everything offered to the switch.
    pub fn drop_rate(&self) -> f64 {
        let offered = self.forwarded + self.total_drops();
        if offered == 0 {
            0.0
        } else {
            self.total_drops() as f64 / offered as f64
        }
    }
}

/// The live counter cells behind [`SwitchCounters`]. Standalone until a
/// telemetry hub adopts them (via [`Node::register_metrics`], called by
/// the engine when a hub is attached); either way the same cells back
/// [`SwitchNode::counters`], so no value is lost when a registry
/// attaches mid-run.
#[derive(Debug)]
struct SwitchMetrics {
    forwarded: Counter,
    ce_marked: Counter,
    wred_drops: Counter,
    buffer_drops: Counter,
    no_route_drops: Counter,
}

impl SwitchMetrics {
    fn standalone() -> SwitchMetrics {
        SwitchMetrics {
            forwarded: Counter::standalone(),
            ce_marked: Counter::standalone(),
            wred_drops: Counter::standalone(),
            buffer_drops: Counter::standalone(),
            no_route_drops: Counter::standalone(),
        }
    }

    fn register(&self, telemetry: &Telemetry, node: usize) {
        let reg = telemetry.registry();
        let each: [(&str, &Counter); 5] = [
            ("forwarded", &self.forwarded),
            ("ce_marked", &self.ce_marked),
            ("wred_drops", &self.wred_drops),
            ("buffer_drops", &self.buffer_drops),
            ("no_route_drops", &self.no_route_drops),
        ];
        for (field, cell) in each {
            reg.adopt_counter(format!("switch{node}.{field}"), cell);
        }
    }

    fn snapshot(&self) -> SwitchCounters {
        SwitchCounters {
            forwarded: self.forwarded.get(),
            ce_marked: self.ce_marked.get(),
            wred_drops: self.wred_drops.get(),
            buffer_drops: self.buffer_drops.get(),
            no_route_drops: self.no_route_drops.get(),
        }
    }
}

/// The switch node.
pub struct SwitchNode {
    cfg: SwitchConfig,
    /// Destination IPv4 → output port. Ordered so that any future
    /// iteration over routes is deterministic (lint rule D002).
    routes: BTreeMap<[u8; 4], PortId>,
    /// Fallback port for unmatched destinations (inter-switch trunk).
    default_route: Option<PortId>,
    /// Occupancy per output port, bytes (queued + in transmission).
    occupancy: BTreeMap<PortId, u64>,
    /// WRED-averaged occupancy per output port (EWMA, weight 1/16).
    avg_occupancy: BTreeMap<PortId, f64>,
    /// Total occupancy, bytes.
    total_occupancy: u64,
    counters: SwitchMetrics,
    /// Optional queue-depth probe: (port, sampled series).
    probe: Option<(PortId, TimeSeries)>,
    /// Deterministic RNG for the WRED drop ramp.
    rng: SmallRng,
}

impl SwitchNode {
    /// A switch with the given config. Routes are added afterwards.
    pub fn new(cfg: SwitchConfig) -> SwitchNode {
        SwitchNode {
            cfg,
            routes: BTreeMap::new(),
            default_route: None,
            occupancy: BTreeMap::new(),
            avg_occupancy: BTreeMap::new(),
            total_occupancy: 0,
            counters: SwitchMetrics::standalone(),
            probe: None,
            rng: SmallRng::seed_from_u64(0x5EED_AC0C),
        }
    }

    /// Reseed the WRED RNG (runs with multiple switches may want distinct
    /// streams; the default seed is fixed for determinism).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// Route `dst` out of `port`.
    pub fn add_route(&mut self, dst: [u8; 4], port: PortId) {
        self.routes.insert(dst, port);
    }

    /// Set the default route (used by multi-switch topologies).
    pub fn set_default_route(&mut self, port: PortId) {
        self.default_route = Some(port);
    }

    /// Record the queue depth of `port` each time a packet touches it.
    pub fn enable_queue_probe(&mut self, port: PortId) {
        self.probe = Some((port, TimeSeries::new()));
    }

    /// The recorded queue-depth series, if probing was enabled.
    pub fn queue_probe(&self) -> Option<&TimeSeries> {
        self.probe.as_ref().map(|(_, ts)| ts)
    }

    /// Counters snapshot (a point-in-time view of the live cells).
    pub fn counters(&self) -> SwitchCounters {
        self.counters.snapshot()
    }

    /// Current occupancy of one output queue, in bytes.
    pub fn port_occupancy(&self, port: PortId) -> u64 {
        self.occupancy.get(&port).copied().unwrap_or(0)
    }

    fn lookup(&self, dst: [u8; 4]) -> Option<PortId> {
        self.routes.get(&dst).copied().or(self.default_route)
    }

    fn sample_probe(&mut self, now: Nanos, port: PortId) {
        if let Some((p, ts)) = &mut self.probe {
            if *p == port {
                let q = self.occupancy.get(&port).copied().unwrap_or(0);
                ts.push(now, q as f64);
            }
        }
    }
}

impl Node for SwitchNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, mut seg: Segment) {
        let dst = seg.ip().dst_addr();
        let Some(out) = self.lookup(dst) else {
            self.counters.no_route_drops.inc();
            return;
        };
        // Never hairpin back out the ingress port (would loop).
        if out == in_port {
            self.counters.no_route_drops.inc();
            return;
        }
        let len = seg.wire_len() as u64;
        let q = self.occupancy.get(&out).copied().unwrap_or(0);

        // Shared-buffer admission (dynamic threshold).
        let free = self
            .cfg
            .shared_buffer_bytes
            .saturating_sub(self.total_occupancy);
        let dyn_limit = (self.cfg.dynamic_alpha * free as f64) as u64;
        if q + len > dyn_limit || len > free {
            self.counters.buffer_drops.inc();
            ctx.count_drop(out, crate::engine::PortDropClass::QueueFull);
            self.sample_probe(ctx.now(), out);
            return;
        }

        // WRED/ECN: instantaneous queue for ECN marking (DCTCP-style),
        // averaged queue + probability ramp for non-ECT drops (WRED).
        if let Some(wred) = self.cfg.wred_ecn {
            let avg = {
                let a = self.avg_occupancy.entry(out).or_insert(0.0);
                *a = *a * (15.0 / 16.0) + q as f64 / 16.0;
                *a
            };
            if seg.ecn().is_ect() {
                if q >= wred.threshold_bytes {
                    seg.mark_ce();
                    self.counters.ce_marked.inc();
                }
            } else {
                let p = wred.drop_probability(avg);
                if p > 0.0 && self.rng.random::<f64>() < p {
                    self.counters.wred_drops.inc();
                    self.sample_probe(ctx.now(), out);
                    return;
                }
            }
        }

        self.counters.forwarded.inc();
        *self.occupancy.entry(out).or_insert(0) += len;
        self.total_occupancy += len;
        self.sample_probe(ctx.now(), out);
        ctx.enqueue(out, seg);

        // If the port was idle the engine started transmitting immediately;
        // in that case the packet never waits and its bytes leave the
        // "queue" as they serialize. We keep them counted until tx ends via
        // on_tx_start only for queued packets, so reconcile here: packets
        // that start immediately get released by the TxDone-driven
        // `on_tx_start` of the *next* packet or stay counted for their
        // serialization time. To keep accounting exact we instead release
        // immediately-transmitted packets now.
        if ctx.queued_pkts(out) == 0 {
            // The packet went straight to the transmitter.
            let e = self.occupancy.entry(out).or_insert(0);
            *e = e.saturating_sub(len);
            self.total_occupancy = self.total_occupancy.saturating_sub(len);
        }
    }

    fn on_tx_start(&mut self, ctx: &mut Ctx<'_>, port: PortId, seg: &Segment) {
        let len = seg.wire_len() as u64;
        let e = self.occupancy.entry(port).or_insert(0);
        *e = e.saturating_sub(len);
        self.total_occupancy = self.total_occupancy.saturating_sub(len);
        self.sample_probe(ctx.now(), port);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn register_metrics(&self, telemetry: &Telemetry, node: usize) {
        self.counters.register(telemetry, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Network;
    use crate::link::LinkSpec;
    use acdc_packet::{Ecn, Ipv4Repr, TcpFlags, TcpRepr, PROTO_TCP};

    fn seg(dst: [u8; 4], ecn: Ecn, payload: usize) -> Segment {
        let ip = Ipv4Repr {
            src_addr: [10, 0, 0, 1],
            dst_addr: dst,
            protocol: PROTO_TCP,
            ecn,
            payload_len: 0,
            ttl: 64,
        };
        let mut t = TcpRepr::new(1000, 2000);
        t.flags = TcpFlags::ACK;
        Segment::new_tcp(ip, t, payload)
    }

    /// Collects deliveries.
    struct Sink {
        got: Vec<Segment>,
    }
    impl Node for Sink {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, seg: Segment) {
            self.got.push(seg);
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Blasts `n` packets with a chosen ECN codepoint at t=0.
    struct Blaster {
        port: PortId,
        n: usize,
        ecn: Ecn,
        dst: [u8; 4],
        payload: usize,
    }
    impl Node for Blaster {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: PortId, _s: Segment) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            for _ in 0..self.n {
                ctx.enqueue(self.port, seg(self.dst, self.ecn, self.payload));
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// host --10G--> switch --1G--> sink  (bottleneck at the switch egress)
    fn rig(
        cfg: SwitchConfig,
        n: usize,
        ecn: Ecn,
    ) -> (Network, crate::engine::NodeId, crate::engine::NodeId) {
        let mut net = Network::new();
        let h = net.reserve_node();
        let sw = net.reserve_node();
        let dst_node = net.add_node(Box::new(Sink { got: Vec::new() }));
        let (hp, _swp_in) = net.connect(h, sw, LinkSpec::ten_gbe(1_000));
        let (swp_out, _dp) = net.connect(
            sw,
            dst_node,
            LinkSpec {
                rate_bps: 1_000_000_000,
                propagation: 1_000,
            },
        );
        let mut switch = SwitchNode::new(cfg);
        switch.add_route([10, 0, 0, 9], swp_out);
        net.install(sw, Box::new(switch));
        net.install(
            h,
            Box::new(Blaster {
                port: hp,
                n,
                ecn,
                dst: [10, 0, 0, 9],
                payload: 1460,
            }),
        );
        net.schedule_timer_at(h, 0, 0);
        (net, sw, dst_node)
    }

    #[test]
    fn forwards_by_route() {
        let (mut net, sw, dst) = rig(SwitchConfig::default(), 3, Ecn::NotEct);
        net.run_until(crate::SECOND);
        assert_eq!(net.node_mut::<Sink>(dst).unwrap().got.len(), 3);
        let sw = net.node_mut::<SwitchNode>(sw).unwrap();
        assert_eq!(sw.counters().forwarded, 3);
        assert_eq!(sw.counters().total_drops(), 0);
        assert_eq!(sw.port_occupancy(PortId(2)), 0, "occupancy drained");
    }

    #[test]
    fn drops_without_route() {
        let mut net = Network::new();
        let h = net.reserve_node();
        let sw = net.add_node(Box::new(SwitchNode::new(SwitchConfig::default())));
        let (hp, _) = net.connect(h, sw, LinkSpec::ten_gbe(1_000));
        net.install(
            h,
            Box::new(Blaster {
                port: hp,
                n: 2,
                ecn: Ecn::NotEct,
                dst: [9, 9, 9, 9],
                payload: 100,
            }),
        );
        net.schedule_timer_at(h, 0, 0);
        net.run_until(crate::SECOND);
        let sw = net.node_mut::<SwitchNode>(sw).unwrap();
        assert_eq!(sw.counters().no_route_drops, 2);
    }

    #[test]
    fn wred_marks_ect_above_threshold() {
        // Threshold of ~3 packets: the 10G→1G mismatch queues a burst.
        let cfg = SwitchConfig::with_wred_ecn(3 * 1500);
        let (mut net, sw, dst) = rig(cfg, 20, Ecn::Ect0);
        net.run_until(crate::SECOND);
        let marked_at_dst = net
            .node_mut::<Sink>(dst)
            .unwrap()
            .got
            .iter()
            .filter(|s| s.ecn().is_ce())
            .count();
        let sw = net.node_mut::<SwitchNode>(sw).unwrap();
        assert!(sw.counters().ce_marked > 0);
        assert_eq!(
            sw.counters().wred_drops,
            0,
            "ECT traffic is never dropped by WRED"
        );
        assert_eq!(marked_at_dst as u64, sw.counters().ce_marked);
        // All packets still delivered.
        assert_eq!(sw.counters().forwarded, 20);
    }

    #[test]
    fn wred_drops_non_ect_above_threshold() {
        let cfg = SwitchConfig::with_wred_ecn(3 * 1500);
        let (mut net, sw, dst) = rig(cfg, 20, Ecn::NotEct);
        net.run_until(crate::SECOND);
        let sw_counters = net.node_mut::<SwitchNode>(sw).unwrap().counters();
        assert!(sw_counters.wred_drops > 0, "non-ECT must be dropped over K");
        assert_eq!(sw_counters.ce_marked, 0);
        let delivered = net.node_mut::<Sink>(dst).unwrap().got.len() as u64;
        assert_eq!(delivered, sw_counters.forwarded);
        assert_eq!(delivered + sw_counters.wred_drops, 20);
    }

    #[test]
    fn shared_buffer_limit_drops() {
        // Tiny shared buffer: a burst overflows it even without WRED.
        let cfg = SwitchConfig {
            shared_buffer_bytes: 8 * 1500,
            dynamic_alpha: 8.0,
            wred_ecn: None,
        };
        let (mut net, sw, _) = rig(cfg, 50, Ecn::Ect0);
        net.run_until(crate::SECOND);
        let c = net.node_mut::<SwitchNode>(sw).unwrap().counters();
        assert!(c.buffer_drops > 0);
        assert!(c.forwarded < 50);
        assert!((c.drop_rate() - c.buffer_drops as f64 / 50.0).abs() < 1e-9);
        // The per-port breakdown attributes every buffer drop to the
        // egress port the packet would have taken (PortId(2) in the rig).
        let pc = net.port_counters(PortId(2));
        assert_eq!(pc.queue_full_drops, c.buffer_drops);
        assert_eq!(pc.fault_drops, 0);
    }

    #[test]
    fn dynamic_threshold_tightens_as_pool_fills() {
        // alpha = 1 with a pool of 10 packets: a single queue can use at
        // most half the pool in steady state (q ≤ free ⇒ q ≤ B/2).
        let cfg = SwitchConfig {
            shared_buffer_bytes: 10 * 1500,
            dynamic_alpha: 1.0,
            wred_ecn: None,
        };
        let (mut net, sw, _) = rig(cfg, 50, Ecn::Ect0);
        net.run_until(crate::SECOND);
        let c = net.node_mut::<SwitchNode>(sw).unwrap().counters();
        // With alpha=1 about half the tiny pool is usable → most of the
        // burst drops.
        assert!(c.buffer_drops >= 40, "drops={}", c.buffer_drops);
    }

    #[test]
    fn queue_probe_records_depth() {
        let cfg = SwitchConfig::default();
        let mut net = Network::new();
        let h = net.reserve_node();
        let sw = net.reserve_node();
        let dstn = net.add_node(Box::new(Sink { got: Vec::new() }));
        let (hp, _) = net.connect(h, sw, LinkSpec::ten_gbe(1_000));
        let (op, _) = net.connect(
            sw,
            dstn,
            LinkSpec {
                rate_bps: 1_000_000_000,
                propagation: 1_000,
            },
        );
        let mut s = SwitchNode::new(cfg);
        s.add_route([10, 0, 0, 9], op);
        s.enable_queue_probe(op);
        net.install(sw, Box::new(s));
        net.install(
            h,
            Box::new(Blaster {
                port: hp,
                n: 10,
                ecn: Ecn::Ect0,
                dst: [10, 0, 0, 9],
                payload: 1460,
            }),
        );
        net.schedule_timer_at(h, 0, 0);
        net.run_until(crate::SECOND);
        let s = net.node_mut::<SwitchNode>(sw).unwrap();
        let probe = s.queue_probe().unwrap();
        assert!(!probe.is_empty());
        let max_depth = probe
            .samples()
            .iter()
            .map(|s| s.value)
            .fold(0.0f64, f64::max);
        assert!(max_depth > 0.0, "queue should have built up");
        assert_eq!(probe.samples().last().unwrap().value, 0.0, "drains to zero");
    }
}
