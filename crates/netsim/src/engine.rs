//! The discrete-event engine: nodes, ports, links, timers, and the
//! deterministic event loop.
//!
//! ## Model
//!
//! * A [`Network`] owns *nodes* (anything implementing [`Node`]: switches,
//!   hosts) and *ports*. A port belongs to one node and is wired to a peer
//!   port by a link ([`LinkSpec`]).
//! * A node transmits by calling [`Ctx::enqueue`] on one of its ports. The
//!   engine models the transmitter: packets serialize one at a time at the
//!   link rate, then propagate, then are delivered to the peer port's owner
//!   via [`Node::on_packet`].
//! * Per-port FIFO queues live in the engine; *admission* (buffer limits,
//!   ECN marking, drops) is the owning node's job before it enqueues —
//!   that is where [`SwitchNode`](crate::switch::SwitchNode) implements the
//!   shared-buffer and WRED/ECN logic. The engine tells the owner when a
//!   packet leaves its queue via [`Node::on_tx_start`] so occupancy
//!   accounting stays exact.
//! * Timers: nodes schedule `(delay, token)` pairs and receive
//!   [`Node::on_timer`] callbacks. Cancellation is by generation counting
//!   on the node side (re-arming invalidates older tokens).
//!
//! ## Determinism
//!
//! Events are ordered by `(timestamp, insertion sequence)`; ties resolve in
//! insertion order. All randomness comes from a seeded RNG owned by the
//! caller. Running the same setup twice produces identical traces.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use acdc_packet::{FlowKey, Segment};
use acdc_stats::time::Nanos;
use acdc_telemetry::{Counter, EventKind as TraceEvent, Telemetry, NO_FLOW};

use crate::link::LinkSpec;
use crate::wheel::TimerWheel;

/// Identifies a node in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies a port (globally, across all nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// Behaviour of a network element. Implemented by switches here and by
/// hosts in `acdc-core`.
pub trait Node: Any {
    /// A packet arrived on `port` (a port owned by this node).
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, seg: Segment);

    /// A timer scheduled with this token fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// A packet previously enqueued on `port` just began transmission
    /// (it left the queue). Used for buffer-occupancy accounting.
    fn on_tx_start(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _seg: &Segment) {}

    /// Downcast support so experiment code can inspect node state after a
    /// run.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Adopt this node's counter cells into `telemetry`'s registry.
    /// Called once per node when a hub is attached (or at install time if
    /// one already is); `node` is the node's engine id, for naming.
    /// Default: the node keeps no registry-worthy counters.
    fn register_metrics(&self, _telemetry: &Telemetry, _node: usize) {}
}

/// Byte/packet counters kept per port by the engine — the compatibility
/// *view* of [`PortMetrics`], loaded on demand by
/// [`Network::port_counters`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PortCounters {
    /// Packets transmitted (fully serialized).
    pub tx_pkts: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Packets delivered to this port.
    pub rx_pkts: u64,
    /// Bytes delivered to this port.
    pub rx_bytes: u64,
    /// Packets the owning node dropped instead of enqueueing because the
    /// (shared) buffer backing this port was full. Attributed to the port
    /// the packet *would have* left on.
    pub queue_full_drops: u64,
    /// Packets discarded by an injected fault process (see `acdc-faults`)
    /// instead of being forwarded out this port.
    pub fault_drops: u64,
    /// Packets whose headers failed to parse (malformed wire input). The
    /// receiving node drops and counts these instead of panicking.
    pub malformed_drops: u64,
}

/// The engine's live per-port counter cells. Ports start with standalone
/// cells; attaching a [`Telemetry`] hub to the [`Network`] adopts every
/// cell into its registry under `"portN.<field>"` names, preserving
/// already-accumulated values.
#[derive(Debug)]
struct PortMetrics {
    tx_pkts: Counter,
    tx_bytes: Counter,
    rx_pkts: Counter,
    rx_bytes: Counter,
    queue_full_drops: Counter,
    fault_drops: Counter,
    malformed_drops: Counter,
}

impl PortMetrics {
    fn standalone() -> PortMetrics {
        PortMetrics {
            tx_pkts: Counter::standalone(),
            tx_bytes: Counter::standalone(),
            rx_pkts: Counter::standalone(),
            rx_bytes: Counter::standalone(),
            queue_full_drops: Counter::standalone(),
            fault_drops: Counter::standalone(),
            malformed_drops: Counter::standalone(),
        }
    }

    fn register(&self, telemetry: &Telemetry, port: usize) {
        let reg = telemetry.registry();
        let each: [(&str, &Counter); 7] = [
            ("tx_pkts", &self.tx_pkts),
            ("tx_bytes", &self.tx_bytes),
            ("rx_pkts", &self.rx_pkts),
            ("rx_bytes", &self.rx_bytes),
            ("queue_full_drops", &self.queue_full_drops),
            ("fault_drops", &self.fault_drops),
            ("malformed_drops", &self.malformed_drops),
        ];
        for (field, cell) in each {
            reg.adopt_counter(format!("port{port}.{field}"), cell);
        }
    }

    fn snapshot(&self) -> PortCounters {
        PortCounters {
            tx_pkts: self.tx_pkts.get(),
            tx_bytes: self.tx_bytes.get(),
            rx_pkts: self.rx_pkts.get(),
            rx_bytes: self.rx_bytes.get(),
            queue_full_drops: self.queue_full_drops.get(),
            fault_drops: self.fault_drops.get(),
            malformed_drops: self.malformed_drops.get(),
        }
    }
}

/// Why a node dropped a packet it was about to forward out of a port.
/// Reported via [`Ctx::count_drop`] so runs can attribute loss per port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDropClass {
    /// Buffer admission failed: the egress queue (or shared buffer pool)
    /// had no room.
    QueueFull,
    /// A fault-injection process (e.g. a `FaultyLink` wrapper) discarded
    /// the packet deliberately.
    FaultInjected,
    /// The packet's headers failed to parse; the fallible single-parse
    /// pipeline (see `acdc-packet`'s `PacketMeta`) rejects such frames at
    /// the first layer that touches them.
    Malformed,
}

struct Port {
    owner: NodeId,
    peer: Option<PortId>,
    link: LinkSpec,
    queue: VecDeque<Segment>,
    busy: bool,
    counters: PortMetrics,
}

enum EventKind {
    Deliver { port: PortId, seg: Segment },
    TxDone { port: PortId },
    Timer { node: NodeId, token: u64 },
}

/// The simulated network: nodes, ports, events, virtual clock. Events
/// live in the hierarchical [`TimerWheel`], ordered by `(timestamp,
/// insertion sequence)` with ties firing in insertion order.
pub struct Network {
    nodes: Vec<Option<Box<dyn Node>>>,
    ports: Vec<Port>,
    events: TimerWheel<EventKind>,
    now: Nanos,
    seq: u64,
    events_processed: u64,
    telemetry: Option<Arc<Telemetry>>,
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// An empty network at time zero.
    pub fn new() -> Network {
        Network {
            nodes: Vec::new(),
            ports: Vec::new(),
            events: TimerWheel::new(),
            now: 0,
            seq: 0,
            events_processed: 0,
            telemetry: None,
        }
    }

    /// Attach a telemetry hub: every existing port's counter cells are
    /// adopted into its registry as `"portN.<field>"` metrics (values
    /// carry over), ports created later register at
    /// [`Network::connect`] time, and node drops reported through
    /// [`Ctx::count_drop`] additionally land in the flight recorder.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry
            .registry()
            .adopt_counter("engine.wheel.same_slot_batches", self.events.batches_cell());
        for (i, p) in self.ports.iter().enumerate() {
            p.counters.register(&telemetry, i);
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(n) = n {
                n.register_metrics(&telemetry, i);
            }
        }
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry hub, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total events processed so far (a cheap progress/perf metric).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Same-timestamp batch pops the scheduler served without re-scanning
    /// its slot structure (see `engine.wheel.same_slot_batches`).
    pub fn wheel_same_slot_batches(&self) -> u64 {
        self.events.same_slot_batches()
    }

    /// Reserve a node slot; install the implementation later with
    /// [`Network::install`] (two-phase so hosts can learn their port ids
    /// before construction).
    pub fn reserve_node(&mut self) -> NodeId {
        self.nodes.push(None);
        NodeId(self.nodes.len() - 1)
    }

    /// Add a node directly.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        if let Some(t) = &self.telemetry {
            node.register_metrics(t, id.0);
        }
        self.nodes.push(Some(node));
        id
    }

    /// Install the implementation for a reserved slot.
    pub fn install(&mut self, id: NodeId, node: Box<dyn Node>) {
        assert!(self.nodes[id.0].is_none(), "node {id:?} already installed");
        if let Some(t) = &self.telemetry {
            node.register_metrics(t, id.0);
        }
        self.nodes[id.0] = Some(node);
    }

    /// Connect two nodes with a symmetric link, creating one port on each.
    /// Returns `(port_on_a, port_on_b)`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: LinkSpec) -> (PortId, PortId) {
        let pa = PortId(self.ports.len());
        self.ports.push(Port {
            owner: a,
            peer: None,
            link,
            queue: VecDeque::new(),
            busy: false,
            counters: PortMetrics::standalone(),
        });
        let pb = PortId(self.ports.len());
        self.ports.push(Port {
            owner: b,
            peer: Some(pa),
            link,
            queue: VecDeque::new(),
            busy: false,
            counters: PortMetrics::standalone(),
        });
        self.ports[pa.0].peer = Some(pb);
        if let Some(t) = &self.telemetry {
            self.ports[pa.0].counters.register(t, pa.0);
            self.ports[pb.0].counters.register(t, pb.0);
        }
        (pa, pb)
    }

    /// Connect `a` and `b` with `link`, but splice an interposer node (a
    /// tap, e.g. a fault injector) into the middle. The physical link
    /// (serialization + propagation) sits between `a` and the tap; the tap
    /// reaches `b` over an effectively-zero-delay patch link, so end-to-end
    /// timing stays that of a single `link` in both directions.
    ///
    /// `make` receives the tap's two ports — `(facing_a, facing_b)` — and
    /// builds the interposer node. Returns `(port_on_a, port_on_b, tap_id)`
    /// so callers can treat the outer ports exactly like a plain
    /// [`Network::connect`] result and inspect the tap later via
    /// [`Network::node_mut`].
    pub fn connect_interposed(
        &mut self,
        a: NodeId,
        b: NodeId,
        link: LinkSpec,
        make: impl FnOnce(PortId, PortId) -> Box<dyn Node>,
    ) -> (PortId, PortId, NodeId) {
        let tap = self.reserve_node();
        let (pa, tap_a) = self.connect(a, tap, link);
        // Near-infinite rate + zero propagation: `serialization_delay` uses
        // div_ceil so each packet still costs 1 ns, preserving event
        // ordering without perturbing link timing measurably.
        let patch = LinkSpec {
            rate_bps: u64::MAX,
            propagation: 0,
        };
        let (tap_b, pb) = self.connect(tap, b, patch);
        self.install(tap, make(tap_a, tap_b));
        (pa, pb, tap)
    }

    /// The owner of a port.
    pub fn port_owner(&self, port: PortId) -> NodeId {
        self.ports[port.0].owner
    }

    /// Counters for a port (a point-in-time snapshot of the live cells).
    pub fn port_counters(&self, port: PortId) -> PortCounters {
        self.ports[port.0].counters.snapshot()
    }

    /// Current queue depth of a port, in bytes (excluding the packet being
    /// serialized).
    pub fn port_queue_bytes(&self, port: PortId) -> u64 {
        self.ports[port.0]
            .queue
            .iter()
            .map(|s| s.wire_len() as u64)
            .sum()
    }

    /// Schedule a timer for `node` at absolute time `at` (setup-time API;
    /// nodes use [`Ctx::set_timer`] at runtime).
    pub fn schedule_timer_at(&mut self, node: NodeId, at: Nanos, token: u64) {
        let seq = self.next_seq();
        self.events
            .schedule(at, seq, EventKind::Timer { node, token });
    }

    /// Mutable, downcast access to a node (for post-run inspection).
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.0]
            .as_mut()
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Run until the event queue empties or `deadline` passes. Returns the
    /// virtual time reached.
    pub fn run_until(&mut self, deadline: Nanos) -> Nanos {
        // The wheel serves whole same-timestamp (same-slot) runs from one
        // drained batch, so there is no per-event re-peek here the way
        // the BinaryHeap loop re-peeked after every pop.
        while let Some((at, _seq, kind)) = self.events.pop_before(deadline) {
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.events_processed += 1;
            self.dispatch(kind);
        }
        // The clock always reaches the deadline, so relative timers
        // scheduled after this call behave as expected.
        self.now = self.now.max(deadline);
        self.now
    }

    /// Time of the next pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.events.peek_at()
    }

    /// Are there pending events?
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Deliver { port, seg } => {
                let owner = self.ports[port.0].owner;
                {
                    let c = &self.ports[port.0].counters;
                    c.rx_pkts.inc();
                    c.rx_bytes.add(seg.wire_len() as u64);
                }
                self.with_node(owner, |node, ctx| node.on_packet(ctx, port, seg));
            }
            EventKind::TxDone { port } => {
                self.finish_tx(port);
            }
            EventKind::Timer { node, token } => {
                self.with_node(node, |n, ctx| n.on_timer(ctx, token));
            }
        }
    }

    /// Temporarily remove the node, hand it a `Ctx` over the rest of the
    /// network, then put it back. Nodes never alias each other.
    fn with_node<F: FnOnce(&mut dyn Node, &mut Ctx<'_>)>(&mut self, id: NodeId, f: F) {
        let mut node = self.nodes[id.0]
            .take()
            .unwrap_or_else(|| panic!("node {id:?} not installed or reentered"));
        let mut ctx = Ctx {
            net: self,
            node: id,
        };
        f(node.as_mut(), &mut ctx);
        self.nodes[id.0] = Some(node);
    }

    /// Begin serialization of `seg` on `port` (the port must be idle).
    fn start_tx(&mut self, port: PortId, seg: Segment) {
        let p = &mut self.ports[port.0];
        debug_assert!(!p.busy);
        p.busy = true;
        let ser = p.link.serialization_delay(seg.wire_len());
        let prop = p.link.propagation;
        let peer = p.peer.expect("transmit on unconnected port");
        p.counters.tx_pkts.inc();
        p.counters.tx_bytes.add(seg.wire_len() as u64);
        let at_done = self.now + ser;
        let seq = self.next_seq();
        self.events
            .schedule(at_done, seq, EventKind::TxDone { port });
        let seq = self.next_seq();
        self.events
            .schedule(at_done + prop, seq, EventKind::Deliver { port: peer, seg });
    }

    fn finish_tx(&mut self, port: PortId) {
        self.ports[port.0].busy = false;
        if let Some(seg) = self.ports[port.0].queue.pop_front() {
            let owner = self.ports[port.0].owner;
            let cloned_for_hook = seg.clone();
            self.start_tx(port, seg);
            self.with_node(owner, |n, ctx| n.on_tx_start(ctx, port, &cloned_for_hook));
        }
    }
}

/// The interface a node uses to act on the network from inside a callback.
pub struct Ctx<'a> {
    net: &'a mut Network,
    node: NodeId,
}

impl Ctx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.net.now
    }

    /// The node this context belongs to.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Enqueue `seg` for transmission on `port` (must be owned by this
    /// node). If the transmitter is idle the packet starts serializing
    /// immediately (and `on_tx_start` is *not* called — the packet never
    /// sat in the queue); otherwise it joins the FIFO.
    pub fn enqueue(&mut self, port: PortId, seg: Segment) {
        assert_eq!(
            self.net.ports[port.0].owner, self.node,
            "node {:?} enqueueing on foreign port {port:?}",
            self.node
        );
        if self.net.ports[port.0].busy {
            self.net.ports[port.0].queue.push_back(seg);
        } else {
            self.net.start_tx(port, seg);
        }
    }

    /// Is `port`'s transmitter currently serializing a packet?
    pub fn port_busy(&self, port: PortId) -> bool {
        self.net.ports[port.0].busy
    }

    /// Bytes sitting in `port`'s FIFO (not counting the in-flight packet).
    pub fn queued_bytes(&self, port: PortId) -> u64 {
        self.net.port_queue_bytes(port)
    }

    /// Packets sitting in `port`'s FIFO.
    pub fn queued_pkts(&self, port: PortId) -> usize {
        self.net.ports[port.0].queue.len()
    }

    /// Record that this node dropped a packet it would otherwise have
    /// forwarded out `port` (must be owned by this node). The drop shows up
    /// in the port's [`PortCounters`] under the matching reason field, and
    /// — when a telemetry hub is attached — as an anonymous `drop` event
    /// in the flight recorder. Callers that know which flow the packet
    /// belonged to should use [`Ctx::count_drop_for`] instead so the event
    /// carries the key.
    pub fn count_drop(&mut self, port: PortId, class: PortDropClass) {
        self.count_drop_inner(port, class, NO_FLOW);
    }

    /// [`Ctx::count_drop`], attributing the dropped packet to `flow` in
    /// the recorded telemetry event (the counters are identical).
    pub fn count_drop_for(&mut self, port: PortId, class: PortDropClass, flow: FlowKey) {
        self.count_drop_inner(port, class, flow);
    }

    fn count_drop_inner(&mut self, port: PortId, class: PortDropClass, flow: FlowKey) {
        assert_eq!(
            self.net.ports[port.0].owner, self.node,
            "node {:?} counting drop on foreign port {port:?}",
            self.node
        );
        let c = &self.net.ports[port.0].counters;
        let cause = match class {
            PortDropClass::QueueFull => {
                c.queue_full_drops.inc();
                "queue-full"
            }
            PortDropClass::FaultInjected => {
                c.fault_drops.inc();
                "fault-injected"
            }
            PortDropClass::Malformed => {
                c.malformed_drops.inc();
                "malformed"
            }
        };
        if let Some(t) = &self.net.telemetry {
            t.record(self.net.now, flow, TraceEvent::PacketDropped { cause });
        }
    }

    /// Schedule a timer for this node `delay` from now.
    pub fn set_timer(&mut self, delay: Nanos, token: u64) {
        let at = self.net.now + delay;
        let node = self.node;
        self.net.schedule_timer_at(node, at, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_packet::{Ecn, Ipv4Repr, TcpFlags, TcpRepr, PROTO_TCP};

    fn seg(src: [u8; 4], dst: [u8; 4], payload: usize) -> Segment {
        let ip = Ipv4Repr {
            src_addr: src,
            dst_addr: dst,
            protocol: PROTO_TCP,
            ecn: Ecn::NotEct,
            payload_len: 0,
            ttl: 64,
        };
        let mut t = TcpRepr::new(1, 2);
        t.flags = TcpFlags::ACK;
        Segment::new_tcp(ip, t, payload)
    }

    /// Records everything it receives; echoes when `echo` is set.
    struct Sink {
        received: Vec<(Nanos, usize)>,
        timers: Vec<(Nanos, u64)>,
        echo_port: Option<PortId>,
    }

    impl Sink {
        fn new() -> Sink {
            Sink {
                received: Vec::new(),
                timers: Vec::new(),
                echo_port: None,
            }
        }
    }

    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, seg: Segment) {
            self.received.push((ctx.now(), seg.wire_len()));
            if let Some(p) = self.echo_port {
                ctx.enqueue(p, seg);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.timers.push((ctx.now(), token));
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends `n` packets back to back at t=0 (token 0 timer).
    struct Blaster {
        port: PortId,
        n: usize,
        payload: usize,
    }

    impl Node for Blaster {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _seg: Segment) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            for _ in 0..self.n {
                ctx.enqueue(self.port, seg([1, 1, 1, 1], [2, 2, 2, 2], self.payload));
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn single_packet_timing() {
        let mut net = Network::new();
        let a = net.reserve_node();
        let b = net.add_node(Box::new(Sink::new()));
        let link = LinkSpec {
            rate_bps: 1_000_000_000, // 1 Gbps
            propagation: 10_000,     // 10 µs
        };
        let (pa, _pb) = net.connect(a, b, link);
        net.install(
            a,
            Box::new(Blaster {
                port: pa,
                n: 1,
                payload: 1210, // total wire 1250 B → 10 µs serialization
            }),
        );
        net.schedule_timer_at(a, 0, 0);
        net.run_until(SECOND_T);
        let sink = net.node_mut::<Sink>(b).unwrap();
        assert_eq!(sink.received.len(), 1);
        // serialization 10µs + propagation 10µs = 20µs.
        assert_eq!(sink.received[0].0, 20_000);
    }

    const SECOND_T: Nanos = 1_000_000_000;

    #[test]
    fn back_to_back_packets_serialize_sequentially() {
        let mut net = Network::new();
        let a = net.reserve_node();
        let b = net.add_node(Box::new(Sink::new()));
        let link = LinkSpec {
            rate_bps: 1_000_000_000,
            propagation: 5_000,
        };
        let (pa, _) = net.connect(a, b, link);
        net.install(
            a,
            Box::new(Blaster {
                port: pa,
                n: 3,
                payload: 1210,
            }),
        );
        net.schedule_timer_at(a, 0, 0);
        net.run_until(SECOND_T);
        let sink = net.node_mut::<Sink>(b).unwrap();
        let times: Vec<Nanos> = sink.received.iter().map(|r| r.0).collect();
        // Arrivals spaced by exactly one serialization time (10 µs).
        assert_eq!(times, vec![15_000, 25_000, 35_000]);
    }

    #[test]
    fn echo_between_two_sinks_bounces_forever_until_deadline() {
        let mut net = Network::new();
        let a = net.reserve_node();
        let b = net.reserve_node();
        let link = LinkSpec {
            rate_bps: 10_000_000_000,
            propagation: 100_000, // 100 µs each way
        };
        let (pa, pb) = net.connect(a, b, link);
        let mut ea = Sink::new();
        ea.echo_port = Some(pa);
        net.install(a, Box::new(ea));
        let mut eb = Sink::new();
        eb.echo_port = Some(pb);
        net.install(b, Box::new(eb));
        // Kick off one packet from a by delivering it a timer that does
        // nothing, then injecting via a third blaster node... simpler: use
        // the Deliver path directly by enqueueing from a's on_timer. Sink
        // has no such hook, so wrap: schedule a timer on a and have the
        // test assert only on b's arrivals via a one-shot Blaster.
        let c = net.reserve_node();
        let (pc, _pa2) = net.connect(c, a, link);
        net.install(
            c,
            Box::new(Blaster {
                port: pc,
                n: 1,
                payload: 0,
            }),
        );
        net.schedule_timer_at(c, 0, 0);
        net.run_until(1_000_000); // 1 ms → ~5 bounces
        let b_node = net.node_mut::<Sink>(b).unwrap();
        let bounces = b_node.received.len();
        assert!(bounces >= 4, "expected several bounces, got {bounces}");
    }

    #[test]
    fn timers_fire_in_order_with_fifo_ties() {
        let mut net = Network::new();
        let s = net.add_node(Box::new(Sink::new()));
        net.schedule_timer_at(s, 100, 1);
        net.schedule_timer_at(s, 50, 2);
        net.schedule_timer_at(s, 100, 3);
        net.run_until(SECOND_T);
        let sink = net.node_mut::<Sink>(s).unwrap();
        let tokens: Vec<u64> = sink.timers.iter().map(|t| t.1).collect();
        assert_eq!(tokens, vec![2, 1, 3]);
        assert_eq!(sink.timers[0].0, 50);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut net = Network::new();
        let s = net.add_node(Box::new(Sink::new()));
        net.schedule_timer_at(s, 100, 1);
        net.schedule_timer_at(s, 200, 2);
        net.run_until(150);
        {
            let sink = net.node_mut::<Sink>(s).unwrap();
            assert_eq!(sink.timers.len(), 1);
        }
        assert!(net.has_events());
        net.run_until(SECOND_T);
        let sink = net.node_mut::<Sink>(s).unwrap();
        assert_eq!(sink.timers.len(), 2);
    }

    #[test]
    fn counters_track_traffic() {
        let mut net = Network::new();
        let a = net.reserve_node();
        let b = net.add_node(Box::new(Sink::new()));
        let (pa, pb) = net.connect(a, b, LinkSpec::ten_gbe(1_000));
        net.install(
            a,
            Box::new(Blaster {
                port: pa,
                n: 5,
                payload: 960,
            }),
        );
        net.schedule_timer_at(a, 0, 0);
        net.run_until(SECOND_T);
        let tx = net.port_counters(pa);
        let rx = net.port_counters(pb);
        assert_eq!(tx.tx_pkts, 5);
        assert_eq!(rx.rx_pkts, 5);
        assert_eq!(tx.tx_bytes, 5 * 1000);
        assert_eq!(rx.rx_bytes, 5 * 1000);
    }

    /// Forwards everything from one port to the other, counting packets.
    struct Tap {
        pa: PortId,
        pb: PortId,
        seen: u64,
    }

    impl Node for Tap {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, seg: Segment) {
            self.seen += 1;
            let out = if port == self.pa { self.pb } else { self.pa };
            ctx.enqueue(out, seg);
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn interposed_link_preserves_timing_within_patch_slop() {
        // Same topology as single_packet_timing, but with a transparent tap
        // spliced in: arrival time may shift only by the ~1 ns patch hop.
        let mut net = Network::new();
        let a = net.reserve_node();
        let b = net.add_node(Box::new(Sink::new()));
        let link = LinkSpec {
            rate_bps: 1_000_000_000,
            propagation: 10_000,
        };
        let (pa, _pb, tap) = net.connect_interposed(a, b, link, |ta, tb| {
            Box::new(Tap {
                pa: ta,
                pb: tb,
                seen: 0,
            })
        });
        net.install(
            a,
            Box::new(Blaster {
                port: pa,
                n: 1,
                payload: 1210,
            }),
        );
        net.schedule_timer_at(a, 0, 0);
        net.run_until(SECOND_T);
        assert_eq!(net.node_mut::<Tap>(tap).unwrap().seen, 1);
        let sink = net.node_mut::<Sink>(b).unwrap();
        assert_eq!(sink.received.len(), 1);
        let t = sink.received[0].0;
        assert!((20_000..=20_005).contains(&t), "arrival at {t}");
    }

    /// Drops every packet, attributing the drop to the egress port.
    struct DropTap {
        pa: PortId,
        pb: PortId,
    }

    impl Node for DropTap {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, _seg: Segment) {
            let out = if port == self.pa { self.pb } else { self.pa };
            ctx.count_drop(out, PortDropClass::FaultInjected);
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn count_drop_attributes_fault_drops_to_egress_port() {
        let mut net = Network::new();
        let a = net.reserve_node();
        let b = net.add_node(Box::new(Sink::new()));
        let (pa, pb, tap) = net.connect_interposed(a, b, LinkSpec::ten_gbe(1_000), |ta, tb| {
            Box::new(DropTap { pa: ta, pb: tb })
        });
        net.install(
            a,
            Box::new(Blaster {
                port: pa,
                n: 4,
                payload: 960,
            }),
        );
        net.schedule_timer_at(a, 0, 0);
        net.run_until(SECOND_T);
        let _ = tap;
        assert_eq!(net.node_mut::<Sink>(b).unwrap().received.len(), 0);
        assert_eq!(net.port_counters(pb).rx_pkts, 0);
        // The tap's b-facing port carries the attribution.
        let tap_b = PortId(pb.0 - 1);
        assert_eq!(net.port_counters(tap_b).fault_drops, 4);
        assert_eq!(net.port_counters(tap_b).queue_full_drops, 0);
    }

    #[test]
    fn determinism_identical_runs() {
        fn run() -> Vec<(Nanos, usize)> {
            let mut net = Network::new();
            let a = net.reserve_node();
            let b = net.add_node(Box::new(Sink::new()));
            let (pa, _) = net.connect(a, b, LinkSpec::ten_gbe(2_000));
            net.install(
                a,
                Box::new(Blaster {
                    port: pa,
                    n: 50,
                    payload: 1408,
                }),
            );
            net.schedule_timer_at(a, 0, 0);
            net.run_until(SECOND_T);
            let sink = net.node_mut::<Sink>(b).unwrap();
            sink.received.clone()
        }
        assert_eq!(run(), run());
    }
}
