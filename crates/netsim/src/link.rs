//! Link parameters: rate and propagation delay.

use acdc_stats::time::Nanos;

/// Static description of one link (both directions are symmetric).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub propagation: Nanos,
}

impl LinkSpec {
    /// A 10 GbE datacenter link with the given propagation delay.
    pub fn ten_gbe(propagation: Nanos) -> LinkSpec {
        LinkSpec {
            rate_bps: 10_000_000_000,
            propagation,
        }
    }

    /// Time to serialize `bytes` onto this link.
    pub fn serialization_delay(&self, bytes: usize) -> Nanos {
        // ceil(bits * 1e9 / rate) without overflow for realistic sizes.
        let bits = bytes as u128 * 8;
        (bits * 1_000_000_000).div_ceil(self.rate_bps as u128) as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_gbe_serialization() {
        let l = LinkSpec::ten_gbe(1_000);
        // 1250 bytes = 10_000 bits = 1 µs at 10 Gbps.
        assert_eq!(l.serialization_delay(1250), 1_000);
        // 9 KB jumbo ≈ 7.2 µs.
        assert_eq!(l.serialization_delay(9000), 7_200);
    }

    #[test]
    fn serialization_rounds_up() {
        let l = LinkSpec {
            rate_bps: 3,
            propagation: 0,
        };
        // 1 byte = 8 bits at 3 bps = 2.67 s → rounds to ceil.
        assert_eq!(l.serialization_delay(1), 2_666_666_667);
    }

    #[test]
    fn zero_bytes_take_zero_time() {
        assert_eq!(LinkSpec::ten_gbe(0).serialization_delay(0), 0);
    }
}
