//! # acdc-netsim — deterministic discrete-event datacenter network simulator
//!
//! The substrate standing in for the paper's physical testbed (17 servers,
//! 10 GbE NICs, IBM G8264 switches). It simulates:
//!
//! * **links** with configurable rate and propagation delay (serialization
//!   is modelled per packet: a 9 KB frame takes 7.2 µs on a 10 Gbps link);
//! * **switches** with a *shared* buffer pool managed by a Broadcom-style
//!   dynamic threshold, per-port FIFO output queues, and WRED/ECN marking
//!   at a configurable threshold `K` — including the behaviour at the heart
//!   of the ECN-coexistence pathology (Figures 15/16): non-ECT packets are
//!   *dropped* above `K` while ECT packets are *marked*;
//! * **timers** and node-level packet hooks, on which `acdc-core` builds
//!   hosts (guest TCP endpoint + vSwitch datapath + NIC).
//!
//! Everything is deterministic: a single-threaded event loop over a
//! `(time, sequence)`-ordered heap, nanosecond virtual time, and no wall
//! clock anywhere. Experiments are reproducible bit for bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod link;
pub mod switch;
pub mod tokenbucket;
pub mod wheel;

pub use engine::{Ctx, Network, Node, NodeId, PortCounters, PortDropClass, PortId};
pub use link::LinkSpec;
pub use switch::{SwitchConfig, SwitchCounters, SwitchNode, WredEcnConfig};
pub use tokenbucket::TokenBucket;
pub use wheel::TimerWheel;

pub use acdc_stats::time::{Nanos, MICROSECOND, MILLISECOND, SECOND};
