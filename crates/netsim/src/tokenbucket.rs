//! A token-bucket rate limiter.
//!
//! Used for the motivation experiment of Figure 2: even with every flow
//! rate-limited to a "perfect" 2 Gbps share, CUBIC still fills the switch
//! buffer — bandwidth allocation alone cannot bound latency. Hosts insert
//! this limiter on their egress path; it answers either "send now" or "not
//! before T", which the host turns into a timer.

use acdc_stats::time::{Nanos, SECOND};

/// A classic token bucket: `rate_bps` sustained, `burst_bytes` depth.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: u64,
    burst_bytes: u64,
    /// Token level in *bits*, to avoid rounding loss at high rates.
    tokens_bits: u64,
    /// Sub-bit refill credit, in units of `dt × rate_bps` (so one whole
    /// bit equals `SECOND`). Refills observed at sub-bit-period spacing
    /// would otherwise round to zero while still advancing
    /// `last_refill`, silently discarding the elapsed time; a caller
    /// polling faster than the bit period could then starve the bucket
    /// forever.
    frac: u64,
    last_refill: Nanos,
}

impl TokenBucket {
    /// Create a bucket, full, observed first at time `now`.
    pub fn new(rate_bps: u64, burst_bytes: u64, now: Nanos) -> TokenBucket {
        assert!(rate_bps > 0, "rate must be positive");
        assert!(burst_bytes > 0, "burst must be positive");
        TokenBucket {
            rate_bps,
            burst_bytes,
            tokens_bits: burst_bytes * 8,
            frac: 0,
            last_refill: now,
        }
    }

    /// The configured rate.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    fn refill(&mut self, now: Nanos) {
        if now <= self.last_refill {
            return;
        }
        let dt = now - self.last_refill;
        let credit = u128::from(dt) * u128::from(self.rate_bps) + u128::from(self.frac);
        let add = (credit / u128::from(SECOND)) as u64;
        let cap = self.burst_bytes * 8;
        if self.tokens_bits + add >= cap {
            // Full bucket: surplus credit does not carry over (that
            // would grow the effective burst).
            self.tokens_bits = cap;
            self.frac = 0;
        } else {
            self.tokens_bits += add;
            self.frac = (credit % u128::from(SECOND)) as u64;
        }
        self.last_refill = now;
    }

    /// Try to send `bytes` at `now`. On success the tokens are consumed;
    /// on failure, returns the earliest time at which the bucket will hold
    /// enough tokens.
    pub fn try_consume(&mut self, bytes: usize, now: Nanos) -> Result<(), Nanos> {
        self.refill(now);
        let need = bytes as u64 * 8;
        if self.tokens_bits >= need {
            self.tokens_bits -= need;
            Ok(())
        } else {
            let deficit = need - self.tokens_bits;
            // Time to accrue `deficit` whole bits, net of banked credit.
            let short = u128::from(deficit) * u128::from(SECOND) - u128::from(self.frac);
            let wait = short.div_ceil(u128::from(self.rate_bps)) as Nanos;
            Err(now + wait)
        }
    }

    /// Current token level in bytes (after refilling to `now`).
    pub fn tokens_bytes(&mut self, now: Nanos) -> u64 {
        self.refill(now);
        self.tokens_bits / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_stats::time::MILLISECOND;

    #[test]
    fn full_bucket_allows_burst() {
        let mut tb = TokenBucket::new(1_000_000_000, 10_000, 0);
        for _ in 0..10 {
            assert!(tb.try_consume(1_000, 0).is_ok());
        }
        assert!(tb.try_consume(1, 0).is_err());
    }

    #[test]
    fn refills_at_rate() {
        // 8 Mbps = 1 byte/µs.
        let mut tb = TokenBucket::new(8_000_000, 1_000, 0);
        assert!(tb.try_consume(1_000, 0).is_ok());
        // After 500 µs, 500 bytes available.
        assert_eq!(tb.tokens_bytes(500_000), 500);
        assert!(tb.try_consume(500, 500_000).is_ok());
        assert!(tb.try_consume(1, 500_000).is_err());
    }

    #[test]
    fn wait_hint_is_exact() {
        let mut tb = TokenBucket::new(8_000_000, 1_000, 0);
        tb.try_consume(1_000, 0).unwrap();
        let at = tb.try_consume(100, 0).unwrap_err();
        // 100 bytes at 1 byte/µs → 100 µs.
        assert_eq!(at, 100_000);
        assert!(tb.try_consume(100, at).is_ok());
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut tb = TokenBucket::new(10_000_000_000, 5_000, 0);
        assert_eq!(tb.tokens_bytes(10 * MILLISECOND), 5_000);
    }

    #[test]
    fn sub_bit_period_polls_do_not_starve_refill() {
        // 50 Mbps accrues 1 bit per 20 ns. A caller polling every 3 ns
        // used to truncate each refill to zero bits while advancing the
        // refill clock — discarding all elapsed time and starving the
        // bucket into a timer livelock. Banked fractional credit must
        // keep the original release-time hint exact regardless of how
        // often the bucket is observed in between.
        let mut tb = TokenBucket::new(50_000_000, 30_000, 0);
        while tb.try_consume(1_500, 0).is_ok() {}
        let at = tb.try_consume(1_500, 0).unwrap_err();
        let mut now = 0;
        while now + 3 < at {
            now += 3;
            assert!(tb.try_consume(1_500, now).is_err(), "released early");
        }
        assert!(
            tb.try_consume(1_500, at).is_ok(),
            "bucket starved by sub-bit-period polling"
        );
    }

    #[test]
    fn sustained_rate_is_enforced() {
        // Send as fast as allowed for 10 ms at 2 Gbps; total should be
        // ~2.5 MB + burst.
        let rate = 2_000_000_000u64;
        let mut tb = TokenBucket::new(rate, 9_000, 0);
        let mut now = 0;
        let mut sent = 0u64;
        while now < 10 * MILLISECOND {
            match tb.try_consume(1_500, now) {
                Ok(()) => sent += 1_500,
                Err(at) => now = at,
            }
        }
        let expected = rate / 8 / 100; // bytes in 10 ms
        assert!(
            sent >= expected && sent <= expected + 20_000,
            "sent={sent} expected≈{expected}"
        );
    }
}
