//! The pluggable vSwitch congestion-control seam (`VirtualCc`).
//!
//! acdc-scope: vswitch.virtual-cc
//!
//! AC/DC's core claim (§3.3) is that the vSwitch can enforce *any*
//! congestion control it computes — the enforcement plumbing (RWND
//! rewrite, policing, health ladder, PACK feedback) does not care how
//! the window was produced. This module is the seam that makes the
//! claim structural: the sender module hands every algorithm the same
//! deterministic per-ACK observation bundle ([`AckSignals`]) and reads
//! back one number ([`VirtualCc::cwnd`]). Everything the switch can
//! observe exactly — newly-acked bytes, the ECN-marked byte fraction
//! from PACK/FACK feedback, RTT samples, bytes in flight — arrives in
//! the bundle; an algorithm needing richer switch-side signals (e.g.
//! PowerTCP's bandwidth×queue gradient) extends the bundle rather than
//! reaching into the datapath.
//!
//! The first implementation, [`EcnFractionCc`], adapts the host-stack
//! [`CongestionControl`] algorithms (DCTCP by default) to the seam: the
//! marked-byte fraction of the feedback stream is exactly the signal
//! DCTCP's alpha estimator wants, so the adapter is a direct translation
//! with no behavioral change — the chaos-equivalence suites pin that.

use acdc_cc::{AckEvent, CongestionControl};
use acdc_stats::time::Nanos;

/// Everything the vSwitch can tell a virtual congestion-control
/// algorithm about one arriving ACK. All fields are derived
/// deterministically from connection tracking and PACK/FACK feedback —
/// same packet sequence, same signals, byte for byte.
#[derive(Debug, Clone, Copy)]
pub struct AckSignals {
    /// Virtual time of the ACK's arrival.
    pub now: Nanos,
    /// Bytes newly acknowledged by this ACK (0 for a duplicate ACK).
    pub newly_acked: u64,
    /// CE-marked bytes reported by the receiver-side feedback
    /// (PACK/FACK options) and consumed by this ACK.
    pub marked_bytes: u64,
    /// Total bytes covered by the same consumed feedback; with
    /// `marked_bytes` this is the exact ECN fraction the receiving
    /// vSwitch measured (§3.2).
    pub total_bytes: u64,
    /// An RTT sample attributable to this ACK (fresh probe completion,
    /// falling back to the entry's smoothed estimate).
    pub rtt: Option<Nanos>,
    /// Bytes still in flight *after* processing this ACK.
    pub in_flight: u64,
}

/// A congestion-control algorithm as the vSwitch sender module sees it:
/// fed per-ACK signal bundles, queried for one window.
///
/// Implementations keep all state internal. The datapath calls
/// [`VirtualCc::on_ack_signals`] only when an ACK made progress or
/// carried ECN feedback (`newly_acked > 0 || marked_bytes > 0`), and
/// routes loss inference through the two retransmit hooks, mirroring
/// the host-stack driving convention.
pub trait VirtualCc: Send + core::fmt::Debug {
    /// Short algorithm name for telemetry/flow dumps, e.g. `"dctcp"`.
    fn name(&self) -> &'static str;

    /// The window to enforce, in bytes.
    fn cwnd(&self) -> u64;

    /// Process one ACK's signal bundle.
    fn on_ack_signals(&mut self, sig: &AckSignals);

    /// Three duplicate ACKs were inferred (fast retransmit, §3.1).
    fn on_fast_retransmit(&mut self, now: Nanos);

    /// An inactivity timeout was inferred (stand-in for the guest RTO).
    fn on_retransmit_timeout(&mut self, now: Nanos);

    /// DCTCP-style marked-fraction estimate in 1e-6 units, if the
    /// algorithm maintains one (drives `alpha-update` telemetry).
    fn alpha_micros(&self) -> Option<u64> {
        None
    }

    /// Serialize the algorithm's dynamic state for checkpointing, in the
    /// flat word encoding of [`CongestionControl::state_words`]. The
    /// default is stateless.
    fn state_words(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restore state captured by [`VirtualCc::state_words`] from an
    /// identically configured instance; `false` (state unchanged) on a
    /// layout mismatch.
    fn load_state_words(&mut self, words: &[u64]) -> bool {
        words.is_empty()
    }
}

/// Adapts a host-stack [`CongestionControl`] algorithm to the
/// [`VirtualCc`] seam by presenting the feedback stream's ECN-marked
/// byte counts as the algorithm's ACK input — DCTCP-from-ECN-fraction,
/// the configuration the paper enforces by default.
#[derive(Debug)]
pub struct EcnFractionCc {
    /// The wrapped algorithm. Private: the only write path is the
    /// trait's own event methods (component `vswitch.virtual-cc`).
    algo: Box<dyn CongestionControl>,
}

impl EcnFractionCc {
    /// Wrap `algo` for the vSwitch seam.
    pub fn new(algo: Box<dyn CongestionControl>) -> EcnFractionCc {
        EcnFractionCc { algo }
    }
}

impl VirtualCc for EcnFractionCc {
    fn name(&self) -> &'static str {
        self.algo.name()
    }

    fn cwnd(&self) -> u64 {
        self.algo.cwnd()
    }

    fn on_ack_signals(&mut self, sig: &AckSignals) {
        self.algo.on_ack(&AckEvent {
            now: sig.now,
            newly_acked: sig.newly_acked,
            marked: sig.marked_bytes,
            rtt: sig.rtt,
            in_flight: sig.in_flight,
            ece: sig.marked_bytes > 0,
        });
    }

    fn on_fast_retransmit(&mut self, now: Nanos) {
        self.algo.on_fast_retransmit(now);
    }

    fn on_retransmit_timeout(&mut self, now: Nanos) {
        self.algo.on_retransmit_timeout(now);
    }

    fn alpha_micros(&self) -> Option<u64> {
        self.algo.alpha_micros()
    }

    fn state_words(&self) -> Vec<u64> {
        self.algo.state_words()
    }

    fn load_state_words(&mut self, words: &[u64]) -> bool {
        self.algo.load_state_words(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_cc::{CcConfig, CcKind};

    fn vcc(kind: CcKind) -> EcnFractionCc {
        EcnFractionCc::new(kind.build(CcConfig::vswitch(1448)))
    }

    fn signals(now: Nanos, newly_acked: u64, marked: u64, total: u64) -> AckSignals {
        AckSignals {
            now,
            newly_acked,
            marked_bytes: marked,
            total_bytes: total,
            rtt: Some(100_000),
            in_flight: 0,
        }
    }

    #[test]
    fn adapter_forwards_identity_and_window() {
        let v = vcc(CcKind::Dctcp);
        assert_eq!(v.name(), "dctcp");
        assert_eq!(v.cwnd(), CcConfig::vswitch(1448).initial_window_bytes());
    }

    #[test]
    fn clean_acks_grow_exactly_like_the_wrapped_algorithm() {
        let mut v = vcc(CcKind::Dctcp);
        let mut reference = CcKind::Dctcp.build(CcConfig::vswitch(1448));
        for i in 0..32u64 {
            let now = i * 1_000_000;
            v.on_ack_signals(&signals(now, 1448, 0, 1448));
            reference.on_ack(&AckEvent {
                now,
                newly_acked: 1448,
                marked: 0,
                rtt: Some(100_000),
                in_flight: 0,
                ece: false,
            });
        }
        assert_eq!(v.cwnd(), reference.cwnd());
        assert_eq!(v.alpha_micros(), reference.alpha_micros());
    }

    #[test]
    fn marked_bytes_raise_alpha_and_cut_the_window() {
        let mut v = vcc(CcKind::Dctcp);
        // Grow first so a cut is observable.
        for i in 0..16u64 {
            v.on_ack_signals(&signals(i * 1_000_000, 14_480, 0, 14_480));
        }
        let grown = v.cwnd();
        for i in 16..64u64 {
            v.on_ack_signals(&signals(i * 1_000_000, 14_480, 14_480, 14_480));
        }
        assert!(v.cwnd() < grown, "fully-marked feedback must cut");
        assert!(v.alpha_micros().unwrap_or(0) > 0, "alpha must rise");
    }

    #[test]
    fn loss_events_reach_the_wrapped_algorithm() {
        let mut v = vcc(CcKind::Cubic);
        for i in 0..16u64 {
            v.on_ack_signals(&signals(i * 1_000_000, 14_480, 0, 14_480));
        }
        let before = v.cwnd();
        v.on_fast_retransmit(16_000_000);
        assert!(v.cwnd() < before, "fast retransmit must cut cubic");
        let after_frtx = v.cwnd();
        v.on_retransmit_timeout(17_000_000);
        assert!(v.cwnd() <= after_frtx, "timeout must not grow the window");
    }
}
