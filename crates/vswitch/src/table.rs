//! The connection-tracking flow table.
//!
//! The paper adds a hash table to OVS keyed by the flow 5-tuple, using RCU
//! for read-mostly lookups and an individual spinlock per flow entry so
//! distinct flows update concurrently (§4). The Rust equivalent here is a
//! *sharded* table — each shard a `parking_lot::RwLock<BTreeMap>` taken
//! for read on lookup — holding `Arc<FlowSlot>` values (the entry behind
//! its own lock, plus a lock-free feedback-pending flag). The per-packet
//! fast path is [`FlowTable::with_entry`]: shard read-lock → per-entry
//! lock, no `Arc` refcount traffic. Inserts and removals (SYN / FIN +
//! garbage collection) take the shard writer lock, exactly the "many more
//! lookups than insertions" profile the paper describes.
//!
//! Shard *selection* hashes the key with [`FlowKey::hash64`] (FNV-1a over
//! the 12 key bytes — stable run-to-run and cheap enough for the two
//! lookups every packet makes), but within a shard the map
//! is ordered: `for_each`/`gc` visit entries in `FlowKey` order, which
//! keeps every whole-table traversal deterministic (lint rule D002).
//!
//! ## Capacity & admission
//!
//! A production vSwitch carries tens of thousands of connections and the
//! paper sizes the design around that (§4: two ~320 B entries per
//! connection), so the table can be *bounded*: [`FlowTable::bounded`]
//! sets a hard `max_flows` cap enforced by a global atomic reservation
//! counter (the count is reserved *before* the shard insert, so `len()`
//! can never exceed the cap, not even transiently). What happens at the
//! cap is the [`AdmissionPolicy`]: turn the new flow away (it is then
//! forwarded untouched — the §3.3 fail-safe) or deterministically evict
//! the entry idle the longest, smallest key breaking ties. Every create
//! path reports an [`Admission`] outcome so the datapath can account
//! evictions and drive its degradation ladder.

use std::collections::btree_map::Entry as MapEntry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, MutexGuard};

use acdc_packet::FlowKey;
use acdc_stats::time::Nanos;
use acdc_telemetry::{EventKind, Telemetry};
use parking_lot::{Mutex, RwLock};

use crate::entry::FlowEntry;

/// Number of shards (power of two). Sized so that even the 10k-flow CPU
/// benchmarks keep shards a handful of entries deep: the per-packet cost
/// is then one FNV hash, one uncontended read lock, and a one-or-two
/// comparison tree descent, instead of a deep BTreeMap walk.
const SHARDS: usize = 1024;

/// Bound on evict→reserve retries when racing other inserters; the
/// deterministic single-threaded simulation always succeeds on the first
/// attempt.
const MAX_EVICT_ATTEMPTS: usize = 8;

/// What a bounded table does when a new flow arrives at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse the new flow; the caller forwards it untracked (the §3.3
    /// fail-safe: the guest's own congestion control still runs).
    RejectNew,
    /// Evict the entry with the oldest `last_activity` (smallest key on
    /// ties) to make room. Deterministic: same state ⇒ same victim.
    EvictOldestIdle,
}

/// Outcome of a create-capable table operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The key was already tracked; no capacity was consumed.
    Existing,
    /// A fresh entry was inserted within capacity.
    Created,
    /// A fresh entry was inserted after evicting this many idle entries.
    CreatedAfterEviction(usize),
    /// The table is full and the policy refused the flow.
    Rejected,
}

impl Admission {
    /// Did this call insert a fresh entry?
    pub fn created(self) -> bool {
        matches!(
            self,
            Admission::Created | Admission::CreatedAfterEviction(_)
        )
    }

    /// Was the flow turned away at the capacity gate?
    pub fn rejected(self) -> bool {
        matches!(self, Admission::Rejected)
    }
}

/// A table slot: the per-flow entry behind its lock, plus the one flag
/// the egress fast path reads without taking that lock.
pub struct FlowSlot {
    /// Mirrors `entry.rx_total > 0` — receiver-module bytes awaiting PACK
    /// feedback. The egress ACK path probes this with a relaxed load and
    /// skips the reverse-entry lock entirely in the common unidirectional
    /// case; it is written back under the entry lock, so a stale `true`
    /// costs one harmless probe and a stale `false` only defers feedback
    /// to the next ACK (which is the PACK contract anyway).
    pub rx_pending: AtomicBool,
    /// The flow entry proper.
    pub entry: Mutex<FlowEntry>,
}

impl FlowSlot {
    fn new(entry: FlowEntry) -> FlowSlot {
        FlowSlot {
            rx_pending: AtomicBool::new(false),
            entry: Mutex::new(entry),
        }
    }

    /// Lock the flow entry.
    pub fn lock(&self) -> MutexGuard<'_, FlowEntry> {
        self.entry.lock()
    }

    /// Relaxed probe of the feedback-pending flag.
    pub fn rx_pending(&self) -> bool {
        self.rx_pending.load(Ordering::Relaxed)
    }

    /// Set the feedback-pending flag (call with the entry lock held).
    pub fn set_rx_pending(&self, pending: bool) {
        self.rx_pending.store(pending, Ordering::Relaxed);
    }
}

/// A sharded flow table: `FlowKey → Arc<FlowSlot>`.
pub struct FlowTable {
    shards: Vec<RwLock<BTreeMap<FlowKey, Arc<FlowSlot>>>>,
    /// Tracked-entry count, maintained by reservation: incremented before
    /// a shard insert, decremented on remove/gc/clear. Upper-bounds the
    /// sum of shard lengths at all times, so a capacity check against it
    /// can never let the table overshoot `max_flows`.
    count: AtomicUsize,
    max_flows: Option<usize>,
    admission: AdmissionPolicy,
    /// GC bookkeeping epoch: idleness is measured from
    /// `max(last_activity, epoch)`, so stamping the epoch at a datapath
    /// reset or checkpoint restore guarantees entries carrying
    /// `last_activity` values from before that event can never be
    /// spuriously collected by the first sweep afterwards.
    epoch: AtomicU64,
    /// Event sink for per-key lifecycle events the table itself observes
    /// (today: idle/closed garbage collection). `None` until the owning
    /// datapath attaches its hub.
    telemetry: Option<Arc<Telemetry>>,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable::new()
    }
}

impl FlowTable {
    /// An empty, unbounded table.
    pub fn new() -> FlowTable {
        FlowTable {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
            count: AtomicUsize::new(0),
            max_flows: None,
            admission: AdmissionPolicy::EvictOldestIdle,
            epoch: AtomicU64::new(0),
            telemetry: None,
        }
    }

    /// An empty table holding at most `max_flows` entries, applying
    /// `admission` when a new flow arrives at capacity.
    pub fn bounded(max_flows: usize, admission: AdmissionPolicy) -> FlowTable {
        FlowTable {
            max_flows: Some(max_flows),
            admission,
            ..FlowTable::new()
        }
    }

    /// The configured capacity (`None` = unbounded).
    pub fn max_flows(&self) -> Option<usize> {
        self.max_flows
    }

    /// The current GC bookkeeping epoch (0 until first stamped).
    pub fn epoch(&self) -> Nanos {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Stamp the GC epoch: idleness in subsequent [`FlowTable::gc`]
    /// sweeps is measured from no earlier than `at`. Called on datapath
    /// reset and checkpoint restore; stamps never move backwards.
    pub fn set_epoch(&self, at: Nanos) {
        self.epoch.fetch_max(at, Ordering::Relaxed);
    }

    /// Attach the telemetry hub that receives the table's own lifecycle
    /// events (gc evictions carry the collected flow's key).
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// The shard index `key` maps to: the low bits of [`FlowKey::hash64`].
    /// Worker steering (`acdc-workers`) masks the *same* hash, so for a
    /// power-of-two worker count every worker touches a disjoint slice of
    /// shards — its working set is effectively core-local.
    pub fn shard_of(key: &FlowKey) -> usize {
        (key.hash64() as usize) & (SHARDS - 1)
    }

    /// Number of shards (a compile-time power of two).
    pub const fn shard_count() -> usize {
        SHARDS
    }

    fn shard(&self, key: &FlowKey) -> &RwLock<BTreeMap<FlowKey, Arc<FlowSlot>>> {
        &self.shards[Self::shard_of(key)]
    }

    /// Look up an entry (read path: shard read lock only). Clones the
    /// `Arc` — fine for cold paths; per-packet code uses
    /// [`FlowTable::with_entry`] to skip the two refcount ops.
    pub fn get(&self, key: &FlowKey) -> Option<Arc<FlowSlot>> {
        self.shard(key).read().get(key).cloned()
    }

    /// Run `f` on the slot for `key`, under the shard read lock, without
    /// touching the `Arc` refcount. `f` must not call back into the table
    /// (the shard lock is held).
    pub fn with_entry<R>(&self, key: &FlowKey, f: impl FnOnce(&FlowSlot) -> R) -> Option<R> {
        self.shard(key).read().get(key).map(|slot| f(slot))
    }

    /// Reserve one slot in `count`, respecting the cap.
    fn try_reserve(&self) -> bool {
        match self.max_flows {
            None => {
                self.count.fetch_add(1, Ordering::Relaxed);
                true
            }
            Some(cap) => self
                .count
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                    (c < cap).then_some(c + 1)
                })
                .is_ok(),
        }
    }

    fn release(&self) {
        self.count.fetch_sub(1, Ordering::Relaxed);
    }

    /// Evict the entry idle the longest (smallest key on ties), never the
    /// key about to be inserted. Returns `false` when nothing is
    /// evictable.
    fn evict_one(&self, avoid: &FlowKey) -> bool {
        let mut victim: Option<(Nanos, FlowKey)> = None;
        for shard in &self.shards {
            let shard = shard.read();
            for (k, slot) in shard.iter() {
                if k == avoid {
                    continue;
                }
                let cand = (slot.entry.lock().last_activity, *k);
                if victim.is_none_or(|v| cand < v) {
                    victim = Some(cand);
                }
            }
        }
        match victim {
            Some((_, k)) => self.remove(&k),
            None => false,
        }
    }

    /// Reserve capacity for a new entry per the admission policy.
    /// Returns `(reserved, entries evicted to make room)`.
    fn admit(&self, key: &FlowKey) -> (bool, usize) {
        if self.try_reserve() {
            return (true, 0);
        }
        match self.admission {
            AdmissionPolicy::RejectNew => (false, 0),
            AdmissionPolicy::EvictOldestIdle => {
                let mut evicted = 0;
                for _ in 0..MAX_EVICT_ATTEMPTS {
                    if !self.evict_one(key) {
                        return (false, evicted);
                    }
                    evicted += 1;
                    if self.try_reserve() {
                        return (true, evicted);
                    }
                }
                (false, evicted)
            }
        }
    }

    /// [`FlowTable::with_entry`], creating the slot with `init` when
    /// absent — subject to the capacity/admission gate. Same rule: `f`
    /// must not call back into the table. Returns `None` (with
    /// [`Admission::Rejected`]) when the table is full and the policy
    /// refused the flow; `f` is not called in that case.
    pub fn with_entry_or_create<R>(
        &self,
        key: FlowKey,
        init: impl FnOnce() -> FlowEntry,
        f: impl FnOnce(&FlowSlot) -> R,
    ) -> (Option<R>, Admission) {
        {
            let shard = self.shard(&key).read();
            if let Some(slot) = shard.get(&key) {
                return (Some(f(slot)), Admission::Existing);
            }
        }
        // Admission (and any eviction it entails) happens before the
        // target shard's write lock is taken: the victim may live in the
        // same shard, and parking_lot locks are not re-entrant.
        let (reserved, evicted) = self.admit(&key);
        if !reserved {
            return (None, Admission::Rejected);
        }
        let mut shard = self.shard(&key).write();
        match shard.entry(key) {
            MapEntry::Occupied(o) => {
                // Lost a create race: hand the reservation back.
                self.release();
                (Some(f(o.get())), Admission::Existing)
            }
            MapEntry::Vacant(v) => {
                let slot = v.insert(Arc::new(FlowSlot::new(init())));
                let adm = if evicted > 0 {
                    Admission::CreatedAfterEviction(evicted)
                } else {
                    Admission::Created
                };
                (Some(f(slot)), adm)
            }
        }
    }

    /// Look up or create an entry with `init`, subject to the
    /// capacity/admission gate. `None` with [`Admission::Rejected`] when
    /// the table is full and the policy refused the flow.
    pub fn get_or_create(
        &self,
        key: FlowKey,
        init: impl FnOnce() -> FlowEntry,
    ) -> (Option<Arc<FlowSlot>>, Admission) {
        {
            let shard = self.shard(&key).read();
            if let Some(slot) = shard.get(&key) {
                return (Some(Arc::clone(slot)), Admission::Existing);
            }
        }
        // Same ordering rule as `with_entry_or_create`: admit (which may
        // evict, possibly from this very shard) before the write lock.
        let (reserved, evicted) = self.admit(&key);
        if !reserved {
            return (None, Admission::Rejected);
        }
        let mut shard = self.shard(&key).write();
        match shard.entry(key) {
            MapEntry::Occupied(o) => {
                self.release();
                (Some(Arc::clone(o.get())), Admission::Existing)
            }
            MapEntry::Vacant(v) => {
                let slot = Arc::new(FlowSlot::new(init()));
                v.insert(Arc::clone(&slot));
                let adm = if evicted > 0 {
                    Admission::CreatedAfterEviction(evicted)
                } else {
                    Admission::Created
                };
                (Some(slot), adm)
            }
        }
    }

    /// Remove an entry (FIN teardown).
    pub fn remove(&self, key: &FlowKey) -> bool {
        let removed = self.shard(key).write().remove(key).is_some();
        if removed {
            self.release();
        }
        removed
    }

    /// Number of tracked flows (O(1): the reservation counter).
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (vSwitch restart). Returns the number removed.
    pub fn clear(&self) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.write();
            removed += shard.len();
            shard.clear();
        }
        self.count.fetch_sub(removed, Ordering::Relaxed);
        removed
    }

    /// Coarse-grained garbage collection (paired with FIN handling in the
    /// paper): drop entries idle for longer than `idle_timeout`, plus any
    /// entry already marked closed. Idleness is measured from the later
    /// of the entry's `last_activity` and the table [`FlowTable::epoch`],
    /// so a reset/restore epoch stamp shields entries carrying pre-event
    /// activity times from one spurious collection. Returns the number
    /// collected.
    pub fn gc(&self, now: Nanos, idle_timeout: Nanos) -> usize {
        // Evicted keys are collected during the sweep and their events
        // published only after every shard/entry lock is released (W002:
        // no event-bus entry while table locks are held). Shard order is
        // the iteration order, so the event sequence is unchanged.
        let epoch = self.epoch();
        let mut evicted: Vec<FlowKey> = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|key, v| {
                let e = v.entry.lock();
                let dead =
                    e.closing || now.saturating_sub(e.last_activity.max(epoch)) > idle_timeout;
                if dead {
                    evicted.push(*key);
                }
                !dead
            });
        }
        self.count.fetch_sub(evicted.len(), Ordering::Relaxed);
        crate::strict_invariant!(
            self.count.load(Ordering::Relaxed)
                == self.shards.iter().map(|s| s.read().len()).sum::<usize>(),
            "flow-table count drifted from shard contents after gc"
        );
        if let Some(t) = &self.telemetry {
            for key in &evicted {
                t.record(now, *key, EventKind::FlowEvicted { reason: "gc" });
            }
        }
        evicted.len()
    }

    /// Visit a batch of keys with the lookups amortized: indices are
    /// grouped by shard and each distinct shard's read lock is taken
    /// *once*, instead of once per key. `f(i, slot)` runs for every batch
    /// position — `slot` is `None` for untracked keys — ordered by shard
    /// index, then submission order within a shard (deterministic for a
    /// given batch). Same rule as [`FlowTable::with_entry`]: `f` must not
    /// call back into the table.
    pub fn with_batch(&self, keys: &[FlowKey], mut f: impl FnMut(usize, Option<&Arc<FlowSlot>>)) {
        let mut order: Vec<(u16, u32)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (Self::shard_of(k) as u16, i as u32))
            .collect();
        order.sort_unstable();
        let mut at = 0;
        while at < order.len() {
            let shard_idx = order[at].0;
            let shard = self.shards[usize::from(shard_idx)].read();
            while at < order.len() && order[at].0 == shard_idx {
                let i = order[at].1 as usize;
                f(i, shard.get(&keys[i]));
                at += 1;
            }
        }
    }

    /// Warm a batch ahead of the touch loop: resolve every key once
    /// (grouped by shard, like [`FlowTable::with_batch`]) and touch each
    /// slot's first cache line via the relaxed `rx_pending` load — the
    /// safe-Rust stand-in for a software prefetch. Returns the resolved
    /// slots in *submission order*, so the caller's per-packet loop runs
    /// lock → update → unlock against already-resident slots with no
    /// further table traffic.
    pub fn prefetch_batch(&self, keys: &[FlowKey]) -> Vec<Option<Arc<FlowSlot>>> {
        let mut slots: Vec<Option<Arc<FlowSlot>>> = vec![None; keys.len()];
        self.with_batch(keys, |i, slot| {
            slots[i] = slot.map(|s| {
                let _ = s.rx_pending();
                Arc::clone(s)
            });
        });
        slots
    }

    /// Visit every entry (diagnostics, inactivity scans).
    pub fn for_each(&self, mut f: impl FnMut(&FlowKey, &mut FlowEntry)) {
        for shard in &self.shards {
            let shard = shard.read();
            for (k, v) in shard.iter() {
                f(k, &mut v.entry.lock());
            }
        }
    }

    /// Visit every *slot* (entry plus the lock-free `rx_pending` flag) —
    /// the checkpoint capture walk, which needs slot state `for_each`
    /// hides. Same rule as [`FlowTable::with_entry`]: `f` must not call
    /// back into the table (the shard read lock is held).
    pub fn for_each_slot(&self, mut f: impl FnMut(&FlowKey, &FlowSlot)) {
        for shard in &self.shards {
            let shard = shard.read();
            for (k, v) in shard.iter() {
                f(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_cc::{CcConfig, CcKind};

    fn key(p: u16) -> FlowKey {
        FlowKey {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            src_port: p,
            dst_port: 80,
        }
    }

    fn entry(now: Nanos) -> FlowEntry {
        FlowEntry::new(CcKind::Dctcp, CcConfig::vswitch(1448), now)
    }

    fn create(t: &FlowTable, p: u16, now: Nanos) -> (Arc<FlowSlot>, Admission) {
        let (slot, adm) = t.get_or_create(key(p), || entry(now));
        (slot.expect("admitted"), adm)
    }

    #[test]
    fn create_lookup_remove() {
        let t = FlowTable::new();
        assert!(t.get(&key(1)).is_none());
        let (e, adm) = create(&t, 1, 0);
        assert_eq!(adm, Admission::Created);
        e.lock().last_activity = 42;
        let e2 = t.get(&key(1)).unwrap();
        assert_eq!(e2.lock().last_activity, 42);
        assert_eq!(t.len(), 1);
        assert!(t.remove(&key(1)));
        assert!(t.is_empty());
        assert!(!t.remove(&key(1)));
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let t = FlowTable::new();
        let (a, _) = create(&t, 7, 0);
        let (b, adm) = create(&t, 7, 99);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(adm, Admission::Existing);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_flows_distribute_across_shards() {
        let t = FlowTable::new();
        for p in 0..1000 {
            create(&t, p, 0);
        }
        assert_eq!(t.len(), 1000);
        let nonempty = t.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(nonempty > SHARDS / 2, "poor shard distribution: {nonempty}");
    }

    #[test]
    fn gc_collects_idle_and_closed() {
        let t = FlowTable::new();
        create(&t, 1, 0); // idle since t=0
        let (fresh, _) = create(&t, 2, 0);
        fresh.lock().last_activity = 1_000_000_000;
        let (closed, _) = create(&t, 3, 0);
        closed.lock().last_activity = 1_000_000_000;
        closed.lock().closing = true;
        let n = t.gc(1_000_000_001, 500_000_000);
        assert_eq!(n, 2);
        assert_eq!(t.len(), 1);
        assert!(t.get(&key(1)).is_none());
        assert!(t.get(&key(2)).is_some());
        assert!(t.get(&key(3)).is_none());
    }

    #[test]
    fn gc_epoch_shields_pre_epoch_idle_times() {
        let t = FlowTable::new();
        create(&t, 1, 0); // last_activity = 0, ancient
        assert_eq!(t.epoch(), 0);
        // Without an epoch stamp this entry would be collected instantly.
        t.set_epoch(2_000_000_000);
        assert_eq!(t.gc(2_000_000_001, 500_000_000), 0);
        assert!(t.get(&key(1)).is_some(), "epoch shields pre-epoch idleness");
        // Once genuinely idle *past* the epoch, collection proceeds.
        assert_eq!(t.gc(2_600_000_001, 500_000_000), 1);
        assert!(t.get(&key(1)).is_none());
        // Epoch stamps never move backwards.
        t.set_epoch(1_000_000_000);
        assert_eq!(t.epoch(), 2_000_000_000);
    }

    #[test]
    fn bounded_reject_new_refuses_at_capacity() {
        let t = FlowTable::bounded(2, AdmissionPolicy::RejectNew);
        assert_eq!(create(&t, 1, 0).1, Admission::Created);
        assert_eq!(create(&t, 2, 0).1, Admission::Created);
        let (slot, adm) = t.get_or_create(key(3), || entry(0));
        assert!(slot.is_none());
        assert_eq!(adm, Admission::Rejected);
        assert_eq!(t.len(), 2);
        // Existing keys still resolve at capacity.
        assert_eq!(create(&t, 1, 0).1, Admission::Existing);
        // Freeing a slot re-opens admission.
        assert!(t.remove(&key(1)));
        assert_eq!(create(&t, 3, 0).1, Admission::Created);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn bounded_evict_oldest_idle_is_deterministic() {
        let t = FlowTable::bounded(2, AdmissionPolicy::EvictOldestIdle);
        let (a, _) = create(&t, 1, 0);
        a.lock().last_activity = 100;
        let (b, _) = create(&t, 2, 0);
        b.lock().last_activity = 50; // oldest → the victim
        let (_, adm) = create(&t, 3, 0);
        assert_eq!(adm, Admission::CreatedAfterEviction(1));
        assert_eq!(t.len(), 2);
        assert!(t.get(&key(2)).is_none(), "oldest-idle entry evicted");
        assert!(t.get(&key(1)).is_some());
        assert!(t.get(&key(3)).is_some());
    }

    #[test]
    fn eviction_ties_break_on_smallest_key() {
        let t = FlowTable::bounded(2, AdmissionPolicy::EvictOldestIdle);
        create(&t, 9, 0);
        create(&t, 4, 0); // same last_activity; smaller port loses
        create(&t, 7, 0);
        assert!(t.get(&key(4)).is_none(), "smallest key evicted on tie");
        assert!(t.get(&key(9)).is_some());
        assert!(t.get(&key(7)).is_some());
    }

    #[test]
    fn with_entry_or_create_respects_capacity() {
        let t = FlowTable::bounded(1, AdmissionPolicy::RejectNew);
        let (r, adm) = t.with_entry_or_create(key(1), || entry(0), |_| 1u32);
        assert_eq!((r, adm), (Some(1), Admission::Created));
        let (r, adm) = t.with_entry_or_create(key(2), || entry(0), |_| 2u32);
        assert_eq!((r, adm), (None, Admission::Rejected));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_empties_and_reopens_admission() {
        let t = FlowTable::bounded(2, AdmissionPolicy::RejectNew);
        create(&t, 1, 0);
        create(&t, 2, 0);
        assert_eq!(t.clear(), 2);
        assert!(t.is_empty());
        assert_eq!(create(&t, 3, 0).1, Admission::Created);
    }

    #[test]
    fn with_batch_visits_every_position_once() {
        let t = FlowTable::new();
        for p in 0..64 {
            create(&t, p, 0);
        }
        // Mix of tracked, untracked, and duplicate keys.
        let keys: Vec<FlowKey> = (0..96).map(|p| key(p % 80)).collect();
        let mut seen = vec![0u32; keys.len()];
        let mut hits = 0;
        t.with_batch(&keys, |i, slot| {
            seen[i] += 1;
            if let Some(s) = slot {
                s.lock().last_activity = 7;
                hits += 1;
            }
        });
        assert!(seen.iter().all(|&n| n == 1), "each position exactly once");
        let expected_hits = keys
            .iter()
            .filter(|k| u32::from(k.src_port) % 80 < 64)
            .count();
        assert_eq!(hits, expected_hits);
    }

    #[test]
    fn with_batch_groups_by_shard_deterministically() {
        let t = FlowTable::new();
        for p in 0..32 {
            create(&t, p, 0);
        }
        let keys: Vec<FlowKey> = (0..32).map(key).collect();
        let visit = |t: &FlowTable| {
            let mut order = Vec::new();
            t.with_batch(&keys, |i, _| order.push(i));
            order
        };
        let first = visit(&t);
        assert_eq!(first, visit(&t), "same batch ⇒ same visit order");
        // Within a shard group, submission order is preserved.
        let mut shards_seen = Vec::new();
        for &i in &first {
            let s = FlowTable::shard_of(&keys[i]);
            if shards_seen.last() != Some(&s) {
                shards_seen.push(s);
            }
        }
        let mut sorted = shards_seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            shards_seen, sorted,
            "shard groups visited in ascending order"
        );
    }

    #[test]
    fn prefetch_batch_resolves_in_submission_order() {
        let t = FlowTable::new();
        create(&t, 1, 0);
        create(&t, 3, 0);
        let keys = [key(1), key(2), key(3)];
        let slots = t.prefetch_batch(&keys);
        assert!(slots[0].is_some());
        assert!(slots[1].is_none());
        assert!(slots[2].is_some());
        assert!(Arc::ptr_eq(
            slots[0].as_ref().unwrap(),
            &t.get(&key(1)).unwrap()
        ));
    }

    #[test]
    fn shard_of_matches_internal_selection() {
        let t = FlowTable::new();
        for p in 0..200 {
            create(&t, p, 0);
        }
        for p in 0..200 {
            let k = key(p);
            let shard = t.shards[FlowTable::shard_of(&k)].read();
            assert!(shard.contains_key(&k));
        }
        assert!(FlowTable::shard_count().is_power_of_two());
    }

    #[test]
    fn concurrent_access_from_threads() {
        let t = Arc::new(FlowTable::new());
        let mut handles = Vec::new();
        for tid in 0..4u16 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u16 {
                    let k = key(tid * 250 + i);
                    let (e, _) = t.get_or_create(k, || entry(0));
                    e.unwrap().lock().last_activity = u64::from(i);
                    assert!(t.get(&k).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 1000);
    }
}
