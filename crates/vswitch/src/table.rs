//! The connection-tracking flow table.
//!
//! The paper adds a hash table to OVS keyed by the flow 5-tuple, using RCU
//! for read-mostly lookups and an individual spinlock per flow entry so
//! distinct flows update concurrently (§4). The Rust equivalent here is a
//! *sharded* table — each shard a `parking_lot::RwLock<BTreeMap>` taken
//! for read on lookup — holding `Arc<FlowSlot>` values (the entry behind
//! its own lock, plus a lock-free feedback-pending flag). The per-packet
//! fast path is [`FlowTable::with_entry`]: shard read-lock → per-entry
//! lock, no `Arc` refcount traffic. Inserts and removals (SYN / FIN +
//! garbage collection) take the shard writer lock, exactly the "many more
//! lookups than insertions" profile the paper describes.
//!
//! Shard *selection* hashes the key with [`FlowKey::hash64`] (FNV-1a over
//! the 12 key bytes — stable run-to-run and cheap enough for the two
//! lookups every packet makes), but within a shard the map
//! is ordered: `for_each`/`gc` visit entries in `FlowKey` order, which
//! keeps every whole-table traversal deterministic (lint rule D002).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, MutexGuard};

use acdc_packet::FlowKey;
use acdc_stats::time::Nanos;
use parking_lot::{Mutex, RwLock};

use crate::entry::FlowEntry;

/// Number of shards (power of two). Sized so that even the 10k-flow CPU
/// benchmarks keep shards a handful of entries deep: the per-packet cost
/// is then one FNV hash, one uncontended read lock, and a one-or-two
/// comparison tree descent, instead of a deep BTreeMap walk.
const SHARDS: usize = 1024;

/// A table slot: the per-flow entry behind its lock, plus the one flag
/// the egress fast path reads without taking that lock.
pub struct FlowSlot {
    /// Mirrors `entry.rx_total > 0` — receiver-module bytes awaiting PACK
    /// feedback. The egress ACK path probes this with a relaxed load and
    /// skips the reverse-entry lock entirely in the common unidirectional
    /// case; it is written back under the entry lock, so a stale `true`
    /// costs one harmless probe and a stale `false` only defers feedback
    /// to the next ACK (which is the PACK contract anyway).
    pub rx_pending: AtomicBool,
    /// The flow entry proper.
    pub entry: Mutex<FlowEntry>,
}

impl FlowSlot {
    fn new(entry: FlowEntry) -> FlowSlot {
        FlowSlot {
            rx_pending: AtomicBool::new(false),
            entry: Mutex::new(entry),
        }
    }

    /// Lock the flow entry.
    pub fn lock(&self) -> MutexGuard<'_, FlowEntry> {
        self.entry.lock()
    }

    /// Relaxed probe of the feedback-pending flag.
    pub fn rx_pending(&self) -> bool {
        self.rx_pending.load(Ordering::Relaxed)
    }

    /// Set the feedback-pending flag (call with the entry lock held).
    pub fn set_rx_pending(&self, pending: bool) {
        self.rx_pending.store(pending, Ordering::Relaxed);
    }
}

/// A sharded flow table: `FlowKey → Arc<FlowSlot>`.
pub struct FlowTable {
    shards: Vec<RwLock<BTreeMap<FlowKey, Arc<FlowSlot>>>>,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable::new()
    }
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
        }
    }

    fn shard(&self, key: &FlowKey) -> &RwLock<BTreeMap<FlowKey, Arc<FlowSlot>>> {
        &self.shards[(key.hash64() as usize) & (SHARDS - 1)]
    }

    /// Look up an entry (read path: shard read lock only). Clones the
    /// `Arc` — fine for cold paths; per-packet code uses
    /// [`FlowTable::with_entry`] to skip the two refcount ops.
    pub fn get(&self, key: &FlowKey) -> Option<Arc<FlowSlot>> {
        self.shard(key).read().get(key).cloned()
    }

    /// Run `f` on the slot for `key`, under the shard read lock, without
    /// touching the `Arc` refcount. `f` must not call back into the table
    /// (the shard lock is held).
    pub fn with_entry<R>(&self, key: &FlowKey, f: impl FnOnce(&FlowSlot) -> R) -> Option<R> {
        self.shard(key).read().get(key).map(|slot| f(slot))
    }

    /// [`FlowTable::with_entry`], creating the slot with `init` when
    /// absent. Same rule: `f` must not call back into the table.
    pub fn with_entry_or_create<R>(
        &self,
        key: FlowKey,
        init: impl FnOnce() -> FlowEntry,
        f: impl FnOnce(&FlowSlot) -> R,
    ) -> R {
        {
            let shard = self.shard(&key).read();
            if let Some(slot) = shard.get(&key) {
                return f(slot);
            }
        }
        let mut shard = self.shard(&key).write();
        let slot = shard
            .entry(key)
            .or_insert_with(|| Arc::new(FlowSlot::new(init())));
        f(slot)
    }

    /// Look up or create an entry with `init`.
    pub fn get_or_create(&self, key: FlowKey, init: impl FnOnce() -> FlowEntry) -> Arc<FlowSlot> {
        if let Some(e) = self.get(&key) {
            return e;
        }
        let mut shard = self.shard(&key).write();
        shard
            .entry(key)
            .or_insert_with(|| Arc::new(FlowSlot::new(init())))
            .clone()
    }

    /// Remove an entry (FIN teardown).
    pub fn remove(&self, key: &FlowKey) -> bool {
        self.shard(key).write().remove(key).is_some()
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coarse-grained garbage collection (paired with FIN handling in the
    /// paper): drop entries idle for longer than `idle_timeout`, plus any
    /// entry already marked closed. Returns the number collected.
    pub fn gc(&self, now: Nanos, idle_timeout: Nanos) -> usize {
        let mut collected = 0;
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|_, v| {
                let e = v.entry.lock();
                let dead = e.closing || now.saturating_sub(e.last_activity) > idle_timeout;
                if dead {
                    collected += 1;
                }
                !dead
            });
        }
        collected
    }

    /// Visit every entry (diagnostics, inactivity scans).
    pub fn for_each(&self, mut f: impl FnMut(&FlowKey, &mut FlowEntry)) {
        for shard in &self.shards {
            let shard = shard.read();
            for (k, v) in shard.iter() {
                f(k, &mut v.entry.lock());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_cc::{CcConfig, CcKind};

    fn key(p: u16) -> FlowKey {
        FlowKey {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            src_port: p,
            dst_port: 80,
        }
    }

    fn entry(now: Nanos) -> FlowEntry {
        FlowEntry::new(CcKind::Dctcp, CcConfig::vswitch(1448), now)
    }

    #[test]
    fn create_lookup_remove() {
        let t = FlowTable::new();
        assert!(t.get(&key(1)).is_none());
        let e = t.get_or_create(key(1), || entry(0));
        e.lock().last_activity = 42;
        let e2 = t.get(&key(1)).unwrap();
        assert_eq!(e2.lock().last_activity, 42);
        assert_eq!(t.len(), 1);
        assert!(t.remove(&key(1)));
        assert!(t.is_empty());
        assert!(!t.remove(&key(1)));
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let t = FlowTable::new();
        let a = t.get_or_create(key(7), || entry(0));
        let b = t.get_or_create(key(7), || entry(99));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_flows_distribute_across_shards() {
        let t = FlowTable::new();
        for p in 0..1000 {
            t.get_or_create(key(p), || entry(0));
        }
        assert_eq!(t.len(), 1000);
        let nonempty = t.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(nonempty > SHARDS / 2, "poor shard distribution: {nonempty}");
    }

    #[test]
    fn gc_collects_idle_and_closed() {
        let t = FlowTable::new();
        t.get_or_create(key(1), || entry(0)); // idle since t=0
        let fresh = t.get_or_create(key(2), || entry(0));
        fresh.lock().last_activity = 1_000_000_000;
        let closed = t.get_or_create(key(3), || entry(0));
        closed.lock().last_activity = 1_000_000_000;
        closed.lock().closing = true;
        let n = t.gc(1_000_000_001, 500_000_000);
        assert_eq!(n, 2);
        assert!(t.get(&key(1)).is_none());
        assert!(t.get(&key(2)).is_some());
        assert!(t.get(&key(3)).is_none());
    }

    #[test]
    fn concurrent_access_from_threads() {
        let t = Arc::new(FlowTable::new());
        let mut handles = Vec::new();
        for tid in 0..4u16 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u16 {
                    let k = key(tid * 250 + i);
                    let e = t.get_or_create(k, || entry(0));
                    e.lock().last_activity = u64::from(i);
                    assert!(t.get(&k).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 1000);
    }
}
