//! The connection-tracking flow table.
//!
//! The paper adds a hash table to OVS keyed by the flow 5-tuple, using RCU
//! for read-mostly lookups and an individual spinlock per flow entry so
//! distinct flows update concurrently (§4). The Rust equivalent here is a
//! *sharded* table — each shard a `parking_lot::RwLock<BTreeMap>` taken
//! for read on lookup — holding `Arc<Mutex<FlowEntry>>` values, so the
//! fast path is: shard read-lock → clone `Arc` → per-entry lock. Inserts
//! and removals (SYN / FIN + garbage collection) take the shard writer
//! lock, exactly the "many more lookups than insertions" profile the
//! paper describes.
//!
//! Shard *selection* still hashes the key (`DefaultHasher` with its fixed
//! default keys, so it is stable run-to-run), but within a shard the map
//! is ordered: `for_each`/`gc` visit entries in `FlowKey` order, which
//! keeps every whole-table traversal deterministic (lint rule D002).

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use acdc_packet::FlowKey;
use acdc_stats::time::Nanos;
use parking_lot::{Mutex, RwLock};

use crate::entry::FlowEntry;

/// Number of shards (power of two).
const SHARDS: usize = 64;

/// A sharded flow table: `FlowKey → Arc<Mutex<FlowEntry>>`.
pub struct FlowTable {
    shards: Vec<RwLock<BTreeMap<FlowKey, Arc<Mutex<FlowEntry>>>>>,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable::new()
    }
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
        }
    }

    fn shard(&self, key: &FlowKey) -> &RwLock<BTreeMap<FlowKey, Arc<Mutex<FlowEntry>>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Look up an entry (read path: shard read lock only).
    pub fn get(&self, key: &FlowKey) -> Option<Arc<Mutex<FlowEntry>>> {
        self.shard(key).read().get(key).cloned()
    }

    /// Look up or create an entry with `init`.
    pub fn get_or_create(
        &self,
        key: FlowKey,
        init: impl FnOnce() -> FlowEntry,
    ) -> Arc<Mutex<FlowEntry>> {
        if let Some(e) = self.get(&key) {
            return e;
        }
        let mut shard = self.shard(&key).write();
        shard
            .entry(key)
            .or_insert_with(|| Arc::new(Mutex::new(init())))
            .clone()
    }

    /// Remove an entry (FIN teardown).
    pub fn remove(&self, key: &FlowKey) -> bool {
        self.shard(key).write().remove(key).is_some()
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coarse-grained garbage collection (paired with FIN handling in the
    /// paper): drop entries idle for longer than `idle_timeout`, plus any
    /// entry already marked closed. Returns the number collected.
    pub fn gc(&self, now: Nanos, idle_timeout: Nanos) -> usize {
        let mut collected = 0;
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|_, v| {
                let e = v.lock();
                let dead = e.closing || now.saturating_sub(e.last_activity) > idle_timeout;
                if dead {
                    collected += 1;
                }
                !dead
            });
        }
        collected
    }

    /// Visit every entry (diagnostics, inactivity scans).
    pub fn for_each(&self, mut f: impl FnMut(&FlowKey, &mut FlowEntry)) {
        for shard in &self.shards {
            let shard = shard.read();
            for (k, v) in shard.iter() {
                f(k, &mut v.lock());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_cc::{CcConfig, CcKind};

    fn key(p: u16) -> FlowKey {
        FlowKey {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            src_port: p,
            dst_port: 80,
        }
    }

    fn entry(now: Nanos) -> FlowEntry {
        FlowEntry::new(CcKind::Dctcp, CcConfig::vswitch(1448), now)
    }

    #[test]
    fn create_lookup_remove() {
        let t = FlowTable::new();
        assert!(t.get(&key(1)).is_none());
        let e = t.get_or_create(key(1), || entry(0));
        e.lock().last_activity = 42;
        let e2 = t.get(&key(1)).unwrap();
        assert_eq!(e2.lock().last_activity, 42);
        assert_eq!(t.len(), 1);
        assert!(t.remove(&key(1)));
        assert!(t.is_empty());
        assert!(!t.remove(&key(1)));
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let t = FlowTable::new();
        let a = t.get_or_create(key(7), || entry(0));
        let b = t.get_or_create(key(7), || entry(99));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_flows_distribute_across_shards() {
        let t = FlowTable::new();
        for p in 0..1000 {
            t.get_or_create(key(p), || entry(0));
        }
        assert_eq!(t.len(), 1000);
        let nonempty = t.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(nonempty > SHARDS / 2, "poor shard distribution: {nonempty}");
    }

    #[test]
    fn gc_collects_idle_and_closed() {
        let t = FlowTable::new();
        t.get_or_create(key(1), || entry(0)); // idle since t=0
        let fresh = t.get_or_create(key(2), || entry(0));
        fresh.lock().last_activity = 1_000_000_000;
        let closed = t.get_or_create(key(3), || entry(0));
        closed.lock().last_activity = 1_000_000_000;
        closed.lock().closing = true;
        let n = t.gc(1_000_000_001, 500_000_000);
        assert_eq!(n, 2);
        assert!(t.get(&key(1)).is_none());
        assert!(t.get(&key(2)).is_some());
        assert!(t.get(&key(3)).is_none());
    }

    #[test]
    fn concurrent_access_from_threads() {
        let t = Arc::new(FlowTable::new());
        let mut handles = Vec::new();
        for tid in 0..4u16 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u16 {
                    let k = key(tid * 250 + i);
                    let e = t.get_or_create(k, || entry(0));
                    e.lock().last_activity = u64::from(i);
                    assert!(t.get(&k).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 1000);
    }
}
