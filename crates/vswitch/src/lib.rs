//! # acdc-vswitch — AC/DC: congestion control enforced in the vSwitch
//!
//! The paper's contribution, implemented as an Open-vSwitch-style datapath
//! module. Packets between a guest ("VM") TCP stack and the NIC pass
//! through [`AcdcDatapath::egress`] / [`AcdcDatapath::ingress`], which:
//!
//! * reconstruct per-flow congestion-control state by watching sequence
//!   numbers, ACKs and handshakes (§3.1) — stored in a sharded, per-entry
//!   locked [`table::FlowTable`] mirroring the paper's RCU hash table with
//!   per-entry spinlocks;
//! * implement DCTCP (or any [`acdc_cc`] algorithm, selected per flow by a
//!   [`CcPolicy`]) inside the vSwitch: forcing ECT on egress data, counting
//!   CE-marked bytes at the receiver, and shipping the counts back in
//!   **PACK** TCP options or dedicated **FACK** packets (§3.2);
//! * enforce the computed window by rewriting the TCP receive window on
//!   ACKs headed to the guest — a 2-byte write plus incremental checksum
//!   patch — honouring window scaling, and **police** flows that ignore it
//!   by dropping excess packets (§3.3);
//! * support per-flow differentiation, including the priority-weighted
//!   DCTCP of Equation 1 (§3.4).
//!
//! The datapath is simulator-agnostic and thread-safe: the Criterion CPU
//! benches drive the very same code the simulation uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Check a protocol-state invariant when the `strict-invariants` feature
/// is enabled. Expands to a `debug_assert!`, so it is additionally elided
/// from release builds; without the feature it compiles to nothing while
/// still type-checking the condition.
macro_rules! strict_invariant {
    ($($arg:tt)+) => {
        if cfg!(feature = "strict-invariants") {
            debug_assert!($($arg)+);
        }
    };
}
pub(crate) use strict_invariant;

pub mod checkpoint;
pub mod datapath;
pub mod entry;
pub mod health;
pub mod policy;
pub mod rwnd;
pub mod table;
pub mod vcc;

pub use checkpoint::{DatapathCheckpoint, FlowCheckpoint, HubCheckpoint, RecorderCheckpoint};
pub use datapath::{
    AcdcConfig, AcdcCounters, AcdcDatapath, DropReason, FlowStat, Verdict, WorkerSink,
};
pub use entry::{FlowEntry, FlowEntryState};
pub use health::{HealthState, Watermarks};
pub use policy::CcPolicy;
pub use rwnd::{RwndAction, RwndRewriter};
pub use table::{Admission, AdmissionPolicy, FlowTable};
pub use vcc::{AckSignals, EcnFractionCc, VirtualCc};
