//! Per-flow congestion-control assignment (§3.4).
//!
//! "ACEDC can assign different congestion control algorithms on a per-flow
//! basis" — e.g. WAN-bound flows get CUBIC while intra-datacenter flows
//! get DCTCP, or flows get priority weights β for QoS (Figure 13).

use std::sync::Arc;

use acdc_cc::CcKind;
use acdc_packet::FlowKey;

/// How the vSwitch picks an algorithm for a new flow.
#[derive(Clone)]
pub enum CcPolicy {
    /// Every flow gets the same algorithm (the paper's default: DCTCP).
    Uniform(CcKind),
    /// Flows whose destination is outside `dc_prefix`/8 are treated as
    /// WAN-bound and get `wan`; everything else gets `datacenter`.
    WanSplit {
        /// First octet of the datacenter prefix (e.g. `10`).
        dc_prefix: u8,
        /// Algorithm for intra-datacenter flows.
        datacenter: CcKind,
        /// Algorithm for WAN flows.
        wan: CcKind,
    },
    /// Arbitrary administrator policy.
    Custom(Arc<dyn Fn(&FlowKey) -> CcKind + Send + Sync>),
}

impl CcPolicy {
    /// The algorithm for `key`.
    pub fn assign(&self, key: &FlowKey) -> CcKind {
        match self {
            CcPolicy::Uniform(kind) => *kind,
            CcPolicy::WanSplit {
                dc_prefix,
                datacenter,
                wan,
            } => {
                if key.dst_ip[0] == *dc_prefix {
                    *datacenter
                } else {
                    *wan
                }
            }
            CcPolicy::Custom(f) => f(key),
        }
    }

    /// The paper's default: uniform DCTCP.
    pub fn dctcp() -> CcPolicy {
        CcPolicy::Uniform(CcKind::Dctcp)
    }

    /// Priority policy: β looked up by source port (used by Figure 13's
    /// experiment driver).
    pub fn priority_by_src_port(map: Arc<dyn Fn(u16) -> f64 + Send + Sync>) -> CcPolicy {
        CcPolicy::Custom(Arc::new(move |key: &FlowKey| {
            CcKind::DctcpPriority(map(key.src_port))
        }))
    }
}

impl core::fmt::Debug for CcPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CcPolicy::Uniform(k) => write!(f, "Uniform({k})"),
            CcPolicy::WanSplit {
                dc_prefix,
                datacenter,
                wan,
            } => write!(f, "WanSplit({dc_prefix}/8 → {datacenter}, wan → {wan})"),
            CcPolicy::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dst: [u8; 4], src_port: u16) -> FlowKey {
        FlowKey {
            src_ip: [10, 0, 0, 1],
            dst_ip: dst,
            src_port,
            dst_port: 80,
        }
    }

    #[test]
    fn uniform_assigns_everywhere() {
        let p = CcPolicy::dctcp();
        assert_eq!(p.assign(&key([10, 0, 0, 2], 1)), CcKind::Dctcp);
        assert_eq!(p.assign(&key([8, 8, 8, 8], 2)), CcKind::Dctcp);
    }

    #[test]
    fn wan_split_routes_by_prefix() {
        let p = CcPolicy::WanSplit {
            dc_prefix: 10,
            datacenter: CcKind::Dctcp,
            wan: CcKind::Cubic,
        };
        assert_eq!(p.assign(&key([10, 1, 2, 3], 1)), CcKind::Dctcp);
        assert_eq!(p.assign(&key([93, 184, 216, 34], 1)), CcKind::Cubic);
    }

    #[test]
    fn priority_policy_maps_beta() {
        let p = CcPolicy::priority_by_src_port(Arc::new(|port| if port == 1 { 1.0 } else { 0.25 }));
        assert_eq!(p.assign(&key([10, 0, 0, 2], 1)), CcKind::DctcpPriority(1.0));
        assert_eq!(
            p.assign(&key([10, 0, 0, 2], 9)),
            CcKind::DctcpPriority(0.25)
        );
    }
}
