//! Datapath health: the overload degradation ladder (DESIGN.md §10).
//!
//! A bounded datapath under overload must degrade, never misbehave. The
//! ladder has three rungs, ordered from most to least intervention:
//!
//! * [`HealthState::Enforcing`] — normal operation: windows rewritten,
//!   ECN owned by the vSwitch (§3.2/§3.3).
//! * [`HealthState::LogOnly`] — state still tracked and windows still
//!   computed, but nothing on the wire is rewritten (the per-datapath
//!   analogue of `AcdcConfig::log_only`, Figure 9's measurement mode).
//! * [`HealthState::PassThrough`] — packets forwarded untouched except
//!   for AC/DC metadata hygiene. Always safe: the guest's own congestion
//!   control still runs (§3.3's fail-safe argument), so the worst case is
//!   the status quo ante — unenforced TCP.
//!
//! Demotions are cheap and eager (occupancy watermark, admission
//! rejection); promotions are deliberate and only happen from the
//! maintenance tick once occupancy has receded below a recovery watermark
//! with no rejections since the last tick.

use std::sync::atomic::{AtomicU8, Ordering};

use acdc_stats::time::Nanos;
use parking_lot::Mutex;

/// Degradation rung of one datapath. `Ord` follows intervention level:
/// a transition to a *greater* state is a demotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Full enforcement: RWND rewriting, ECN ownership, policing.
    Enforcing,
    /// Track state and compute windows, but rewrite nothing.
    LogOnly,
    /// Forward untouched (metadata hygiene only).
    PassThrough,
}

impl HealthState {
    fn from_u8(v: u8) -> HealthState {
        match v {
            0 => HealthState::Enforcing,
            1 => HealthState::LogOnly,
            _ => HealthState::PassThrough,
        }
    }

    /// The rung as its stable checkpoint encoding (0/1/2, the same value
    /// the `acdc.health` gauge reports).
    pub fn rung(self) -> u8 {
        self as u8
    }

    /// Decode a rung written by [`HealthState::rung`]; values outside
    /// 0..=2 saturate to the always-safe `PassThrough`.
    pub fn from_rung(v: u8) -> HealthState {
        HealthState::from_u8(v)
    }

    /// Stable label for traces and counters.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Enforcing => "enforcing",
            HealthState::LogOnly => "log-only",
            HealthState::PassThrough => "pass-through",
        }
    }
}

/// Occupancy watermarks, as a percentage of `max_flows`. Demote-high /
/// recover-low hysteresis keeps the ladder from flapping at a boundary.
#[derive(Debug, Clone)]
pub struct Watermarks {
    /// Demote `Enforcing → LogOnly` at or above this occupancy.
    pub log_only_pct: u8,
    /// Promote `LogOnly → Enforcing` strictly below this occupancy.
    pub log_recover_pct: u8,
    /// Promote `PassThrough → LogOnly` strictly below this occupancy.
    pub pass_recover_pct: u8,
}

impl Default for Watermarks {
    fn default() -> Watermarks {
        Watermarks {
            log_only_pct: 90,
            log_recover_pct: 75,
            pass_recover_pct: 85,
        }
    }
}

/// The current rung plus a time-stamped transition trace. Reads are a
/// relaxed atomic load (per-packet fast path); writes are rare
/// (watermark crossings, admission rejects, restarts).
pub struct HealthCell {
    state: AtomicU8,
    trace: Mutex<Vec<(Nanos, HealthState)>>,
}

impl Default for HealthCell {
    fn default() -> Self {
        HealthCell::new()
    }
}

impl HealthCell {
    /// A fresh cell: `Enforcing`, empty trace.
    pub fn new() -> HealthCell {
        HealthCell {
            state: AtomicU8::new(HealthState::Enforcing as u8),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Current rung.
    pub fn get(&self) -> HealthState {
        HealthState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Move to `to` if not already there; records the transition in the
    /// trace and returns `(from, to)` when a change actually happened.
    pub fn transition(&self, now: Nanos, to: HealthState) -> Option<(HealthState, HealthState)> {
        let from = HealthState::from_u8(self.state.swap(to as u8, Ordering::Relaxed));
        if from == to {
            return None;
        }
        self.trace.lock().push((now, to));
        Some((from, to))
    }

    /// Move to `to` unconditionally, always appending a trace entry even
    /// when the rung does not change — marks a restart epoch.
    pub fn force(&self, now: Nanos, to: HealthState) {
        self.state.store(to as u8, Ordering::Relaxed);
        self.trace.lock().push((now, to));
    }

    /// Snapshot of the transition trace.
    pub fn trace(&self) -> Vec<(Nanos, HealthState)> {
        self.trace.lock().clone()
    }

    /// Restore a checkpointed rung and transition trace verbatim —
    /// unlike [`HealthCell::force`], no new trace mark is appended, so a
    /// restored cell is indistinguishable from the checkpointed one.
    pub fn restore(&self, state: HealthState, trace: Vec<(Nanos, HealthState)>) {
        self.state.store(state as u8, Ordering::Relaxed);
        *self.trace.lock() = trace;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_orders_by_intervention() {
        assert!(HealthState::Enforcing < HealthState::LogOnly);
        assert!(HealthState::LogOnly < HealthState::PassThrough);
    }

    #[test]
    fn transition_records_changes_only() {
        let c = HealthCell::new();
        assert_eq!(c.get(), HealthState::Enforcing);
        assert_eq!(c.transition(5, HealthState::Enforcing), None);
        assert_eq!(
            c.transition(10, HealthState::LogOnly),
            Some((HealthState::Enforcing, HealthState::LogOnly))
        );
        assert_eq!(
            c.transition(20, HealthState::Enforcing),
            Some((HealthState::LogOnly, HealthState::Enforcing))
        );
        assert_eq!(
            c.trace(),
            vec![(10, HealthState::LogOnly), (20, HealthState::Enforcing)]
        );
    }

    #[test]
    fn force_always_leaves_a_trace_mark() {
        let c = HealthCell::new();
        c.force(7, HealthState::Enforcing); // restart epoch, no rung change
        assert_eq!(c.get(), HealthState::Enforcing);
        assert_eq!(c.trace(), vec![(7, HealthState::Enforcing)]);
    }
}
