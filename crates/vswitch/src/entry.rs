//! Per-flow connection-tracking state (§3.1).
//!
//! One entry exists per *data direction* of a connection — the paper keeps
//! "two flow entries for each connection" (§4). The same struct carries
//! the sender-side role (congestion state, used at the host of the data
//! sender) and the receiver-side role (ECN byte accounting, used at the
//! host of the data receiver); each host only exercises its own half.

use acdc_cc::{CcConfig, CcKind, Clamped};
use acdc_packet::SeqNumber;
use acdc_stats::time::Nanos;

use crate::rwnd::RwndRewriter;
use crate::vcc::{EcnFractionCc, VirtualCc};

/// Ceiling on the enforced window. The vSwitch CC cannot tell when a
/// guest is application- or NIC-limited (it sees only ACK progress), so
/// on an uncongested path its window would otherwise grow without bound
/// — wasting no bandwidth, but eventually wrapping 32-bit sequence
/// arithmetic in the policer. 32 MB is ≳ 25 ms of 10 GbE, far beyond any
/// datacenter BDP.
pub const MAX_ENFORCED_WINDOW: u64 = 32 << 20;

/// Plain-data image of one [`FlowEntry`] for checkpointing (DESIGN.md
/// §15). Everything that evolves at runtime is here; construction
/// parameters (the assigned [`CcKind`], the [`CcConfig`], the window
/// clamp) are reproduced by the restoring datapath's own policy, and the
/// `cc_name` field lets a restore verify the reproduction matches.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEntryState {
    /// First unacknowledged wire sequence number.
    pub snd_una: SeqNumber,
    /// Highest wire sequence number sent (+1).
    pub snd_nxt: SeqNumber,
    /// Sequence state initialized?
    pub seq_valid: bool,
    /// Duplicate-ACK counter.
    pub dupacks: u32,
    /// `VirtualCc::name()` of the checkpointed algorithm, for verifying
    /// the restoring policy assigns the same one.
    pub cc_name: String,
    /// The algorithm's dynamic state (`VirtualCc::state_words`).
    pub cc_words: Vec<u64>,
    /// RWND-rewrite state: `(wscale, learned, computed target)` from
    /// [`RwndRewriter::checkpoint_state`].
    pub rwnd: (u8, bool, u64),
    /// Guest negotiated ECN in its SYN.
    pub vm_ecn: bool,
    /// Outstanding RTT probe `(wire seq, send time)`.
    pub rtt_probe: Option<(SeqNumber, Nanos)>,
    /// Smoothed RTT estimate.
    pub srtt: Option<Nanos>,
    /// Time of the last ACK-clock activity.
    pub last_ack_activity: Nanos,
    /// Unconsumed feedback: total bytes.
    pub fb_total: u64,
    /// Unconsumed feedback: marked bytes.
    pub fb_marked: u64,
    /// Packets dropped from this flow by the policer.
    pub policed: u64,
    /// Last published DCTCP alpha (1e-6 units).
    pub last_alpha_micros: Option<u64>,
    /// Receiver role: bytes since last feedback.
    pub rx_total: u64,
    /// Receiver role: CE-marked bytes since last feedback.
    pub rx_marked: u64,
    /// Receiver role: lifetime bytes.
    pub rx_total_lifetime: u64,
    /// Receiver role: lifetime CE-marked bytes.
    pub rx_marked_lifetime: u64,
    /// FIN/RST seen, awaiting GC.
    pub closing: bool,
    /// Last time any packet touched this entry.
    pub last_activity: Nanos,
}

/// Connection-tracking state for one flow direction.
pub struct FlowEntry {
    // ------------------------------------------------------------------
    // Sender role (lives at the host of the data sender)
    // ------------------------------------------------------------------
    /// First unacknowledged wire sequence number.
    pub snd_una: SeqNumber,
    /// Highest wire sequence number sent (+1, i.e. "next expected send").
    pub snd_nxt: SeqNumber,
    /// Sequence state initialized (first SYN/data seen)?
    pub seq_valid: bool,
    /// Duplicate-ACK counter.
    pub dupacks: u32,
    /// The enforced congestion-control algorithm, behind the
    /// [`VirtualCc`] seam (the sender module feeds it [`AckSignals`]
    /// bundles and enforces whatever window it reports).
    ///
    /// [`AckSignals`]: crate::vcc::AckSignals
    pub cc: Box<dyn VirtualCc>,
    /// The RWND-rewrite component (window scale + enforcement target,
    /// §3.3). Its fields are private — mutation goes through its API, the
    /// write-scope contract `scopes.toml` declares for
    /// `vswitch.rwnd-rewrite`.
    pub rwnd: RwndRewriter,
    /// The guest's own stack negotiated ECN (from its SYN); drives the
    /// per-packet reserved-bit marker of §3.2.
    pub vm_ecn: bool,
    /// RTT probe: (wire seq whose ACK completes the sample, send time).
    pub rtt_probe: Option<(SeqNumber, Nanos)>,
    /// Smoothed RTT estimate for the inactivity (timeout) heuristic.
    pub srtt: Option<Nanos>,
    /// Time of the last ACK-clock activity (for inferring timeouts).
    pub last_ack_activity: Nanos,
    /// Accumulated feedback not yet consumed: total/marked bytes reported
    /// by PACK/FACK options (64-bit accumulators behind u32 wire deltas).
    pub fb_total: u64,
    /// Marked portion of `fb_total`.
    pub fb_marked: u64,
    /// Packets dropped from this flow by the policer.
    pub policed: u64,
    /// Last DCTCP `alpha` (in 1e-6 units) published as an `alpha-update`
    /// telemetry event; events fire only when the estimate moves.
    pub last_alpha_micros: Option<u64>,

    // ------------------------------------------------------------------
    // Receiver role (lives at the host of the data receiver)
    // ------------------------------------------------------------------
    /// Bytes received for this flow since the last feedback emitted.
    pub rx_total: u64,
    /// CE-marked bytes received since the last feedback emitted.
    pub rx_marked: u64,
    /// Lifetime bytes received (never reset; observability).
    pub rx_total_lifetime: u64,
    /// Lifetime CE-marked bytes received (never reset; observability).
    pub rx_marked_lifetime: u64,

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------
    /// Entry saw a FIN/RST and awaits garbage collection.
    pub closing: bool,
    /// Last time any packet touched this entry.
    pub last_activity: Nanos,
}

impl FlowEntry {
    /// Fresh entry for a flow assigned algorithm `kind`.
    pub fn new(kind: CcKind, cc_cfg: CcConfig, now: Nanos) -> FlowEntry {
        FlowEntry {
            snd_una: SeqNumber::ZERO,
            snd_nxt: SeqNumber::ZERO,
            seq_valid: false,
            dupacks: 0,
            cc: Box::new(EcnFractionCc::new(Box::new(Clamped::new(
                kind.build(cc_cfg),
                MAX_ENFORCED_WINDOW,
            )))),
            rwnd: RwndRewriter::new(),
            vm_ecn: false,
            rtt_probe: None,
            srtt: None,
            last_ack_activity: now,
            fb_total: 0,
            fb_marked: 0,
            policed: 0,
            last_alpha_micros: None,
            rx_total: 0,
            rx_marked: 0,
            rx_total_lifetime: 0,
            rx_marked_lifetime: 0,
            closing: false,
            last_activity: now,
        }
    }

    /// Take the receiver-role feedback counters as u32 wire deltas,
    /// resetting them (they are deltas "since the last feedback").
    pub fn take_feedback(&mut self) -> (u32, u32) {
        let total = self.rx_total.min(u64::from(u32::MAX)) as u32;
        let marked = self.rx_marked.min(u64::from(total)) as u32;
        self.rx_total = 0;
        self.rx_marked = 0;
        (total, marked)
    }

    /// Record an RTT sample into the entry's smoothed estimate.
    pub fn record_rtt(&mut self, sample: Nanos) {
        self.srtt = Some(match self.srtt {
            None => sample,
            Some(s) => (7 * s + sample) / 8,
        });
    }

    /// The inactivity threshold standing in for the guest's RTO: the
    /// vSwitch cannot see the guest timer, so it infers a timeout when
    /// `snd_una < snd_nxt` and nothing has moved for a few RTTs (§3.1).
    pub fn inactivity_threshold(&self, floor: Nanos) -> Nanos {
        match self.srtt {
            Some(s) => (4 * s).max(floor),
            None => floor,
        }
    }

    /// Capture this entry's dynamic state for a checkpoint.
    pub fn checkpoint_state(&self) -> FlowEntryState {
        FlowEntryState {
            snd_una: self.snd_una,
            snd_nxt: self.snd_nxt,
            seq_valid: self.seq_valid,
            dupacks: self.dupacks,
            cc_name: self.cc.name().to_string(),
            cc_words: self.cc.state_words(),
            rwnd: self.rwnd.checkpoint_state(),
            vm_ecn: self.vm_ecn,
            rtt_probe: self.rtt_probe,
            srtt: self.srtt,
            last_ack_activity: self.last_ack_activity,
            fb_total: self.fb_total,
            fb_marked: self.fb_marked,
            policed: self.policed,
            last_alpha_micros: self.last_alpha_micros,
            rx_total: self.rx_total,
            rx_marked: self.rx_marked,
            rx_total_lifetime: self.rx_total_lifetime,
            rx_marked_lifetime: self.rx_marked_lifetime,
            closing: self.closing,
            last_activity: self.last_activity,
        }
    }

    /// Apply a checkpointed state to this freshly constructed entry.
    /// Returns `false` — leaving the entry in an unspecified but valid
    /// state — when the checkpointed algorithm does not match the one
    /// this entry was constructed with (name or state-word layout), which
    /// indicates a policy/config mismatch between checkpoint and restore.
    pub fn restore_state(&mut self, s: &FlowEntryState) -> bool {
        if self.cc.name() != s.cc_name || !self.cc.load_state_words(&s.cc_words) {
            return false;
        }
        self.snd_una = s.snd_una;
        self.snd_nxt = s.snd_nxt;
        self.seq_valid = s.seq_valid;
        self.dupacks = s.dupacks;
        let (wscale, learned, target) = s.rwnd;
        self.rwnd.restore_state(wscale, learned, target);
        self.vm_ecn = s.vm_ecn;
        self.rtt_probe = s.rtt_probe;
        self.srtt = s.srtt;
        self.last_ack_activity = s.last_ack_activity;
        self.fb_total = s.fb_total;
        self.fb_marked = s.fb_marked;
        self.policed = s.policed;
        self.last_alpha_micros = s.last_alpha_micros;
        self.rx_total = s.rx_total;
        self.rx_marked = s.rx_marked;
        self.rx_total_lifetime = s.rx_total_lifetime;
        self.rx_marked_lifetime = s.rx_marked_lifetime;
        self.closing = s.closing;
        self.last_activity = s.last_activity;
        true
    }

    /// Bytes currently unacknowledged (in flight) per the tracked state.
    pub fn in_flight(&self) -> u64 {
        if !self.seq_valid {
            return 0;
        }
        let d = self.snd_nxt - self.snd_una;
        if d > 0 {
            d as u64
        } else {
            0
        }
    }
}

impl core::fmt::Debug for FlowEntry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FlowEntry")
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("cwnd", &self.cc.cwnd())
            .field("cc", &self.cc.name())
            .field("dupacks", &self.dupacks)
            .field("rx_total", &self.rx_total)
            .field("rx_marked", &self.rx_marked)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> FlowEntry {
        FlowEntry::new(CcKind::Dctcp, CcConfig::vswitch(1448), 0)
    }

    #[test]
    fn feedback_counters_reset_on_take() {
        let mut e = entry();
        e.rx_total = 10_000;
        e.rx_marked = 2_500;
        assert_eq!(e.take_feedback(), (10_000, 2_500));
        assert_eq!(e.take_feedback(), (0, 0));
    }

    #[test]
    fn feedback_clamps_marked_to_total() {
        let mut e = entry();
        e.rx_total = 100;
        e.rx_marked = 200; // cannot happen, but must not produce nonsense
        let (t, m) = e.take_feedback();
        assert!(m <= t);
    }

    #[test]
    fn in_flight_tracks_seq_distance() {
        let mut e = entry();
        assert_eq!(e.in_flight(), 0);
        e.seq_valid = true;
        e.snd_una = SeqNumber(1000);
        e.snd_nxt = SeqNumber(6000);
        assert_eq!(e.in_flight(), 5000);
        // Wraparound-safe.
        e.snd_una = SeqNumber(u32::MAX - 100);
        e.snd_nxt = SeqNumber(100);
        assert_eq!(e.in_flight(), 201);
    }

    #[test]
    fn srtt_smooths() {
        let mut e = entry();
        e.record_rtt(800);
        assert_eq!(e.srtt, Some(800));
        e.record_rtt(1600);
        assert_eq!(e.srtt, Some(900));
    }

    #[test]
    fn inactivity_threshold_uses_floor() {
        let mut e = entry();
        assert_eq!(e.inactivity_threshold(10_000_000), 10_000_000);
        e.srtt = Some(5_000_000);
        assert_eq!(e.inactivity_threshold(10_000_000), 20_000_000);
    }
}
