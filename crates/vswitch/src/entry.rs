//! Per-flow connection-tracking state (§3.1).
//!
//! One entry exists per *data direction* of a connection — the paper keeps
//! "two flow entries for each connection" (§4). The same struct carries
//! the sender-side role (congestion state, used at the host of the data
//! sender) and the receiver-side role (ECN byte accounting, used at the
//! host of the data receiver); each host only exercises its own half.

use acdc_cc::{CcConfig, CcKind, Clamped};
use acdc_packet::SeqNumber;
use acdc_stats::time::Nanos;

use crate::rwnd::RwndRewriter;
use crate::vcc::{EcnFractionCc, VirtualCc};

/// Ceiling on the enforced window. The vSwitch CC cannot tell when a
/// guest is application- or NIC-limited (it sees only ACK progress), so
/// on an uncongested path its window would otherwise grow without bound
/// — wasting no bandwidth, but eventually wrapping 32-bit sequence
/// arithmetic in the policer. 32 MB is ≳ 25 ms of 10 GbE, far beyond any
/// datacenter BDP.
pub const MAX_ENFORCED_WINDOW: u64 = 32 << 20;

/// Connection-tracking state for one flow direction.
pub struct FlowEntry {
    // ------------------------------------------------------------------
    // Sender role (lives at the host of the data sender)
    // ------------------------------------------------------------------
    /// First unacknowledged wire sequence number.
    pub snd_una: SeqNumber,
    /// Highest wire sequence number sent (+1, i.e. "next expected send").
    pub snd_nxt: SeqNumber,
    /// Sequence state initialized (first SYN/data seen)?
    pub seq_valid: bool,
    /// Duplicate-ACK counter.
    pub dupacks: u32,
    /// The enforced congestion-control algorithm, behind the
    /// [`VirtualCc`] seam (the sender module feeds it [`AckSignals`]
    /// bundles and enforces whatever window it reports).
    ///
    /// [`AckSignals`]: crate::vcc::AckSignals
    pub cc: Box<dyn VirtualCc>,
    /// The RWND-rewrite component (window scale + enforcement target,
    /// §3.3). Its fields are private — mutation goes through its API, the
    /// write-scope contract `scopes.toml` declares for
    /// `vswitch.rwnd-rewrite`.
    pub rwnd: RwndRewriter,
    /// The guest's own stack negotiated ECN (from its SYN); drives the
    /// per-packet reserved-bit marker of §3.2.
    pub vm_ecn: bool,
    /// RTT probe: (wire seq whose ACK completes the sample, send time).
    pub rtt_probe: Option<(SeqNumber, Nanos)>,
    /// Smoothed RTT estimate for the inactivity (timeout) heuristic.
    pub srtt: Option<Nanos>,
    /// Time of the last ACK-clock activity (for inferring timeouts).
    pub last_ack_activity: Nanos,
    /// Accumulated feedback not yet consumed: total/marked bytes reported
    /// by PACK/FACK options (64-bit accumulators behind u32 wire deltas).
    pub fb_total: u64,
    /// Marked portion of `fb_total`.
    pub fb_marked: u64,
    /// Packets dropped from this flow by the policer.
    pub policed: u64,
    /// Last DCTCP `alpha` (in 1e-6 units) published as an `alpha-update`
    /// telemetry event; events fire only when the estimate moves.
    pub last_alpha_micros: Option<u64>,

    // ------------------------------------------------------------------
    // Receiver role (lives at the host of the data receiver)
    // ------------------------------------------------------------------
    /// Bytes received for this flow since the last feedback emitted.
    pub rx_total: u64,
    /// CE-marked bytes received since the last feedback emitted.
    pub rx_marked: u64,
    /// Lifetime bytes received (never reset; observability).
    pub rx_total_lifetime: u64,
    /// Lifetime CE-marked bytes received (never reset; observability).
    pub rx_marked_lifetime: u64,

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------
    /// Entry saw a FIN/RST and awaits garbage collection.
    pub closing: bool,
    /// Last time any packet touched this entry.
    pub last_activity: Nanos,
}

impl FlowEntry {
    /// Fresh entry for a flow assigned algorithm `kind`.
    pub fn new(kind: CcKind, cc_cfg: CcConfig, now: Nanos) -> FlowEntry {
        FlowEntry {
            snd_una: SeqNumber::ZERO,
            snd_nxt: SeqNumber::ZERO,
            seq_valid: false,
            dupacks: 0,
            cc: Box::new(EcnFractionCc::new(Box::new(Clamped::new(
                kind.build(cc_cfg),
                MAX_ENFORCED_WINDOW,
            )))),
            rwnd: RwndRewriter::new(),
            vm_ecn: false,
            rtt_probe: None,
            srtt: None,
            last_ack_activity: now,
            fb_total: 0,
            fb_marked: 0,
            policed: 0,
            last_alpha_micros: None,
            rx_total: 0,
            rx_marked: 0,
            rx_total_lifetime: 0,
            rx_marked_lifetime: 0,
            closing: false,
            last_activity: now,
        }
    }

    /// Take the receiver-role feedback counters as u32 wire deltas,
    /// resetting them (they are deltas "since the last feedback").
    pub fn take_feedback(&mut self) -> (u32, u32) {
        let total = self.rx_total.min(u64::from(u32::MAX)) as u32;
        let marked = self.rx_marked.min(u64::from(total)) as u32;
        self.rx_total = 0;
        self.rx_marked = 0;
        (total, marked)
    }

    /// Record an RTT sample into the entry's smoothed estimate.
    pub fn record_rtt(&mut self, sample: Nanos) {
        self.srtt = Some(match self.srtt {
            None => sample,
            Some(s) => (7 * s + sample) / 8,
        });
    }

    /// The inactivity threshold standing in for the guest's RTO: the
    /// vSwitch cannot see the guest timer, so it infers a timeout when
    /// `snd_una < snd_nxt` and nothing has moved for a few RTTs (§3.1).
    pub fn inactivity_threshold(&self, floor: Nanos) -> Nanos {
        match self.srtt {
            Some(s) => (4 * s).max(floor),
            None => floor,
        }
    }

    /// Bytes currently unacknowledged (in flight) per the tracked state.
    pub fn in_flight(&self) -> u64 {
        if !self.seq_valid {
            return 0;
        }
        let d = self.snd_nxt - self.snd_una;
        if d > 0 {
            d as u64
        } else {
            0
        }
    }
}

impl core::fmt::Debug for FlowEntry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FlowEntry")
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("cwnd", &self.cc.cwnd())
            .field("cc", &self.cc.name())
            .field("dupacks", &self.dupacks)
            .field("rx_total", &self.rx_total)
            .field("rx_marked", &self.rx_marked)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> FlowEntry {
        FlowEntry::new(CcKind::Dctcp, CcConfig::vswitch(1448), 0)
    }

    #[test]
    fn feedback_counters_reset_on_take() {
        let mut e = entry();
        e.rx_total = 10_000;
        e.rx_marked = 2_500;
        assert_eq!(e.take_feedback(), (10_000, 2_500));
        assert_eq!(e.take_feedback(), (0, 0));
    }

    #[test]
    fn feedback_clamps_marked_to_total() {
        let mut e = entry();
        e.rx_total = 100;
        e.rx_marked = 200; // cannot happen, but must not produce nonsense
        let (t, m) = e.take_feedback();
        assert!(m <= t);
    }

    #[test]
    fn in_flight_tracks_seq_distance() {
        let mut e = entry();
        assert_eq!(e.in_flight(), 0);
        e.seq_valid = true;
        e.snd_una = SeqNumber(1000);
        e.snd_nxt = SeqNumber(6000);
        assert_eq!(e.in_flight(), 5000);
        // Wraparound-safe.
        e.snd_una = SeqNumber(u32::MAX - 100);
        e.snd_nxt = SeqNumber(100);
        assert_eq!(e.in_flight(), 201);
    }

    #[test]
    fn srtt_smooths() {
        let mut e = entry();
        e.record_rtt(800);
        assert_eq!(e.srtt, Some(800));
        e.record_rtt(1600);
        assert_eq!(e.srtt, Some(900));
    }

    #[test]
    fn inactivity_threshold_uses_floor() {
        let mut e = entry();
        assert_eq!(e.inactivity_threshold(10_000_000), 10_000_000);
        e.srtt = Some(5_000_000);
        assert_eq!(e.inactivity_threshold(10_000_000), 20_000_000);
    }
}
