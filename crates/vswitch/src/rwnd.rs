//! RWND-rewrite state: the §3.3 enforcement component.
//!
//! acdc-scope: vswitch.rwnd-rewrite
//!
//! This is the pilot of the write-scope decomposition (`scopes.toml`,
//! rule W001): the window-scale knowledge and the computed enforcement
//! target used to rewrite ACK receive windows live behind this struct's
//! private fields, so the *only* code that can mutate them is this
//! module. The datapath asks for a decision ([`RwndRewriter::action`])
//! and applies it to the segment; it can no longer scribble on the scale
//! state directly — which is exactly the property the parallel-datapath
//! workers need.

use acdc_stats::time::Nanos;

/// What to do with an arriving ACK's advertised receive window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RwndAction {
    /// Overwrite the raw window field with this value (the enforced
    /// window is smaller than what the guest advertised).
    Rewrite(u16),
    /// The guest's own window is already the binding constraint.
    KeepGuest,
    /// The window scale was never learned from a handshake; rewriting
    /// would mis-scale by up to 2^14, so the flow stays log-only.
    ScaleUnlearned,
}

/// Per-flow RWND-rewrite state (owned component; see module docs).
#[derive(Debug)]
pub struct RwndRewriter {
    /// Window-scale shift used to interpret/rewrite RWND in the ACKs
    /// arriving for this flow (advertised by the data *receiver* in its
    /// SYN; captured by monitoring the handshake, §3.3).
    ack_wscale: u8,
    /// Was `ack_wscale` actually learned from an observed handshake? An
    /// entry adopted mid-stream (vSwitch restart, VM migration) never saw
    /// the SYN, so rewriting RWND with its default shift of 0 would
    /// silently mis-scale the window; such flows stay log-only until a
    /// handshake teaches the scale.
    wscale_learned: bool,
    /// Most recently computed enforcement window, bytes (log-only mode
    /// records it here without rewriting; Figure 9).
    computed_rwnd: u64,
    /// Optional `(time, computed window)` trace for Figures 9/10.
    window_trace: Option<Vec<(Nanos, u64)>>,
}

impl RwndRewriter {
    /// Fresh state: scale unlearned, target zero, tracing off.
    pub fn new() -> RwndRewriter {
        RwndRewriter {
            ack_wscale: 0,
            wscale_learned: false,
            computed_rwnd: 0,
            window_trace: None,
        }
    }

    /// Record the window scale advertised in an observed handshake. A SYN
    /// without the option means "scale 0" — still a *learned* fact,
    /// unlike the default an adopted entry gets.
    pub fn learn(&mut self, wscale: u8) {
        self.ack_wscale = wscale;
        self.wscale_learned = true;
    }

    /// Has a handshake taught this flow's window scale?
    pub fn learned(&self) -> bool {
        self.wscale_learned
    }

    /// The learned window-scale shift (0 until [`Self::learn`]).
    pub fn wscale(&self) -> u8 {
        self.ack_wscale
    }

    /// Record the CC's computed enforcement window, appending to the
    /// Figure 9/10 trace when `trace` is set.
    pub fn set_target(&mut self, now: Nanos, cwnd: u64, trace: bool) {
        self.computed_rwnd = cwnd;
        if trace {
            self.window_trace
                .get_or_insert_with(Vec::new)
                .push((now, cwnd));
        }
    }

    /// The most recently computed enforcement window, bytes.
    pub fn target(&self) -> u64 {
        self.computed_rwnd
    }

    /// The `(time, computed window)` trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&[(Nanos, u64)]> {
        self.window_trace.as_deref()
    }

    /// Checkpoint view: `(wscale, learned, computed target)`. The
    /// Figure 9/10 window trace is diagnostic state and deliberately not
    /// part of the checkpoint.
    pub fn checkpoint_state(&self) -> (u8, bool, u64) {
        (self.ack_wscale, self.wscale_learned, self.computed_rwnd)
    }

    /// Restore the state captured by [`Self::checkpoint_state`]. This
    /// sets the fields verbatim and is **not** [`Self::learn`]: a flow
    /// checkpointed with `learned == false` is restored with
    /// `learned == false`, so it keeps the no-guess log-only semantics of
    /// mid-stream adoption until a real handshake teaches its scale.
    pub fn restore_state(&mut self, wscale: u8, learned: bool, target: u64) {
        self.ack_wscale = wscale;
        self.wscale_learned = learned;
        self.computed_rwnd = target;
        self.window_trace = None;
    }

    /// `window_bytes` expressed in this flow's raw (scaled) wire units,
    /// floored at 1 so a rewrite never silences the flow entirely.
    pub fn raw_window(&self, window_bytes: u64) -> u16 {
        acdc_packet::scale_rwnd_nonzero(window_bytes, self.ack_wscale)
    }

    /// Enforcement decision for an ACK advertising `advertised_raw`:
    /// overwrite RWND with the computed target only when that is
    /// *smaller* than what the guest advertised (§3.3), and never with an
    /// unlearned scale.
    pub fn action(&self, advertised_raw: u16) -> RwndAction {
        if !self.wscale_learned {
            return RwndAction::ScaleUnlearned;
        }
        let raw_target = self.raw_window(self.computed_rwnd);
        if raw_target < advertised_raw {
            RwndAction::Rewrite(raw_target)
        } else {
            RwndAction::KeepGuest
        }
    }
}

impl Default for RwndRewriter {
    fn default() -> Self {
        RwndRewriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlearned_scale_never_rewrites() {
        let mut r = RwndRewriter::new();
        r.set_target(0, 1, false);
        assert_eq!(r.action(u16::MAX), RwndAction::ScaleUnlearned);
        assert!(!r.learned());
    }

    #[test]
    fn learn_records_scale_even_when_zero() {
        let mut r = RwndRewriter::new();
        r.learn(0);
        assert!(r.learned());
        assert_eq!(r.wscale(), 0);
    }

    #[test]
    fn rewrite_only_when_target_below_advertised() {
        let mut r = RwndRewriter::new();
        r.learn(2);
        r.set_target(0, 4000, false);
        // 4000 >> 2 = 1000 raw units.
        assert_eq!(r.action(2000), RwndAction::Rewrite(1000));
        assert_eq!(r.action(1000), RwndAction::KeepGuest);
        assert_eq!(r.action(500), RwndAction::KeepGuest);
    }

    #[test]
    fn raw_window_floors_at_one() {
        let mut r = RwndRewriter::new();
        r.learn(10);
        assert_eq!(r.raw_window(1), 1);
    }

    #[test]
    fn trace_is_opt_in_and_appends() {
        let mut r = RwndRewriter::new();
        r.set_target(10, 100, false);
        assert!(r.trace().is_none());
        r.set_target(20, 200, true);
        r.set_target(30, 300, true);
        assert_eq!(r.trace().unwrap(), &[(20, 200), (30, 300)]);
        assert_eq!(r.target(), 300);
    }
}
