//! The AC/DC datapath: per-packet processing at the vSwitch.
//!
//! The host wires it between the guest stack and the NIC:
//!
//! ```text
//!   VM egress  ──►  AcdcDatapath::egress   ──►  NIC / network
//!   VM ingress ◄──  AcdcDatapath::ingress  ◄──  NIC / network
//! ```
//!
//! Both directions of every connection pass through, so the same object
//! plays the paper's *sender module* (for flows this host originates) and
//! *receiver module* (for flows it terminates).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use acdc_cc::CcConfig;
use acdc_packet::{Ecn, Ipv4Repr, PackOption, PacketMeta, PoolHandle, Segment, TcpFlags, TcpRepr};
use acdc_stats::time::{Nanos, MILLISECOND, SECOND};
use acdc_telemetry::{Counter, EventKind, Gauge, MetricsRegistry, Telemetry, NO_FLOW};

use crate::entry::FlowEntry;
use crate::health::{HealthCell, HealthState, Watermarks};
use crate::policy::CcPolicy;
use crate::rwnd::RwndAction;
use crate::table::{Admission, AdmissionPolicy, FlowTable};
use crate::vcc::AckSignals;

/// Datapath configuration.
#[derive(Debug, Clone)]
pub struct AcdcConfig {
    /// Master switch: `false` makes both directions pass packets through
    /// untouched (the plain-OVS baseline).
    pub enabled: bool,
    /// MTU in bytes: a PACK that would push a packet past this travels in
    /// a dedicated FACK instead (§3.2).
    pub mtu: usize,
    /// Segment size used to size congestion windows.
    pub mss: u32,
    /// Per-flow congestion-control assignment.
    pub policy: CcPolicy,
    /// Policing (§3.3): drop egress data beyond
    /// `snd_una + cwnd + slack` when set. `None` disables the policer.
    pub police_slack_bytes: Option<u64>,
    /// Floor for the inactivity (inferred-timeout) threshold; the paper's
    /// system settings use RTOmin = 10 ms.
    pub inactivity_floor: Nanos,
    /// Compute windows but do not rewrite them (Figure 9's measurement
    /// mode: RWND is logged and compared against the guest's CWND).
    pub log_only: bool,
    /// Record a `(time, window)` trace in each flow entry.
    pub trace_windows: bool,
    /// Administrative upper bound on the enforced window in bytes — the
    /// §3.4 per-flow bandwidth cap ("bounding RWND", Figure 6b).
    pub max_rwnd_bytes: Option<u64>,
    /// Override the floor of the enforced window (bytes). Default is the
    /// byte-granular sub-segment floor that gives AC/DC its incast edge
    /// over DCTCP's 2-packet minimum (Figure 19); the ablation harness
    /// sets `2 × MSS` here to quantify that choice.
    pub min_window_bytes: Option<u64>,
    /// Ablation: never emit dedicated FACK packets — feedback that cannot
    /// piggyback is dropped. Quantifies what the FACK mechanism buys on
    /// bidirectional traffic (§3.2).
    pub disable_fack: bool,
    /// Hard cap on tracked flow entries (`None` = unbounded). The paper
    /// sizes per-flow state for tens of thousands of connections (§4);
    /// a bounded table makes exhaustion an explicit, tested regime.
    pub max_flows: Option<usize>,
    /// What to do when a new flow arrives with the table at `max_flows`.
    pub admission: AdmissionPolicy,
    /// Idle timeout for the periodic flow-table garbage collection driven
    /// from the host's maintenance tick.
    pub gc_idle_timeout: Nanos,
    /// Occupancy watermarks driving the health degradation ladder
    /// (meaningful only with `max_flows` set).
    pub watermarks: Watermarks,
}

impl AcdcConfig {
    /// The paper's deployment defaults: AC/DC on, DCTCP in the vSwitch.
    pub fn dctcp(mtu: usize) -> AcdcConfig {
        AcdcConfig {
            enabled: true,
            mtu,
            mss: (mtu - 40) as u32,
            policy: CcPolicy::dctcp(),
            police_slack_bytes: None,
            inactivity_floor: 10 * MILLISECOND,
            log_only: false,
            trace_windows: false,
            max_rwnd_bytes: None,
            min_window_bytes: None,
            disable_fack: false,
            max_flows: None,
            admission: AdmissionPolicy::EvictOldestIdle,
            gc_idle_timeout: 30 * SECOND,
            watermarks: Watermarks::default(),
        }
    }

    /// Baseline: plain OVS (datapath disabled).
    pub fn disabled(mtu: usize) -> AcdcConfig {
        AcdcConfig {
            enabled: false,
            ..AcdcConfig::dctcp(mtu)
        }
    }
}

/// Datapath decision for one packet.
#[derive(Debug)]
pub enum Verdict {
    /// Forward the (possibly rewritten) packet.
    Forward(Segment),
    /// Forward the packet and also emit a generated FACK.
    ForwardWithExtra(Segment, Segment),
    /// Consume the packet.
    Drop(DropReason),
}

impl Verdict {
    /// The forwarded packet, if any (test helper).
    pub fn forwarded(self) -> Option<Segment> {
        match self {
            Verdict::Forward(s) | Verdict::ForwardWithExtra(s, _) => Some(s),
            Verdict::Drop(_) => None,
        }
    }
}

/// Why a packet was consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The policer caught a flow exceeding its enforced window (§3.3).
    Policed,
    /// A FACK reached the sender module and was absorbed after its
    /// feedback was logged (§3.2).
    FackConsumed,
    /// The headers failed the single fallible parse; wire input never
    /// panics the datapath (it is dropped and counted instead).
    Malformed,
}

/// Datapath event counters. Every field is a [`Counter`] handle into the
/// datapath's [`MetricsRegistry`] (registered under `acdc.<name>`), so
/// the same cells are readable through `snapshot_all()`; the handles
/// deref to `AtomicU64` (the table is shared across threads in the CPU
/// benchmarks), keeping pre-registry call sites source-compatible.
#[derive(Debug)]
pub struct AcdcCounters {
    /// PACK options piggy-backed onto ACKs.
    pub packs_sent: Counter,
    /// Dedicated FACK packets generated.
    pub facks_sent: Counter,
    /// PACK options consumed and stripped at the sender module.
    pub packs_received: Counter,
    /// Receive windows rewritten on ACKs.
    pub rwnd_rewrites: Counter,
    /// Packets dropped by the policer.
    pub policed_drops: Counter,
    /// Timeouts inferred from inactivity.
    pub inferred_timeouts: Counter,
    /// Fast retransmits inferred from duplicate ACKs.
    pub inferred_fast_rtx: Counter,
    /// Feedback lost because FACKs were disabled (ablation only).
    pub feedback_dropped: Counter,
    /// Non-TCP (UDP) packets forwarded untouched.
    pub non_tcp_passthrough: Counter,
    /// Malformed frames dropped by the fallible parse.
    pub malformed_drops: Counter,
    /// Entries collected by the periodic idle/closed garbage collection.
    pub gc_evictions: Counter,
    /// Entries evicted to admit new flows at capacity (evict-oldest-idle).
    pub capacity_evictions: Counter,
    /// New flows refused at the capacity gate (reject-new, or eviction
    /// found no victim); their packets are forwarded untouched.
    pub admission_rejects: Counter,
    /// Packets forwarded untouched because the datapath was in the
    /// `PassThrough` health state.
    pub overload_passthrough: Counter,
    /// RWND rewrites skipped because the flow's window scale was never
    /// learned from a handshake (mid-stream adoption stays log-only).
    pub unscaled_rwnd_skips: Counter,
    /// Health-ladder demotions (toward less intervention).
    pub health_demotions: Counter,
    /// Health-ladder promotions (recovery toward enforcement).
    pub health_promotions: Counter,
    /// Datapath restarts (`AcdcDatapath::reset`).
    pub datapath_resets: Counter,
}

impl AcdcCounters {
    /// Register every counter in `reg` under the `acdc.` prefix.
    fn register(reg: &MetricsRegistry) -> AcdcCounters {
        let c = |name: &str| reg.counter(format!("acdc.{name}"));
        AcdcCounters {
            packs_sent: c("packs_sent"),
            facks_sent: c("facks_sent"),
            packs_received: c("packs_received"),
            rwnd_rewrites: c("rwnd_rewrites"),
            policed_drops: c("policed_drops"),
            inferred_timeouts: c("inferred_timeouts"),
            inferred_fast_rtx: c("inferred_fast_rtx"),
            feedback_dropped: c("feedback_dropped"),
            non_tcp_passthrough: c("non_tcp_passthrough"),
            malformed_drops: c("malformed_drops"),
            gc_evictions: c("gc_evictions"),
            capacity_evictions: c("capacity_evictions"),
            admission_rejects: c("admission_rejects"),
            overload_passthrough: c("overload_passthrough"),
            unscaled_rwnd_skips: c("unscaled_rwnd_skips"),
            health_demotions: c("health_demotions"),
            health_promotions: c("health_promotions"),
            datapath_resets: c("datapath_resets"),
        }
    }

    fn bump(c: &Counter) {
        c.inc();
    }

    /// Load all counters (relaxed). Compatibility accessor: the same
    /// values, under `acdc.`-prefixed names, come out of the registry's
    /// `snapshot_all()`.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let ld = |c: &Counter| c.get();
        vec![
            ("packs_sent", ld(&self.packs_sent)),
            ("facks_sent", ld(&self.facks_sent)),
            ("packs_received", ld(&self.packs_received)),
            ("rwnd_rewrites", ld(&self.rwnd_rewrites)),
            ("policed_drops", ld(&self.policed_drops)),
            ("inferred_timeouts", ld(&self.inferred_timeouts)),
            ("inferred_fast_rtx", ld(&self.inferred_fast_rtx)),
            ("feedback_dropped", ld(&self.feedback_dropped)),
            ("non_tcp_passthrough", ld(&self.non_tcp_passthrough)),
            ("malformed_drops", ld(&self.malformed_drops)),
            ("gc_evictions", ld(&self.gc_evictions)),
            ("capacity_evictions", ld(&self.capacity_evictions)),
            ("admission_rejects", ld(&self.admission_rejects)),
            ("overload_passthrough", ld(&self.overload_passthrough)),
            ("unscaled_rwnd_skips", ld(&self.unscaled_rwnd_skips)),
            ("health_demotions", ld(&self.health_demotions)),
            ("health_promotions", ld(&self.health_promotions)),
            ("datapath_resets", ld(&self.datapath_resets)),
        ]
    }
}

/// A per-flow statistics snapshot (see [`AcdcDatapath::flow_stats`]).
#[derive(Debug, Clone)]
pub struct FlowStat {
    /// The flow's 5-tuple key (data direction).
    pub key: acdc_packet::FlowKey,
    /// Enforced algorithm name.
    pub cc_name: &'static str,
    /// Current enforced window, bytes.
    pub cwnd: u64,
    /// Bytes tracked as in flight.
    pub in_flight: u64,
    /// Smoothed RTT estimate, if sampled.
    pub srtt: Option<Nanos>,
    /// Lifetime bytes received for this flow at this host.
    pub rx_total: u64,
    /// Lifetime CE-marked bytes received.
    pub rx_marked: u64,
    /// Packets policed away.
    pub policed: u64,
    /// Awaiting garbage collection.
    pub closing: bool,
}

/// Where one processing context's observability goes: the counters to
/// bump and the hub to record events on. The legacy single-threaded
/// entry points pass the datapath's own counters/hub; the per-worker
/// entry points pass a [`WorkerSink`]'s. Enforcement state (table,
/// health, config) is never duplicated — only observability routes.
struct Obs<'a> {
    counters: &'a AcdcCounters,
    telemetry: &'a Telemetry,
    /// Where this context's segment buffers recycle: the datapath's main
    /// context rotates across the global pool's shards; a worker's
    /// context is pinned to its own shard, so feedback packets built and
    /// FACKs absorbed on a worker stay on that worker's free list.
    pool: PoolHandle<'static>,
}

/// One worker's observability context: a private telemetry hub plus the
/// full `acdc.*` counter set registered in that hub's registry.
///
/// The run-to-completion engine (`acdc-workers`) hands each worker its
/// own sink, so per-packet counting and event recording never interleave
/// nondeterministically across workers; at snapshot time the per-worker
/// hubs merge deterministically (counters sum, events k-way merge — see
/// `acdc-telemetry`'s merge helpers). Global concerns — the health
/// ladder, gc, the occupancy gauges — stay on the datapath's main hub
/// regardless of which sink processed the packet, so a merged view is
/// always "main hub + every worker hub".
pub struct WorkerSink {
    index: usize,
    telemetry: Arc<Telemetry>,
    counters: AcdcCounters,
    /// This worker's pinned view of the global segment pool (shard =
    /// worker index): buffers for feedback packets built here and FACKs
    /// absorbed here recycle through the worker's own free list.
    pool: PoolHandle<'static>,
}

impl WorkerSink {
    /// The worker index this sink was created for (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The worker's private telemetry hub.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The worker's counters (same `acdc.*` names as the main hub's).
    pub fn counters(&self) -> &AcdcCounters {
        &self.counters
    }

    /// The worker's pinned segment-pool handle.
    pub fn pool(&self) -> &PoolHandle<'static> {
        &self.pool
    }

    fn obs(&self) -> Obs<'_> {
        Obs {
            counters: &self.counters,
            telemetry: &self.telemetry,
            pool: self.pool,
        }
    }
}

/// The AC/DC datapath instance of one host's vSwitch.
pub struct AcdcDatapath {
    cfg: AcdcConfig,
    table: FlowTable,
    counters: AcdcCounters,
    health: HealthCell,
    /// Any admission reject since the last maintenance check? Promotion
    /// requires a clean interval, not just receded occupancy.
    overload_seen: AtomicBool,
    /// This datapath's observability domain: flight recorder + registry.
    telemetry: Arc<Telemetry>,
    /// Gauge `acdc.flows`: table occupancy, sampled on the tick.
    flows_gauge: Gauge,
    /// Gauge `acdc.health`: current rung (0 = enforcing … 2 = pass-through).
    health_gauge: Gauge,
}

impl AcdcDatapath {
    /// Create a datapath with the given configuration.
    pub fn new(cfg: AcdcConfig) -> AcdcDatapath {
        let telemetry = Telemetry::with_default_capacity();
        let mut table = match cfg.max_flows {
            Some(cap) => FlowTable::bounded(cap, cfg.admission),
            None => FlowTable::new(),
        };
        table.set_telemetry(Arc::clone(&telemetry));
        let counters = AcdcCounters::register(telemetry.registry());
        let flows_gauge = telemetry.registry().gauge("acdc.flows");
        let health_gauge = telemetry.registry().gauge("acdc.health");
        AcdcDatapath {
            cfg,
            table,
            counters,
            health: HealthCell::new(),
            overload_seen: AtomicBool::new(false),
            telemetry,
            flows_gauge,
            health_gauge,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AcdcConfig {
        &self.cfg
    }

    fn obs(&self) -> Obs<'_> {
        Obs {
            counters: &self.counters,
            telemetry: &self.telemetry,
            pool: acdc_packet::pool::global().rotating(),
        }
    }

    /// Build worker `index`'s observability sink: a fresh telemetry hub
    /// with the full counter set registered under `acdc.*`, plus a
    /// pool handle pinned to the worker's shard. Sinks are cheap and
    /// independent; the engine creates one per worker and merges their
    /// snapshots after a run.
    pub fn worker_sink(&self, index: usize) -> WorkerSink {
        let telemetry = Telemetry::with_default_capacity();
        let counters = AcdcCounters::register(telemetry.registry());
        WorkerSink {
            index,
            telemetry,
            counters,
            pool: acdc_packet::pool::global().pinned(index),
        }
    }

    /// Event counters.
    pub fn counters(&self) -> &AcdcCounters {
        &self.counters
    }

    /// This datapath's telemetry hub (event recorder + metrics registry).
    /// The owning host shares it for NIC-level events and drives the
    /// registry's time-series sampling from its maintenance tick.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The flow table (inspection; used by experiment probes).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Number of tracked flows.
    pub fn flows(&self) -> usize {
        self.table.len()
    }

    /// Current rung of the degradation ladder.
    pub fn health(&self) -> HealthState {
        self.health.get()
    }

    /// Time-stamped health transition trace (restart epochs included).
    pub fn health_trace(&self) -> Vec<(Nanos, HealthState)> {
        self.health.trace()
    }

    fn set_health(&self, now: Nanos, to: HealthState) {
        if let Some((from, to)) = self.health.transition(now, to) {
            if to > from {
                AcdcCounters::bump(&self.counters.health_demotions);
            } else {
                AcdcCounters::bump(&self.counters.health_promotions);
            }
            self.health_gauge.set(to as u64);
            self.telemetry.record(
                now,
                NO_FLOW,
                EventKind::HealthTransition {
                    from: from.name(),
                    to: to.name(),
                },
            );
        }
    }

    /// A flow was refused at the capacity gate: count it, remember the
    /// overload for the promotion logic, and drop to pass-through — if
    /// admission is failing, per-flow work is no longer trustworthy, and
    /// forwarding untouched is always safe (§3.3 fail-safe).
    fn on_admission_reject(&self, obs: &Obs<'_>, now: Nanos, key: &acdc_packet::FlowKey) {
        AcdcCounters::bump(&obs.counters.admission_rejects);
        obs.telemetry
            .record(now, *key, EventKind::AdmissionRejected);
        self.overload_seen.store(true, Ordering::Relaxed);
        self.set_health(now, HealthState::PassThrough);
    }

    /// Bookkeeping after a create-capable table op that was admitted.
    fn note_admission(
        &self,
        obs: &Obs<'_>,
        now: Nanos,
        key: &acdc_packet::FlowKey,
        adm: Admission,
    ) {
        if let Admission::CreatedAfterEviction(n) = adm {
            obs.counters
                .capacity_evictions
                .fetch_add(n as u64, Ordering::Relaxed);
            // Stamped with the admitted flow: the table does not surface
            // the victims' keys, only how many made room.
            obs.telemetry
                .record(now, *key, EventKind::FlowEvicted { reason: "capacity" });
        }
        if adm.created() {
            obs.telemetry.record(now, *key, EventKind::FlowCreated);
            if let Some(cap) = self.cfg.max_flows {
                // Eager demotion on the way up; recovery is left to the
                // maintenance tick (hysteresis lives in `update_health`).
                if self.health.get() == HealthState::Enforcing
                    && self.table.len() * 100 >= cap * usize::from(self.cfg.watermarks.log_only_pct)
                {
                    self.set_health(now, HealthState::LogOnly);
                }
            }
        }
    }

    /// Re-evaluate the ladder against occupancy (maintenance-tick path).
    /// Promotions require occupancy below the recovery watermark *and* a
    /// reject-free interval since the last check.
    fn update_health(&self, now: Nanos) {
        let Some(cap) = self.cfg.max_flows else {
            return;
        };
        let occ = self.table.len() * 100;
        let wm = &self.cfg.watermarks;
        let overload = self.overload_seen.swap(false, Ordering::Relaxed);
        match self.health.get() {
            HealthState::Enforcing => {
                if occ >= cap * usize::from(wm.log_only_pct) {
                    self.set_health(now, HealthState::LogOnly);
                }
            }
            HealthState::LogOnly => {
                if !overload && occ < cap * usize::from(wm.log_recover_pct) {
                    self.set_health(now, HealthState::Enforcing);
                }
            }
            HealthState::PassThrough => {
                if !overload && occ < cap * usize::from(wm.pass_recover_pct) {
                    self.set_health(now, HealthState::LogOnly);
                }
            }
        }
    }

    /// Simulate a vSwitch restart: drop all connection-tracking state and
    /// return to `Enforcing`, marking a restart epoch in the health trace.
    /// In-flight connections are re-adopted from subsequent data packets —
    /// conservatively: a flow whose handshake was lost stays log-only
    /// until a new SYN teaches its window scale. Returns the number of
    /// entries dropped.
    pub fn reset(&self, now: Nanos) -> usize {
        let dropped = self.table.clear();
        // Stamp the GC epoch: flows re-adopted after the restart inherit
        // fresh `last_activity` values, but the stamp guarantees nothing
        // re-created with pre-reset timestamps (checkpoint restores,
        // replayed traces) is spuriously collected by the next sweep.
        self.table.set_epoch(now);
        AcdcCounters::bump(&self.counters.datapath_resets);
        self.overload_seen.store(false, Ordering::Relaxed);
        self.health.force(now, HealthState::Enforcing);
        self.health_gauge.set(HealthState::Enforcing as u64);
        self.telemetry.record(
            now,
            NO_FLOW,
            EventKind::DatapathReset {
                flows_cleared: dropped as u64,
            },
        );
        dropped
    }

    fn cc_config(&self) -> CcConfig {
        let mut cfg = CcConfig::vswitch(self.cfg.mss);
        if let Some(floor) = self.cfg.min_window_bytes {
            cfg.min_window_bytes = floor;
        }
        cfg
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore (DESIGN.md §15)
    // ------------------------------------------------------------------

    /// Capture the datapath's full dynamic state at virtual time `at`.
    /// `worker_hubs` is every worker sink's hub in worker order (empty
    /// for the legacy single-threaded mode); the caller owns matching the
    /// list to the engine actually driving this datapath.
    pub fn checkpoint(
        &self,
        at: Nanos,
        worker_hubs: &[&Telemetry],
    ) -> crate::checkpoint::DatapathCheckpoint {
        use crate::checkpoint::{DatapathCheckpoint, FlowCheckpoint, HubCheckpoint};
        let mut flows: Vec<FlowCheckpoint> = Vec::with_capacity(self.table.len());
        self.table.for_each_slot(|key, slot| {
            flows.push(FlowCheckpoint {
                key: *key,
                rx_pending: slot.rx_pending(),
                state: slot.lock().checkpoint_state(),
            });
        });
        flows.sort_by_key(|f| f.key);
        DatapathCheckpoint {
            at,
            workers: worker_hubs.len(),
            gc_epoch: self.table.epoch(),
            overload_seen: self.overload_seen.load(Ordering::Relaxed),
            health_rung: self.health.get().rung(),
            health_trace: self
                .health
                .trace()
                .into_iter()
                .map(|(t, s)| (t, s.rung()))
                .collect(),
            flows,
            main_hub: HubCheckpoint::capture(&self.telemetry),
            worker_hubs: worker_hubs
                .iter()
                .map(|h| HubCheckpoint::capture(h))
                .collect(),
        }
    }

    /// Restore `ckpt` into this datapath — normally a freshly constructed
    /// one of the *same configuration*; any existing flow state is
    /// dropped first. Rebuilds every flow through the regular admission
    /// path (so policy assignment re-runs and must reproduce each flow's
    /// checkpointed CC algorithm), restores the health ladder and its
    /// trace verbatim, stamps the GC epoch, and applies the main hub's
    /// metric values and recorder bookkeeping. Worker hubs are *not*
    /// applied here — the engine owns those; apply
    /// `ckpt.worker_hubs[i]` to each of its sinks' hubs in worker order.
    ///
    /// Errors (configuration/checkpoint mismatch) leave the datapath in a
    /// partially restored state: discard it and restore into a fresh one.
    /// Returns the number of flows restored.
    pub fn restore(&self, ckpt: &crate::checkpoint::DatapathCheckpoint) -> Result<usize, String> {
        use crate::checkpoint::key_label;
        self.table.clear();
        for f in &ckpt.flows {
            let (slot, _adm) = self.table.get_or_create(f.key, || {
                FlowEntry::new(
                    self.cfg.policy.assign(&f.key),
                    self.cc_config(),
                    f.state.last_activity,
                )
            });
            let Some(slot) = slot else {
                return Err(format!(
                    "flow table refused {} during restore (capacity {:?})",
                    key_label(&f.key),
                    self.cfg.max_flows
                ));
            };
            if !slot.lock().restore_state(&f.state) {
                return Err(format!(
                    "flow {} checkpointed `{}` CC state the configured policy \
                     does not reproduce",
                    key_label(&f.key),
                    f.state.cc_name
                ));
            }
            slot.set_rx_pending(f.rx_pending);
        }
        self.table.set_epoch(ckpt.gc_epoch);
        self.overload_seen
            .store(ckpt.overload_seen, Ordering::Relaxed);
        self.health.restore(
            HealthState::from_rung(ckpt.health_rung),
            ckpt.health_trace
                .iter()
                .map(|&(t, r)| (t, HealthState::from_rung(r)))
                .collect(),
        );
        // The gauge cells (`acdc.flows`, `acdc.health`) are restored by
        // name like every other metric — NOT refreshed from live state:
        // in the uninterrupted run they hold whatever the last tick (or
        // health transition) wrote, and byte-identity means reproducing
        // exactly that staleness. The next tick resynchronizes them on
        // the same edge it would have anyway.
        ckpt.main_hub.apply(&self.telemetry)?;
        Ok(ckpt.flows.len())
    }

    // ------------------------------------------------------------------
    // Egress: VM → network
    // ------------------------------------------------------------------

    /// Process a packet leaving the guest toward the network.
    pub fn egress(&self, now: Nanos, seg: Segment) -> Verdict {
        self.egress_obs(&self.obs(), now, seg)
    }

    /// [`AcdcDatapath::egress`] with observability routed to a worker's
    /// sink instead of the datapath's main hub. Same table, same health
    /// ladder, same enforcement decisions — only where counters bump and
    /// events record moves, so N workers produce the same packet
    /// transformations as the single-threaded path.
    pub fn egress_via(&self, sink: &WorkerSink, now: Nanos, seg: Segment) -> Verdict {
        self.egress_obs(&sink.obs(), now, seg)
    }

    fn egress_obs(&self, obs: &Obs<'_>, now: Nanos, mut seg: Segment) -> Verdict {
        // The prototype only enforces TCP (the paper leaves UDP tunnels as
        // future work); other protocols pass through untouched (counted
        // even with AC/DC disabled — it is a visibility counter). The
        // protocol check is a single byte read: pass-through traffic and
        // the plain-OVS baseline never parse headers at all.
        if !seg.is_tcp() {
            AcdcCounters::bump(&obs.counters.non_tcp_passthrough);
            return Verdict::Forward(seg);
        }
        if !self.cfg.enabled {
            return Verdict::Forward(seg);
        }
        // Degradation ladder: an overloaded datapath forwards guest
        // packets untouched — no parse, no table work. Always safe: the
        // guest's own congestion control still runs (§3.3 fail-safe).
        let health = self.health.get();
        if health == HealthState::PassThrough {
            AcdcCounters::bump(&obs.counters.overload_passthrough);
            return Verdict::Forward(seg);
        }
        let log_only = self.cfg.log_only || health == HealthState::LogOnly;
        // The single parse of the packet's journey (or a cache hit, when
        // the NIC already verified checksums). Malformed frames are
        // dropped and counted — wire input never panics the datapath.
        let Ok(meta) = seg.try_meta() else {
            AcdcCounters::bump(&obs.counters.malformed_drops);
            obs.telemetry.record(
                now,
                NO_FLOW,
                EventKind::PacketDropped { cause: "malformed" },
            );
            return Verdict::Drop(DropReason::Malformed);
        };
        let key = meta.flow;
        let flags = meta.flags;

        if flags.contains(TcpFlags::RST) {
            self.mark_closing(&key);
            return Verdict::Forward(seg);
        }

        // --- Handshake monitoring (§3.1, §3.3) ---
        if flags.contains(TcpFlags::SYN) {
            self.on_handshake_packet(obs, now, &meta, /*egress=*/ true);
            return Verdict::Forward(seg); // SYNs are never mangled
        }

        // --- Sender module: data packets ---
        if seg.payload_len() > 0 || flags.contains(TcpFlags::FIN) {
            let payload_len = seg.payload_len();
            let (tracked, admission) = self.table.with_entry_or_create(
                key,
                || FlowEntry::new(self.cfg.policy.assign(&key), self.cc_config(), now),
                |slot| {
                    let mut e = slot.entry.lock();
                    e.last_activity = now;
                    let seq = meta.seq;
                    let seq_end = seq
                        + (payload_len as u32)
                        + if flags.contains(TcpFlags::FIN) {
                            1u32
                        } else {
                            0u32
                        };
                    if !e.seq_valid {
                        e.snd_una = seq;
                        e.snd_nxt = seq_end;
                        e.seq_valid = true;
                    }

                    // Policing: a conforming stack never sends beyond the
                    // window we enforced; drop the excess of one that
                    // does (§3.3). A window we never rewrote (unlearned
                    // scale) was never enforced, so it is not policed.
                    if let Some(slack) = self.cfg.police_slack_bytes {
                        if !log_only && e.rwnd.learned() && payload_len > 0 {
                            let allowed_end = e.snd_una + (e.cc.cwnd() + slack) as usize;
                            if seq_end > allowed_end {
                                e.policed += 1;
                                return Err(());
                            }
                        }
                    }

                    if seq_end > e.snd_nxt {
                        e.snd_nxt = seq_end;
                        if e.rtt_probe.is_none() {
                            e.rtt_probe = Some((seq_end, now));
                        }
                    } else if seq < e.snd_nxt {
                        // Retransmission: invalidate the RTT probe (Karn).
                        if let Some((p, _)) = e.rtt_probe {
                            if seq < p {
                                e.rtt_probe = None;
                            }
                        }
                    }
                    if flags.contains(TcpFlags::FIN) {
                        e.closing = true;
                    }
                    Ok(e.vm_ecn)
                },
            );
            let vm_ecn = match tracked {
                // Table full, flow refused: forward untouched (fail-safe)
                // and let the ladder drop to pass-through.
                None => {
                    self.on_admission_reject(obs, now, &key);
                    return Verdict::Forward(seg);
                }
                Some(Ok(v)) => {
                    self.note_admission(obs, now, &key, admission);
                    v
                }
                Some(Err(())) => {
                    AcdcCounters::bump(&obs.counters.policed_drops);
                    obs.telemetry
                        .record(now, key, EventKind::PacketDropped { cause: "policed" });
                    return Verdict::Drop(DropReason::Policed);
                }
            };

            // Force ECT on egress data so switches mark instead of drop
            // (§3.2), and stamp the guest's original ECN capability into
            // the reserved bit for the peer module. Log-only mode
            // (Figure 9's measurement methodology) must not perturb the
            // guest's ECN loop, so it skips all packet rewriting.
            if seg.payload_len() > 0 && !log_only {
                if !seg.ecn().is_ect() {
                    seg.set_ecn(Ecn::Ect0);
                }
                seg.set_reserved(vm_ecn, false);
            }
        }

        // "All egress packets are marked to be ECN-capable on the sender
        // module" (§3.2) — including pure ACKs, so they survive WRED on
        // congested reverse paths.
        if !log_only && !seg.ecn().is_ect() {
            seg.set_ecn(Ecn::Ect0);
        }

        // --- Receiver module: attach feedback to ACKs (§3.2) ---
        if flags.contains(TcpFlags::ACK) {
            // Lock-free probe first: a unidirectional sender has no
            // receiver-role feedback, so the common data packet skips the
            // reverse-entry lock (and its `last_activity` touch) entirely.
            let feedback = self
                .table
                .with_entry(&key.reverse(), |slot| {
                    if !slot.rx_pending() {
                        return None;
                    }
                    let mut re = slot.entry.lock();
                    re.last_activity = now;
                    let fb = (re.rx_total > 0).then(|| re.take_feedback());
                    slot.set_rx_pending(false);
                    fb
                })
                .flatten();
            if let Some((total, marked)) = feedback {
                let pack = PackOption {
                    total_bytes: total,
                    marked_bytes: marked,
                };
                if seg.wire_len() + PackOption::WIRE_LEN <= self.cfg.mtu
                    && seg.append_pack_in_place(pack)
                {
                    AcdcCounters::bump(&obs.counters.packs_sent);
                } else if self.cfg.disable_fack {
                    // Ablation: the feedback is simply lost.
                    AcdcCounters::bump(&obs.counters.feedback_dropped);
                } else if let Some(fack) = make_fack(&seg, pack, &obs.pool) {
                    AcdcCounters::bump(&obs.counters.facks_sent);
                    return Verdict::ForwardWithExtra(seg, fack);
                } else {
                    // No room even in a payload-free copy (pathological
                    // option soup): the feedback is lost, not a panic.
                    AcdcCounters::bump(&obs.counters.feedback_dropped);
                }
            }
        }

        Verdict::Forward(seg)
    }

    // ------------------------------------------------------------------
    // Ingress: network → VM
    // ------------------------------------------------------------------

    /// Process a packet arriving from the network toward the guest.
    pub fn ingress(&self, now: Nanos, seg: Segment) -> Verdict {
        self.ingress_obs(&self.obs(), now, seg)
    }

    /// [`AcdcDatapath::ingress`] with observability routed to a worker's
    /// sink (see [`AcdcDatapath::egress_via`]).
    pub fn ingress_via(&self, sink: &WorkerSink, now: Nanos, seg: Segment) -> Verdict {
        self.ingress_obs(&sink.obs(), now, seg)
    }

    fn ingress_obs(&self, obs: &Obs<'_>, now: Nanos, mut seg: Segment) -> Verdict {
        if !seg.is_tcp() {
            AcdcCounters::bump(&obs.counters.non_tcp_passthrough);
            return Verdict::Forward(seg);
        }
        if !self.cfg.enabled {
            return Verdict::Forward(seg);
        }
        // Usually a cache hit: the host NIC's checksum verification has
        // already parsed and cached the metadata.
        let Ok(meta) = seg.try_meta() else {
            AcdcCounters::bump(&obs.counters.malformed_drops);
            obs.telemetry.record(
                now,
                NO_FLOW,
                EventKind::PacketDropped { cause: "malformed" },
            );
            return Verdict::Drop(DropReason::Malformed);
        };
        let key = meta.flow;
        let flags = meta.flags;

        // Degradation ladder: overloaded datapaths do no per-flow work on
        // ingress either, but AC/DC's own wire metadata must never reach
        // a guest — FACKs are consumed, PACKs stripped, reserved bits
        // cleared. All of it is stateless header hygiene.
        let health = self.health.get();
        if health == HealthState::PassThrough {
            AcdcCounters::bump(&obs.counters.overload_passthrough);
            if meta.fack {
                if let Some(pack) = meta.pack {
                    self.absorb_feedback(&key, pack);
                }
                seg.recycle_into(&obs.pool);
                return Verdict::Drop(DropReason::FackConsumed);
            }
            if meta.pack.is_some() {
                AcdcCounters::bump(&obs.counters.packs_received);
                seg.strip_pack_in_place();
            }
            if meta.vm_ece || meta.fack {
                seg.clear_reserved();
            }
            return Verdict::Forward(seg);
        }
        let log_only = self.cfg.log_only || health == HealthState::LogOnly;

        if flags.contains(TcpFlags::RST) {
            self.mark_closing(&key);
            return Verdict::Forward(seg);
        }
        if flags.contains(TcpFlags::SYN) {
            self.on_handshake_packet(obs, now, &meta, /*egress=*/ false);
            return Verdict::Forward(seg);
        }

        let pure_ack = seg.payload_len() == 0
            && flags.contains(TcpFlags::ACK)
            && !flags.intersects(TcpFlags::SYN | TcpFlags::FIN | TcpFlags::RST);

        // --- Sender module: FACKs are logged and absorbed (§3.2) ---
        if meta.fack {
            if let Some(pack) = meta.pack {
                self.absorb_feedback(&key, pack);
            }
            // The FACK still carries an ACK; process congestion control on
            // it so feedback takes effect immediately, then drop it.
            self.sender_ack_processing(obs, now, &mut seg, &meta, pure_ack, false);
            seg.recycle_into(&obs.pool);
            return Verdict::Drop(DropReason::FackConsumed);
        }

        // --- Receiver module: account + launder ECN on data (§3.2) ---
        if seg.payload_len() > 0 {
            let payload_len = seg.payload_len() as u64;
            let ce = seg.ecn().is_ce();
            let (tracked, admission) = self.table.with_entry_or_create(
                key,
                || FlowEntry::new(self.cfg.policy.assign(&key), self.cc_config(), now),
                |slot| {
                    let mut e = slot.entry.lock();
                    e.last_activity = now;
                    e.rx_total += payload_len;
                    e.rx_total_lifetime += payload_len;
                    if ce {
                        e.rx_marked += payload_len;
                        e.rx_marked_lifetime += payload_len;
                    }
                    crate::strict_invariant!(
                        e.rx_marked <= e.rx_total && e.rx_marked_lifetime <= e.rx_total_lifetime,
                        "PACK receive counters inconsistent: marked {}/{} lifetime {}/{}",
                        e.rx_marked,
                        e.rx_total,
                        e.rx_marked_lifetime,
                        e.rx_total_lifetime
                    );
                    if flags.contains(TcpFlags::FIN) {
                        e.closing = true;
                    }
                    // Publish "feedback pending" for the egress fast path.
                    slot.set_rx_pending(true);
                },
            );
            if tracked.is_some() {
                self.note_admission(obs, now, &key, admission);
                // Restore what the sender VM originally put on the wire:
                // ECT if its stack spoke ECN (hiding the CE mark from it
                // is the point — DCTCP in the vSwitch reacts instead),
                // nothing otherwise. Log-only mode leaves packets
                // untouched so the guest's own congestion loop stays
                // intact.
                if !log_only {
                    let target = if meta.vm_ece { Ecn::Ect0 } else { Ecn::NotEct };
                    if seg.ecn() != target {
                        seg.set_ecn(target);
                    }
                }
            } else {
                // Untracked at capacity: leave the wire untouched — an
                // unlaundered CE mark is at worst ignored by a guest that
                // never negotiated ECN.
                self.on_admission_reject(obs, now, &key);
            }
        }

        // --- Sender module: ACK processing + enforcement (§3.1–3.3) ---
        if flags.contains(TcpFlags::ACK) {
            if let Some(pack) = meta.pack {
                self.absorb_feedback(&key, pack);
                AcdcCounters::bump(&obs.counters.packs_received);
                seg.strip_pack_in_place();
            }
            self.sender_ack_processing(obs, now, &mut seg, &meta, pure_ack, !log_only);
            // Hide ECN feedback from the guest so it does not also back
            // off (§3.3): AC/DC is the one reacting. Applied to every
            // non-SYN ACK — the vSwitch owns ECN on this fabric.
            if !log_only && flags.contains(TcpFlags::ECE) {
                seg.clear_tcp_flags(TcpFlags::ECE);
            }
        }

        // Never leak AC/DC metadata into the guest.
        if meta.vm_ece || meta.fack {
            seg.clear_reserved();
        }

        Verdict::Forward(seg)
    }

    /// Fold a PACK's counters into the sender-role feedback accumulators
    /// of the acked flow.
    fn absorb_feedback(&self, ack_key: &acdc_packet::FlowKey, pack: PackOption) {
        self.table.with_entry(&ack_key.reverse(), |slot| {
            let mut e = slot.entry.lock();
            e.fb_total += u64::from(pack.total_bytes);
            e.fb_marked += u64::from(pack.marked_bytes);
            crate::strict_invariant!(
                e.fb_marked <= e.fb_total,
                "PACK feedback counters inconsistent: marked {} > total {}",
                e.fb_marked,
                e.fb_total
            );
        });
    }

    /// Connection-tracking + congestion control + RWND enforcement for an
    /// arriving ACK. When `rewrite` is true, the enforcement write is
    /// applied to the segment (it is the one delivered to the guest);
    /// callers fold log-only mode (config flag or health ladder) into it.
    fn sender_ack_processing(
        &self,
        obs: &Obs<'_>,
        now: Nanos,
        seg: &mut Segment,
        meta: &PacketMeta,
        pure_ack: bool,
        rewrite: bool,
    ) {
        let (ack, window) = (meta.ack, meta.window);
        // CC events are stamped with the *data* direction's key (the flow
        // whose window is being enforced), not the arriving ACK's key.
        let data_key = meta.flow.reverse();
        // CC events observed under the entry lock, published only after
        // the guard drops (W002: the event bus must not be entered while
        // a flow-entry lock is held). Fixed-size, in firing order.
        let enforced = self.table.with_entry(&data_key, |slot| {
            let mut e = slot.entry.lock();
            e.last_activity = now;
            let mut newly_acked = 0u64;
            let mut rtt_sample = None;
            let mut cut_event = None;
            let mut rto_event = None;
            let mut alpha_event = None;

            if e.seq_valid {
                if ack > e.snd_una && ack <= e.snd_nxt {
                    newly_acked = (ack - e.snd_una) as u64;
                    e.snd_una = ack;
                    e.dupacks = 0;
                    e.last_ack_activity = now;
                    if let Some((probe_seq, sent_at)) = e.rtt_probe {
                        if ack >= probe_seq {
                            let s = now - sent_at;
                            e.record_rtt(s);
                            rtt_sample = Some(s);
                            e.rtt_probe = None;
                        }
                    }
                } else if ack == e.snd_una && pure_ack && e.snd_nxt > e.snd_una {
                    e.dupacks += 1;
                    if e.dupacks == 3 {
                        e.cc.on_fast_retransmit(now);
                        AcdcCounters::bump(&obs.counters.inferred_fast_rtx);
                        cut_event = Some(EventKind::CwndCut {
                            cause: "fast-retransmit",
                            cwnd: e.cc.cwnd(),
                        });
                    }
                }

                // Inactivity-inferred timeout (§3.1).
                if e.snd_una < e.snd_nxt {
                    let thresh = e.inactivity_threshold(self.cfg.inactivity_floor);
                    if now.saturating_sub(e.last_ack_activity) > thresh {
                        e.cc.on_retransmit_timeout(now);
                        e.last_ack_activity = now;
                        AcdcCounters::bump(&obs.counters.inferred_timeouts);
                        rto_event = Some(EventKind::RtoFired { cwnd: e.cc.cwnd() });
                    }
                }
            }

            // Consume accumulated feedback and run the algorithm (Figure 5)
            // through the VirtualCc seam — the datapath never sees how the
            // algorithm turns the signal bundle into a window.
            let marked = e.fb_marked;
            let total = e.fb_total;
            e.fb_total = 0;
            e.fb_marked = 0;
            let in_flight = e.in_flight();
            let rtt = rtt_sample.or(e.srtt);
            if newly_acked > 0 || marked > 0 {
                e.cc.on_ack_signals(&AckSignals {
                    now,
                    newly_acked,
                    marked_bytes: marked,
                    total_bytes: total,
                    rtt,
                    in_flight,
                });
                // Publish alpha movements (quantized; DCTCP-family only).
                if let Some(am) = e.cc.alpha_micros() {
                    if e.last_alpha_micros != Some(am) {
                        e.last_alpha_micros = Some(am);
                        alpha_event = Some(EventKind::AlphaUpdate { alpha_micros: am });
                    }
                }
            }

            // Enforcement target: the computed window, bounded by the
            // administrative cap (§3.4).
            let cwnd = e.cc.cwnd().min(self.cfg.max_rwnd_bytes.unwrap_or(u64::MAX));
            e.rwnd.set_target(now, cwnd, self.cfg.trace_windows);
            (e.rwnd.action(window), [cut_event, rto_event, alpha_event])
        });

        // Enforcement: overwrite RWND with the computed window, only when
        // that is *smaller* than what the guest advertised (§3.3). Never
        // with an unlearned scale: an entry adopted mid-stream (restart,
        // migration) stays log-only until a handshake teaches the shift —
        // a raw write interpreted through the guest's real scale could be
        // off by 2^14 in either direction. The decision comes from the
        // RWND-rewrite component (`entry.rwnd`, see crate::rwnd).
        if let Some((action, events)) = enforced {
            for ev in events.into_iter().flatten() {
                obs.telemetry.record(now, data_key, ev);
            }
            if rewrite {
                match action {
                    RwndAction::Rewrite(raw_target) => {
                        seg.rewrite_window(raw_target);
                        AcdcCounters::bump(&obs.counters.rwnd_rewrites);
                    }
                    RwndAction::KeepGuest => {}
                    RwndAction::ScaleUnlearned => {
                        AcdcCounters::bump(&obs.counters.unscaled_rwnd_skips);
                    }
                }
            }
        }
    }

    /// Record handshake parameters from a SYN or SYN-ACK (§3.1).
    fn on_handshake_packet(&self, obs: &Obs<'_>, now: Nanos, meta: &PacketMeta, egress: bool) {
        let key = meta.flow;
        let flags = meta.flags;
        let wscale = meta.wscale.map(|w| w.min(14));
        // The sender of this SYN advertises the scale used to interpret
        // windows in ACKs *it* will send — i.e. the ACKs of the reverse
        // data direction.
        let rev = key.reverse();
        let (rentry, radm) = self.table.get_or_create(rev, || {
            FlowEntry::new(self.cfg.policy.assign(&rev), self.cc_config(), now)
        });
        let Some(rentry) = rentry else {
            self.on_admission_reject(obs, now, &rev);
            return;
        };
        self.note_admission(obs, now, &rev, radm);
        {
            let mut re = rentry.lock();
            re.last_activity = now;
            re.rwnd.learn(wscale.unwrap_or(0));
        }

        // The VM originating this SYN is the data sender of `key`; its ECN
        // capability (SYN: ECE|CWR, SYN-ACK: ECE) matters at *its own*
        // host's sender module when stamping the reserved bit.
        if egress {
            let vm_ecn = if flags.contains(TcpFlags::ACK) {
                flags.contains(TcpFlags::ECE)
            } else {
                flags.contains(TcpFlags::ECE) && flags.contains(TcpFlags::CWR)
            };
            let (entry, adm) = self.table.get_or_create(key, || {
                FlowEntry::new(self.cfg.policy.assign(&key), self.cc_config(), now)
            });
            let Some(entry) = entry else {
                self.on_admission_reject(obs, now, &key);
                return;
            };
            self.note_admission(obs, now, &key, adm);
            let mut e = entry.lock();
            e.last_activity = now;
            e.vm_ecn = vm_ecn;
            // Initialize sequence tracking from the SYN.
            e.snd_una = meta.seq + 1u32;
            e.snd_nxt = meta.seq + 1u32;
            e.seq_valid = true;
        }
    }

    fn mark_closing(&self, key: &acdc_packet::FlowKey) {
        for k in [*key, key.reverse()] {
            self.table
                .with_entry(&k, |slot| slot.entry.lock().closing = true);
        }
    }

    // ------------------------------------------------------------------
    // Maintenance & flexibility features (§3.3)
    // ------------------------------------------------------------------

    /// Periodic tick: infer timeouts for flows whose ACK clock stopped
    /// entirely (no ingress packet will trigger the check).
    pub fn tick(&self, now: Nanos) {
        let floor = self.cfg.inactivity_floor;
        // Timeouts are collected during the sweep and published after it:
        // the event bus must not be entered while the table's per-entry
        // locks are held (W002). Same per-flow order as before.
        let mut fired: Vec<(acdc_packet::FlowKey, u64)> = Vec::new();
        self.table.for_each(|key, e| {
            if e.seq_valid && e.snd_una < e.snd_nxt {
                let thresh = e.inactivity_threshold(floor);
                if now.saturating_sub(e.last_ack_activity) > thresh {
                    e.cc.on_retransmit_timeout(now);
                    e.last_ack_activity = now;
                    fired.push((*key, e.cc.cwnd()));
                }
            }
        });
        for (key, cwnd) in &fired {
            AcdcCounters::bump(&self.counters.inferred_timeouts);
            self.telemetry
                .record(now, *key, EventKind::RtoFired { cwnd: *cwnd });
        }
        self.update_health(now);
        // The tick is also the registry's sampling edge: refresh gauges,
        // then push every metric onto its time series.
        self.flows_gauge.set(self.table.len() as u64);
        self.health_gauge.set(self.health.get() as u64);
        self.telemetry.registry().sample(now);
    }

    /// Garbage-collect closed/idle entries (paired with FIN tracking).
    /// Driven from the host's 10 ms maintenance tick; also the moment the
    /// health ladder re-evaluates recovery (occupancy just receded).
    pub fn gc(&self, now: Nanos, idle_timeout: Nanos) -> usize {
        let collected = self.table.gc(now, idle_timeout);
        if collected > 0 {
            self.counters
                .gc_evictions
                .fetch_add(collected as u64, Ordering::Relaxed);
        }
        self.update_health(now);
        collected
    }

    /// Snapshot per-flow statistics for every tracked entry — the
    /// operator-visibility view an administrator gets from the vSwitch
    /// (which flows it is enforcing, at what windows, with how much
    /// congestion feedback).
    pub fn flow_stats(&self) -> Vec<FlowStat> {
        let mut out = Vec::new();
        self.table.for_each(|key, e| {
            out.push(FlowStat {
                key: *key,
                cc_name: e.cc.name(),
                cwnd: e.cc.cwnd(),
                in_flight: e.in_flight(),
                srtt: e.srtt,
                rx_total: e.rx_total_lifetime,
                rx_marked: e.rx_marked_lifetime,
                policed: e.policed,
                closing: e.closing,
            });
        });
        out.sort_by_key(|s| s.key);
        out
    }

    /// The passively reconstructed `(snd_una, snd_nxt)` pair for `key`'s
    /// data sender, if the flow is tracked and its sequence state is valid
    /// (paper §3.1). The chaos suite compares this against the endpoint's
    /// ground truth after fault recovery.
    pub fn seq_state(
        &self,
        key: &acdc_packet::FlowKey,
    ) -> Option<(acdc_packet::SeqNumber, acdc_packet::SeqNumber)> {
        let v = self.seq_view(key)?;
        Some((v.snd_una, v.snd_nxt))
    }

    /// The passively reconstructed send pointers for `key`'s data sender
    /// as a [`acdc_packet::SeqView`] — the same currency
    /// `Endpoint::seq_view` exposes for its ground truth, so the two
    /// sides compare without tuple plumbing.
    pub fn seq_view(&self, key: &acdc_packet::FlowKey) -> Option<acdc_packet::SeqView> {
        let entry = self.table.get(key)?;
        let e = entry.lock();
        if !e.seq_valid {
            return None;
        }
        Some(acdc_packet::SeqView {
            snd_una: e.snd_una,
            snd_nxt: e.snd_nxt,
        })
    }

    /// Generate a TCP Window Update for the data sender of `key` without
    /// waiting for an ACK (§3.3 flexibility): a pure ACK, receiver→sender,
    /// carrying the currently enforced window.
    ///
    /// This packet is meant to be *delivered to the local guest* (the data
    /// sender behind this vSwitch).
    pub fn make_window_update(&self, key: &acdc_packet::FlowKey) -> Option<Segment> {
        let entry = self.table.get(key)?;
        let e = entry.lock();
        if !e.seq_valid {
            return None;
        }
        let cwnd = e.cc.cwnd().max(1);
        let raw = e.rwnd.raw_window(cwnd);
        let mut t = TcpRepr::new(key.dst_port, key.src_port);
        t.flags = TcpFlags::ACK;
        t.ack = e.snd_una;
        t.seq = acdc_packet::SeqNumber::ZERO; // unknown; guests ignore seq on pure window updates in-window
        t.window = raw;
        let ip = Ipv4Repr {
            src_addr: key.dst_ip,
            dst_addr: key.src_ip,
            protocol: acdc_packet::PROTO_TCP,
            ecn: Ecn::NotEct,
            payload_len: 0,
            ttl: Ipv4Repr::DEFAULT_TTL,
        };
        Some(Segment::new_tcp(ip, t, 0))
    }

    /// Generate `n` duplicate ACKs for the data sender of `key` to trigger
    /// its fast retransmit earlier than its (possibly long) RTO (§3.3,
    /// incast mitigation).
    pub fn make_dup_acks(&self, key: &acdc_packet::FlowKey, n: usize) -> Vec<Segment> {
        let Some(entry) = self.table.get(key) else {
            return Vec::new();
        };
        let e = entry.lock();
        if !e.seq_valid {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut t = TcpRepr::new(key.dst_port, key.src_port);
            t.flags = TcpFlags::ACK;
            t.ack = e.snd_una;
            t.seq = acdc_packet::SeqNumber::ZERO;
            t.window = e.rwnd.raw_window(e.cc.cwnd());
            let ip = Ipv4Repr {
                src_addr: key.dst_ip,
                dst_addr: key.src_ip,
                protocol: acdc_packet::PROTO_TCP,
                ecn: Ecn::NotEct,
                payload_len: 0,
                ttl: Ipv4Repr::DEFAULT_TTL,
            };
            out.push(Segment::new_tcp(ip, t, 0));
        }
        out
    }
}

/// Build a dedicated FACK: a payload-free copy of `ack` carrying the PACK
/// option and the FACK reserved-bit marker. The copy is produced by
/// in-place byte patches on a clone (the paper shifts headers into skb
/// headroom — same idea, no re-emit). The clone's buffer is rented
/// through `pool`, so a worker-built FACK draws on the worker's own
/// shard. `None` when even the payload-free copy has no room for the
/// option; the caller drops the feedback.
fn make_fack(ack: &Segment, pack: PackOption, pool: &PoolHandle<'static>) -> Option<Segment> {
    let mut fack = ack.clone_in(pool);
    fack.set_virtual_payload_len(0);
    fack.strip_pack_in_place();
    let vm_ece = fack.try_meta().ok()?.vm_ece;
    if !fack.append_pack_in_place(pack) {
        return None;
    }
    fack.set_tcp_flags(TcpFlags::ACK);
    fack.set_reserved(vm_ece, true);
    Some(fack)
}
