//! Datapath checkpoint/restore (DESIGN.md §15).
//!
//! A checkpoint is a *versioned, deterministic* image of everything in a
//! datapath that evolves at runtime: the flow table (per-flow CC state
//! words, RWND-rewrite state including the learned/unlearned scale flag,
//! sequence tracking, feedback accumulators), the health ladder and its
//! transition trace, the GC epoch, the admission `overload_seen` latch,
//! and every telemetry hub's counter values plus flight-recorder
//! bookkeeping. Restoring a checkpoint into a freshly constructed
//! datapath of the same configuration continues the run byte-identically
//! — same counter snapshots, same subsequent event sequence numbers,
//! same enforcement decisions — which is the contract the soak harness's
//! A/B equivalence check pins down.
//!
//! What is deliberately **not** checkpointed: construction parameters
//! (the [`crate::AcdcConfig`], CC configs, the priority weights) — the
//! restoring side rebuilds those through the same construction path, and
//! per-flow `cc` names verify the reproduction matches; diagnostic state
//! (per-flow window traces, sampled time series, the flight recorder's
//! buffered events) — it describes the past, not the future.
//!
//! ## Wire format
//!
//! `acdc-checkpoint/v1` is hand-rolled JSON (no serde), produced by
//! [`DatapathCheckpoint::to_json`] and read back by
//! [`DatapathCheckpoint::from_json`] through a small recursive-descent
//! parser. Determinism rules (lint rule S001): flows sorted by key,
//! metrics sorted by name, no floating-point formatting anywhere —
//! every number in the document is a `u64`.

use std::fmt::Write as _;

use acdc_packet::FlowKey;
use acdc_stats::time::Nanos;
use acdc_telemetry::Telemetry;

use crate::entry::FlowEntryState;

/// Schema tag every v1 checkpoint document carries.
pub const CHECKPOINT_SCHEMA: &str = "acdc-checkpoint/v1";

/// Flight-recorder bookkeeping for one hub: enough to make the restored
/// recorder's *subsequent* event stream sequence-identical to the
/// uninterrupted run's. Ring content is diagnostic and not carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderCheckpoint {
    /// Sequence number the next recorded event will carry.
    pub next_seq: u64,
    /// Events lost to ring wraparound so far.
    pub overwritten: u64,
}

/// One telemetry hub's checkpointed state: every registered metric's
/// value (sorted by name) plus the recorder bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubCheckpoint {
    /// `(name, value)` for every registered counter and gauge, sorted by
    /// name. Kinds are not carried: the restoring registry was built by
    /// the same construction path and already knows them.
    pub metrics: Vec<(String, u64)>,
    /// Flight-recorder sequence/overwrite bookkeeping.
    pub recorder: RecorderCheckpoint,
}

impl HubCheckpoint {
    /// Capture `hub`'s current metric values and recorder bookkeeping.
    pub fn capture(hub: &Telemetry) -> HubCheckpoint {
        HubCheckpoint {
            metrics: hub
                .registry()
                .snapshot_all()
                .into_iter()
                .map(|m| (m.name, m.value))
                .collect(),
            recorder: RecorderCheckpoint {
                next_seq: hub.recorder().total_recorded(),
                overwritten: hub.recorder().overwritten(),
            },
        }
    }

    /// Apply this checkpoint to `hub`: overwrite every named metric cell
    /// and restore the recorder bookkeeping. Fails when the checkpoint
    /// names a metric the hub's registry never registered — a
    /// checkpoint/configuration mismatch the caller must not ignore.
    pub fn apply(&self, hub: &Telemetry) -> Result<(), String> {
        for (name, value) in &self.metrics {
            if !hub.registry().restore_value(name, *value) {
                return Err(format!(
                    "checkpoint metric `{name}` is not registered in the restoring hub"
                ));
            }
        }
        hub.recorder()
            .restore_counters(self.recorder.next_seq, self.recorder.overwritten);
        Ok(())
    }
}

/// One tracked flow's checkpointed state.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowCheckpoint {
    /// The flow's 5-tuple key (data direction).
    pub key: FlowKey,
    /// The slot's lock-free feedback-pending flag.
    pub rx_pending: bool,
    /// The entry's dynamic state.
    pub state: FlowEntryState,
}

/// A complete datapath checkpoint (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathCheckpoint {
    /// Virtual time the checkpoint was taken at.
    pub at: Nanos,
    /// Worker count of the run (`worker_hubs.len()`; 0 = legacy
    /// single-threaded entry points). Restore verifies the target runs
    /// the same mode — hub counters would mis-merge otherwise.
    pub workers: usize,
    /// The flow table's GC bookkeeping epoch at checkpoint time.
    pub gc_epoch: Nanos,
    /// The admission `overload_seen` latch (promotion hysteresis).
    pub overload_seen: bool,
    /// Health rung, as its stable 0/1/2 encoding.
    pub health_rung: u8,
    /// Time-stamped health transition trace (rung-encoded).
    pub health_trace: Vec<(Nanos, u8)>,
    /// Every tracked flow, sorted by key.
    pub flows: Vec<FlowCheckpoint>,
    /// The datapath's main telemetry hub.
    pub main_hub: HubCheckpoint,
    /// Each worker's hub, in worker order (empty at `workers == 0`).
    pub worker_hubs: Vec<HubCheckpoint>,
}

// ----------------------------------------------------------------------
// Flow-key labels
// ----------------------------------------------------------------------

/// `key` as the checkpoint's `"a.b.c.d:p>e.f.g.h:q"` label (the same
/// shape `acdc_telemetry::flow_label` uses for real flows).
pub fn key_label(key: &FlowKey) -> String {
    let [a, b, c, d] = key.src_ip;
    let [e, f, g, h] = key.dst_ip;
    format!(
        "{a}.{b}.{c}.{d}:{sp}>{e}.{f}.{g}.{h}:{dp}",
        sp = key.src_port,
        dp = key.dst_port
    )
}

/// Parse a [`key_label`]-formatted flow key.
pub fn parse_key_label(label: &str) -> Result<FlowKey, String> {
    let bad = || format!("malformed flow-key label `{label}`");
    let (src, dst) = label.split_once('>').ok_or_else(bad)?;
    let endpoint = |s: &str| -> Result<([u8; 4], u16), String> {
        let (ip, port) = s.split_once(':').ok_or_else(bad)?;
        let mut octets = [0u8; 4];
        let mut it = ip.split('.');
        for o in &mut octets {
            *o = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
        }
        if it.next().is_some() {
            return Err(bad());
        }
        Ok((octets, port.parse().map_err(|_| bad())?))
    };
    let (src_ip, src_port) = endpoint(src)?;
    let (dst_ip, dst_port) = endpoint(dst)?;
    Ok(FlowKey {
        src_ip,
        dst_ip,
        src_port,
        dst_port,
    })
}

// ----------------------------------------------------------------------
// Serialization
// ----------------------------------------------------------------------

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_opt(out: &mut String, v: Option<u64>) {
    match v {
        Some(n) => {
            let _ = write!(out, "{n}");
        }
        None => out.push_str("null"),
    }
}

fn write_hub(out: &mut String, hub: &HubCheckpoint) {
    let _ = write!(
        out,
        "{{\"recorder\":[{},{}],\"metrics\":[",
        hub.recorder.next_seq, hub.recorder.overwritten
    );
    for (i, (name, value)) in hub.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        write_str(out, name);
        let _ = write!(out, ",{value}]");
    }
    out.push_str("]}");
}

fn write_flow(out: &mut String, f: &FlowCheckpoint) {
    let s = &f.state;
    out.push_str("{\"key\":");
    write_str(out, &key_label(&f.key));
    let _ = write!(
        out,
        ",\"rx_pending\":{},\"snd_una\":{},\"snd_nxt\":{},\"seq_valid\":{},\"dupacks\":{},\"cc\":",
        f.rx_pending, s.snd_una.0, s.snd_nxt.0, s.seq_valid, s.dupacks
    );
    write_str(out, &s.cc_name);
    out.push_str(",\"cc_words\":[");
    for (i, w) in s.cc_words.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{w}");
    }
    let (wscale, learned, target) = s.rwnd;
    let _ = write!(
        out,
        "],\"rwnd\":[{},{},{}],\"vm_ecn\":{},\"rtt_probe\":",
        wscale, learned, target, s.vm_ecn
    );
    match s.rtt_probe {
        Some((seq, at)) => {
            let _ = write!(out, "[{},{}]", seq.0, at);
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"srtt\":");
    write_opt(out, s.srtt);
    let _ = write!(
        out,
        ",\"last_ack_activity\":{},\"fb_total\":{},\"fb_marked\":{},\"policed\":{},\"last_alpha\":",
        s.last_ack_activity, s.fb_total, s.fb_marked, s.policed
    );
    write_opt(out, s.last_alpha_micros);
    let _ = write!(
        out,
        ",\"rx_total\":{},\"rx_marked\":{},\"rx_total_lifetime\":{},\"rx_marked_lifetime\":{},\
         \"closing\":{},\"last_activity\":{}}}",
        s.rx_total,
        s.rx_marked,
        s.rx_total_lifetime,
        s.rx_marked_lifetime,
        s.closing,
        s.last_activity
    );
}

impl DatapathCheckpoint {
    /// Serialize as one deterministic `acdc-checkpoint/v1` JSON line:
    /// same checkpoint ⇒ same bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.flows.len() * 384);
        let _ = write!(
            out,
            "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"at\":{},\"workers\":{},\"gc_epoch\":{},\
             \"overload_seen\":{},\"health\":{{\"rung\":{},\"trace\":[",
            self.at, self.workers, self.gc_epoch, self.overload_seen, self.health_rung
        );
        for (i, (t, r)) in self.health_trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{t},{r}]");
        }
        out.push_str("]},\"flows\":[");
        for (i, f) in self.flows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_flow(&mut out, f);
        }
        out.push_str("],\"main_hub\":");
        write_hub(&mut out, &self.main_hub);
        out.push_str(",\"worker_hubs\":[");
        for (i, h) in self.worker_hubs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_hub(&mut out, h);
        }
        out.push_str("]}");
        out
    }

    /// Parse a [`DatapathCheckpoint::to_json`] document. Any deviation —
    /// wrong schema tag, malformed JSON, missing or mistyped field — is
    /// an `Err`, never a default-filled checkpoint.
    pub fn from_json(text: &str) -> Result<DatapathCheckpoint, String> {
        let v = Json::parse(text)?;
        let schema = v.field("schema")?.str_()?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(format!(
                "unsupported checkpoint schema `{schema}` (expected `{CHECKPOINT_SCHEMA}`)"
            ));
        }
        let health = v.field("health")?;
        let health_trace = health
            .field("trace")?
            .arr()?
            .iter()
            .map(|e| {
                let pair = e.arr()?;
                if pair.len() != 2 {
                    return Err("health trace entry is not a [time, rung] pair".to_string());
                }
                let rung = pair[1].num()?;
                Ok((
                    pair[0].num()?,
                    u8::try_from(rung).map_err(|_| format!("health rung {rung} out of range"))?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let flows = v
            .field("flows")?
            .arr()?
            .iter()
            .map(parse_flow)
            .collect::<Result<Vec<_>, String>>()?;
        let worker_hubs = v
            .field("worker_hubs")?
            .arr()?
            .iter()
            .map(parse_hub)
            .collect::<Result<Vec<_>, String>>()?;
        let health_rung = health.field("rung")?.num()?;
        Ok(DatapathCheckpoint {
            at: v.field("at")?.num()?,
            workers: usize::try_from(v.field("workers")?.num()?)
                .map_err(|_| "worker count out of range".to_string())?,
            gc_epoch: v.field("gc_epoch")?.num()?,
            overload_seen: v.field("overload_seen")?.boolean()?,
            health_rung: u8::try_from(health_rung)
                .map_err(|_| format!("health rung {health_rung} out of range"))?,
            health_trace,
            flows,
            main_hub: parse_hub(v.field("main_hub")?)?,
            worker_hubs,
        })
    }
}

fn parse_hub(v: &Json) -> Result<HubCheckpoint, String> {
    let rec = v.field("recorder")?.arr()?;
    if rec.len() != 2 {
        return Err("recorder checkpoint is not a [next_seq, overwritten] pair".to_string());
    }
    let metrics = v
        .field("metrics")?
        .arr()?
        .iter()
        .map(|m| {
            let pair = m.arr()?;
            if pair.len() != 2 {
                return Err("metric entry is not a [name, value] pair".to_string());
            }
            Ok((pair[0].str_()?.to_string(), pair[1].num()?))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(HubCheckpoint {
        metrics,
        recorder: RecorderCheckpoint {
            next_seq: rec[0].num()?,
            overwritten: rec[1].num()?,
        },
    })
}

fn parse_flow(v: &Json) -> Result<FlowCheckpoint, String> {
    use acdc_packet::SeqNumber;
    let seq = |name: &str| -> Result<SeqNumber, String> {
        let n = v.field(name)?.num()?;
        Ok(SeqNumber(u32::try_from(n).map_err(|_| {
            format!("`{name}` {n} exceeds the 32-bit sequence space")
        })?))
    };
    let rwnd = v.field("rwnd")?.arr()?;
    if rwnd.len() != 3 {
        return Err("rwnd is not a [wscale, learned, target] triple".to_string());
    }
    let wscale = rwnd[0].num()?;
    let rtt_probe = match v.field("rtt_probe")? {
        Json::Null => None,
        probe => {
            let pair = probe.arr()?;
            if pair.len() != 2 {
                return Err("rtt_probe is not a [seq, sent_at] pair".to_string());
            }
            let raw = pair[0].num()?;
            Some((
                SeqNumber(
                    u32::try_from(raw)
                        .map_err(|_| format!("rtt_probe seq {raw} exceeds 32 bits"))?,
                ),
                pair[1].num()?,
            ))
        }
    };
    let dupacks = v.field("dupacks")?.num()?;
    let state = FlowEntryState {
        snd_una: seq("snd_una")?,
        snd_nxt: seq("snd_nxt")?,
        seq_valid: v.field("seq_valid")?.boolean()?,
        dupacks: u32::try_from(dupacks).map_err(|_| format!("dupacks {dupacks} out of range"))?,
        cc_name: v.field("cc")?.str_()?.to_string(),
        cc_words: v
            .field("cc_words")?
            .arr()?
            .iter()
            .map(Json::num)
            .collect::<Result<Vec<_>, String>>()?,
        rwnd: (
            u8::try_from(wscale).map_err(|_| format!("wscale {wscale} out of range"))?,
            rwnd[1].boolean()?,
            rwnd[2].num()?,
        ),
        vm_ecn: v.field("vm_ecn")?.boolean()?,
        rtt_probe,
        srtt: v.field("srtt")?.opt_num()?,
        last_ack_activity: v.field("last_ack_activity")?.num()?,
        fb_total: v.field("fb_total")?.num()?,
        fb_marked: v.field("fb_marked")?.num()?,
        policed: v.field("policed")?.num()?,
        last_alpha_micros: v.field("last_alpha")?.opt_num()?,
        rx_total: v.field("rx_total")?.num()?,
        rx_marked: v.field("rx_marked")?.num()?,
        rx_total_lifetime: v.field("rx_total_lifetime")?.num()?,
        rx_marked_lifetime: v.field("rx_marked_lifetime")?.num()?,
        closing: v.field("closing")?.boolean()?,
        last_activity: v.field("last_activity")?.num()?,
    };
    Ok(FlowCheckpoint {
        key: parse_key_label(v.field("key")?.str_()?)?,
        rx_pending: v.field("rx_pending")?.boolean()?,
        state,
    })
}

// ----------------------------------------------------------------------
// Minimal JSON reader
// ----------------------------------------------------------------------

/// A parsed JSON value, restricted to what the checkpoint format uses:
/// objects (ordered pair lists — no hash maps, rule S001), arrays,
/// strings, booleans, `null`, and **unsigned 64-bit integers** (the
/// format has no floats and no negative numbers by construction).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Reader {
            b: text.as_bytes(),
            pos: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.pos != p.b.len() {
            return Err(p.err("trailing content after document"));
        }
        Ok(v)
    }

    fn field(&self, name: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{name}`")),
            _ => Err(format!("expected an object looking up `{name}`")),
        }
    }

    fn num(&self) -> Result<u64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("expected a number, got {other:?}")),
        }
    }

    fn opt_num(&self) -> Result<Option<u64>, String> {
        match self {
            Json::Null => Ok(None),
            other => other.num().map(Some),
        }
    }

    fn boolean(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("expected a boolean, got {other:?}")),
        }
    }

    fn str_(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected a string, got {other:?}")),
        }
    }

    fn arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(format!("expected an array, got {other:?}")),
        }
    }
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn err(&self, msg: &str) -> String {
        format!("checkpoint parse error at byte {}: {msg}", self.pos)
    }

    fn ws(&mut self) {
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", char::from(c))))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if let Some(c) = self.b.get(self.pos) {
            if matches!(c, b'.' | b'e' | b'E' | b'-' | b'+') {
                return Err(self.err("checkpoint numbers are unsigned integers only"));
            }
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("number does not fit in u64"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.b.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(self.err("unsupported string escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar (the input is a &str, so
                    // the boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.b[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let value = self.value()?;
            out.push((key, value));
            self.ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_packet::SeqNumber;

    fn key(p: u16) -> FlowKey {
        FlowKey {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 1, 2],
            src_port: p,
            dst_port: 80,
        }
    }

    fn sample_state() -> FlowEntryState {
        FlowEntryState {
            snd_una: SeqNumber(1000),
            snd_nxt: SeqNumber(6000),
            seq_valid: true,
            dupacks: 2,
            cc_name: "dctcp".to_string(),
            cc_words: vec![14480, u64::MAX, 250_000, 0, 0, 1, 5_000_000, 0, 0],
            rwnd: (7, false, 14480),
            vm_ecn: true,
            rtt_probe: Some((SeqNumber(6000), 123_456)),
            srtt: Some(250_000),
            last_ack_activity: 1_000_000,
            fb_total: 42,
            fb_marked: 7,
            policed: 1,
            last_alpha_micros: None,
            rx_total: 100,
            rx_marked: 10,
            rx_total_lifetime: 9_000,
            rx_marked_lifetime: 900,
            closing: false,
            last_activity: 1_100_000,
        }
    }

    fn sample_checkpoint() -> DatapathCheckpoint {
        DatapathCheckpoint {
            at: 5_000_000_000,
            workers: 2,
            gc_epoch: 4_000_000_000,
            overload_seen: true,
            health_rung: 1,
            health_trace: vec![(10, 1), (20, 0), (30, 1)],
            flows: vec![
                FlowCheckpoint {
                    key: key(40_000),
                    rx_pending: true,
                    state: sample_state(),
                },
                FlowCheckpoint {
                    key: key(40_001),
                    rx_pending: false,
                    state: FlowEntryState {
                        rtt_probe: None,
                        srtt: None,
                        rwnd: (0, true, 0),
                        ..sample_state()
                    },
                },
            ],
            main_hub: HubCheckpoint {
                metrics: vec![
                    ("acdc.flows".to_string(), 2),
                    ("acdc.packs_sent".to_string(), 9),
                ],
                recorder: RecorderCheckpoint {
                    next_seq: 17,
                    overwritten: 3,
                },
            },
            worker_hubs: vec![
                HubCheckpoint {
                    metrics: vec![("acdc.packs_sent".to_string(), 4)],
                    recorder: RecorderCheckpoint {
                        next_seq: 4,
                        overwritten: 0,
                    },
                },
                HubCheckpoint {
                    metrics: Vec::new(),
                    recorder: RecorderCheckpoint {
                        next_seq: 0,
                        overwritten: 0,
                    },
                },
            ],
        }
    }

    #[test]
    fn key_label_round_trips() {
        let k = key(40_000);
        assert_eq!(key_label(&k), "10.0.0.1:40000>10.0.1.2:80");
        assert_eq!(parse_key_label(&key_label(&k)).unwrap(), k);
        for bad in ["", "10.0.0.1:1", "a.b.c.d:1>e.f.g.h:2", "1.2.3:4>5.6.7.8:9"] {
            assert!(parse_key_label(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let ckpt = sample_checkpoint();
        let json = ckpt.to_json();
        let back = DatapathCheckpoint::from_json(&json).expect("parses");
        assert_eq!(back, ckpt);
        // Determinism: serialize → parse → serialize is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn schema_and_shape_violations_are_errors() {
        let good = sample_checkpoint().to_json();
        let wrong_schema = good.replace("acdc-checkpoint/v1", "acdc-checkpoint/v0");
        assert!(DatapathCheckpoint::from_json(&wrong_schema)
            .unwrap_err()
            .contains("unsupported checkpoint schema"));
        assert!(DatapathCheckpoint::from_json(&good[..good.len() - 1]).is_err());
        assert!(DatapathCheckpoint::from_json("{}").is_err());
        assert!(DatapathCheckpoint::from_json("").is_err());
        let float = good.replacen("\"at\":5000000000", "\"at\":5.5", 1);
        assert!(DatapathCheckpoint::from_json(&float)
            .unwrap_err()
            .contains("unsigned integers only"));
    }

    #[test]
    fn hub_apply_restores_values_and_fails_on_unknown_names() {
        let hub = Telemetry::new(8);
        let c = hub.registry().counter("acdc.packs_sent");
        let ckpt = HubCheckpoint {
            metrics: vec![("acdc.packs_sent".to_string(), 12)],
            recorder: RecorderCheckpoint {
                next_seq: 40,
                overwritten: 2,
            },
        };
        ckpt.apply(&hub).expect("applies");
        assert_eq!(c.get(), 12);
        assert_eq!(hub.recorder().total_recorded(), 40);
        assert_eq!(hub.recorder().overwritten(), 2);
        // The next event continues the checkpointed numbering.
        hub.record(
            1,
            acdc_telemetry::NO_FLOW,
            acdc_telemetry::EventKind::FlowCreated,
        );
        assert_eq!(hub.recorder().events()[0].seq, 40);

        let unknown = HubCheckpoint {
            metrics: vec![("no.such.metric".to_string(), 1)],
            recorder: RecorderCheckpoint {
                next_seq: 0,
                overwritten: 0,
            },
        };
        assert!(unknown.apply(&hub).unwrap_err().contains("no.such.metric"));
    }
}
