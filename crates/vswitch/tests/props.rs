//! Property-based tests for the AC/DC datapath: whatever packets fly
//! through it, invariants must hold.

use acdc_packet::{
    Ecn, FlowKey, Ipv4Repr, Segment, SeqNumber, TcpFlags, TcpOption, TcpRepr, PROTO_TCP,
};
use acdc_vswitch::{AcdcConfig, AcdcDatapath, Verdict};
use proptest::prelude::*;

const A: [u8; 4] = [10, 0, 0, 1];
const B: [u8; 4] = [10, 0, 0, 2];

fn ip(src: [u8; 4], dst: [u8; 4], ecn: Ecn) -> Ipv4Repr {
    Ipv4Repr {
        src_addr: src,
        dst_addr: dst,
        protocol: PROTO_TCP,
        ecn,
        payload_len: 0,
        ttl: 64,
    }
}

/// An abstract packet event for the generator.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Syn { ecn: bool, wscale: u8 },
    DataOut { off: u32, len: u16, ce_in_net: bool },
    AckIn { off: u32, wnd: u16, ece: bool },
    FinOut { off: u32 },
}

fn arb_ev() -> impl Strategy<Value = Ev> {
    prop_oneof![
        1 => (any::<bool>(), 0u8..=14).prop_map(|(ecn, wscale)| Ev::Syn { ecn, wscale }),
        5 => (0u32..100_000, 1u16..9000, any::<bool>())
            .prop_map(|(off, len, ce_in_net)| Ev::DataOut { off, len, ce_in_net }),
        5 => (0u32..100_000, any::<u16>(), any::<bool>())
            .prop_map(|(off, wnd, ece)| Ev::AckIn { off, wnd, ece }),
        1 => (0u32..100_000).prop_map(|off| Ev::FinOut { off }),
    ]
}

fn data_seg(off: u32, len: usize, ecn: Ecn) -> Segment {
    let mut t = TcpRepr::new(40_000, 5_001);
    t.seq = SeqNumber(1_001 + off);
    t.ack = SeqNumber(9_001);
    t.flags = TcpFlags::ACK;
    t.window = 500;
    Segment::new_tcp(ip(A, B, ecn), t, len)
}

fn ack_seg(off: u32, wnd: u16, ece: bool) -> Segment {
    let mut t = TcpRepr::new(5_001, 40_000);
    t.seq = SeqNumber(9_001);
    t.ack = SeqNumber(1_001 + off);
    t.flags = if ece {
        TcpFlags::ACK | TcpFlags::ECE
    } else {
        TcpFlags::ACK
    };
    t.window = wnd;
    Segment::new_tcp(ip(B, A, Ecn::NotEct), t, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary event sequences never panic, every forwarded packet has
    /// valid checksums, and no AC/DC metadata (reserved bits, PACK
    /// options) leaks toward the guest.
    #[test]
    fn datapath_invariants_under_random_traffic(events in prop::collection::vec(arb_ev(), 1..120)) {
        // Sender host A and receiver host B, wired back to back.
        let dpa = AcdcDatapath::new(AcdcConfig::dctcp(1500));
        let dpb = AcdcDatapath::new(AcdcConfig::dctcp(1500));
        let mut now = 0u64;
        for ev in &events {
            now += 10_000;
            match *ev {
                Ev::Syn { ecn, wscale } => {
                    let mut t = TcpRepr::new(40_000, 5_001);
                    t.seq = SeqNumber(1_000);
                    t.flags = TcpFlags::SYN;
                    if ecn {
                        t.flags |= TcpFlags::ECE | TcpFlags::CWR;
                    }
                    t.options = vec![TcpOption::WindowScale(wscale)];
                    let syn = Segment::new_tcp(ip(A, B, Ecn::NotEct), t, 0);
                    if let Some(s) = dpa.egress(now, syn).forwarded() {
                        prop_assert!(s.verify_checksums());
                        let _ = dpb.ingress(now, s);
                    }
                }
                Ev::DataOut { off, len, ce_in_net } => {
                    let seg = data_seg(off, usize::from(len), Ecn::NotEct);
                    if let Some(mut s) = dpa.egress(now, seg).forwarded() {
                        prop_assert!(s.verify_checksums(), "egress checksum");
                        prop_assert!(s.ecn().is_ect(), "AC/DC must force ECT on data");
                        if ce_in_net {
                            s.mark_ce();
                        }
                        if let Some(d) = dpb.ingress(now, s).forwarded() {
                            prop_assert!(d.verify_checksums(), "ingress checksum");
                            prop_assert!(!d.tcp().vm_ece(), "reserved bit leaked");
                            prop_assert!(!d.tcp().is_fack(), "fack bit leaked");
                            prop_assert!(!d.ecn().is_ce(), "CE leaked to guest");
                        }
                    }
                }
                Ev::AckIn { off, wnd, ece } => {
                    // The ACK passes B's egress (may gain a PACK) then A's
                    // ingress (must lose it again).
                    let ack = ack_seg(off, wnd, ece);
                    match dpb.egress(now, ack) {
                        Verdict::Forward(a) => {
                            prop_assert!(a.verify_checksums());
                            if let Some(d) = dpa.ingress(now, a).forwarded() {
                                prop_assert!(d.verify_checksums());
                                prop_assert!(d.tcp().pack_option().is_none(), "PACK leaked");
                                prop_assert!(!d.tcp_flags().contains(TcpFlags::ECE), "ECE leaked");
                                prop_assert!(d.tcp().window() <= wnd, "window may only shrink");
                            }
                        }
                        Verdict::ForwardWithExtra(a, fack) => {
                            prop_assert!(fack.tcp().is_fack());
                            prop_assert!(matches!(
                                dpa.ingress(now, fack),
                                Verdict::Drop(_)
                            ));
                            let _ = dpa.ingress(now, a);
                        }
                        Verdict::Drop(_) => {}
                    }
                }
                Ev::FinOut { off } => {
                    let mut t = TcpRepr::new(40_000, 5_001);
                    t.seq = SeqNumber(1_001 + off);
                    t.ack = SeqNumber(9_001);
                    t.flags = TcpFlags::ACK | TcpFlags::FIN;
                    let fin = Segment::new_tcp(ip(A, B, Ecn::NotEct), t, 0);
                    if let Some(s) = dpa.egress(now, fin).forwarded() {
                        let _ = dpb.ingress(now, s);
                    }
                }
            }
        }
        // Congestion windows in every tracked entry stay positive.
        dpa.table().for_each(|_, e| {
            assert!(e.cc.cwnd() >= 1);
        });
    }

    /// PACK conservation: the marked bytes the sender module accumulates
    /// equal the CE-marked payload bytes the receiver module saw.
    #[test]
    fn feedback_conserves_marked_bytes(
        pkts in prop::collection::vec((1u16..9000, any::<bool>()), 1..40)
    ) {
        let dpa = AcdcDatapath::new(AcdcConfig::dctcp(9000));
        let dpb = AcdcDatapath::new(AcdcConfig::dctcp(9000));
        let mut now = 0;
        let mut off = 0u32;
        let mut marked_sent = 0u64;
        let mut total_sent = 0u64;
        let mut marked_reported = 0u64;
        let mut total_reported = 0u64;
        for &(len, ce) in &pkts {
            now += 1_000;
            let seg = data_seg(off, usize::from(len), Ecn::NotEct);
            off += u32::from(len);
            let mut s = dpa.egress(now, seg).forwarded().unwrap();
            if ce {
                s.mark_ce();
                marked_sent += u64::from(len);
            }
            total_sent += u64::from(len);
            dpb.ingress(now, s).forwarded().unwrap();
            // The receiver guest acks; feedback rides along.
            let ack = ack_seg(off, 60_000, false);
            if let Some(a) = dpb.egress(now, ack).forwarded() {
                if let Some(p) = a.tcp().pack_option() {
                    total_reported += u64::from(p.total_bytes);
                    marked_reported += u64::from(p.marked_bytes);
                }
                let _ = dpa.ingress(now, a);
            }
        }
        prop_assert_eq!(total_reported, total_sent);
        prop_assert_eq!(marked_reported, marked_sent);
    }

    /// Flow-table garbage collection never loses live flows or keeps dead
    /// ones past the idle timeout.
    #[test]
    fn gc_respects_liveness(live in 1usize..40, dead in 1usize..40) {
        let dp = AcdcDatapath::new(AcdcConfig::dctcp(1500));
        for i in 0..(live + dead) {
            let mut t = TcpRepr::new(40_000 + i as u16, 5_001);
            t.seq = SeqNumber(1);
            t.flags = TcpFlags::ACK;
            let dst = [10, 9, (i >> 8) as u8, i as u8];
            let seg = Segment::new_tcp(ip(A, dst, Ecn::NotEct), t, 100);
            // Live flows touched late, dead flows only at t=0.
            let at = if i < live { 1_000_000_000 } else { 0 };
            let _ = dp.egress(at, seg);
        }
        let collected = dp.gc(1_000_000_001, 500_000_000);
        prop_assert_eq!(collected, dead);
        prop_assert_eq!(dp.flows(), live);
        let keys_left = {
            let mut v = Vec::new();
            dp.table().for_each(|k, _| v.push(*k));
            v
        };
        let all_live = keys_left.iter().all(|k: &FlowKey| {
            let i = (usize::from(k.src_port)) - 40_000;
            i < live
        });
        prop_assert!(all_live);
    }
}
