//! End-to-end tests of the AC/DC datapath: two vSwitches (host A = data
//! sender, host B = data receiver) processing hand-crafted packets, as in
//! Figure 3 of the paper.

use acdc_cc::CcKind;
use acdc_packet::{
    Ecn, FlowKey, Ipv4Repr, PackOption, Segment, SeqNumber, TcpFlags, TcpOption, TcpRepr, PROTO_TCP,
};
use acdc_vswitch::{
    AcdcConfig, AcdcDatapath, AdmissionPolicy, CcPolicy, DropReason, HealthState, Verdict,
};

const A: [u8; 4] = [10, 0, 0, 1];
const B: [u8; 4] = [10, 0, 0, 2];
const AP: u16 = 40_000;
const BP: u16 = 5_001;
const MTU: usize = 1_500;
const MSS: usize = 1_448;
const ISS_A: u32 = 1_000;
const ISS_B: u32 = 2_000_000;

fn ip(src: [u8; 4], dst: [u8; 4], ecn: Ecn) -> Ipv4Repr {
    Ipv4Repr {
        src_addr: src,
        dst_addr: dst,
        protocol: PROTO_TCP,
        ecn,
        payload_len: 0,
        ttl: 64,
    }
}

fn syn(ecn_capable: bool, wscale: u8) -> Segment {
    let mut t = TcpRepr::new(AP, BP);
    t.seq = SeqNumber(ISS_A);
    t.flags = TcpFlags::SYN;
    if ecn_capable {
        t.flags |= TcpFlags::ECE | TcpFlags::CWR;
    }
    t.window = 65_000;
    t.options = vec![
        TcpOption::MaxSegmentSize(MSS as u16),
        TcpOption::WindowScale(wscale),
    ];
    Segment::new_tcp(ip(A, B, Ecn::NotEct), t, 0)
}

fn synack(ecn_capable: bool, wscale: u8) -> Segment {
    let mut t = TcpRepr::new(BP, AP);
    t.seq = SeqNumber(ISS_B);
    t.ack = SeqNumber(ISS_A + 1);
    t.flags = TcpFlags::SYN | TcpFlags::ACK;
    if ecn_capable {
        t.flags |= TcpFlags::ECE;
    }
    t.window = 65_000;
    t.options = vec![
        TcpOption::MaxSegmentSize(MSS as u16),
        TcpOption::WindowScale(wscale),
    ];
    Segment::new_tcp(ip(B, A, Ecn::NotEct), t, 0)
}

/// Data from A's guest: `off` bytes into the stream, `len` payload.
fn data(off: u32, len: usize, ecn: Ecn) -> Segment {
    let mut t = TcpRepr::new(AP, BP);
    t.seq = SeqNumber(ISS_A + 1 + off);
    t.ack = SeqNumber(ISS_B + 1);
    t.flags = TcpFlags::ACK;
    t.window = 127; // raw, scaled by A's wscale
    Segment::new_tcp(ip(A, B, ecn), t, len)
}

/// ACK from B's guest covering `off` stream bytes, advertising `raw_wnd`.
fn ack(off: u32, raw_wnd: u16) -> Segment {
    let mut t = TcpRepr::new(BP, AP);
    t.seq = SeqNumber(ISS_B + 1);
    t.ack = SeqNumber(ISS_A + 1 + off);
    t.flags = TcpFlags::ACK;
    t.window = raw_wnd;
    Segment::new_tcp(ip(B, A, Ecn::NotEct), t, 0)
}

fn key_ab() -> FlowKey {
    FlowKey {
        src_ip: A,
        dst_ip: B,
        src_port: AP,
        dst_port: BP,
    }
}

/// Set up two datapaths and run the handshake through both.
fn rig(guest_ecn: bool) -> (AcdcDatapath, AcdcDatapath) {
    let dpa = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    let dpb = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    handshake(&dpa, &dpb, guest_ecn);
    (dpa, dpb)
}

fn handshake(dpa: &AcdcDatapath, dpb: &AcdcDatapath, guest_ecn: bool) {
    // A guest SYN → dpa egress → wire → dpb ingress → B guest.
    let s = dpa.egress(0, syn(guest_ecn, 9)).forwarded().unwrap();
    let s = dpb.ingress(1_000, s).forwarded().unwrap();
    assert!(s.tcp_flags().contains(TcpFlags::SYN));
    // B guest SYNACK back.
    let sa = dpb.egress(2_000, synack(guest_ecn, 9)).forwarded().unwrap();
    let sa = dpa.ingress(3_000, sa).forwarded().unwrap();
    assert!(sa.tcp_flags().contains(TcpFlags::ACK));
}

#[test]
fn handshake_creates_entries_and_records_wscale() {
    let (dpa, dpb) = rig(false);
    assert!(dpa.flows() >= 2, "two directions tracked");
    assert!(dpb.flows() >= 2);
    let e = dpa.table().get(&key_ab()).unwrap();
    let e = e.lock();
    // ACKs for A→B data come from B, which advertised wscale 9.
    assert_eq!(e.rwnd.wscale(), 9);
    assert!(e.seq_valid);
    assert_eq!(e.snd_una, SeqNumber(ISS_A + 1));
}

#[test]
fn egress_data_forced_ect_and_reserved_bit_reflects_guest() {
    // Non-ECN guest: packets leave NotEct, must become ECT0 + bit clear.
    let (dpa, _) = rig(false);
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    assert_eq!(d.ecn(), Ecn::Ect0, "AC/DC forces ECT");
    assert!(!d.tcp().vm_ece());
    assert!(d.verify_checksums());

    // ECN guest: bit set.
    let (dpa, _) = rig(true);
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::Ect0))
        .forwarded()
        .unwrap();
    assert_eq!(d.ecn(), Ecn::Ect0);
    assert!(d.tcp().vm_ece());
    assert!(d.verify_checksums());
}

#[test]
fn receiver_module_strips_ce_and_counts() {
    let (dpa, dpb) = rig(false);
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    let mut d = d;
    d.mark_ce(); // switch marks it
    let delivered = dpb.ingress(20_000, d).forwarded().unwrap();
    // Guest was not ECN-capable → delivered NotEct, reserved bits clear.
    assert_eq!(delivered.ecn(), Ecn::NotEct);
    assert!(!delivered.tcp().vm_ece());
    assert!(delivered.verify_checksums());
    let e = dpb.table().get(&key_ab()).unwrap();
    let e = e.lock();
    assert_eq!(e.rx_total, MSS as u64);
    assert_eq!(e.rx_marked, MSS as u64);
}

#[test]
fn ce_stripped_to_ect_for_ecn_guest() {
    let (dpa, dpb) = rig(true);
    let mut d = dpa
        .egress(10_000, data(0, MSS, Ecn::Ect0))
        .forwarded()
        .unwrap();
    d.mark_ce();
    let delivered = dpb.ingress(20_000, d).forwarded().unwrap();
    // Guest spoke ECN → restore ECT0 (hide only the CE mark).
    assert_eq!(delivered.ecn(), Ecn::Ect0);
    assert!(delivered.verify_checksums());
}

#[test]
fn ack_carries_pack_and_sender_consumes_it() {
    let (dpa, dpb) = rig(false);
    // Data A→B, marked in the network.
    let mut d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    d.mark_ce();
    dpb.ingress(20_000, d).forwarded().unwrap();

    // B guest ACKs; dpb egress must attach a PACK with the counts.
    let a = dpb
        .egress(21_000, ack(MSS as u32, 65_000))
        .forwarded()
        .unwrap();
    let pack = a.tcp().pack_option().expect("PACK attached");
    assert_eq!(pack.total_bytes, MSS as u32);
    assert_eq!(pack.marked_bytes, MSS as u32);
    assert!(a.verify_checksums());

    // dpa ingress: PACK stripped before the guest sees the ACK.
    let delivered = dpa.ingress(22_000, a).forwarded().unwrap();
    assert!(delivered.tcp().pack_option().is_none());
    assert!(delivered.verify_checksums());
    assert_eq!(
        dpa.counters()
            .packs_received
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    // Connection tracking advanced.
    let e = dpa.table().get(&key_ab()).unwrap();
    assert_eq!(e.lock().snd_una, SeqNumber(ISS_A + 1 + MSS as u32));
}

#[test]
fn rwnd_rewritten_smaller_with_wscale() {
    let (dpa, dpb) = rig(false);
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    dpb.ingress(20_000, d).forwarded().unwrap();
    let a = dpb
        .egress(21_000, ack(MSS as u32, 65_000))
        .forwarded()
        .unwrap();
    let delivered = dpa.ingress(22_000, a).forwarded().unwrap();

    let e = dpa.table().get(&key_ab()).unwrap();
    let cwnd = e.lock().cc.cwnd();
    let expect_raw = (cwnd >> 9).max(1) as u16;
    assert_eq!(delivered.tcp().window(), expect_raw);
    assert!(u64::from(delivered.tcp().window()) < 65_000);
    assert!(delivered.verify_checksums());
    assert!(
        dpa.counters()
            .rwnd_rewrites
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
}

#[test]
fn rwnd_not_rewritten_when_guest_window_already_smaller() {
    let (dpa, dpb) = rig(false);
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    dpb.ingress(20_000, d).forwarded().unwrap();
    // Guest advertises raw 2 (scaled: 1 KB) — far below cwnd.
    let a = dpb.egress(21_000, ack(MSS as u32, 2)).forwarded().unwrap();
    let delivered = dpa.ingress(22_000, a).forwarded().unwrap();
    assert_eq!(delivered.tcp().window(), 2, "original smaller window kept");
}

#[test]
fn ece_feedback_hidden_from_guest() {
    let (dpa, dpb) = rig(true);
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::Ect0))
        .forwarded()
        .unwrap();
    dpb.ingress(20_000, d).forwarded().unwrap();
    // ACK with ECE set (guest B echoing a mark).
    let mut raw_ack = ack(MSS as u32, 65_000);
    {
        let mut t = raw_ack.tcp_repr().unwrap();
        t.flags |= TcpFlags::ECE;
        raw_ack = Segment::new_tcp(Ipv4Repr::parse(&raw_ack.ip()).unwrap(), t, 0);
    }
    let a = dpb.egress(21_000, raw_ack).forwarded().unwrap();
    let delivered = dpa.ingress(22_000, a).forwarded().unwrap();
    assert!(
        !delivered.tcp_flags().contains(TcpFlags::ECE),
        "ECE must be stripped so the guest does not also back off"
    );
    assert!(delivered.verify_checksums());
}

#[test]
fn pack_overflow_generates_fack() {
    let (dpa, dpb) = rig(false);
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    dpb.ingress(20_000, d).forwarded().unwrap();

    // B sends a full-MTU data packet that also acks: no room for PACK.
    let mut t = TcpRepr::new(BP, AP);
    t.seq = SeqNumber(ISS_B + 1);
    t.ack = SeqNumber(ISS_A + 1 + MSS as u32);
    t.flags = TcpFlags::ACK;
    t.window = 65_000;
    // Full-MTU frame: 20 B IP + 20 B TCP + 1460 B payload.
    let full = Segment::new_tcp(ip(B, A, Ecn::NotEct), t, MTU - 40);
    assert_eq!(full.wire_len(), MTU);

    match dpb.egress(21_000, full) {
        Verdict::ForwardWithExtra(main, fack) => {
            assert!(main.tcp().pack_option().is_none());
            assert!(fack.tcp().is_fack());
            assert_eq!(fack.payload_len(), 0);
            let p = fack.tcp().pack_option().unwrap();
            assert_eq!(p.total_bytes, MSS as u32);
            assert!(p.marked_bytes <= p.total_bytes);
            assert!(fack.verify_checksums());

            // The FACK is absorbed at the sender side.
            match dpa.ingress(22_000, fack) {
                Verdict::Drop(DropReason::FackConsumed) => {}
                v => panic!("expected FACK drop, got {v:?}"),
            }
        }
        v => panic!("expected FACK generation, got {v:?}"),
    }
}

#[test]
fn policing_drops_nonconforming_flow() {
    let mut cfg = AcdcConfig::dctcp(MTU);
    cfg.police_slack_bytes = Some(3 * MSS as u64);
    let dpa = AcdcDatapath::new(cfg);
    let dpb = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    handshake(&dpa, &dpb, false);

    // Initial vSwitch cwnd = 10 MSS; slack 3 MSS → anything past 13 MSS
    // outstanding must be dropped.
    let mut dropped = 0;
    for i in 0..20u32 {
        match dpa.egress(
            10_000 + u64::from(i),
            data(i * MSS as u32, MSS, Ecn::NotEct),
        ) {
            Verdict::Drop(DropReason::Policed) => dropped += 1,
            Verdict::Forward(_) => {}
            v => panic!("unexpected {v:?}"),
        }
    }
    assert_eq!(dropped, 7, "20 sent, 13 allowed");
    let e = dpa.table().get(&key_ab()).unwrap();
    assert_eq!(e.lock().policed, 7);
}

#[test]
fn log_only_mode_computes_but_does_not_rewrite() {
    let mut cfg = AcdcConfig::dctcp(MTU);
    cfg.log_only = true;
    cfg.trace_windows = true;
    let dpa = AcdcDatapath::new(cfg);
    let dpb = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    handshake(&dpa, &dpb, false);

    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    dpb.ingress(20_000, d).forwarded().unwrap();
    let a = dpb
        .egress(21_000, ack(MSS as u32, 65_000))
        .forwarded()
        .unwrap();
    let delivered = dpa.ingress(22_000, a).forwarded().unwrap();
    assert_eq!(delivered.tcp().window(), 65_000, "log-only: untouched");

    let e = dpa.table().get(&key_ab()).unwrap();
    let e = e.lock();
    assert!(e.rwnd.target() > 0);
    assert!(e.rwnd.trace().unwrap().len() == 1);
}

#[test]
fn dupacks_trigger_inferred_fast_retransmit() {
    let (dpa, dpb) = rig(false);
    for i in 0..5u32 {
        let d = dpa
            .egress(
                10_000 + u64::from(i),
                data(i * MSS as u32, MSS, Ecn::NotEct),
            )
            .forwarded()
            .unwrap();
        dpb.ingress(11_000 + u64::from(i), d).forwarded().unwrap();
    }
    // First ACK advances; then three duplicates.
    let a = dpb
        .egress(21_000, ack(MSS as u32, 65_000))
        .forwarded()
        .unwrap();
    dpa.ingress(22_000, a).forwarded().unwrap();
    let e = dpa.table().get(&key_ab()).unwrap();
    let cwnd_before = e.lock().cc.cwnd();
    for i in 0..3 {
        let a = dpb
            .egress(23_000 + i, ack(MSS as u32, 65_000))
            .forwarded()
            .unwrap();
        dpa.ingress(24_000 + i, a).forwarded().unwrap();
    }
    assert_eq!(
        dpa.counters()
            .inferred_fast_rtx
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    let e = dpa.table().get(&key_ab()).unwrap();
    assert!(e.lock().cc.cwnd() < cwnd_before, "window cut on 3 dupacks");
}

#[test]
fn disabled_datapath_is_passthrough() {
    let dp = AcdcDatapath::new(AcdcConfig::disabled(MTU));
    let before = data(0, MSS, Ecn::NotEct);
    let bytes_before = before.header_bytes().to_vec();
    let out = dp.egress(0, before).forwarded().unwrap();
    assert_eq!(out.header_bytes(), &bytes_before[..]);
    assert_eq!(dp.flows(), 0);
    let out = dp.ingress(0, out).forwarded().unwrap();
    assert_eq!(out.header_bytes(), &bytes_before[..]);
}

#[test]
fn per_flow_policy_assigns_different_algorithms() {
    let mut cfg = AcdcConfig::dctcp(MTU);
    cfg.policy = CcPolicy::WanSplit {
        dc_prefix: 10,
        datacenter: CcKind::Dctcp,
        wan: CcKind::Cubic,
    };
    let dp = AcdcDatapath::new(cfg);
    // Intra-DC data flow.
    dp.egress(0, data(0, MSS, Ecn::NotEct));
    let e = dp.table().get(&key_ab()).unwrap();
    assert_eq!(e.lock().cc.name(), "dctcp");

    // WAN-bound flow.
    let mut t = TcpRepr::new(AP, 443);
    t.seq = SeqNumber(77);
    t.flags = TcpFlags::ACK;
    let wan = Segment::new_tcp(ip(A, [93, 184, 216, 34], Ecn::NotEct), t, MSS);
    let wan_key = wan.flow_key();
    dp.egress(0, wan);
    let e = dp.table().get(&wan_key).unwrap();
    assert_eq!(e.lock().cc.name(), "cubic");
}

#[test]
fn fin_marks_closing_and_gc_collects() {
    let (dpa, _dpb) = rig(false);
    let flows_before = dpa.flows();
    let mut t = TcpRepr::new(AP, BP);
    t.seq = SeqNumber(ISS_A + 1);
    t.ack = SeqNumber(ISS_B + 1);
    t.flags = TcpFlags::ACK | TcpFlags::FIN;
    let fin = Segment::new_tcp(ip(A, B, Ecn::NotEct), t, 0);
    dpa.egress(50_000, fin);
    let collected = dpa.gc(60_000, u64::MAX);
    assert!(collected >= 1, "FIN-marked entry collected");
    assert!(dpa.flows() < flows_before);
}

#[test]
fn window_update_generation() {
    let (dpa, dpb) = rig(false);
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    dpb.ingress(20_000, d).forwarded().unwrap();
    let wu = dpa.make_window_update(&key_ab()).expect("window update");
    assert!(wu.is_pure_ack());
    assert_eq!(wu.flow_key(), key_ab().reverse());
    let e = dpa.table().get(&key_ab()).unwrap();
    let raw = (e.lock().cc.cwnd() >> 9).max(1) as u16;
    assert_eq!(wu.tcp().window(), raw);
    assert!(wu.verify_checksums());
}

#[test]
fn dup_ack_generation() {
    let (dpa, dpb) = rig(false);
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    dpb.ingress(20_000, d).forwarded().unwrap();
    let dups = dpa.make_dup_acks(&key_ab(), 3);
    assert_eq!(dups.len(), 3);
    for dup in &dups {
        assert!(dup.is_pure_ack());
        assert_eq!(dup.tcp().ack_number(), SeqNumber(ISS_A + 1));
        assert!(dup.verify_checksums());
    }
}

#[test]
fn inactivity_tick_infers_timeout() {
    let (dpa, dpb) = rig(false);
    // Send data that never gets acked.
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    dpb.ingress(11_000, d).forwarded().unwrap();
    let e = dpa.table().get(&key_ab()).unwrap();
    let cwnd_before = e.lock().cc.cwnd();
    // 50 ms later (RTOmin floor is 10 ms) the tick must infer a timeout.
    dpa.tick(50_000_000);
    assert_eq!(
        dpa.counters()
            .inferred_timeouts
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    let e = dpa.table().get(&key_ab()).unwrap();
    assert!(e.lock().cc.cwnd() < cwnd_before);
    // A second immediate tick must not double-fire.
    dpa.tick(50_000_001);
    assert_eq!(
        dpa.counters()
            .inferred_timeouts
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn pack_feedback_drives_dctcp_cut() {
    let (dpa, dpb) = rig(false);
    // Establish some progress first so cwnd > floor.
    let mut off = 0u32;
    for i in 0..10 {
        let d = dpa
            .egress(10_000 + i, data(off, MSS, Ecn::NotEct))
            .forwarded()
            .unwrap();
        dpb.ingress(11_000 + i, d).forwarded().unwrap();
        off += MSS as u32;
        let a = dpb
            .egress(12_000 + i, ack(off, 65_000))
            .forwarded()
            .unwrap();
        dpa.ingress(13_000 + i, a).forwarded().unwrap();
    }
    let e = dpa.table().get(&key_ab()).unwrap();
    let before = e.lock().cc.cwnd();

    // Now a marked round: data CE-marked → PACK reports it → cut.
    let mut d = dpa
        .egress(50_000, data(off, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    d.mark_ce();
    dpb.ingress(51_000, d).forwarded().unwrap();
    off += MSS as u32;
    let a = dpb.egress(52_000, ack(off, 65_000)).forwarded().unwrap();
    assert!(a.tcp().pack_option().unwrap().marked_bytes > 0);
    dpa.ingress(53_000, a).forwarded().unwrap();

    let e = dpa.table().get(&key_ab()).unwrap();
    assert!(
        e.lock().cc.cwnd() < before,
        "marked feedback must shrink the enforced window"
    );
}

#[test]
fn pack_option_survives_only_between_vswitches() {
    // A PACK injected from outside (malformed/spoofed) still gets stripped
    // before reaching the guest.
    let (dpa, dpb) = rig(false);
    let d = dpa
        .egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    dpb.ingress(20_000, d).forwarded().unwrap();
    let mut t = TcpRepr::new(BP, AP);
    t.seq = SeqNumber(ISS_B + 1);
    t.ack = SeqNumber(ISS_A + 1 + MSS as u32);
    t.flags = TcpFlags::ACK;
    t.window = 65_000;
    t.options = vec![TcpOption::Pack(PackOption {
        total_bytes: 999,
        marked_bytes: 0,
    })];
    let spoofed = Segment::new_tcp(ip(B, A, Ecn::NotEct), t, 0);
    let delivered = dpa.ingress(30_000, spoofed).forwarded().unwrap();
    assert!(delivered.tcp().pack_option().is_none());
}

#[test]
fn udp_passes_through_untouched() {
    let dp = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    let udp = acdc_packet::UdpRepr {
        src_port: 5353,
        dst_port: 53,
        payload_len: 0,
    };
    let seg = acdc_packet::Segment::new_udp(
        acdc_packet::Ipv4Repr {
            src_addr: A,
            dst_addr: B,
            protocol: acdc_packet::PROTO_UDP,
            ecn: Ecn::NotEct,
            payload_len: 0,
            ttl: 64,
        },
        udp,
        256,
    );
    let bytes_before = seg.header_bytes().to_vec();
    let out = dp.egress(0, seg).forwarded().unwrap();
    assert_eq!(out.header_bytes(), &bytes_before[..], "no mangling");
    assert_eq!(out.ecn(), Ecn::NotEct, "UDP is not forced ECT");
    let out = dp.ingress(1, out).forwarded().unwrap();
    assert_eq!(out.header_bytes(), &bytes_before[..]);
    assert_eq!(dp.flows(), 0, "no connection tracking for UDP");
    assert_eq!(
        dp.counters()
            .non_tcp_passthrough
            .load(std::sync::atomic::Ordering::Relaxed),
        2
    );
}

#[test]
fn flow_stats_snapshot_reflects_activity() {
    let (dpa, dpb) = rig(false);
    let mut off = 0u32;
    for i in 0..5 {
        let mut d = dpa
            .egress(10_000 + i, data(off, MSS, Ecn::NotEct))
            .forwarded()
            .unwrap();
        if i % 2 == 0 {
            d.mark_ce();
        }
        dpb.ingress(11_000 + i, d).forwarded().unwrap();
        off += MSS as u32;
        let a = dpb
            .egress(12_000 + i, ack(off, 65_000))
            .forwarded()
            .unwrap();
        dpa.ingress(13_000 + i, a).forwarded().unwrap();
    }
    // Sender-side view: the enforced flow with its window and RTT.
    let stats = dpa.flow_stats();
    let fwd = stats
        .iter()
        .find(|s| s.key == key_ab())
        .expect("tracked flow");
    assert_eq!(fwd.cc_name, "dctcp");
    assert!(fwd.cwnd > 0);
    assert!(fwd.srtt.is_some(), "RTT sampled from ack clock");
    assert!(!fwd.closing);

    // Receiver-side view: lifetime byte accounting survives feedback
    // resets (the deltas are consumed by PACKs).
    let stats = dpb.flow_stats();
    let rx = stats
        .iter()
        .find(|s| s.key == key_ab())
        .expect("tracked flow at receiver");
    assert_eq!(rx.rx_total, 5 * MSS as u64);
    assert_eq!(rx.rx_marked, 3 * MSS as u64);
}

// ----------------------------------------------------------------------
// Overload safety: bounded admission, degradation ladder, restart
// ----------------------------------------------------------------------

fn counter(dp: &AcdcDatapath, name: &str) -> u64 {
    dp.counters()
        .snapshot()
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap()
        .1
}

/// A SYN from a guest at `sport` (distinct flows for capacity tests).
fn syn_on(sport: u16, wscale: u8) -> Segment {
    let mut t = TcpRepr::new(sport, BP);
    t.seq = SeqNumber(ISS_A);
    t.flags = TcpFlags::SYN;
    t.window = 65_000;
    t.options = vec![
        TcpOption::MaxSegmentSize(MSS as u16),
        TcpOption::WindowScale(wscale),
    ];
    Segment::new_tcp(ip(A, B, Ecn::NotEct), t, 0)
}

/// Data from the guest at `sport`.
fn data_on(sport: u16, off: u32, len: usize) -> Segment {
    let mut t = TcpRepr::new(sport, BP);
    t.seq = SeqNumber(ISS_A + 1 + off);
    t.ack = SeqNumber(ISS_B + 1);
    t.flags = TcpFlags::ACK;
    t.window = 127;
    Segment::new_tcp(ip(A, B, Ecn::NotEct), t, len)
}

#[test]
fn adopted_flow_stays_log_only_until_handshake() {
    let dpa = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    // No SYN observed: the entry is adopted from a data packet.
    dpa.egress(1_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    {
        let e = dpa.table().get(&key_ab()).unwrap();
        let e = e.lock();
        assert!(e.seq_valid);
        assert!(!e.rwnd.learned(), "no handshake → scale unlearned");
    }
    // This ACK would be rewritten (the initial DCTCP window is far below
    // 65 000 B) had the scale been learned; adopted flows are left alone.
    let a = dpa
        .ingress(2_000, ack(MSS as u32, 65_000))
        .forwarded()
        .unwrap();
    assert_eq!(a.tcp().window(), 65_000, "no rewrite with unlearned scale");
    assert!(counter(&dpa, "unscaled_rwnd_skips") >= 1);
    assert_eq!(counter(&dpa, "rwnd_rewrites"), 0);

    // A (retransmitted) handshake teaches the scale, restoring
    // enforcement for the same flow.
    dpa.egress(3_000, syn(false, 9)).forwarded().unwrap();
    dpa.ingress(4_000, synack(false, 9)).forwarded().unwrap();
    let a = dpa
        .ingress(5_000, ack(MSS as u32, 65_000))
        .forwarded()
        .unwrap();
    assert!(
        a.tcp().window() < 65_000,
        "rewrite active after handshake, got {}",
        a.tcp().window()
    );
    assert!(counter(&dpa, "rwnd_rewrites") >= 1);
}

#[test]
fn reset_drops_state_and_readopts_conservatively() {
    let (dpa, _dpb) = rig(false);
    assert!(dpa.flows() >= 2);
    let dropped = dpa.reset(50_000);
    assert!(dropped >= 2);
    assert_eq!(dpa.flows(), 0);
    assert_eq!(counter(&dpa, "datapath_resets"), 1);
    assert_eq!(dpa.health(), HealthState::Enforcing);
    assert_eq!(dpa.health_trace().len(), 1, "restart epoch recorded");

    // Mid-stream re-adoption from the next data packet...
    dpa.egress(60_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    assert!(dpa.flows() >= 1);
    // ...but the adopted flow is never enforced with the lost scale.
    let a = dpa
        .ingress(70_000, ack(MSS as u32, 65_000))
        .forwarded()
        .unwrap();
    assert_eq!(a.tcp().window(), 65_000);
    assert!(counter(&dpa, "unscaled_rwnd_skips") >= 1);
    assert_eq!(counter(&dpa, "rwnd_rewrites"), 0);
}

#[test]
fn capacity_exhaustion_walks_the_degradation_ladder() {
    let cfg = AcdcConfig {
        max_flows: Some(4),
        admission: AdmissionPolicy::RejectNew,
        ..AcdcConfig::dctcp(MTU)
    };
    let dpa = AcdcDatapath::new(cfg);
    // Flow 1 handshake: 2 entries, 50 % occupancy → still enforcing.
    dpa.egress(0, syn_on(41_000, 9)).forwarded().unwrap();
    assert_eq!(dpa.health(), HealthState::Enforcing);
    // Flow 2: 4 entries, 100 % ≥ the 90 % watermark → log-only.
    dpa.egress(1_000, syn_on(41_001, 9)).forwarded().unwrap();
    assert_eq!(dpa.flows(), 4);
    assert_eq!(dpa.health(), HealthState::LogOnly);
    // Flow 3: the table is full — rejected; drop to pass-through.
    dpa.egress(2_000, syn_on(41_002, 9)).forwarded().unwrap();
    assert_eq!(dpa.flows(), 4);
    assert_eq!(dpa.health(), HealthState::PassThrough);
    assert!(counter(&dpa, "admission_rejects") >= 1);
    assert_eq!(counter(&dpa, "health_demotions"), 2);
    // Unadmitted traffic is forwarded untouched — no forced ECT.
    let d = dpa
        .egress(3_000, data_on(41_002, 0, MSS))
        .forwarded()
        .unwrap();
    assert_eq!(d.ecn(), Ecn::NotEct, "pass-through leaves the wire alone");
    assert!(counter(&dpa, "overload_passthrough") >= 1);
}

#[test]
fn evict_oldest_idle_admits_new_flows_at_capacity() {
    let cfg = AcdcConfig {
        max_flows: Some(2),
        admission: AdmissionPolicy::EvictOldestIdle,
        ..AcdcConfig::dctcp(MTU)
    };
    let dpa = AcdcDatapath::new(cfg);
    dpa.egress(0, syn_on(41_000, 9)).forwarded().unwrap();
    dpa.egress(1_000, syn_on(41_001, 9)).forwarded().unwrap();
    assert_eq!(dpa.flows(), 2, "capacity never exceeded");
    assert!(counter(&dpa, "capacity_evictions") >= 2);
    assert_eq!(counter(&dpa, "admission_rejects"), 0);
    assert_ne!(dpa.health(), HealthState::PassThrough);
}

#[test]
fn ladder_recovers_with_hysteresis_after_gc() {
    let cfg = AcdcConfig {
        max_flows: Some(4),
        admission: AdmissionPolicy::RejectNew,
        ..AcdcConfig::dctcp(MTU)
    };
    let dpa = AcdcDatapath::new(cfg);
    for p in 0..3u16 {
        dpa.egress(u64::from(p), syn_on(41_000 + p, 9))
            .forwarded()
            .unwrap();
    }
    assert_eq!(dpa.health(), HealthState::PassThrough);
    // All guests close; the entries become collectable.
    dpa.table().for_each(|_, e| e.closing = true);
    // First gc: occupancy drops to zero, but the reject is still
    // "recent" — the overload flag covers the interval up to this check.
    dpa.gc(10_000, 1);
    assert_eq!(dpa.flows(), 0);
    assert_eq!(dpa.health(), HealthState::PassThrough);
    // Clean intervals then promote one rung at a time, never two.
    dpa.gc(20_000, 1);
    assert_eq!(dpa.health(), HealthState::LogOnly);
    dpa.gc(30_000, 1);
    assert_eq!(dpa.health(), HealthState::Enforcing);
    assert_eq!(counter(&dpa, "health_promotions"), 2);
    assert!(counter(&dpa, "gc_evictions") >= 4);
}

// ----------------------------------------------------------------------
// Checkpoint / restore (DESIGN.md §15)
// ----------------------------------------------------------------------

#[test]
fn checkpoint_restore_continues_byte_identically() {
    // Drive real traffic — handshake, data, a CE-marked round — so the
    // checkpoint carries learned scales, CC state and feedback counters.
    let (dpa, dpb) = rig(false);
    let mut off = 0u32;
    for i in 0..6 {
        let mut d = dpa
            .egress(10_000 + i, data(off, MSS, Ecn::NotEct))
            .forwarded()
            .unwrap();
        if i % 3 == 0 {
            d.mark_ce();
        }
        dpb.ingress(11_000 + i, d).forwarded().unwrap();
        off += MSS as u32;
        let a = dpb
            .egress(12_000 + i, ack(off, 65_000))
            .forwarded()
            .unwrap();
        dpa.ingress(13_000 + i, a).forwarded().unwrap();
    }

    let ckpt = dpa.checkpoint(20_000, &[]);
    assert!(ckpt.flows.len() >= 2, "both directions captured");

    // Serialize → parse → restore into a same-config fresh datapath.
    let json = ckpt.to_json();
    let parsed = acdc_vswitch::DatapathCheckpoint::from_json(&json).unwrap();
    let fresh = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    assert_eq!(fresh.restore(&parsed).unwrap(), ckpt.flows.len());

    // Re-checkpointing the restored datapath reproduces the original
    // document byte for byte — state, counters, health, epoch, recorder.
    assert_eq!(fresh.checkpoint(20_000, &[]).to_json(), json);

    // Both datapaths now process the *same* next packet identically.
    let a1 = dpa.ingress(30_000, ack(off, 65_000)).forwarded().unwrap();
    let a2 = fresh.ingress(30_000, ack(off, 65_000)).forwarded().unwrap();
    assert_eq!(a1.header_bytes(), a2.header_bytes());
    assert_eq!(dpa.counters().snapshot(), fresh.counters().snapshot());
    assert_eq!(
        dpa.table().get(&key_ab()).unwrap().lock().snd_una,
        fresh.table().get(&key_ab()).unwrap().lock().snd_una
    );
}

#[test]
fn restore_rejects_cc_policy_mismatch() {
    let (dpa, _dpb) = rig(false);
    dpa.egress(10_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    let ckpt = dpa.checkpoint(20_000, &[]);
    let mut cfg = AcdcConfig::dctcp(MTU);
    cfg.policy = CcPolicy::Uniform(CcKind::Cubic);
    let wrong = AcdcDatapath::new(cfg);
    let err = wrong.restore(&ckpt).unwrap_err();
    assert!(err.contains("dctcp"), "names the mismatched CC: {err}");
}

#[test]
fn restore_preserves_unlearned_scale_semantics() {
    // A mid-stream adopted flow (no handshake seen) must stay log-only
    // across a checkpoint/restore cycle — restoring never invents a
    // window scale.
    let dpa = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    dpa.egress(1_000, data(0, MSS, Ecn::NotEct))
        .forwarded()
        .unwrap();
    let ckpt = dpa.checkpoint(2_000, &[]);
    let fresh = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    fresh.restore(&ckpt).unwrap();
    {
        let e = fresh.table().get(&key_ab()).unwrap();
        assert!(!e.lock().rwnd.learned(), "scale still unlearned");
    }
    let a = fresh
        .ingress(3_000, ack(MSS as u32, 65_000))
        .forwarded()
        .unwrap();
    assert_eq!(a.tcp().window(), 65_000, "no rewrite after restore");
    assert!(counter(&fresh, "unscaled_rwnd_skips") >= 1);
    assert_eq!(counter(&fresh, "rwnd_rewrites"), 0);
}

#[test]
fn restore_stamps_gc_epoch_and_shields_flows() {
    const T: u64 = 35_000_000_000;
    let (dpa, _dpb) = rig(false);
    dpa.table().set_epoch(T);
    let ckpt = dpa.checkpoint(T, &[]);
    assert_eq!(ckpt.gc_epoch, T);
    let fresh = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    fresh.restore(&ckpt).unwrap();
    assert_eq!(fresh.table().epoch(), T);
    // Entries carry handshake-era activity times (~0 ns), but the epoch
    // shields them from the first sweep after restore.
    assert_eq!(fresh.gc(T + 1, 30_000_000_000), 0);
    assert!(fresh.flows() >= 2);
}

#[test]
fn reset_stamps_gc_epoch() {
    let dp = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    assert_eq!(dp.table().epoch(), 0);
    dp.reset(7_000);
    assert_eq!(
        dp.table().epoch(),
        7_000,
        "restart stamps the GC bookkeeping epoch"
    );
}
