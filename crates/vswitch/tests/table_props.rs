//! Property tests for `FlowTable` capacity invariants: under arbitrary
//! interleavings of create / remove / touch / gc the table never exceeds
//! its cap, its O(1) count always agrees with an actual enumeration, and
//! the whole op sequence is deterministic — same ops ⇒ same survivor set
//! and same admission outcomes, for both admission policies.

use acdc_cc::{CcConfig, CcKind};
use acdc_packet::FlowKey;
use acdc_vswitch::{Admission, AdmissionPolicy, FlowEntry, FlowTable};
use proptest::prelude::*;

const CAP: usize = 8;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// get_or_create the keyed flow, stamping `last_activity`.
    Create(u8, u16),
    /// Remove the keyed flow if present.
    Remove(u8),
    /// Touch the keyed flow's `last_activity` if present.
    Touch(u8, u16),
    /// Garbage-collect at the given time with a fixed idle timeout.
    Gc(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..32, 0u16..1000).prop_map(|(k, t)| Op::Create(k, t)),
        2 => (0u8..32).prop_map(Op::Remove),
        2 => (0u8..32, 0u16..1000).prop_map(|(k, t)| Op::Touch(k, t)),
        1 => (0u16..1000).prop_map(Op::Gc),
    ]
}

fn key(i: u8) -> FlowKey {
    FlowKey {
        src_ip: [10, 0, 0, 1],
        dst_ip: [10, 0, 0, 2],
        src_port: 40_000 + u16::from(i),
        dst_port: 80,
    }
}

fn entry(now: u64) -> FlowEntry {
    FlowEntry::new(CcKind::Dctcp, CcConfig::vswitch(1448), now)
}

/// Run `ops` against a fresh bounded table, checking the capacity and
/// count invariants after every step. Returns (admission outcomes,
/// sorted survivor ports) for determinism comparison.
fn run_ops(policy: AdmissionPolicy, ops: &[Op]) -> (Vec<Admission>, Vec<u16>) {
    let t = FlowTable::bounded(CAP, policy);
    let mut admissions = Vec::new();
    for op in ops {
        match *op {
            Op::Create(k, now) => {
                let now = u64::from(now);
                let (slot, adm) = t.get_or_create(key(k), || entry(now));
                if let Some(slot) = slot {
                    slot.lock().last_activity = now;
                }
                admissions.push(adm);
            }
            Op::Remove(k) => {
                t.remove(&key(k));
            }
            Op::Touch(k, now) => {
                if let Some(slot) = t.get(&key(k)) {
                    slot.lock().last_activity = u64::from(now);
                }
            }
            Op::Gc(now) => {
                t.gc(u64::from(now), 250);
            }
        }
        // Invariant 1: the cap is never exceeded, not even transiently
        // visible after any op.
        assert!(t.len() <= CAP, "len {} exceeds cap {CAP}", t.len());
        // Invariant 2: the O(1) count agrees with an enumeration.
        let mut enumerated = 0usize;
        t.for_each(|_, _| enumerated += 1);
        assert_eq!(t.len(), enumerated, "count drifted from shard contents");
    }
    let mut survivors = Vec::new();
    t.for_each(|k, _| survivors.push(k.src_port));
    survivors.sort_unstable();
    (admissions, survivors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bounded_table_invariants_reject_new(ops in prop::collection::vec(op_strategy(), 1..80)) {
        run_ops(AdmissionPolicy::RejectNew, &ops);
    }

    #[test]
    fn bounded_table_invariants_evict_oldest(ops in prop::collection::vec(op_strategy(), 1..80)) {
        run_ops(AdmissionPolicy::EvictOldestIdle, &ops);
    }

    /// Eviction determinism: replaying the same op sequence on a fresh
    /// table yields the same admission outcomes and the same survivor
    /// set, for both policies.
    #[test]
    fn same_ops_same_survivors(ops in prop::collection::vec(op_strategy(), 1..80)) {
        for policy in [AdmissionPolicy::RejectNew, AdmissionPolicy::EvictOldestIdle] {
            let a = run_ops(policy, &ops);
            let b = run_ops(policy, &ops);
            prop_assert_eq!(&a, &b, "replay diverged under {:?}", policy);
        }
    }

    /// RejectNew never evicts: once admitted, a flow survives until it is
    /// explicitly removed or gc'd — creates alone cannot displace it.
    #[test]
    fn reject_new_never_displaces(extra in prop::collection::vec(0u8..32, 1..40)) {
        let t = FlowTable::bounded(2, AdmissionPolicy::RejectNew);
        t.get_or_create(key(100), || entry(0)).0.unwrap();
        t.get_or_create(key(101), || entry(0)).0.unwrap();
        for k in extra {
            t.get_or_create(key(k), || entry(1));
        }
        prop_assert!(t.get(&key(100)).is_some());
        prop_assert!(t.get(&key(101)).is_some());
        prop_assert_eq!(t.len(), 2);
    }
}
