//! Property tests for checkpoint/restore (DESIGN.md §15).
//!
//! Two layers, pinned over *arbitrary* states rather than the few
//! hand-picked ones in `datapath.rs`:
//!
//! 1. **Wire format**: serialize → parse → serialize is the identity on
//!    the bytes, and parse inverts serialize on the value, for any
//!    checkpoint a datapath can produce.
//! 2. **Restore**: restoring a checkpoint into a freshly constructed
//!    same-config datapath and re-checkpointing reproduces the original
//!    document byte-for-byte — whatever mix of handshaken, mid-stream
//!    adopted, half-closed and gc-surviving flows the table held.
//!
//! The flow-table states are grown through the real packet path (an op
//! sequence of handshakes, data, ACKs, FINs, ticks and GC sweeps), so
//! every reachable combination of learned/unlearned scale, CC state,
//! feedback accumulators and closing flags is fair game.

use acdc_packet::{Ecn, Ipv4Repr, Segment, SeqNumber, TcpFlags, TcpOption, TcpRepr, PROTO_TCP};
use acdc_vswitch::{AcdcConfig, AcdcDatapath, DatapathCheckpoint};
use proptest::prelude::*;

const MTU: usize = 1_500;
const GUEST: [u8; 4] = [10, 0, 0, 1];
const PEER: [u8; 4] = [10, 0, 0, 2];

#[derive(Debug, Clone, Copy)]
enum Op {
    /// SYN out + SYN-ACK in for the flow, learning `wscale`.
    Handshake { flow: u8, wscale: u8 },
    /// Guest data at stream offset `round * 1000`; `ce` marks the IP
    /// header CE on ingress of the matching ACK's direction.
    Data {
        flow: u8,
        round: u8,
        len: u16,
        ce: bool,
    },
    /// Peer ACK covering `round * 1000` stream bytes.
    Ack { flow: u8, round: u8, wnd: u16 },
    /// Guest FIN (half-close; entries become gc-eligible).
    Fin { flow: u8 },
    /// Maintenance tick (health re-evaluation, gauge refresh).
    Tick,
    /// GC sweep with a short idle timeout.
    Gc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..12, 0u8..15).prop_map(|(flow, wscale)| Op::Handshake { flow, wscale }),
        4 => (0u8..12, 0u8..6, 1u16..1400, any::<bool>())
            .prop_map(|(flow, round, len, ce)| Op::Data { flow, round, len, ce }),
        4 => (0u8..12, 0u8..6, 0u16..2000).prop_map(|(flow, round, wnd)| Op::Ack {
            flow,
            round,
            wnd
        }),
        1 => (0u8..12).prop_map(|flow| Op::Fin { flow }),
        1 => Just(Op::Tick),
        1 => Just(Op::Gc),
    ]
}

fn ip(src: [u8; 4], dst: [u8; 4], ecn: Ecn) -> Ipv4Repr {
    Ipv4Repr {
        src_addr: src,
        dst_addr: dst,
        protocol: PROTO_TCP,
        ecn,
        payload_len: 0,
        ttl: 64,
    }
}

fn iss(flow: u8) -> u32 {
    10_000 + 100_000 * u32::from(flow)
}

/// Apply `ops` to a fresh datapath through the real packet path,
/// advancing virtual time per op; returns the datapath.
fn grow(ops: &[Op]) -> AcdcDatapath {
    let dp = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
    let mut now = 0u64;
    for op in ops {
        now += 500_000;
        match *op {
            Op::Handshake { flow, wscale } => {
                let sport = 40_000 + u16::from(flow);
                let mut syn = TcpRepr::new(sport, 80);
                syn.seq = SeqNumber(iss(flow));
                syn.flags = TcpFlags::SYN | TcpFlags::ECE | TcpFlags::CWR;
                syn.window = 65_000;
                syn.options = vec![
                    TcpOption::MaxSegmentSize(1_448),
                    TcpOption::WindowScale(wscale),
                ];
                let _ = dp.egress(now, Segment::new_tcp(ip(GUEST, PEER, Ecn::NotEct), syn, 0));
                let mut sa = TcpRepr::new(80, sport);
                sa.seq = SeqNumber(1);
                sa.ack = SeqNumber(iss(flow) + 1);
                sa.flags = TcpFlags::SYN | TcpFlags::ACK | TcpFlags::ECE;
                sa.window = 65_000;
                sa.options = vec![
                    TcpOption::MaxSegmentSize(1_448),
                    TcpOption::WindowScale(wscale),
                ];
                let _ = dp.ingress(now, Segment::new_tcp(ip(PEER, GUEST, Ecn::NotEct), sa, 0));
            }
            Op::Data {
                flow,
                round,
                len,
                ce,
            } => {
                let mut t = TcpRepr::new(40_000 + u16::from(flow), 80);
                t.seq = SeqNumber(iss(flow) + 1 + 1_000 * u32::from(round));
                t.ack = SeqNumber(1);
                t.flags = TcpFlags::ACK;
                t.window = 512;
                let ecn = if ce { Ecn::Ce } else { Ecn::Ect0 };
                let _ = dp.egress(now, Segment::new_tcp(ip(GUEST, PEER, ecn), t, len as usize));
            }
            Op::Ack { flow, round, wnd } => {
                let mut t = TcpRepr::new(80, 40_000 + u16::from(flow));
                t.seq = SeqNumber(1);
                t.ack = SeqNumber(iss(flow) + 1 + 1_000 * u32::from(round));
                t.flags = TcpFlags::ACK;
                t.window = wnd;
                let _ = dp.ingress(now, Segment::new_tcp(ip(PEER, GUEST, Ecn::NotEct), t, 0));
            }
            Op::Fin { flow } => {
                let mut t = TcpRepr::new(40_000 + u16::from(flow), 80);
                t.seq = SeqNumber(iss(flow) + 50_000);
                t.ack = SeqNumber(1);
                t.flags = TcpFlags::FIN | TcpFlags::ACK;
                t.window = 512;
                let _ = dp.egress(now, Segment::new_tcp(ip(GUEST, PEER, Ecn::NotEct), t, 0));
            }
            Op::Tick => dp.tick(now),
            Op::Gc => {
                dp.gc(now, 2_000_000);
            }
        }
    }
    dp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wire-format identity: for any reachable datapath state,
    /// serialize → parse inverts on the value and parse → serialize
    /// inverts on the bytes.
    #[test]
    fn checkpoint_json_round_trip_is_identity(
        ops in prop::collection::vec(op_strategy(), 1..60),
        at in 1u64..u64::MAX / 2,
    ) {
        let dp = grow(&ops);
        let ckpt = dp.checkpoint(at, &[]);
        let json = ckpt.to_json();
        let parsed = DatapathCheckpoint::from_json(&json)
            .expect("own serialization must parse");
        prop_assert_eq!(&parsed, &ckpt, "parse must invert serialize");
        prop_assert_eq!(parsed.to_json(), json, "re-serialization must be byte-identical");
    }

    /// Restore fidelity: restoring through the serialized form into a
    /// fresh same-config datapath and re-checkpointing reproduces the
    /// original document byte-for-byte.
    #[test]
    fn restore_then_recheckpoint_is_byte_identical(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let dp = grow(&ops);
        let at = 1_000_000_000u64;
        let json = dp.checkpoint(at, &[]).to_json();
        let parsed = DatapathCheckpoint::from_json(&json).expect("parses");

        let fresh = AcdcDatapath::new(AcdcConfig::dctcp(MTU));
        let restored = fresh.restore(&parsed).expect("restore must succeed");
        prop_assert_eq!(restored, parsed.flows.len());
        prop_assert_eq!(
            fresh.checkpoint(at, &[]).to_json(),
            json,
            "restored datapath must re-checkpoint to the same bytes"
        );
    }
}
