//! A window clamp wrapper: bounds any algorithm's window from above.
//!
//! Linux exposes this as `snd_cwnd_clamp`; the paper's Figure 6 shows the
//! AC/DC equivalent — bounding the enforced RWND — controls throughput
//! identically. Wrapping (rather than a field on each algorithm) keeps the
//! per-algorithm code faithful to its upstream source.

use crate::{AckEvent, CongestionControl};
use acdc_stats::time::Nanos;

/// Wraps an algorithm and clamps its reported window to `max_bytes`.
#[derive(Debug)]
pub struct Clamped<C> {
    inner: C,
    max_bytes: u64,
}

impl<C: CongestionControl> Clamped<C> {
    /// Clamp `inner`'s window to at most `max_bytes`.
    pub fn new(inner: C, max_bytes: u64) -> Clamped<C> {
        assert!(max_bytes > 0, "clamp must be positive");
        Clamped { inner, max_bytes }
    }

    /// The clamp value.
    pub fn clamp_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Change the clamp at runtime.
    pub fn set_clamp(&mut self, max_bytes: u64) {
        assert!(max_bytes > 0, "clamp must be positive");
        self.max_bytes = max_bytes;
    }

    /// Access the wrapped algorithm.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: CongestionControl> CongestionControl for Clamped<C> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn cwnd(&self) -> u64 {
        self.inner.cwnd().min(self.max_bytes)
    }

    fn ssthresh(&self) -> u64 {
        self.inner.ssthresh()
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        self.inner.on_ack(ack);
    }

    fn on_fast_retransmit(&mut self, now: Nanos) {
        self.inner.on_fast_retransmit(now);
    }

    fn on_retransmit_timeout(&mut self, now: Nanos) {
        self.inner.on_retransmit_timeout(now);
    }

    fn wants_ecn(&self) -> bool {
        self.inner.wants_ecn()
    }

    fn alpha_micros(&self) -> Option<u64> {
        self.inner.alpha_micros()
    }

    fn reset(&mut self, now: Nanos) {
        self.inner.reset(now);
    }

    /// Delegates to the wrapped algorithm; the clamp ceiling itself is a
    /// construction parameter and not part of the dynamic state.
    fn state_words(&self) -> Vec<u64> {
        self.inner.state_words()
    }

    fn load_state_words(&mut self, words: &[u64]) -> bool {
        self.inner.load_state_words(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CcConfig, NewReno};

    #[test]
    fn clamps_reported_window_only() {
        let cfg = CcConfig::host(1000);
        let mut c = Clamped::new(NewReno::new(cfg), 12_000);
        assert_eq!(c.cwnd(), 10_000); // below clamp: passthrough
        for i in 0..20 {
            c.on_ack(&AckEvent::simple(i, 1000));
        }
        assert_eq!(c.cwnd(), 12_000); // inner grew past clamp
        assert!(c.inner().cwnd() > 12_000);
    }

    #[test]
    fn clamp_is_adjustable() {
        let cfg = CcConfig::host(1000);
        let mut c = Clamped::new(NewReno::new(cfg), 1_000);
        assert_eq!(c.cwnd(), 1_000);
        c.set_clamp(5_000);
        assert_eq!(c.cwnd(), 5_000);
    }

    #[test]
    fn loss_still_reaches_inner() {
        let cfg = CcConfig::host(1000);
        let mut c = Clamped::new(NewReno::new(cfg), 100_000);
        c.on_fast_retransmit(0);
        assert_eq!(c.cwnd(), 5_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clamp_rejected() {
        let _ = Clamped::new(NewReno::new(CcConfig::host(1000)), 0);
    }
}
