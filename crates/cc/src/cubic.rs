//! CUBIC (Ha, Rhee & Xu 2008) — Linux's default congestion control and the
//! paper's baseline. Port of the `tcp_cubic.c` algorithm: cubic window
//! growth anchored at the last loss point, a TCP-friendly lower envelope,
//! and fast convergence.
//!
//! We intentionally omit HyStart (the testbed kernels had it, but it only
//! affects the first slow start and adds noise to small-scale experiments);
//! this is documented in DESIGN.md.

use crate::{AckEvent, CcConfig, CongestionControl};
use acdc_stats::time::{Nanos, SECOND};

/// CUBIC's scaling constant `C` (window units of MSS, time in seconds).
const C: f64 = 0.4;
/// Multiplicative decrease factor (Linux uses 717/1024 ≈ 0.7).
const BETA: f64 = 717.0 / 1024.0;

/// CUBIC congestion control.
#[derive(Debug, Clone)]
pub struct Cubic {
    cfg: CcConfig,
    cwnd: u64,
    ssthresh: u64,
    ecn_enabled: bool,

    /// Window size (bytes) just before the last reduction.
    w_max: f64,
    /// Epoch start: time of the last reduction; `None` until the first.
    epoch_start: Option<Nanos>,
    /// Window at the start of the epoch, bytes.
    w_epoch: f64,
    /// Time (seconds) for the cubic to return to `w_max`.
    k: f64,
    /// Estimate of what Reno would have as cwnd (TCP-friendly region).
    w_est: f64,
    /// Smoothed RTT used by the TCP-friendly estimator.
    srtt: Nanos,
    /// Bytes acked since last `w_est` update.
    acked_since_est: u64,
    last_cut: Option<Nanos>,
}

impl Cubic {
    /// Create with the given configuration.
    pub fn new(cfg: CcConfig) -> Cubic {
        Cubic {
            cfg,
            cwnd: cfg.initial_window_bytes(),
            ssthresh: u64::MAX,
            ecn_enabled: false,
            w_max: 0.0,
            epoch_start: None,
            w_epoch: 0.0,
            k: 0.0,
            w_est: 0.0,
            srtt: acdc_stats::time::MILLISECOND,
            acked_since_est: 0,
            last_cut: None,
        }
    }

    /// Enable classic ECN reaction (treat ECE as a loss event).
    pub fn with_ecn(mut self) -> Cubic {
        self.ecn_enabled = true;
        self
    }

    fn mss_f(&self) -> f64 {
        f64::from(self.cfg.mss)
    }

    /// The cubic function W(t) = C·(t−K)³ + W_max, in bytes.
    fn w_cubic(&self, t_secs: f64) -> f64 {
        let d = t_secs - self.k;
        C * d * d * d * self.mss_f() + self.w_max
    }

    fn begin_epoch(&mut self, now: Nanos) {
        self.epoch_start = Some(now);
        self.w_epoch = self.cwnd as f64;
        if self.w_epoch < self.w_max {
            // Time to grow back to w_max: K = cbrt((W_max − cwnd)/C) with
            // windows in MSS units.
            self.k = (((self.w_max - self.w_epoch) / self.mss_f()) / C).cbrt();
        } else {
            self.k = 0.0;
            self.w_max = self.w_epoch;
        }
        self.w_est = self.w_epoch;
        self.acked_since_est = 0;
    }

    fn reduction(&mut self, now: Nanos) {
        // Fast convergence: if we are reducing from below the previous
        // w_max, the flow is losing ground — release more.
        if (self.cwnd as f64) < self.w_max {
            self.w_max = self.cwnd as f64 * (1.0 + BETA) / 2.0;
        } else {
            self.w_max = self.cwnd as f64;
        }
        self.cwnd = (((self.cwnd as f64) * BETA) as u64).max(self.cfg.min_window_bytes);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        self.last_cut = Some(now);
    }

    fn can_cut(&self, now: Nanos) -> bool {
        match self.last_cut {
            None => true,
            Some(t) => now.saturating_sub(t) >= self.srtt,
        }
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        if let Some(rtt) = ack.rtt {
            self.srtt = (self.srtt * 7 + rtt) / 8;
        }
        if self.ecn_enabled && ack.ece {
            if self.can_cut(ack.now) {
                self.reduction(ack.now);
            }
            return;
        }
        if ack.newly_acked == 0 {
            return;
        }
        if self.cwnd < self.ssthresh {
            // Slow start, byte-counting.
            self.cwnd += ack.newly_acked.min(2 * u64::from(self.cfg.mss));
            return;
        }
        if self.epoch_start.is_none() {
            self.begin_epoch(ack.now);
        }
        let t = (ack.now.saturating_sub(self.epoch_start.unwrap())) as f64 / SECOND as f64;
        let target = self.w_cubic(t + self.srtt as f64 / SECOND as f64);

        // TCP-friendly region: emulate Reno's growth rate.
        self.acked_since_est += ack.newly_acked;
        // w_est += 3*(1-beta)/(1+beta) * acked_bytes/cwnd * mss  (per RFC 8312)
        let reno_gain = 3.0 * (1.0 - BETA) / (1.0 + BETA);
        self.w_est += reno_gain * (ack.newly_acked as f64 / self.cwnd as f64) * self.mss_f();

        let target = target.max(self.w_est);
        if target > self.cwnd as f64 {
            // Approach the target over one RTT: cwnd += (target−cwnd)/cwnd
            // per acked segment, in byte form.
            let incr = ((target - self.cwnd as f64) / self.cwnd as f64)
                * (ack.newly_acked as f64).min(self.mss_f());
            self.cwnd += (incr.max(1.0)) as u64;
        } else {
            // Below target (concave plateau): probe very slowly, matching
            // Linux's 1/(100·cwnd) tick.
            self.cwnd += 1;
        }
    }

    fn on_fast_retransmit(&mut self, now: Nanos) {
        if self.can_cut(now) {
            self.reduction(now);
        }
    }

    fn on_retransmit_timeout(&mut self, _now: Nanos) {
        self.ssthresh = ((self.cwnd as f64 * BETA) as u64).max(self.cfg.min_window_bytes);
        self.w_max = self.cwnd as f64;
        self.cwnd = u64::from(self.cfg.mss);
        self.epoch_start = None;
        self.last_cut = None;
    }

    fn wants_ecn(&self) -> bool {
        self.ecn_enabled
    }

    fn reset(&mut self, _now: Nanos) {
        *self = Cubic {
            ecn_enabled: self.ecn_enabled,
            ..Cubic::new(self.cfg)
        };
    }

    /// Layout: `[cwnd, ssthresh, ecn_enabled, w_max, epoch_start?,
    /// w_epoch, k, w_est, srtt, acked_since_est, last_cut?]` with the
    /// `f64` fields bit-cast.
    fn state_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.cwnd,
            self.ssthresh,
            u64::from(self.ecn_enabled),
            self.w_max.to_bits(),
        ];
        crate::push_opt(&mut w, self.epoch_start);
        w.extend([
            self.w_epoch.to_bits(),
            self.k.to_bits(),
            self.w_est.to_bits(),
            self.srtt,
            self.acked_since_est,
        ]);
        crate::push_opt(&mut w, self.last_cut);
        w
    }

    fn load_state_words(&mut self, words: &[u64]) -> bool {
        let [cwnd, ssthresh, ecn, w_max, ep_f, ep_v, w_epoch, k, w_est, srtt, acked, cut_f, cut_v] =
            *words
        else {
            return false;
        };
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
        self.ecn_enabled = ecn != 0;
        self.w_max = f64::from_bits(w_max);
        self.epoch_start = crate::read_opt(ep_f, ep_v);
        self.w_epoch = f64::from_bits(w_epoch);
        self.k = f64::from_bits(k);
        self.w_est = f64::from_bits(w_est);
        self.srtt = srtt;
        self.acked_since_est = acked;
        self.last_cut = crate::read_opt(cut_f, cut_v);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_stats::time::MILLISECOND;

    fn cfg() -> CcConfig {
        CcConfig::host(1448)
    }

    fn rtt_ack(now: Nanos, bytes: u64) -> AckEvent {
        AckEvent {
            rtt: Some(100 * MICRO),
            ..AckEvent::simple(now, bytes)
        }
    }

    const MICRO: Nanos = 1_000;

    #[test]
    fn slow_start_then_reduction() {
        let mut c = Cubic::new(cfg());
        let start = c.cwnd();
        for i in 0..20 {
            c.on_ack(&rtt_ack(i * 100 * MICRO, 1448));
        }
        assert!(c.cwnd() > start);
        let before = c.cwnd();
        c.on_fast_retransmit(SECOND);
        let after = c.cwnd();
        assert!((after as f64) < before as f64 * 0.75);
        assert!((after as f64) > before as f64 * 0.65);
    }

    #[test]
    fn cubic_growth_is_concave_then_convex() {
        let mut c = Cubic::new(cfg());
        // Leave slow start with a loss.
        c.on_fast_retransmit(0);
        let w_after_cut = c.cwnd();
        // Feed steady ACKs over ~8 virtual seconds so the trajectory
        // crosses the plateau at t = K (a few seconds out); track growth
        // increments per 800 ms slice.
        let mut deltas = Vec::new();
        let mut prev = c.cwnd();
        for i in 1..=8000u64 {
            c.on_ack(&rtt_ack(i * MILLISECOND, 1448));
            if i % 800 == 0 {
                deltas.push(c.cwnd() - prev);
                prev = c.cwnd();
            }
        }
        assert!(c.cwnd() > w_after_cut);
        // Approaching the plateau growth slows (concave): the first delta
        // exceeds the smallest one, which sits in the middle.
        let min_idx = deltas
            .iter()
            .enumerate()
            .min_by_key(|(_, d)| **d)
            .unwrap()
            .0;
        assert!(
            deltas.first().unwrap() > &deltas[min_idx] && min_idx > 0,
            "deltas={deltas:?}"
        );
        // Past the plateau growth re-accelerates (convex): the last delta
        // exceeds the minimum, which is not at the end.
        assert!(
            min_idx < deltas.len() - 1 && deltas.last().unwrap() > &deltas[min_idx],
            "deltas={deltas:?}"
        );
    }

    #[test]
    fn fast_convergence_lowers_w_max_on_consecutive_losses() {
        let mut c = Cubic::new(cfg());
        for i in 0..10 {
            c.on_ack(&rtt_ack(i * 100 * MICRO, 1448));
        }
        c.on_fast_retransmit(10 * MILLISECOND);
        let w1 = c.w_max;
        c.on_fast_retransmit(30 * MILLISECOND);
        let w2 = c.w_max;
        assert!(w2 < w1);
    }

    #[test]
    fn tcp_friendly_region_keeps_growing_at_small_windows() {
        // With a tiny window and long epochs, the Reno envelope dominates;
        // cwnd must still grow roughly additively.
        let mut c = Cubic::new(cfg());
        c.on_retransmit_timeout(0);
        c.ssthresh = 0; // force congestion avoidance
        let start = c.cwnd();
        for i in 0..2000u64 {
            c.on_ack(&rtt_ack(i * 50 * MICRO, 1448));
        }
        assert!(c.cwnd() > start + 10 * 1448);
    }

    #[test]
    fn timeout_resets_to_one_segment() {
        let mut c = Cubic::new(cfg());
        c.on_retransmit_timeout(SECOND);
        assert_eq!(c.cwnd(), 1448);
    }

    #[test]
    fn ecn_mode_reacts_to_ece() {
        let mut c = Cubic::new(cfg()).with_ecn();
        let before = c.cwnd();
        let mut a = rtt_ack(MILLISECOND, 1448);
        a.ece = true;
        c.on_ack(&a);
        assert!(c.cwnd() < before);
    }
}
