//! DCTCP (Alizadeh et al., SIGCOMM 2010), following the Linux
//! `tcp_dctcp.c` module and the paper's Figure 5 flow:
//!
//! * `alpha` is an EWMA (gain 1/16) of the fraction of bytes that carried a
//!   CE mark, updated roughly once per RTT;
//! * without congestion, the window grows like New Reno
//!   (`tcp_cong_avoid`);
//! * with congestion, the window is cut **at most once per RTT** by
//!   `cwnd ← cwnd · (1 − α/2)`;
//! * on loss, `alpha` saturates to its maximum and the cut is a full halve.
//!
//! This same struct implements the paper's **priority-weighted DCTCP**
//! (§3.4, Equation 1): `wnd ← wnd · (1 − (α − α·β/2))` with priority
//! `β ∈ [0, 1]`. `β = 1` is exactly DCTCP; lower `β` backs off more
//! aggressively, yielding proportionally less bandwidth.

use crate::{reno_cong_avoid, AckEvent, CcConfig, CongestionControl};
use acdc_stats::time::Nanos;

/// DCTCP's EWMA gain `g` (Linux default: 1/16).
pub const DEFAULT_GAIN: f64 = 1.0 / 16.0;

/// DCTCP congestion control (and its priority-weighted generalization).
#[derive(Debug, Clone)]
pub struct Dctcp {
    cfg: CcConfig,
    cwnd: u64,
    ssthresh: u64,
    /// EWMA of the marked fraction, in [0, 1].
    alpha: f64,
    gain: f64,
    /// Priority weight β ∈ [0, 1]; 1.0 = vanilla DCTCP.
    beta: f64,

    /// Observation window: bytes acked / marked since the last alpha update.
    acked_bytes: u64,
    marked_bytes: u64,
    /// End of the current observation window ~ one RTT out.
    window_end: Option<Nanos>,
    srtt: Nanos,
    /// Did we already cut within the current window?
    cut_in_window: bool,
}

impl Dctcp {
    /// Vanilla DCTCP with default gain.
    pub fn new(cfg: CcConfig) -> Dctcp {
        Dctcp::with_priority(cfg, 1.0)
    }

    /// Priority-weighted DCTCP (§3.4): `beta` in `[0, 1]`, 1.0 = vanilla.
    pub fn with_priority(cfg: CcConfig, beta: f64) -> Dctcp {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        Dctcp {
            cfg,
            cwnd: cfg.initial_window_bytes(),
            ssthresh: u64::MAX,
            alpha: 1.0, // Linux seeds alpha at max so early congestion bites
            gain: DEFAULT_GAIN,
            beta,
            acked_bytes: 0,
            marked_bytes: 0,
            window_end: None,
            srtt: acdc_stats::time::MILLISECOND,
            cut_in_window: false,
        }
    }

    /// Current `alpha` estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The priority weight β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The multiplicative-decrease factor for the current `alpha`:
    /// `1 − (α − α·β/2)`; for β = 1 this is DCTCP's `1 − α/2`.
    fn cut_factor(&self) -> f64 {
        1.0 - (self.alpha - self.alpha * self.beta / 2.0)
    }

    fn maybe_update_alpha(&mut self, now: Nanos) {
        let end = *self.window_end.get_or_insert(now + self.srtt);
        if now < end {
            return;
        }
        if self.acked_bytes > 0 {
            let frac = self.marked_bytes as f64 / self.acked_bytes as f64;
            self.alpha = ((1.0 - self.gain) * self.alpha + self.gain * frac).clamp(0.0, 1.0);
            crate::strict_invariant!(
                (0.0..=1.0).contains(&self.alpha),
                "DCTCP alpha escaped [0,1]: {}",
                self.alpha
            );
        }
        self.acked_bytes = 0;
        self.marked_bytes = 0;
        self.window_end = Some(now + self.srtt);
        self.cut_in_window = false;
    }

    fn cut(&mut self) {
        let new = (self.cwnd as f64 * self.cut_factor()) as u64;
        self.cwnd = new.max(self.cfg.min_window_bytes);
        self.ssthresh = self.cwnd;
        self.cut_in_window = true;
        crate::strict_invariant!(
            self.cwnd >= self.cfg.min_window_bytes.min(u64::from(self.cfg.mss)),
            "cwnd {} fell below the floor (min_window={}, mss={})",
            self.cwnd,
            self.cfg.min_window_bytes,
            self.cfg.mss
        );
    }
}

impl CongestionControl for Dctcp {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        if let Some(rtt) = ack.rtt {
            self.srtt = (self.srtt * 7 + rtt) / 8;
        }
        self.acked_bytes += ack.newly_acked;
        self.marked_bytes += ack.marked.min(ack.newly_acked);
        self.maybe_update_alpha(ack.now);

        let congested = ack.marked > 0 || ack.ece;
        if congested {
            // Figure 5: cut at most once per RTT, scaled by alpha.
            if !self.cut_in_window {
                self.cut();
            }
            return;
        }
        if ack.newly_acked > 0 {
            self.cwnd = reno_cong_avoid(self.cwnd, self.ssthresh, ack.newly_acked, self.cfg.mss);
        }
    }

    fn on_fast_retransmit(&mut self, _now: Nanos) {
        // Loss: alpha saturates (paper's "α = max_alpha" branch) and the
        // cut is a full Reno halving regardless of β.
        self.alpha = 1.0;
        if !self.cut_in_window {
            self.ssthresh = (self.cwnd / 2).max(self.cfg.min_window_bytes);
            self.cwnd = self.ssthresh;
            self.cut_in_window = true;
        }
    }

    fn on_retransmit_timeout(&mut self, _now: Nanos) {
        self.alpha = 1.0;
        self.ssthresh = (self.cwnd / 2).max(self.cfg.min_window_bytes);
        self.cwnd = u64::from(self.cfg.mss);
        self.cut_in_window = false;
        self.window_end = None;
    }

    fn wants_ecn(&self) -> bool {
        true
    }

    fn alpha_micros(&self) -> Option<u64> {
        Some((self.alpha * 1e6) as u64)
    }

    fn reset(&mut self, _now: Nanos) {
        *self = Dctcp::with_priority(self.cfg, self.beta);
    }

    /// Layout: `[cwnd, ssthresh, alpha, acked_bytes, marked_bytes,
    /// window_end?, srtt, cut_in_window]`. `gain` and `beta` are
    /// construction parameters and deliberately excluded — a restore
    /// rebuilds the object with the same priority weight first.
    fn state_words(&self) -> Vec<u64> {
        let mut w = vec![
            self.cwnd,
            self.ssthresh,
            self.alpha.to_bits(),
            self.acked_bytes,
            self.marked_bytes,
        ];
        crate::push_opt(&mut w, self.window_end);
        w.extend([self.srtt, u64::from(self.cut_in_window)]);
        w
    }

    fn load_state_words(&mut self, words: &[u64]) -> bool {
        let [cwnd, ssthresh, alpha, acked, marked, end_f, end_v, srtt, cut] = *words else {
            return false;
        };
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
        self.alpha = f64::from_bits(alpha);
        self.acked_bytes = acked;
        self.marked_bytes = marked;
        self.window_end = crate::read_opt(end_f, end_v);
        self.srtt = srtt;
        self.cut_in_window = cut != 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_stats::time::MILLISECOND;

    fn cfg() -> CcConfig {
        CcConfig::host(1000)
    }

    fn ack(now: Nanos, bytes: u64, marked: u64) -> AckEvent {
        AckEvent {
            now,
            newly_acked: bytes,
            marked,
            rtt: Some(100_000),
            in_flight: 0,
            ece: false,
        }
    }

    /// Drive `n` RTT-windows of ACKs in which `frac` of the *packets* are
    /// CE-marked (whole segments, as a real marking switch produces).
    fn drive(d: &mut Dctcp, start: Nanos, windows: usize, frac: f64) -> Nanos {
        let mut now = start;
        let acks_per_window = 20usize;
        let marked_acks = (frac * acks_per_window as f64).round() as usize;
        for _ in 0..windows {
            for i in 0..acks_per_window {
                let marked = if i < marked_acks { 1000 } else { 0 };
                d.on_ack(&ack(now, 1000, marked));
                now += 10_000; // 20 acks per 200µs << srtt window
            }
            now += MILLISECOND; // push past the observation window
            d.on_ack(&ack(now, 0, 0)); // tick alpha update + reset cut gate
        }
        now
    }

    #[test]
    fn wants_ecn() {
        assert!(Dctcp::new(cfg()).wants_ecn());
    }

    #[test]
    fn alpha_converges_to_marked_fraction() {
        let mut d = Dctcp::new(cfg());
        drive(&mut d, 0, 200, 0.3);
        assert!(
            (d.alpha() - 0.3).abs() < 0.05,
            "alpha={} want ~0.3",
            d.alpha()
        );
    }

    #[test]
    fn alpha_decays_to_zero_without_marks() {
        let mut d = Dctcp::new(cfg());
        drive(&mut d, 0, 300, 0.0);
        assert!(d.alpha() < 0.01, "alpha={}", d.alpha());
    }

    #[test]
    fn gentle_cut_with_small_alpha() {
        let mut d = Dctcp::new(cfg());
        // Converge alpha low first.
        let now = drive(&mut d, 0, 300, 0.05);
        let before = d.cwnd();
        d.on_ack(&ack(now, 1000, 1000)); // congestion signal
        let after = d.cwnd();
        // Cut factor should be ~1 - alpha/2 ≈ 0.97, far from halving.
        assert!(after > before * 9 / 10, "before={before} after={after}");
        assert!(after < before);
    }

    #[test]
    fn cuts_at_most_once_per_window() {
        let mut d = Dctcp::new(cfg());
        let now = drive(&mut d, 0, 50, 0.2);
        let before = d.cwnd();
        d.on_ack(&ack(now, 1000, 1000));
        let after_first = d.cwnd();
        assert!(after_first < before);
        d.on_ack(&ack(now + 1000, 1000, 1000));
        assert_eq!(
            d.cwnd(),
            after_first,
            "second cut in same RTT must not apply"
        );
    }

    #[test]
    fn loss_halves_and_saturates_alpha() {
        let mut d = Dctcp::new(cfg());
        drive(&mut d, 0, 300, 0.0);
        assert!(d.alpha() < 0.01);
        let before = d.cwnd();
        d.on_fast_retransmit(0);
        assert!(
            (d.alpha() - 1.0).abs() < f64::EPSILON,
            "alpha={}",
            d.alpha()
        );
        assert_eq!(d.cwnd(), (before / 2).max(cfg().min_window_bytes));
    }

    #[test]
    fn priority_beta_orders_cut_severity() {
        // Same alpha, different beta: lower beta cuts deeper.
        let mut cuts = Vec::new();
        for beta in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut d = Dctcp::with_priority(cfg(), beta);
            let now = drive(&mut d, 0, 100, 0.4);
            let before = d.cwnd();
            d.on_ack(&ack(now, 1000, 1000));
            cuts.push((beta, d.cwnd() as f64 / before as f64));
        }
        for w in cuts.windows(2) {
            assert!(
                w[1].1 > w[0].1,
                "higher beta must retain more window: {cuts:?}"
            );
        }
    }

    #[test]
    fn beta_one_matches_dctcp_cut() {
        let mut d = Dctcp::new(cfg());
        d.alpha = 0.5;
        d.cwnd = 100_000;
        d.cut();
        // 1 - alpha/2 = 0.75
        assert_eq!(d.cwnd(), 75_000);
    }

    #[test]
    fn beta_zero_full_backoff() {
        let mut d = Dctcp::with_priority(cfg(), 0.0);
        d.alpha = 1.0;
        d.cwnd = 100_000;
        d.cut();
        // factor = 1 - alpha = 0 → floored at min window
        assert_eq!(d.cwnd(), cfg().min_window_bytes);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_out_of_range_beta() {
        let _ = Dctcp::with_priority(cfg(), 1.5);
    }
}
