//! Algorithm selection by name: the knob an administrator (or a per-flow
//! policy, §3.4) turns.

use crate::{CcConfig, CongestionControl, Cubic, Dctcp, HighSpeed, Illinois, NewReno, Vegas};

/// The congestion-control algorithms available in this workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcKind {
    /// TCP New Reno.
    Reno,
    /// CUBIC (Linux default).
    Cubic,
    /// TCP Vegas (delay-based).
    Vegas,
    /// TCP Illinois (delay-adaptive AIMD).
    Illinois,
    /// HighSpeed TCP (RFC 3649).
    HighSpeed,
    /// DCTCP.
    Dctcp,
    /// Priority-weighted DCTCP with the given β ∈ [0, 1] (§3.4, Eq. 1).
    DctcpPriority(f64),
}

impl CcKind {
    /// All plain variants (as exercised by Table 1 / Figure 1).
    pub const ALL: [CcKind; 6] = [
        CcKind::Cubic,
        CcKind::Illinois,
        CcKind::Reno,
        CcKind::Vegas,
        CcKind::HighSpeed,
        CcKind::Dctcp,
    ];

    /// Instantiate the algorithm with `cfg`.
    pub fn build(&self, cfg: CcConfig) -> Box<dyn CongestionControl> {
        match *self {
            CcKind::Reno => Box::new(NewReno::new(cfg)),
            CcKind::Cubic => Box::new(Cubic::new(cfg)),
            CcKind::Vegas => Box::new(Vegas::new(cfg)),
            CcKind::Illinois => Box::new(Illinois::new(cfg)),
            CcKind::HighSpeed => Box::new(HighSpeed::new(cfg)),
            CcKind::Dctcp => Box::new(Dctcp::new(cfg)),
            CcKind::DctcpPriority(beta) => Box::new(Dctcp::with_priority(cfg, beta)),
        }
    }

    /// Short name matching `CongestionControl::name` (priority DCTCP maps
    /// to `"dctcp"`, as it is the same module in the paper).
    pub fn name(&self) -> &'static str {
        match self {
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::Vegas => "vegas",
            CcKind::Illinois => "illinois",
            CcKind::HighSpeed => "highspeed",
            CcKind::Dctcp | CcKind::DctcpPriority(_) => "dctcp",
        }
    }

    /// Parse from a name as an administrator would write it.
    pub fn parse(s: &str) -> Option<CcKind> {
        Some(match s.to_ascii_lowercase().as_str() {
            "reno" | "newreno" => CcKind::Reno,
            "cubic" => CcKind::Cubic,
            "vegas" => CcKind::Vegas,
            "illinois" => CcKind::Illinois,
            "highspeed" | "hstcp" => CcKind::HighSpeed,
            "dctcp" => CcKind::Dctcp,
            _ => return None,
        })
    }
}

impl core::fmt::Display for CcKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CcKind::DctcpPriority(beta) => write!(f, "dctcp(β={beta})"),
            other => write!(f, "{}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_matching_names() {
        let cfg = CcConfig::host(1448);
        for kind in CcKind::ALL {
            let cc = kind.build(cfg);
            assert_eq!(cc.name(), kind.name());
            assert_eq!(cc.cwnd(), cfg.initial_window_bytes());
        }
    }

    #[test]
    fn parse_round_trips() {
        for kind in CcKind::ALL {
            assert_eq!(CcKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(CcKind::parse("HSTCP"), Some(CcKind::HighSpeed));
        assert_eq!(CcKind::parse("bbr"), None);
    }

    #[test]
    fn priority_variant_builds_dctcp() {
        let cc = CcKind::DctcpPriority(0.5).build(CcConfig::host(1000));
        assert_eq!(cc.name(), "dctcp");
        assert!(cc.wants_ecn());
    }

    #[test]
    fn only_ecn_algorithms_want_ecn() {
        let cfg = CcConfig::host(1000);
        assert!(CcKind::Dctcp.build(cfg).wants_ecn());
        assert!(!CcKind::Cubic.build(cfg).wants_ecn());
        assert!(!CcKind::Vegas.build(cfg).wants_ecn());
    }

    use crate::AckEvent;

    /// Exercise an instance through growth, marks and losses so every
    /// dynamic field moves off its initial value.
    fn churn(cc: &mut Box<dyn CongestionControl>) {
        for i in 0..40u64 {
            cc.on_ack(&AckEvent {
                now: i * 500_000,
                newly_acked: 1448,
                marked: if i % 7 == 0 { 1448 } else { 0 },
                rtt: Some(120_000 + i * 1_000),
                in_flight: 10_000,
                ece: i % 11 == 0,
            });
        }
        cc.on_fast_retransmit(25_000_000);
        for i in 40..60u64 {
            cc.on_ack(&AckEvent {
                now: i * 500_000,
                newly_acked: 1448,
                marked: 0,
                rtt: Some(110_000),
                in_flight: 5_000,
                ece: false,
            });
        }
    }

    #[test]
    fn state_words_round_trip_for_every_kind() {
        let cfg = CcConfig::vswitch(1448);
        let kinds = [
            CcKind::Reno,
            CcKind::Cubic,
            CcKind::Vegas,
            CcKind::Illinois,
            CcKind::HighSpeed,
            CcKind::Dctcp,
            CcKind::DctcpPriority(0.25),
        ];
        for kind in kinds {
            let mut a = kind.build(cfg);
            churn(&mut a);
            let words = a.state_words();
            let mut b = kind.build(cfg);
            assert!(b.load_state_words(&words), "{kind}: load must accept");
            assert_eq!(b.state_words(), words, "{kind}: words stable");
            assert_eq!(b.cwnd(), a.cwnd(), "{kind}: cwnd restored");
            assert_eq!(b.ssthresh(), a.ssthresh(), "{kind}: ssthresh");
            assert_eq!(b.alpha_micros(), a.alpha_micros(), "{kind}: alpha");
            // Future behaviour is byte-identical: drive both with the same
            // post-restore ACK schedule and compare windows.
            churn(&mut a);
            churn(&mut b);
            assert_eq!(b.cwnd(), a.cwnd(), "{kind}: continuation diverged");
            assert_eq!(b.state_words(), a.state_words(), "{kind}: state");
        }
    }

    #[test]
    fn load_rejects_wrong_length_and_leaves_state() {
        let cfg = CcConfig::vswitch(1448);
        for kind in CcKind::ALL {
            let mut cc = kind.build(cfg);
            let before = cc.state_words();
            assert!(!cc.load_state_words(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]));
            assert_eq!(cc.state_words(), before, "{kind}: reject is a no-op");
        }
    }
}
