//! TCP New Reno (RFC 5681 / RFC 6582): the baseline loss-based algorithm,
//! and the additive-increase engine DCTCP borrows when no congestion is
//! signalled.

use crate::{reno_cong_avoid, AckEvent, CcConfig, CongestionControl};
use acdc_stats::time::Nanos;

/// TCP New Reno congestion control.
#[derive(Debug, Clone)]
pub struct NewReno {
    cfg: CcConfig,
    cwnd: u64,
    ssthresh: u64,
    /// React to classic ECN echoes (RFC 3168) as to loss?
    ecn_enabled: bool,
    /// Start of the current "reaction window": we cut at most once per RTT.
    last_cut: Option<Nanos>,
    srtt_hint: Nanos,
}

impl NewReno {
    /// Create with the given configuration.
    pub fn new(cfg: CcConfig) -> NewReno {
        NewReno {
            cfg,
            cwnd: cfg.initial_window_bytes(),
            ssthresh: u64::MAX,
            ecn_enabled: false,
            last_cut: None,
            srtt_hint: acdc_stats::time::MILLISECOND,
        }
    }

    /// Enable classic ECN reaction (halve on ECE, once per RTT).
    pub fn with_ecn(mut self) -> NewReno {
        self.ecn_enabled = true;
        self
    }

    fn halve(&mut self, now: Nanos) {
        self.ssthresh = (self.cwnd / 2).max(self.cfg.min_window_bytes);
        self.cwnd = self.ssthresh;
        self.last_cut = Some(now);
    }

    fn can_cut(&self, now: Nanos) -> bool {
        match self.last_cut {
            None => true,
            Some(t) => now.saturating_sub(t) >= self.srtt_hint,
        }
    }
}

impl CongestionControl for NewReno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        if let Some(rtt) = ack.rtt {
            // Keep a rough RTT to pace once-per-RTT reactions.
            self.srtt_hint = (self.srtt_hint * 7 + rtt) / 8;
        }
        if self.ecn_enabled && ack.ece {
            if self.can_cut(ack.now) {
                self.halve(ack.now);
            }
            return;
        }
        if ack.newly_acked == 0 {
            return;
        }
        self.cwnd = reno_cong_avoid(self.cwnd, self.ssthresh, ack.newly_acked, self.cfg.mss);
    }

    fn on_fast_retransmit(&mut self, now: Nanos) {
        if self.can_cut(now) {
            self.halve(now);
        }
    }

    fn on_retransmit_timeout(&mut self, _now: Nanos) {
        self.ssthresh = (self.cwnd / 2).max(self.cfg.min_window_bytes);
        // RFC 5681: collapse to one segment (the "loss window").
        self.cwnd = u64::from(self.cfg.mss);
        self.last_cut = None;
    }

    fn wants_ecn(&self) -> bool {
        self.ecn_enabled
    }

    fn reset(&mut self, _now: Nanos) {
        self.cwnd = self.cfg.initial_window_bytes();
        self.ssthresh = u64::MAX;
        self.last_cut = None;
    }

    /// Layout: `[cwnd, ssthresh, ecn_enabled, last_cut?, srtt_hint]`.
    fn state_words(&self) -> Vec<u64> {
        let mut w = vec![self.cwnd, self.ssthresh, u64::from(self.ecn_enabled)];
        crate::push_opt(&mut w, self.last_cut);
        w.push(self.srtt_hint);
        w
    }

    fn load_state_words(&mut self, words: &[u64]) -> bool {
        let [cwnd, ssthresh, ecn, cut_f, cut_v, srtt_hint] = *words else {
            return false;
        };
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
        self.ecn_enabled = ecn != 0;
        self.last_cut = crate::read_opt(cut_f, cut_v);
        self.srtt_hint = srtt_hint;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_stats::time::MILLISECOND;

    fn cfg() -> CcConfig {
        CcConfig::host(1000)
    }

    #[test]
    fn starts_at_initial_window() {
        let r = NewReno::new(cfg());
        assert_eq!(r.cwnd(), 10_000);
        assert!(r.in_slow_start());
    }

    #[test]
    fn slow_start_growth() {
        let mut r = NewReno::new(cfg());
        for i in 0..10 {
            r.on_ack(&AckEvent::simple(i * 1000, 1000));
        }
        assert_eq!(r.cwnd(), 20_000);
    }

    #[test]
    fn fast_retransmit_halves() {
        let mut r = NewReno::new(cfg());
        r.on_fast_retransmit(MILLISECOND);
        assert_eq!(r.cwnd(), 5_000);
        assert_eq!(r.ssthresh(), 5_000);
        assert!(!r.in_slow_start());
    }

    #[test]
    fn at_most_one_cut_per_rtt() {
        let mut r = NewReno::new(cfg());
        r.on_fast_retransmit(10 * MILLISECOND);
        let after_first = r.cwnd();
        // A second loss indication within the same RTT must not cut again.
        r.on_fast_retransmit(10 * MILLISECOND + MILLISECOND / 10);
        assert_eq!(r.cwnd(), after_first);
        // But after an RTT it may.
        r.on_fast_retransmit(20 * MILLISECOND);
        assert!(r.cwnd() < after_first);
    }

    #[test]
    fn timeout_collapses_to_one_segment() {
        let mut r = NewReno::new(cfg());
        r.on_retransmit_timeout(0);
        assert_eq!(r.cwnd(), 1000);
    }

    #[test]
    fn floor_respected() {
        let mut r = NewReno::new(cfg());
        for i in 0..64 {
            r.on_fast_retransmit(i * 10 * MILLISECOND);
        }
        assert!(r.cwnd() >= cfg().min_window_bytes);
    }

    #[test]
    fn ece_ignored_unless_enabled() {
        let mut r = NewReno::new(cfg());
        let mut ack = AckEvent::simple(0, 1000);
        ack.ece = true;
        r.on_ack(&ack);
        assert_eq!(r.cwnd(), 11_000); // grew, did not cut

        let mut r = NewReno::new(cfg()).with_ecn();
        r.on_ack(&ack);
        assert_eq!(r.cwnd(), 5_000); // cut like loss
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut r = NewReno::new(cfg());
        r.on_fast_retransmit(0);
        r.reset(0);
        assert_eq!(r.cwnd(), 10_000);
        assert!(r.in_slow_start());
    }
}
