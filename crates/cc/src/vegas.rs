//! TCP Vegas (Brakmo & Peterson 1994), following Linux's `tcp_vegas.c`.
//!
//! Vegas is *delay-based*: once per RTT it compares the expected rate
//! (`cwnd / baseRTT`) with the actual rate (`cwnd / RTT`) and keeps the
//! difference — the estimated queue occupancy in segments — between
//! `alpha` (2) and `beta` (4). It is the conservative outlier in Figure 1:
//! against loss-based stacks it backs off long before they do.

use crate::{AckEvent, CcConfig, CongestionControl};
use acdc_stats::time::Nanos;

/// Lower bound on estimated queued segments.
const ALPHA: f64 = 2.0;
/// Upper bound on estimated queued segments.
const BETA: f64 = 4.0;
/// Slow-start threshold on queued segments.
const GAMMA: f64 = 1.0;

/// TCP Vegas congestion control.
#[derive(Debug, Clone)]
pub struct Vegas {
    cfg: CcConfig,
    cwnd: u64,
    ssthresh: u64,
    /// Minimum RTT ever observed (the "baseRTT").
    base_rtt: Option<Nanos>,
    /// Minimum RTT observed within the current window (Vegas uses the min
    /// of samples in the last RTT to dodge delayed-ACK noise).
    min_rtt_window: Option<Nanos>,
    rtt_count: u32,
    /// End of the current once-per-RTT evaluation epoch.
    epoch_end: Option<Nanos>,
    /// Grow every *other* RTT while in slow start.
    ss_grow_this_epoch: bool,
}

impl Vegas {
    /// Create with the given configuration.
    pub fn new(cfg: CcConfig) -> Vegas {
        Vegas {
            cfg,
            cwnd: cfg.initial_window_bytes(),
            ssthresh: u64::MAX,
            base_rtt: None,
            min_rtt_window: None,
            rtt_count: 0,
            epoch_end: None,
            ss_grow_this_epoch: false,
        }
    }

    fn mss(&self) -> u64 {
        u64::from(self.cfg.mss)
    }

    fn evaluate(&mut self, now: Nanos) {
        let (Some(base), Some(rtt)) = (self.base_rtt, self.min_rtt_window) else {
            return;
        };
        // Need a couple of samples for a meaningful estimate.
        if self.rtt_count < 2 {
            self.next_epoch(now, rtt);
            return;
        }
        let cwnd_seg = self.cwnd as f64 / self.mss() as f64;
        // diff = cwnd · (rtt − base)/rtt, in segments: queue occupancy.
        let diff = cwnd_seg * (rtt.saturating_sub(base)) as f64 / rtt as f64;

        if self.cwnd < self.ssthresh {
            // Slow start: double every other RTT while the queue is small.
            if diff > GAMMA {
                self.ssthresh = self.cwnd;
            } else if self.ss_grow_this_epoch {
                self.cwnd += self.cwnd;
            }
            self.ss_grow_this_epoch = !self.ss_grow_this_epoch;
        } else if diff < ALPHA {
            self.cwnd += self.mss();
        } else if diff > BETA {
            self.cwnd = self.cwnd.saturating_sub(self.mss());
        }
        self.cwnd = self.cwnd.max(self.cfg.min_window_bytes);
        self.next_epoch(now, rtt);
    }

    fn next_epoch(&mut self, now: Nanos, rtt: Nanos) {
        self.epoch_end = Some(now + rtt);
        self.min_rtt_window = None;
        self.rtt_count = 0;
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &'static str {
        "vegas"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        if let Some(rtt) = ack.rtt {
            self.base_rtt = Some(self.base_rtt.map_or(rtt, |b| b.min(rtt)));
            self.min_rtt_window = Some(self.min_rtt_window.map_or(rtt, |m| m.min(rtt)));
            self.rtt_count += 1;
        }
        let end = *self
            .epoch_end
            .get_or_insert_with(|| ack.now + ack.rtt.unwrap_or(acdc_stats::time::MILLISECOND));
        if ack.now >= end {
            self.evaluate(ack.now);
        }
    }

    fn on_fast_retransmit(&mut self, _now: Nanos) {
        // Vegas falls back to Reno behaviour on real loss.
        self.ssthresh = (self.cwnd / 2).max(self.cfg.min_window_bytes);
        self.cwnd = self.ssthresh;
    }

    fn on_retransmit_timeout(&mut self, _now: Nanos) {
        self.ssthresh = (self.cwnd / 2).max(self.cfg.min_window_bytes);
        self.cwnd = u64::from(self.cfg.mss);
        self.epoch_end = None;
    }

    fn reset(&mut self, _now: Nanos) {
        *self = Vegas::new(self.cfg);
    }

    /// Layout: `[cwnd, ssthresh, base_rtt?, min_rtt_window?, rtt_count,
    /// epoch_end?, ss_grow_this_epoch]`.
    fn state_words(&self) -> Vec<u64> {
        let mut w = vec![self.cwnd, self.ssthresh];
        crate::push_opt(&mut w, self.base_rtt);
        crate::push_opt(&mut w, self.min_rtt_window);
        w.push(u64::from(self.rtt_count));
        crate::push_opt(&mut w, self.epoch_end);
        w.push(u64::from(self.ss_grow_this_epoch));
        w
    }

    fn load_state_words(&mut self, words: &[u64]) -> bool {
        let [cwnd, ssthresh, base_f, base_v, min_f, min_v, rtt_count, end_f, end_v, grow] = *words
        else {
            return false;
        };
        let Ok(rtt_count) = u32::try_from(rtt_count) else {
            return false;
        };
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
        self.base_rtt = crate::read_opt(base_f, base_v);
        self.min_rtt_window = crate::read_opt(min_f, min_v);
        self.rtt_count = rtt_count;
        self.epoch_end = crate::read_opt(end_f, end_v);
        self.ss_grow_this_epoch = grow != 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_stats::time::{MICROSECOND, MILLISECOND};

    fn cfg() -> CcConfig {
        CcConfig::host(1000)
    }

    fn ack_with_rtt(now: Nanos, rtt: Nanos) -> AckEvent {
        AckEvent {
            now,
            newly_acked: 1000,
            marked: 0,
            rtt: Some(rtt),
            in_flight: 0,
            ece: false,
        }
    }

    /// Feed `epochs` evaluation epochs of ACKs with constant RTT.
    fn drive(v: &mut Vegas, start: Nanos, epochs: usize, rtt: Nanos) -> Nanos {
        let mut now = start;
        for _ in 0..epochs {
            for _ in 0..8 {
                v.on_ack(&ack_with_rtt(now, rtt));
                now += rtt / 8;
            }
            // One more past the epoch boundary to trigger evaluation.
            now += rtt;
            v.on_ack(&ack_with_rtt(now, rtt));
        }
        now
    }

    #[test]
    fn grows_when_queue_is_empty() {
        let mut v = Vegas::new(cfg());
        v.ssthresh = 0; // skip slow start for a clean CA test
        let before = v.cwnd();
        // RTT equals baseRTT → diff = 0 < alpha → +1 MSS per RTT.
        drive(&mut v, 0, 10, 100 * MICROSECOND);
        assert!(v.cwnd() > before, "cwnd={} before={}", v.cwnd(), before);
    }

    #[test]
    fn shrinks_when_queue_builds() {
        let mut v = Vegas::new(cfg());
        v.ssthresh = 0;
        // Establish baseRTT = 100µs.
        let now = drive(&mut v, 0, 3, 100 * MICROSECOND);
        let before = v.cwnd();
        // Now the path's RTT doubles: queue estimated at cwnd/2 segments,
        // way over beta → shrink.
        drive(&mut v, now, 10, 200 * MICROSECOND);
        assert!(v.cwnd() < before, "cwnd={} before={}", v.cwnd(), before);
    }

    #[test]
    fn holds_inside_band() {
        let mut v = Vegas::new(cfg());
        v.ssthresh = 0;
        v.cwnd = 10_000; // 10 segments
                         // baseRTT 100µs; actual 130µs → diff = 10·0.3/1.3 ≈ 2.3 ∈ [2,4].
        let now = drive(&mut v, 0, 1, 100 * MICROSECOND);
        let target = v.cwnd();
        drive(&mut v, now, 8, 130 * MICROSECOND);
        assert_eq!(v.cwnd(), target);
    }

    #[test]
    fn slow_start_exits_on_queueing() {
        let mut v = Vegas::new(cfg());
        assert!(v.in_slow_start());
        // Large queueing delay immediately: Vegas should cap ssthresh.
        let now = drive(&mut v, 0, 2, 100 * MICROSECOND);
        drive(&mut v, now, 4, MILLISECOND);
        assert!(!v.in_slow_start());
    }

    #[test]
    fn loss_fallback_halves() {
        let mut v = Vegas::new(cfg());
        v.cwnd = 20_000;
        v.on_fast_retransmit(0);
        assert_eq!(v.cwnd(), 10_000);
    }

    #[test]
    fn does_not_want_ecn() {
        assert!(!Vegas::new(cfg()).wants_ecn());
    }
}
