//! TCP Illinois (Liu, Başar & Srikant 2008), following Linux's
//! `tcp_illinois.c`.
//!
//! A loss-based AIMD whose additive-increase coefficient `α(d)` *grows* as
//! queueing delay shrinks (up to 10 segments per RTT) and whose
//! multiplicative-decrease factor `β(d)` grows with delay (1/8 → 1/2).
//! This is one of the two "aggressive" stacks in Figure 1 that crowd out
//! CUBIC/Reno/Vegas on a shared bottleneck.

use crate::{AckEvent, CcConfig, CongestionControl};
use acdc_stats::time::Nanos;

/// Maximum additive increase (segments per RTT) at zero delay.
const ALPHA_MAX: f64 = 10.0;
/// Minimum additive increase at high delay.
const ALPHA_MIN: f64 = 0.3;
/// Minimum decrease factor.
const BETA_MIN: f64 = 0.125;
/// Maximum decrease factor.
const BETA_MAX: f64 = 0.5;
/// RTT samples needed before trusting the delay estimate.
const MIN_SAMPLES: u32 = 8;

/// TCP Illinois congestion control.
#[derive(Debug, Clone)]
pub struct Illinois {
    cfg: CcConfig,
    cwnd: u64,
    ssthresh: u64,
    base_rtt: Option<Nanos>,
    max_rtt: Option<Nanos>,
    /// Sum and count of RTT samples in the current window.
    rtt_sum: u128,
    rtt_cnt: u32,
    /// Current alpha/beta, recomputed once per RTT.
    alpha: f64,
    beta: f64,
    epoch_end: Option<Nanos>,
    /// Bytes acked toward the next additive increase step.
    acked_accum: u64,
}

impl Illinois {
    /// Create with the given configuration.
    pub fn new(cfg: CcConfig) -> Illinois {
        Illinois {
            cfg,
            cwnd: cfg.initial_window_bytes(),
            ssthresh: u64::MAX,
            base_rtt: None,
            max_rtt: None,
            rtt_sum: 0,
            rtt_cnt: 0,
            alpha: 1.0,
            beta: BETA_MAX,
            epoch_end: None,
            acked_accum: 0,
        }
    }

    /// Current additive-increase coefficient (segments/RTT).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current multiplicative-decrease factor.
    pub fn beta_factor(&self) -> f64 {
        self.beta
    }

    fn update_params(&mut self) {
        let (Some(base), Some(max)) = (self.base_rtt, self.max_rtt) else {
            return;
        };
        if self.rtt_cnt == 0 {
            return;
        }
        let avg = (self.rtt_sum / u128::from(self.rtt_cnt)) as f64;
        let da = avg - base as f64; // current avg queueing delay
        let dm = (max - base) as f64; // max observed queueing delay
        if dm <= 0.0 || self.rtt_cnt < MIN_SAMPLES {
            self.alpha = ALPHA_MAX;
            self.beta = BETA_MIN;
            return;
        }
        // alpha(da): alpha_max below d1 = dm/100, then hyperbolic decay
        // to alpha_min at dm (continuous at d1). Linux tcp_illinois.c.
        let d1 = dm / 100.0;
        self.alpha = if da <= d1 {
            ALPHA_MAX
        } else {
            let k1 = (dm - d1) * ALPHA_MIN * ALPHA_MAX / (ALPHA_MAX - ALPHA_MIN);
            let k2 = (dm - d1) * ALPHA_MIN / (ALPHA_MAX - ALPHA_MIN) - d1;
            (k1 / (k2 + da)).clamp(ALPHA_MIN, ALPHA_MAX)
        };
        // beta(da): beta_min below d2 = dm/10, beta_max above d3 = 0.8·dm,
        // linear in between.
        let d2 = dm / 10.0;
        let d3 = 0.8 * dm;
        self.beta = if da <= d2 {
            BETA_MIN
        } else if da >= d3 {
            BETA_MAX
        } else {
            (BETA_MIN * (d3 - da) + BETA_MAX * (da - d2)) / (d3 - d2)
        };
    }
}

impl CongestionControl for Illinois {
    fn name(&self) -> &'static str {
        "illinois"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        if let Some(rtt) = ack.rtt {
            self.base_rtt = Some(self.base_rtt.map_or(rtt, |b| b.min(rtt)));
            self.max_rtt = Some(self.max_rtt.map_or(rtt, |m| m.max(rtt)));
            self.rtt_sum += u128::from(rtt);
            self.rtt_cnt += 1;
            let end = *self.epoch_end.get_or_insert(ack.now + rtt);
            if ack.now >= end {
                self.update_params();
                self.rtt_sum = 0;
                self.rtt_cnt = 0;
                self.epoch_end = Some(ack.now + rtt);
            }
        }
        if ack.newly_acked == 0 {
            return;
        }
        let mss = u64::from(self.cfg.mss);
        if self.cwnd < self.ssthresh {
            self.cwnd += ack.newly_acked.min(2 * mss);
            return;
        }
        // Additive increase of `alpha` segments per RTT: each acked byte
        // contributes `alpha·mss/cwnd` bytes of growth. Accumulate acked
        // bytes and convert in integral steps of `T = cwnd/(alpha·mss)`
        // acked bytes per byte of growth.
        self.acked_accum += ack.newly_acked;
        let t = ((self.cwnd as f64) / (self.alpha * mss as f64)).max(1.0) as u64;
        if self.acked_accum >= t {
            self.cwnd += self.acked_accum / t;
            self.acked_accum %= t;
        }
    }

    fn on_fast_retransmit(&mut self, _now: Nanos) {
        let cut = (self.cwnd as f64 * (1.0 - self.beta)) as u64;
        self.cwnd = cut.max(self.cfg.min_window_bytes);
        self.ssthresh = self.cwnd;
    }

    fn on_retransmit_timeout(&mut self, _now: Nanos) {
        self.ssthresh =
            ((self.cwnd as f64 * (1.0 - self.beta)) as u64).max(self.cfg.min_window_bytes);
        self.cwnd = u64::from(self.cfg.mss);
        self.epoch_end = None;
    }

    fn reset(&mut self, _now: Nanos) {
        *self = Illinois::new(self.cfg);
    }

    /// Layout: `[cwnd, ssthresh, base_rtt?, max_rtt?, rtt_sum_lo,
    /// rtt_sum_hi, rtt_cnt, alpha, beta, epoch_end?, acked_accum]` with
    /// `rtt_sum` split into two little-endian words and the `f64`
    /// coefficients bit-cast.
    fn state_words(&self) -> Vec<u64> {
        let mut w = vec![self.cwnd, self.ssthresh];
        crate::push_opt(&mut w, self.base_rtt);
        crate::push_opt(&mut w, self.max_rtt);
        w.extend([
            self.rtt_sum as u64,
            (self.rtt_sum >> 64) as u64,
            u64::from(self.rtt_cnt),
            self.alpha.to_bits(),
            self.beta.to_bits(),
        ]);
        crate::push_opt(&mut w, self.epoch_end);
        w.push(self.acked_accum);
        w
    }

    fn load_state_words(&mut self, words: &[u64]) -> bool {
        let [cwnd, ssthresh, base_f, base_v, max_f, max_v, sum_lo, sum_hi, rtt_cnt, alpha, beta, end_f, end_v, acked] =
            *words
        else {
            return false;
        };
        let Ok(rtt_cnt) = u32::try_from(rtt_cnt) else {
            return false;
        };
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
        self.base_rtt = crate::read_opt(base_f, base_v);
        self.max_rtt = crate::read_opt(max_f, max_v);
        self.rtt_sum = u128::from(sum_lo) | (u128::from(sum_hi) << 64);
        self.rtt_cnt = rtt_cnt;
        self.alpha = f64::from_bits(alpha);
        self.beta = f64::from_bits(beta);
        self.epoch_end = crate::read_opt(end_f, end_v);
        self.acked_accum = acked;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_stats::time::MICROSECOND;

    fn cfg() -> CcConfig {
        CcConfig::host(1000)
    }

    fn ack(now: Nanos, rtt: Nanos) -> AckEvent {
        AckEvent {
            now,
            newly_acked: 1000,
            marked: 0,
            rtt: Some(rtt),
            in_flight: 0,
            ece: false,
        }
    }

    fn drive(i: &mut Illinois, start: Nanos, epochs: usize, rtt: Nanos) -> Nanos {
        let mut now = start;
        for _ in 0..epochs {
            for _ in 0..10 {
                i.on_ack(&ack(now, rtt));
                now += rtt / 10;
            }
            now += rtt;
            i.on_ack(&ack(now, rtt));
        }
        now
    }

    #[test]
    fn low_delay_gives_max_alpha() {
        let mut i = Illinois::new(cfg());
        i.ssthresh = 0;
        // Seed delay range: one high-RTT excursion then low RTTs.
        let now = drive(&mut i, 0, 2, 500 * MICROSECOND);
        drive(&mut i, now, 6, 100 * MICROSECOND);
        assert!(i.alpha() > 5.0, "alpha={}", i.alpha());
        assert!(i.beta_factor() <= 0.2, "beta={}", i.beta_factor());
    }

    #[test]
    fn high_delay_gives_min_alpha_and_max_beta() {
        let mut i = Illinois::new(cfg());
        i.ssthresh = 0;
        let now = drive(&mut i, 0, 2, 100 * MICROSECOND);
        // Sit at the top of the observed delay range.
        drive(&mut i, now, 10, 500 * MICROSECOND);
        assert!(i.alpha() < 1.0, "alpha={}", i.alpha());
        assert!(i.beta_factor() > 0.4, "beta={}", i.beta_factor());
    }

    #[test]
    fn grows_faster_than_reno_at_low_delay() {
        let mut ill = Illinois::new(cfg());
        ill.ssthresh = 0;
        let now = drive(&mut ill, 0, 2, 400 * MICROSECOND);
        let start_w = ill.cwnd();
        drive(&mut ill, now, 10, 100 * MICROSECOND);
        let ill_growth = ill.cwnd() - start_w;

        let mut reno = crate::NewReno::new(cfg());
        // Same number of CA ACK bytes through Reno.
        let rw;
        let start_r;
        {
            let mut now2 = 0;
            reno.on_fast_retransmit(0); // leave slow start
            start_r = reno.cwnd();
            for _ in 0..(10 * 11) {
                reno.on_ack(&AckEvent::simple(now2, 1000));
                now2 += 10 * MICROSECOND;
            }
            rw = reno.cwnd() - start_r;
        }
        assert!(
            ill_growth > rw,
            "illinois {ill_growth} should outgrow reno {rw}"
        );
    }

    #[test]
    fn loss_uses_current_beta() {
        let mut i = Illinois::new(cfg());
        i.cwnd = 100_000;
        i.beta = 0.5;
        i.on_fast_retransmit(0);
        assert_eq!(i.cwnd(), 50_000);

        let mut i = Illinois::new(cfg());
        i.cwnd = 100_000;
        i.beta = 0.125;
        i.on_fast_retransmit(0);
        assert_eq!(i.cwnd(), 87_500);
    }

    #[test]
    fn timeout_collapses() {
        let mut i = Illinois::new(cfg());
        i.on_retransmit_timeout(0);
        assert_eq!(i.cwnd(), 1000);
    }
}
