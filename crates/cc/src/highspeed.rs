//! HighSpeed TCP (RFC 3649, Floyd), following Linux's `tcp_highspeed.c`.
//!
//! A loss-based algorithm whose additive-increase amount `a(w)` and
//! multiplicative-decrease factor `b(w)` depend on the current window: at
//! large windows it grows much faster and cuts much less than Reno. The
//! coefficients come from the RFC's lookup table, reproduced here exactly
//! as in the Linux source (window thresholds in segments).

use crate::{AckEvent, CcConfig, CongestionControl};
use acdc_stats::time::Nanos;

/// One row of the RFC 3649 response table: up to `cwnd` segments, add
/// `ai` segments per RTT, and on loss multiply by `1 − md` where the
/// `md` column stores `b(w)` in 1/128 units (as in Linux).
#[derive(Debug, Clone, Copy)]
struct Row {
    cwnd: u32,
    ai: u32,
    md_128: u32,
}

/// The Linux `hstcp_aimd_vals` table (73 entries, window in segments,
/// `md` in units of 1/128).
#[rustfmt::skip]
static AIMD_TABLE: [Row; 73] = [
    Row { cwnd: 38, ai: 1, md_128: 64 },      Row { cwnd: 118, ai: 2, md_128: 56 },
    Row { cwnd: 221, ai: 3, md_128: 51 },     Row { cwnd: 347, ai: 4, md_128: 48 },
    Row { cwnd: 495, ai: 5, md_128: 45 },     Row { cwnd: 663, ai: 6, md_128: 43 },
    Row { cwnd: 851, ai: 7, md_128: 42 },     Row { cwnd: 1058, ai: 8, md_128: 40 },
    Row { cwnd: 1284, ai: 9, md_128: 39 },    Row { cwnd: 1529, ai: 10, md_128: 38 },
    Row { cwnd: 1793, ai: 11, md_128: 37 },   Row { cwnd: 2076, ai: 12, md_128: 36 },
    Row { cwnd: 2378, ai: 13, md_128: 35 },   Row { cwnd: 2699, ai: 14, md_128: 34 },
    Row { cwnd: 3039, ai: 15, md_128: 34 },   Row { cwnd: 3399, ai: 16, md_128: 33 },
    Row { cwnd: 3778, ai: 17, md_128: 32 },   Row { cwnd: 4177, ai: 18, md_128: 32 },
    Row { cwnd: 4596, ai: 19, md_128: 31 },   Row { cwnd: 5036, ai: 20, md_128: 30 },
    Row { cwnd: 5497, ai: 21, md_128: 30 },   Row { cwnd: 5979, ai: 22, md_128: 29 },
    Row { cwnd: 6483, ai: 23, md_128: 29 },   Row { cwnd: 7009, ai: 24, md_128: 28 },
    Row { cwnd: 7558, ai: 25, md_128: 28 },   Row { cwnd: 8130, ai: 26, md_128: 28 },
    Row { cwnd: 8726, ai: 27, md_128: 27 },   Row { cwnd: 9346, ai: 28, md_128: 27 },
    Row { cwnd: 9991, ai: 29, md_128: 26 },   Row { cwnd: 10661, ai: 30, md_128: 26 },
    Row { cwnd: 11358, ai: 31, md_128: 26 },  Row { cwnd: 12082, ai: 32, md_128: 25 },
    Row { cwnd: 12834, ai: 33, md_128: 25 },  Row { cwnd: 13614, ai: 34, md_128: 25 },
    Row { cwnd: 14424, ai: 35, md_128: 24 },  Row { cwnd: 15265, ai: 36, md_128: 24 },
    Row { cwnd: 16137, ai: 37, md_128: 24 },  Row { cwnd: 17042, ai: 38, md_128: 23 },
    Row { cwnd: 17981, ai: 39, md_128: 23 },  Row { cwnd: 18955, ai: 40, md_128: 23 },
    Row { cwnd: 19965, ai: 41, md_128: 22 },  Row { cwnd: 21013, ai: 42, md_128: 22 },
    Row { cwnd: 22101, ai: 43, md_128: 22 },  Row { cwnd: 23230, ai: 44, md_128: 21 },
    Row { cwnd: 24402, ai: 45, md_128: 21 },  Row { cwnd: 25618, ai: 46, md_128: 21 },
    Row { cwnd: 26881, ai: 47, md_128: 21 },  Row { cwnd: 28193, ai: 48, md_128: 20 },
    Row { cwnd: 29557, ai: 49, md_128: 20 },  Row { cwnd: 30975, ai: 50, md_128: 20 },
    Row { cwnd: 32450, ai: 51, md_128: 19 },  Row { cwnd: 33986, ai: 52, md_128: 19 },
    Row { cwnd: 35586, ai: 53, md_128: 19 },  Row { cwnd: 37253, ai: 54, md_128: 19 },
    Row { cwnd: 38992, ai: 55, md_128: 18 },  Row { cwnd: 40808, ai: 56, md_128: 18 },
    Row { cwnd: 42707, ai: 57, md_128: 18 },  Row { cwnd: 44694, ai: 58, md_128: 18 },
    Row { cwnd: 46776, ai: 59, md_128: 17 },  Row { cwnd: 48961, ai: 60, md_128: 17 },
    Row { cwnd: 51258, ai: 61, md_128: 17 },  Row { cwnd: 53677, ai: 62, md_128: 17 },
    Row { cwnd: 56230, ai: 63, md_128: 16 },  Row { cwnd: 58932, ai: 64, md_128: 16 },
    Row { cwnd: 61799, ai: 65, md_128: 16 },  Row { cwnd: 64851, ai: 66, md_128: 16 },
    Row { cwnd: 68113, ai: 67, md_128: 15 },  Row { cwnd: 71617, ai: 68, md_128: 15 },
    Row { cwnd: 75401, ai: 69, md_128: 15 },  Row { cwnd: 79517, ai: 70, md_128: 15 },
    Row { cwnd: 84035, ai: 71, md_128: 14 },  Row { cwnd: 89053, ai: 72, md_128: 14 },
    Row { cwnd: 94717, ai: 73, md_128: 14 },
];

/// HighSpeed TCP congestion control.
#[derive(Debug, Clone)]
pub struct HighSpeed {
    cfg: CcConfig,
    cwnd: u64,
    ssthresh: u64,
    /// Index into [`AIMD_TABLE`] for the current window.
    idx: usize,
    acked_accum: u64,
}

impl HighSpeed {
    /// Create with the given configuration.
    pub fn new(cfg: CcConfig) -> HighSpeed {
        HighSpeed {
            cfg,
            cwnd: cfg.initial_window_bytes(),
            ssthresh: u64::MAX,
            idx: 0,
            acked_accum: 0,
        }
    }

    fn cwnd_segments(&self) -> u32 {
        (self.cwnd / u64::from(self.cfg.mss)).max(1) as u32
    }

    /// Slide the table index to match the current window (Linux keeps it
    /// monotone with small steps; we do the same).
    fn update_idx(&mut self) {
        let w = self.cwnd_segments();
        while self.idx < AIMD_TABLE.len() - 1 && w > AIMD_TABLE[self.idx].cwnd {
            self.idx += 1;
        }
        while self.idx > 0 && w <= AIMD_TABLE[self.idx - 1].cwnd {
            self.idx -= 1;
        }
    }

    /// Current additive-increase coefficient a(w), in segments per RTT.
    pub fn ai(&self) -> u32 {
        AIMD_TABLE[self.idx].ai
    }

    /// Current decrease factor b(w) as a fraction.
    pub fn md(&self) -> f64 {
        AIMD_TABLE[self.idx].md_128 as f64 / 128.0
    }
}

impl CongestionControl for HighSpeed {
    fn name(&self) -> &'static str {
        "highspeed"
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    fn on_ack(&mut self, ack: &AckEvent) {
        if ack.newly_acked == 0 {
            return;
        }
        let mss = u64::from(self.cfg.mss);
        if self.cwnd < self.ssthresh {
            self.cwnd += ack.newly_acked.min(2 * mss);
            self.update_idx();
            return;
        }
        self.update_idx();
        // cwnd += a(w)·mss per window of acked bytes, spread across ACKs.
        self.acked_accum += ack.newly_acked;
        let t = (self.cwnd / (u64::from(self.ai()) * mss)).max(1);
        if self.acked_accum >= t {
            self.cwnd += self.acked_accum / t;
            self.acked_accum %= t;
        }
    }

    fn on_fast_retransmit(&mut self, _now: Nanos) {
        self.update_idx();
        let cut = (self.cwnd as f64 * (1.0 - self.md())) as u64;
        self.cwnd = cut.max(self.cfg.min_window_bytes);
        self.ssthresh = self.cwnd;
        self.update_idx();
    }

    fn on_retransmit_timeout(&mut self, _now: Nanos) {
        self.update_idx();
        self.ssthresh =
            ((self.cwnd as f64 * (1.0 - self.md())) as u64).max(self.cfg.min_window_bytes);
        self.cwnd = u64::from(self.cfg.mss);
        self.idx = 0;
    }

    fn reset(&mut self, _now: Nanos) {
        *self = HighSpeed::new(self.cfg);
    }

    /// Layout: `[cwnd, ssthresh, idx, acked_accum]`.
    fn state_words(&self) -> Vec<u64> {
        vec![self.cwnd, self.ssthresh, self.idx as u64, self.acked_accum]
    }

    fn load_state_words(&mut self, words: &[u64]) -> bool {
        let [cwnd, ssthresh, idx, acked] = *words else {
            return false;
        };
        if idx as usize >= AIMD_TABLE.len() {
            return false;
        }
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
        self.idx = idx as usize;
        self.acked_accum = acked;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CcConfig {
        CcConfig::host(1000)
    }

    #[test]
    fn table_is_monotone() {
        for w in AIMD_TABLE.windows(2) {
            assert!(w[1].cwnd > w[0].cwnd);
            assert!(w[1].ai >= w[0].ai);
            assert!(w[1].md_128 <= w[0].md_128);
        }
    }

    #[test]
    fn small_windows_behave_like_reno() {
        let mut h = HighSpeed::new(cfg());
        h.ssthresh = 0;
        h.cwnd = 20_000; // 20 segments < 38 → Reno region
        h.update_idx();
        assert_eq!(h.ai(), 1);
        assert!((h.md() - 0.5).abs() < 1e-9);
        let before = h.cwnd();
        h.on_fast_retransmit(0);
        assert_eq!(h.cwnd(), before / 2);
    }

    #[test]
    fn large_windows_grow_fast_and_cut_little() {
        let mut h = HighSpeed::new(cfg());
        h.ssthresh = 0;
        h.cwnd = 10_000_000; // 10k segments
        h.update_idx();
        assert!(h.ai() >= 28, "ai={}", h.ai());
        assert!(h.md() < 0.25, "md={}", h.md());
        let before = h.cwnd();
        h.on_fast_retransmit(0);
        assert!(h.cwnd() > before * 3 / 4);
    }

    #[test]
    fn growth_scales_with_window() {
        // Acking one full window grows cwnd by ~ai segments.
        let mut h = HighSpeed::new(cfg());
        h.ssthresh = 0;
        h.cwnd = 2_000_000; // 2000 segments → ai = 12
        h.update_idx();
        let ai = h.ai() as u64;
        let start = h.cwnd();
        let mut acked = 0;
        while acked < start {
            h.on_ack(&AckEvent::simple(0, 1000));
            acked += 1000;
        }
        let grown = h.cwnd() - start;
        assert!(
            grown >= (ai - 2) * 1000 && grown <= (ai + 2) * 1000,
            "grew {grown} want ~{}",
            ai * 1000
        );
    }

    #[test]
    fn idx_moves_both_ways() {
        let mut h = HighSpeed::new(cfg());
        h.cwnd = 50_000_000;
        h.update_idx();
        let high = h.idx;
        h.cwnd = 10_000;
        h.update_idx();
        assert!(h.idx < high);
        assert_eq!(h.idx, 0);
    }
}
