//! # acdc-cc — pluggable TCP congestion-control algorithms
//!
//! Faithful ports of the congestion-control algorithms the paper exercises:
//! TCP New Reno, CUBIC, Vegas, Illinois, HighSpeed and DCTCP, plus the
//! paper's priority-weighted DCTCP variant (§3.4, Equation 1).
//!
//! The same [`CongestionControl`] objects are driven from two places,
//! mirroring the paper's central claim that congestion control is portable
//! across layers:
//!
//! * **host TCP endpoints** (`acdc-tcp`) use them as the guest's native
//!   stack;
//! * **the vSwitch** (`acdc-vswitch`) runs one instance per flow entry and
//!   enforces the resulting window via the receive-window rewrite.
//!
//! All windows are kept in **bytes** (like Linux's `snd_cwnd * mss`
//! products); the AC/DC enforcement path specifically exploits byte
//! granularity — its floor can go below the 2-packet minimum a host stack
//! imposes, which is exactly the incast advantage Figure 19 shows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Check a protocol-state invariant when the `strict-invariants` feature
/// is enabled. Expands to a `debug_assert!`, so it is additionally elided
/// from release builds; without the feature it compiles to nothing while
/// still type-checking the condition.
macro_rules! strict_invariant {
    ($($arg:tt)+) => {
        if cfg!(feature = "strict-invariants") {
            debug_assert!($($arg)+);
        }
    };
}
pub(crate) use strict_invariant;

pub mod clamp;
pub mod cubic;
pub mod dctcp;
pub mod highspeed;
pub mod illinois;
pub mod kind;
pub mod reno;
pub mod vegas;

pub use clamp::Clamped;
pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use highspeed::HighSpeed;
pub use illinois::Illinois;
pub use kind::CcKind;
pub use reno::NewReno;
pub use vegas::Vegas;

use acdc_stats::time::Nanos;

/// Static configuration every algorithm instance is built with.
#[derive(Debug, Clone, Copy)]
pub struct CcConfig {
    /// Maximum segment size in bytes (1448 or 8948 in the paper's testbed).
    pub mss: u32,
    /// Initial congestion window in segments (RFC 6928 default of 10).
    pub initial_window_pkts: u32,
    /// Floor for the congestion window, in **bytes**. Host stacks use
    /// `2 * mss` (the Linux lower bound the paper calls out); the AC/DC
    /// vSwitch path may use a smaller byte-granular floor.
    pub min_window_bytes: u64,
}

impl CcConfig {
    /// Config for a host stack with the given MSS (floor = 2 segments).
    pub fn host(mss: u32) -> CcConfig {
        CcConfig {
            mss,
            initial_window_pkts: 10,
            min_window_bytes: 2 * u64::from(mss),
        }
    }

    /// Config for the AC/DC vSwitch enforcement path: same initial window,
    /// but a byte-granular floor far below 2 segments (one tenth of a
    /// segment, bounded below by 1 byte). See Figure 19's discussion.
    pub fn vswitch(mss: u32) -> CcConfig {
        CcConfig {
            mss,
            initial_window_pkts: 10,
            min_window_bytes: (u64::from(mss) / 10).max(1),
        }
    }

    /// Initial window in bytes.
    pub fn initial_window_bytes(&self) -> u64 {
        u64::from(self.initial_window_pkts) * u64::from(self.mss)
    }
}

/// Everything an algorithm may want to know about one arriving ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Virtual time of the ACK's arrival.
    pub now: Nanos,
    /// Bytes newly acknowledged by this ACK (0 for a duplicate ACK).
    pub newly_acked: u64,
    /// Of `newly_acked`, bytes the receiver reported as CE-marked. Host
    /// stacks derive this from ECE echoes; the vSwitch from PACK options.
    pub marked: u64,
    /// An RTT sample attributable to this ACK, if one could be taken.
    pub rtt: Option<Nanos>,
    /// Bytes still in flight *after* processing this ACK.
    pub in_flight: u64,
    /// Classic ECN echo flag as seen on the wire (used by non-DCTCP stacks
    /// that react to ECN like loss).
    pub ece: bool,
}

impl AckEvent {
    /// A minimal ACK event for tests and simple callers.
    pub fn simple(now: Nanos, newly_acked: u64) -> AckEvent {
        AckEvent {
            now,
            newly_acked,
            marked: 0,
            rtt: None,
            in_flight: 0,
            ece: false,
        }
    }
}

/// A pluggable congestion-control algorithm.
///
/// Implementations keep all state internal and expose the current
/// congestion window in bytes. Callers translate windows into permission to
/// send (host stack) or into an enforced receive window (vSwitch).
pub trait CongestionControl: Send + core::fmt::Debug {
    /// Short algorithm name, e.g. `"cubic"`.
    fn name(&self) -> &'static str;

    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> u64;

    /// Process an ACK that acknowledged new data (or carried new ECN
    /// feedback). Duplicate-ACK-triggered loss goes through
    /// [`CongestionControl::on_retransmit_timeout`] /
    /// [`CongestionControl::on_fast_retransmit`] instead.
    fn on_ack(&mut self, ack: &AckEvent);

    /// A loss was detected via three duplicate ACKs (fast retransmit).
    fn on_fast_retransmit(&mut self, now: Nanos);

    /// The retransmission timer fired.
    fn on_retransmit_timeout(&mut self, now: Nanos);

    /// Does this algorithm want ECT set on its packets and ECN feedback
    /// delivered? (DCTCP: yes; classic loss-based stacks: configurable,
    /// and delay-based Vegas: no.)
    fn wants_ecn(&self) -> bool {
        false
    }

    /// Is the algorithm currently in slow start?
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }

    /// DCTCP-style marked-byte-fraction estimate quantized to units of
    /// 1e-6, if the algorithm maintains one. Integer units keep the value
    /// `Eq`-comparable for telemetry (`alpha-update` events) without
    /// floating-point equality.
    fn alpha_micros(&self) -> Option<u64> {
        None
    }

    /// Reset to initial state (new connection reusing the object).
    fn reset(&mut self, now: Nanos);

    /// Serialize the algorithm's *dynamic* state as a flat word list for
    /// checkpointing. Construction-time configuration ([`CcConfig`],
    /// priority weights, clamp ceilings) is deliberately excluded: a
    /// restore rebuilds the object through the same construction path and
    /// then loads these words, so the encoding only has to carry what
    /// evolves at runtime. Encoding conventions (documented per
    /// algorithm, stable within one checkpoint schema version): `u64`
    /// verbatim, `f64` via [`f64::to_bits`], `bool` as 0/1, `Option<T>`
    /// as a presence flag word followed by the value word(s), `u128` as
    /// two little-endian words. The default is stateless (empty).
    fn state_words(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restore state previously captured by
    /// [`CongestionControl::state_words`] on an identically configured
    /// instance. Returns `false` — leaving the receiver unchanged — when
    /// the word list does not match this algorithm's expected layout.
    /// The stateless default accepts only an empty list.
    fn load_state_words(&mut self, words: &[u64]) -> bool {
        words.is_empty()
    }
}

impl CongestionControl for Box<dyn CongestionControl> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
    fn cwnd(&self) -> u64 {
        self.as_ref().cwnd()
    }
    fn ssthresh(&self) -> u64 {
        self.as_ref().ssthresh()
    }
    fn on_ack(&mut self, ack: &AckEvent) {
        self.as_mut().on_ack(ack)
    }
    fn on_fast_retransmit(&mut self, now: Nanos) {
        self.as_mut().on_fast_retransmit(now)
    }
    fn on_retransmit_timeout(&mut self, now: Nanos) {
        self.as_mut().on_retransmit_timeout(now)
    }
    fn wants_ecn(&self) -> bool {
        self.as_ref().wants_ecn()
    }
    fn in_slow_start(&self) -> bool {
        self.as_ref().in_slow_start()
    }
    fn alpha_micros(&self) -> Option<u64> {
        self.as_ref().alpha_micros()
    }
    fn reset(&mut self, now: Nanos) {
        self.as_mut().reset(now)
    }
    fn state_words(&self) -> Vec<u64> {
        self.as_ref().state_words()
    }
    fn load_state_words(&mut self, words: &[u64]) -> bool {
        self.as_mut().load_state_words(words)
    }
}

/// Append an `Option<u64>` to a state-word list: a presence flag word,
/// then the value word (0 when absent).
pub(crate) fn push_opt(words: &mut Vec<u64>, v: Option<u64>) {
    words.push(u64::from(v.is_some()));
    words.push(v.unwrap_or(0));
}

/// Decode the `[flag, value]` pair written by [`push_opt`].
pub(crate) fn read_opt(flag: u64, value: u64) -> Option<u64> {
    (flag != 0).then_some(value)
}

/// Shared helper: Reno-style additive increase used by several algorithms
/// ("tcp_cong_avoid" in the paper's Figure 5). Returns the new cwnd after
/// acking `acked` bytes with segment size `mss`.
pub(crate) fn reno_cong_avoid(cwnd: u64, ssthresh: u64, acked: u64, mss: u32) -> u64 {
    let mss = u64::from(mss);
    if cwnd < ssthresh {
        // Slow start: grow by the acknowledged bytes (ABC, L=1).
        cwnd + acked.min(mss * 2)
    } else {
        // Congestion avoidance: cwnd += mss*mss/cwnd per ACK (byte form of
        // "one segment per RTT"), at least 1 byte to keep making progress.
        cwnd + ((mss * mss) / cwnd.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_config_floor_is_two_segments() {
        let c = CcConfig::host(1448);
        assert_eq!(c.min_window_bytes, 2896);
        assert_eq!(c.initial_window_bytes(), 14480);
    }

    #[test]
    fn vswitch_config_floor_is_sub_segment() {
        let c = CcConfig::vswitch(8948);
        assert!(c.min_window_bytes < u64::from(c.mss));
        assert!(c.min_window_bytes >= 1);
    }

    #[test]
    fn reno_cong_avoid_slow_start_doubles_per_rtt() {
        let mss = 1000u32;
        let mut cwnd = 10_000u64;
        // Acking a full window in slow start doubles it.
        let mut acked = 0;
        while acked < 10_000 {
            cwnd = reno_cong_avoid(cwnd, u64::MAX, 1000, mss);
            acked += 1000;
        }
        assert_eq!(cwnd, 20_000);
    }

    #[test]
    fn reno_cong_avoid_ca_grows_one_mss_per_window() {
        let mss = 1000u32;
        let start = 10_000u64;
        let mut cwnd = start;
        // Acking one full window in CA grows ~1 MSS.
        let acks = start / 1000;
        for _ in 0..acks {
            cwnd = reno_cong_avoid(cwnd, 1, 1000, mss);
        }
        assert!(cwnd >= start + 900 && cwnd <= start + 1100, "cwnd={cwnd}");
    }
}
