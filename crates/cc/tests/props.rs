//! Property-based tests: invariants every congestion-control algorithm must
//! hold under arbitrary event sequences.

use acdc_cc::{AckEvent, CcConfig, CcKind, CongestionControl, Dctcp};
use proptest::prelude::*;

/// One abstract congestion-control event.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Ack {
        bytes: u32,
        marked: bool,
        rtt_us: u32,
    },
    Dup,
    FastRetransmit,
    Timeout,
}

fn arb_event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        6 => (1u32..20000, any::<bool>(), 10u32..5000).prop_map(|(bytes, marked, rtt_us)| Ev::Ack { bytes, marked, rtt_us }),
        1 => Just(Ev::Dup),
        1 => Just(Ev::FastRetransmit),
        1 => Just(Ev::Timeout),
    ]
}

fn arb_kind() -> impl Strategy<Value = CcKind> {
    prop_oneof![
        Just(CcKind::Reno),
        Just(CcKind::Cubic),
        Just(CcKind::Vegas),
        Just(CcKind::Illinois),
        Just(CcKind::HighSpeed),
        Just(CcKind::Dctcp),
        (0.0f64..=1.0).prop_map(CcKind::DctcpPriority),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The window must stay in [1 byte, +bounded] and never hit zero, no
    /// matter what sequence of ACKs/losses/timeouts arrives.
    #[test]
    fn cwnd_never_zero_and_bounded(
        kind in arb_kind(),
        events in prop::collection::vec(arb_event(), 1..300),
        mss in prop_oneof![Just(1448u32), Just(8948u32)],
    ) {
        let cfg = CcConfig::host(mss);
        let mut cc = kind.build(cfg);
        let mut now = 0u64;
        for ev in &events {
            now += 50_000;
            match *ev {
                Ev::Ack { bytes, marked, rtt_us } => {
                    let b = u64::from(bytes);
                    cc.on_ack(&AckEvent {
                        now,
                        newly_acked: b,
                        marked: if marked { b } else { 0 },
                        rtt: Some(u64::from(rtt_us) * 1_000),
                        in_flight: b,
                        ece: marked,
                    });
                }
                Ev::Dup => cc.on_ack(&AckEvent::simple(now, 0)),
                Ev::FastRetransmit => cc.on_fast_retransmit(now),
                Ev::Timeout => cc.on_retransmit_timeout(now),
            }
            prop_assert!(cc.cwnd() >= 1, "{} cwnd hit zero", cc.name());
            // No algorithm should outgrow the theoretical max of initial +
            // all acked bytes times a small constant (slow start at most
            // doubles per window; our ABC caps growth at 2·acked).
            let total_acked: u64 = events.iter().map(|e| match e {
                Ev::Ack { bytes, .. } => u64::from(*bytes), _ => 0
            }).sum();
            prop_assert!(
                cc.cwnd() <= cfg.initial_window_bytes() + 3 * total_acked + u64::from(mss) * 16,
                "{} cwnd {} exploded", cc.name(), cc.cwnd()
            );
        }
    }

    /// After any event sequence, reset restores the initial window.
    #[test]
    fn reset_restores_initial_window(
        kind in arb_kind(),
        events in prop::collection::vec(arb_event(), 1..80),
    ) {
        let cfg = CcConfig::host(1448);
        let mut cc = kind.build(cfg);
        let mut now = 0u64;
        for ev in &events {
            now += 10_000;
            match *ev {
                Ev::Ack { bytes, marked, rtt_us } => cc.on_ack(&AckEvent {
                    now,
                    newly_acked: u64::from(bytes),
                    marked: if marked { u64::from(bytes) } else { 0 },
                    rtt: Some(u64::from(rtt_us) * 1_000),
                    in_flight: 0,
                    ece: marked,
                }),
                Ev::Dup => {}
                Ev::FastRetransmit => cc.on_fast_retransmit(now),
                Ev::Timeout => cc.on_retransmit_timeout(now),
            }
        }
        cc.reset(now);
        prop_assert_eq!(cc.cwnd(), cfg.initial_window_bytes());
    }

    /// DCTCP's alpha estimate stays within [0, 1].
    #[test]
    fn dctcp_alpha_bounded(
        events in prop::collection::vec(arb_event(), 1..300),
    ) {
        let mut d = Dctcp::new(CcConfig::host(1448));
        let mut now = 0u64;
        for ev in &events {
            now += 200_000;
            match *ev {
                Ev::Ack { bytes, marked, rtt_us } => d.on_ack(&AckEvent {
                    now,
                    newly_acked: u64::from(bytes),
                    marked: if marked { u64::from(bytes) } else { 0 },
                    rtt: Some(u64::from(rtt_us) * 1_000),
                    in_flight: 0,
                    ece: false,
                }),
                Ev::Dup => {}
                Ev::FastRetransmit => d.on_fast_retransmit(now),
                Ev::Timeout => d.on_retransmit_timeout(now),
            }
            prop_assert!((0.0..=1.0).contains(&d.alpha()), "alpha={}", d.alpha());
        }
    }

    /// For a fixed alpha, the priority cut keeps more window at higher β.
    #[test]
    fn dctcp_priority_monotone_in_beta(betas in prop::collection::vec(0.0f64..=1.0, 2..6)) {
        let mut betas = betas;
        betas.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cfg = CcConfig::host(1000);
        let mut previous: Option<u64> = None;
        for &beta in &betas {
            let mut d = Dctcp::with_priority(cfg, beta);
            // Converge alpha against a fixed marking pattern, identically
            // for every beta.
            let mut now = 0u64;
            for w in 0..60u64 {
                for i in 0..10u64 {
                    let marked = if i < 3 { 1000 } else { 0 };
                    d.on_ack(&AckEvent {
                        now,
                        newly_acked: 1000,
                        marked,
                        rtt: Some(100_000),
                        in_flight: 0,
                        ece: false,
                    });
                    now += 20_000;
                }
                now += 1_000_000 * (w % 2 + 1);
                d.on_ack(&AckEvent::simple(now, 0));
            }
            if let Some(prev) = previous {
                prop_assert!(d.cwnd() >= prev,
                    "beta order violated: cwnd {} < {} at beta {beta}", d.cwnd(), prev);
            }
            previous = Some(d.cwnd());
        }
    }
}
