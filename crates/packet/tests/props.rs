//! Property-based tests for the wire formats.

use acdc_packet::{
    checksum, Ecn, Ipv4Packet, Ipv4Repr, PackOption, Segment, SeqNumber, TcpFlags, TcpOption,
    TcpPacket, TcpRepr, PROTO_TCP,
};
use proptest::prelude::*;

fn arb_ecn() -> impl Strategy<Value = Ecn> {
    prop_oneof![
        Just(Ecn::NotEct),
        Just(Ecn::Ect0),
        Just(Ecn::Ect1),
        Just(Ecn::Ce)
    ]
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    any::<u8>().prop_map(TcpFlags::from_bits)
}

fn arb_options() -> impl Strategy<Value = Vec<TcpOption>> {
    prop::collection::vec(
        prop_oneof![
            Just(TcpOption::NoOperation),
            any::<u16>().prop_map(TcpOption::MaxSegmentSize),
            (0u8..=14).prop_map(TcpOption::WindowScale),
            Just(TcpOption::SackPermitted),
            (any::<u32>(), any::<u32>()).prop_map(|(a, b)| TcpOption::Timestamps(a, b)),
            (any::<u32>(), any::<u32>()).prop_map(|(t, m)| TcpOption::Pack(PackOption {
                total_bytes: t,
                marked_bytes: m,
            })),
        ],
        0..3,
    )
}

proptest! {
    #[test]
    fn checksum_of_buffer_with_its_checksum_appended_verifies(data in prop::collection::vec(any::<u8>(), 0..128)) {
        // Only meaningful for even-length buffers: appending the checksum to
        // an odd-length buffer shifts word alignment.
        prop_assume!(data.len() % 2 == 0);
        let c = checksum::checksum(&data);
        let mut full = data.clone();
        full.extend_from_slice(&c.to_be_bytes());
        let folded = checksum::fold(checksum::sum_words(0, &full));
        prop_assert_eq!(folded, 0xffff);
    }

    #[test]
    fn incremental_adjust_equals_recompute(data in prop::collection::vec(any::<u8>(), 4..64), new_word: u16) {
        prop_assume!(data.len() % 2 == 0);
        let before = checksum::checksum(&data);
        let old_word = u16::from_be_bytes([data[0], data[1]]);
        let mut changed = data.clone();
        changed[0..2].copy_from_slice(&new_word.to_be_bytes());
        let full = checksum::checksum(&changed);
        let incr = checksum::checksum_adjust(before, old_word, new_word);
        // The two are equal as one's-complement values (0x0000 == 0xffff).
        let norm = |c: u16| if c == 0xffff { 0 } else { c };
        prop_assert_eq!(norm(full), norm(incr));
    }

    #[test]
    fn seq_ordering_is_antisymmetric(a: u32, b: u32) {
        let (sa, sb) = (SeqNumber(a), SeqNumber(b));
        let d = sb - sa;
        prop_assume!(d != i32::MIN && d != 0);
        prop_assert_eq!(sa < sb, sb > sa);
        prop_assert_eq!(sa > sb, sb < sa);
    }

    #[test]
    fn seq_addition_preserves_order_within_window(a: u32, delta in 1u32..1_000_000) {
        let s = SeqNumber(a);
        prop_assert!(s + delta > s);
        prop_assert_eq!((s + delta) - s, delta as i32);
    }

    #[test]
    fn seq_wraparound_add_crosses_boundary(near_end in 0u32..1_000, delta in 1u32..1_000_000) {
        // Start close enough to 2^32 that the addition wraps.
        let s = SeqNumber(u32::MAX - near_end);
        prop_assume!(delta > near_end);
        let t = s + delta;
        prop_assert_eq!(t.raw(), delta - near_end - 1, "wrapped raw value");
        // Serial-number ordering must still see the successor as greater.
        prop_assert!(t > s);
        prop_assert_eq!(t - s, delta as i32);
    }

    #[test]
    fn seq_add_then_sub_round_trips(a: u32, delta in 0u32..=i32::MAX as u32) {
        let s = SeqNumber(a);
        prop_assert_eq!((s + delta) - delta, s);
        prop_assert_eq!((s + delta).distance(s), delta as i32);
    }

    #[test]
    fn seq_in_range_tracks_wrapped_windows(a: u32, len in 1u32..1_000_000, off in 0u32..1_000_000) {
        // [lo, hi) windows behave identically whether or not they straddle
        // the 2^32 boundary.
        let lo = SeqNumber(a);
        let hi = lo + len;
        let probe = lo + off.min(len.saturating_sub(1));
        prop_assert!(probe.in_range(lo, hi));
        prop_assert!(!hi.in_range(lo, hi), "hi is exclusive");
        prop_assert!(!(lo - 1u32).in_range(lo, hi), "below lo is out");
    }

    #[test]
    fn seq_max_min_agree_with_ordering(a: u32, b: u32) {
        let (sa, sb) = (SeqNumber(a), SeqNumber(b));
        prop_assume!((sb - sa) != i32::MIN); // antipodal pair: order undefined
        let hi = sa.max(sb);
        let lo = sa.min(sb);
        prop_assert!(hi >= lo);
        prop_assert!(hi == sa || hi == sb);
        prop_assert!(lo == sa || lo == sb);
        prop_assert_eq!(hi.distance(lo), (sa - sb).abs());
    }

    #[test]
    fn rwnd_scaling_bounds(bytes in 0u64..(1u64 << 40), wscale in 0u8..=14) {
        let raw = acdc_packet::scale_rwnd(bytes, wscale);
        let back = acdc_packet::unscale_rwnd(raw, wscale);
        // Never over-advertise, and round down by less than one granule
        // (unless the 16-bit field saturated).
        prop_assert!(back <= bytes);
        if raw < u16::MAX {
            prop_assert!(bytes - back < (1u64 << wscale));
        }
        // The enforcement variant only ever differs by lifting 0 to 1.
        let nz = acdc_packet::scale_rwnd_nonzero(bytes, wscale);
        prop_assert!(nz >= 1);
        prop_assert_eq!(nz, raw.max(1));
    }

    #[test]
    fn ipv4_emit_parse_round_trip(
        src: [u8; 4], dst: [u8; 4], ecn in arb_ecn(),
        payload_len in 0usize..9000, ttl in 1u8..=255,
    ) {
        let repr = Ipv4Repr { src_addr: src, dst_addr: dst, protocol: PROTO_TCP, ecn, payload_len, ttl };
        let mut buf = vec![0u8; repr.header_len()];
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(pkt.verify_checksum());
        prop_assert_eq!(Ipv4Repr::parse(&pkt).unwrap(), repr);
    }

    #[test]
    fn tcp_emit_parse_round_trip(
        src_port: u16, dst_port: u16, seq: u32, ack: u32,
        flags in arb_flags(), window: u16, options in arb_options(),
        vm_ece: bool, fack: bool,
    ) {
        let repr = TcpRepr {
            src_port, dst_port,
            seq: SeqNumber(seq), ack: SeqNumber(ack),
            flags, window, options, vm_ece, fack,
        };
        let mut buf = vec![0u8; repr.header_len()];
        let mut pkt = TcpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.fill_checksum([1, 2, 3, 4], [5, 6, 7, 8], 0);
        let pkt = TcpPacket::new_checked(&buf[..]).unwrap();
        prop_assert!(pkt.verify_checksum([1, 2, 3, 4], [5, 6, 7, 8], 0));
        let parsed = TcpRepr::parse(&pkt).unwrap();
        // Emitted options may gain trailing padding, but the parsed list of
        // non-padding options must match what we put in.
        let strip = |v: &[TcpOption]| v.iter().copied()
            .filter(|o| !matches!(o, TcpOption::NoOperation | TcpOption::EndOfList))
            .collect::<Vec<_>>();
        prop_assert_eq!(strip(&parsed.options), strip(&repr.options));
        prop_assert_eq!(parsed.src_port, repr.src_port);
        prop_assert_eq!(parsed.seq, repr.seq);
        prop_assert_eq!(parsed.ack, repr.ack);
        prop_assert_eq!(parsed.flags, repr.flags);
        prop_assert_eq!(parsed.window, repr.window);
        prop_assert_eq!(parsed.vm_ece, repr.vm_ece);
        prop_assert_eq!(parsed.fack, repr.fack);
    }

    #[test]
    fn window_rewrite_then_ce_mark_keeps_segment_valid(
        window: u16, new_window: u16, payload in 0usize..9000,
    ) {
        let ip = Ipv4Repr {
            src_addr: [10, 1, 0, 1], dst_addr: [10, 1, 0, 2],
            protocol: PROTO_TCP, ecn: Ecn::Ect0, payload_len: 0, ttl: 64,
        };
        let mut tcp = TcpRepr::new(1000, 2000);
        tcp.flags = TcpFlags::ACK;
        tcp.window = window;
        let mut seg = Segment::new_tcp(ip, tcp, payload);
        seg.tcp_mut().set_window_update_checksum(new_window);
        seg.mark_ce();
        prop_assert_eq!(seg.tcp().window(), new_window);
        prop_assert_eq!(seg.ecn(), Ecn::Ce);
        prop_assert!(seg.verify_checksums());
    }

    #[test]
    fn pack_option_round_trip(total: u32, marked: u32) {
        let p = PackOption { total_bytes: total, marked_bytes: marked };
        let mut buf = [0u8; PackOption::WIRE_LEN];
        p.emit(&mut buf);
        prop_assert_eq!(PackOption::parse(&buf).unwrap(), p);
        let f = p.fraction();
        prop_assert!((0.0..=f64::from(u32::MAX)).contains(&f));
        if marked <= total {
            prop_assert!(f <= 1.0);
        }
    }

    #[test]
    fn truncated_buffers_never_panic(data in prop::collection::vec(any::<u8>(), 0..64)) {
        // Parsing arbitrary bytes must return Err, never panic.
        let _ = Ipv4Packet::new_checked(&data[..]).map(|p| {
            let _ = Ipv4Repr::parse(&p);
        });
        let _ = TcpPacket::new_checked(&data[..]).map(|p| {
            let _ = TcpRepr::parse(&p);
            let _ = p.options_iter().count();
        });
    }
}
