//! Pool-reuse coherence: a `Segment` built on a recycled buffer must be
//! byte-for-byte and meta-for-meta identical to one built on a fresh
//! allocation. The pool may only ever change *which allocation* backs a
//! segment — never its contents, its cached `PacketMeta`, or its
//! checksums — no matter what the buffer's previous owner did to it
//! (window rewrites, ECN patches, PACK growth, reserved-bit edits)
//! before dropping it back onto the free lists.

use acdc_packet::{
    Ecn, Ipv4Repr, PackOption, PacketMeta, Segment, SeqNumber, TcpFlags, TcpRepr, PROTO_TCP,
};
use proptest::prelude::*;

/// One in-place mutation a previous owner might have applied before the
/// buffer was recycled (a subset of the datapath's maintained mutators —
/// enough to dirty every region of the buffer, including growing it via
/// PACK insertion).
#[derive(Debug, Clone)]
enum Mutation {
    RewriteWindow(u16),
    SetEcn(Ecn),
    SetTcpFlags(u8),
    SetReserved(bool, bool),
    AppendPack(u32, u32),
    StripPack,
}

fn arb_ecn() -> impl Strategy<Value = Ecn> {
    prop_oneof![
        Just(Ecn::NotEct),
        Just(Ecn::Ect0),
        Just(Ecn::Ect1),
        Just(Ecn::Ce)
    ]
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        any::<u16>().prop_map(Mutation::RewriteWindow),
        arb_ecn().prop_map(Mutation::SetEcn),
        any::<u8>().prop_map(Mutation::SetTcpFlags),
        (any::<bool>(), any::<bool>()).prop_map(|(v, f)| Mutation::SetReserved(v, f)),
        (any::<u32>(), any::<u32>()).prop_map(|(t, m)| Mutation::AppendPack(t, m)),
        Just(Mutation::StripPack),
    ]
}

/// A previous-owner lifecycle: build, dirty, drop (which recycles the
/// backing buffer into the global pool).
#[derive(Debug, Clone)]
struct Churn {
    flags: u8,
    window: u16,
    ecn: Ecn,
    payload_len: u16,
    seq: u32,
    mutations: Vec<Mutation>,
}

fn arb_churn() -> impl Strategy<Value = Churn> {
    (
        any::<u8>(),
        any::<u16>(),
        arb_ecn(),
        0u16..3000,
        any::<u32>(),
        prop::collection::vec(arb_mutation(), 0..8),
    )
        .prop_map(|(flags, window, ecn, payload_len, seq, mutations)| Churn {
            flags,
            window,
            ecn,
            payload_len,
            seq,
            mutations,
        })
}

fn build(c: &Churn) -> Segment {
    let ip = Ipv4Repr {
        src_addr: [10, 0, 0, 2],
        dst_addr: [10, 0, 0, 7],
        protocol: PROTO_TCP,
        ecn: c.ecn,
        payload_len: 0, // overwritten by new_tcp
        ttl: 64,
    };
    let mut tcp = TcpRepr::new(33_000, 5_001);
    tcp.seq = SeqNumber(c.seq);
    tcp.ack = SeqNumber(c.seq ^ 0xdead_beef);
    tcp.flags = TcpFlags::from_bits(c.flags);
    tcp.window = c.window;
    Segment::new_tcp(ip, tcp, usize::from(c.payload_len))
}

fn dirty(seg: &mut Segment, m: &Mutation) {
    match *m {
        Mutation::RewriteWindow(w) => seg.rewrite_window(w),
        Mutation::SetEcn(e) => seg.set_ecn(e),
        Mutation::SetTcpFlags(f) => seg.set_tcp_flags(TcpFlags::from_bits(f)),
        Mutation::SetReserved(v, f) => seg.set_reserved(v, f),
        Mutation::AppendPack(total, marked) => {
            let _ = seg.append_pack_in_place(PackOption {
                total_bytes: total,
                marked_bytes: marked,
            });
        }
        Mutation::StripPack => {
            let _ = seg.strip_pack_in_place();
        }
    }
}

/// Every coherence fact a rebuilt segment must satisfy, compared against
/// the reference built before any pool churn.
fn assert_coherent(reference: &Segment, rebuilt: &Segment) {
    assert_eq!(
        rebuilt.header_bytes(),
        reference.header_bytes(),
        "recycled backing storage leaked stale bytes"
    );
    assert_eq!(rebuilt.payload_len(), reference.payload_len());
    let meta = rebuilt.try_meta().expect("rebuilt segment parses");
    let fresh = PacketMeta::parse(rebuilt.header_bytes()).expect("fresh parse");
    assert_eq!(
        meta, fresh,
        "cached meta on a recycled buffer disagrees with its bytes"
    );
    assert_eq!(meta, reference.try_meta().expect("reference parses"));
    assert!(rebuilt.verify_checksums());
}

proptest! {
    /// Interleave previous-owner lifecycles (build → mutate → drop, each
    /// drop feeding the global free lists) with rebuilds of a probe
    /// segment. However dirty the recycled buffers are, the probe must
    /// come out identical to the copy built before any churn.
    #[test]
    fn recycled_segments_never_leak_stale_state(
        probe in arb_churn(),
        churns in prop::collection::vec(arb_churn(), 1..16),
    ) {
        let reference = build(&probe);
        for c in &churns {
            let mut seg = build(c);
            // Warm the cache as the NIC would, then dirty every region.
            let _ = seg.try_meta();
            for m in &c.mutations {
                dirty(&mut seg, m);
            }
            drop(seg); // backing buffer returns to the global pool
            let rebuilt = build(&probe);
            assert_coherent(&reference, &rebuilt);
        }
    }

    /// Clones and per-shard (pinned-handle) recycling obey the same
    /// contract: a clone built on a recycled buffer equals its source,
    /// and a buffer recycled through a pinned worker handle comes back
    /// clean through any later constructor.
    #[test]
    fn clones_and_pinned_recycling_stay_coherent(
        probe in arb_churn(),
        churns in prop::collection::vec(arb_churn(), 1..8),
        shard in 0usize..16,
    ) {
        let reference = build(&probe);
        let handle = acdc_packet::pool::global().pinned(shard);
        for c in &churns {
            let mut seg = build(c);
            for m in &c.mutations {
                dirty(&mut seg, m);
            }
            // Route this carcass through a worker's pinned shard, as the
            // datapath does for absorbed FACKs.
            seg.recycle_into(&handle);

            let rebuilt = build(&probe);
            assert_coherent(&reference, &rebuilt);

            // Clone paths rent from the pool too: both the global-pool
            // `Clone` and the worker-pinned `clone_in`.
            assert_coherent(&reference, &rebuilt.clone());
            assert_coherent(&reference, &rebuilt.clone_in(&handle));
        }
    }
}
