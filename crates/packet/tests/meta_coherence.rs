//! Meta-coherence properties: after *any* sequence of in-place mutations
//! (RWND rewrite, ECN patch, flag/reserved-bit edits, PACK insert/strip),
//! the cached `PacketMeta` and the incrementally-maintained checksums must
//! equal what a from-scratch re-parse / checksum recompute of the same
//! bytes produces. This is the contract DESIGN.md §9 calls "maintained
//! mutators": bytes, checksum, and meta move together or not at all.

use acdc_packet::{
    Ecn, Ipv4Repr, PackOption, PacketMeta, Segment, SeqNumber, TcpFlags, TcpOption, TcpPacket,
    TcpRepr, PROTO_TCP,
};
use proptest::prelude::*;

/// One in-place mutation, as the datapath would issue it.
#[derive(Debug, Clone)]
enum Mutation {
    RewriteWindow(u16),
    SetEcn(Ecn),
    MarkCe,
    SetTcpFlags(u8),
    ClearEce,
    SetReserved(bool, bool),
    ClearReserved,
    AppendPack(u32, u32),
    StripPack,
    SetVirtualPayloadLen(u16),
}

fn arb_ecn() -> impl Strategy<Value = Ecn> {
    prop_oneof![
        Just(Ecn::NotEct),
        Just(Ecn::Ect0),
        Just(Ecn::Ect1),
        Just(Ecn::Ce)
    ]
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        any::<u16>().prop_map(Mutation::RewriteWindow),
        arb_ecn().prop_map(Mutation::SetEcn),
        Just(Mutation::MarkCe),
        any::<u8>().prop_map(Mutation::SetTcpFlags),
        Just(Mutation::ClearEce),
        (any::<bool>(), any::<bool>()).prop_map(|(v, f)| Mutation::SetReserved(v, f)),
        Just(Mutation::ClearReserved),
        (any::<u32>(), any::<u32>()).prop_map(|(t, m)| Mutation::AppendPack(t, m)),
        Just(Mutation::StripPack),
        (0u16..3000).prop_map(Mutation::SetVirtualPayloadLen),
    ]
}

fn arb_base_options() -> impl Strategy<Value = Vec<TcpOption>> {
    prop::collection::vec(
        prop_oneof![
            Just(TcpOption::NoOperation),
            any::<u16>().prop_map(TcpOption::MaxSegmentSize),
            (0u8..=14).prop_map(TcpOption::WindowScale),
            Just(TcpOption::SackPermitted),
            (any::<u32>(), any::<u32>()).prop_map(|(a, b)| TcpOption::Timestamps(a, b)),
        ],
        0..3,
    )
}

fn base_segment(
    flags: u8,
    window: u16,
    ecn: Ecn,
    options: Vec<TcpOption>,
    payload_len: u16,
) -> Segment {
    let ip = Ipv4Repr {
        src_addr: [10, 0, 0, 1],
        dst_addr: [10, 0, 0, 9],
        protocol: PROTO_TCP,
        ecn,
        payload_len: 0, // overwritten by new_tcp
        ttl: 64,
    };
    let mut tcp = TcpRepr::new(40_000, 5_001);
    tcp.seq = SeqNumber(123_456);
    tcp.ack = SeqNumber(654_321);
    tcp.flags = TcpFlags::from_bits(flags);
    tcp.window = window;
    tcp.options = options;
    Segment::new_tcp(ip, tcp, usize::from(payload_len))
}

fn apply(seg: &mut Segment, m: &Mutation) {
    match *m {
        Mutation::RewriteWindow(w) => seg.rewrite_window(w),
        Mutation::SetEcn(e) => seg.set_ecn(e),
        Mutation::MarkCe => seg.mark_ce(),
        Mutation::SetTcpFlags(f) => seg.set_tcp_flags(TcpFlags::from_bits(f)),
        Mutation::ClearEce => seg.clear_tcp_flags(TcpFlags::ECE),
        Mutation::SetReserved(v, f) => seg.set_reserved(v, f),
        Mutation::ClearReserved => seg.clear_reserved(),
        Mutation::AppendPack(total, marked) => {
            // May be refused (already present / no room); refusal must
            // leave the segment untouched, which the final coherence
            // assertions cover.
            let _ = seg.append_pack_in_place(PackOption {
                total_bytes: total,
                marked_bytes: marked,
            });
        }
        Mutation::StripPack => {
            let _ = seg.strip_pack_in_place();
        }
        Mutation::SetVirtualPayloadLen(n) => seg.set_virtual_payload_len(usize::from(n)),
    }
}

/// The from-scratch view of a segment's bytes: a fresh parse and a full
/// (non-incremental) checksum recompute.
fn recomputed_checksums(seg: &Segment) -> (u16, u16) {
    let mut bytes = seg.header_bytes().to_vec();
    let ihl = {
        let ip = acdc_packet::Ipv4Packet::new_checked(&bytes[..]).expect("valid ip");
        ip.header_len()
    };
    let (src, dst) = {
        let ip = acdc_packet::Ipv4Packet::new_unchecked(&bytes[..]);
        (ip.src_addr(), ip.dst_addr())
    };
    {
        let mut ip = acdc_packet::Ipv4Packet::new_unchecked(&mut bytes[..]);
        ip.fill_checksum();
    }
    {
        let mut tcp = TcpPacket::new_unchecked(&mut bytes[ihl..]);
        tcp.fill_checksum(src, dst, seg.payload_len());
    }
    let ip_ck = acdc_packet::Ipv4Packet::new_unchecked(&bytes[..]).header_checksum();
    let tcp_ck = TcpPacket::new_unchecked(&bytes[ihl..]).checksum();
    (ip_ck, tcp_ck)
}

proptest! {
    #[test]
    fn mutation_sequences_keep_meta_and_checksums_coherent(
        flags in any::<u8>(),
        window in any::<u16>(),
        ecn in arb_ecn(),
        options in arb_base_options(),
        payload_len in 0u16..3000,
        mutations in prop::collection::vec(arb_mutation(), 0..12),
    ) {
        let mut seg = base_segment(flags, window, ecn, options, payload_len);
        // Warm the cache the way NIC checksum verification does.
        prop_assert!(seg.verify_checksums());
        prop_assert!(seg.meta_is_cached());

        for m in &mutations {
            apply(&mut seg, m);
        }

        // Maintained mutators never invalidate the cache...
        prop_assert!(seg.meta_is_cached());
        // ...and the cached meta equals a from-scratch parse of the bytes.
        let cached = seg.try_meta().expect("mutated segment parses");
        let fresh = PacketMeta::parse(seg.header_bytes()).expect("fresh parse");
        prop_assert_eq!(cached, fresh);

        // The incrementally-patched checksums equal a full recompute.
        let (ip_ck, tcp_ck) = recomputed_checksums(&seg);
        prop_assert_eq!(seg.ip().header_checksum(), ip_ck);
        prop_assert_eq!(seg.tcp().checksum(), tcp_ck);
        prop_assert!(seg.verify_checksums());
    }

    #[test]
    fn append_then_strip_restores_original_bytes(
        window in any::<u16>(),
        payload_len in 0u16..3000,
        total in any::<u32>(),
        marked in any::<u32>(),
    ) {
        let mut seg = base_segment(
            TcpFlags::ACK.bits(),
            window,
            Ecn::Ect0,
            vec![],
            payload_len,
        );
        prop_assert!(seg.verify_checksums());
        let before = seg.header_bytes().to_vec();
        let pack = PackOption { total_bytes: total, marked_bytes: marked };
        prop_assert!(seg.append_pack_in_place(pack));
        prop_assert_eq!(seg.try_meta().expect("parses").pack, Some(pack));
        prop_assert!(seg.strip_pack_in_place());
        // With no pre-existing options there was no EOL padding to convert,
        // so strip is an exact inverse.
        prop_assert_eq!(seg.header_bytes(), &before[..]);
        prop_assert!(seg.verify_checksums());
    }
}
