//! RFC 7323 window scaling, in one place.
//!
//! AC/DC enforces congestion control by rewriting the 16-bit TCP receive
//! window field, and the paper is explicit (§3.3) that the vSwitch must
//! honour the *window scale negotiated by the guest* when doing so: the
//! value on the wire is `RWND >> wscale`, and a vSwitch that shifts by the
//! wrong amount (or forgets to shift) enforces a window up to 2^14 times
//! off target. Every byte↔wire conversion in the workspace goes through
//! these helpers; hand-rolled `>> wscale` shifts elsewhere are rejected by
//! lint rule P002 (`cargo run -p acdc-xtask -- lint`).

/// Largest shift RFC 7323 permits (larger advertised values are treated
/// as 14 by receivers, and [`crate::tcp`] clamps on parse as well).
pub const MAX_WSCALE: u8 = 14;

/// Convert a window in bytes to the raw 16-bit wire value under `wscale`.
///
/// Saturates at `u16::MAX` (the field's ceiling: with `wscale` 0 that is
/// 64 KB; with 14 it covers 1 GB). Values that shift to zero *stay* zero —
/// use [`scale_rwnd_nonzero`] where a zero-window advertisement must never
/// be produced.
#[inline]
pub fn scale_rwnd(bytes: u64, wscale: u8) -> u16 {
    (bytes >> wscale.min(MAX_WSCALE)).min(u64::from(u16::MAX)) as u16
}

/// Like [`scale_rwnd`], but never returns zero.
///
/// The AC/DC datapath uses this for every window it *enforces*: writing a
/// zero window into a passing ACK would freeze the sender until a window
/// probe, turning congestion control into a stall (§3.3 sets a one-packet
/// floor for exactly this reason).
#[inline]
pub fn scale_rwnd_nonzero(bytes: u64, wscale: u8) -> u16 {
    scale_rwnd(bytes, wscale).max(1)
}

/// Convert a raw 16-bit wire window back to bytes under `wscale`.
///
/// This is the receive direction of RFC 7323: the peer advertised `raw`
/// and both ends agreed to scale it by `wscale` during the handshake.
/// Windows carried on SYN segments are *never* scaled — callers must pass
/// `wscale = 0` for those.
#[inline]
pub fn unscale_rwnd(raw: u16, wscale: u8) -> u64 {
    u64::from(raw) << wscale.min(MAX_WSCALE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_floor_division() {
        assert_eq!(scale_rwnd(100_000, 3), 12_500);
        assert_eq!(scale_rwnd(100_007, 3), 12_500);
        assert_eq!(scale_rwnd(0, 3), 0);
    }

    #[test]
    fn scale_saturates_at_field_max() {
        assert_eq!(scale_rwnd(1 << 40, 0), u16::MAX);
        assert_eq!(scale_rwnd(1 << 40, 14), u16::MAX);
    }

    #[test]
    fn nonzero_floor() {
        assert_eq!(scale_rwnd_nonzero(0, 7), 1);
        assert_eq!(
            scale_rwnd_nonzero(100, 14),
            1,
            "sub-granule windows round up to one unit"
        );
        assert_eq!(scale_rwnd_nonzero(100_000, 3), 12_500);
    }

    #[test]
    fn unscale_round_trips_aligned_windows() {
        for ws in 0..=MAX_WSCALE {
            let bytes = 48u64 << ws;
            assert_eq!(unscale_rwnd(scale_rwnd(bytes, ws), ws), bytes);
        }
    }

    #[test]
    fn oversized_wscale_clamps_to_rfc_limit() {
        assert_eq!(scale_rwnd(1 << 20, 40), scale_rwnd(1 << 20, 14));
        assert_eq!(unscale_rwnd(2, 40), 2 << 14);
    }
}
