//! UDP header view and representation.
//!
//! AC/DC's prototype only enforces congestion control for TCP (the paper
//! leaves DCTCP-friendly UDP tunnels as future work), but the vSwitch still
//! forwards UDP traffic, so the datapath needs to parse it far enough to
//! classify flows.

use crate::checksum::{fold, pseudo_header_sum, sum_words};
use crate::{Error, Result};

/// Length of the UDP header.
pub const HEADER_LEN: usize = 8;

mod field {
    pub const SRC_PORT: core::ops::Range<usize> = 0..2;
    pub const DST_PORT: core::ops::Range<usize> = 2..4;
    pub const LENGTH: core::ops::Range<usize> = 4..6;
    pub const CHECKSUM: core::ops::Range<usize> = 6..8;
}

/// A read/write view of a UDP datagram over any byte container.
#[derive(Debug, Clone)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Wrap a buffer without validating it.
    pub fn new_unchecked(buffer: T) -> UdpPacket<T> {
        UdpPacket { buffer }
    }

    /// Wrap a buffer, validating the length field.
    pub fn new_checked(buffer: T) -> Result<UdpPacket<T>> {
        let pkt = UdpPacket::new_unchecked(buffer);
        pkt.check()?;
        Ok(pkt)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if (self.length() as usize) < HEADER_LEN {
            return Err(Error::Malformed);
        }
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::SRC_PORT].try_into().unwrap())
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::DST_PORT].try_into().unwrap())
    }

    /// The length field (header + payload).
    pub fn length(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::LENGTH].try_into().unwrap())
    }

    /// The checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::CHECKSUM].try_into().unwrap())
    }

    /// Verify the checksum with `virtual_payload_len` implicit zero bytes.
    pub fn verify_checksum(&self, src: [u8; 4], dst: [u8; 4], virtual_payload_len: usize) -> bool {
        if self.checksum() == 0 {
            return true; // checksum disabled
        }
        let data = self.buffer.as_ref();
        let l4_len = (data.len() + virtual_payload_len) as u32;
        let mut sum = pseudo_header_sum(src, dst, crate::PROTO_UDP, l4_len);
        sum = sum_words(sum, data);
        fold(sum) == 0xffff
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpPacket<T> {
    /// Set source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_length(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Compute and fill the checksum with implicit zero payload bytes.
    pub fn fill_checksum(&mut self, src: [u8; 4], dst: [u8; 4], virtual_payload_len: usize) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let data = self.buffer.as_ref();
        let l4_len = (data.len() + virtual_payload_len) as u32;
        let mut sum = pseudo_header_sum(src, dst, crate::PROTO_UDP, l4_len);
        sum = sum_words(sum, data);
        let mut ck = !fold(sum);
        if ck == 0 {
            ck = 0xffff; // RFC 768: transmitted as all-ones
        }
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }
}

/// High-level representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl UdpRepr {
    /// Parse a representation from a packet view.
    pub fn parse<T: AsRef<[u8]>>(pkt: &UdpPacket<T>) -> Result<UdpRepr> {
        pkt.check()?;
        Ok(UdpRepr {
            src_port: pkt.src_port(),
            dst_port: pkt.dst_port(),
            payload_len: pkt.length() as usize - HEADER_LEN,
        })
    }

    /// Header length when emitted.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit into a view over at least `HEADER_LEN` bytes.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, pkt: &mut UdpPacket<T>) {
        pkt.set_src_port(self.src_port);
        pkt.set_dst_port(self.dst_port);
        pkt.set_length((HEADER_LEN + self.payload_len) as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_virtual_payload() {
        let repr = UdpRepr {
            src_port: 53,
            dst_port: 5353,
            payload_len: 512,
        };
        let mut buf = [0u8; HEADER_LEN];
        let mut pkt = UdpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.fill_checksum([1, 2, 3, 4], [5, 6, 7, 8], 512);
        let pkt = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(pkt.verify_checksum([1, 2, 3, 4], [5, 6, 7, 8], 512));
        assert_eq!(UdpRepr::parse(&pkt).unwrap(), repr);
    }

    #[test]
    fn zero_checksum_means_disabled() {
        let mut buf = [0u8; HEADER_LEN];
        let mut pkt = UdpPacket::new_unchecked(&mut buf[..]);
        UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        }
        .emit(&mut pkt);
        let pkt = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(pkt.verify_checksum([0, 0, 0, 0], [0, 0, 0, 0], 0));
    }

    #[test]
    fn rejects_bad_length_field() {
        let mut buf = [0u8; HEADER_LEN];
        buf[5] = 4; // length = 4 < 8
        assert_eq!(
            UdpPacket::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }
}
