//! IPv4 header view and representation.
//!
//! The AC/DC datapath rewrites two things in the IP header: the ECN bits
//! (forcing ECT on egress, stripping CE on ingress) and, consequently, the
//! header checksum. Both operations are exposed here, including the
//! incremental checksum patch used on the fast path.

use crate::checksum::{checksum, checksum_adjust};
use crate::{Ecn, Error, Result};

/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// Length of the fixed IPv4 header (we do not emit IP options).
pub const HEADER_LEN: usize = 20;

pub(crate) mod field {
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: core::ops::Range<usize> = 2..4;
    pub const IDENT: core::ops::Range<usize> = 4..6;
    pub const FLG_OFF: core::ops::Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: core::ops::Range<usize> = 10..12;
    pub const SRC_ADDR: core::ops::Range<usize> = 12..16;
    pub const DST_ADDR: core::ops::Range<usize> = 16..20;
}

/// A read/write view of an IPv4 packet over any byte container.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer without validating it.
    pub fn new_unchecked(buffer: T) -> Ipv4Packet<T> {
        Ipv4Packet { buffer }
    }

    /// Wrap a buffer, validating version, header length and total length.
    pub fn new_checked(buffer: T) -> Result<Ipv4Packet<T>> {
        let pkt = Ipv4Packet::new_unchecked(buffer);
        pkt.check()?;
        Ok(pkt)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.version() != 4 {
            return Err(Error::Unsupported);
        }
        let ihl = self.header_len();
        if ihl < HEADER_LEN || data.len() < ihl {
            return Err(Error::Malformed);
        }
        if (self.total_len() as usize) < ihl {
            return Err(Error::Malformed);
        }
        Ok(())
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version field (always 4 for valid packets).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes (IHL * 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::VER_IHL] & 0xf) * 4
    }

    /// The DSCP portion of the TOS byte.
    pub fn dscp(&self) -> u8 {
        self.buffer.as_ref()[field::DSCP_ECN] >> 2
    }

    /// The ECN codepoint.
    pub fn ecn(&self) -> Ecn {
        Ecn::from_bits(self.buffer.as_ref()[field::DSCP_ECN])
    }

    /// Total packet length (header + payload) in bytes.
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::LENGTH].try_into().unwrap())
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::IDENT].try_into().unwrap())
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// L4 protocol number.
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[field::PROTOCOL]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::CHECKSUM].try_into().unwrap())
    }

    /// Source address.
    pub fn src_addr(&self) -> [u8; 4] {
        self.buffer.as_ref()[field::SRC_ADDR].try_into().unwrap()
    }

    /// Destination address.
    pub fn dst_addr(&self) -> [u8; 4] {
        self.buffer.as_ref()[field::DST_ADDR].try_into().unwrap()
    }

    /// Does the stored header checksum verify?
    pub fn verify_checksum(&self) -> bool {
        let hdr = &self.buffer.as_ref()[..self.header_len()];
        checksum(hdr) == 0 || crate::checksum::fold(crate::checksum::sum_words(0, hdr)) == 0xffff
    }

    /// The L4 payload as a subslice.
    pub fn payload(&self) -> &[u8] {
        let ihl = self.header_len();
        let total = self.total_len() as usize;
        let data = self.buffer.as_ref();
        &data[ihl..total.min(data.len())]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Set version and header length (IHL in bytes; must be multiple of 4).
    pub fn set_ver_ihl(&mut self, header_len: usize) {
        debug_assert_eq!(header_len % 4, 0);
        self.buffer.as_mut()[field::VER_IHL] = 0x40 | ((header_len / 4) as u8 & 0xf);
    }

    /// Set the DSCP bits, preserving ECN.
    pub fn set_dscp(&mut self, dscp: u8) {
        let b = &mut self.buffer.as_mut()[field::DSCP_ECN];
        *b = (dscp << 2) | (*b & 0b11);
    }

    /// Set the ECN codepoint, preserving DSCP. Does *not* fix the checksum;
    /// callers use [`Ipv4Packet::set_ecn_update_checksum`] on the fast path
    /// or [`Ipv4Packet::fill_checksum`] after bulk edits.
    pub fn set_ecn(&mut self, ecn: Ecn) {
        let b = &mut self.buffer.as_mut()[field::DSCP_ECN];
        *b = (*b & !0b11) | ecn.to_bits();
    }

    /// Set the ECN codepoint and incrementally patch the header checksum,
    /// the way the vSwitch datapath does it.
    pub fn set_ecn_update_checksum(&mut self, ecn: Ecn) {
        let data = self.buffer.as_mut();
        let old_word = u16::from_be_bytes([data[0], data[1]]);
        data[field::DSCP_ECN] = (data[field::DSCP_ECN] & !0b11) | ecn.to_bits();
        let new_word = u16::from_be_bytes([data[0], data[1]]);
        let old_ck = u16::from_be_bytes(data[field::CHECKSUM].try_into().unwrap());
        let new_ck = checksum_adjust(old_ck, old_word, new_word);
        data[field::CHECKSUM].copy_from_slice(&new_ck.to_be_bytes());
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Set the total length field and incrementally patch the header
    /// checksum — used when a PACK option grows or shrinks the packet in
    /// place.
    pub fn set_total_len_update_checksum(&mut self, len: u16) {
        let data = self.buffer.as_mut();
        let old = u16::from_be_bytes(data[field::LENGTH].try_into().unwrap());
        data[field::LENGTH].copy_from_slice(&len.to_be_bytes());
        let old_ck = u16::from_be_bytes(data[field::CHECKSUM].try_into().unwrap());
        let new_ck = checksum_adjust(old_ck, old, len);
        data[field::CHECKSUM].copy_from_slice(&new_ck.to_be_bytes());
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, id: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&id.to_be_bytes());
    }

    /// Clear flags/fragment offset (we never fragment).
    pub fn set_no_frag(&mut self) {
        // DF bit set, offset zero: datacenter MTUs are uniform.
        self.buffer.as_mut()[field::FLG_OFF].copy_from_slice(&0x4000u16.to_be_bytes());
    }

    /// Set TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Set the L4 protocol number.
    pub fn set_protocol(&mut self, proto: u8) {
        self.buffer.as_mut()[field::PROTOCOL] = proto;
    }

    /// Set source address.
    pub fn set_src_addr(&mut self, addr: [u8; 4]) {
        self.buffer.as_mut()[field::SRC_ADDR].copy_from_slice(&addr);
    }

    /// Set destination address.
    pub fn set_dst_addr(&mut self, addr: [u8; 4]) {
        self.buffer.as_mut()[field::DST_ADDR].copy_from_slice(&addr);
    }

    /// Zero the checksum field and recompute it over the header.
    pub fn fill_checksum(&mut self) {
        let ihl = self.header_len();
        let data = self.buffer.as_mut();
        data[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let ck = checksum(&data[..ihl]);
        data[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable access to the L4 payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let ihl = self.header_len();
        let total = self.total_len() as usize;
        let data = self.buffer.as_mut();
        let end = total.min(data.len());
        &mut data[ihl..end]
    }
}

/// High-level representation of the IPv4 header fields the system cares
/// about. Everything not listed is emitted with fixed sane defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src_addr: [u8; 4],
    /// Destination address.
    pub dst_addr: [u8; 4],
    /// L4 protocol number.
    pub protocol: u8,
    /// ECN codepoint.
    pub ecn: Ecn,
    /// L4 payload length in bytes.
    pub payload_len: usize,
    /// Time to live.
    pub ttl: u8,
}

impl Ipv4Repr {
    /// Default TTL used for emitted packets.
    pub const DEFAULT_TTL: u8 = 64;

    /// Parse a representation out of a packet view.
    pub fn parse<T: AsRef<[u8]>>(pkt: &Ipv4Packet<T>) -> Result<Ipv4Repr> {
        pkt.check()?;
        Ok(Ipv4Repr {
            src_addr: pkt.src_addr(),
            dst_addr: pkt.dst_addr(),
            protocol: pkt.protocol(),
            ecn: pkt.ecn(),
            payload_len: pkt.total_len() as usize - pkt.header_len(),
            ttl: pkt.ttl(),
        })
    }

    /// Bytes this header occupies when emitted.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit into the front of `buffer` (which must be at least
    /// `header_len() + payload_len` bytes... only the header is written).
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, pkt: &mut Ipv4Packet<T>) {
        pkt.set_ver_ihl(HEADER_LEN);
        pkt.set_dscp(0);
        pkt.set_ecn(self.ecn);
        pkt.set_total_len((HEADER_LEN + self.payload_len) as u16);
        pkt.set_ident(0);
        pkt.set_no_frag();
        pkt.set_ttl(self.ttl);
        pkt.set_protocol(self.protocol);
        pkt.set_src_addr(self.src_addr);
        pkt.set_dst_addr(self.dst_addr);
        pkt.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: [10, 0, 0, 1],
            dst_addr: [10, 0, 0, 2],
            protocol: PROTO_TCP,
            ecn: Ecn::Ect0,
            payload_len: 40,
            ttl: Ipv4Repr::DEFAULT_TTL,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; HEADER_LEN + repr.payload_len];
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&pkt).unwrap(), repr);
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = [0u8; HEADER_LEN];
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn rejects_total_len_below_header() {
        let repr = sample_repr();
        let mut buf = vec![0u8; HEADER_LEN + repr.payload_len];
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.set_total_len(10);
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn incremental_ecn_rewrite_keeps_checksum_valid() {
        let repr = sample_repr();
        let mut buf = vec![0u8; HEADER_LEN + repr.payload_len];
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        // Switch marks the packet: ECT0 -> CE.
        pkt.set_ecn_update_checksum(Ecn::Ce);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.ecn(), Ecn::Ce);
        assert!(pkt.verify_checksum());
        // Receiver module strips it back to NotEct for a non-ECN guest.
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        pkt.set_ecn_update_checksum(Ecn::NotEct);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.ecn(), Ecn::NotEct);
        assert!(pkt.verify_checksum());
    }

    #[test]
    fn payload_slicing() {
        let repr = sample_repr();
        let mut buf = vec![0u8; HEADER_LEN + repr.payload_len];
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.payload_mut().fill(0xab);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.payload().len(), 40);
        assert!(pkt.payload().iter().all(|&b| b == 0xab));
    }

    #[test]
    fn dscp_and_ecn_do_not_clobber_each_other() {
        let mut buf = [0u8; HEADER_LEN];
        let mut pkt = Ipv4Packet::new_unchecked(&mut buf[..]);
        pkt.set_dscp(0x2e); // EF
        pkt.set_ecn(Ecn::Ce);
        assert_eq!(pkt.dscp(), 0x2e);
        assert_eq!(pkt.ecn(), Ecn::Ce);
        pkt.set_dscp(0x00);
        assert_eq!(pkt.ecn(), Ecn::Ce);
    }
}
