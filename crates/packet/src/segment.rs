//! [`Segment`]: the unit of traffic carried by the simulator.
//!
//! A `Segment` owns the *real, serialized* IPv4 + L4 header bytes plus a
//! *virtual* payload length. Header-mangling code (the entire AC/DC
//! datapath) operates on genuine wire bytes — parse, rewrite, incremental
//! checksum — while the simulator avoids allocating and copying bulk
//! payloads. Checksums treat the payload as zeros, so they stay end-to-end
//! verifiable (see crate docs).
//!
//! # The parse-once contract
//!
//! Each segment lazily caches a [`PacketMeta`] — the full set of header
//! fields the hot path consumes — built by a single parse at first access
//! ([`Segment::try_meta`]). The in-place mutators below (window rewrite,
//! ECN patch, flag/reserved-bit edits, PACK insertion and removal) patch
//! the bytes, the checksum, *and* the cached meta together, so downstream
//! layers keep reading cached fields after the datapath has rewritten the
//! packet. Only the raw escape hatches [`Segment::ip_mut`] and
//! [`Segment::tcp_mut`] invalidate the cache, forcing a re-parse at the
//! next access. See DESIGN.md §9.
//!
//! The cache is split for speed and `Send + Sync`: constructors and the
//! coherent mutators — which all hold `&mut` or ownership — write a
//! plain `Option<PacketMeta>` field at zero synchronization cost, while
//! the rare lazy fill through `&self` (a re-parse after a raw mutable
//! view invalidated the cache) lands in a [`OnceLock`] fallback slot.
//! That makes `Segment` freely movable between the run-to-completion
//! workers of `acdc-workers` (DESIGN.md §13) with no interior-mutability
//! hazards — the `RefCell` this replaced was the last W003
//! thread-readiness grandfather in the packet pipeline — without paying
//! the `Once` synchronization path on every locally built packet.

use std::sync::OnceLock;

use bytes::{Bytes, BytesMut};

use crate::checksum::checksum_adjust;
use crate::tcp::option_kind;
#[cfg(test)]
use crate::Error;
use crate::{
    Ecn, Ipv4Packet, Ipv4Repr, PackOption, PacketMeta, Result, SeqNumber, TcpFlags, TcpOption,
    TcpPacket, TcpRepr, UdpPacket, UdpRepr, PROTO_TCP, PROTO_UDP,
};

/// A 5-tuple-minus-protocol flow key (the simulator is IPv4/TCP only; the
/// paper hashes on addresses, ports and VLAN — we have no VLANs).
///
/// This is the *one* flow identity used across the workspace: the vSwitch
/// flow table shards on it, the host NIC demuxes on it, and the workload
/// FCT bookkeeping labels samples with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Source TCP port.
    pub src_port: u16,
    /// Destination TCP port.
    pub dst_port: u16,
}

impl FlowKey {
    /// The key of the reverse direction (ACKs of this flow).
    #[inline]
    pub fn reverse(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// FNV-1a over the 12 key bytes: a fast, deterministic, well-spread
    /// hash for flow-table sharding. Unlike `DefaultHasher` it has no
    /// per-hasher setup cost, which matters at one-to-two lookups per
    /// packet on the datapath fast path.
    #[inline]
    pub fn hash64(&self) -> u64 {
        const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET_BASIS;
        let mut step = |b: u8| h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        self.src_ip.iter().copied().for_each(&mut step);
        self.dst_ip.iter().copied().for_each(&mut step);
        self.src_port.to_be_bytes().into_iter().for_each(&mut step);
        self.dst_port.to_be_bytes().into_iter().for_each(&mut step);
        h
    }
}

impl core::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{}",
            self.src_ip[0],
            self.src_ip[1],
            self.src_ip[2],
            self.src_ip[3],
            self.src_port,
            self.dst_ip[0],
            self.dst_ip[1],
            self.dst_ip[2],
            self.dst_ip[3],
            self.dst_port
        )
    }
}

/// A simulated packet: serialized headers + virtual payload length + a
/// lazily-built cache of parsed header metadata.
///
/// # Pooled backing storage
///
/// The header buffer is rented from the process-wide
/// [`SegmentPool`](crate::pool::SegmentPool): constructors and `Clone`
/// take a recycled (fully overwritten) buffer, and `Drop` returns the
/// storage to the pool — so the NIC → vSwitch → endpoint pipeline
/// recycles one small allocation per packet instead of paying the
/// allocator round-trip. Per-worker code can steer the return to its own
/// pool shard with [`Segment::recycle_into`] / [`Segment::clone_in`].
#[derive(Debug)]
pub struct Segment {
    buf: BytesMut,
    payload_len: usize,
    /// Eager parse cache: filled by constructors and kept coherent by the
    /// maintained mutators (all of which hold `&mut`). Takes precedence
    /// over [`Segment::lazy_meta`].
    meta: Option<PacketMeta>,
    /// Lazy `&self` fill for the cold path — a re-parse after a raw
    /// mutable view cleared the eager cache. Both slots are reset
    /// together on invalidation.
    lazy_meta: OnceLock<PacketMeta>,
}

impl Segment {
    /// Build a TCP segment. `ip.payload_len` is overwritten from the TCP
    /// header length plus `payload_len`; checksums are filled.
    pub fn new_tcp(ip: Ipv4Repr, tcp: TcpRepr, payload_len: usize) -> Segment {
        let tcp_hdr_len = tcp.header_len();
        let ip_repr = Ipv4Repr {
            protocol: PROTO_TCP,
            payload_len: tcp_hdr_len + payload_len,
            ..ip
        };
        let total_hdr = ip_repr.header_len() + tcp_hdr_len;
        let mut buf = crate::pool::global().take(total_hdr);
        {
            let mut ipp = Ipv4Packet::new_unchecked(&mut buf[..]);
            ip_repr.emit(&mut ipp);
        }
        {
            let mut tcpp = TcpPacket::new_unchecked(&mut buf[ip_repr.header_len()..]);
            tcp.emit(&mut tcpp);
            tcpp.fill_checksum(ip_repr.src_addr, ip_repr.dst_addr, payload_len);
        }
        // The emitter is the "single parse" of a locally built segment: it
        // already holds every field the meta cache wants, so downstream
        // consumers never parse at all. Exotic options (explicit EOL,
        // Unknown) fall back to lazy first-access parsing so the cache
        // always matches what `PacketMeta::parse` would say.
        let meta = tcp_meta_from_reprs(&ip_repr, &tcp, tcp_hdr_len);
        Segment {
            buf,
            payload_len,
            meta,
            lazy_meta: OnceLock::new(),
        }
    }

    /// Build a UDP datagram (the vSwitch forwards these untouched; the
    /// paper leaves UDP congestion enforcement as future work).
    pub fn new_udp(ip: Ipv4Repr, udp: UdpRepr, payload_len: usize) -> Segment {
        let ip_repr = Ipv4Repr {
            protocol: PROTO_UDP,
            payload_len: udp.header_len() + payload_len,
            ..ip
        };
        let total_hdr = ip_repr.header_len() + udp.header_len();
        let mut buf = crate::pool::global().take(total_hdr);
        {
            let mut ipp = Ipv4Packet::new_unchecked(&mut buf[..]);
            ip_repr.emit(&mut ipp);
        }
        {
            let udp_repr = UdpRepr { payload_len, ..udp };
            let mut udpp = UdpPacket::new_unchecked(&mut buf[ip_repr.header_len()..]);
            udp_repr.emit(&mut udpp);
            udpp.fill_checksum(ip_repr.src_addr, ip_repr.dst_addr, payload_len);
        }
        let meta = PacketMeta {
            flow: FlowKey {
                src_ip: ip_repr.src_addr,
                dst_ip: ip_repr.dst_addr,
                src_port: udp.src_port,
                dst_port: udp.dst_port,
            },
            protocol: PROTO_UDP,
            ecn: ip_repr.ecn,
            ip_header_len: ip_repr.header_len() as u8,
            l4_header_len: crate::udp::HEADER_LEN as u8,
            flags: TcpFlags::empty(),
            seq: SeqNumber::ZERO,
            ack: SeqNumber::ZERO,
            window: 0,
            vm_ece: false,
            fack: false,
            pack_off: None,
            pack: None,
            wscale: None,
            mss: None,
        };
        Segment {
            buf,
            payload_len,
            meta: Some(meta),
            lazy_meta: OnceLock::new(),
        }
    }

    /// Is this a TCP segment (as opposed to UDP)?
    ///
    /// Deliberately does *not* fill the meta cache: pass-through paths
    /// (non-TCP traffic, a disabled datapath) route on this single byte
    /// and never pay a parse. Panic-free on truncated buffers.
    #[inline]
    pub fn is_tcp(&self) -> bool {
        match self.cached_meta() {
            Some(m) => m.protocol == PROTO_TCP,
            None => self.buf.get(crate::ipv4::field::PROTOCOL) == Some(&PROTO_TCP),
        }
    }

    /// Reconstruct a segment from raw header bytes (e.g. off a trace) plus
    /// a virtual payload length. The validating parse doubles as the
    /// cache fill: the returned segment already carries its meta.
    pub fn from_header_bytes(buf: BytesMut, payload_len: usize) -> Result<Segment> {
        let meta = PacketMeta::parse(&buf)?;
        Ok(Segment {
            buf,
            payload_len,
            meta: Some(meta),
            lazy_meta: OnceLock::new(),
        })
    }

    /// Clone, renting the copy's backing buffer through `handle` — the
    /// per-worker variant of `Clone` (which rents from the global pool's
    /// rotating shards). The FACK build path uses this so a worker's
    /// feedback packets draw on its own pool shard.
    pub fn clone_in(&self, handle: &crate::pool::PoolHandle<'_>) -> Segment {
        Segment {
            buf: handle.take_copy(&self.buf),
            payload_len: self.payload_len,
            meta: self.meta,
            lazy_meta: self.lazy_meta.clone(),
        }
    }

    /// Consume the segment, returning its backing buffer through
    /// `handle` instead of `Drop`'s rotating global return — the
    /// per-worker recycle for segments a worker absorbs (e.g. consumed
    /// FACKs).
    pub fn recycle_into(mut self, handle: &crate::pool::PoolHandle<'_>) {
        let buf = core::mem::take(&mut self.buf);
        handle.put(buf);
        // `self` drops here with an empty husk; `Drop` discards it.
    }

    /// The cached header metadata, parsing (once) on a cache miss.
    ///
    /// This is the hot-path accessor: the first caller on a segment's
    /// journey (normally NIC checksum verification) pays the single parse
    /// and every later layer reads the cached copy. Malformed headers
    /// return `Err` — callers drop and count, never panic.
    #[inline]
    pub fn try_meta(&self) -> Result<PacketMeta> {
        if let Some(m) = self.cached_meta() {
            return Ok(*m);
        }
        let m = PacketMeta::parse(&self.buf)?;
        // A racing filler parsed the same immutable bytes: either copy wins.
        Ok(*self.lazy_meta.get_or_init(|| m))
    }

    /// Whichever cache slot currently holds a parse (eager wins).
    #[inline]
    fn cached_meta(&self) -> Option<&PacketMeta> {
        self.meta.as_ref().or_else(|| self.lazy_meta.get())
    }

    /// Is the meta cache currently populated? (Test hook for the
    /// invalidation rules; not meaningful on the hot path.)
    #[inline]
    pub fn meta_is_cached(&self) -> bool {
        self.cached_meta().is_some()
    }

    /// Reset both cache slots (raw mutable views: anything may change).
    #[inline]
    fn invalidate_meta(&mut self) {
        self.meta = None;
        self.lazy_meta = OnceLock::new();
    }

    /// Install a known-coherent parse in the eager slot, clearing any
    /// stale lazy fill.
    #[inline]
    fn set_meta(&mut self, m: PacketMeta) {
        self.meta = Some(m);
        self.lazy_meta = OnceLock::new();
    }

    /// Apply `patch` to the cached meta, if one is cached. Mutators that
    /// keep the cache coherent use this: a cold cache stays cold (the
    /// next `try_meta` re-parses the — already updated — bytes). A
    /// lazily-filled cache is promoted into the eager slot first, so
    /// every patched parse lives where later patches find it.
    #[inline]
    fn patch_meta(&mut self, patch: impl FnOnce(&mut PacketMeta)) {
        if self.meta.is_none() {
            self.meta = self.lazy_meta.take();
        }
        if let Some(m) = &mut self.meta {
            patch(m);
        }
    }

    /// The serialized header bytes (IP + TCP, no payload).
    #[inline]
    pub fn header_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Freeze and return a copy of the header bytes.
    pub fn header_bytes_cloned(&self) -> Bytes {
        Bytes::copy_from_slice(&self.buf)
    }

    /// Virtual payload length in bytes.
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Total length on the wire: headers + payload.
    #[inline]
    pub fn wire_len(&self) -> usize {
        self.buf.len() + self.payload_len
    }

    /// Immutable IP header view.
    #[inline]
    pub fn ip(&self) -> Ipv4Packet<&[u8]> {
        Ipv4Packet::new_unchecked(&self.buf[..])
    }

    /// Mutable IP header view. Invalidates the meta cache: the caller can
    /// change anything, so the next meta access re-parses. Datapath code
    /// uses the maintained mutators instead.
    pub fn ip_mut(&mut self) -> Ipv4Packet<&mut [u8]> {
        self.invalidate_meta();
        Ipv4Packet::new_unchecked(&mut self.buf[..])
    }

    /// Immutable TCP header view (panics when called on a UDP segment —
    /// check [`Segment::is_tcp`] first on mixed paths).
    #[inline]
    pub fn tcp(&self) -> TcpPacket<&[u8]> {
        debug_assert!(self.is_tcp(), "tcp() on a UDP segment");
        let ihl = self.ip().header_len();
        TcpPacket::new_unchecked(&self.buf[ihl..])
    }

    /// Immutable UDP header view (panics when called on a TCP segment).
    pub fn udp(&self) -> UdpPacket<&[u8]> {
        debug_assert!(!self.is_tcp(), "udp() on a TCP segment");
        let ihl = self.ip().header_len();
        UdpPacket::new_unchecked(&self.buf[ihl..])
    }

    /// Mutable TCP header view. Invalidates the meta cache, like
    /// [`Segment::ip_mut`].
    pub fn tcp_mut(&mut self) -> TcpPacket<&mut [u8]> {
        self.invalidate_meta();
        let ihl = self.ip().header_len();
        TcpPacket::new_unchecked(&mut self.buf[ihl..])
    }

    /// The flow key of this segment's direction (TCP or UDP ports).
    ///
    /// Convenience for locally constructed segments and tests; wire-input
    /// paths use [`Segment::try_meta`] so malformed frames are dropped
    /// and counted rather than panicking here.
    pub fn flow_key(&self) -> FlowKey {
        self.try_meta().expect("flow_key on malformed segment").flow
    }

    /// ECN codepoint from the IP header.
    #[inline]
    pub fn ecn(&self) -> Ecn {
        match self.cached_meta() {
            Some(m) => m.ecn,
            None => self.ip().ecn(),
        }
    }

    /// Set the ECN codepoint, incrementally patching the IP checksum and
    /// the cached meta.
    #[inline]
    pub fn set_ecn(&mut self, ecn: Ecn) {
        Ipv4Packet::new_unchecked(&mut self.buf[..]).set_ecn_update_checksum(ecn);
        self.patch_meta(|m| m.ecn = ecn);
    }

    /// Mark this segment CE (what a WRED/ECN switch does), keeping the IP
    /// checksum valid.
    #[inline]
    pub fn mark_ce(&mut self) {
        self.set_ecn(Ecn::Ce);
    }

    /// TCP flags.
    #[inline]
    pub fn tcp_flags(&self) -> TcpFlags {
        match self.cached_meta() {
            Some(m) => m.flags,
            None => self.tcp().flags(),
        }
    }

    /// Overwrite the advertised window — the AC/DC enforcement write
    /// (§3.3 / §4): a 2-byte patch plus RFC 1624 incremental checksum,
    /// with the cached meta updated in step.
    #[inline]
    pub fn rewrite_window(&mut self, window: u16) {
        debug_assert!(self.is_tcp(), "rewrite_window on a UDP segment");
        let ihl = self.ip().header_len();
        TcpPacket::new_unchecked(&mut self.buf[ihl..]).set_window_update_checksum(window);
        self.patch_meta(|m| m.window = window);
    }

    /// Overwrite the TCP flag byte, patching checksum and meta.
    #[inline]
    pub fn set_tcp_flags(&mut self, flags: TcpFlags) {
        debug_assert!(self.is_tcp(), "set_tcp_flags on a UDP segment");
        let ihl = self.ip().header_len();
        TcpPacket::new_unchecked(&mut self.buf[ihl..]).set_flags_update_checksum(flags);
        self.patch_meta(|m| m.flags = flags);
    }

    /// Clear TCP flag bits (e.g. stripping ECE before the guest sees it),
    /// patching checksum and meta.
    #[inline]
    pub fn clear_tcp_flags(&mut self, flags: TcpFlags) {
        debug_assert!(self.is_tcp(), "clear_tcp_flags on a UDP segment");
        let ihl = self.ip().header_len();
        TcpPacket::new_unchecked(&mut self.buf[ihl..]).clear_flags_update_checksum(flags);
        self.patch_meta(|m| m.flags = m.flags.difference(flags));
    }

    /// Set the AC/DC reserved-bit markers, patching checksum and meta.
    #[inline]
    pub fn set_reserved(&mut self, vm_ece: bool, fack: bool) {
        debug_assert!(self.is_tcp(), "set_reserved on a UDP segment");
        let ihl = self.ip().header_len();
        TcpPacket::new_unchecked(&mut self.buf[ihl..]).set_reserved_update_checksum(vm_ece, fack);
        self.patch_meta(|m| {
            m.vm_ece = vm_ece;
            m.fack = fack;
        });
    }

    /// Clear both AC/DC reserved-bit markers, patching checksum and meta.
    #[inline]
    pub fn clear_reserved(&mut self) {
        debug_assert!(self.is_tcp(), "clear_reserved on a UDP segment");
        let ihl = self.ip().header_len();
        TcpPacket::new_unchecked(&mut self.buf[ihl..]).clear_reserved_update_checksum();
        self.patch_meta(|m| {
            m.vm_ece = false;
            m.fack = false;
        });
    }

    /// Flip the lowest bit of the raw TCP window *without* fixing the
    /// checksum — deliberate header damage for fault injection. The meta
    /// is kept in step with the (corrupted) bytes so classification after
    /// the fault still reads the truth; non-TCP segments pass unharmed.
    #[inline]
    pub fn corrupt_window_bit(&mut self) {
        if !self.is_tcp() {
            return;
        }
        let ihl = self.ip().header_len();
        let mut tcp = TcpPacket::new_unchecked(&mut self.buf[ihl..]);
        let w = tcp.window() ^ 0x0001;
        tcp.set_window(w);
        self.patch_meta(|m| m.window = w);
    }

    /// Change the virtual payload length in place (TCP only): patches the
    /// IP total length and both checksums incrementally. Used to turn a
    /// cloned data packet into a feedback-only fake ACK.
    #[inline]
    pub fn set_virtual_payload_len(&mut self, new_len: usize) {
        debug_assert!(self.is_tcp(), "set_virtual_payload_len on a UDP segment");
        if new_len == self.payload_len {
            return;
        }
        let ihl = self.ip().header_len();
        let thl = self.buf.len() - ihl;
        Ipv4Packet::new_unchecked(&mut self.buf[..])
            .set_total_len_update_checksum((ihl + thl + new_len) as u16);
        let old_l4 = (thl + self.payload_len) as u32;
        let new_l4 = (thl + new_len) as u32;
        let mut tcp = TcpPacket::new_unchecked(&mut self.buf[ihl..]);
        let mut ck = tcp.checksum();
        ck = checksum_adjust(ck, (old_l4 >> 16) as u16, (new_l4 >> 16) as u16);
        ck = checksum_adjust(ck, old_l4 as u16, new_l4 as u16);
        tcp.set_checksum(ck);
        self.payload_len = new_len;
        // Meta carries no length-derived fields; nothing to patch.
    }

    /// Append a PACK feedback option to the TCP header in place: EOL
    /// padding is rewritten to NOP so the appended option stays reachable,
    /// the header grows by [`PackOption::WIRE_LEN`] bytes, and both
    /// checksums are patched incrementally (no re-emit, no allocation
    /// beyond the buffer growth). Returns `false` — leaving the segment
    /// untouched — when the option does not fit, one is already present,
    /// or the options region does not parse.
    pub fn append_pack_in_place(&mut self, pack: PackOption) -> bool {
        let Ok(meta) = self.try_meta() else {
            return false;
        };
        if !meta.is_tcp() || meta.pack_off.is_some() {
            return false;
        }
        let ihl = usize::from(meta.ip_header_len);
        let thl = usize::from(meta.l4_header_len);
        if thl + PackOption::WIRE_LEN > crate::tcp::MAX_HEADER_LEN {
            return false;
        }
        let opts_start = ihl + crate::tcp::HEADER_LEN;
        let Some(pad_start) = options_padding_start(&self.buf[opts_start..ihl + thl]) else {
            return false;
        };
        let old_words = self.tcp_header_words(ihl);
        for b in &mut self.buf[opts_start + pad_start..ihl + thl] {
            *b = option_kind::NOP;
        }
        let old_buf_len = self.buf.len();
        self.buf.resize(old_buf_len + PackOption::WIRE_LEN, 0);
        pack.emit(&mut self.buf[old_buf_len..]);
        let new_thl = thl + PackOption::WIRE_LEN;
        TcpPacket::new_unchecked(&mut self.buf[ihl..]).set_header_len(new_thl);
        Ipv4Packet::new_unchecked(&mut self.buf[..])
            .set_total_len_update_checksum((ihl + new_thl + self.payload_len) as u16);
        let new_words = self.tcp_header_words(ihl);
        self.adjust_tcp_checksum(
            ihl,
            &old_words,
            &new_words,
            (thl + self.payload_len) as u32,
            (new_thl + self.payload_len) as u32,
        );
        let mut m = meta;
        m.l4_header_len = new_thl as u8;
        m.pack_off = Some((ihl + thl) as u16);
        m.pack = Some(pack);
        self.set_meta(m);
        true
    }

    /// Remove the PACK option from the TCP header in place (the inverse of
    /// [`Segment::append_pack_in_place`]): later options/padding shift
    /// down, the header shrinks, checksums are patched incrementally.
    /// Returns `false` when no PACK option is present.
    pub fn strip_pack_in_place(&mut self) -> bool {
        let Ok(meta) = self.try_meta() else {
            return false;
        };
        let Some(pack_off) = meta.pack_off else {
            return false;
        };
        let off = usize::from(pack_off);
        let ihl = usize::from(meta.ip_header_len);
        let thl = usize::from(meta.l4_header_len);
        debug_assert!(off + PackOption::WIRE_LEN <= ihl + thl);
        let old_words = self.tcp_header_words(ihl);
        let end = self.buf.len();
        self.buf.copy_within(off + PackOption::WIRE_LEN..end, off);
        self.buf.truncate(end - PackOption::WIRE_LEN);
        let new_thl = thl - PackOption::WIRE_LEN;
        TcpPacket::new_unchecked(&mut self.buf[ihl..]).set_header_len(new_thl);
        Ipv4Packet::new_unchecked(&mut self.buf[..])
            .set_total_len_update_checksum((ihl + new_thl + self.payload_len) as u16);
        let new_words = self.tcp_header_words(ihl);
        self.adjust_tcp_checksum(
            ihl,
            &old_words,
            &new_words,
            (thl + self.payload_len) as u32,
            (new_thl + self.payload_len) as u32,
        );
        let mut m = meta;
        m.l4_header_len = new_thl as u8;
        m.pack_off = None;
        m.pack = None;
        self.set_meta(m);
        true
    }

    /// Snapshot the TCP header as 16-bit words (missing tail words read as
    /// zero — a zero word contributes nothing to the Internet checksum, so
    /// grown/shrunk headers diff cleanly against each other).
    fn tcp_header_words(&self, ihl: usize) -> [u16; MAX_TCP_WORDS] {
        let mut words = [0u16; MAX_TCP_WORDS];
        let data = &self.buf[ihl..];
        for (i, w) in words.iter_mut().enumerate() {
            let off = i * 2;
            if off + 2 <= data.len() {
                *w = u16::from_be_bytes([data[off], data[off + 1]]);
            }
        }
        words
    }

    /// Fold the word-level diff of two header snapshots (plus a
    /// pseudo-header length change) into the TCP checksum, RFC 1624 style.
    fn adjust_tcp_checksum(
        &mut self,
        ihl: usize,
        old: &[u16; MAX_TCP_WORDS],
        new: &[u16; MAX_TCP_WORDS],
        old_l4_len: u32,
        new_l4_len: u32,
    ) {
        // The checksum field itself (TCP bytes 16..18) is the output, not
        // an input, of the adjustment.
        const CHECKSUM_WORD: usize = 8;
        let mut tcp = TcpPacket::new_unchecked(&mut self.buf[ihl..]);
        let mut ck = tcp.checksum();
        for (i, (o, n)) in old.iter().zip(new.iter()).enumerate() {
            if i != CHECKSUM_WORD && o != n {
                ck = checksum_adjust(ck, *o, *n);
            }
        }
        if old_l4_len != new_l4_len {
            ck = checksum_adjust(ck, (old_l4_len >> 16) as u16, (new_l4_len >> 16) as u16);
            ck = checksum_adjust(ck, old_l4_len as u16, new_l4_len as u16);
        }
        tcp.set_checksum(ck);
    }

    /// Does this segment carry payload, SYN, or FIN (i.e. occupy sequence
    /// space and need acknowledgement)?
    #[inline]
    pub fn occupies_seq_space(&self) -> bool {
        self.payload_len > 0 || self.tcp_flags().intersects(TcpFlags::SYN | TcpFlags::FIN)
    }

    /// Is this a "pure ACK": no payload, no SYN/FIN/RST?
    #[inline]
    pub fn is_pure_ack(&self) -> bool {
        self.payload_len == 0
            && self.tcp_flags().contains(TcpFlags::ACK)
            && !self
                .tcp_flags()
                .intersects(TcpFlags::SYN | TcpFlags::FIN | TcpFlags::RST)
    }

    /// Parse the TCP header into a full `TcpRepr`.
    pub fn tcp_repr(&self) -> Result<TcpRepr> {
        TcpRepr::parse(&self.tcp())
    }

    /// Verify both checksums (IP header and L4 with virtual payload).
    /// Doubles as the cache fill: verification is the first thing a NIC
    /// does to an arriving frame, so the single parse happens here and
    /// every later layer hits the cache. Malformed headers fail.
    pub fn verify_checksums(&self) -> bool {
        let Ok(meta) = self.try_meta() else {
            return false;
        };
        let ip = self.ip();
        if !ip.verify_checksum() {
            return false;
        }
        if meta.is_tcp() {
            self.tcp()
                .verify_checksum(ip.src_addr(), ip.dst_addr(), self.payload_len)
        } else {
            self.udp()
                .verify_checksum(ip.src_addr(), ip.dst_addr(), self.payload_len)
        }
    }
}

impl Clone for Segment {
    /// Clones rent their buffer from the global pool (rotating shards);
    /// see [`Segment::clone_in`] for the shard-pinned per-worker form.
    fn clone(&self) -> Segment {
        Segment {
            buf: crate::pool::global().take_copy(&self.buf),
            payload_len: self.payload_len,
            meta: self.meta,
            lazy_meta: self.lazy_meta.clone(),
        }
    }
}

impl Drop for Segment {
    /// Returns the backing buffer to the global pool. Buffers already
    /// handed elsewhere ([`Segment::recycle_into`] leaves an empty husk)
    /// are discarded by the pool's zero-capacity check.
    fn drop(&mut self) {
        crate::pool::global().put(core::mem::take(&mut self.buf));
    }
}

/// Number of 16-bit words in a maximum-size TCP header.
const MAX_TCP_WORDS: usize = crate::tcp::MAX_HEADER_LEN / 2;

/// Walk the options region; return the byte index where trailing padding
/// begins (the first terminating EOL, or `opts.len()` if options run to
/// the end), or `None` if an option is malformed — in which case bytes
/// appended past the walk's stopping point would be unreachable to any
/// parser and in-place insertion must be refused.
/// Build the meta cache for a freshly emitted TCP segment straight from
/// the representations — the emitter already knows every field, so a
/// locally built packet costs *zero* parses over its whole lifetime.
///
/// Returns `None` (leave the cache cold, parse lazily) for option lists a
/// wire walk would interpret differently than a naive sweep: an explicit
/// `EndOfList` terminates the walk, and `Unknown` options may collide with
/// EOL/NOP kind bytes or carry bogus lengths. The meta-coherence proptests
/// pin this fast path to `PacketMeta::parse` of the emitted bytes.
fn tcp_meta_from_reprs(ip: &Ipv4Repr, tcp: &TcpRepr, tcp_hdr_len: usize) -> Option<PacketMeta> {
    let mut meta = PacketMeta {
        flow: FlowKey {
            src_ip: ip.src_addr,
            dst_ip: ip.dst_addr,
            src_port: tcp.src_port,
            dst_port: tcp.dst_port,
        },
        protocol: PROTO_TCP,
        ecn: ip.ecn,
        ip_header_len: ip.header_len() as u8,
        l4_header_len: tcp_hdr_len as u8,
        flags: tcp.flags,
        seq: tcp.seq,
        ack: tcp.ack,
        window: tcp.window,
        vm_ece: tcp.vm_ece,
        fack: tcp.fack,
        pack_off: None,
        pack: None,
        wscale: None,
        mss: None,
    };
    let mut off = (ip.header_len() + crate::tcp::HEADER_LEN) as u16;
    for opt in &tcp.options {
        match *opt {
            TcpOption::EndOfList | TcpOption::Unknown(..) => return None,
            TcpOption::MaxSegmentSize(v) => meta.mss = Some(v),
            TcpOption::WindowScale(v) => meta.wscale = Some(v),
            TcpOption::Pack(p) => {
                meta.pack = Some(p);
                meta.pack_off = Some(off);
            }
            TcpOption::NoOperation | TcpOption::SackPermitted | TcpOption::Timestamps(..) => {}
        }
        off += opt.wire_len() as u16;
    }
    Some(meta)
}

fn options_padding_start(opts: &[u8]) -> Option<usize> {
    let mut i = 0usize;
    while i < opts.len() {
        match opts[i] {
            option_kind::EOL => return Some(i),
            option_kind::NOP => i += 1,
            _ => {
                if i + 1 >= opts.len() {
                    return None;
                }
                let len = usize::from(opts[i + 1]);
                if len < 2 || i + len > opts.len() {
                    return None;
                }
                i += len;
            }
        }
    }
    Some(opts.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip_repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: [10, 0, 0, 1],
            dst_addr: [10, 0, 0, 9],
            protocol: PROTO_TCP,
            ecn: Ecn::Ect0,
            payload_len: 0, // overwritten by Segment::new_tcp
            ttl: 64,
        }
    }

    fn tcp_repr() -> TcpRepr {
        let mut r = TcpRepr::new(40000, 5001);
        r.seq = SeqNumber(1000);
        r.ack = SeqNumber(2000);
        r.flags = TcpFlags::ACK;
        r.window = 1234;
        r
    }

    #[test]
    fn segment_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Segment>();
    }

    #[test]
    fn meta_cache_survives_cross_thread_move() {
        let seg = Segment::new_tcp(ip_repr(), tcp_repr(), 100);
        let meta = seg.try_meta().unwrap();
        let back = std::thread::spawn(move || seg).join().unwrap();
        assert!(back.meta_is_cached());
        assert_eq!(back.try_meta().unwrap(), meta);
    }

    #[test]
    fn construction_produces_consistent_lengths_and_checksums() {
        let seg = Segment::new_tcp(ip_repr(), tcp_repr(), 1448);
        assert_eq!(seg.payload_len(), 1448);
        assert_eq!(seg.wire_len(), 20 + 20 + 1448);
        assert_eq!(seg.ip().total_len() as usize, seg.wire_len());
        assert!(seg.verify_checksums());
    }

    #[test]
    fn flow_key_and_reverse() {
        let seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        let k = seg.flow_key();
        assert_eq!(k.src_port, 40000);
        assert_eq!(k.dst_port, 5001);
        let r = k.reverse();
        assert_eq!(r.src_ip, [10, 0, 0, 9]);
        assert_eq!(r.reverse(), k);
    }

    #[test]
    fn flow_key_hash_is_stable_and_direction_sensitive() {
        let seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        let k = seg.flow_key();
        assert_eq!(k.hash64(), k.hash64());
        assert_ne!(k.hash64(), k.reverse().hash64());
    }

    #[test]
    fn constructors_prepopulate_and_reparse_is_lazy() {
        // Locally built segments are born with their meta: the emitter is
        // the single "parse" of their lifetime.
        let seg = Segment::new_tcp(ip_repr(), tcp_repr(), 100);
        assert!(seg.meta_is_cached());
        let m = seg.try_meta().unwrap();
        assert_eq!(m.window, 1234);
        assert_eq!(m.seq, SeqNumber(1000));
        // The pre-populated cache matches a from-scratch parse exactly.
        assert_eq!(m, PacketMeta::parse(seg.header_bytes()).unwrap());
        // Clones carry the cache.
        assert!(seg.clone().meta_is_cached());

        // After a raw-view invalidation the rebuild is lazy: nothing is
        // parsed until the next accessor call.
        let mut seg = seg;
        let _ = seg.tcp_mut();
        assert!(!seg.meta_is_cached());
        seg.try_meta().unwrap();
        assert!(seg.meta_is_cached());
    }

    #[test]
    fn exotic_options_fall_back_to_lazy_parse() {
        // An explicit EndOfList makes the emit-time fast path bail; the
        // cache must then be built by a real parse on first access and the
        // two must agree.
        let mut r = tcp_repr();
        r.options = vec![TcpOption::MaxSegmentSize(1448), TcpOption::EndOfList];
        let seg = Segment::new_tcp(ip_repr(), r, 0);
        assert!(!seg.meta_is_cached());
        let m = seg.try_meta().unwrap();
        assert_eq!(m, PacketMeta::parse(seg.header_bytes()).unwrap());
        assert_eq!(m.mss, Some(1448));
    }

    #[test]
    fn raw_mutable_views_invalidate_meta() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        seg.try_meta().unwrap();
        let _ = seg.tcp_mut();
        assert!(!seg.meta_is_cached());
        seg.try_meta().unwrap();
        let _ = seg.ip_mut();
        assert!(!seg.meta_is_cached());
    }

    #[test]
    fn maintained_mutators_keep_meta_coherent() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 100);
        seg.try_meta().unwrap();
        seg.rewrite_window(99);
        seg.mark_ce();
        seg.set_reserved(true, false);
        assert!(seg.meta_is_cached());
        let m = seg.try_meta().unwrap();
        assert_eq!(m.window, 99);
        assert_eq!(m.ecn, Ecn::Ce);
        assert!(m.vm_ece);
        // The cached view matches a from-scratch parse and the checksums
        // are still valid.
        assert_eq!(m, PacketMeta::parse(seg.header_bytes()).unwrap());
        assert!(seg.verify_checksums());
    }

    #[test]
    fn ce_marking_keeps_ip_checksum_valid() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 100);
        assert_eq!(seg.ecn(), Ecn::Ect0);
        seg.mark_ce();
        assert_eq!(seg.ecn(), Ecn::Ce);
        assert!(seg.ip().verify_checksum());
    }

    #[test]
    fn pure_ack_classification() {
        let ack = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        assert!(ack.is_pure_ack());
        assert!(!ack.occupies_seq_space());

        let data = Segment::new_tcp(ip_repr(), tcp_repr(), 10);
        assert!(!data.is_pure_ack());
        assert!(data.occupies_seq_space());

        let mut syn = tcp_repr();
        syn.flags = TcpFlags::SYN;
        let syn = Segment::new_tcp(ip_repr(), syn, 0);
        assert!(!syn.is_pure_ack());
        assert!(syn.occupies_seq_space());
    }

    #[test]
    fn window_rewrite_through_segment_views() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        seg.tcp_mut().set_window_update_checksum(99);
        assert_eq!(seg.tcp().window(), 99);
        assert!(seg.verify_checksums());
    }

    #[test]
    fn append_and_strip_pack_in_place() {
        let pack = PackOption {
            total_bytes: 100_000,
            marked_bytes: 20_000,
        };
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        let before = seg.header_bytes().to_vec();
        assert!(seg.append_pack_in_place(pack));
        assert_eq!(
            seg.header_bytes().len(),
            before.len() + PackOption::WIRE_LEN
        );
        assert_eq!(seg.tcp().pack_option(), Some(pack));
        assert!(seg.verify_checksums());
        let m = seg.try_meta().unwrap();
        assert_eq!(m.pack, Some(pack));
        assert_eq!(m, PacketMeta::parse(seg.header_bytes()).unwrap());
        // A second append is refused.
        assert!(!seg.append_pack_in_place(pack));

        assert!(seg.strip_pack_in_place());
        assert_eq!(seg.header_bytes().len(), before.len());
        assert_eq!(seg.tcp().pack_option(), None);
        assert!(seg.verify_checksums());
        let m = seg.try_meta().unwrap();
        assert_eq!(m.pack, None);
        assert_eq!(m, PacketMeta::parse(seg.header_bytes()).unwrap());
        // Nothing left to strip.
        assert!(!seg.strip_pack_in_place());
    }

    #[test]
    fn append_pack_converts_eol_padding_to_nop() {
        // A Timestamps option emits 10 bytes, padded to 12 with EOL; the
        // appended PACK must stay reachable past that padding.
        let mut r = tcp_repr();
        r.options = vec![crate::TcpOption::Timestamps(7, 8)];
        let mut seg = Segment::new_tcp(ip_repr(), r, 0);
        let pack = PackOption {
            total_bytes: 9,
            marked_bytes: 3,
        };
        assert!(seg.append_pack_in_place(pack));
        assert_eq!(seg.tcp().pack_option(), Some(pack));
        assert!(seg
            .tcp()
            .options_iter()
            .any(|o| matches!(o, crate::TcpOption::Timestamps(7, 8))));
        assert!(seg.verify_checksums());
        assert_eq!(
            seg.try_meta().unwrap(),
            PacketMeta::parse(seg.header_bytes()).unwrap()
        );
    }

    #[test]
    fn append_pack_refuses_full_header() {
        let mut r = tcp_repr();
        // 4 timestamps = 40 option bytes: a full 60-byte header with no
        // room for 12 more.
        r.options = vec![crate::TcpOption::Timestamps(1, 2); 4];
        let mut seg = Segment::new_tcp(ip_repr(), r, 0);
        let before = seg.header_bytes().to_vec();
        assert!(!seg.append_pack_in_place(PackOption::default()));
        assert_eq!(seg.header_bytes(), &before[..]);
        assert!(seg.verify_checksums());
    }

    #[test]
    fn set_virtual_payload_len_keeps_checksums_valid() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 1448);
        seg.set_virtual_payload_len(0);
        assert_eq!(seg.payload_len(), 0);
        assert_eq!(seg.wire_len(), 40);
        assert_eq!(seg.ip().total_len(), 40);
        assert!(seg.verify_checksums());
    }

    #[test]
    fn corrupt_window_bit_breaks_checksum_but_not_meta() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        let w = seg.try_meta().unwrap().window;
        seg.corrupt_window_bit();
        assert!(!seg.verify_checksums());
        assert_eq!(seg.try_meta().unwrap().window, w ^ 1);
        assert_eq!(seg.tcp().window(), w ^ 1);
    }

    #[test]
    fn from_header_bytes_round_trip() {
        let seg = Segment::new_tcp(ip_repr(), tcp_repr(), 777);
        let buf = BytesMut::from(seg.header_bytes());
        let seg2 = Segment::from_header_bytes(buf, 777).unwrap();
        assert!(seg2.meta_is_cached());
        assert_eq!(seg2.wire_len(), seg.wire_len());
        assert_eq!(seg2.flow_key(), seg.flow_key());
        assert!(seg2.verify_checksums());
    }

    #[test]
    fn from_header_bytes_rejects_unknown_protocol() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        seg.ip_mut().set_protocol(47); // GRE: not ours
        let buf = BytesMut::from(seg.header_bytes());
        assert_eq!(
            Segment::from_header_bytes(buf, 0).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn try_meta_reports_malformed_instead_of_panicking() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        seg.ip_mut().set_protocol(47);
        assert_eq!(seg.try_meta().unwrap_err(), Error::Unsupported);
        assert!(!seg.verify_checksums());
    }

    #[test]
    fn udp_segment_round_trip() {
        let udp = UdpRepr {
            src_port: 6000,
            dst_port: 7000,
            payload_len: 0, // overwritten by new_udp
        };
        let seg = Segment::new_udp(ip_repr(), udp, 512);
        assert!(!seg.is_tcp());
        assert_eq!(seg.wire_len(), 20 + 8 + 512);
        assert!(seg.verify_checksums());
        let k = seg.flow_key();
        assert_eq!(k.src_port, 6000);
        assert_eq!(k.dst_port, 7000);
        let buf = BytesMut::from(seg.header_bytes());
        let seg2 = Segment::from_header_bytes(buf, 512).unwrap();
        assert_eq!(seg2.flow_key(), k);
        assert!(seg2.verify_checksums());
    }

    #[test]
    fn udp_segment_ce_marking_keeps_ip_checksum() {
        let udp = UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let mut seg = Segment::new_udp(
            Ipv4Repr {
                ecn: Ecn::Ect0,
                ..ip_repr()
            },
            udp,
            100,
        );
        seg.mark_ce();
        assert_eq!(seg.ecn(), Ecn::Ce);
        assert!(seg.verify_checksums());
    }
}
