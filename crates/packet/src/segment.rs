//! [`Segment`]: the unit of traffic carried by the simulator.
//!
//! A `Segment` owns the *real, serialized* IPv4 + L4 header bytes plus a
//! *virtual* payload length. Header-mangling code (the entire AC/DC
//! datapath) operates on genuine wire bytes — parse, rewrite, incremental
//! checksum — while the simulator avoids allocating and copying bulk
//! payloads. Checksums treat the payload as zeros, so they stay end-to-end
//! verifiable (see crate docs).

use bytes::{Bytes, BytesMut};

use crate::{
    Ecn, Error, Ipv4Packet, Ipv4Repr, Result, TcpFlags, TcpPacket, TcpRepr, UdpPacket, UdpRepr,
    PROTO_TCP, PROTO_UDP,
};

/// A 5-tuple-minus-protocol flow key (the simulator is IPv4/TCP only; the
/// paper hashes on addresses, ports and VLAN — we have no VLANs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Source TCP port.
    pub src_port: u16,
    /// Destination TCP port.
    pub dst_port: u16,
}

impl FlowKey {
    /// The key of the reverse direction (ACKs of this flow).
    pub fn reverse(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }
}

impl core::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{}",
            self.src_ip[0],
            self.src_ip[1],
            self.src_ip[2],
            self.src_ip[3],
            self.src_port,
            self.dst_ip[0],
            self.dst_ip[1],
            self.dst_ip[2],
            self.dst_ip[3],
            self.dst_port
        )
    }
}

/// A simulated packet: serialized headers + virtual payload length.
#[derive(Debug, Clone)]
pub struct Segment {
    buf: BytesMut,
    payload_len: usize,
}

impl Segment {
    /// Build a TCP segment. `ip.payload_len` is overwritten from the TCP
    /// header length plus `payload_len`; checksums are filled.
    pub fn new_tcp(ip: Ipv4Repr, tcp: TcpRepr, payload_len: usize) -> Segment {
        let tcp_hdr_len = tcp.header_len();
        let ip_repr = Ipv4Repr {
            protocol: PROTO_TCP,
            payload_len: tcp_hdr_len + payload_len,
            ..ip
        };
        let total_hdr = ip_repr.header_len() + tcp_hdr_len;
        let mut buf = BytesMut::zeroed(total_hdr);
        {
            let mut ipp = Ipv4Packet::new_unchecked(&mut buf[..]);
            ip_repr.emit(&mut ipp);
        }
        {
            let mut tcpp = TcpPacket::new_unchecked(&mut buf[ip_repr.header_len()..]);
            tcp.emit(&mut tcpp);
            tcpp.fill_checksum(ip_repr.src_addr, ip_repr.dst_addr, payload_len);
        }
        Segment { buf, payload_len }
    }

    /// Build a UDP datagram (the vSwitch forwards these untouched; the
    /// paper leaves UDP congestion enforcement as future work).
    pub fn new_udp(ip: Ipv4Repr, udp: UdpRepr, payload_len: usize) -> Segment {
        let ip_repr = Ipv4Repr {
            protocol: PROTO_UDP,
            payload_len: udp.header_len() + payload_len,
            ..ip
        };
        let total_hdr = ip_repr.header_len() + udp.header_len();
        let mut buf = BytesMut::zeroed(total_hdr);
        {
            let mut ipp = Ipv4Packet::new_unchecked(&mut buf[..]);
            ip_repr.emit(&mut ipp);
        }
        {
            let udp_repr = UdpRepr { payload_len, ..udp };
            let mut udpp = UdpPacket::new_unchecked(&mut buf[ip_repr.header_len()..]);
            udp_repr.emit(&mut udpp);
            udpp.fill_checksum(ip_repr.src_addr, ip_repr.dst_addr, payload_len);
        }
        Segment { buf, payload_len }
    }

    /// Is this a TCP segment (as opposed to UDP)?
    pub fn is_tcp(&self) -> bool {
        self.ip().protocol() == PROTO_TCP
    }

    /// Reconstruct a segment from raw header bytes (e.g. after a datapath
    /// emitted a fresh packet) plus a virtual payload length.
    pub fn from_header_bytes(buf: BytesMut, payload_len: usize) -> Result<Segment> {
        let ipp = Ipv4Packet::new_checked(&buf[..])?;
        let ihl = ipp.header_len();
        match ipp.protocol() {
            PROTO_TCP => {
                TcpPacket::new_checked(&buf[ihl..])?;
            }
            PROTO_UDP => {
                UdpPacket::new_checked(&buf[ihl..])?;
            }
            _ => return Err(Error::Unsupported),
        }
        Ok(Segment { buf, payload_len })
    }

    /// The serialized header bytes (IP + TCP, no payload).
    pub fn header_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Freeze and return a copy of the header bytes.
    pub fn header_bytes_cloned(&self) -> Bytes {
        Bytes::copy_from_slice(&self.buf)
    }

    /// Virtual payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Total length on the wire: headers + payload.
    pub fn wire_len(&self) -> usize {
        self.buf.len() + self.payload_len
    }

    /// Immutable IP header view.
    pub fn ip(&self) -> Ipv4Packet<&[u8]> {
        Ipv4Packet::new_unchecked(&self.buf[..])
    }

    /// Mutable IP header view.
    pub fn ip_mut(&mut self) -> Ipv4Packet<&mut [u8]> {
        Ipv4Packet::new_unchecked(&mut self.buf[..])
    }

    /// Immutable TCP header view (panics when called on a UDP segment —
    /// check [`Segment::is_tcp`] first on mixed paths).
    pub fn tcp(&self) -> TcpPacket<&[u8]> {
        debug_assert!(self.is_tcp(), "tcp() on a UDP segment");
        let ihl = self.ip().header_len();
        TcpPacket::new_unchecked(&self.buf[ihl..])
    }

    /// Immutable UDP header view (panics when called on a TCP segment).
    pub fn udp(&self) -> UdpPacket<&[u8]> {
        debug_assert!(!self.is_tcp(), "udp() on a TCP segment");
        let ihl = self.ip().header_len();
        UdpPacket::new_unchecked(&self.buf[ihl..])
    }

    /// Mutable TCP header view.
    pub fn tcp_mut(&mut self) -> TcpPacket<&mut [u8]> {
        let ihl = self.ip().header_len();
        TcpPacket::new_unchecked(&mut self.buf[ihl..])
    }

    /// The flow key of this segment's direction (TCP or UDP ports).
    pub fn flow_key(&self) -> FlowKey {
        let ip = self.ip();
        let (src_port, dst_port) = if self.is_tcp() {
            let t = self.tcp();
            (t.src_port(), t.dst_port())
        } else {
            let u = self.udp();
            (u.src_port(), u.dst_port())
        };
        FlowKey {
            src_ip: ip.src_addr(),
            dst_ip: ip.dst_addr(),
            src_port,
            dst_port,
        }
    }

    /// ECN codepoint from the IP header.
    pub fn ecn(&self) -> Ecn {
        self.ip().ecn()
    }

    /// Mark this segment CE (what a WRED/ECN switch does), keeping the IP
    /// checksum valid.
    pub fn mark_ce(&mut self) {
        self.ip_mut().set_ecn_update_checksum(Ecn::Ce);
    }

    /// TCP flags.
    pub fn tcp_flags(&self) -> TcpFlags {
        self.tcp().flags()
    }

    /// Does this segment carry payload, SYN, or FIN (i.e. occupy sequence
    /// space and need acknowledgement)?
    pub fn occupies_seq_space(&self) -> bool {
        self.payload_len > 0 || self.tcp_flags().intersects(TcpFlags::SYN | TcpFlags::FIN)
    }

    /// Is this a "pure ACK": no payload, no SYN/FIN/RST?
    pub fn is_pure_ack(&self) -> bool {
        self.payload_len == 0
            && self.tcp_flags().contains(TcpFlags::ACK)
            && !self
                .tcp_flags()
                .intersects(TcpFlags::SYN | TcpFlags::FIN | TcpFlags::RST)
    }

    /// Parse the TCP header into a full `TcpRepr`.
    pub fn tcp_repr(&self) -> Result<TcpRepr> {
        TcpRepr::parse(&self.tcp())
    }

    /// Verify both checksums (IP header and L4 with virtual payload).
    pub fn verify_checksums(&self) -> bool {
        let ip = self.ip();
        if !ip.verify_checksum() {
            return false;
        }
        if self.is_tcp() {
            self.tcp()
                .verify_checksum(ip.src_addr(), ip.dst_addr(), self.payload_len)
        } else {
            self.udp()
                .verify_checksum(ip.src_addr(), ip.dst_addr(), self.payload_len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeqNumber;

    fn ip_repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: [10, 0, 0, 1],
            dst_addr: [10, 0, 0, 9],
            protocol: PROTO_TCP,
            ecn: Ecn::Ect0,
            payload_len: 0, // overwritten by Segment::new_tcp
            ttl: 64,
        }
    }

    fn tcp_repr() -> TcpRepr {
        let mut r = TcpRepr::new(40000, 5001);
        r.seq = SeqNumber(1000);
        r.ack = SeqNumber(2000);
        r.flags = TcpFlags::ACK;
        r.window = 1234;
        r
    }

    #[test]
    fn construction_produces_consistent_lengths_and_checksums() {
        let seg = Segment::new_tcp(ip_repr(), tcp_repr(), 1448);
        assert_eq!(seg.payload_len(), 1448);
        assert_eq!(seg.wire_len(), 20 + 20 + 1448);
        assert_eq!(seg.ip().total_len() as usize, seg.wire_len());
        assert!(seg.verify_checksums());
    }

    #[test]
    fn flow_key_and_reverse() {
        let seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        let k = seg.flow_key();
        assert_eq!(k.src_port, 40000);
        assert_eq!(k.dst_port, 5001);
        let r = k.reverse();
        assert_eq!(r.src_ip, [10, 0, 0, 9]);
        assert_eq!(r.reverse(), k);
    }

    #[test]
    fn ce_marking_keeps_ip_checksum_valid() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 100);
        assert_eq!(seg.ecn(), Ecn::Ect0);
        seg.mark_ce();
        assert_eq!(seg.ecn(), Ecn::Ce);
        assert!(seg.ip().verify_checksum());
    }

    #[test]
    fn pure_ack_classification() {
        let ack = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        assert!(ack.is_pure_ack());
        assert!(!ack.occupies_seq_space());

        let data = Segment::new_tcp(ip_repr(), tcp_repr(), 10);
        assert!(!data.is_pure_ack());
        assert!(data.occupies_seq_space());

        let mut syn = tcp_repr();
        syn.flags = TcpFlags::SYN;
        let syn = Segment::new_tcp(ip_repr(), syn, 0);
        assert!(!syn.is_pure_ack());
        assert!(syn.occupies_seq_space());
    }

    #[test]
    fn window_rewrite_through_segment_views() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        seg.tcp_mut().set_window_update_checksum(99);
        assert_eq!(seg.tcp().window(), 99);
        assert!(seg.verify_checksums());
    }

    #[test]
    fn from_header_bytes_round_trip() {
        let seg = Segment::new_tcp(ip_repr(), tcp_repr(), 777);
        let buf = BytesMut::from(seg.header_bytes());
        let seg2 = Segment::from_header_bytes(buf, 777).unwrap();
        assert_eq!(seg2.wire_len(), seg.wire_len());
        assert_eq!(seg2.flow_key(), seg.flow_key());
        assert!(seg2.verify_checksums());
    }

    #[test]
    fn from_header_bytes_rejects_unknown_protocol() {
        let mut seg = Segment::new_tcp(ip_repr(), tcp_repr(), 0);
        seg.ip_mut().set_protocol(47); // GRE: not ours
        let buf = BytesMut::from(seg.header_bytes());
        assert_eq!(
            Segment::from_header_bytes(buf, 0).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn udp_segment_round_trip() {
        let udp = UdpRepr {
            src_port: 6000,
            dst_port: 7000,
            payload_len: 0, // overwritten by new_udp
        };
        let seg = Segment::new_udp(ip_repr(), udp, 512);
        assert!(!seg.is_tcp());
        assert_eq!(seg.wire_len(), 20 + 8 + 512);
        assert!(seg.verify_checksums());
        let k = seg.flow_key();
        assert_eq!(k.src_port, 6000);
        assert_eq!(k.dst_port, 7000);
        let buf = BytesMut::from(seg.header_bytes());
        let seg2 = Segment::from_header_bytes(buf, 512).unwrap();
        assert_eq!(seg2.flow_key(), k);
        assert!(seg2.verify_checksums());
    }

    #[test]
    fn udp_segment_ce_marking_keeps_ip_checksum() {
        let udp = UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let mut seg = Segment::new_udp(
            Ipv4Repr {
                ecn: Ecn::Ect0,
                ..ip_repr()
            },
            udp,
            100,
        );
        seg.mark_ce();
        assert_eq!(seg.ecn(), Ecn::Ce);
        assert!(seg.verify_checksums());
    }
}
