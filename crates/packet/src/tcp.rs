//! TCP header view, options, and representation.
//!
//! Besides the standard fields, two of the three TCP reserved bits are given
//! AC/DC-specific meanings, exactly as §3.2 of the paper describes using "a
//! reserved bit in the header":
//!
//! * `VM_ECE` — set by the sender-side AC/DC module on egress data packets
//!   when the *guest* stack was itself ECN-capable, so the receiver-side
//!   module knows whether to restore or strip ECN bits.
//! * `FACK` — marks a *fake ACK*: a feedback-only packet fabricated by the
//!   receiver-side module when piggy-backing the PACK option would push a
//!   real ACK past the MTU. The sender-side module consumes and drops it.
//!
//! The RWND rewrite — the enforcement mechanism of the whole paper — is
//! [`TcpPacket::set_window_update_checksum`]: a 2-byte in-place write plus an
//! RFC 1624 incremental checksum patch.

use crate::checksum::{checksum_adjust, fold, pseudo_header_sum, sum_words};
use crate::pack::PackOption;
use crate::{Error, Result, SeqNumber};

/// Length of the fixed TCP header, without options.
pub const HEADER_LEN: usize = 20;
/// Maximum TCP header length (data offset is 4 bits of 32-bit words).
pub const MAX_HEADER_LEN: usize = 60;

mod field {
    pub const SRC_PORT: core::ops::Range<usize> = 0..2;
    pub const DST_PORT: core::ops::Range<usize> = 2..4;
    pub const SEQ_NUM: core::ops::Range<usize> = 4..8;
    pub const ACK_NUM: core::ops::Range<usize> = 8..12;
    pub const OFF_RSVD: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: core::ops::Range<usize> = 14..16;
    pub const CHECKSUM: core::ops::Range<usize> = 16..18;
    pub const URGENT: core::ops::Range<usize> = 18..20;
}

// A tiny local stand-in for the `bitflags` crate (not in the sanctioned
// dependency set): generates a transparent wrapper with const flags,
// bit-ops and containment tests.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $($(#[$fmeta:meta])* const $flag:ident = $value:expr;)*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name(pub $ty);

        impl $name {
            $($(#[$fmeta])* pub const $flag: $name = $name($value);)*

            /// The empty flag set.
            pub const fn empty() -> $name { $name(0) }
            /// Raw bits.
            pub const fn bits(self) -> $ty { self.0 }
            /// Construct from raw bits.
            pub const fn from_bits(bits: $ty) -> $name { $name(bits) }
            /// Does `self` contain every bit of `other`?
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }
            /// Does `self` share any bit with `other`?
            pub const fn intersects(self, other: $name) -> bool {
                self.0 & other.0 != 0
            }
            /// Union.
            pub const fn union(self, other: $name) -> $name { $name(self.0 | other.0) }
            /// Set difference.
            pub const fn difference(self, other: $name) -> $name { $name(self.0 & !other.0) }
        }

        impl core::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { $name(self.0 | rhs.0) }
        }
        impl core::ops::BitOrAssign for $name {
            fn bitor_assign(&mut self, rhs: $name) { self.0 |= rhs.0; }
        }
        impl core::ops::BitAnd for $name {
            type Output = $name;
            fn bitand(self, rhs: $name) -> $name { $name(self.0 & rhs.0) }
        }
        impl core::ops::Not for $name {
            type Output = $name;
            fn not(self) -> $name { $name(!self.0) }
        }
        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                let mut first = true;
                $(
                    if self.contains($name::$flag) {
                        if !first { write!(f, "|")?; }
                        write!(f, stringify!($flag))?;
                        first = false;
                    }
                )*
                if first { write!(f, "(none)")?; }
                Ok(())
            }
        }
    };
}

bitflags_lite! {
    /// The eight TCP flag bits of header byte 13.
    pub struct TcpFlags: u8 {
        /// Sender reduced its congestion window (ECN).
        const CWR = 0b1000_0000;
        /// ECN-Echo: receiver saw a CE mark (or SYN: ECN negotiation).
        const ECE = 0b0100_0000;
        /// Urgent pointer is significant (unused here).
        const URG = 0b0010_0000;
        /// Acknowledgement number is significant.
        const ACK = 0b0001_0000;
        /// Push.
        const PSH = 0b0000_1000;
        /// Reset the connection.
        const RST = 0b0000_0100;
        /// Synchronize sequence numbers.
        const SYN = 0b0000_0010;
        /// No more data from sender.
        const FIN = 0b0000_0001;
    }
}

/// Reserved-bit mask (byte 12, bit 2): guest stack is ECN-capable.
const RSVD_VM_ECE: u8 = 0b0000_0100;
/// Reserved-bit mask (byte 12, bit 1): this packet is an AC/DC fake ACK.
const RSVD_FACK: u8 = 0b0000_0010;

/// A read/write view of a TCP segment over any byte container.
///
/// The buffer starts at the TCP header (no IP header).
#[derive(Debug, Clone)]
pub struct TcpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpPacket<T> {
    /// Wrap a buffer without validating it.
    pub fn new_unchecked(buffer: T) -> TcpPacket<T> {
        TcpPacket { buffer }
    }

    /// Wrap a buffer, validating lengths and the data offset.
    pub fn new_checked(buffer: T) -> Result<TcpPacket<T>> {
        let pkt = TcpPacket::new_unchecked(buffer);
        pkt.check()?;
        Ok(pkt)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let off = self.header_len();
        if !(HEADER_LEN..=MAX_HEADER_LEN).contains(&off) || data.len() < off {
            return Err(Error::Malformed);
        }
        Ok(())
    }

    /// Consume the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::SRC_PORT].try_into().unwrap())
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::DST_PORT].try_into().unwrap())
    }

    /// Sequence number.
    pub fn seq_number(&self) -> SeqNumber {
        SeqNumber(u32::from_be_bytes(
            self.buffer.as_ref()[field::SEQ_NUM].try_into().unwrap(),
        ))
    }

    /// Acknowledgement number.
    pub fn ack_number(&self) -> SeqNumber {
        SeqNumber(u32::from_be_bytes(
            self.buffer.as_ref()[field::ACK_NUM].try_into().unwrap(),
        ))
    }

    /// Header length in bytes (data offset * 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[field::OFF_RSVD] >> 4) * 4
    }

    /// The flag byte.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags::from_bits(self.buffer.as_ref()[field::FLAGS])
    }

    /// Is the AC/DC "guest is ECN-capable" reserved bit set?
    pub fn vm_ece(&self) -> bool {
        self.buffer.as_ref()[field::OFF_RSVD] & RSVD_VM_ECE != 0
    }

    /// Is this packet an AC/DC fake ACK?
    pub fn is_fack(&self) -> bool {
        self.buffer.as_ref()[field::OFF_RSVD] & RSVD_FACK != 0
    }

    /// The advertised receive window (unscaled, as on the wire).
    pub fn window(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::WINDOW].try_into().unwrap())
    }

    /// The checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes(self.buffer.as_ref()[field::CHECKSUM].try_into().unwrap())
    }

    /// The raw options bytes (between the fixed header and the payload).
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.header_len()]
    }

    /// The payload bytes actually present in the buffer.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Iterate over the parsed options, stopping at EOL or a malformed one.
    pub fn options_iter(&self) -> TcpOptionsIter<'_> {
        TcpOptionsIter {
            data: self.options(),
        }
    }

    /// Find the AC/DC PACK option, if present.
    pub fn pack_option(&self) -> Option<PackOption> {
        self.options_iter().find_map(|opt| match opt {
            TcpOption::Pack(p) => Some(p),
            _ => None,
        })
    }

    /// Verify the TCP checksum assuming a payload of `payload_len` zero
    /// bytes beyond what the buffer holds (see crate docs on virtual
    /// payloads). For fully materialized packets pass `0`.
    pub fn verify_checksum(&self, src: [u8; 4], dst: [u8; 4], virtual_payload_len: usize) -> bool {
        let data = self.buffer.as_ref();
        let l4_len = (data.len() + virtual_payload_len) as u32;
        let mut sum = pseudo_header_sum(src, dst, crate::PROTO_TCP, l4_len);
        sum = sum_words(sum, data);
        fold(sum) == 0xffff
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpPacket<T> {
    /// Set source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set sequence number.
    pub fn set_seq_number(&mut self, seq: SeqNumber) {
        self.buffer.as_mut()[field::SEQ_NUM].copy_from_slice(&seq.raw().to_be_bytes());
    }

    /// Set acknowledgement number.
    pub fn set_ack_number(&mut self, ack: SeqNumber) {
        self.buffer.as_mut()[field::ACK_NUM].copy_from_slice(&ack.raw().to_be_bytes());
    }

    /// Set the header length (bytes; must be a multiple of 4), preserving
    /// the reserved bits.
    pub fn set_header_len(&mut self, len: usize) {
        debug_assert_eq!(len % 4, 0);
        let b = &mut self.buffer.as_mut()[field::OFF_RSVD];
        *b = (*b & 0x0f) | (((len / 4) as u8) << 4);
    }

    /// Set or clear the AC/DC "guest is ECN-capable" reserved bit.
    pub fn set_vm_ece(&mut self, on: bool) {
        let b = &mut self.buffer.as_mut()[field::OFF_RSVD];
        if on {
            *b |= RSVD_VM_ECE;
        } else {
            *b &= !RSVD_VM_ECE;
        }
    }

    /// Set or clear the fake-ACK reserved bit.
    pub fn set_fack(&mut self, on: bool) {
        let b = &mut self.buffer.as_mut()[field::OFF_RSVD];
        if on {
            *b |= RSVD_FACK;
        } else {
            *b &= !RSVD_FACK;
        }
    }

    /// Set the flag byte.
    pub fn set_flags(&mut self, flags: TcpFlags) {
        self.buffer.as_mut()[field::FLAGS] = flags.bits();
    }

    /// Set the advertised window (raw, unscaled).
    pub fn set_window(&mut self, window: u16) {
        self.buffer.as_mut()[field::WINDOW].copy_from_slice(&window.to_be_bytes());
    }

    /// Overwrite the advertised window *and* incrementally patch the TCP
    /// checksum — the AC/DC enforcement write (§3.3 / §4 of the paper).
    pub fn set_window_update_checksum(&mut self, window: u16) {
        let data = self.buffer.as_mut();
        let old = u16::from_be_bytes(data[field::WINDOW].try_into().unwrap());
        data[field::WINDOW].copy_from_slice(&window.to_be_bytes());
        let old_ck = u16::from_be_bytes(data[field::CHECKSUM].try_into().unwrap());
        let new_ck = checksum_adjust(old_ck, old, window);
        data[field::CHECKSUM].copy_from_slice(&new_ck.to_be_bytes());
    }

    /// Overwrite the flag byte and incrementally patch the checksum.
    pub fn set_flags_update_checksum(&mut self, flags: TcpFlags) {
        let data = self.buffer.as_mut();
        let old = u16::from_be_bytes([data[field::OFF_RSVD], data[field::FLAGS]]);
        data[field::FLAGS] = flags.bits();
        let new = u16::from_be_bytes([data[field::OFF_RSVD], data[field::FLAGS]]);
        let old_ck = u16::from_be_bytes(data[field::CHECKSUM].try_into().unwrap());
        let new_ck = checksum_adjust(old_ck, old, new);
        data[field::CHECKSUM].copy_from_slice(&new_ck.to_be_bytes());
    }

    /// Clear a flag bit and incrementally patch the checksum. Used by the
    /// sender module to strip ECE feedback before the guest sees it.
    pub fn clear_flags_update_checksum(&mut self, flags: TcpFlags) {
        let data = self.buffer.as_mut();
        let old = u16::from_be_bytes([data[field::OFF_RSVD], data[field::FLAGS]]);
        data[field::FLAGS] &= !flags.bits();
        let new = u16::from_be_bytes([data[field::OFF_RSVD], data[field::FLAGS]]);
        let old_ck = u16::from_be_bytes(data[field::CHECKSUM].try_into().unwrap());
        let new_ck = checksum_adjust(old_ck, old, new);
        data[field::CHECKSUM].copy_from_slice(&new_ck.to_be_bytes());
    }

    /// Set the AC/DC reserved-bit markers and incrementally patch the
    /// checksum (sender-module egress marking).
    pub fn set_reserved_update_checksum(&mut self, vm_ece: bool, fack: bool) {
        let data = self.buffer.as_mut();
        let old = u16::from_be_bytes([data[field::OFF_RSVD], data[field::FLAGS]]);
        if vm_ece {
            data[field::OFF_RSVD] |= RSVD_VM_ECE;
        } else {
            data[field::OFF_RSVD] &= !RSVD_VM_ECE;
        }
        if fack {
            data[field::OFF_RSVD] |= RSVD_FACK;
        } else {
            data[field::OFF_RSVD] &= !RSVD_FACK;
        }
        let new = u16::from_be_bytes([data[field::OFF_RSVD], data[field::FLAGS]]);
        let old_ck = u16::from_be_bytes(data[field::CHECKSUM].try_into().unwrap());
        let new_ck = checksum_adjust(old_ck, old, new);
        data[field::CHECKSUM].copy_from_slice(&new_ck.to_be_bytes());
    }

    /// Clear the reserved-bit markers and incrementally patch the checksum.
    /// Used so AC/DC metadata never leaks to guests or the wire beyond the
    /// peer vSwitch.
    pub fn clear_reserved_update_checksum(&mut self) {
        let data = self.buffer.as_mut();
        let old = u16::from_be_bytes([data[field::OFF_RSVD], data[field::FLAGS]]);
        data[field::OFF_RSVD] &= !(RSVD_VM_ECE | RSVD_FACK);
        let new = u16::from_be_bytes([data[field::OFF_RSVD], data[field::FLAGS]]);
        let old_ck = u16::from_be_bytes(data[field::CHECKSUM].try_into().unwrap());
        let new_ck = checksum_adjust(old_ck, old, new);
        data[field::CHECKSUM].copy_from_slice(&new_ck.to_be_bytes());
    }

    /// Set the checksum field.
    pub fn set_checksum(&mut self, ck: u16) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&ck.to_be_bytes());
    }

    /// Zero the urgent pointer.
    pub fn clear_urgent(&mut self) {
        self.buffer.as_mut()[field::URGENT].copy_from_slice(&[0, 0]);
    }

    /// Mutable access to the options region.
    pub fn options_mut(&mut self) -> &mut [u8] {
        let end = self.header_len();
        &mut self.buffer.as_mut()[HEADER_LEN..end]
    }

    /// Compute and fill the checksum, assuming `virtual_payload_len` zero
    /// payload bytes beyond the buffer.
    pub fn fill_checksum(&mut self, src: [u8; 4], dst: [u8; 4], virtual_payload_len: usize) {
        self.set_checksum(0);
        let data = self.buffer.as_ref();
        let l4_len = (data.len() + virtual_payload_len) as u32;
        let mut sum = pseudo_header_sum(src, dst, crate::PROTO_TCP, l4_len);
        sum = sum_words(sum, data);
        let ck = !fold(sum);
        self.set_checksum(ck);
    }
}

/// A single parsed TCP option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOption {
    /// End of options list.
    EndOfList,
    /// Padding.
    NoOperation,
    /// Maximum segment size (SYN only).
    MaxSegmentSize(u16),
    /// Window scale shift (SYN only, RFC 7323).
    WindowScale(u8),
    /// SACK permitted (SYN only).
    SackPermitted,
    /// Timestamps (value, echo reply).
    Timestamps(u32, u32),
    /// The AC/DC PACK feedback option.
    Pack(PackOption),
    /// Anything we do not interpret: (kind, length).
    Unknown(u8, u8),
}

/// Option kind numbers.
pub mod option_kind {
    /// End of option list.
    pub const EOL: u8 = 0;
    /// No-operation (padding).
    pub const NOP: u8 = 1;
    /// Maximum segment size.
    pub const MSS: u8 = 2;
    /// Window scale.
    pub const WS: u8 = 3;
    /// SACK permitted.
    pub const SACK_PERM: u8 = 4;
    /// Timestamps.
    pub const TS: u8 = 8;
    /// RFC 6994 shared experimental option, used for PACK.
    pub const EXPERIMENT: u8 = 253;
}

impl TcpOption {
    /// Encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            TcpOption::EndOfList | TcpOption::NoOperation => 1,
            TcpOption::MaxSegmentSize(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps(_, _) => 10,
            TcpOption::Pack(_) => PackOption::WIRE_LEN,
            TcpOption::Unknown(_, len) => *len as usize,
        }
    }

    /// Emit this option at the front of `buf`, returning the remainder.
    pub fn emit<'a>(&self, buf: &'a mut [u8]) -> &'a mut [u8] {
        let len = self.wire_len();
        assert!(buf.len() >= len, "option buffer too small");
        match *self {
            TcpOption::EndOfList => buf[0] = option_kind::EOL,
            TcpOption::NoOperation => buf[0] = option_kind::NOP,
            TcpOption::MaxSegmentSize(mss) => {
                buf[0] = option_kind::MSS;
                buf[1] = 4;
                buf[2..4].copy_from_slice(&mss.to_be_bytes());
            }
            TcpOption::WindowScale(shift) => {
                buf[0] = option_kind::WS;
                buf[1] = 3;
                buf[2] = shift;
            }
            TcpOption::SackPermitted => {
                buf[0] = option_kind::SACK_PERM;
                buf[1] = 2;
            }
            TcpOption::Timestamps(val, ecr) => {
                buf[0] = option_kind::TS;
                buf[1] = 10;
                buf[2..6].copy_from_slice(&val.to_be_bytes());
                buf[6..10].copy_from_slice(&ecr.to_be_bytes());
            }
            TcpOption::Pack(ref p) => p.emit(&mut buf[..PackOption::WIRE_LEN]),
            TcpOption::Unknown(kind, olen) => {
                buf[0] = kind;
                buf[1] = olen;
                for b in &mut buf[2..olen as usize] {
                    *b = 0;
                }
            }
        }
        &mut buf[len..]
    }
}

/// Iterator over the options region of a TCP header.
pub struct TcpOptionsIter<'a> {
    data: &'a [u8],
}

impl<'a> Iterator for TcpOptionsIter<'a> {
    type Item = TcpOption;

    fn next(&mut self) -> Option<TcpOption> {
        if self.data.is_empty() {
            return None;
        }
        let kind = self.data[0];
        match kind {
            option_kind::EOL => {
                self.data = &[];
                None
            }
            option_kind::NOP => {
                self.data = &self.data[1..];
                Some(TcpOption::NoOperation)
            }
            _ => {
                if self.data.len() < 2 {
                    self.data = &[];
                    return None;
                }
                let len = self.data[1] as usize;
                if len < 2 || len > self.data.len() {
                    self.data = &[];
                    return None;
                }
                let body = &self.data[..len];
                self.data = &self.data[len..];
                Some(match (kind, len) {
                    (option_kind::MSS, 4) => {
                        TcpOption::MaxSegmentSize(u16::from_be_bytes([body[2], body[3]]))
                    }
                    (option_kind::WS, 3) => TcpOption::WindowScale(body[2]),
                    (option_kind::SACK_PERM, 2) => TcpOption::SackPermitted,
                    (option_kind::TS, 10) => TcpOption::Timestamps(
                        u32::from_be_bytes(body[2..6].try_into().unwrap()),
                        u32::from_be_bytes(body[6..10].try_into().unwrap()),
                    ),
                    (option_kind::EXPERIMENT, PackOption::WIRE_LEN_U8)
                        if PackOption::matches(body) =>
                    {
                        match PackOption::parse(body) {
                            Ok(p) => TcpOption::Pack(p),
                            Err(_) => TcpOption::Unknown(kind, len as u8),
                        }
                    }
                    _ => TcpOption::Unknown(kind, len as u8),
                })
            }
        }
    }
}

/// High-level representation of a TCP segment header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: SeqNumber,
    /// Acknowledgement number (meaningful when ACK flag set).
    pub ack: SeqNumber,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Raw advertised window.
    pub window: u16,
    /// Options to carry.
    pub options: Vec<TcpOption>,
    /// AC/DC reserved-bit: guest is ECN-capable.
    pub vm_ece: bool,
    /// AC/DC reserved-bit: fake ACK.
    pub fack: bool,
}

impl TcpRepr {
    /// A baseline segment with the given ports and no flags.
    pub fn new(src_port: u16, dst_port: u16) -> TcpRepr {
        TcpRepr {
            src_port,
            dst_port,
            seq: SeqNumber::ZERO,
            ack: SeqNumber::ZERO,
            flags: TcpFlags::empty(),
            window: 0,
            options: Vec::new(),
            vm_ece: false,
            fack: false,
        }
    }

    /// Parse a representation out of a packet view.
    pub fn parse<T: AsRef<[u8]>>(pkt: &TcpPacket<T>) -> Result<TcpRepr> {
        pkt.check()?;
        Ok(TcpRepr {
            src_port: pkt.src_port(),
            dst_port: pkt.dst_port(),
            seq: pkt.seq_number(),
            ack: pkt.ack_number(),
            flags: pkt.flags(),
            window: pkt.window(),
            options: pkt.options_iter().collect(),
            vm_ece: pkt.vm_ece(),
            fack: pkt.is_fack(),
        })
    }

    /// Bytes of options when emitted, padded to a multiple of 4.
    pub fn options_len(&self) -> usize {
        let raw: usize = self.options.iter().map(|o| o.wire_len()).sum();
        raw.div_ceil(4) * 4
    }

    /// Total header length when emitted.
    pub fn header_len(&self) -> usize {
        HEADER_LEN + self.options_len()
    }

    /// Emit into a buffer of at least `header_len()` bytes. The checksum is
    /// left zero; call [`TcpPacket::fill_checksum`] afterwards.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, pkt: &mut TcpPacket<T>) {
        assert!(
            self.header_len() <= MAX_HEADER_LEN,
            "too many TCP options ({} bytes)",
            self.header_len()
        );
        pkt.set_src_port(self.src_port);
        pkt.set_dst_port(self.dst_port);
        pkt.set_seq_number(self.seq);
        pkt.set_ack_number(self.ack);
        // Order matters: header length shares a byte with the reserved bits.
        pkt.buffer.as_mut()[field::OFF_RSVD] = 0;
        pkt.set_header_len(self.header_len());
        pkt.set_vm_ece(self.vm_ece);
        pkt.set_fack(self.fack);
        pkt.set_flags(self.flags);
        pkt.set_window(self.window);
        pkt.set_checksum(0);
        pkt.clear_urgent();
        let mut opts = pkt.options_mut();
        for opt in &self.options {
            opts = opt.emit(opts);
        }
        // Pad with EOL/NOP to the 4-byte boundary.
        for b in opts.iter_mut() {
            *b = option_kind::EOL;
        }
    }

    /// Does this segment occupy sequence space (data, SYN or FIN)?
    pub fn seq_len(&self, payload_len: usize) -> u32 {
        let mut len = payload_len as u32;
        if self.flags.contains(TcpFlags::SYN) {
            len += 1;
        }
        if self.flags.contains(TcpFlags::FIN) {
            len += 1;
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> TcpRepr {
        TcpRepr {
            src_port: 4321,
            dst_port: 80,
            seq: SeqNumber(0x1234_5678),
            ack: SeqNumber(0x8765_4321),
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 0xbeef,
            options: vec![
                TcpOption::NoOperation,
                TcpOption::NoOperation,
                TcpOption::Timestamps(111, 222),
            ],
            vm_ece: true,
            fack: false,
        }
    }

    fn emit(repr: &TcpRepr) -> Vec<u8> {
        let mut buf = vec![0u8; repr.header_len()];
        let mut pkt = TcpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.fill_checksum([10, 0, 0, 1], [10, 0, 0, 2], 0);
        buf
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample_repr();
        let buf = emit(&repr);
        let pkt = TcpPacket::new_checked(&buf[..]).unwrap();
        assert!(pkt.verify_checksum([10, 0, 0, 1], [10, 0, 0, 2], 0));
        assert_eq!(TcpRepr::parse(&pkt).unwrap(), repr);
    }

    #[test]
    fn syn_options_round_trip() {
        let mut repr = TcpRepr::new(1, 2);
        repr.flags = TcpFlags::SYN;
        repr.options = vec![
            TcpOption::MaxSegmentSize(8960),
            TcpOption::WindowScale(9),
            TcpOption::SackPermitted,
            TcpOption::NoOperation,
        ];
        let buf = emit(&repr);
        let pkt = TcpPacket::new_checked(&buf[..]).unwrap();
        let parsed = TcpRepr::parse(&pkt).unwrap();
        assert!(parsed.options.contains(&TcpOption::MaxSegmentSize(8960)));
        assert!(parsed.options.contains(&TcpOption::WindowScale(9)));
        assert!(parsed.options.contains(&TcpOption::SackPermitted));
    }

    #[test]
    fn window_rewrite_preserves_checksum_validity() {
        let repr = sample_repr();
        let mut buf = emit(&repr);
        let mut pkt = TcpPacket::new_unchecked(&mut buf[..]);
        pkt.set_window_update_checksum(77);
        let pkt = TcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.window(), 77);
        assert!(pkt.verify_checksum([10, 0, 0, 1], [10, 0, 0, 2], 0));
    }

    #[test]
    fn clear_ece_preserves_checksum_validity() {
        let mut repr = sample_repr();
        repr.flags = TcpFlags::ACK | TcpFlags::ECE;
        let mut buf = emit(&repr);
        let mut pkt = TcpPacket::new_unchecked(&mut buf[..]);
        pkt.clear_flags_update_checksum(TcpFlags::ECE);
        let pkt = TcpPacket::new_checked(&buf[..]).unwrap();
        assert!(!pkt.flags().contains(TcpFlags::ECE));
        assert!(pkt.flags().contains(TcpFlags::ACK));
        assert!(pkt.verify_checksum([10, 0, 0, 1], [10, 0, 0, 2], 0));
    }

    #[test]
    fn clear_reserved_bits_preserves_checksum_validity() {
        let mut repr = sample_repr();
        repr.vm_ece = true;
        repr.fack = true;
        let mut buf = emit(&repr);
        let mut pkt = TcpPacket::new_unchecked(&mut buf[..]);
        assert!(pkt.vm_ece());
        assert!(pkt.is_fack());
        pkt.clear_reserved_update_checksum();
        let pkt = TcpPacket::new_checked(&buf[..]).unwrap();
        assert!(!pkt.vm_ece());
        assert!(!pkt.is_fack());
        assert!(pkt.verify_checksum([10, 0, 0, 1], [10, 0, 0, 2], 0));
    }

    #[test]
    fn virtual_payload_checksum() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.header_len()];
        let mut pkt = TcpPacket::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        pkt.fill_checksum([1, 1, 1, 1], [2, 2, 2, 2], 1448);
        let pkt = TcpPacket::new_checked(&buf[..]).unwrap();
        // Verifies when we claim the same virtual payload...
        assert!(pkt.verify_checksum([1, 1, 1, 1], [2, 2, 2, 2], 1448));
        // ...and fails when we do not (pseudo-header length differs).
        assert!(!pkt.verify_checksum([1, 1, 1, 1], [2, 2, 2, 2], 0));
    }

    #[test]
    fn malformed_option_stops_iteration() {
        let mut repr = TcpRepr::new(1, 2);
        repr.options = vec![TcpOption::Timestamps(1, 2)];
        let mut buf = emit(&repr);
        // Corrupt the option length to be longer than the header.
        buf[HEADER_LEN + 1] = 40;
        let pkt = TcpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.options_iter().count(), 0);
    }

    #[test]
    fn header_len_bounds_checked() {
        let mut buf = [0u8; HEADER_LEN];
        buf[field::OFF_RSVD] = 0x30; // data offset 3 words = 12 bytes < 20
        assert_eq!(
            TcpPacket::new_checked(&buf[..]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let mut repr = TcpRepr::new(1, 2);
        assert_eq!(repr.seq_len(100), 100);
        repr.flags = TcpFlags::SYN;
        assert_eq!(repr.seq_len(0), 1);
        repr.flags = TcpFlags::FIN | TcpFlags::ACK;
        assert_eq!(repr.seq_len(10), 11);
    }

    #[test]
    fn flags_debug_format() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert_eq!(format!("{f:?}"), "ACK|SYN");
        assert_eq!(format!("{:?}", TcpFlags::empty()), "(none)");
    }
}
