//! TCP sequence numbers with RFC 793 modular comparison semantics.
//!
//! Both the TCP endpoints and the AC/DC connection-tracking code compare
//! 32-bit sequence numbers that wrap. `SeqNumber` encapsulates the wrapping
//! arithmetic so callers never write a raw `<` on sequence space.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A TCP sequence number: a point on the 2^32 circle.
///
/// Ordering is defined by the *signed distance* between points, which is the
/// standard serial-number arithmetic: `a < b` iff `(b - a) mod 2^32` is in
/// `(0, 2^31)`. Two numbers exactly half the circle apart are unordered; we
/// arbitrarily resolve that case as `Less` (it cannot occur with windows
/// bounded far below 2^31 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNumber(pub u32);

impl SeqNumber {
    /// Zero sequence number.
    pub const ZERO: SeqNumber = SeqNumber(0);

    /// The raw 32-bit value as carried on the wire.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Signed distance `self - other` on the sequence circle.
    pub fn distance(self, other: SeqNumber) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// The larger of two sequence numbers under modular ordering.
    pub fn max(self, other: SeqNumber) -> SeqNumber {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two sequence numbers under modular ordering.
    pub fn min(self, other: SeqNumber) -> SeqNumber {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Is `self` within the half-open interval `[lo, hi)` on the circle?
    pub fn in_range(self, lo: SeqNumber, hi: SeqNumber) -> bool {
        self >= lo && self < hi
    }
}

/// A point-in-time view of a sender's wire-sequence state: the oldest
/// unacknowledged byte and the next byte to send.
///
/// Both the guest TCP endpoint's sender and the vSwitch's passive
/// connection tracking reconstruct this same pair, and the
/// equivalence suites assert they agree. `SeqView` is the shared currency
/// for that comparison — it lives here (next to [`SeqNumber`]) so the
/// vSwitch can produce one without depending on the TCP crate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct SeqView {
    /// Oldest unacknowledged sequence number (`SND.UNA`).
    pub snd_una: SeqNumber,
    /// Next sequence number to be sent (`SND.NXT`).
    pub snd_nxt: SeqNumber,
}

impl SeqView {
    /// Bytes in flight according to this view: `snd_nxt - snd_una`,
    /// clamped at zero if the view is momentarily inconsistent.
    pub fn outstanding(self) -> u32 {
        let d = self.snd_nxt - self.snd_una;
        if d > 0 {
            d as u32
        } else {
            0
        }
    }
}

impl From<u32> for SeqNumber {
    fn from(v: u32) -> Self {
        SeqNumber(v)
    }
}

impl Add<u32> for SeqNumber {
    type Output = SeqNumber;
    fn add(self, rhs: u32) -> SeqNumber {
        SeqNumber(self.0.wrapping_add(rhs))
    }
}

impl Add<usize> for SeqNumber {
    type Output = SeqNumber;
    fn add(self, rhs: usize) -> SeqNumber {
        SeqNumber(self.0.wrapping_add(rhs as u32))
    }
}

impl AddAssign<u32> for SeqNumber {
    fn add_assign(&mut self, rhs: u32) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<SeqNumber> for SeqNumber {
    type Output = i32;
    fn sub(self, rhs: SeqNumber) -> i32 {
        self.distance(rhs)
    }
}

impl Sub<u32> for SeqNumber {
    type Output = SeqNumber;
    fn sub(self, rhs: u32) -> SeqNumber {
        SeqNumber(self.0.wrapping_sub(rhs))
    }
}

impl PartialOrd for SeqNumber {
    fn partial_cmp(&self, other: &SeqNumber) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SeqNumber {
    fn cmp(&self, other: &SeqNumber) -> Ordering {
        let d = self.distance(*other);
        match d {
            0 => Ordering::Equal,
            d if d > 0 => Ordering::Greater,
            _ => Ordering::Less,
        }
    }
}

impl fmt::Debug for SeqNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Seq({})", self.0)
    }
}

impl fmt::Display for SeqNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        assert!(SeqNumber(1) < SeqNumber(2));
        assert!(SeqNumber(2) > SeqNumber(1));
        assert_eq!(SeqNumber(7), SeqNumber(7));
    }

    #[test]
    fn ordering_across_wraparound() {
        let near_top = SeqNumber(u32::MAX - 10);
        let wrapped = near_top + 20u32;
        assert!(wrapped > near_top);
        assert_eq!(wrapped.raw(), 9);
        assert_eq!(wrapped - near_top, 20);
        assert_eq!(near_top - wrapped, -20);
    }

    #[test]
    fn in_range_spanning_wrap() {
        let lo = SeqNumber(u32::MAX - 5);
        let hi = SeqNumber(10);
        assert!(SeqNumber(u32::MAX).in_range(lo, hi));
        assert!(SeqNumber(0).in_range(lo, hi));
        assert!(SeqNumber(9).in_range(lo, hi));
        assert!(!SeqNumber(10).in_range(lo, hi));
        assert!(!SeqNumber(100).in_range(lo, hi));
    }

    #[test]
    fn max_min() {
        let a = SeqNumber(u32::MAX);
        let b = a + 5u32;
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn add_sub_round_trip() {
        let s = SeqNumber(123);
        assert_eq!((s + 77u32) - 77u32, s);
    }
}
