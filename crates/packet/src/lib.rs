//! # acdc-packet — wire formats for the AC/DC TCP reproduction
//!
//! This crate provides byte-level representations of the packet formats the
//! AC/DC datapath manipulates: IPv4, TCP (including options), UDP, ECN
//! codepoints, and the AC/DC-specific **PACK** (piggy-backed ACK) TCP option
//! that carries ECN feedback between the receiver-side and sender-side
//! vSwitch modules.
//!
//! The design follows the smoltcp convention of paired types:
//!
//! * `XPacket<T>` — a zero-copy *view* over a byte buffer with getters and
//!   (for mutable buffers) setters for each header field;
//! * `XRepr` — a parsed, high-level *representation* that can be emitted
//!   back into a buffer.
//!
//! The simulator carries [`Segment`]s: real serialized IPv4+TCP header bytes
//! plus a *virtual* payload length. Checksums are computed as if the payload
//! were all zero bytes, which keeps them end-to-end verifiable without
//! allocating bulk payloads (zero bytes contribute nothing to the Internet
//! checksum beyond the pseudo-header length).
//!
//! Nothing in this crate depends on the simulator; it is equally usable to
//! parse and build real packets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod ecn;
pub mod ipv4;
pub mod meta;
pub mod pack;
pub mod pool;
pub mod segment;
pub mod seq;
pub mod tcp;
pub mod udp;
pub mod window;

pub use checksum::{checksum, checksum_adjust, pseudo_header_sum};
pub use ecn::Ecn;
pub use ipv4::{Ipv4Packet, Ipv4Repr, PROTO_TCP, PROTO_UDP};
pub use meta::PacketMeta;
pub use pack::PackOption;
pub use pool::{PoolHandle, PoolStats, SegmentPool};
pub use segment::{FlowKey, Segment};
pub use seq::{SeqNumber, SeqView};
pub use tcp::{TcpFlags, TcpOption, TcpPacket, TcpRepr};
pub use udp::{UdpPacket, UdpRepr};
pub use window::{scale_rwnd, scale_rwnd_nonzero, unscale_rwnd, MAX_WSCALE};

/// Errors produced when parsing malformed packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// A length/offset field is inconsistent with the buffer.
    Malformed,
    /// A checksum did not verify.
    Checksum,
    /// An unsupported protocol or version number was found.
    Unsupported,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Truncated => write!(f, "packet truncated"),
            Error::Malformed => write!(f, "packet malformed"),
            Error::Checksum => write!(f, "checksum mismatch"),
            Error::Unsupported => write!(f, "unsupported protocol"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias for parse results.
pub type Result<T> = core::result::Result<T, Error>;
