//! Explicit Congestion Notification codepoints (RFC 3168).
//!
//! The two low-order bits of the IPv4 TOS byte carry the ECN field. DCTCP —
//! and therefore the AC/DC datapath — cares about three things: whether a
//! packet is ECN-capable (`Ect0`/`Ect1`), whether a switch marked it
//! (`Ce`), and stripping/restoring these bits so the guest stack never sees
//! signals it should not react to.

/// The four ECN codepoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ecn {
    /// Not ECN-Capable Transport (00).
    #[default]
    NotEct,
    /// ECN-Capable Transport, ECT(1) (01).
    Ect1,
    /// ECN-Capable Transport, ECT(0) (10). This is what Linux sets.
    Ect0,
    /// Congestion Experienced (11): set by a marking switch.
    Ce,
}

impl Ecn {
    /// Decode from the two low bits of the TOS/DSCP byte.
    pub fn from_bits(bits: u8) -> Ecn {
        match bits & 0b11 {
            0b00 => Ecn::NotEct,
            0b01 => Ecn::Ect1,
            0b10 => Ecn::Ect0,
            _ => Ecn::Ce,
        }
    }

    /// Encode to the two low bits of the TOS/DSCP byte.
    pub fn to_bits(self) -> u8 {
        match self {
            Ecn::NotEct => 0b00,
            Ecn::Ect1 => 0b01,
            Ecn::Ect0 => 0b10,
            Ecn::Ce => 0b11,
        }
    }

    /// Is this packet ECN-capable (ECT(0), ECT(1), or already CE-marked)?
    ///
    /// A WRED/ECN switch *marks* such packets instead of dropping them.
    pub fn is_ect(self) -> bool {
        self != Ecn::NotEct
    }

    /// Has a switch signalled congestion on this packet?
    pub fn is_ce(self) -> bool {
        self == Ecn::Ce
    }

    /// The codepoint after a switch marks this packet.
    ///
    /// Marking a non-ECT packet is a misconfiguration; we saturate to `Ce`
    /// anyway, matching hardware that sets both bits unconditionally.
    pub fn marked(self) -> Ecn {
        Ecn::Ce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_codepoints() {
        for cp in [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce] {
            assert_eq!(Ecn::from_bits(cp.to_bits()), cp);
        }
    }

    #[test]
    fn from_bits_ignores_upper_bits() {
        assert_eq!(Ecn::from_bits(0b1111_1110), Ecn::Ect0);
        assert_eq!(Ecn::from_bits(0b0000_0111), Ecn::Ce);
    }

    #[test]
    fn ect_classification() {
        assert!(!Ecn::NotEct.is_ect());
        assert!(Ecn::Ect0.is_ect());
        assert!(Ecn::Ect1.is_ect());
        assert!(Ecn::Ce.is_ect());
        assert!(Ecn::Ce.is_ce());
        assert!(!Ecn::Ect0.is_ce());
    }
}
