//! Internet checksum (RFC 1071) plus the incremental update rule (RFC 1624)
//! the AC/DC datapath uses when it rewrites the TCP receive window in place.

/// Accumulate 16-bit one's-complement words of `data` into `sum`.
///
/// The accumulator is kept as a `u32` and folded at the end; for the buffer
/// sizes seen in packet headers this cannot overflow.
pub fn sum_words(mut sum: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for w in chunks.by_ref() {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Fold a 32-bit accumulator to a 16-bit one's-complement sum.
pub fn fold(mut sum: u32) -> u16 {
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Compute the Internet checksum of `data` (one's complement of the
/// one's-complement sum), ready to be written into a checksum field.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(0, data))
}

/// Compute the IPv4 pseudo-header contribution used by TCP and UDP
/// checksums: source address, destination address, protocol and L4 length.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], proto: u8, l4_len: u32) -> u32 {
    let mut sum = 0u32;
    sum = sum_words(sum, &src);
    sum = sum_words(sum, &dst);
    sum += u32::from(proto);
    sum += l4_len & 0xffff;
    sum += l4_len >> 16;
    sum
}

/// Incrementally adjust a checksum after a 16-bit field changed from
/// `old` to `new` (RFC 1624, eqn. 3: `HC' = ~(~HC + ~m + m')`).
///
/// This is how the AC/DC sender module patches the TCP checksum after
/// overwriting `RWND` without touching the rest of the packet.
pub fn checksum_adjust(cksum: u16, old: u16, new: u16) -> u16 {
    let sum = u32::from(!cksum) + u32::from(!old) + u32::from(new);
    !fold(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_checksums_to_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn known_vector() {
        // Example from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = fold(sum_words(0, &data));
        assert_eq!(sum, 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verifying_a_packet_with_its_checksum_yields_zero_sum() {
        let mut data = vec![0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert_eq!(fold(sum_words(0, &data)), 0xffff);
    }

    #[test]
    fn incremental_update_matches_full_recompute() {
        let mut data = vec![
            0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11, 0x22, 0x33, 0x44,
        ];
        let before = checksum(&data);
        // Change the 16-bit word at offset 8 from 0x1122 to 0x7777.
        data[8] = 0x77;
        data[9] = 0x77;
        let after_full = checksum(&data);
        let after_incr = checksum_adjust(before, 0x1122, 0x7777);
        assert_eq!(after_full, after_incr);
    }

    #[test]
    fn incremental_update_is_involutive() {
        let c = 0x1234u16;
        let c2 = checksum_adjust(c, 0xaaaa, 0x5555);
        let c3 = checksum_adjust(c2, 0x5555, 0xaaaa);
        assert_eq!(fold(u32::from(c3)), fold(u32::from(c)));
    }

    #[test]
    fn pseudo_header_large_length_carries() {
        // l4_len larger than 16 bits must fold its carry into the sum.
        let a = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 6, 0x1_0000);
        let b = pseudo_header_sum([10, 0, 0, 1], [10, 0, 0, 2], 6, 1);
        assert_eq!(fold(a), fold(b));
    }
}
