//! [`PacketMeta`]: header metadata extracted by a single parse.
//!
//! Every layer of the simulated hot path — netsim delivery, fault
//! injection, the NIC demux, both AC/DC vSwitch modules, and the guest
//! endpoint — needs some subset of the same header fields: the 5-tuple,
//! TCP flags, sequence/ack numbers, the advertised window, ECN
//! codepoints, and a handful of option values. Re-deriving them from the
//! raw bytes at each layer is exactly the per-packet overhead the paper's
//! §4.4 feasibility argument says the enforcement layer cannot afford.
//!
//! `PacketMeta` is the result of *one* forward pass over the IPv4 + L4
//! header, including a single walk of the TCP options region. A
//! [`Segment`](crate::Segment) caches it lazily at first access and keeps
//! it coherent across the in-place mutators (window rewrite, ECN patch,
//! PACK insertion/removal), so downstream consumers read fields instead
//! of re-parsing. See `Segment::try_meta` for the caching contract.

use crate::pack::PackOption;
use crate::segment::FlowKey;
use crate::tcp::option_kind;
use crate::{
    Error, Ipv4Packet, Result, SeqNumber, TcpFlags, TcpPacket, UdpPacket, PROTO_TCP, PROTO_UDP,
};

/// Parsed header metadata for one segment, built by a single parse.
///
/// For UDP segments the TCP-specific fields hold zero/empty defaults;
/// `protocol` disambiguates. All fields are plain values (`Copy`) so the
/// whole struct lives in registers/cache once built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// The 5-tuple-minus-protocol flow key of this direction.
    pub flow: FlowKey,
    /// IP protocol number ([`PROTO_TCP`] or [`PROTO_UDP`]).
    pub protocol: u8,
    /// ECN codepoint from the IP header.
    pub ecn: crate::Ecn,
    /// IPv4 header length in bytes.
    pub ip_header_len: u8,
    /// L4 (TCP or UDP) header length in bytes.
    pub l4_header_len: u8,
    /// TCP flag bits (empty for UDP).
    pub flags: TcpFlags,
    /// TCP sequence number (zero for UDP).
    pub seq: SeqNumber,
    /// TCP acknowledgement number (zero for UDP).
    pub ack: SeqNumber,
    /// Raw advertised window (zero for UDP).
    pub window: u16,
    /// AC/DC reserved bit: guest stack is ECN-capable.
    pub vm_ece: bool,
    /// AC/DC reserved bit: this is a fabricated fake ACK.
    pub fack: bool,
    /// Absolute byte offset (from the start of the IP header) of the PACK
    /// option's kind byte, when present. Lets the strip path remove the
    /// option without re-walking the options region.
    pub pack_off: Option<u16>,
    /// The parsed PACK feedback option, when present.
    pub pack: Option<PackOption>,
    /// Window-scale shift from a WS option (SYN packets).
    pub wscale: Option<u8>,
    /// Maximum segment size from an MSS option (SYN packets).
    pub mss: Option<u16>,
}

impl PacketMeta {
    /// Parse header metadata out of serialized IPv4 + L4 header bytes.
    ///
    /// This is the *only* full parse on the hot path: one validated pass
    /// over the IP header, one over the fixed TCP/UDP header, and one walk
    /// of the TCP options region capturing MSS, window scale, and PACK in
    /// the same sweep. Malformed input returns `Err` — callers drop and
    /// count the frame instead of panicking.
    pub fn parse(buf: &[u8]) -> Result<PacketMeta> {
        let ip = Ipv4Packet::new_checked(buf)?;
        let ihl = ip.header_len();
        match ip.protocol() {
            PROTO_TCP => {
                let tcp = TcpPacket::new_checked(&buf[ihl..])?;
                let thl = tcp.header_len();
                let mut meta = PacketMeta {
                    flow: FlowKey {
                        src_ip: ip.src_addr(),
                        dst_ip: ip.dst_addr(),
                        src_port: tcp.src_port(),
                        dst_port: tcp.dst_port(),
                    },
                    protocol: PROTO_TCP,
                    ecn: ip.ecn(),
                    ip_header_len: ihl as u8,
                    l4_header_len: thl as u8,
                    flags: tcp.flags(),
                    seq: tcp.seq_number(),
                    ack: tcp.ack_number(),
                    window: tcp.window(),
                    vm_ece: tcp.vm_ece(),
                    fack: tcp.is_fack(),
                    pack_off: None,
                    pack: None,
                    wscale: None,
                    mss: None,
                };
                walk_options(
                    tcp.options(),
                    (ihl + crate::tcp::HEADER_LEN) as u16,
                    &mut meta,
                );
                Ok(meta)
            }
            PROTO_UDP => {
                let udp = UdpPacket::new_checked(&buf[ihl..])?;
                Ok(PacketMeta {
                    flow: FlowKey {
                        src_ip: ip.src_addr(),
                        dst_ip: ip.dst_addr(),
                        src_port: udp.src_port(),
                        dst_port: udp.dst_port(),
                    },
                    protocol: PROTO_UDP,
                    ecn: ip.ecn(),
                    ip_header_len: ihl as u8,
                    l4_header_len: crate::udp::HEADER_LEN as u8,
                    flags: TcpFlags::empty(),
                    seq: SeqNumber::ZERO,
                    ack: SeqNumber::ZERO,
                    window: 0,
                    vm_ece: false,
                    fack: false,
                    pack_off: None,
                    pack: None,
                    wscale: None,
                    mss: None,
                })
            }
            _ => Err(Error::Unsupported),
        }
    }

    /// Is this a TCP segment?
    pub fn is_tcp(&self) -> bool {
        self.protocol == PROTO_TCP
    }
}

/// One sweep over the options region, recording the values the simulator
/// consumes (MSS, window scale, PACK + its absolute offset). Stops at EOL
/// or the first malformed option, matching `TcpOptionsIter` semantics.
fn walk_options(opts: &[u8], base_off: u16, meta: &mut PacketMeta) {
    let mut i = 0usize;
    while i < opts.len() {
        match opts[i] {
            option_kind::EOL => return,
            option_kind::NOP => i += 1,
            kind => {
                if i + 1 >= opts.len() {
                    return;
                }
                let len = opts[i + 1] as usize;
                if len < 2 || i + len > opts.len() {
                    return;
                }
                let body = &opts[i..i + len];
                match (kind, len) {
                    (option_kind::MSS, 4) => {
                        meta.mss = Some(u16::from_be_bytes([body[2], body[3]]));
                    }
                    (option_kind::WS, 3) => meta.wscale = Some(body[2]),
                    (option_kind::EXPERIMENT, PackOption::WIRE_LEN_U8)
                        if PackOption::matches(body) =>
                    {
                        if let Ok(p) = PackOption::parse(body) {
                            meta.pack = Some(p);
                            meta.pack_off = Some(base_off + i as u16);
                        }
                    }
                    _ => {}
                }
                i += len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ecn, Ipv4Repr, Segment, TcpOption, TcpRepr, UdpRepr};

    fn ip_repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: [10, 0, 0, 1],
            dst_addr: [10, 0, 0, 9],
            protocol: PROTO_TCP,
            ecn: Ecn::Ect0,
            payload_len: 0,
            ttl: 64,
        }
    }

    #[test]
    fn tcp_meta_captures_fixed_fields() {
        let mut r = TcpRepr::new(40_000, 5_001);
        r.seq = SeqNumber(1000);
        r.ack = SeqNumber(2000);
        r.flags = TcpFlags::ACK | TcpFlags::PSH;
        r.window = 777;
        r.vm_ece = true;
        let seg = Segment::new_tcp(ip_repr(), r, 100);
        let m = PacketMeta::parse(seg.header_bytes()).unwrap();
        assert!(m.is_tcp());
        assert_eq!(m.flow.src_port, 40_000);
        assert_eq!(m.flow.dst_port, 5_001);
        assert_eq!(m.seq, SeqNumber(1000));
        assert_eq!(m.ack, SeqNumber(2000));
        assert_eq!(m.flags, TcpFlags::ACK | TcpFlags::PSH);
        assert_eq!(m.window, 777);
        assert!(m.vm_ece);
        assert!(!m.fack);
        assert_eq!(m.ecn, Ecn::Ect0);
        assert_eq!(m.ip_header_len, 20);
        assert_eq!(m.l4_header_len, 20);
        assert_eq!(m.pack, None);
    }

    #[test]
    fn single_walk_captures_syn_options() {
        let mut r = TcpRepr::new(1, 2);
        r.flags = TcpFlags::SYN;
        r.options = vec![
            TcpOption::MaxSegmentSize(1448),
            TcpOption::WindowScale(9),
            TcpOption::SackPermitted,
        ];
        let seg = Segment::new_tcp(ip_repr(), r, 0);
        let m = PacketMeta::parse(seg.header_bytes()).unwrap();
        assert_eq!(m.mss, Some(1448));
        assert_eq!(m.wscale, Some(9));
    }

    #[test]
    fn pack_offset_points_at_kind_byte() {
        let pack = PackOption {
            total_bytes: 5_000,
            marked_bytes: 123,
        };
        let mut r = TcpRepr::new(1, 2);
        r.flags = TcpFlags::ACK;
        r.options = vec![TcpOption::Pack(pack)];
        let seg = Segment::new_tcp(ip_repr(), r, 0);
        let m = PacketMeta::parse(seg.header_bytes()).unwrap();
        assert_eq!(m.pack, Some(pack));
        let off = m.pack_off.unwrap() as usize;
        assert_eq!(seg.header_bytes()[off], option_kind::EXPERIMENT);
        assert_eq!(seg.header_bytes()[off + 1], PackOption::WIRE_LEN as u8);
    }

    #[test]
    fn udp_meta_has_empty_tcp_fields() {
        let udp = UdpRepr {
            src_port: 6000,
            dst_port: 7000,
            payload_len: 0,
        };
        let seg = Segment::new_udp(ip_repr(), udp, 64);
        let m = PacketMeta::parse(seg.header_bytes()).unwrap();
        assert!(!m.is_tcp());
        assert_eq!(m.flow.src_port, 6000);
        assert_eq!(m.flags, TcpFlags::empty());
        assert_eq!(m.window, 0);
    }

    #[test]
    fn rejects_unsupported_protocol() {
        let mut seg = Segment::new_tcp(ip_repr(), TcpRepr::new(1, 2), 0);
        seg.ip_mut().set_protocol(47);
        assert_eq!(
            PacketMeta::parse(seg.header_bytes()).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn rejects_truncated_l4() {
        let seg = Segment::new_tcp(ip_repr(), TcpRepr::new(1, 2), 0);
        let short = &seg.header_bytes()[..30];
        assert_eq!(PacketMeta::parse(short).unwrap_err(), Error::Truncated);
    }
}
