//! The segment buffer pool: sharded free lists recycling header backing
//! storage across the NIC → vSwitch → endpoint pipeline.
//!
//! Every [`Segment`](crate::Segment) owns a small `BytesMut` of serialized
//! header bytes (20–120 bytes; PACK insertion can grow it slightly). At
//! simulator packet rates that used to mean a malloc/free round-trip per
//! packet *and per clone* — pure allocator churn, since the buffers are
//! uniform and short-lived. This module keeps retired buffers on free
//! lists instead: constructors take a recycled buffer (clear + zero-fill
//! to the requested length), and `Segment`'s `Drop` returns the backing
//! storage here.
//!
//! # Sharding and the per-worker story
//!
//! The pool is split into [`POOL_SHARDS`] independent `Mutex<Vec<_>>`
//! free lists. Callers go through a [`PoolHandle`]:
//!
//! * a **rotating** handle (the default; what the global constructors
//!   use) spreads takes and puts across shards with a relaxed atomic
//!   cursor — correct from any thread, no coordination;
//! * a **pinned** handle fixes the shard, so when the `acdc-workers`
//!   run-to-completion engine is dispatching, each worker's sink can
//!   recycle through its own shard and the common case never contends.
//!
//! All shard state is `Mutex`/atomic only — the pool lives in the packet
//! hot path, which rule W003 requires to stay `Send + Sync`. Locks are
//! `try_lock` with neighbor-shard fallback: a contended shard is skipped,
//! never waited on, so the pool can stall nothing. The shard map is
//! claimed in `scopes.toml` (component `packet.segment-pool`, rule W001):
//! only this file may touch the free lists.
//!
//! # Determinism
//!
//! Recycling is invisible to simulation results by construction: a taken
//! buffer is fully overwritten (cleared, then zero-filled or copied into)
//! before anything reads it, and the parse cache on `Segment` is rebuilt
//! by the constructor, never inherited from the buffer's previous life
//! (pinned by the pool-coherence proptest in this crate's tests). Shard
//! choice can vary run to run under parallel dispatch, but it only
//! decides *which allocation* backs a segment, never its contents.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use bytes::BytesMut;

/// Number of independent free-list shards. At least as many as the
/// worker counts the equivalence suites exercise, so pinned handles can
/// map worker → shard injectively in every supported configuration.
pub const POOL_SHARDS: usize = 8;

/// Per-shard retention bound: buffers returned to a full shard are
/// dropped to the allocator instead. Bounds worst-case pool footprint at
/// `POOL_SHARDS * SHARD_CAP * MAX_RECYCLED_CAPACITY` (~16 MiB).
const SHARD_CAP: usize = 4096;

/// Buffers whose capacity grew beyond this are not retained. Header
/// buffers are 20–120 bytes (IPv4 + TCP, both option-padded, plus PACK
/// growth); anything larger came from an exotic caller and would bloat
/// the free lists for no hit-rate gain.
const MAX_RECYCLED_CAPACITY: usize = 512;

/// A point-in-time copy of the pool's traffic statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Takes served from a free list.
    pub hits: u64,
    /// Takes that fell through to a fresh allocation.
    pub misses: u64,
    /// Buffers accepted back onto a free list.
    pub recycled: u64,
    /// Buffers refused (zero/oversized capacity, full or contended
    /// shard) and released to the allocator.
    pub discarded: u64,
}

/// Sharded free lists of retired segment buffers. One global instance
/// (see [`global`]) serves the whole process; tests may build private
/// pools to observe traffic in isolation.
pub struct SegmentPool {
    shards: Vec<Mutex<Vec<BytesMut>>>,
    take_cursor: AtomicUsize,
    put_cursor: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

impl SegmentPool {
    /// An empty pool with [`POOL_SHARDS`] shards.
    pub fn new() -> SegmentPool {
        SegmentPool {
            shards: (0..POOL_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            take_cursor: AtomicUsize::new(0),
            put_cursor: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// A handle that spreads takes/puts across all shards.
    pub fn rotating(&self) -> PoolHandle<'_> {
        PoolHandle {
            pool: self,
            shard: None,
        }
    }

    /// A handle pinned to shard `index % POOL_SHARDS` — the per-worker
    /// mode: give worker *i* handle *i* and its recycling stays on its
    /// own free list.
    pub fn pinned(&self, index: usize) -> PoolHandle<'_> {
        PoolHandle {
            pool: self,
            shard: Some(index % POOL_SHARDS),
        }
    }

    /// Traffic statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }

    /// Total buffers currently parked across all shards (test helper;
    /// racy under concurrent traffic, exact when quiescent).
    pub fn parked(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map(|g| g.len()).unwrap_or(0))
            .sum()
    }

    /// A zero-filled buffer of length `len`, recycled when possible.
    pub fn take(&self, len: usize) -> BytesMut {
        let mut buf = self.take_raw(self.take_cursor.fetch_add(1, Ordering::Relaxed));
        buf.resize(len, 0);
        buf
    }

    /// A buffer holding a copy of `src`, recycled when possible.
    pub fn take_copy(&self, src: &[u8]) -> BytesMut {
        let mut buf = self.take_raw(self.take_cursor.fetch_add(1, Ordering::Relaxed));
        buf.extend_from_slice(src);
        buf
    }

    /// Return `buf`'s backing storage to a free list (or the allocator).
    pub fn put(&self, buf: BytesMut) {
        self.put_from(self.put_cursor.fetch_add(1, Ordering::Relaxed), buf);
    }

    /// Pop a cleared buffer starting the shard scan at `start`; falls
    /// back to a fresh empty buffer (the caller sizes it either way).
    fn take_raw(&self, start: usize) -> BytesMut {
        for i in 0..POOL_SHARDS {
            let shard = &self.shards[(start + i) % POOL_SHARDS];
            let Ok(mut guard) = shard.try_lock() else {
                continue;
            };
            if let Some(mut buf) = guard.pop() {
                drop(guard);
                buf.clear();
                self.hits.fetch_add(1, Ordering::Relaxed);
                return buf;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        BytesMut::new()
    }

    /// Park `buf` on the first uncontended, non-full shard at or after
    /// `start`; drop it to the allocator otherwise.
    fn put_from(&self, start: usize, buf: BytesMut) {
        if buf.capacity() == 0 || buf.capacity() > MAX_RECYCLED_CAPACITY {
            // Zero capacity means a moved-out husk (nothing to keep);
            // oversized buffers would pin memory the hit path never needs.
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for i in 0..POOL_SHARDS {
            let shard = &self.shards[(start + i) % POOL_SHARDS];
            let Ok(mut guard) = shard.try_lock() else {
                continue;
            };
            if guard.len() < SHARD_CAP {
                guard.push(buf);
                self.recycled.fetch_add(1, Ordering::Relaxed);
            } else {
                self.discarded.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        self.discarded.fetch_add(1, Ordering::Relaxed);
    }
}

impl Default for SegmentPool {
    fn default() -> SegmentPool {
        SegmentPool::new()
    }
}

/// A take/put view of the global pool with a shard policy: rotating
/// (default) or pinned to one shard for per-worker recycling. Cheap,
/// copyable, `Send + Sync`.
#[derive(Clone, Copy)]
pub struct PoolHandle<'a> {
    pool: &'a SegmentPool,
    shard: Option<usize>,
}

impl<'a> PoolHandle<'a> {
    /// The shard this handle is pinned to, if any.
    pub fn shard(&self) -> Option<usize> {
        self.shard
    }

    fn start(&self, cursor: &AtomicUsize) -> usize {
        match self.shard {
            Some(s) => s,
            None => cursor.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A zero-filled buffer of length `len` from this handle's shard(s).
    pub fn take(&self, len: usize) -> BytesMut {
        let mut buf = self.pool.take_raw(self.start(&self.pool.take_cursor));
        buf.resize(len, 0);
        buf
    }

    /// A buffer holding a copy of `src` from this handle's shard(s).
    pub fn take_copy(&self, src: &[u8]) -> BytesMut {
        let mut buf = self.pool.take_raw(self.start(&self.pool.take_cursor));
        buf.extend_from_slice(src);
        buf
    }

    /// Return `buf` through this handle's shard policy.
    pub fn put(&self, buf: BytesMut) {
        self.pool.put_from(self.start(&self.pool.put_cursor), buf);
    }
}

impl core::fmt::Debug for PoolHandle<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.shard {
            Some(s) => write!(f, "PoolHandle(shard {s})"),
            None => write!(f, "PoolHandle(rotating)"),
        }
    }
}

static GLOBAL: OnceLock<SegmentPool> = OnceLock::new();

/// The process-wide pool every `Segment` constructor and `Drop` goes
/// through.
pub fn global() -> &'static SegmentPool {
    GLOBAL.get_or_init(SegmentPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_after_reuse() {
        let pool = SegmentPool::new();
        let mut buf = pool.take(32);
        buf[..4].copy_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        pool.put(buf);
        let again = pool.take(32);
        assert_eq!(again.len(), 32);
        assert!(again.iter().all(|&b| b == 0), "stale bytes leaked");
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn take_copy_reproduces_source_exactly() {
        let pool = SegmentPool::new();
        let mut buf = pool.take(64);
        buf.iter_mut().for_each(|b| *b = 0xff);
        pool.put(buf);
        let src = [1u8, 2, 3, 4, 5];
        let copy = pool.take_copy(&src);
        assert_eq!(&copy[..], &src);
    }

    #[test]
    fn oversized_and_empty_buffers_are_not_retained() {
        let pool = SegmentPool::new();
        pool.put(BytesMut::new());
        pool.put(BytesMut::zeroed(MAX_RECYCLED_CAPACITY + 1));
        assert_eq!(pool.parked(), 0);
        assert_eq!(pool.stats().discarded, 2);
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn pinned_handle_stays_on_its_shard() {
        let pool = SegmentPool::new();
        let h3 = pool.pinned(3);
        let h11 = pool.pinned(3 + POOL_SHARDS);
        assert_eq!(h3.shard(), Some(3));
        assert_eq!(h11.shard(), Some(3), "pinning wraps modulo POOL_SHARDS");
        h3.put(BytesMut::zeroed(16));
        assert_eq!(pool.shards[3].lock().unwrap().len(), 1);
        let buf = h11.take(16);
        assert_eq!(buf.len(), 16);
        assert_eq!(pool.stats().hits, 1, "pinned take hits its own shard");
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn rotation_spreads_puts_across_shards() {
        let pool = SegmentPool::new();
        for _ in 0..POOL_SHARDS {
            pool.put(BytesMut::zeroed(8));
        }
        let occupied = pool
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().is_empty())
            .count();
        assert_eq!(
            occupied, POOL_SHARDS,
            "each rotation put lands on a new shard"
        );
    }

    #[test]
    fn shard_cap_bounds_retention() {
        let pool = SegmentPool::new();
        let h = pool.pinned(0);
        for _ in 0..(SHARD_CAP + 10) {
            h.put(BytesMut::zeroed(8));
        }
        assert_eq!(pool.shards[0].lock().unwrap().len(), SHARD_CAP);
        assert_eq!(pool.stats().discarded, 10);
    }
}
