//! The AC/DC **PACK** (Piggy-backed ACK) TCP option.
//!
//! DCTCP needs the *fraction of bytes that experienced congestion* reported
//! back to the sender. The guest stack may not speak ECN, so the
//! receiver-side AC/DC module counts total and CE-marked bytes itself and
//! ships the counts to the sender-side module inside ACKs (§3.2 of the
//! paper). When appending the option would overflow the MTU, the counts
//! travel in a dedicated *fake ACK* (FACK) instead — same option, different
//! carrier.
//!
//! Wire format (RFC 6994 shared experimental TCP option):
//!
//! ```text
//! +------+------+-------------+----------------------+----------------------+
//! | 253  | 12   | ExID=0xACDC | total_bytes (u32 BE) | marked_bytes (u32 BE)|
//! +------+------+-------------+----------------------+----------------------+
//!   kind   len      2 bytes          4 bytes                 4 bytes
//! ```
//!
//! The paper describes an "additional 8 bytes"; that is the feedback payload
//! (two u32 counters). Kind, length and the experiment identifier add 4
//! bytes of framing in this faithful on-wire encoding.
//!
//! The counters are *deltas since the last feedback that was emitted*, which
//! keeps them comfortably inside u32 even for very long flows; the
//! sender-side module accumulates them into 64-bit totals.

use crate::tcp::option_kind;
use crate::{Error, Result};

/// Experiment identifier distinguishing PACK from other kind-253 users.
pub const PACK_EXID: u16 = 0xACDC;

/// Parsed PACK option payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackOption {
    /// Bytes received for this flow since the previous feedback.
    pub total_bytes: u32,
    /// Of those, bytes that arrived with the CE codepoint set.
    pub marked_bytes: u32,
}

impl PackOption {
    /// Encoded size on the wire.
    pub const WIRE_LEN: usize = 12;
    /// Same, as the u8 stored in the option length field.
    pub const WIRE_LEN_U8: usize = 12;

    /// Quick test: does this option body carry our experiment ID?
    /// `body` must start at the option kind byte.
    pub fn matches(body: &[u8]) -> bool {
        body.len() >= 4
            && body[0] == option_kind::EXPERIMENT
            && body[1] as usize == Self::WIRE_LEN
            && u16::from_be_bytes([body[2], body[3]]) == PACK_EXID
    }

    /// Parse from an option body (starting at the kind byte).
    pub fn parse(body: &[u8]) -> Result<PackOption> {
        if body.len() < Self::WIRE_LEN {
            return Err(Error::Truncated);
        }
        if !Self::matches(body) {
            return Err(Error::Malformed);
        }
        Ok(PackOption {
            total_bytes: u32::from_be_bytes(body[4..8].try_into().unwrap()),
            marked_bytes: u32::from_be_bytes(body[8..12].try_into().unwrap()),
        })
    }

    /// Emit into a buffer of exactly `WIRE_LEN` bytes.
    pub fn emit(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::WIRE_LEN);
        buf[0] = option_kind::EXPERIMENT;
        buf[1] = Self::WIRE_LEN as u8;
        buf[2..4].copy_from_slice(&PACK_EXID.to_be_bytes());
        buf[4..8].copy_from_slice(&self.total_bytes.to_be_bytes());
        buf[8..12].copy_from_slice(&self.marked_bytes.to_be_bytes());
    }

    /// The congestion fraction this feedback reports, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            f64::from(self.marked_bytes) / f64::from(self.total_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = PackOption {
            total_bytes: 123_456,
            marked_bytes: 7_890,
        };
        let mut buf = [0u8; PackOption::WIRE_LEN];
        p.emit(&mut buf);
        assert!(PackOption::matches(&buf));
        assert_eq!(PackOption::parse(&buf).unwrap(), p);
    }

    #[test]
    fn rejects_wrong_exid() {
        let p = PackOption::default();
        let mut buf = [0u8; PackOption::WIRE_LEN];
        p.emit(&mut buf);
        buf[2] = 0x00;
        buf[3] = 0x01;
        assert!(!PackOption::matches(&buf));
        assert_eq!(PackOption::parse(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_truncated() {
        let p = PackOption::default();
        let mut buf = [0u8; PackOption::WIRE_LEN];
        p.emit(&mut buf);
        assert_eq!(PackOption::parse(&buf[..8]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn fraction_bounds() {
        assert_eq!(PackOption::default().fraction(), 0.0);
        let p = PackOption {
            total_bytes: 100,
            marked_bytes: 100,
        };
        assert_eq!(p.fraction(), 1.0);
        let p = PackOption {
            total_bytes: 200,
            marked_bytes: 50,
        };
        assert_eq!(p.fraction(), 0.25);
    }
}
