//! The worker engine: steering + per-worker sinks + batch pipeline.

use std::sync::Arc;

use acdc_packet::{FlowKey, Segment};
use acdc_stats::time::Nanos;
use acdc_telemetry::{Event, MetricValue, Telemetry};
use acdc_vswitch::{AcdcDatapath, Verdict, WorkerSink};

use crate::steer::worker_of;

/// Which datapath direction a packet takes through the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// VM → network ([`AcdcDatapath::egress`]).
    Egress,
    /// Network → VM ([`AcdcDatapath::ingress`]).
    Ingress,
}

/// N run-to-completion workers over one shared [`AcdcDatapath`].
///
/// The engine owns only the per-worker [`WorkerSink`]s; the datapath —
/// table, health ladder, config — is passed to each call, so the same
/// engine works for a borrowed bench datapath or one owned by a host.
/// See the crate docs for the processing modes and the determinism
/// contract each upholds.
pub struct WorkerEngine {
    sinks: Vec<WorkerSink>,
}

impl WorkerEngine {
    /// An engine with `workers` workers (clamped to ≥ 1), each with its
    /// own observability sink created from `dp`.
    pub fn new(dp: &AcdcDatapath, workers: usize) -> WorkerEngine {
        let n = workers.max(1);
        WorkerEngine {
            sinks: (0..n).map(|i| dp.worker_sink(i)).collect(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.sinks.len()
    }

    /// The worker `key`'s packets steer to.
    pub fn worker_of(&self, key: &FlowKey) -> usize {
        worker_of(key, self.sinks.len())
    }

    /// The worker `seg` steers to. Malformed segments (no parsable flow
    /// key) steer to worker 0, which drops and counts them.
    pub fn steer(&self, seg: &Segment) -> usize {
        seg.try_meta().map(|m| self.worker_of(&m.flow)).unwrap_or(0)
    }

    /// Every worker's sink, in worker order.
    pub fn sinks(&self) -> &[WorkerSink] {
        &self.sinks
    }

    /// Worker `i`'s sink.
    pub fn sink(&self, i: usize) -> &WorkerSink {
        &self.sinks[i]
    }

    /// Run-to-completion dispatch of one packet: steer, then process it
    /// immediately on the steered worker's sink. Because nothing is
    /// deferred or reordered, a stream dispatched in delivery order goes
    /// through the exact table-operation sequence of the single-threaded
    /// path for any worker count — this is the mode the simulated NIC
    /// uses, and the one the chaos equivalence suite pins down.
    pub fn dispatch(&self, dp: &AcdcDatapath, now: Nanos, dir: Direction, seg: Segment) -> Verdict {
        let sink = &self.sinks[self.steer(&seg)];
        match dir {
            Direction::Egress => dp.egress_via(sink, now, seg),
            Direction::Ingress => dp.ingress_via(sink, now, seg),
        }
    }

    /// Group a batch by worker, keeping submission order within each
    /// group. Returns `(group index per worker, parsed flow keys per
    /// worker)`; the keys vectors skip malformed segments.
    fn group(&self, batch: &[Segment]) -> (Vec<Vec<usize>>, Vec<Vec<FlowKey>>) {
        let n = self.sinks.len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut keys: Vec<Vec<FlowKey>> = vec![Vec::new(); n];
        for (i, seg) in batch.iter().enumerate() {
            // `try_meta` caches: this parse is the one the datapath
            // would have paid anyway.
            let w = match seg.try_meta() {
                Ok(m) => {
                    let w = self.worker_of(&m.flow);
                    keys[w].push(m.flow);
                    w
                }
                Err(_) => 0,
            };
            groups[w].push(i);
        }
        (groups, keys)
    }

    fn run_one(
        &self,
        dp: &AcdcDatapath,
        sink: &WorkerSink,
        now: Nanos,
        dir: Direction,
        seg: Segment,
    ) -> Verdict {
        match dir {
            Direction::Egress => dp.egress_via(sink, now, seg),
            Direction::Ingress => dp.ingress_via(sink, now, seg),
        }
    }

    /// Batched single-threaded processing: group by worker, warm each
    /// worker's flow keys through the table's shard-grouped prefetch
    /// pass (one shard read-lock per distinct shard, slots touched ahead
    /// of the touch loop), then run each group to completion in
    /// submission order. Verdicts come back in submission order.
    pub fn process_batch(
        &self,
        dp: &AcdcDatapath,
        now: Nanos,
        dir: Direction,
        batch: Vec<Segment>,
    ) -> Vec<Verdict> {
        let (groups, keys) = self.group(&batch);
        let total = batch.len();
        let mut segs: Vec<Option<Segment>> = batch.into_iter().map(Some).collect();
        let mut out: Vec<Option<Verdict>> = (0..total).map(|_| None).collect();
        for (w, group) in groups.iter().enumerate() {
            // The resolved Arcs stay alive across the touch loop so the
            // warmed slots cannot be dropped out from under it.
            let warm = dp.table().prefetch_batch(&keys[w]);
            for &i in group {
                let seg = segs[i].take().expect("each position processed once");
                out[i] = Some(self.run_one(dp, &self.sinks[w], now, dir, seg));
            }
            drop(warm);
        }
        out.into_iter()
            .map(|v| v.expect("every position produced a verdict"))
            .collect()
    }

    /// [`WorkerEngine::process_batch`] with the workers actually running
    /// in parallel, one OS thread per worker (`std::thread::scope`).
    /// Each worker prefetches and processes its own group in submission
    /// order; verdicts are reassembled into submission order. Per-flow
    /// state and merged counter totals match the single-threaded batch
    /// when distinct workers' flows are independent (the RSS assumption;
    /// see crate docs).
    pub fn process_batch_parallel(
        &self,
        dp: &AcdcDatapath,
        now: Nanos,
        dir: Direction,
        batch: Vec<Segment>,
    ) -> Vec<Verdict> {
        if self.sinks.len() == 1 {
            return self.process_batch(dp, now, dir, batch);
        }
        let n = self.sinks.len();
        let total = batch.len();
        let mut groups: Vec<Vec<(usize, Segment)>> = (0..n).map(|_| Vec::new()).collect();
        for (i, seg) in batch.into_iter().enumerate() {
            let w = self.steer(&seg);
            groups[w].push((i, seg));
        }
        let per_worker: Vec<Vec<(usize, Verdict)>> = std::thread::scope(|s| {
            let handles: Vec<_> = groups
                .into_iter()
                .enumerate()
                .map(|(w, group)| {
                    let sink = &self.sinks[w];
                    s.spawn(move || {
                        let keys: Vec<FlowKey> = group
                            .iter()
                            .filter_map(|(_, seg)| seg.try_meta().ok().map(|m| m.flow))
                            .collect();
                        let warm = dp.table().prefetch_batch(&keys);
                        let mut done = Vec::with_capacity(group.len());
                        for (i, seg) in group {
                            done.push((i, self.run_one(dp, sink, now, dir, seg)));
                        }
                        drop(warm);
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut out: Vec<Option<Verdict>> = (0..total).map(|_| None).collect();
        for group in per_worker {
            for (i, v) in group {
                out[i] = Some(v);
            }
        }
        out.into_iter()
            .map(|v| v.expect("every position produced a verdict"))
            .collect()
    }

    /// The datapath's main hub followed by every worker hub, in worker
    /// order — the hub list every merged view is built over.
    pub fn all_hubs<'a>(&'a self, dp: &'a AcdcDatapath) -> Vec<&'a Telemetry> {
        std::iter::once(dp.telemetry().as_ref())
            .chain(self.sinks.iter().map(|s| s.telemetry().as_ref()))
            .collect()
    }

    /// Deterministically merged metrics across the main hub and every
    /// worker hub: counters sum, gauges max, sorted by name.
    pub fn merged_snapshot(&self, dp: &AcdcDatapath) -> Vec<MetricValue> {
        acdc_telemetry::merge_snapshots(&self.all_hubs(dp))
    }

    /// [`WorkerEngine::merged_snapshot`] in the `acdc-telemetry/v2` JSON
    /// schema (metrics plus the summed per-hub `dropped_events` tally) —
    /// byte-identical for same seed + same worker count.
    pub fn merged_snapshot_json(&self, dp: &AcdcDatapath, at: Nanos) -> String {
        acdc_telemetry::merged_snapshot_json(&self.all_hubs(dp), at)
    }

    /// Deterministic k-way merge of the main hub's and every worker
    /// hub's event rings, ordered by `(at, hub index, seq)`.
    pub fn merged_events(&self, dp: &AcdcDatapath) -> Vec<Event> {
        acdc_telemetry::merge_events(&self.all_hubs(dp))
    }

    /// Every worker hub as owned `Arc`s (for `TraceGuard::watch` and
    /// other consumers that outlive the engine borrow).
    pub fn hub_arcs(&self) -> Vec<Arc<Telemetry>> {
        self.sinks
            .iter()
            .map(|s| Arc::clone(s.telemetry()))
            .collect()
    }
}
