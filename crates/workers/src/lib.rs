//! # acdc-workers — run-to-completion parallel datapath workers
//!
//! The paper's deployability argument (§3, §5.2) needs the enforcement
//! path to stay cheap at line rate; a single thread caps that. This
//! crate parallelizes the [`acdc_vswitch::AcdcDatapath`] the way a
//! production vSwitch datapath does — *run-to-completion workers fed by
//! RSS steering* — without giving up the reproduction's determinism
//! contract (DESIGN.md §13).
//!
//! ## The model
//!
//! * **Steering** ([`worker_of`]): a packet goes to worker
//!   `mix(hash64(canonical flow key)) mod N` — symmetric RSS. The key is
//!   direction-normalized first, so data packets and the ACKs flowing
//!   back steer to the same worker; since the ACK path writes the data
//!   direction's flow entry, every entry of a flow has exactly one
//!   writing worker and a worker's flow-table working set is disjoint
//!   from its peers'. (The finalizing mix matters: raw FNV-1a's low bit
//!   is a XOR of input low bits and collapses on mirrored key
//!   populations — see [`steer`]'s module docs.)
//! * **Run to completion**: a worker takes a packet through the whole
//!   datapath (parse → table → CC → rewrite) before the next one; there
//!   is no inter-stage queueing to reorder packets of one flow.
//! * **Per-worker observability** ([`acdc_vswitch::WorkerSink`]): each
//!   worker counts and records into its own telemetry hub; snapshots
//!   merge deterministically afterwards (`acdc_telemetry::merge`).
//!
//! ## Determinism contract
//!
//! Worker count must not change enforcement semantics, and same seed +
//! same `N` must give byte-identical merged snapshots. Two processing
//! modes uphold that at different strengths:
//!
//! * [`WorkerEngine::dispatch`] — the simulator path. Each packet is
//!   processed *immediately, in delivery order*, on its steered worker's
//!   sink. Since nothing is deferred, the sequence of table operations
//!   is identical to the single-threaded path for **any** N: N only
//!   routes where counters bump and events record, and merged counter
//!   totals equal the N=1 totals exactly.
//! * [`WorkerEngine::process_batch`] / [`process_batch_parallel`] — the
//!   throughput path (benches, order-insensitive tests). Packets are
//!   grouped per worker, each worker's flow keys are warmed through the
//!   table's batched, shard-grouped pre-pass
//!   ([`acdc_vswitch::FlowTable::prefetch_batch`]), and each worker then
//!   processes its group in submission order. Packets of one flow —
//!   both directions — always stay on one worker in submission order; batches
//!   where distinct workers' flows are independent (the RSS assumption —
//!   true for the bench workloads and the determinism suite) therefore
//!   produce worker-count-independent per-flow state and merged counter
//!   totals. Verdicts are returned in submission order regardless of
//!   which worker produced them.
//!
//! Global state transitions (health ladder, gc, occupancy gauges) stay
//! on the datapath's main hub no matter which worker processed the
//! packet, so "the merged view" is always main hub + all worker hubs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod steer;

pub use engine::{Direction, WorkerEngine};
pub use steer::worker_of;
