//! RSS-style steering: flow key → worker index.
//!
//! Hardware RSS hashes the 5-tuple and masks the result into a queue
//! index; every packet of a flow lands on the same queue/core. The
//! software equivalent here is *symmetric* RSS: the key is canonicalized
//! (direction-normalized) before hashing, so data packets and the ACKs
//! flowing back both steer to the same worker. That matters because the
//! datapath's ACK path writes the *data* direction's flow entry
//! (connection tracking, feedback accumulators, CC state): symmetric
//! steering gives every entry of a flow exactly one writing worker.
//!
//! The hash is [`FlowKey::hash64`] (FNV-1a, the flow table's shard hash)
//! run through a finalizer before the modulo. FNV-1a needs that here:
//! its low output bit is exactly the XOR of the input bytes' low bits
//! (the final multiply is by an odd constant), so key populations with
//! mirrored byte patterns — e.g. benchmark flows numbered into both the
//! src and dst address — collapse `hash64 % 2` to a constant. Shard
//! selection masks ten bits and tolerates this; picking one worker out
//! of two does not.

use acdc_packet::FlowKey;

/// MurmurHash3's 64-bit finalizer: full-avalanche mixing so every input
/// bit reaches the low bits the modulo looks at.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// The direction-normalized form of `key`: the lexicographically smaller
/// of the key and its reverse, so a flow and its ACK stream agree.
#[inline]
fn canonical(key: &FlowKey) -> FlowKey {
    let rev = key.reverse();
    if *key <= rev {
        *key
    } else {
        rev
    }
}

/// The worker (0-based, `< workers`) that `key`'s packets steer to.
/// Direction-independent (`worker_of(k) == worker_of(k.reverse())`) and
/// stable for the lifetime of the process and across runs: the hash is
/// seedless FNV-1a over the canonical key bytes, finalized.
///
/// `workers` must be non-zero.
#[inline]
pub fn worker_of(key: &FlowKey, workers: usize) -> usize {
    debug_assert!(workers > 0, "worker_of with zero workers");
    (mix64(canonical(key).hash64()) % workers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u8, p: u16) -> FlowKey {
        FlowKey {
            src_ip: [10, 0, 0, a],
            dst_ip: [10, 0, 1, a],
            src_port: p,
            dst_port: 80,
        }
    }

    #[test]
    fn steering_is_stable_and_in_range() {
        for n in 1..=8usize {
            for p in 0..500u16 {
                let k = key(1, p);
                let w = worker_of(&k, n);
                assert!(w < n);
                assert_eq!(w, worker_of(&k, n), "same flow ⇒ same worker");
            }
        }
    }

    #[test]
    fn both_directions_steer_to_the_same_worker() {
        for n in 1..=8usize {
            for p in 0..500u16 {
                let k = key(2, p);
                assert_eq!(
                    worker_of(&k, n),
                    worker_of(&k.reverse(), n),
                    "data and ACK directions must share a worker"
                );
            }
        }
    }

    #[test]
    fn all_workers_reachable_over_a_flow_population() {
        for n in 2..=6usize {
            let mut hit = vec![false; n];
            for p in 0..2000u16 {
                hit[worker_of(&key(3, p), n)] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "n={n}: some worker never steered to"
            );
        }
    }

    #[test]
    fn mirrored_key_population_spreads() {
        // The datapath_bench flow shape: flow i numbered into *both*
        // addresses, fixed ports. Raw FNV-1a has a constant low bit over
        // this population (mirrored bytes cancel in the XOR), which
        // starved every even worker count before the finalizer.
        let keys: Vec<FlowKey> = (0..4096usize)
            .map(|i| FlowKey {
                src_ip: [10, 1, (i >> 8) as u8, i as u8],
                dst_ip: [10, 2, (i >> 8) as u8, i as u8],
                src_port: 40_000,
                dst_port: 5_001,
            })
            .collect();
        for n in [2usize, 4, 8] {
            let mut counts = vec![0usize; n];
            for k in &keys {
                counts[worker_of(k, n)] += 1;
            }
            let fair = keys.len() / n;
            for (w, &c) in counts.iter().enumerate() {
                assert!(
                    c > fair / 2 && c < fair * 2,
                    "n={n}: worker {w} got {c} of {} flows (fair share {fair})",
                    keys.len()
                );
            }
        }
    }
}
