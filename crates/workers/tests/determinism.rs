//! Steering and merge determinism (DESIGN.md §13).
//!
//! Property tests pin the two contracts the worker engine ships with:
//!
//! * **Steering**: `hash64`-based steering is a pure function of the
//!   flow key — same flow ⇒ same worker, every worker reachable across
//!   a flow population, index always in range.
//! * **Merge determinism**: running the same workload twice at the same
//!   worker count produces byte-identical merged snapshot JSON, and the
//!   merged `acdc.*` counter totals equal the N=1 totals (worker count
//!   routes observability, it does not change what is observed).

use acdc_packet::{
    Ecn, FlowKey, Ipv4Repr, Segment, SeqNumber, TcpFlags, TcpOption, TcpRepr, PROTO_TCP,
};
use acdc_vswitch::{AcdcConfig, AcdcDatapath};
use acdc_workers::{worker_of, Direction, WorkerEngine};
use proptest::prelude::*;

fn ip(src: [u8; 4], dst: [u8; 4]) -> Ipv4Repr {
    Ipv4Repr {
        src_addr: src,
        dst_addr: dst,
        protocol: PROTO_TCP,
        ecn: Ecn::NotEct,
        payload_len: 0,
        ttl: 64,
    }
}

fn flow_ips(i: usize) -> ([u8; 4], [u8; 4]) {
    (
        [10, 1, (i >> 8) as u8, i as u8],
        [10, 2, (i >> 8) as u8, i as u8],
    )
}

/// Establish flow `i` (SYN on egress, SYN-ACK on ingress) through `run`.
fn handshake(run: &mut dyn FnMut(Direction, Segment), i: usize) {
    let (a, b) = flow_ips(i);
    let mut syn = TcpRepr::new(40_000, 5_001);
    syn.seq = SeqNumber(1_000);
    syn.flags = TcpFlags::SYN;
    syn.options = vec![TcpOption::MaxSegmentSize(1448), TcpOption::WindowScale(9)];
    run(Direction::Egress, Segment::new_tcp(ip(a, b), syn, 0));

    let mut synack = TcpRepr::new(5_001, 40_000);
    synack.seq = SeqNumber(9_000);
    synack.ack = SeqNumber(1_001);
    synack.flags = TcpFlags::SYN | TcpFlags::ACK;
    synack.options = vec![TcpOption::MaxSegmentSize(1448), TcpOption::WindowScale(9)];
    run(Direction::Ingress, Segment::new_tcp(ip(b, a), synack, 0));
}

fn data_packet(i: usize, off: u32) -> Segment {
    let (a, b) = flow_ips(i);
    let mut t = TcpRepr::new(40_000, 5_001);
    t.seq = SeqNumber(1_001 + off);
    t.ack = SeqNumber(9_001);
    t.flags = TcpFlags::ACK;
    t.window = 1_000;
    Segment::new_tcp(ip(a, b), t, 1_448)
}

fn ack_packet(i: usize, off: u32) -> Segment {
    let (a, b) = flow_ips(i);
    let mut t = TcpRepr::new(5_001, 40_000);
    t.seq = SeqNumber(9_001);
    t.ack = SeqNumber(1_001 + off);
    t.flags = TcpFlags::ACK;
    t.window = 60_000;
    Segment::new_tcp(ip(b, a), t, 0)
}

/// A deterministic mixed workload over `flows` flows and `rounds`
/// rounds, fed packet-by-packet to `run` in delivery order.
fn drive(run: &mut dyn FnMut(Direction, Segment), flows: usize, rounds: usize) {
    for i in 0..flows {
        handshake(run, i);
    }
    let mut off = 0u32;
    for _ in 0..rounds {
        for i in 0..flows {
            run(Direction::Egress, data_packet(i, off));
            run(Direction::Ingress, ack_packet(i, off + 1_448));
        }
        off += 1_448;
    }
}

/// Run the workload through an engine at `n` workers (dispatch mode) and
/// return (merged snapshot JSON, sum of all acdc.* counters).
fn engine_run(n: usize, flows: usize, rounds: usize) -> (String, u64) {
    let dp = AcdcDatapath::new(AcdcConfig::dctcp(1500));
    let engine = WorkerEngine::new(&dp, n);
    let mut now = 0u64;
    drive(
        &mut |dir, seg| {
            now += 1;
            let _ = engine.dispatch(&dp, now, dir, seg);
        },
        flows,
        rounds,
    );
    let snapshot = engine.merged_snapshot_json(&dp, 0);
    let total: u64 = engine
        .merged_snapshot(&dp)
        .iter()
        .filter(|m| m.name.starts_with("acdc.") && m.kind == acdc_telemetry::MetricKind::Counter)
        .map(|m| m.value)
        .sum();
    (snapshot, total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn steering_is_stable_and_in_range(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        n in 1usize..=16,
    ) {
        let key = FlowKey { src_ip: src, dst_ip: dst, src_port: sp, dst_port: dp };
        let w = worker_of(&key, n);
        prop_assert!(w < n);
        prop_assert_eq!(w, worker_of(&key, n));
    }

    #[test]
    fn all_workers_reachable_across_population(
        n in 2usize..=8,
        base in 0u16..1000,
    ) {
        let mut hit = vec![false; n];
        for p in 0..4000u16 {
            let key = FlowKey {
                src_ip: [10, 0, 0, 1],
                dst_ip: [10, 0, 0, 2],
                src_port: base.wrapping_add(p),
                dst_port: 80,
            };
            hit[worker_of(&key, n)] = true;
        }
        prop_assert!(hit.iter().all(|&h| h), "unreachable worker at n={}", n);
    }

    #[test]
    fn merged_snapshots_deterministic_and_equal_to_n1(
        n in 1usize..=4,
        flows in 1usize..=12,
        rounds in 1usize..=4,
    ) {
        let (snap_a, total_a) = engine_run(n, flows, rounds);
        let (snap_b, total_b) = engine_run(n, flows, rounds);
        prop_assert_eq!(&snap_a, &snap_b, "same workload + N ⇒ byte-identical merged snapshot");
        prop_assert_eq!(total_a, total_b);
        let (_, total_1) = engine_run(1, flows, rounds);
        prop_assert_eq!(total_a, total_1, "counter totals must not depend on worker count");
    }
}

/// Dispatch-mode packet transformations are byte-identical to the legacy
/// single-threaded entry points, for every worker count.
#[test]
fn dispatch_output_matches_legacy_bytes() {
    let digest = |run: &mut dyn FnMut(Direction, Segment) -> Option<Segment>| {
        let mut out: Vec<(Vec<u8>, usize)> = Vec::new();
        drive(
            &mut |dir, seg| {
                if let Some(fwd) = run(dir, seg) {
                    out.push((fwd.header_bytes_cloned().to_vec(), fwd.payload_len()));
                }
            },
            8,
            3,
        );
        out
    };

    let legacy = {
        let dp = AcdcDatapath::new(AcdcConfig::dctcp(1500));
        let mut now = 0u64;
        digest(&mut |dir, seg| {
            now += 1;
            let v = match dir {
                Direction::Egress => dp.egress(now, seg),
                Direction::Ingress => dp.ingress(now, seg),
            };
            v.forwarded()
        })
    };
    for n in [1usize, 2, 4] {
        let dp = AcdcDatapath::new(AcdcConfig::dctcp(1500));
        let engine = WorkerEngine::new(&dp, n);
        let mut now = 0u64;
        let got = digest(&mut |dir, seg| {
            now += 1;
            engine.dispatch(&dp, now, dir, seg).forwarded()
        });
        assert_eq!(got, legacy, "dispatch at N={n} diverged from legacy bytes");
    }
}

/// The batched paths return verdicts in submission order and produce the
/// same per-flow state and counter totals as sequential processing, and
/// the parallel path agrees with the single-threaded batch.
#[test]
fn batch_modes_agree_with_sequential() {
    const FLOWS: usize = 64;
    let run = |mode: usize, n: usize| -> (Vec<(Vec<u8>, usize)>, String) {
        let dp = AcdcDatapath::new(AcdcConfig::dctcp(1500));
        let engine = WorkerEngine::new(&dp, n);
        let mut now = 0u64;
        for i in 0..FLOWS {
            handshake(
                &mut |dir, seg| {
                    now += 1;
                    let _ = engine.dispatch(&dp, now, dir, seg);
                },
                i,
            );
        }
        // Unidirectional data batches: each worker's flows independent.
        let mut digest = Vec::new();
        for round in 0..3u32 {
            let batch: Vec<Segment> = (0..FLOWS).map(|i| data_packet(i, round * 1_448)).collect();
            now += 1;
            let verdicts = match mode {
                0 => batch
                    .into_iter()
                    .map(|seg| engine.dispatch(&dp, now, Direction::Egress, seg))
                    .collect::<Vec<_>>(),
                1 => engine.process_batch(&dp, now, Direction::Egress, batch),
                _ => engine.process_batch_parallel(&dp, now, Direction::Egress, batch),
            };
            for v in verdicts {
                let fwd = v.forwarded().expect("data packets forward");
                digest.push((fwd.header_bytes_cloned().to_vec(), fwd.payload_len()));
            }
        }
        let totals = engine.merged_snapshot_json(&dp, 0);
        (digest, totals)
    };

    let (seq_digest, seq_totals) = run(0, 2);
    for (mode, n) in [(1usize, 1usize), (1, 2), (2, 2), (2, 4)] {
        let (digest, _) = run(mode, n);
        assert_eq!(
            digest, seq_digest,
            "mode={mode} n={n}: batched verdicts must match sequential, in submission order"
        );
    }
    // Same-shape runs merge to the same snapshot bytes.
    let (_, totals_again) = run(0, 2);
    assert_eq!(seq_totals, totals_again);
}
