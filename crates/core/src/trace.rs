//! The trace-driven message generator of Figure 23.
//!
//! "An application on each server builds a long-lived TCP connection with
//! every other server. Message sizes are sampled from a trace and sent to
//! a random destination in sequential fashion. Five concurrent
//! applications on each server are run to increase network load."
//!
//! One [`TraceSender`] is one such application: it owns a set of the
//! host's connections (one per peer), repeatedly samples a size, picks a
//! random peer, sends, and waits for the message to be acknowledged
//! before sending the next.

use acdc_stats::time::Nanos;
use acdc_workloads::{FctKind, FctRecorder, FlowSizeDist};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::host::{MultiApp, MultiConnAccess};

/// Sequential random-destination message generator over a connection set.
pub struct TraceSender {
    /// Indices (into the host's connection list) this app may use.
    conns: Vec<usize>,
    dist: FlowSizeDist,
    rng: StdRng,
    /// Outstanding message: (conn index, target acked offset, size, start).
    outstanding: Option<(usize, u64, u64, Nanos)>,
    fct: FctRecorder,
    /// Stop issuing new messages after this time (drain from then on).
    stop_at: Nanos,
}

impl TraceSender {
    /// A generator over `conns`, sampling `dist`, seeded deterministically.
    pub fn new(conns: Vec<usize>, dist: FlowSizeDist, seed: u64, stop_at: Nanos) -> TraceSender {
        assert!(!conns.is_empty());
        TraceSender {
            conns,
            dist,
            rng: StdRng::seed_from_u64(seed),
            outstanding: None,
            fct: FctRecorder::new(),
            stop_at,
        }
    }

    /// Completed messages.
    pub fn recorder(&self) -> &FctRecorder {
        &self.fct
    }
}

impl MultiApp for TraceSender {
    fn poll(&mut self, now: Nanos, conns: &mut dyn MultiConnAccess) -> Option<Nanos> {
        // Completion check.
        if let Some((idx, target, size, start)) = self.outstanding {
            if conns.acked(idx) >= target {
                let kind = if size < 10_000 {
                    FctKind::Mice
                } else {
                    FctKind::Background
                };
                self.fct
                    .record_flow(kind, start, now, size, conns.flow(idx));
                self.outstanding = None;
            }
        }
        // Issue the next message.
        if self.outstanding.is_none() && now < self.stop_at {
            // Pick a random established connection.
            let established: Vec<usize> = self
                .conns
                .iter()
                .copied()
                .filter(|&c| conns.established(c))
                .collect();
            if established.is_empty() {
                return None; // re-polled when connections come up
            }
            let pick = established[self.rng.random_range(0..established.len())];
            let size = self.dist.sample(&mut self.rng);
            conns.send(pick, size);
            self.outstanding = Some((pick, conns.queued(pick), size, now));
        }
        None // fully event-driven: progress on any conn re-polls us
    }

    fn fct(&self) -> Option<&FctRecorder> {
        Some(&self.fct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal fake host connection set.
    struct Fake {
        established: Vec<bool>,
        queued: Vec<u64>,
        acked: Vec<u64>,
    }

    impl MultiConnAccess for Fake {
        fn count(&self) -> usize {
            self.established.len()
        }
        fn send(&mut self, idx: usize, bytes: u64) {
            self.queued[idx] += bytes;
        }
        fn acked(&self, idx: usize) -> u64 {
            self.acked[idx]
        }
        fn queued(&self, idx: usize) -> u64 {
            self.queued[idx]
        }
        fn established(&self, idx: usize) -> bool {
            self.established[idx]
        }
    }

    #[test]
    fn waits_for_establishment() {
        let mut app = TraceSender::new(vec![0, 1], FlowSizeDist::web_search(), 1, u64::MAX);
        let mut fake = Fake {
            established: vec![false, false],
            queued: vec![0, 0],
            acked: vec![0, 0],
        };
        app.poll(0, &mut fake);
        assert_eq!(fake.queued, vec![0, 0]);
        fake.established = vec![true, true];
        app.poll(1, &mut fake);
        assert_eq!(fake.queued.iter().filter(|&&q| q > 0).count(), 1);
    }

    #[test]
    fn sequential_messages_and_fct() {
        let mut app = TraceSender::new(vec![0], FlowSizeDist::data_mining(), 2, u64::MAX);
        let mut fake = Fake {
            established: vec![true],
            queued: vec![0],
            acked: vec![0],
        };
        app.poll(0, &mut fake);
        let q1 = fake.queued[0];
        assert!(q1 > 0);
        // No new message until the first is acked.
        app.poll(10, &mut fake);
        assert_eq!(fake.queued[0], q1);
        fake.acked[0] = q1;
        app.poll(20, &mut fake);
        assert_eq!(app.recorder().len(), 1);
        assert!(fake.queued[0] > q1, "next message issued");
    }

    #[test]
    fn stops_issuing_after_deadline() {
        let mut app = TraceSender::new(vec![0], FlowSizeDist::web_search(), 3, 100);
        let mut fake = Fake {
            established: vec![true],
            queued: vec![0],
            acked: vec![0],
        };
        app.poll(0, &mut fake);
        let q = fake.queued[0];
        fake.acked[0] = q;
        app.poll(200, &mut fake);
        assert_eq!(fake.queued[0], q, "no new messages after stop_at");
        assert_eq!(app.recorder().len(), 1);
    }

    #[test]
    fn mice_classified_by_size() {
        let mut app = TraceSender::new(vec![0], FlowSizeDist::data_mining(), 4, u64::MAX);
        let mut fake = Fake {
            established: vec![true],
            queued: vec![0],
            acked: vec![0],
        };
        for t in 0..200u64 {
            app.poll(t * 2, &mut fake);
            fake.acked[0] = fake.queued[0];
            app.poll(t * 2 + 1, &mut fake);
        }
        let mice = app
            .recorder()
            .samples()
            .iter()
            .filter(|s| s.kind == FctKind::Mice)
            .count();
        // Data-mining: ~80% of flows are < 10 KB.
        assert!(mice > 100, "mice={mice}");
    }
}
