//! Topology + flow plumbing: the simulated counterpart of the paper's
//! 17-server, 10 GbE testbed.

use std::collections::BTreeMap;
use std::sync::Arc;

use acdc_cc::CcKind;
use acdc_faults::{FaultPlan, FaultyLink, LinkFaultStats};
use acdc_netsim::{LinkSpec, Network, NodeId, SwitchCounters, SwitchNode};
use acdc_packet::FlowKey;
use acdc_stats::time::Nanos;
use acdc_tcp::Endpoint;
use acdc_telemetry::Telemetry;
use acdc_workloads::apps::{
    App, BulkSender, EchoServer, MessageSender, PingPong, SequentialSender,
};
use acdc_workloads::{FctKind, FctRecorder};

use crate::host::{ConnTaps, FlowHandle, HostNode};
use crate::scheme::{Scheme, DEFAULT_MARK_THRESHOLD};

/// Default host/switch link: 10 GbE, 1.5 µs propagation per hop.
pub fn default_link() -> LinkSpec {
    LinkSpec::ten_gbe(1_500)
}

/// Per-vSwitch configuration hook applied after scheme defaults.
type AcdcTweak = Box<dyn Fn(&mut acdc_vswitch::AcdcConfig)>;

/// A built topology with hosts, switches and flow bookkeeping.
pub struct Testbed {
    /// The underlying simulator.
    pub net: Network,
    /// Experiment scheme.
    pub scheme: Scheme,
    /// MTU used by all links/stacks.
    pub mtu: usize,
    hosts: Vec<NodeId>,
    host_ips: Vec<[u8; 4]>,
    switches: Vec<NodeId>,
    next_port: Vec<u16>,
    iss: u32,
    acdc_tweak: Option<AcdcTweak>,
    mark_bytes: u64,
    /// Worker count installed on every host added from now on (0 = the
    /// legacy single-threaded datapath entry points).
    workers: usize,
    /// Fault plans for host access links, by future host index (set
    /// before `build_*`; applied in [`Testbed::add_host`]).
    host_fault_plans: BTreeMap<usize, FaultPlan>,
    /// Fault plan for the dumbbell trunk (set before `build_dumbbell`).
    trunk_fault_plan: Option<FaultPlan>,
    /// Installed fault-injector taps, by host index.
    host_fault_taps: BTreeMap<usize, NodeId>,
    trunk_fault_tap: Option<NodeId>,
    /// Network-level telemetry hub: port counters and switch/trunk drop
    /// events land here. Each host additionally owns a per-datapath hub
    /// (reachable via [`HostNode::telemetry`]).
    telemetry: Arc<Telemetry>,
}

impl Testbed {
    /// WRED/ECN threshold used by all builders.
    pub fn mark_threshold() -> u64 {
        DEFAULT_MARK_THRESHOLD
    }

    fn host_ip(i: usize) -> [u8; 4] {
        [10, 0, (i / 250) as u8, (i % 250 + 1) as u8]
    }

    fn empty(scheme: Scheme, mtu: usize) -> Testbed {
        let telemetry = Telemetry::with_default_capacity();
        let mut net = Network::new();
        // Attach before any `connect`, so every port's counters register.
        net.set_telemetry(Arc::clone(&telemetry));
        Testbed {
            net,
            scheme,
            mtu,
            hosts: Vec::new(),
            host_ips: Vec::new(),
            switches: Vec::new(),
            next_port: Vec::new(),
            iss: 7,
            acdc_tweak: None,
            mark_bytes: DEFAULT_MARK_THRESHOLD,
            workers: 0,
            host_fault_plans: BTreeMap::new(),
            trunk_fault_plan: None,
            host_fault_taps: BTreeMap::new(),
            trunk_fault_tap: None,
            telemetry,
        }
    }

    /// The network-level telemetry hub (port counters, trunk fault
    /// events). Per-host vSwitch events live on each host's own hub:
    /// `testbed.host_mut(i).telemetry()`.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// An empty testbed for custom construction: set options (marking
    /// threshold, vSwitch tweaks) and then call a `build_*` method.
    pub fn custom(scheme: Scheme, mtu: usize) -> Testbed {
        Testbed::empty(scheme, mtu)
    }

    /// Override the switch WRED/ECN marking threshold `K` (takes effect
    /// for switches created by a subsequent `build_*` call).
    pub fn set_mark_threshold(&mut self, bytes: u64) {
        self.mark_bytes = bytes;
    }

    /// Install a vSwitch-config tweak applied to every host added from now
    /// on (experiments use it for log-only mode, window traces, custom
    /// per-flow policies, policing and RWND caps).
    pub fn set_acdc_tweak(&mut self, tweak: impl Fn(&mut acdc_vswitch::AcdcConfig) + 'static) {
        self.acdc_tweak = Some(Box::new(tweak));
    }

    /// Route the vSwitch of every host added from now on through an
    /// `n`-worker RSS engine ([`HostNode::set_workers`]). Dispatch mode
    /// keeps enforcement semantics identical to the single-threaded path
    /// for any `n`; `n = 0` (the default) keeps the legacy entry points.
    /// Call before `build_*`.
    pub fn set_workers(&mut self, n: usize) {
        self.workers = n;
    }

    /// Inject faults on the access link of the host that will get index
    /// `host` when a `build_*` method runs (hosts are numbered in creation
    /// order). The plan's scripted/A→B direction is host→switch (the
    /// host's egress). Call before `build_*`; read results afterwards with
    /// [`Testbed::host_fault_stats`].
    pub fn set_host_fault(&mut self, host: usize, plan: FaultPlan) {
        self.host_fault_plans.insert(host, plan);
    }

    /// Inject faults on the dumbbell trunk (A→B is the sw1→sw2 direction,
    /// i.e. senders→receivers). Call before `build_dumbbell`; read results
    /// with [`Testbed::trunk_fault_stats`].
    pub fn set_trunk_fault(&mut self, plan: FaultPlan) {
        self.trunk_fault_plan = Some(plan);
    }

    /// Fault counters of host `idx`'s access link, if one was faulted.
    pub fn host_fault_stats(&mut self, host: usize) -> Option<LinkFaultStats> {
        let id = *self.host_fault_taps.get(&host)?;
        self.net.node_mut::<FaultyLink>(id).map(|f| f.stats())
    }

    /// Fault counters of the trunk, if it was faulted.
    pub fn trunk_fault_stats(&mut self) -> Option<LinkFaultStats> {
        let id = self.trunk_fault_tap?;
        self.net.node_mut::<FaultyLink>(id).map(|f| f.stats())
    }

    /// Add a host attached to `switch` via `link`; returns its index.
    fn add_host(&mut self, switch: NodeId, link: LinkSpec) -> usize {
        let idx = self.hosts.len();
        let ip = Self::host_ip(idx);
        let node = self.net.reserve_node();
        let (host_port, switch_port) = match self.host_fault_plans.get(&idx) {
            Some(plan) => {
                let (hp, sp, tap) = self.net.connect_interposed(node, switch, link, |ta, tb| {
                    Box::new(FaultyLink::new(plan, ta, tb))
                });
                self.host_fault_taps.insert(idx, tap);
                (hp, sp)
            }
            None => self.net.connect(node, switch, link),
        };
        let mut acdc_cfg = self.scheme.acdc_config(self.mtu);
        if let Some(tweak) = &self.acdc_tweak {
            tweak(&mut acdc_cfg);
        }
        let mut host = HostNode::new(ip, host_port, acdc_cfg);
        if self.workers > 0 {
            host.set_workers(self.workers);
        }
        let host_hub = Arc::clone(host.telemetry());
        self.net.install(node, Box::new(host));
        // A faulted access link reports onto its host's hub, so one dump
        // interleaves the injected faults with the resulting NIC drops.
        if let Some(&tap) = self.host_fault_taps.get(&idx) {
            if let Some(link) = self.net.node_mut::<FaultyLink>(tap) {
                link.set_telemetry(host_hub, "fault");
            }
        }
        // Route the host's address at its switch.
        if let Some(sw) = self.net.node_mut::<SwitchNode>(switch) {
            sw.add_route(ip, switch_port);
        }
        self.hosts.push(node);
        self.host_ips.push(ip);
        self.next_port.push(40_000);
        idx
    }

    /// Like [`Testbed::star`] with a vSwitch-config tweak.
    pub fn star_with(
        n: usize,
        scheme: Scheme,
        mtu: usize,
        tweak: impl Fn(&mut acdc_vswitch::AcdcConfig) + 'static,
    ) -> Testbed {
        let mut tb = Testbed::empty(scheme.clone(), mtu);
        tb.set_acdc_tweak(tweak);
        tb.build_star(n);
        tb
    }

    /// The single-switch star of the macrobenchmarks (§5.2): `n` hosts on
    /// one 48-port switch.
    pub fn star(n: usize, scheme: Scheme, mtu: usize) -> Testbed {
        let mut tb = Testbed::empty(scheme, mtu);
        tb.build_star(n);
        tb
    }

    /// Build the single-switch star topology (see [`Testbed::star`]).
    pub fn build_star(&mut self, n: usize) {
        let tb = self;
        let cfg = tb.scheme.switch_config(tb.mark_bytes);
        let sw = tb.net.add_node(Box::new(SwitchNode::new(cfg)));
        tb.switches.push(sw);
        for _ in 0..n {
            tb.add_host(sw, default_link());
        }
    }

    /// Like [`Testbed::dumbbell`] with a vSwitch-config tweak.
    pub fn dumbbell_with(
        n: usize,
        scheme: Scheme,
        mtu: usize,
        tweak: impl Fn(&mut acdc_vswitch::AcdcConfig) + 'static,
    ) -> Testbed {
        let mut tb = Testbed::empty(scheme.clone(), mtu);
        tb.set_acdc_tweak(tweak);
        tb.build_dumbbell(n);
        tb
    }

    /// The dumbbell of Figure 7a: `n` sender/receiver pairs across a
    /// 10 G trunk. Hosts `0..n` are senders, `n..2n` receivers.
    pub fn dumbbell(n: usize, scheme: Scheme, mtu: usize) -> Testbed {
        let mut tb = Testbed::empty(scheme, mtu);
        tb.build_dumbbell(n);
        tb
    }

    /// Build the dumbbell topology (see [`Testbed::dumbbell`]).
    pub fn build_dumbbell(&mut self, n: usize) {
        let tb = self;
        let cfg = tb.scheme.switch_config(tb.mark_bytes);
        let sw1 = tb.net.add_node(Box::new(SwitchNode::new(cfg)));
        let sw2 = tb.net.add_node(Box::new(SwitchNode::new(cfg)));
        tb.switches.push(sw1);
        tb.switches.push(sw2);
        let (p1, p2) = match tb.trunk_fault_plan.take() {
            Some(plan) => {
                let (p1, p2, tap) =
                    tb.net
                        .connect_interposed(sw1, sw2, default_link(), |ta, tb_port| {
                            Box::new(FaultyLink::new(&plan, ta, tb_port))
                        });
                tb.trunk_fault_tap = Some(tap);
                if let Some(link) = tb.net.node_mut::<FaultyLink>(tap) {
                    link.set_telemetry(Arc::clone(&tb.telemetry), "fault.trunk");
                }
                (p1, p2)
            }
            None => tb.net.connect(sw1, sw2, default_link()),
        };
        // Default routes point across the trunk.
        tb.net
            .node_mut::<SwitchNode>(sw1)
            .unwrap()
            .set_default_route(p1);
        tb.net
            .node_mut::<SwitchNode>(sw2)
            .unwrap()
            .set_default_route(p2);
        for _ in 0..n {
            tb.add_host(sw1, default_link());
        }
        for _ in 0..n {
            tb.add_host(sw2, default_link());
        }
    }

    /// The multi-hop, multi-bottleneck "parking lot" of Figure 7b:
    /// `n` senders, one per switch along a chain, all reaching the single
    /// receiver attached to the last switch. Host `n` is the receiver.
    pub fn parking_lot(n: usize, scheme: Scheme, mtu: usize) -> Testbed {
        assert!(n >= 2);
        let mut tb = Testbed::empty(scheme, mtu);
        let cfg = tb.scheme.switch_config(tb.mark_bytes);
        for _ in 0..n {
            let sw = tb.net.add_node(Box::new(SwitchNode::new(cfg)));
            tb.switches.push(sw);
        }
        // Chain the switches; default routes point "rightward".
        for i in 0..n - 1 {
            let (pa, _pb) = tb
                .net
                .connect(tb.switches[i], tb.switches[i + 1], default_link());
            tb.net
                .node_mut::<SwitchNode>(tb.switches[i])
                .unwrap()
                .set_default_route(pa);
        }
        for i in 0..n {
            tb.add_host(tb.switches[i], default_link());
        }
        // The receiver hangs off the last switch.
        tb.add_host(tb.switches[n - 1], default_link());
        // Receiver→sender routes walk leftward: give every non-first
        // switch a back-route per sender.
        for i in (1..n).rev() {
            let (pa, _pb) = tb
                .net
                .connect(tb.switches[i], tb.switches[i - 1], default_link());
            for s in 0..i {
                let ip = tb.host_ips[s];
                tb.net
                    .node_mut::<SwitchNode>(tb.switches[i])
                    .unwrap()
                    .add_route(ip, pa);
            }
        }
        tb
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Host index → IP.
    pub fn ip_of(&self, host: usize) -> [u8; 4] {
        self.host_ips[host]
    }

    /// Attach a CBR UDP source to switch `sw` targeting `dst_host`'s IP;
    /// returns the source's engine node id (for post-run inspection).
    pub fn add_udp_source(
        &mut self,
        sw: usize,
        dst_host: usize,
        rate_bps: u64,
        payload: usize,
        ecn: acdc_packet::Ecn,
    ) -> NodeId {
        let node = self.net.reserve_node();
        let (np, swp) = self.net.connect(node, self.switches[sw], default_link());
        // Give the source its own routable address (unused for replies).
        let src_ip = Self::host_ip(200 + self.host_ips.len());
        if let Some(s) = self.net.node_mut::<SwitchNode>(self.switches[sw]) {
            s.add_route(src_ip, swp);
        }
        let dst_ip = self.host_ips[dst_host];
        self.net.install(
            node,
            Box::new(crate::udp::UdpSourceNode::new(
                np, src_ip, dst_ip, rate_bps, payload, ecn,
            )),
        );
        self.net.schedule_timer_at(node, 0, 0);
        node
    }

    /// Attach a UDP sink to switch `sw`; returns `(node id, sink ip)` —
    /// point sources at the returned address.
    pub fn add_udp_sink(&mut self, sw: usize) -> (NodeId, [u8; 4]) {
        let node = self.net.reserve_node();
        let (_np, swp) = self.net.connect(node, self.switches[sw], default_link());
        let ip = Self::host_ip(100 + self.host_ips.len());
        if let Some(s) = self.net.node_mut::<SwitchNode>(self.switches[sw]) {
            s.add_route(ip, swp);
        }
        self.net
            .install(node, Box::new(crate::udp::UdpSinkNode::new()));
        (node, ip)
    }

    /// Schedule a wake-up for a host (needed after adding connections via
    /// the low-level [`HostNode::add_connection`] API so active opens at
    /// `at` actually fire).
    pub fn kick_host(&mut self, host: usize, at: Nanos) {
        let id = self.hosts[host];
        self.net.schedule_timer_at(id, at, 0);
    }

    /// Mutable access to a host.
    pub fn host_mut(&mut self, idx: usize) -> &mut HostNode {
        let id = self.hosts[idx];
        self.net.node_mut::<HostNode>(id).expect("host node")
    }

    /// Switch counters of switch `i`.
    pub fn switch_counters(&mut self, i: usize) -> SwitchCounters {
        let id = self.switches[i];
        self.net
            .node_mut::<SwitchNode>(id)
            .expect("switch node")
            .counters()
    }

    /// Aggregate drop rate across all switches.
    pub fn drop_rate(&mut self) -> f64 {
        let mut fwd = 0u64;
        let mut drop = 0u64;
        for i in 0..self.switches.len() {
            let c = self.switch_counters(i);
            fwd += c.forwarded;
            drop += c.total_drops();
        }
        if fwd + drop == 0 {
            0.0
        } else {
            drop as f64 / (fwd + drop) as f64
        }
    }

    // ------------------------------------------------------------------
    // Flow plumbing
    // ------------------------------------------------------------------

    fn next_flow_params(&mut self, client: usize) -> (u16, u32, u32) {
        let port = self.next_port[client];
        self.next_port[client] += 1;
        self.iss = self.iss.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        let iss_c = self.iss;
        self.iss = self.iss.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        let iss_s = self.iss;
        (port, iss_c, iss_s)
    }

    /// Create a connection between two hosts with the given apps. The
    /// client opens at `start`.
    pub fn add_flow(
        &mut self,
        client: usize,
        server: usize,
        client_app: Option<Box<dyn App>>,
        server_app: Option<Box<dyn App>>,
        start: Nanos,
        taps: ConnTaps,
    ) -> FlowHandle {
        assert_ne!(client, server, "flow endpoints must differ");
        let (cport, iss_c, iss_s) = self.next_flow_params(client);
        let sport = 5_001;
        let cip = self.host_ips[client];
        let sip = self.host_ips[server];
        let ccfg = self
            .scheme
            .tcp_config(cip, cport, sip, sport, self.mtu, iss_c);
        let scfg = self
            .scheme
            .tcp_config(sip, sport, cip, cport, self.mtu, iss_s);
        let key = FlowKey {
            src_ip: cip,
            dst_ip: sip,
            src_port: cport,
            dst_port: sport,
        };
        self.host_mut(client)
            .add_connection(ccfg, true, Some(start), client_app, taps);
        self.host_mut(server)
            .add_connection(scfg, false, None, server_app, ConnTaps::default());
        // Kick the client host at the start time so it opens the flow.
        let client_id = self.hosts[client];
        self.net.schedule_timer_at(client_id, start, 0);
        FlowHandle {
            client_host: client,
            server_host: server,
            key,
        }
    }

    /// A bulk transfer (`None` = long-lived/unbounded), iperf-style.
    pub fn add_bulk(
        &mut self,
        client: usize,
        server: usize,
        bytes: Option<u64>,
        start: Nanos,
    ) -> FlowHandle {
        let app: Box<dyn App> = match bytes {
            Some(b) => Box::new(BulkSender::new(b, FctKind::Background)),
            None => Box::new(BulkSender::unlimited()),
        };
        self.add_flow(client, server, Some(app), None, start, ConnTaps::default())
    }

    /// A bulk transfer whose *guest stack* overrides the scheme default —
    /// the mixed-stack experiments (Figures 1, 15, 17; Table 1 runs each
    /// host stack under AC/DC). `ecn` selects end-to-end ECN negotiation
    /// for this connection.
    #[allow(clippy::too_many_arguments)]
    pub fn add_bulk_with_cc(
        &mut self,
        client: usize,
        server: usize,
        cc: CcKind,
        ecn: bool,
        bytes: Option<u64>,
        start: Nanos,
        taps: ConnTaps,
    ) -> FlowHandle {
        self.add_bulk_with_cc_clamped(client, server, cc, ecn, bytes, start, taps, None)
    }

    /// [`Testbed::add_bulk_with_cc`] plus a guest `snd_cwnd_clamp`
    /// (Figure 6a's window cap).
    #[allow(clippy::too_many_arguments)]
    pub fn add_bulk_with_cc_clamped(
        &mut self,
        client: usize,
        server: usize,
        cc: CcKind,
        ecn: bool,
        bytes: Option<u64>,
        start: Nanos,
        taps: ConnTaps,
        cwnd_clamp: Option<u64>,
    ) -> FlowHandle {
        let (cport, iss_c, iss_s) = self.next_flow_params(client);
        let sport = 5_001;
        let cip = self.host_ips[client];
        let sip = self.host_ips[server];
        let mut ccfg = self
            .scheme
            .tcp_config(cip, cport, sip, sport, self.mtu, iss_c);
        ccfg.cc = cc;
        ccfg.ecn = ecn;
        ccfg.cwnd_clamp = cwnd_clamp;
        let mut scfg = self
            .scheme
            .tcp_config(sip, sport, cip, cport, self.mtu, iss_s);
        scfg.cc = cc;
        scfg.ecn = ecn;
        let key = FlowKey {
            src_ip: cip,
            dst_ip: sip,
            src_port: cport,
            dst_port: sport,
        };
        let app: Box<dyn App> = match bytes {
            Some(b) => Box::new(BulkSender::new(b, FctKind::Background)),
            None => Box::new(BulkSender::unlimited()),
        };
        self.host_mut(client)
            .add_connection(ccfg, true, Some(start), Some(app), taps);
        self.host_mut(server)
            .add_connection(scfg, false, None, None, ConnTaps::default());
        let client_id = self.hosts[client];
        self.net.schedule_timer_at(client_id, start, 0);
        FlowHandle {
            client_host: client,
            server_host: server,
            key,
        }
    }

    /// A bulk transfer with measurement taps.
    pub fn add_bulk_tapped(
        &mut self,
        client: usize,
        server: usize,
        bytes: Option<u64>,
        start: Nanos,
        taps: ConnTaps,
    ) -> FlowHandle {
        let app: Box<dyn App> = match bytes {
            Some(b) => Box::new(BulkSender::new(b, FctKind::Background)),
            None => Box::new(BulkSender::unlimited()),
        };
        self.add_flow(client, server, Some(app), None, start, taps)
    }

    /// A ping-pong RTT probe whose guest stack overrides the scheme
    /// default (Figure 16 probes with a non-ECN CUBIC connection).
    #[allow(clippy::too_many_arguments)]
    pub fn add_pingpong_with_cc(
        &mut self,
        client: usize,
        server: usize,
        cc: CcKind,
        ecn: bool,
        msg: u64,
        interval: Nanos,
        start: Nanos,
    ) -> FlowHandle {
        let (cport, iss_c, iss_s) = self.next_flow_params(client);
        let sport = 5_001;
        let cip = self.host_ips[client];
        let sip = self.host_ips[server];
        let mut ccfg = self
            .scheme
            .tcp_config(cip, cport, sip, sport, self.mtu, iss_c);
        ccfg.cc = cc;
        ccfg.ecn = ecn;
        let mut scfg = self
            .scheme
            .tcp_config(sip, sport, cip, cport, self.mtu, iss_s);
        scfg.cc = cc;
        scfg.ecn = ecn;
        let key = FlowKey {
            src_ip: cip,
            dst_ip: sip,
            src_port: cport,
            dst_port: sport,
        };
        self.host_mut(client).add_connection(
            ccfg,
            true,
            Some(start),
            Some(Box::new(PingPong::new(msg, interval))),
            ConnTaps::default(),
        );
        self.host_mut(server).add_connection(
            scfg,
            false,
            None,
            Some(Box::new(EchoServer::new())),
            ConnTaps::default(),
        );
        let client_id = self.hosts[client];
        self.net.schedule_timer_at(client_id, start, 0);
        FlowHandle {
            client_host: client,
            server_host: server,
            key,
        }
    }

    /// A sockperf-style RTT probe (ping-pong of `msg` bytes every
    /// `interval`), with an echo server on the far side.
    pub fn add_pingpong(
        &mut self,
        client: usize,
        server: usize,
        msg: u64,
        interval: Nanos,
        start: Nanos,
    ) -> FlowHandle {
        self.add_flow(
            client,
            server,
            Some(Box::new(PingPong::new(msg, interval))),
            Some(Box::new(EchoServer::new())),
            start,
            ConnTaps::default(),
        )
    }

    /// A periodic fixed-size message flow (the 16 KB mice generator).
    pub fn add_messages(
        &mut self,
        client: usize,
        server: usize,
        msg: u64,
        period: Nanos,
        limit: Option<u64>,
        start: Nanos,
    ) -> FlowHandle {
        self.add_flow(
            client,
            server,
            Some(Box::new(MessageSender::new(
                msg,
                period,
                limit,
                FctKind::Mice,
            ))),
            None,
            start,
            ConnTaps::default(),
        )
    }

    /// Sequential transfers on one connection (shuffle elements).
    pub fn add_sequential(
        &mut self,
        client: usize,
        server: usize,
        sizes: Vec<u64>,
        start: Nanos,
    ) -> FlowHandle {
        self.add_flow(
            client,
            server,
            Some(Box::new(SequentialSender::new(sizes, FctKind::Background))),
            None,
            start,
            ConnTaps::default(),
        )
    }

    // ------------------------------------------------------------------
    // Running & measuring
    // ------------------------------------------------------------------

    /// Run the simulation until virtual time `t`.
    pub fn run_until(&mut self, t: Nanos) {
        self.net.run_until(t);
    }

    fn conn_index(&mut self, h: FlowHandle) -> usize {
        // Connections are added in order; find by key on the client host.
        let host = self.host_mut(h.client_host);
        for i in 0..host.conn_count() {
            let ep = host.endpoint(i);
            // Match on local port (unique per host).
            if ep_local_key(ep) == h.key {
                return i;
            }
        }
        panic!("flow not found on host {}", h.client_host);
    }

    /// Schedule the end of a long-lived flow (Figure 14's convergence
    /// test removes flows on a timetable).
    pub fn set_flow_stop(&mut self, h: FlowHandle, at: Nanos) {
        let idx = self.conn_index(h);
        self.host_mut(h.client_host).set_stop_at(idx, at);
        // Make sure the host wakes up to apply it.
        let id = self.hosts[h.client_host];
        self.net.schedule_timer_at(id, at, 0);
    }

    /// Index of the client-side connection on its host.
    pub fn client_conn_index(&mut self, h: FlowHandle) -> usize {
        self.conn_index(h)
    }

    /// The client endpoint of a flow.
    pub fn client_endpoint(&mut self, h: FlowHandle) -> &Endpoint {
        let idx = self.conn_index(h);
        self.host_mut(h.client_host).endpoint(idx)
    }

    /// Bytes acknowledged end-to-end on a flow.
    pub fn acked_bytes(&mut self, h: FlowHandle) -> u64 {
        self.client_endpoint(h).acked_bytes()
    }

    /// Goodput in Gbps over `[start, end]`.
    pub fn flow_gbps(&mut self, h: FlowHandle, start: Nanos, end: Nanos) -> f64 {
        let bytes = self.acked_bytes(h);
        if end <= start {
            return 0.0;
        }
        bytes as f64 * 8.0 / (end - start) as f64
    }

    /// RTT samples (ms) recorded by a ping-pong client app.
    pub fn rtt_samples_ms(&mut self, h: FlowHandle) -> Vec<f64> {
        let idx = self.conn_index(h);
        self.host_mut(h.client_host)
            .app(idx)
            .and_then(|a| a.rtt_samples_ms())
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    /// FCT records from the client app of a flow.
    pub fn fct_of(&mut self, h: FlowHandle) -> FctRecorder {
        let idx = self.conn_index(h);
        self.host_mut(h.client_host)
            .app(idx)
            .and_then(|a| a.fct())
            .cloned()
            .unwrap_or_default()
    }

    /// Per-flow throughputs (Gbps, measured by acked bytes over the given
    /// interval) for a set of flows — the input to Jain's index.
    pub fn throughputs_gbps(&mut self, flows: &[FlowHandle], start: Nanos, end: Nanos) -> Vec<f64> {
        flows
            .iter()
            .map(|&h| self.flow_gbps(h, start, end))
            .collect()
    }
}

/// Build the client-side flow key of an endpoint (helper).
fn ep_local_key(ep: &Endpoint) -> FlowKey {
    let cfg = ep.config();
    FlowKey {
        src_ip: cfg.local_ip,
        dst_ip: cfg.remote_ip,
        src_port: cfg.local_port,
        dst_port: cfg.remote_port,
    }
}

/// Convenience: which CC kinds Figure 1 / Table 1 sweep.
pub fn table1_host_stacks() -> Vec<CcKind> {
    vec![
        CcKind::Cubic,
        CcKind::Reno,
        CcKind::Dctcp,
        CcKind::Illinois,
        CcKind::HighSpeed,
        CcKind::Vegas,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_stats::time::{MILLISECOND, SECOND};

    #[test]
    fn dumbbell_bulk_flow_saturates_the_trunk() {
        let mut tb = Testbed::dumbbell(1, Scheme::Cubic, 9000);
        let h = tb.add_bulk(0, 1, None, 0);
        tb.run_until(100 * MILLISECOND);
        let gbps = tb.flow_gbps(h, 0, 100 * MILLISECOND);
        assert!(gbps > 8.0, "one flow should near line rate, got {gbps:.2}");
        assert!(gbps <= 10.0);
    }

    #[test]
    fn five_flows_share_the_bottleneck() {
        let mut tb = Testbed::dumbbell(5, Scheme::Dctcp, 9000);
        let flows: Vec<_> = (0..5).map(|i| tb.add_bulk(i, 5 + i, None, 0)).collect();
        tb.run_until(200 * MILLISECOND);
        let tputs = tb.throughputs_gbps(&flows, 0, 200 * MILLISECOND);
        let total: f64 = tputs.iter().sum();
        assert!(total > 8.0 && total <= 10.0, "total {total:.2}");
        let jain = acdc_stats::jain_index(&tputs).unwrap();
        assert!(jain > 0.9, "DCTCP flows should share fairly: {jain:.3}");
    }

    #[test]
    fn acdc_scheme_creates_datapath_flows() {
        let mut tb = Testbed::dumbbell(1, Scheme::acdc(), 1500);
        let _h = tb.add_bulk(0, 1, Some(1_000_000), 0);
        tb.run_until(50 * MILLISECOND);
        let flows = tb.host_mut(0).datapath().flows();
        assert!(flows >= 2, "AC/DC tracks both directions, got {flows}");
        let rewrites = tb
            .host_mut(0)
            .datapath()
            .counters()
            .rwnd_rewrites
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(rewrites > 0, "enforcement must have engaged");
    }

    #[test]
    fn bounded_transfer_completes_and_records_fct() {
        let mut tb = Testbed::dumbbell(1, Scheme::Dctcp, 1500);
        let h = tb.add_bulk(0, 1, Some(5_000_000), 0);
        tb.run_until(SECOND);
        assert_eq!(tb.acked_bytes(h), 5_000_000);
        let fct = tb.fct_of(h);
        assert_eq!(fct.len(), 1);
        assert!(fct.samples()[0].fct() > 0);
    }

    #[test]
    fn pingpong_measures_rtts() {
        let mut tb = Testbed::dumbbell(2, Scheme::Dctcp, 1500);
        let p = tb.add_pingpong(0, 2, 64, MILLISECOND, 0);
        tb.run_until(100 * MILLISECOND);
        let rtts = tb.rtt_samples_ms(p);
        assert!(rtts.len() > 50, "expected ~100 pings, got {}", rtts.len());
        // Idle network: RTT ≈ a couple of hops, well under a millisecond.
        let median = {
            let mut d = acdc_stats::Distribution::new();
            d.extend(rtts.iter().copied());
            d.median().unwrap()
        };
        assert!(median < 0.5, "idle RTT should be tiny, got {median}ms");
    }

    #[test]
    fn parking_lot_routes_all_senders_to_receiver() {
        let mut tb = Testbed::parking_lot(3, Scheme::Dctcp, 9000);
        let rx = 3; // receiver index
        let flows: Vec<_> = (0..3)
            .map(|s| tb.add_bulk(s, rx, Some(2_000_000), 0))
            .collect();
        tb.run_until(SECOND);
        for f in flows {
            assert_eq!(tb.acked_bytes(f), 2_000_000, "sender {f:?}");
        }
    }

    #[test]
    fn rate_limiter_caps_throughput() {
        let mut tb = Testbed::dumbbell(1, Scheme::Cubic, 9000);
        tb.host_mut(0).set_rate_limit(2_000_000_000, 2 * 9000);
        let h = tb.add_bulk(0, 1, None, 0);
        tb.run_until(100 * MILLISECOND);
        let gbps = tb.flow_gbps(h, 0, 100 * MILLISECOND);
        assert!(gbps < 2.2, "rate limit must bind: {gbps:.2}");
        assert!(gbps > 1.5, "but throughput should approach it: {gbps:.2}");
    }

    #[test]
    fn deterministic_across_runs() {
        fn run() -> (u64, u64) {
            let mut tb = Testbed::dumbbell(2, Scheme::acdc(), 1500);
            let a = tb.add_bulk(0, 2, None, 0);
            let b = tb.add_bulk(1, 3, None, 0);
            tb.run_until(50 * MILLISECOND);
            (tb.acked_bytes(a), tb.acked_bytes(b))
        }
        assert_eq!(run(), run());
    }
}
