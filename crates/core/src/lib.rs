//! # acdc-core — the experiment harness
//!
//! Glues the pieces into the paper's testbed (Figure 3):
//!
//! * [`host::HostNode`] — a server: guest TCP endpoints (`acdc-tcp`), the
//!   vSwitch datapath (`acdc-vswitch`), an optional egress rate limiter,
//!   and the NIC port into the simulated network (`acdc-netsim`);
//! * [`scheme::Scheme`] — the three configurations every figure compares:
//!   **CUBIC** (host CUBIC, plain OVS, no WRED/ECN), **DCTCP** (host
//!   DCTCP, plain OVS, WRED/ECN on) and **AC/DC** (any host stack, AC/DC
//!   DCTCP in the vSwitch, WRED/ECN on);
//! * [`testbed::Testbed`] — topology builders (dumbbell, parking lot,
//!   single-switch star) and flow plumbing with measurement taps.
//!
//! Experiment binaries in `acdc-bench` and the examples compose these
//! into each table and figure of §5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fanout;
pub mod host;
pub mod scheme;
pub mod testbed;
pub mod trace;
pub mod udp;

pub use fanout::FanoutSender;
pub use host::{ConnTaps, FlowHandle, HostNode, MultiApp, MultiConnAccess};
pub use scheme::Scheme;
pub use testbed::Testbed;
pub use trace::TraceSender;
pub use udp::{UdpSinkNode, UdpSourceNode};
