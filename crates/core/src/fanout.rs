//! Host-level fan-out sender: drives bulk transfers across a set of the
//! host's connections with bounded concurrency.
//!
//! Covers two macrobenchmarks:
//!
//! * **concurrent stride** (Figure 21): 512 MB to servers
//!   `i+1..=i+4 (mod n)` "in sequential fashion" — concurrency 1;
//! * **shuffle** (Figure 22): 512 MB to every other server in random
//!   order, "a sender sends at most 2 flows simultaneously" —
//!   concurrency 2.

use acdc_stats::time::Nanos;
use acdc_workloads::{FctKind, FctRecorder};

use crate::host::{MultiApp, MultiConnAccess};

/// Sends `bytes` on each listed connection, at most `concurrency` at a
/// time, in list order; records one Background FCT per transfer.
pub struct FanoutSender {
    order: Vec<usize>,
    bytes: u64,
    concurrency: usize,
    next: usize,
    /// In-flight transfers: (conn index, target acked offset, start time).
    active: Vec<(usize, u64, Nanos)>,
    fct: FctRecorder,
    /// Loop over `order` until `repeat_until` (background traffic runs for
    /// the whole experiment, as in the paper's 10-minute runs).
    repeat_until: Option<Nanos>,
    /// Do not launch anything before this time (phase staggering).
    start_at: Nanos,
}

impl FanoutSender {
    /// Transfers of `bytes` over `order`, `concurrency` at a time.
    pub fn new(order: Vec<usize>, bytes: u64, concurrency: usize) -> FanoutSender {
        assert!(concurrency >= 1);
        assert!(bytes > 0);
        assert!(!order.is_empty(), "fanout needs at least one connection");
        FanoutSender {
            order,
            bytes,
            concurrency,
            next: 0,
            active: Vec::new(),
            fct: FctRecorder::new(),
            repeat_until: None,
            start_at: 0,
        }
    }

    /// Delay the first transfer until `at` (staggers senders so their
    /// phases do not stay locked in step).
    pub fn starting_at(mut self, at: Nanos) -> FanoutSender {
        self.start_at = at;
        self
    }

    /// Loop the transfer list until `until`, then stop issuing new ones.
    pub fn repeating(mut self, until: Nanos) -> FanoutSender {
        self.repeat_until = Some(until);
        self
    }

    /// Completed transfers.
    pub fn recorder(&self) -> &FctRecorder {
        &self.fct
    }

    /// All transfers finished?
    pub fn done(&self) -> bool {
        self.next >= self.order.len() && self.active.is_empty()
    }
}

impl MultiApp for FanoutSender {
    fn poll(&mut self, now: Nanos, conns: &mut dyn MultiConnAccess) -> Option<Nanos> {
        // Reap completions.
        let mut i = 0;
        while i < self.active.len() {
            let (conn, target, start) = self.active[i];
            if conns.acked(conn) >= target {
                self.fct.record_flow(
                    FctKind::Background,
                    start,
                    now,
                    self.bytes,
                    conns.flow(conn),
                );
                self.active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Launch up to the concurrency limit.
        if now < self.start_at {
            return Some(self.start_at);
        }
        loop {
            if self.active.len() >= self.concurrency {
                break;
            }
            if self.next >= self.order.len() {
                match self.repeat_until {
                    Some(until) if now < until => self.next = 0,
                    _ => break,
                }
            }
            let conn = self.order[self.next];
            if !conns.established(conn) {
                // Connection not up yet; retry on the next progress event.
                break;
            }
            conns.send(conn, self.bytes);
            self.active.push((conn, conns.queued(conn), now));
            self.next += 1;
        }
        None // event-driven
    }

    fn fct(&self) -> Option<&FctRecorder> {
        Some(&self.fct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        established: Vec<bool>,
        queued: Vec<u64>,
        acked: Vec<u64>,
    }

    impl Fake {
        fn new(n: usize) -> Fake {
            Fake {
                established: vec![true; n],
                queued: vec![0; n],
                acked: vec![0; n],
            }
        }
    }

    impl MultiConnAccess for Fake {
        fn count(&self) -> usize {
            self.established.len()
        }
        fn send(&mut self, idx: usize, bytes: u64) {
            self.queued[idx] += bytes;
        }
        fn acked(&self, idx: usize) -> u64 {
            self.acked[idx]
        }
        fn queued(&self, idx: usize) -> u64 {
            self.queued[idx]
        }
        fn established(&self, idx: usize) -> bool {
            self.established[idx]
        }
    }

    #[test]
    fn sequential_concurrency_one() {
        let mut app = FanoutSender::new(vec![0, 1, 2], 100, 1);
        let mut fake = Fake::new(3);
        app.poll(0, &mut fake);
        assert_eq!(fake.queued, vec![100, 0, 0]);
        app.poll(1, &mut fake);
        assert_eq!(fake.queued, vec![100, 0, 0], "no parallelism at c=1");
        fake.acked[0] = 100;
        app.poll(2, &mut fake);
        assert_eq!(fake.queued, vec![100, 100, 0]);
        assert_eq!(app.recorder().len(), 1);
    }

    #[test]
    fn shuffle_concurrency_two() {
        let mut app = FanoutSender::new(vec![0, 1, 2, 3], 50, 2);
        let mut fake = Fake::new(4);
        app.poll(0, &mut fake);
        assert_eq!(
            fake.queued.iter().filter(|&&q| q > 0).count(),
            2,
            "two in flight"
        );
        fake.acked[0] = 50;
        app.poll(1, &mut fake);
        assert_eq!(fake.queued.iter().filter(|&&q| q > 0).count(), 3);
        assert!(!app.done());
        fake.acked = fake.queued.clone();
        app.poll(2, &mut fake);
        fake.acked = fake.queued.clone();
        app.poll(3, &mut fake);
        assert!(app.done());
        assert_eq!(app.recorder().len(), 4);
    }

    #[test]
    fn waits_for_establishment_in_order() {
        let mut app = FanoutSender::new(vec![0, 1], 10, 1);
        let mut fake = Fake::new(2);
        fake.established[0] = false;
        app.poll(0, &mut fake);
        assert_eq!(fake.queued, vec![0, 0], "head-of-line waits");
        fake.established[0] = true;
        app.poll(1, &mut fake);
        assert_eq!(fake.queued, vec![10, 0]);
    }
}
