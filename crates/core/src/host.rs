//! A server node: guest TCP endpoints + AC/DC vSwitch + NIC.
//!
//! The packet path matches Figure 3 of the paper:
//!
//! ```text
//!   app ── Endpoint ── AcdcDatapath::egress ── [rate limiter] ── NIC ─▶ net
//!   app ◀─ Endpoint ◀─ AcdcDatapath::ingress ◀──────────────── NIC ◀─ net
//! ```

use std::any::Any;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use acdc_netsim::{Ctx, Node, PortId, TokenBucket};

/// TCP-Small-Queues-style cap on bytes each *connection* may park in the
/// NIC queue. As in Linux, a socket is not polled for more data while its
/// share of the queue is above this — bounding sender-side bufferbloat
/// without letting bulk flows starve small ones.
const TSQ_PER_CONN_CAP: u64 = 64 * 1024;

/// Period of the vSwitch maintenance tick. The datapath infers RTOs for
/// flows whose ACK clock stopped *entirely* (outage, burst loss) only
/// from [`AcdcDatapath::tick`] — no ingress packet will ever trigger the
/// inactivity check for them. Matches the default `inactivity_floor`.
const DP_TICK_PERIOD: Nanos = 10 * acdc_stats::time::MILLISECOND;
use acdc_packet::{FlowKey, Segment};
use acdc_stats::time::Nanos;
use acdc_stats::TimeSeries;
use acdc_tcp::{Endpoint, TcpConfig};
use acdc_telemetry::{Counter, EventKind, Telemetry, NO_FLOW};
use acdc_vswitch::{AcdcConfig, AcdcDatapath, Verdict};
use acdc_workers::{Direction, WorkerEngine};
use acdc_workloads::apps::App;

/// Identifies one flow end-to-end in a [`crate::Testbed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowHandle {
    /// Index of the client (active-opening) host.
    pub client_host: usize,
    /// Index of the server (passive) host.
    pub server_host: usize,
    /// The client-side flow key (client → server direction).
    pub key: FlowKey,
}

/// Measurement taps attachable to a connection.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnTaps {
    /// Sample the guest congestion window over time (Figures 9/10).
    pub trace_cwnd: bool,
    /// Sample the enforced (peer-advertised) receive window over time.
    pub trace_rwnd: bool,
    /// Record per-interval throughput of acknowledged bytes.
    pub tput_bin: Option<Nanos>,
}

struct Conn {
    ep: Endpoint,
    app: Option<Box<dyn App>>,
    start_at: Option<Nanos>,
    stop_at: Option<Nanos>,
    started: bool,
    stopped: bool,
    app_wake: Option<Nanos>,
    /// Bytes of this connection currently in the NIC (or rate-limiter)
    /// queue; the TSQ gate.
    nic_queued: u64,
    tsq_blocked: bool,
    cwnd_trace: Option<TimeSeries>,
    rwnd_trace: Option<TimeSeries>,
    tput: Option<acdc_stats::ThroughputMeter>,
    last_acked: u64,
}

impl Conn {
    fn sample_taps(&mut self, now: Nanos) {
        if let Some(ts) = &mut self.cwnd_trace {
            let v = self.ep.cwnd() as f64;
            if ts.samples().last().is_none_or(|s| s.value != v) {
                ts.push(now, v);
            }
        }
        if let Some(ts) = &mut self.rwnd_trace {
            let v = self.ep.peer_rwnd() as f64;
            if ts.samples().last().is_none_or(|s| s.value != v) {
                ts.push(now, v);
            }
        }
        if let Some(m) = &mut self.tput {
            let acked = self.ep.acked_bytes();
            if acked > self.last_acked {
                m.record(now, acked - self.last_acked);
                self.last_acked = acked;
            }
        }
    }
}

/// Access to a host's connections for host-level ("multi-connection")
/// applications such as the trace-driven generator.
pub trait MultiConnAccess {
    /// Number of connections on the host.
    fn count(&self) -> usize;
    /// Enqueue bytes on connection `idx`.
    fn send(&mut self, idx: usize, bytes: u64);
    /// Acknowledged stream bytes of connection `idx`.
    fn acked(&self, idx: usize) -> u64;
    /// Queued stream bytes of connection `idx`.
    fn queued(&self, idx: usize) -> u64;
    /// Is connection `idx` established?
    fn established(&self, idx: usize) -> bool;
    /// Wire 5-tuple (egress direction) of connection `idx`, for FCT
    /// attribution.
    fn flow(&self, idx: usize) -> Option<FlowKey> {
        let _ = idx;
        None
    }
}

/// A host-level application spanning all of the host's connections.
pub trait MultiApp: Send {
    /// Poll; return the next absolute wake-up time wanted.
    fn poll(&mut self, now: Nanos, conns: &mut dyn MultiConnAccess) -> Option<Nanos>;
    /// Completed-flow records, if measured.
    fn fct(&self) -> Option<&acdc_workloads::FctRecorder> {
        None
    }
}

struct ConnsAccess<'a> {
    conns: &'a mut [Conn],
    /// Connections written to during this poll (only these need pumping).
    touched: Vec<usize>,
}

impl MultiConnAccess for ConnsAccess<'_> {
    fn count(&self) -> usize {
        self.conns.len()
    }
    fn send(&mut self, idx: usize, bytes: u64) {
        self.conns[idx].ep.send(bytes);
        self.touched.push(idx);
    }
    fn acked(&self, idx: usize) -> u64 {
        self.conns[idx].ep.acked_bytes()
    }
    fn queued(&self, idx: usize) -> u64 {
        self.conns[idx].ep.queued_bytes()
    }
    fn established(&self, idx: usize) -> bool {
        self.conns[idx].ep.is_established()
    }
    fn flow(&self, idx: usize) -> Option<FlowKey> {
        Some(self.conns[idx].ep.flow_key())
    }
}

/// Egress rate limiter state (Figure 2's 2 Gbps token bucket).
struct RateLimiter {
    tb: TokenBucket,
    queue: VecDeque<Segment>,
}

/// One simulated server.
pub struct HostNode {
    ip: [u8; 4],
    nic: PortId,
    datapath: Arc<AcdcDatapath>,
    conns: Vec<Conn>,
    by_key: BTreeMap<FlowKey, usize>,
    multi_apps: Vec<(Box<dyn MultiApp>, Option<Nanos>)>,
    rl: Option<RateLimiter>,
    /// Earliest wake-up currently scheduled with the engine.
    armed: Option<Nanos>,
    /// Packets discarded at the NIC because checksum verification failed
    /// (the FCS model for injected corruption; see `acdc-faults`).
    /// Registered as `"host.corrupt_drops"` in the datapath's telemetry
    /// registry.
    corrupt_drops: Counter,
    /// Next scheduled vSwitch maintenance tick.
    next_dp_tick: Nanos,
    /// RSS-style worker engine: when set, every packet goes through
    /// [`WorkerEngine::dispatch`] (run-to-completion on the steered
    /// worker's sink) instead of the single-threaded entry points.
    workers: Option<WorkerEngine>,
}

impl HostNode {
    /// Create a host with address `ip`, NIC port `nic`, and a fresh
    /// datapath configured by `acdc`.
    pub fn new(ip: [u8; 4], nic: PortId, acdc: AcdcConfig) -> HostNode {
        let datapath = Arc::new(AcdcDatapath::new(acdc));
        let corrupt_drops = datapath
            .telemetry()
            .registry()
            .counter("host.corrupt_drops");
        HostNode {
            ip,
            nic,
            datapath,
            conns: Vec::new(),
            by_key: BTreeMap::new(),
            multi_apps: Vec::new(),
            rl: None,
            armed: None,
            corrupt_drops,
            next_dp_tick: DP_TICK_PERIOD,
            workers: None,
        }
    }

    /// Route this host's datapath through an `n`-worker engine
    /// (dispatch mode: packets are steered by flow hash and processed
    /// run-to-completion in delivery order, so enforcement semantics are
    /// identical to the single-threaded path for any `n`; only the
    /// observability routing changes). `n = 0` removes the engine.
    pub fn set_workers(&mut self, n: usize) {
        self.workers = (n > 0).then(|| WorkerEngine::new(&self.datapath, n));
    }

    /// The worker engine, if [`HostNode::set_workers`] installed one.
    pub fn worker_engine(&self) -> Option<&WorkerEngine> {
        self.workers.as_ref()
    }

    /// Swap in a freshly constructed datapath of the same configuration —
    /// the restore half of a checkpoint/restore cycle (DESIGN.md §15).
    /// The host's own NIC counter (`host.corrupt_drops`) is re-registered
    /// in the new hub with its current value carried over, the worker
    /// engine (if any) is rebuilt at the same worker count against the
    /// new datapath, and the maintenance-tick schedule is untouched.
    /// Returns the replaced datapath (still usable read-only, e.g. to
    /// compare against the restored one). A subsequent
    /// `AcdcDatapath::restore` on the new datapath overwrites the carried
    /// counter value with the checkpointed one, by name, like every other
    /// metric.
    pub fn replace_datapath(&mut self) -> Arc<AcdcDatapath> {
        let fresh = Arc::new(AcdcDatapath::new(self.datapath.config().clone()));
        let corrupt_drops = fresh.telemetry().registry().counter("host.corrupt_drops");
        corrupt_drops.add(self.corrupt_drops.get());
        let n = self.workers.as_ref().map_or(0, |e| e.workers());
        self.workers = (n > 0).then(|| WorkerEngine::new(&fresh, n));
        self.corrupt_drops = corrupt_drops;
        std::mem::replace(&mut self.datapath, fresh)
    }

    /// Run a segment through the datapath in the configured mode.
    fn dp_process(&self, now: Nanos, dir: Direction, seg: Segment) -> Verdict {
        match &self.workers {
            Some(engine) => engine.dispatch(&self.datapath, now, dir, seg),
            None => match dir {
                Direction::Egress => self.datapath.egress(now, seg),
                Direction::Ingress => self.datapath.ingress(now, seg),
            },
        }
    }

    /// Packets dropped at the NIC for failing checksum verification
    /// (corrupted in flight by a fault injector).
    pub fn corrupt_drops(&self) -> u64 {
        self.corrupt_drops.get()
    }

    /// The host's telemetry hub (shared with its datapath): NIC-level
    /// drops and all vSwitch events land here.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.datapath.telemetry()
    }

    /// The host's IP.
    pub fn ip(&self) -> [u8; 4] {
        self.ip
    }

    /// The host's vSwitch datapath (counters, flow table).
    pub fn datapath(&self) -> &AcdcDatapath {
        &self.datapath
    }

    /// Install an egress token-bucket rate limiter.
    pub fn set_rate_limit(&mut self, rate_bps: u64, burst_bytes: u64) {
        self.rl = Some(RateLimiter {
            tb: TokenBucket::new(rate_bps, burst_bytes, 0),
            queue: VecDeque::new(),
        });
    }

    /// Install a host-level application (e.g. one of the five concurrent
    /// trace generators of Figure 23). Returns its index.
    pub fn add_multi_app(&mut self, app: Box<dyn MultiApp>) -> usize {
        self.multi_apps.push((app, None));
        self.multi_apps.len() - 1
    }

    /// Host-level application by index.
    pub fn multi_app(&self, idx: usize) -> Option<&dyn MultiApp> {
        self.multi_apps.get(idx).map(|(a, _)| a.as_ref())
    }

    /// Number of host-level applications.
    pub fn multi_app_count(&self) -> usize {
        self.multi_apps.len()
    }

    /// Add a connection. Active ones open at `start_at`; passive ones
    /// wait for a SYN. Returns the connection index.
    pub fn add_connection(
        &mut self,
        cfg: TcpConfig,
        active: bool,
        start_at: Option<Nanos>,
        app: Option<Box<dyn App>>,
        taps: ConnTaps,
    ) -> usize {
        let key = FlowKey {
            src_ip: cfg.local_ip,
            dst_ip: cfg.remote_ip,
            src_port: cfg.local_port,
            dst_port: cfg.remote_port,
        };
        let ep = if active {
            Endpoint::new_active(cfg)
        } else {
            Endpoint::new_passive(cfg)
        };
        let idx = self.conns.len();
        self.conns.push(Conn {
            ep,
            app,
            start_at: if active {
                Some(start_at.unwrap_or(0))
            } else {
                None
            },
            stop_at: None,
            started: !active,
            stopped: false,
            app_wake: None,
            nic_queued: 0,
            tsq_blocked: false,
            cwnd_trace: taps.trace_cwnd.then(TimeSeries::new),
            rwnd_trace: taps.trace_rwnd.then(TimeSeries::new),
            tput: taps
                .tput_bin
                .map(|bin| acdc_stats::ThroughputMeter::new(0).with_bins(bin)),
            last_acked: 0,
        });
        self.by_key.insert(key, idx);
        idx
    }

    /// Schedule the end of a long-lived flow (Figure 14).
    pub fn set_stop_at(&mut self, conn: usize, at: Nanos) {
        self.conns[conn].stop_at = Some(at);
    }

    /// Immutable access to a connection's endpoint.
    pub fn endpoint(&self, conn: usize) -> &Endpoint {
        &self.conns[conn].ep
    }

    /// The per-connection application, if any.
    pub fn app(&self, conn: usize) -> Option<&dyn App> {
        self.conns[conn].app.as_deref()
    }

    /// Recorded congestion-window trace.
    pub fn cwnd_trace(&self, conn: usize) -> Option<&TimeSeries> {
        self.conns[conn].cwnd_trace.as_ref()
    }

    /// Recorded peer-receive-window trace.
    pub fn rwnd_trace(&self, conn: usize) -> Option<&TimeSeries> {
        self.conns[conn].rwnd_trace.as_ref()
    }

    /// Recorded throughput meter.
    pub fn tput(&self, conn: usize) -> Option<&acdc_stats::ThroughputMeter> {
        self.conns[conn].tput.as_ref()
    }

    /// Number of connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Push one endpoint-produced segment through the datapath toward the
    /// NIC; returns the wire bytes that ended up *waiting* in the NIC
    /// queue (TSQ accounting: packets that start serializing immediately
    /// never wait, and the engine only reports queue departures).
    fn send_out(&mut self, ctx: &mut Ctx<'_>, seg: Segment) -> u64 {
        let now = ctx.now();
        match self.dp_process(now, Direction::Egress, seg) {
            Verdict::Forward(s) => self.rl_transmit(ctx, s),
            Verdict::ForwardWithExtra(s, extra) => {
                self.rl_transmit(ctx, s) + self.rl_transmit(ctx, extra)
            }
            Verdict::Drop(_) => 0,
        }
    }

    /// Returns the TSQ-counted bytes (0 for packets that began
    /// transmission immediately or took the rate-limited path, which is
    /// exempt from TSQ accounting).
    fn rl_transmit(&mut self, ctx: &mut Ctx<'_>, seg: Segment) -> u64 {
        let now = ctx.now();
        let nic = self.nic;
        match &mut self.rl {
            None => {
                let queued = if ctx.port_busy(nic) {
                    seg.wire_len() as u64
                } else {
                    0
                };
                ctx.enqueue(nic, seg);
                queued
            }
            Some(rl) => {
                if rl.queue.is_empty() {
                    match rl.tb.try_consume(seg.wire_len(), now) {
                        Ok(()) => ctx.enqueue(nic, seg),
                        Err(_) => rl.queue.push_back(seg),
                    }
                } else {
                    rl.queue.push_back(seg);
                }
                0
            }
        }
    }

    fn rl_drain(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let nic = self.nic;
        if let Some(rl) = &mut self.rl {
            while let Some(front) = rl.queue.front() {
                match rl.tb.try_consume(front.wire_len(), now) {
                    Ok(()) => {
                        let seg = rl.queue.pop_front().unwrap();
                        ctx.enqueue(nic, seg);
                    }
                    Err(_) => break,
                }
            }
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let now = ctx.now();
        loop {
            if self.conns[idx].nic_queued >= TSQ_PER_CONN_CAP {
                self.conns[idx].tsq_blocked = true;
                break;
            }
            let out = self.conns[idx].ep.poll_transmit(now);
            match out {
                Some(seg) => {
                    let n = self.send_out(ctx, seg);
                    self.conns[idx].nic_queued += n;
                }
                None => break,
            }
        }
        self.conns[idx].sample_taps(now);
    }

    fn poll_app(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let now = ctx.now();
        let conn = &mut self.conns[idx];
        if let Some(app) = &mut conn.app {
            conn.app_wake = app.poll(now, &mut conn.ep);
        }
    }

    /// Poll the host-level apps; returns the connections they queued data
    /// on (the only ones that need pumping afterwards).
    fn poll_multi(&mut self, ctx: &mut Ctx<'_>) -> Vec<usize> {
        let now = ctx.now();
        let mut touched = Vec::new();
        for (app, wake) in &mut self.multi_apps {
            let mut access = ConnsAccess {
                conns: &mut self.conns,
                touched: Vec::new(),
            };
            *wake = app.poll(now, &mut access);
            touched.extend(access.touched);
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    fn service_conn(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let now = ctx.now();
        // Scheduled start / stop.
        let conn = &mut self.conns[idx];
        if !conn.started {
            if let Some(at) = conn.start_at {
                if now >= at {
                    conn.ep.open(now);
                    conn.started = true;
                }
            }
        }
        if !conn.stopped {
            if let Some(at) = conn.stop_at {
                if now >= at {
                    conn.ep.stop_sending();
                    conn.stopped = true;
                }
            }
        }
        // Endpoint timer.
        if self.conns[idx].ep.next_timer().is_some_and(|t| t <= now) {
            self.conns[idx].ep.on_timer(now);
        }
        self.poll_app(ctx, idx);
        self.pump(ctx, idx);
    }

    fn reschedule(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut earliest: Option<Nanos> = None;
        let mut fold = |t: Option<Nanos>| {
            if let Some(t) = t {
                earliest = Some(earliest.map_or(t, |e: Nanos| e.min(t)));
            }
        };
        for c in &self.conns {
            fold(c.ep.next_timer());
            fold(c.app_wake);
            if !c.started {
                fold(c.start_at);
            }
            if !c.stopped {
                fold(c.stop_at);
            }
        }
        for (_, wake) in &self.multi_apps {
            fold(*wake);
        }
        // Keep the vSwitch maintenance tick alive only while some flow
        // actually has unacknowledged data to watch.
        if self.conns.iter().any(|c| c.ep.in_flight() > 0) {
            fold(Some(self.next_dp_tick.max(now)));
        }
        if let Some(rl) = &mut self.rl {
            if let Some(front) = rl.queue.front() {
                // Probe the release time without consuming tokens.
                let mut probe = rl.tb.clone();
                match probe.try_consume(front.wire_len(), now) {
                    Ok(()) => fold(Some(now + 1)),
                    Err(at) => fold(Some(at)),
                }
            }
        }
        if let Some(t) = earliest {
            let t = t.max(now);
            // Avoid re-arming for a deadline we already have armed.
            if self.armed.is_none_or(|a| t < a || a <= now) {
                self.armed = Some(t);
                ctx.set_timer(t - now, 0);
            }
        }
    }
}

impl Node for HostNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, seg: Segment) {
        let now = ctx.now();
        // The single parse of the receive path: `try_meta` caches the
        // header metadata every later stage (checksum verify, vSwitch
        // ingress, endpoint demux + processing) reads. Frames that do not
        // even parse are counted at the port and dropped.
        let Ok(meta) = seg.try_meta() else {
            ctx.count_drop(self.nic, acdc_netsim::PortDropClass::Malformed);
            self.datapath.telemetry().record(
                now,
                NO_FLOW,
                EventKind::PacketDropped { cause: "malformed" },
            );
            return;
        };
        // NIC FCS check: damaged frames never reach the vSwitch (loss, as
        // on real hardware). Only injected corruption produces these — the
        // datapath's own rewrites all maintain checksums.
        if !seg.verify_checksums() {
            self.corrupt_drops.inc();
            self.datapath.telemetry().record(
                now,
                meta.flow,
                EventKind::PacketDropped {
                    cause: "corrupt-fcs",
                },
            );
            return;
        }
        let key = meta.flow.reverse();
        match self.dp_process(now, Direction::Ingress, seg) {
            Verdict::Forward(s) => {
                if let Some(&idx) = self.by_key.get(&key) {
                    self.conns[idx].ep.on_segment(now, &s);
                    self.service_conn(ctx, idx);
                    if !self.multi_apps.is_empty() {
                        for i in self.poll_multi(ctx) {
                            self.pump(ctx, i);
                        }
                    }
                }
            }
            Verdict::ForwardWithExtra(..) => unreachable!("ingress never generates packets"),
            Verdict::Drop(_) => {}
        }
        self.rl_drain(ctx);
        self.reschedule(ctx);
    }

    fn on_tx_start(&mut self, ctx: &mut Ctx<'_>, port: PortId, seg: &Segment) {
        // A packet of ours began serialization: release its TSQ budget and
        // refill the owning connection if the gate had closed on it.
        if port != self.nic {
            return;
        }
        // Locally generated packets always parse; the cache built at
        // egress rides along with the clone the engine hands back.
        let Ok(meta) = seg.try_meta() else {
            return;
        };
        if let Some(&idx) = self.by_key.get(&meta.flow) {
            let c = &mut self.conns[idx];
            c.nic_queued = c.nic_queued.saturating_sub(seg.wire_len() as u64);
            if c.tsq_blocked && c.nic_queued < TSQ_PER_CONN_CAP {
                c.tsq_blocked = false;
                self.pump(ctx, idx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.armed = None;
        self.rl_drain(ctx);
        let now = ctx.now();
        if now >= self.next_dp_tick {
            self.datapath.tick(now);
            // Flow-table garbage collection rides the same maintenance
            // tick: closed/idle entries are collected and the datapath
            // re-evaluates its health ladder against the new occupancy.
            self.datapath
                .gc(now, self.datapath.config().gc_idle_timeout);
            self.next_dp_tick = now + DP_TICK_PERIOD;
        }
        for idx in 0..self.conns.len() {
            self.service_conn(ctx, idx);
        }
        if !self.multi_apps.is_empty() {
            for i in self.poll_multi(ctx) {
                self.pump(ctx, i);
            }
        }
        self.rl_drain(ctx);
        self.reschedule(ctx);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
