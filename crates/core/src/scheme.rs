//! The congestion-control configurations the paper evaluates (§5,
//! "Experiment details").

use acdc_cc::CcKind;
use acdc_netsim::{SwitchConfig, MILLISECOND};
use acdc_stats::time::Nanos;
use acdc_tcp::TcpConfig;
use acdc_vswitch::{AcdcConfig, CcPolicy};

/// Default WRED/ECN marking threshold in bytes (≈ 65 × 1.5 KB packets,
/// the classic DCTCP configuration for 10 GbE).
pub const DEFAULT_MARK_THRESHOLD: u64 = 90_000;

/// One of the paper's end-to-end configurations.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// Baseline: host stack CUBIC, unmodified OVS, switch WRED/ECN off.
    Cubic,
    /// Target: host stack DCTCP, unmodified OVS, switch WRED/ECN on.
    Dctcp,
    /// AC/DC: the given host stack, AC/DC running `vswitch_cc` in OVS,
    /// switch WRED/ECN on.
    Acdc {
        /// The guest ("VM") stack.
        host_cc: CcKind,
        /// What AC/DC enforces (the paper always uses DCTCP; Figure 13
        /// uses the priority variant per flow via `policy` overrides).
        vswitch_cc: CcKind,
    },
    /// An arbitrary host stack over plain OVS (Figure 1's mixed-stack
    /// motivation runs). `ecn` controls both the stack capability and
    /// whether the switch marks.
    Plain {
        /// The guest stack.
        host_cc: CcKind,
        /// Negotiate ECN and enable switch WRED/ECN.
        ecn: bool,
    },
}

impl Scheme {
    /// Standard AC/DC (host CUBIC, vSwitch DCTCP).
    pub fn acdc() -> Scheme {
        Scheme::Acdc {
            host_cc: CcKind::Cubic,
            vswitch_cc: CcKind::Dctcp,
        }
    }

    /// AC/DC with a specific guest stack (Table 1 rows).
    pub fn acdc_with_host(host_cc: CcKind) -> Scheme {
        Scheme::Acdc {
            host_cc,
            vswitch_cc: CcKind::Dctcp,
        }
    }

    /// Short name for report rows.
    pub fn name(&self) -> String {
        match self {
            Scheme::Cubic => "CUBIC".into(),
            Scheme::Dctcp => "DCTCP".into(),
            Scheme::Acdc { host_cc, .. } => format!("AC/DC(host={host_cc})"),
            Scheme::Plain { host_cc, ecn } => {
                format!("{host_cc}{}", if *ecn { "+ecn" } else { "" })
            }
        }
    }

    /// The guest stack this scheme runs.
    pub fn host_cc(&self) -> CcKind {
        match self {
            Scheme::Cubic => CcKind::Cubic,
            Scheme::Dctcp => CcKind::Dctcp,
            Scheme::Acdc { host_cc, .. } => *host_cc,
            Scheme::Plain { host_cc, .. } => *host_cc,
        }
    }

    /// Is switch WRED/ECN marking enabled?
    pub fn wred_ecn(&self) -> bool {
        match self {
            Scheme::Cubic => false,
            Scheme::Dctcp | Scheme::Acdc { .. } => true,
            Scheme::Plain { ecn, .. } => *ecn,
        }
    }

    /// Switch configuration for this scheme.
    pub fn switch_config(&self, mark_threshold: u64) -> SwitchConfig {
        if self.wred_ecn() {
            SwitchConfig::with_wred_ecn(mark_threshold)
        } else {
            SwitchConfig::default()
        }
    }

    /// vSwitch datapath configuration for this scheme.
    pub fn acdc_config(&self, mtu: usize) -> AcdcConfig {
        match self {
            Scheme::Acdc { vswitch_cc, .. } => AcdcConfig {
                policy: CcPolicy::Uniform(*vswitch_cc),
                ..AcdcConfig::dctcp(mtu)
            },
            _ => AcdcConfig::disabled(mtu),
        }
    }

    /// Guest TCP configuration between two addresses. `iss` seeds the
    /// deterministic initial sequence number.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_config(
        &self,
        local_ip: [u8; 4],
        local_port: u16,
        remote_ip: [u8; 4],
        remote_port: u16,
        mtu: usize,
        iss: u32,
    ) -> TcpConfig {
        let mss = TcpConfig::mss_for_mtu(mtu);
        let mut cfg = TcpConfig::new(
            local_ip,
            local_port,
            remote_ip,
            remote_port,
            mss,
            self.host_cc(),
        );
        cfg.iss = iss;
        // Only a native DCTCP stack negotiates ECN end-to-end; under
        // AC/DC the vSwitch handles ECN and guests stay as they are.
        cfg.ecn = matches!(self.host_cc(), CcKind::Dctcp | CcKind::DctcpPriority(_))
            || matches!(self, Scheme::Plain { ecn: true, .. });
        cfg
    }

    /// The paper's RTOmin (system settings, §5).
    pub fn rto_min(&self) -> Nanos {
        10 * MILLISECOND
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_baseline_has_no_marking_or_acdc() {
        let s = Scheme::Cubic;
        assert!(!s.wred_ecn());
        assert!(s.switch_config(90_000).wred_ecn.is_none());
        assert!(!s.acdc_config(1500).enabled);
        assert_eq!(s.host_cc(), CcKind::Cubic);
    }

    #[test]
    fn dctcp_native_marks_but_no_acdc() {
        let s = Scheme::Dctcp;
        assert!(s.switch_config(90_000).wred_ecn.is_some());
        assert!(!s.acdc_config(1500).enabled);
        let cfg = s.tcp_config([1, 1, 1, 1], 1, [2, 2, 2, 2], 2, 1500, 0);
        assert!(cfg.ecn);
    }

    #[test]
    fn acdc_enables_datapath_and_marking() {
        let s = Scheme::acdc();
        assert!(s.switch_config(90_000).wred_ecn.is_some());
        assert!(s.acdc_config(9000).enabled);
        // The guest stack is CUBIC without ECN: AC/DC owns ECN.
        let cfg = s.tcp_config([1, 1, 1, 1], 1, [2, 2, 2, 2], 2, 9000, 0);
        assert!(!cfg.ecn);
        assert_eq!(cfg.mss, 8960);
    }

    #[test]
    fn scheme_names_are_distinct() {
        let names: Vec<String> = [
            Scheme::Cubic,
            Scheme::Dctcp,
            Scheme::acdc(),
            Scheme::acdc_with_host(CcKind::Vegas),
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup);
    }
}
