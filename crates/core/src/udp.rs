//! Unmanaged UDP traffic sources and sinks.
//!
//! The paper's prototype enforces congestion control for TCP only and
//! leaves DCTCP-friendly UDP tunnels as future work (§3.3). These nodes
//! let experiments ask what happens *today* when constant-bit-rate UDP —
//! which AC/DC forwards untouched — shares a fabric with enforced TCP:
//! non-ECT UDP meets the WRED drop ramp on a marking fabric, while on the
//! no-marking baseline it simply bloats the shared buffer.

use std::any::Any;

use acdc_netsim::{Ctx, Node, PortId};
use acdc_packet::{Ecn, Ipv4Repr, Segment, UdpRepr, PROTO_UDP};
use acdc_stats::time::{Nanos, SECOND};

/// A constant-bit-rate UDP source.
pub struct UdpSourceNode {
    nic: PortId,
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    dst_port: u16,
    /// Offered rate in bits/s.
    rate_bps: u64,
    /// Datagram payload bytes.
    payload: usize,
    /// ECN codepoint to stamp (NotEct models today's UDP apps; Ect0 models
    /// a DCTCP-friendly tunnel endpoint).
    ecn: Ecn,
    started: bool,
    sent_pkts: u64,
}

impl UdpSourceNode {
    /// Create a CBR source; the harness starts it with a timer at t=0.
    pub fn new(
        nic: PortId,
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        rate_bps: u64,
        payload: usize,
        ecn: Ecn,
    ) -> UdpSourceNode {
        assert!(rate_bps > 0 && payload > 0);
        UdpSourceNode {
            nic,
            src_ip,
            dst_ip,
            dst_port: 9_999,
            rate_bps,
            payload,
            ecn,
            started: false,
            sent_pkts: 0,
        }
    }

    /// Packets emitted so far.
    pub fn sent_pkts(&self) -> u64 {
        self.sent_pkts
    }

    fn interval(&self) -> Nanos {
        let wire = (self.payload + 28) as u64 * 8; // IP + UDP headers
        (wire * SECOND) / self.rate_bps
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>) {
        let seg = Segment::new_udp(
            Ipv4Repr {
                src_addr: self.src_ip,
                dst_addr: self.dst_ip,
                protocol: PROTO_UDP,
                ecn: self.ecn,
                payload_len: 0,
                ttl: 64,
            },
            UdpRepr {
                src_port: 10_000,
                dst_port: self.dst_port,
                payload_len: 0,
            },
            self.payload,
        );
        ctx.enqueue(self.nic, seg);
        self.sent_pkts += 1;
    }
}

impl Node for UdpSourceNode {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _seg: Segment) {
        // CBR sources ignore anything addressed to them.
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.started = true;
        self.emit(ctx);
        let dt = self.interval();
        ctx.set_timer(dt, 0);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A UDP sink: counts delivered datagrams and bytes.
#[derive(Default)]
pub struct UdpSinkNode {
    /// Datagrams received.
    pub rx_pkts: u64,
    /// Payload bytes received.
    pub rx_bytes: u64,
    /// Time of the last arrival.
    pub last_arrival: Nanos,
}

impl UdpSinkNode {
    /// New sink.
    pub fn new() -> UdpSinkNode {
        UdpSinkNode::default()
    }

    /// Average received rate in bits/s over `[0, until]`.
    pub fn rate_bps(&self, until: Nanos) -> f64 {
        if until == 0 {
            return 0.0;
        }
        self.rx_bytes as f64 * 8.0 * SECOND as f64 / until as f64
    }
}

impl Node for UdpSinkNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, seg: Segment) {
        self.rx_pkts += 1;
        self.rx_bytes += seg.payload_len() as u64;
        self.last_arrival = ctx.now();
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_netsim::{LinkSpec, Network};
    use acdc_stats::time::MILLISECOND;

    #[test]
    fn cbr_source_hits_its_rate() {
        let mut net = Network::new();
        let src = net.reserve_node();
        let sink = net.add_node(Box::new(UdpSinkNode::new()));
        let (sp, _) = net.connect(src, sink, LinkSpec::ten_gbe(1_000));
        net.install(
            src,
            Box::new(UdpSourceNode::new(
                sp,
                [10, 0, 0, 1],
                [10, 0, 0, 2],
                1_000_000_000, // 1 Gbps
                1_000,
                Ecn::NotEct,
            )),
        );
        net.schedule_timer_at(src, 0, 0);
        net.run_until(100 * MILLISECOND);
        let s = net.node_mut::<UdpSinkNode>(sink).unwrap();
        let rate = s.rate_bps(100 * MILLISECOND);
        // Payload rate ≈ offered × payload/wire fraction.
        let expect = 1e9 * 1000.0 / 1028.0;
        assert!(
            (rate - expect).abs() / expect < 0.02,
            "rate {rate:.0} want ≈{expect:.0}"
        );
    }

    #[test]
    fn sink_counts_exactly() {
        let mut net = Network::new();
        let src = net.reserve_node();
        let sink = net.add_node(Box::new(UdpSinkNode::new()));
        let (sp, _) = net.connect(src, sink, LinkSpec::ten_gbe(0));
        net.install(
            src,
            Box::new(UdpSourceNode::new(
                sp,
                [1, 1, 1, 1],
                [2, 2, 2, 2],
                8_000_000, // 1 pkt/ms at 1000B payload
                1_000,
                Ecn::Ect0,
            )),
        );
        net.schedule_timer_at(src, 0, 0);
        net.run_until(10 * MILLISECOND + 1);
        let sent = {
            let s = net.node_mut::<UdpSourceNode>(src).unwrap();
            s.sent_pkts()
        };
        let sink = net.node_mut::<UdpSinkNode>(sink).unwrap();
        assert_eq!(sink.rx_pkts, sent);
        assert_eq!(sink.rx_bytes, sent * 1_000);
    }
}
