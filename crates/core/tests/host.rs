//! Direct tests of the host node: TSQ gating, rate limiting, timer
//! plumbing — via a minimal two-host network.

use acdc_core::{ConnTaps, Scheme, Testbed};
use acdc_stats::time::{MILLISECOND, SECOND};
use acdc_workloads::apps::{BulkSender, MessageSender};
use acdc_workloads::FctKind;

/// A bulk flow and a mice flow sharing one host NIC: per-connection TSQ
/// must keep the mice from queueing behind the bulk flow's window.
#[test]
fn tsq_isolates_mice_from_bulk_on_the_same_nic() {
    let mut tb = Testbed::star(3, Scheme::Cubic, 9000);
    // Bulk host 0 → host 1; mice host 0 → host 2 (different receiver, so
    // only the *sender-side* NIC is shared).
    let _bulk = tb.add_flow(
        0,
        1,
        Some(Box::new(BulkSender::unlimited())),
        None,
        0,
        ConnTaps::default(),
    );
    let mice = tb.add_flow(
        0,
        2,
        Some(Box::new(MessageSender::new(
            16_384,
            5 * MILLISECOND,
            None,
            FctKind::Mice,
        ))),
        None,
        0,
        ConnTaps::default(),
    );
    tb.run_until(SECOND);
    let fct = tb.fct_of(mice);
    let mut d = fct.distribution_ms(FctKind::Mice);
    assert!(d.len() > 150, "mice kept flowing: {}", d.len());
    let p99 = d.percentile(99.0).unwrap();
    // Without TSQ the bulk flow would park its whole window (up to the
    // 4 MB receive buffer ≈ 3.3 ms of NIC time) ahead of every mouse.
    assert!(
        p99 < 1.0,
        "mice p99 {p99:.3} ms must stay well under bulk-window bufferbloat"
    );
}

/// The host egress token bucket caps the sum of all its flows.
#[test]
fn rate_limit_applies_to_the_whole_host() {
    let mut tb = Testbed::dumbbell(2, Scheme::Cubic, 9000);
    tb.host_mut(0).set_rate_limit(1_000_000_000, 32_000); // 1 Gbps
    let f1 = tb.add_bulk(0, 2, None, 0);
    let f2 = tb.add_bulk(0, 3, None, 0); // second flow, same host
    let unlimited = tb.add_bulk(1, 3, None, 0); // different host, no limit
    tb.run_until(200 * MILLISECOND);
    let g1 = tb.flow_gbps(f1, 0, 200 * MILLISECOND);
    let g2 = tb.flow_gbps(f2, 0, 200 * MILLISECOND);
    let gu = tb.flow_gbps(unlimited, 0, 200 * MILLISECOND);
    assert!(
        g1 + g2 < 1.1,
        "host limit must bound the sum: {g1:.2} + {g2:.2}"
    );
    assert!(gu > 5.0, "other hosts unaffected: {gu:.2}");
}

/// Flows scheduled to start later actually wait, and `set_flow_stop`
/// freezes a flow's progress at the requested time.
#[test]
fn start_and_stop_schedules_are_honoured() {
    let mut tb = Testbed::dumbbell(2, Scheme::Dctcp, 9000);
    let early = tb.add_bulk(0, 2, None, 0);
    let late = tb.add_bulk(1, 3, None, 100 * MILLISECOND);
    tb.set_flow_stop(early, 50 * MILLISECOND);
    tb.run_until(60 * MILLISECOND);
    let early_at_60 = tb.acked_bytes(early);
    assert!(early_at_60 > 0);
    assert_eq!(tb.acked_bytes(late), 0, "late flow not started yet");
    tb.run_until(200 * MILLISECOND);
    let early_final = tb.acked_bytes(early);
    assert!(
        early_final - early_at_60 < 2_000_000,
        "stopped flow only drained in-flight data ({} more bytes)",
        early_final - early_at_60
    );
    assert!(tb.acked_bytes(late) > 10_000_000, "late flow ran");
}

/// Datapath counters accumulate across all of a host's flows.
#[test]
fn per_host_datapath_counters_aggregate_flows() {
    let mut tb = Testbed::star(3, Scheme::acdc(), 1500);
    let _a = tb.add_bulk(0, 2, Some(2_000_000), 0);
    let _b = tb.add_bulk(0, 2, Some(2_000_000), 0);
    let _c = tb.add_bulk(1, 2, Some(2_000_000), 0);
    tb.run_until(SECOND);
    // Host 0 tracked 2 connections (4 directions), host 1 one (2).
    assert_eq!(tb.host_mut(0).datapath().flows(), 4);
    assert_eq!(tb.host_mut(1).datapath().flows(), 2);
    // The receiver host saw PACK-worthy traffic from both senders.
    let packs = tb
        .host_mut(2)
        .datapath()
        .counters()
        .packs_sent
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(packs > 0, "receiver-side module attached feedback");
}

/// Hosts keep distinct per-connection ephemeral ports.
#[test]
fn flow_keys_are_unique_per_host() {
    let mut tb = Testbed::star(3, Scheme::Dctcp, 1500);
    let h1 = tb.add_bulk(0, 2, Some(1_000), 0);
    let h2 = tb.add_bulk(0, 2, Some(1_000), 0);
    let h3 = tb.add_bulk(1, 2, Some(1_000), 0);
    assert_ne!(h1.key, h2.key);
    assert_ne!(h1.key.src_port, h2.key.src_port);
    assert_ne!(h1.key, h3.key);
    tb.run_until(100 * MILLISECOND);
    assert_eq!(tb.acked_bytes(h1), 1_000);
    assert_eq!(tb.acked_bytes(h2), 1_000);
    assert_eq!(tb.acked_bytes(h3), 1_000);
}
