//! Fault plans: declarative, seed-carrying descriptions of what goes wrong
//! on a link.

use std::collections::BTreeSet;

use acdc_stats::time::Nanos;

/// Random packet-loss process, applied per direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No random loss.
    None,
    /// Independent, identically distributed loss.
    Iid {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert-Elliott burst-loss channel. The chain starts in
    /// Good; for each packet it first takes a state transition, then drops
    /// the packet with the current state's loss probability. Mean burst
    /// length is `1 / p_exit_bad` packets.
    GilbertElliott {
        /// Good → Bad transition probability per packet.
        p_enter_bad: f64,
        /// Bad → Good transition probability per packet.
        p_exit_bad: f64,
        /// Drop probability while Good (usually 0).
        loss_good: f64,
        /// Drop probability while Bad (1.0 models hard outage bursts).
        loss_bad: f64,
    },
}

/// Probabilistic reordering: a selected packet is held back for `hold`
/// nanoseconds so that packets behind it overtake (a delay-swap window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderSpec {
    /// Probability a packet is selected for holding.
    pub p: f64,
    /// How long a selected packet is held. Choose longer than a few
    /// serialization times to guarantee overtaking.
    pub hold: Nanos,
}

/// Bounded random extra delay, uniform in `[0, max]`, per packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterSpec {
    /// Upper bound on the extra delay.
    pub max: Nanos,
}

/// Everything that can go wrong on one link, plus the seed that makes it
/// reproducible. Compile into a [`FaultProcess`](crate::FaultProcess)
/// directly or wrap a link with [`FaultyLink`](crate::FaultyLink).
///
/// The scripted `*_nth` sets index packets 1-based in arrival order and
/// apply only to the A→B direction of a [`FaultyLink`](crate::FaultyLink)
/// (both directions share the random processes, on independent RNG
/// streams derived from `seed`).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; per-direction RNG streams are derived from it.
    pub seed: u64,
    /// Random loss process.
    pub loss: LossModel,
    /// Reordering, if any.
    pub reorder: Option<ReorderSpec>,
    /// Per-packet duplication probability (the copy is delivered
    /// immediately, ahead of any held original).
    pub duplicate_p: f64,
    /// Per-packet header-corruption probability. Corrupted TCP segments
    /// keep parsing but fail [`Segment::verify_checksums`]
    /// (`acdc_packet::Segment::verify_checksums`), modelling bit errors
    /// caught by the receiver NIC's FCS/checksum check.
    pub corrupt_p: f64,
    /// Bounded random extra delay, if any.
    pub jitter: Option<JitterSpec>,
    /// Scheduled outages: the link discards everything arriving within
    /// any `[down, up)` interval (absolute simulation time).
    pub flaps: Vec<(Nanos, Nanos)>,
    /// Scripted: drop the n-th (1-based) *payload-carrying* packet.
    pub drop_data_nth: BTreeSet<u64>,
    /// Scripted: drop the n-th (1-based) packet of any kind.
    pub drop_any_nth: BTreeSet<u64>,
    /// Scripted: CE-mark the n-th (1-based) payload-carrying packet.
    pub mark_data_nth: BTreeSet<u64>,
}

impl FaultPlan {
    /// A healthy link (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            loss: LossModel::None,
            reorder: None,
            duplicate_p: 0.0,
            corrupt_p: 0.0,
            jitter: None,
            flaps: Vec::new(),
            drop_data_nth: BTreeSet::new(),
            drop_any_nth: BTreeSet::new(),
            mark_data_nth: BTreeSet::new(),
        }
    }

    /// Set i.i.d. loss with probability `p`.
    pub fn with_iid_loss(mut self, p: f64) -> FaultPlan {
        self.loss = LossModel::Iid { p };
        self
    }

    /// Set a Gilbert-Elliott burst-loss channel that drops every packet
    /// while Bad. Note the chain is packet-clocked: with `loss_bad` at
    /// 1.0, a burst only ends after `~1/p_exit_bad` *offered* packets, so
    /// an RTO-backoff sender probes its way out slowly — use
    /// [`FaultPlan::with_gilbert_elliott`] with `loss_bad < 1` for
    /// escapable bursts.
    pub fn with_burst_loss(self, p_enter_bad: f64, p_exit_bad: f64) -> FaultPlan {
        self.with_gilbert_elliott(p_enter_bad, p_exit_bad, 0.0, 1.0)
    }

    /// Set a fully parameterized Gilbert-Elliott loss channel.
    pub fn with_gilbert_elliott(
        mut self,
        p_enter_bad: f64,
        p_exit_bad: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> FaultPlan {
        self.loss = LossModel::GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good,
            loss_bad,
        };
        self
    }

    /// Hold packets with probability `p` for `hold` ns (reordering).
    pub fn with_reorder(mut self, p: f64, hold: Nanos) -> FaultPlan {
        self.reorder = Some(ReorderSpec { p, hold });
        self
    }

    /// Duplicate packets with probability `p`.
    pub fn with_duplication(mut self, p: f64) -> FaultPlan {
        self.duplicate_p = p;
        self
    }

    /// Corrupt packet headers with probability `p`.
    pub fn with_corruption(mut self, p: f64) -> FaultPlan {
        self.corrupt_p = p;
        self
    }

    /// Add uniform random delay in `[0, max]` ns.
    pub fn with_jitter(mut self, max: Nanos) -> FaultPlan {
        self.jitter = Some(JitterSpec { max });
        self
    }

    /// Schedule an outage: discard everything arriving in `[down, up)`.
    pub fn with_flap(mut self, down: Nanos, up: Nanos) -> FaultPlan {
        assert!(down < up, "flap interval must be non-empty");
        self.flaps.push((down, up));
        self
    }

    /// Script drops of specific data packets (1-based arrival index).
    pub fn drop_data(mut self, nths: impl IntoIterator<Item = u64>) -> FaultPlan {
        self.drop_data_nth.extend(nths);
        self
    }

    /// Script drops of specific packets of any kind (1-based index).
    pub fn drop_any(mut self, nths: impl IntoIterator<Item = u64>) -> FaultPlan {
        self.drop_any_nth.extend(nths);
        self
    }

    /// Script CE marks on specific data packets (1-based arrival index).
    pub fn mark_data(mut self, nths: impl IntoIterator<Item = u64>) -> FaultPlan {
        self.mark_data_nth.extend(nths);
        self
    }

    /// Is the link scheduled to be down at `now`?
    pub fn is_down(&self, now: Nanos) -> bool {
        self.flaps.iter().any(|&(down, up)| now >= down && now < up)
    }

    /// Does the plan contain any fault at all? A healthy plan compiles to
    /// a transparent link.
    pub fn is_healthy(&self) -> bool {
        self.loss == LossModel::None
            && self.reorder.is_none()
            && self.duplicate_p == 0.0
            && self.corrupt_p == 0.0
            && self.jitter.is_none()
            && self.flaps.is_empty()
            && self.drop_data_nth.is_empty()
            && self.drop_any_nth.is_empty()
            && self.mark_data_nth.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let plan = FaultPlan::new(7)
            .with_iid_loss(0.1)
            .with_reorder(0.05, 10_000)
            .with_duplication(0.01)
            .with_corruption(0.02)
            .with_jitter(5_000)
            .with_flap(1_000, 2_000)
            .drop_data([3, 5])
            .mark_data([4]);
        assert!(!plan.is_healthy());
        assert_eq!(plan.seed, 7);
        assert!(matches!(plan.loss, LossModel::Iid { p } if p == 0.1));
        assert!(plan.is_down(1_000));
        assert!(plan.is_down(1_999));
        assert!(!plan.is_down(2_000));
        assert!(!plan.is_down(999));
        assert!(plan.drop_data_nth.contains(&5));
    }

    #[test]
    fn healthy_plan_reports_healthy() {
        assert!(FaultPlan::new(0).is_healthy());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_flap_interval_rejected() {
        let _ = FaultPlan::new(0).with_flap(5, 5);
    }
}
