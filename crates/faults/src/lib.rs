//! # acdc-faults — deterministic fault injection for `acdc-netsim`
//!
//! AC/DC's central claim (paper §3.1) is that the vSwitch reconstructs
//! per-flow congestion state purely from observed packets. That claim is
//! only meaningful if reconstruction survives the things real networks do
//! to packets: drop them (independently or in bursts), reorder them,
//! duplicate them, corrupt them, and take whole links down. This crate
//! injects exactly those faults into a simulated link without modifying
//! any node logic:
//!
//! * [`FaultPlan`] — a declarative, seed-carrying description of the fault
//!   processes on one link (loss model, reorder, duplication, corruption,
//!   jitter, flap schedule, plus scripted per-packet drops/marks for
//!   property tests);
//! * [`FaultProcess`] — the pure decision engine compiled from a plan:
//!   feed it packets, get back [`Fate`]s. Deterministic: it draws from a
//!   `StdRng::seed_from_u64` stream in a fixed order, so the same seed and
//!   plan produce the identical fate sequence;
//! * [`FaultyLink`] — a [`Node`](acdc_netsim::Node) interposed on a link
//!   via [`Network::connect_interposed`](acdc_netsim::Network::connect_interposed),
//!   applying one independent `FaultProcess` per direction;
//! * [`FaultStats`] — per-direction counters (drops by cause, dups,
//!   reorders, corruptions), queryable after a run like
//!   [`PortCounters`](acdc_netsim::PortCounters).
//!
//! ## Determinism contract
//!
//! Same seed + same plan + same offered packet sequence ⇒ identical fate
//! sequence, identical `FaultStats`, identical simulation trace. All
//! randomness comes from seeded RNG streams; there is no wall clock and no
//! entropy source (xtask lint rules D001/D003 enforce this statically).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod plan;
pub mod process;

pub use link::{FaultyLink, LinkFaultStats};
pub use plan::{FaultPlan, JitterSpec, LossModel, ReorderSpec};
pub use process::{Delivery, DropCause, Fate, FaultProcess, FaultStats};
