//! The pure decision engine compiled from a [`FaultPlan`]: no netsim
//! types, so it can also drive hand-rolled test pipes (e.g. the TCP
//! property tests).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use acdc_stats::time::Nanos;
use acdc_telemetry::{Counter, Telemetry};

use crate::plan::{FaultPlan, LossModel};

/// Why a packet was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The random loss process (i.i.d. or Gilbert-Elliott) selected it.
    Random,
    /// A scripted `drop_data_nth` / `drop_any_nth` entry selected it.
    Scripted,
    /// The link was down (flap schedule).
    LinkDown,
}

/// How a delivered packet is to be handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Delivery {
    /// Extra delay before delivery (reorder hold + jitter).
    pub delay: Nanos,
    /// Deliver an extra copy immediately (ahead of any held original).
    pub duplicate: bool,
    /// Damage the header so the receiver's checksum verification fails.
    pub corrupt: bool,
    /// CE-mark the packet (scripted marks; the applier should respect
    /// ECT).
    pub mark_ce: bool,
    /// Part of `delay` is a reorder hold (distinguishes a deliberate
    /// reordering from plain jitter in telemetry events).
    pub reordered: bool,
}

/// The fate of one offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Discard the packet.
    Drop(DropCause),
    /// Deliver the packet, possibly modified/delayed/duplicated.
    Deliver(Delivery),
}

/// Counters for one direction of a faulty link. All-`u64` and `Eq`, so
/// determinism tests can require byte-identical stats across runs. This
/// is the snapshot *view* of the live [`Counter`] cells inside
/// [`FaultProcess`], loaded by [`FaultProcess::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets offered to the process.
    pub offered: u64,
    /// Packets the process decided to deliver (a duplicated packet counts
    /// once here; the extra copy is counted in `duplicated`).
    pub delivered: u64,
    /// Drops by the random loss process.
    pub random_drops: u64,
    /// Drops by scripted `drop_*_nth` entries.
    pub scripted_drops: u64,
    /// Drops because the link was down.
    pub flap_drops: u64,
    /// Extra copies emitted by duplication.
    pub duplicated: u64,
    /// Packets held back to force reordering.
    pub reordered: u64,
    /// Packets with corrupted headers.
    pub corrupted: u64,
    /// Packets given random extra delay (jitter; excludes reorder holds).
    pub jittered: u64,
    /// Packets CE-marked by scripted marks.
    pub ce_marked: u64,
}

impl FaultStats {
    /// Total packets discarded, all causes.
    pub fn total_drops(&self) -> u64 {
        self.random_drops + self.scripted_drops + self.flap_drops
    }

    /// Field-wise sum (for combining directions).
    pub fn merged(&self, other: &FaultStats) -> FaultStats {
        FaultStats {
            offered: self.offered + other.offered,
            delivered: self.delivered + other.delivered,
            random_drops: self.random_drops + other.random_drops,
            scripted_drops: self.scripted_drops + other.scripted_drops,
            flap_drops: self.flap_drops + other.flap_drops,
            duplicated: self.duplicated + other.duplicated,
            reordered: self.reordered + other.reordered,
            corrupted: self.corrupted + other.corrupted,
            jittered: self.jittered + other.jittered,
            ce_marked: self.ce_marked + other.ce_marked,
        }
    }
}

/// The live counter cells behind [`FaultStats`]. Standalone until a
/// telemetry hub adopts them (see [`FaultProcess::register_metrics`]);
/// either way the same cells back [`FaultProcess::stats`], so no value
/// is lost when a registry attaches mid-run.
#[derive(Debug)]
struct FaultCounters {
    offered: Counter,
    delivered: Counter,
    random_drops: Counter,
    scripted_drops: Counter,
    flap_drops: Counter,
    duplicated: Counter,
    reordered: Counter,
    corrupted: Counter,
    jittered: Counter,
    ce_marked: Counter,
}

impl FaultCounters {
    fn standalone() -> FaultCounters {
        FaultCounters {
            offered: Counter::standalone(),
            delivered: Counter::standalone(),
            random_drops: Counter::standalone(),
            scripted_drops: Counter::standalone(),
            flap_drops: Counter::standalone(),
            duplicated: Counter::standalone(),
            reordered: Counter::standalone(),
            corrupted: Counter::standalone(),
            jittered: Counter::standalone(),
            ce_marked: Counter::standalone(),
        }
    }

    fn register(&self, telemetry: &Telemetry, prefix: &str) {
        let reg = telemetry.registry();
        let each: [(&str, &Counter); 10] = [
            ("offered", &self.offered),
            ("delivered", &self.delivered),
            ("random_drops", &self.random_drops),
            ("scripted_drops", &self.scripted_drops),
            ("flap_drops", &self.flap_drops),
            ("duplicated", &self.duplicated),
            ("reordered", &self.reordered),
            ("corrupted", &self.corrupted),
            ("jittered", &self.jittered),
            ("ce_marked", &self.ce_marked),
        ];
        for (field, cell) in each {
            reg.adopt_counter(format!("{prefix}.{field}"), cell);
        }
    }

    fn snapshot(&self) -> FaultStats {
        FaultStats {
            offered: self.offered.get(),
            delivered: self.delivered.get(),
            random_drops: self.random_drops.get(),
            scripted_drops: self.scripted_drops.get(),
            flap_drops: self.flap_drops.get(),
            duplicated: self.duplicated.get(),
            reordered: self.reordered.get(),
            corrupted: self.corrupted.get(),
            jittered: self.jittered.get(),
            ce_marked: self.ce_marked.get(),
        }
    }
}

/// One direction's fault process: plan + RNG stream + channel state.
///
/// ## Determinism contract
///
/// [`FaultProcess::decide`] consumes RNG draws in a fixed order per packet
/// (loss → duplication → corruption → reorder → jitter), with each draw
/// gated only on the *plan* (a probability of 0 / absent spec draws
/// nothing). Hence same plan + same seed + same `(now, is_data)` call
/// sequence ⇒ identical [`Fate`] sequence and identical [`FaultStats`].
pub struct FaultProcess {
    plan: FaultPlan,
    rng: StdRng,
    /// Gilbert-Elliott channel state: currently in Bad?
    ge_bad: bool,
    /// Apply the scripted `*_nth` sets (A→B direction only on links).
    apply_scripts: bool,
    seen_any: u64,
    seen_data: u64,
    stats: FaultCounters,
}

impl FaultProcess {
    /// Compile `plan` into a process drawing from `seed`'s RNG stream.
    /// `apply_scripts` enables the scripted `*_nth` sets (a
    /// [`FaultyLink`](crate::FaultyLink) enables them only A→B).
    pub fn new(plan: &FaultPlan, seed: u64, apply_scripts: bool) -> FaultProcess {
        FaultProcess {
            plan: plan.clone(),
            rng: StdRng::seed_from_u64(seed),
            ge_bad: false,
            apply_scripts,
            seen_any: 0,
            seen_data: 0,
            stats: FaultCounters::standalone(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats.snapshot()
    }

    /// Adopt this process's counter cells into `telemetry`'s registry as
    /// `"{prefix}.offered"`, `"{prefix}.random_drops"`, … metrics.
    /// Already-accumulated values carry over. Panics if the prefix was
    /// registered before.
    pub fn register_metrics(&self, telemetry: &Telemetry, prefix: &str) {
        self.stats.register(telemetry, prefix);
    }

    /// Decide the fate of the next offered packet. `now` is virtual time
    /// (for the flap schedule); `is_data` selects the scripted data-packet
    /// indices (payload-carrying segments).
    pub fn decide(&mut self, now: Nanos, is_data: bool) -> Fate {
        self.stats.offered.inc();
        self.seen_any += 1;
        if is_data {
            self.seen_data += 1;
        }

        if self.plan.is_down(now) {
            self.stats.flap_drops.inc();
            return Fate::Drop(DropCause::LinkDown);
        }

        if self.apply_scripts {
            let scripted = self.plan.drop_any_nth.contains(&self.seen_any)
                || (is_data && self.plan.drop_data_nth.contains(&self.seen_data));
            if scripted {
                self.stats.scripted_drops.inc();
                return Fate::Drop(DropCause::Scripted);
            }
        }

        let lost = match self.plan.loss {
            LossModel::None => false,
            LossModel::Iid { p } => p > 0.0 && self.rng.random_bool(p),
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                // Transition first, then loss, one draw each — fixed draw
                // order keeps the stream aligned across runs.
                let flip = self
                    .rng
                    .random_bool(if self.ge_bad { p_exit_bad } else { p_enter_bad });
                if flip {
                    self.ge_bad = !self.ge_bad;
                }
                let p = if self.ge_bad { loss_bad } else { loss_good };
                p > 0.0 && self.rng.random_bool(p)
            }
        };
        if lost {
            self.stats.random_drops.inc();
            return Fate::Drop(DropCause::Random);
        }

        let mut d = Delivery::default();
        if self.plan.duplicate_p > 0.0 && self.rng.random_bool(self.plan.duplicate_p) {
            d.duplicate = true;
            self.stats.duplicated.inc();
        }
        if self.plan.corrupt_p > 0.0 && self.rng.random_bool(self.plan.corrupt_p) {
            d.corrupt = true;
            self.stats.corrupted.inc();
        }
        if let Some(r) = self.plan.reorder {
            if r.p > 0.0 && self.rng.random_bool(r.p) {
                d.delay += r.hold;
                d.reordered = true;
                self.stats.reordered.inc();
            }
        }
        if let Some(j) = self.plan.jitter {
            if j.max > 0 {
                let extra = self.rng.random_range(0..=j.max);
                if extra > 0 {
                    self.stats.jittered.inc();
                }
                d.delay += extra;
            }
        }
        if self.apply_scripts && is_data && self.plan.mark_data_nth.contains(&self.seen_data) {
            d.mark_ce = true;
            self.stats.ce_marked.inc();
        }
        self.stats.delivered.inc();
        Fate::Deliver(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fates(plan: &FaultPlan, n: u64) -> Vec<Fate> {
        let mut p = FaultProcess::new(plan, plan.seed, true);
        (0..n).map(|i| p.decide(i * 1_000, true)).collect()
    }

    #[test]
    fn same_seed_same_fates() {
        let plan = FaultPlan::new(42)
            .with_iid_loss(0.2)
            .with_duplication(0.1)
            .with_corruption(0.05)
            .with_reorder(0.1, 7_000)
            .with_jitter(3_000);
        assert_eq!(fates(&plan, 500), fates(&plan, 500));
        let mut a = FaultProcess::new(&plan, plan.seed, true);
        let mut b = FaultProcess::new(&plan, plan.seed, true);
        for i in 0..500 {
            let _ = a.decide(i, i % 3 == 0);
            let _ = b.decide(i, i % 3 == 0);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_diverge() {
        let p1 = FaultPlan::new(1).with_iid_loss(0.5);
        let p2 = FaultPlan::new(2).with_iid_loss(0.5);
        let f1 = fates(&p1, 200);
        let mut proc2 = FaultProcess::new(&p2, p2.seed, true);
        let f2: Vec<Fate> = (0..200).map(|i| proc2.decide(i * 1_000, true)).collect();
        assert_ne!(f1, f2);
    }

    #[test]
    fn iid_loss_rate_is_plausible() {
        let plan = FaultPlan::new(9).with_iid_loss(0.3);
        let mut p = FaultProcess::new(&plan, plan.seed, true);
        for i in 0..10_000 {
            let _ = p.decide(i, true);
        }
        let rate = p.stats().random_drops as f64 / 10_000.0;
        assert!((0.25..0.35).contains(&rate), "rate={rate}");
    }

    #[test]
    fn gilbert_elliott_loss_is_bursty() {
        // Long Bad dwell (p_exit 0.05 → mean burst 20) with rare entry:
        // drops must cluster into runs far longer than i.i.d. would give.
        let plan = FaultPlan::new(3).with_burst_loss(0.01, 0.05);
        let mut p = FaultProcess::new(&plan, plan.seed, true);
        let mut run = 0u64;
        let mut max_run = 0u64;
        for i in 0..20_000 {
            match p.decide(i, true) {
                Fate::Drop(DropCause::Random) => {
                    run += 1;
                    max_run = max_run.max(run);
                }
                _ => run = 0,
            }
        }
        assert!(p.stats().random_drops > 0);
        assert!(max_run >= 5, "expected loss bursts, max run {max_run}");
    }

    #[test]
    fn scripted_drops_and_marks_hit_exact_indices() {
        let plan = FaultPlan::new(0)
            .drop_data([2, 4])
            .mark_data([3])
            .drop_any([7]);
        let mut p = FaultProcess::new(&plan, plan.seed, true);
        // Packets 1..=6 are data; packet 7 is a pure ACK.
        let mut dropped_data = Vec::new();
        for n in 1..=6u64 {
            match p.decide(n, true) {
                Fate::Drop(DropCause::Scripted) => dropped_data.push(n),
                Fate::Deliver(d) => assert_eq!(d.mark_ce, n == 3, "packet {n}"),
                f => panic!("unexpected fate {f:?}"),
            }
        }
        assert_eq!(dropped_data, vec![2, 4]);
        assert_eq!(p.decide(7, false), Fate::Drop(DropCause::Scripted));
        let s = p.stats();
        assert_eq!(s.scripted_drops, 3);
        assert_eq!(s.ce_marked, 1);
    }

    #[test]
    fn scripts_disabled_are_ignored() {
        let plan = FaultPlan::new(0).drop_data([1, 2, 3]);
        let mut p = FaultProcess::new(&plan, plan.seed, false);
        for n in 1..=3u64 {
            assert!(matches!(p.decide(n, true), Fate::Deliver(_)));
        }
        assert_eq!(p.stats().scripted_drops, 0);
    }

    #[test]
    fn flap_window_drops_everything_inside_it() {
        let plan = FaultPlan::new(0).with_flap(1_000, 2_000);
        let mut p = FaultProcess::new(&plan, plan.seed, true);
        assert!(matches!(p.decide(999, true), Fate::Deliver(_)));
        assert_eq!(p.decide(1_000, true), Fate::Drop(DropCause::LinkDown));
        assert_eq!(p.decide(1_999, false), Fate::Drop(DropCause::LinkDown));
        assert!(matches!(p.decide(2_000, true), Fate::Deliver(_)));
        assert_eq!(p.stats().flap_drops, 2);
    }

    #[test]
    fn healthy_plan_is_transparent() {
        let plan = FaultPlan::new(5);
        let mut p = FaultProcess::new(&plan, plan.seed, true);
        for i in 0..100 {
            assert_eq!(p.decide(i, i % 2 == 0), Fate::Deliver(Delivery::default()));
        }
        let s = p.stats();
        assert_eq!(s.delivered, 100);
        assert_eq!(s.total_drops(), 0);
    }

    #[test]
    fn merged_sums_fieldwise() {
        let a = FaultStats {
            offered: 10,
            delivered: 8,
            random_drops: 2,
            ..FaultStats::default()
        };
        let b = FaultStats {
            offered: 5,
            delivered: 5,
            duplicated: 1,
            ..FaultStats::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.offered, 15);
        assert_eq!(m.delivered, 13);
        assert_eq!(m.random_drops, 2);
        assert_eq!(m.duplicated, 1);
        assert_eq!(m.total_drops(), 2);
    }
}
