//! [`FaultyLink`]: a [`Node`] interposed on a netsim link that applies one
//! [`FaultProcess`] per direction.
//!
//! Wire it in with
//! [`Network::connect_interposed`](acdc_netsim::Network::connect_interposed):
//!
//! ```
//! use acdc_faults::{FaultPlan, FaultyLink};
//! use acdc_netsim::{LinkSpec, Network};
//!
//! let mut net = Network::new();
//! let a = net.reserve_node();
//! let b = net.reserve_node();
//! let plan = FaultPlan::new(1).with_iid_loss(0.01);
//! let (_pa, _pb, _tap) = net.connect_interposed(a, b, LinkSpec::ten_gbe(1_500), |ta, tb| {
//!     Box::new(FaultyLink::new(&plan, ta, tb))
//! });
//! ```

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use acdc_netsim::{Ctx, Node, PortDropClass, PortId};
use acdc_packet::Segment;
use acdc_stats::time::Nanos;
use acdc_telemetry::{EventKind, Telemetry, NO_FLOW};

use crate::plan::FaultPlan;
use crate::process::{DropCause, Fate, FaultProcess, FaultStats};

/// Per-direction counters of a [`FaultyLink`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaultStats {
    /// Faults applied to traffic entering on port A (heading to B).
    pub a_to_b: FaultStats,
    /// Faults applied to traffic entering on port B (heading to A).
    pub b_to_a: FaultStats,
}

impl LinkFaultStats {
    /// Both directions combined.
    pub fn total(&self) -> FaultStats {
        self.a_to_b.merged(&self.b_to_a)
    }
}

/// Seed salt so the two directions draw from distinct RNG streams even
/// though they share one plan seed.
const B_TO_A_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// A transparent-unless-faulty interposer node. Direction A→B runs the
/// plan's scripted `*_nth` sets; both directions run the random processes
/// on independent streams derived from `plan.seed`.
pub struct FaultyLink {
    port_a: PortId,
    port_b: PortId,
    ab: FaultProcess,
    ba: FaultProcess,
    /// Held packets (reorder/jitter), keyed by timer token.
    pending: BTreeMap<u64, (PortId, Segment)>,
    next_token: u64,
    /// Event sink for `fault-injected` events (and the registry the
    /// per-direction counters are adopted into).
    telemetry: Option<Arc<Telemetry>>,
}

impl FaultyLink {
    /// Build the interposer for the tap ports returned by
    /// `connect_interposed` (`port_a` faces node A, `port_b` faces B).
    pub fn new(plan: &FaultPlan, port_a: PortId, port_b: PortId) -> FaultyLink {
        FaultyLink {
            port_a,
            port_b,
            ab: FaultProcess::new(plan, plan.seed, true),
            ba: FaultProcess::new(plan, plan.seed ^ B_TO_A_SALT, false),
            pending: BTreeMap::new(),
            next_token: 0,
            telemetry: None,
        }
    }

    /// Attach a telemetry hub (typically the one shared with the network
    /// and the endpoints under test): every fault the link applies is
    /// recorded as a `fault-injected` event carrying the victim packet's
    /// flow key, and both directions' counters are adopted into the
    /// registry under `"{prefix}.ab.*"` / `"{prefix}.ba.*"` names.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>, prefix: &str) {
        self.ab
            .register_metrics(&telemetry, &format!("{prefix}.ab"));
        self.ba
            .register_metrics(&telemetry, &format!("{prefix}.ba"));
        self.telemetry = Some(telemetry);
    }

    fn trace(&self, now: Nanos, seg: &Segment, effect: &'static str) {
        if let Some(t) = &self.telemetry {
            let flow = seg.try_meta().map(|m| m.flow).unwrap_or(NO_FLOW);
            t.record(now, flow, EventKind::FaultInjected { effect });
        }
    }

    /// Counters for both directions.
    pub fn stats(&self) -> LinkFaultStats {
        LinkFaultStats {
            a_to_b: self.ab.stats(),
            b_to_a: self.ba.stats(),
        }
    }

    /// Packets currently held back (reorder/jitter) and not yet released.
    pub fn held_packets(&self) -> usize {
        self.pending.len()
    }

    /// The tap port facing node A (carries the attribution for B→A fault
    /// drops in [`PortCounters`](acdc_netsim::PortCounters)).
    pub fn port_facing_a(&self) -> PortId {
        self.port_a
    }

    /// The tap port facing node B (carries the attribution for A→B fault
    /// drops).
    pub fn port_facing_b(&self) -> PortId {
        self.port_b
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, out: PortId, seg: Segment, delay: Nanos) {
        if delay == 0 {
            ctx.enqueue(out, seg);
        } else {
            let token = self.next_token;
            self.next_token += 1;
            self.pending.insert(token, (out, seg));
            ctx.set_timer(delay, token);
        }
    }
}

impl Node for FaultyLink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut seg: Segment) {
        let now = ctx.now();
        let (proc_, out) = if port == self.port_a {
            (&mut self.ab, self.port_b)
        } else {
            (&mut self.ba, self.port_a)
        };
        let is_data = seg.payload_len() > 0;
        match proc_.decide(now, is_data) {
            Fate::Drop(cause) => {
                let effect = match cause {
                    DropCause::Random => "drop-random",
                    DropCause::Scripted => "drop-scripted",
                    DropCause::LinkDown => "drop-link-down",
                };
                self.trace(now, &seg, effect);
                let flow = seg.try_meta().map(|m| m.flow).unwrap_or(NO_FLOW);
                ctx.count_drop_for(out, PortDropClass::FaultInjected, flow);
            }
            Fate::Deliver(d) => {
                if d.corrupt {
                    // Damage the header so the receiver's checksum check
                    // fails while the packet still parses: one raw window
                    // bit, checksum left stale, cached meta kept in step.
                    self.trace(now, &seg, "corrupt");
                    seg.corrupt_window_bit();
                }
                if d.mark_ce && seg.ecn().is_ect() {
                    self.trace(now, &seg, "ce-mark");
                    seg.mark_ce();
                }
                if d.reordered {
                    self.trace(now, &seg, "reorder");
                } else if d.delay > 0 {
                    self.trace(now, &seg, "jitter");
                }
                if d.duplicate {
                    // The copy goes out immediately, ahead of a held
                    // original.
                    self.trace(now, &seg, "duplicate");
                    self.send(ctx, out, seg.clone(), 0);
                }
                self.send(ctx, out, seg, d.delay);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some((out, seg)) = self.pending.remove(&token) {
            ctx.enqueue(out, seg);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
