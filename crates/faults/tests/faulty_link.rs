//! Netsim-level behaviour of `FaultyLink`: each fault class observable at
//! a sink, stats consistent with deliveries, and byte-identical stats
//! across same-seed runs.

use std::any::Any;

use acdc_faults::{FaultPlan, FaultyLink, LinkFaultStats};
use acdc_netsim::{Ctx, LinkSpec, Network, Node, NodeId, PortId};
use acdc_packet::{Ecn, Ipv4Repr, Segment, TcpFlags, TcpRepr, PROTO_TCP};
use acdc_stats::time::Nanos;

const SECOND: Nanos = 1_000_000_000;

fn seg(seq: u32, payload: usize) -> Segment {
    let ip = Ipv4Repr {
        src_addr: [10, 0, 0, 1],
        dst_addr: [10, 0, 0, 2],
        protocol: PROTO_TCP,
        ecn: Ecn::Ect0,
        payload_len: 0,
        ttl: 64,
    };
    let mut t = TcpRepr::new(1000, 2000);
    t.seq = seq.into();
    t.flags = TcpFlags::ACK;
    Segment::new_tcp(ip, t, payload)
}

/// Sends `n` data packets back to back at t=0, with increasing seq.
struct Blaster {
    port: PortId,
    n: u32,
}

impl Node for Blaster {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _seg: Segment) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        for i in 0..self.n {
            ctx.enqueue(self.port, seg(i, 1000));
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records arrival time, seq, and checksum validity of everything.
#[derive(Default)]
struct Sink {
    got: Vec<(Nanos, u32, bool, bool)>, // (time, seq, checksums_ok, ce)
}

impl Node for Sink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, seg: Segment) {
        self.got.push((
            ctx.now(),
            seg.tcp().seq_number().raw(),
            seg.verify_checksums(),
            seg.ecn().is_ce(),
        ));
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One arrival at the sink: (time, seq, checksums ok, CE marked).
type Arrival = (Nanos, u32, bool, bool);

/// Blaster --(faulty 10GbE)--> Sink; returns arrivals + link stats.
fn run(plan: &FaultPlan, n: u32) -> (Vec<Arrival>, LinkFaultStats, Network, NodeId) {
    let mut net = Network::new();
    let a = net.reserve_node();
    let b = net.add_node(Box::new(Sink::default()));
    let (pa, _pb, tap) = net.connect_interposed(a, b, LinkSpec::ten_gbe(1_500), |ta, tb| {
        Box::new(FaultyLink::new(plan, ta, tb))
    });
    net.install(a, Box::new(Blaster { port: pa, n }));
    net.schedule_timer_at(a, 0, 0);
    net.run_until(SECOND);
    let stats = net.node_mut::<FaultyLink>(tap).unwrap().stats();
    let got = std::mem::take(&mut net.node_mut::<Sink>(b).unwrap().got);
    (got, stats, net, tap)
}

#[test]
fn healthy_link_is_transparent() {
    let plan = FaultPlan::new(1);
    let (got, stats, _, _) = run(&plan, 50);
    assert_eq!(got.len(), 50);
    let seqs: Vec<u32> = got.iter().map(|g| g.1).collect();
    assert_eq!(seqs, (0..50).collect::<Vec<u32>>(), "in order");
    assert!(got.iter().all(|g| g.2), "all checksums valid");
    assert_eq!(stats.a_to_b.delivered, 50);
    assert_eq!(stats.total().total_drops(), 0);
}

#[test]
fn iid_loss_drops_and_attributes_to_port_counters() {
    let plan = FaultPlan::new(7).with_iid_loss(0.2);
    let (got, stats, mut net, tap) = run(&plan, 200);
    assert!(stats.a_to_b.random_drops > 10, "{stats:?}");
    assert_eq!(got.len() as u64, stats.a_to_b.delivered);
    assert_eq!(
        stats.a_to_b.delivered + stats.a_to_b.random_drops,
        200,
        "every packet accounted for"
    );
    let pb_facing = net.node_mut::<FaultyLink>(tap).unwrap().port_facing_b();
    let pc = net.port_counters(pb_facing);
    assert_eq!(pc.fault_drops, stats.a_to_b.total_drops());
    assert_eq!(pc.queue_full_drops, 0);
}

#[test]
fn duplication_emits_extra_copies() {
    let plan = FaultPlan::new(11).with_duplication(0.25);
    let (got, stats, _, _) = run(&plan, 100);
    assert!(stats.a_to_b.duplicated > 5, "{stats:?}");
    assert_eq!(
        got.len() as u64,
        stats.a_to_b.delivered + stats.a_to_b.duplicated
    );
}

#[test]
fn reorder_holds_packets_past_their_successors() {
    let plan = FaultPlan::new(13).with_reorder(0.2, 50_000);
    let (got, stats, _, _) = run(&plan, 100);
    assert_eq!(got.len(), 100, "reorder never loses packets");
    assert!(stats.a_to_b.reordered > 5, "{stats:?}");
    let seqs: Vec<u32> = got.iter().map(|g| g.1).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_ne!(seqs, sorted, "arrival order must differ from send order");
    assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
}

#[test]
fn corruption_breaks_checksums_but_not_parsing() {
    let plan = FaultPlan::new(17).with_corruption(0.3);
    let (got, stats, _, _) = run(&plan, 100);
    assert_eq!(got.len(), 100, "corruption does not drop at the link");
    let bad = got.iter().filter(|g| !g.2).count() as u64;
    assert!(bad > 10);
    assert_eq!(bad, stats.a_to_b.corrupted);
}

#[test]
fn jitter_delays_but_delivers_everything() {
    let base = FaultPlan::new(19);
    let (clean, _, _, _) = run(&base, 50);
    let plan = FaultPlan::new(19).with_jitter(100_000);
    let (got, stats, _, _) = run(&plan, 50);
    assert_eq!(got.len(), 50);
    assert!(stats.a_to_b.jittered > 10, "{stats:?}");
    let last_clean = clean.iter().map(|g| g.0).max().unwrap();
    let last_jittered = got.iter().map(|g| g.0).max().unwrap();
    assert!(last_jittered > last_clean, "jitter must stretch the tail");
}

#[test]
fn scripted_marks_set_ce_on_exact_data_packets() {
    let plan = FaultPlan::new(23).mark_data([1, 3]);
    let (got, stats, _, _) = run(&plan, 5);
    let ce: Vec<u32> = got.iter().filter(|g| g.3).map(|g| g.1).collect();
    assert_eq!(ce, vec![0, 2], "1st and 3rd data packets (seq 0 and 2)");
    assert_eq!(stats.a_to_b.ce_marked, 2);
}

/// A blaster that sends one packet every 100 µs (so a flap window cleanly
/// covers a contiguous run of them).
struct Pacer {
    port: PortId,
    sent: u32,
    n: u32,
}

impl Node for Pacer {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _seg: Segment) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.enqueue(self.port, seg(self.sent, 1000));
        self.sent += 1;
        if self.sent < self.n {
            ctx.set_timer(100_000, 0);
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn flap_drops_exactly_the_down_window() {
    // 20 packets at 0, 100µs, ..., 1.9ms; link down [500µs, 1.1ms).
    let plan = FaultPlan::new(29).with_flap(500_000, 1_100_000);
    let mut net = Network::new();
    let a = net.reserve_node();
    let b = net.add_node(Box::new(Sink::default()));
    let (pa, _pb, tap) = net.connect_interposed(a, b, LinkSpec::ten_gbe(1_500), |ta, tb| {
        Box::new(FaultyLink::new(&plan, ta, tb))
    });
    net.install(
        a,
        Box::new(Pacer {
            port: pa,
            sent: 0,
            n: 20,
        }),
    );
    net.schedule_timer_at(a, 0, 0);
    net.run_until(SECOND);
    let stats = net.node_mut::<FaultyLink>(tap).unwrap().stats();
    let got = std::mem::take(&mut net.node_mut::<Sink>(b).unwrap().got);
    // Packets sent at 500µs..1.1ms arrive at the tap ~1.2µs later; the
    // ones leaving at 500–1000µs (6 packets: seq 5..=10) die.
    assert_eq!(stats.a_to_b.flap_drops, 6, "{stats:?}");
    let seqs: Vec<u32> = got.iter().map(|g| g.1).collect();
    assert!(!seqs.contains(&5) && !seqs.contains(&10));
    assert!(seqs.contains(&4) && seqs.contains(&11));
    assert_eq!(got.len(), 14);
}

#[test]
fn same_seed_runs_have_byte_identical_stats_and_trace() {
    let plan = FaultPlan::new(0xDEAD_BEEF)
        .with_iid_loss(0.05)
        .with_reorder(0.1, 30_000)
        .with_duplication(0.05)
        .with_corruption(0.05)
        .with_jitter(10_000);
    let (got1, stats1, _, _) = run(&plan, 300);
    let (got2, stats2, _, _) = run(&plan, 300);
    assert_eq!(stats1, stats2, "FaultStats must be byte-identical");
    assert_eq!(got1, got2, "full arrival trace must be identical");
    assert_ne!(stats1, LinkFaultStats::default());
}

#[test]
fn both_directions_have_independent_streams() {
    // Echoing sink: bounce every delivered packet back so the B→A process
    // sees traffic too.
    struct Echo {
        port: PortId,
        got: u32,
    }
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, seg: Segment) {
            self.got += 1;
            ctx.enqueue(self.port, seg);
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let plan = FaultPlan::new(31).with_iid_loss(0.3);
    let mut net = Network::new();
    let a = net.add_node(Box::new(Sink::default()));
    let b = net.reserve_node();
    let c = net.reserve_node();
    // c blasts into a's sink through the faulty a<->b link? Simpler: blaster
    // on its own node feeding b through a plain link, b echoes into the
    // faulty link... Keep it direct: a <-> b faulty, b echoes; kick off by
    // blasting from a side via an extra port on a is not possible for Sink.
    // So: c --plain--> b (echo into faulty link), faulty link b <-> a.
    let (_pa, pb, tap) = net.connect_interposed(a, b, LinkSpec::ten_gbe(1_500), |ta, tb| {
        Box::new(FaultyLink::new(&plan, ta, tb))
    });
    net.install(b, Box::new(Echo { port: pb, got: 0 }));
    let (pc, _pb2) = net.connect(c, b, LinkSpec::ten_gbe(1_500));
    net.install(c, Box::new(Blaster { port: pc, n: 200 }));
    net.schedule_timer_at(c, 0, 0);
    net.run_until(SECOND);
    let stats = net.node_mut::<FaultyLink>(tap).unwrap().stats();
    // Echo pushes 200 packets B→A through the loss process.
    assert_eq!(stats.b_to_a.offered, 200);
    assert!(stats.b_to_a.random_drops > 10);
    assert_eq!(stats.a_to_b.offered, 0);
}
