//! # acdc-tcp — a full TCP endpoint over the simulated network
//!
//! This crate implements the *guest* ("VM") TCP stack: connection
//! establishment and teardown, sliding-window transfer with 32-bit
//! wraparound, RFC 6298 retransmission timers (with the paper's
//! `RTOmin = 10 ms`), NewReno fast retransmit/recovery, delayed ACKs,
//! window scaling (RFC 7323), classic ECN (RFC 3168) and DCTCP-style
//! accurate ECN echo — with the congestion-control algorithm supplied by
//! `acdc-cc`, exactly as Linux loads pluggable `tcp_congestion_ops`.
//!
//! The endpoint is **simulator-agnostic** and event-driven in the smoltcp
//! style: callers feed it segments ([`Endpoint::on_segment`]) and clock
//! ticks ([`Endpoint::on_timer`]), drain outgoing packets with
//! [`Endpoint::poll_transmit`], and re-arm a single timer from
//! [`Endpoint::next_timer`]. `acdc-core` hosts do exactly this, routing the
//! emitted segments through the vSwitch datapath and NIC.
//!
//! Payload bytes are *virtual* (see `acdc-packet`): applications enqueue
//! byte counts, and delivery/acknowledgement progress is observable through
//! stream-offset counters — all a workload needs to measure throughput and
//! flow completion times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Check a protocol-state invariant when the `strict-invariants` feature
/// is enabled. Expands to a `debug_assert!`, so it is additionally elided
/// from release builds; without the feature it compiles to nothing while
/// still type-checking the condition.
macro_rules! strict_invariant {
    ($($arg:tt)+) => {
        if cfg!(feature = "strict-invariants") {
            debug_assert!($($arg)+);
        }
    };
}
pub(crate) use strict_invariant;

pub mod conn;
pub mod ecn;
pub mod endpoint;
pub mod flow;
pub mod receive;
pub mod reliable;

pub use endpoint::{Endpoint, TcpState};
pub use reliable::SeqView;

use acdc_cc::CcKind;
use acdc_stats::time::{Nanos, MILLISECOND};

/// Static configuration for one endpoint (one side of one connection).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Local IPv4 address.
    pub local_ip: [u8; 4],
    /// Local TCP port.
    pub local_port: u16,
    /// Remote IPv4 address.
    pub remote_ip: [u8; 4],
    /// Remote TCP port.
    pub remote_port: u16,
    /// Maximum segment size (payload bytes per packet).
    pub mss: u32,
    /// Congestion-control algorithm.
    pub cc: CcKind,
    /// Negotiate ECN on the handshake (RFC 3168 / DCTCP capability).
    pub ecn: bool,
    /// Advertised receive buffer in bytes (bounds the window we offer).
    pub rcv_buf: u64,
    /// Window-scale shift we advertise (RFC 7323).
    pub wscale: u8,
    /// Minimum retransmission timeout. The paper sets 10 ms.
    pub rto_min: Nanos,
    /// Cap on the exponentially backed-off RTO.
    pub rto_max: Nanos,
    /// Acknowledge every `delack_segs`-th full segment; otherwise wait for
    /// the delayed-ACK timer.
    pub delack_segs: u32,
    /// Delayed-ACK timeout.
    pub delack_timeout: Nanos,
    /// A *non-conforming* stack: ignores the peer's advertised receive
    /// window. Used to exercise AC/DC's policing mechanism (§3.3).
    pub ignore_peer_rwnd: bool,
    /// Upper bound on the congestion window in bytes (Linux's
    /// `snd_cwnd_clamp`); `None` = unbounded. Used by Figure 6.
    pub cwnd_clamp: Option<u64>,
    /// Initial sequence number (deterministic; pick per-flow values).
    pub iss: u32,
}

impl TcpConfig {
    /// A sensible datacenter default between `local` and `remote`,
    /// matching the paper's system settings (RTOmin = 10 ms, window
    /// scaling on, 4 MB receive buffer).
    pub fn new(
        local_ip: [u8; 4],
        local_port: u16,
        remote_ip: [u8; 4],
        remote_port: u16,
        mss: u32,
        cc: CcKind,
    ) -> TcpConfig {
        TcpConfig {
            local_ip,
            local_port,
            remote_ip,
            remote_port,
            mss,
            cc,
            ecn: matches!(cc, CcKind::Dctcp | CcKind::DctcpPriority(_)),
            rcv_buf: 4 * 1024 * 1024,
            wscale: 9,
            rto_min: 10 * MILLISECOND,
            rto_max: 640 * MILLISECOND,
            delack_segs: 2,
            delack_timeout: MILLISECOND,
            ignore_peer_rwnd: false,
            cwnd_clamp: None,
            iss: 1_000_000,
        }
    }

    /// The standard MSS for an Ethernet MTU: MTU − 20 (IP) − 20 (TCP).
    pub fn mss_for_mtu(mtu: usize) -> u32 {
        (mtu - 40) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mss_for_standard_mtus() {
        assert_eq!(TcpConfig::mss_for_mtu(1500), 1460);
        assert_eq!(TcpConfig::mss_for_mtu(9000), 8960);
    }

    #[test]
    fn dctcp_config_enables_ecn_by_default() {
        let c = TcpConfig::new([1, 1, 1, 1], 1, [2, 2, 2, 2], 2, 1448, CcKind::Dctcp);
        assert!(c.ecn);
        let c = TcpConfig::new([1, 1, 1, 1], 1, [2, 2, 2, 2], 2, 1448, CcKind::Cubic);
        assert!(!c.ecn);
    }
}
