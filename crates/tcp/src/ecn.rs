//! ECN signalling state: negotiation, the DCTCP accurate-echo /
//! classic-ECE receiver state, and the sender-side CWR/cut bookkeeping.
//!
//! `acdc-scope: endpoint.ecn` — every mutation of the ECN echo and cut
//! state lives in this file. The congestion-control *reaction* to these
//! signals stays in the pluggable `acdc-cc` box; this component only
//! tracks what must be echoed or signalled on the wire.
//!
//! [`Endpoint`]: crate::Endpoint

use acdc_stats::time::Nanos;

/// ECN echo and signalling state for one endpoint.
#[derive(Debug)]
pub struct EcnSignal {
    /// ECN negotiated on this connection.
    ecn_ok: bool,
    /// DCTCP-style accurate echo state.
    ce_state: bool,
    /// Classic ECE latch.
    ece_latch: bool,
    /// Classic-ECN: a cut is pending CWR signalling on the next data.
    cwr_pending: bool,
    last_ecn_cut: Option<Nanos>,
}

impl EcnSignal {
    /// Fresh (un-negotiated) ECN state.
    pub fn new() -> EcnSignal {
        EcnSignal {
            ecn_ok: false,
            ce_state: false,
            ece_latch: false,
            cwr_pending: false,
            last_ecn_cut: None,
        }
    }

    // ---- views -------------------------------------------------------

    /// Was ECN negotiated on this connection?
    pub fn ecn_ok(&self) -> bool {
        self.ecn_ok
    }

    /// The DCTCP accurate-echo state (last CE codepoint seen).
    pub fn ce_state(&self) -> bool {
        self.ce_state
    }

    /// The classic ECE latch (set until CWR is seen).
    pub fn ece_latch(&self) -> bool {
        self.ece_latch
    }

    /// Should an outgoing segment carry ECE?
    pub fn echo_ece(&self, dctcp: bool) -> bool {
        if !self.ecn_ok {
            return false;
        }
        if dctcp {
            self.ce_state
        } else {
            self.ece_latch
        }
    }

    // ---- negotiation -------------------------------------------------

    /// Record the handshake's ECN negotiation outcome.
    pub fn negotiate(&mut self, ok: bool) {
        self.ecn_ok = ok;
    }

    // ---- receiver echo -----------------------------------------------

    /// Process the ECN bits of an arriving data segment. Returns `true`
    /// when an immediate ACK must be forced (DCTCP receiver: a CE state
    /// change keeps the echo stream byte-accurate). No-op when ECN was
    /// not negotiated.
    pub fn on_data_ecn(&mut self, ce: bool, dctcp: bool, cwr: bool) -> bool {
        if !self.ecn_ok {
            return false;
        }
        let mut force_ack = false;
        if dctcp {
            if ce != self.ce_state {
                force_ack = true;
                self.ce_state = ce;
            }
        } else if ce {
            self.ece_latch = true;
        }
        if cwr {
            self.ece_latch = false;
        }
        force_ack
    }

    // ---- sender cuts -------------------------------------------------

    /// Classic ECN: may the sender cut again, at most once per RTT? The
    /// RTT estimate falls back to `fallback` until sampled.
    pub fn can_cut(&self, now: Nanos, srtt: Option<Nanos>, fallback: Nanos) -> bool {
        match self.last_ecn_cut {
            None => true,
            Some(t) => now.saturating_sub(t) >= srtt.unwrap_or(fallback),
        }
    }

    /// Record a classic-ECN window cut and schedule CWR signalling on
    /// the next outgoing data.
    pub fn note_cut(&mut self, now: Nanos) {
        self.last_ecn_cut = Some(now);
        self.cwr_pending = true;
    }

    /// Consume the pending CWR signal, if one is scheduled. Call only
    /// when the outgoing segment carries data (CWR rides data segments).
    pub fn take_cwr(&mut self) -> bool {
        let due = self.cwr_pending;
        self.cwr_pending = false;
        due
    }
}

impl Default for EcnSignal {
    fn default() -> EcnSignal {
        EcnSignal::new()
    }
}
