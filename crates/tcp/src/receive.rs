//! Receive-side state: in-order delivery, out-of-order reassembly, the
//! peer-FIN offset and the delayed-ACK machinery.
//!
//! `acdc-scope: endpoint.receive` — every mutation of `rcv_nxt`, the
//! out-of-order range set and the ACK-scheduling state lives in this
//! file. The simulated application drains in-order data instantly, so
//! "delivered" and "in-order received" coincide.
//!
//! [`Endpoint`]: crate::Endpoint

use acdc_stats::time::Nanos;

/// Receive-side state for one endpoint.
///
/// Out-of-order data is tracked as half-open stream ranges
/// `(start, end)`, kept sorted and disjoint; the invariant is upheld by
/// the merge in [`Receive::accept`] and checked by the component
/// property tests.
#[derive(Debug)]
pub struct Receive {
    /// Next expected in-order stream offset.
    rcv_nxt: u64,
    /// Out-of-order received ranges `(start, end)`, sorted, disjoint.
    ooo: Vec<(u64, u64)>,
    /// Peer FIN offset, once seen.
    fin_rcvd: Option<u64>,
    /// Segments received since the last ACK we sent.
    unacked_segs: u32,
    delack_deadline: Option<Nanos>,
    ack_now: bool,
}

impl Receive {
    /// Fresh receive-side state.
    pub fn new() -> Receive {
        Receive {
            rcv_nxt: 0,
            ooo: Vec::new(),
            fin_rcvd: None,
            unacked_segs: 0,
            delack_deadline: None,
            ack_now: false,
        }
    }

    // ---- views -------------------------------------------------------

    /// Total in-order stream bytes received (delivered to the app).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// The buffered out-of-order ranges (sorted, disjoint).
    pub fn ooo_ranges(&self) -> &[(u64, u64)] {
        &self.ooo
    }

    /// The peer's FIN offset, once seen.
    pub fn fin_rcvd(&self) -> Option<u64> {
        self.fin_rcvd
    }

    /// Is an immediate ACK scheduled?
    pub fn ack_now(&self) -> bool {
        self.ack_now
    }

    /// Armed delayed-ACK deadline, if any.
    pub fn delack_deadline(&self) -> Option<Nanos> {
        self.delack_deadline
    }

    /// Has the peer's FIN been consumed in order?
    pub fn fin_in_order(&self) -> bool {
        matches!(self.fin_rcvd, Some(f) if self.rcv_nxt >= f)
    }

    // ---- input -------------------------------------------------------

    /// Schedule an immediate ACK.
    pub fn force_ack(&mut self) {
        self.ack_now = true;
    }

    /// Record the peer's FIN offset (first sighting wins).
    pub fn note_fin(&mut self, fin_off: u64) {
        if self.fin_rcvd.is_none() {
            self.fin_rcvd = Some(fin_off);
        }
    }

    /// Accept an arriving data span `[start, start + len)` (stream
    /// offsets; `start` may be negative for data below the window after
    /// unwrapping). In-order data advances `rcv_nxt` and drains any
    /// newly contiguous out-of-order ranges under delayed-ACK pacing;
    /// out-of-order data is buffered and acknowledged immediately
    /// (duplicate-ACK fuel for the sender); fully duplicate data is
    /// re-acknowledged immediately.
    pub fn accept(
        &mut self,
        start: i64,
        len: u64,
        now: Nanos,
        delack_segs: u32,
        delack_timeout: Nanos,
    ) {
        let end = start + len as i64;
        if end <= self.rcv_nxt as i64 {
            // Entirely duplicate data → ACK right away (dupack fuel).
            self.ack_now = true;
            return;
        }
        let s = start.max(self.rcv_nxt as i64) as u64;
        let e = end as u64;
        if start as u64 <= self.rcv_nxt && e > self.rcv_nxt {
            // In-order (possibly overlapping) data.
            self.rcv_nxt = e;
            self.drain_ooo();
            self.unacked_segs += 1;
            if self.unacked_segs >= delack_segs {
                self.ack_now = true;
            } else if self.delack_deadline.is_none() {
                self.delack_deadline = Some(now + delack_timeout);
            }
        } else {
            // Out of order: buffer the range, ACK immediately.
            self.insert_ooo(s, e);
            self.ack_now = true;
        }
    }

    fn insert_ooo(&mut self, s: u64, e: u64) {
        if s >= e {
            return;
        }
        self.ooo.push((s, e));
        self.ooo.sort_unstable();
        // Merge overlapping/adjacent ranges.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.ooo.len());
        for &(s, e) in &self.ooo {
            if let Some(last) = merged.last_mut() {
                if s <= last.1 {
                    last.1 = last.1.max(e);
                    continue;
                }
            }
            merged.push((s, e));
        }
        self.ooo = merged;
    }

    fn drain_ooo(&mut self) {
        while let Some(&(s, e)) = self.ooo.first() {
            if s <= self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.max(e);
                self.ooo.remove(0);
            } else {
                break;
            }
        }
    }

    // ---- ACK scheduling ---------------------------------------------

    /// The delayed-ACK timer fired: if segments are still unacknowledged,
    /// promote to an immediate ACK.
    pub fn fire_delack(&mut self, now: Nanos) {
        if let Some(t) = self.delack_deadline {
            if now >= t {
                self.delack_deadline = None;
                if self.unacked_segs > 0 {
                    self.ack_now = true;
                }
            }
        }
    }

    /// An acknowledgement is going out: clear the pending-ACK state.
    pub fn clear_ack_state(&mut self) {
        self.ack_now = false;
        self.unacked_segs = 0;
        self.delack_deadline = None;
    }
}

impl Default for Receive {
    fn default() -> Receive {
        Receive::new()
    }
}
