//! Peer flow control: the advertised-window view of the receiver and
//! the zero-window (persist) probe machinery.
//!
//! `acdc-scope: endpoint.flow-ctrl` — every mutation of the peer-window
//! state and the persist timer lives in this file. After AC/DC
//! rewriting, the window tracked here *is* the enforced window: the
//! vSwitch's `RwndRewriter` stamps its computed value into every ACK
//! before the guest stack sees it, so the endpoint needs no knowledge of
//! the enforcement at all (paper §3.3).
//!
//! [`Endpoint`]: crate::Endpoint

use acdc_stats::time::Nanos;

/// The sender's view of the peer's receive window, plus the RFC 1122
/// persist (zero-window probe) timer that keeps a closed window from
/// deadlocking the connection.
#[derive(Debug)]
pub struct FlowCtrl {
    /// Peer receive window in bytes (already scaled), relative to
    /// `snd_una`.
    peer_rwnd: u64,
    /// Raw window field of the last ACK (for duplicate-ACK detection).
    last_raw_wnd: u16,
    peer_wscale: u8,
    /// Zero-window probe (persist) timer: armed when the peer closes its
    /// window while we still have data to send.
    persist_deadline: Option<Nanos>,
    persist_backoff: u32,
    /// A 1-byte window probe is due on the next poll.
    window_probe_pending: bool,
}

impl FlowCtrl {
    /// Fresh flow-control state: an unscaled 64 KiB window until the
    /// handshake teaches us better.
    pub fn new() -> FlowCtrl {
        FlowCtrl {
            peer_rwnd: u64::from(u16::MAX),
            last_raw_wnd: 0,
            peer_wscale: 0,
            persist_deadline: None,
            persist_backoff: 0,
            window_probe_pending: false,
        }
    }

    // ---- views -------------------------------------------------------

    /// The peer's advertised receive window in bytes, as last seen.
    pub fn peer_rwnd(&self) -> u64 {
        self.peer_rwnd
    }

    /// Raw (unscaled) window field of the last ACK.
    pub fn last_raw_wnd(&self) -> u16 {
        self.last_raw_wnd
    }

    /// The peer's negotiated window-scale shift.
    pub fn peer_wscale(&self) -> u8 {
        self.peer_wscale
    }

    /// Armed persist deadline, if any.
    pub fn persist_deadline(&self) -> Option<Nanos> {
        self.persist_deadline
    }

    // ---- window tracking --------------------------------------------

    /// Learn the peer's window-scale shift from its SYN options.
    pub fn learn_wscale(&mut self, wscale: u8) {
        self.peer_wscale = wscale.min(14);
    }

    /// Record the window field of an arriving segment. SYN windows are
    /// never scaled (RFC 7323).
    pub fn update_window(&mut self, raw: u16, syn: bool) {
        self.last_raw_wnd = raw;
        self.peer_rwnd = if syn {
            u64::from(raw)
        } else {
            acdc_packet::unscale_rwnd(raw, self.peer_wscale)
        };
    }

    // ---- persist timer -----------------------------------------------

    /// Arm the persist timer: the peer's window closed while data is
    /// still pending. The first probe fires one RTO out.
    pub fn arm_persist(&mut self, now: Nanos, rto: Nanos) {
        self.persist_backoff = 0;
        self.persist_deadline = Some(now + rto);
    }

    /// The window reopened (or the connection tore down): stop probing.
    pub fn cancel_persist(&mut self) {
        self.persist_deadline = None;
        self.persist_backoff = 0;
    }

    /// The persist timer fired. When probing still makes sense, queue a
    /// 1-byte window probe and re-arm with exponential backoff; otherwise
    /// stop probing. The probe carries real stream data — a reopened
    /// window acknowledges it.
    pub fn on_persist_fire(&mut self, now: Nanos, rto: Nanos, rto_max: Nanos, probe: bool) {
        if probe {
            self.window_probe_pending = true;
            self.persist_backoff = (self.persist_backoff + 1).min(10);
            let delay = (rto << self.persist_backoff).min(rto_max);
            self.persist_deadline = Some(now + delay);
        } else {
            self.cancel_persist();
        }
    }

    /// Consume a pending window-probe transmission, if one is queued.
    pub fn take_window_probe(&mut self) -> bool {
        let due = self.window_probe_pending;
        self.window_probe_pending = false;
        due
    }
}

impl Default for FlowCtrl {
    fn default() -> FlowCtrl {
        FlowCtrl::new()
    }
}
