//! The TCP endpoint state machine.
//!
//! One [`Endpoint`] is one side of one connection, pre-bound to a 4-tuple
//! (the simulation knows its flows up front, so there is no listener
//! socket; a passive endpoint simply starts in [`TcpState::Listen`]).
//!
//! Internally all stream positions are **64-bit offsets** (0 = first
//! payload byte); they are converted to and from 32-bit wire sequence
//! numbers at the packet boundary, so arithmetic never worries about
//! wraparound while the wire format stays faithful.
//!
//! The endpoint itself is an *orchestrator* over five disjoint-write
//! components, each owning its mutable state in its own module (the
//! write-scope manifest `crates/xtask/scopes.toml` enforces the split;
//! see DESIGN.md §14):
//!
//! - [`ConnMgmt`](crate::conn::ConnMgmt) — the RFC 793 state machine,
//!   ISN/MSS negotiation and the FIN lifecycle;
//! - [`ReliableDelivery`](crate::reliable::ReliableDelivery) — send
//!   pointers, NewReno recovery, RTT estimation and the RTO timer;
//! - [`FlowCtrl`](crate::flow::FlowCtrl) — the peer's advertised window
//!   and the persist (zero-window probe) timer;
//! - [`Receive`](crate::receive::Receive) — in-order delivery,
//!   out-of-order reassembly and delayed ACKs;
//! - [`EcnSignal`](crate::ecn::EcnSignal) — ECN negotiation, echo state
//!   and CWR/cut signalling.
//!
//! This file holds no mutable protocol state of its own: it parses and
//! builds segments, reads the components through their view methods, and
//! drives every state change through their transition methods.

use acdc_cc::{AckEvent, CcConfig, CongestionControl};
use acdc_packet::{
    Ecn, FlowKey, Ipv4Repr, PacketMeta, Segment, SeqNumber, SeqView, TcpFlags, TcpOption, TcpRepr,
    PROTO_TCP,
};
use acdc_stats::time::Nanos;

use crate::conn::ConnMgmt;
use crate::ecn::EcnSignal;
use crate::flow::FlowCtrl;
use crate::receive::Receive;
use crate::reliable::ReliableDelivery;
use crate::TcpConfig;

/// Connection states (RFC 793 subset; no simultaneous open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Passive endpoint waiting for a SYN.
    Listen,
    /// Active endpoint that has sent its SYN.
    SynSent,
    /// Passive endpoint that has answered with SYN-ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN is acknowledged; waiting for the peer's.
    FinWait2,
    /// Both sides closed simultaneously: peer's FIN consumed while ours
    /// is still unacknowledged.
    Closing,
    /// Peer closed first; we may still send.
    CloseWait,
    /// We answered the peer's FIN with our own.
    LastAck,
    /// Both FINs exchanged; draining the network.
    TimeWait,
    /// Fully closed.
    Closed,
}

/// One side of a TCP connection.
pub struct Endpoint {
    cfg: TcpConfig,
    cc: Box<dyn CongestionControl>,
    conn: ConnMgmt,
    rel: ReliableDelivery,
    flow: FlowCtrl,
    rcv: Receive,
    ecn: EcnSignal,
}

impl core::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Endpoint")
            .field("state", &self.conn.state())
            .field("snd_una", &self.rel.snd_una())
            .field("snd_nxt", &self.rel.snd_nxt())
            .field("rcv_nxt", &self.rcv.rcv_nxt())
            .field("cwnd", &self.cc.cwnd())
            .finish()
    }
}

impl Endpoint {
    /// Create an active (connecting) endpoint. Call
    /// [`Endpoint::open`] to emit the SYN.
    pub fn new_active(cfg: TcpConfig) -> Endpoint {
        Endpoint::new(cfg, false)
    }

    /// Create a passive endpoint waiting for a SYN.
    pub fn new_passive(cfg: TcpConfig) -> Endpoint {
        Endpoint::new(cfg, true)
    }

    fn new(cfg: TcpConfig, passive: bool) -> Endpoint {
        let cc_cfg = CcConfig::host(cfg.mss);
        let cc = cfg.cc.build(cc_cfg);
        let cc: Box<dyn CongestionControl> = match cfg.cwnd_clamp {
            Some(clamp) => Box::new(acdc_cc::Clamped::new(cc, clamp)),
            None => cc,
        };
        Endpoint {
            conn: ConnMgmt::new(SeqNumber(cfg.iss), cfg.mss, passive),
            rel: ReliableDelivery::new(cfg.rto_min),
            flow: FlowCtrl::new(),
            rcv: Receive::new(),
            ecn: EcnSignal::new(),
            cc,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// Begin the active open (emit a SYN on the next poll).
    pub fn open(&mut self, now: Nanos) {
        self.conn.begin_active_open(now);
        self.arm_rto(now);
    }

    /// Enqueue `bytes` of application data for transmission.
    pub fn send(&mut self, bytes: u64) {
        assert!(!self.conn.fin_queued(), "send() after close()");
        self.rel.enqueue(bytes);
    }

    /// Close the sending direction once all queued data is delivered.
    pub fn close(&mut self) {
        self.conn.queue_close();
    }

    /// Stop offering new data: the stream is truncated at the highest
    /// offset already sent (in-flight data still completes). Used by the
    /// harness to end long-lived flows at a scheduled time (Figure 14's
    /// convergence test adds and removes flows every 30 s).
    pub fn stop_sending(&mut self) {
        if !self.conn.fin_queued() {
            self.rel.truncate_unsent();
        }
    }

    /// Total stream bytes acknowledged by the peer.
    pub fn acked_bytes(&self) -> u64 {
        self.rel.snd_una()
    }

    /// Total stream bytes the application asked to send.
    pub fn queued_bytes(&self) -> u64 {
        self.rel.stream_len()
    }

    /// Total in-order stream bytes received (delivered to the app).
    pub fn delivered_bytes(&self) -> u64 {
        self.rcv.rcv_nxt()
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.conn.state()
    }

    /// The endpoint's configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Effective MSS after handshake negotiation.
    pub fn mss(&self) -> u32 {
        self.conn.mss()
    }

    /// Was ECN negotiated on this connection?
    pub fn ecn_negotiated(&self) -> bool {
        self.ecn.ecn_ok()
    }

    /// The wire 5-tuple of this endpoint's *egress* (local → remote)
    /// direction — the same key the vSwitch flow table and the host NIC
    /// demux use.
    pub fn flow_key(&self) -> FlowKey {
        FlowKey {
            src_ip: self.cfg.local_ip,
            dst_ip: self.cfg.remote_ip,
            src_port: self.cfg.local_port,
            dst_port: self.cfg.remote_port,
        }
    }

    /// Is the connection established (data can flow)?
    pub fn is_established(&self) -> bool {
        matches!(
            self.conn.state(),
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::FinWait2
        )
    }

    /// Has the connection fully closed (both FINs exchanged + acked)?
    pub fn is_closed(&self) -> bool {
        matches!(self.conn.state(), TcpState::Closed | TcpState::TimeWait)
    }

    /// Current congestion window, bytes (for window tracing, Figure 9/10).
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// The congestion-control algorithm (for inspection).
    pub fn cc(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    /// Smoothed RTT estimate, if sampled yet.
    pub fn srtt(&self) -> Option<Nanos> {
        self.rel.srtt()
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Nanos {
        self.rel.rto()
    }

    /// Segments retransmitted (fast or timeout-driven).
    pub fn retransmitted_segments(&self) -> u64 {
        self.rel.retransmitted_segments()
    }

    /// Retransmission-timeout count.
    pub fn timeouts(&self) -> u64 {
        self.rel.timeouts()
    }

    /// Current RTO backoff exponent: the armed timeout is
    /// `rto() << rto_backoff()` (capped at `rto_max`). Non-zero only
    /// while consecutive timeouts go unrepaired; reset by forward ACK
    /// progress.
    pub fn rto_backoff(&self) -> u32 {
        self.rel.backoff()
    }

    /// The peer's advertised receive window in bytes, as last seen
    /// (after AC/DC rewriting, this *is* the enforced window).
    pub fn peer_rwnd(&self) -> u64 {
        self.flow.peer_rwnd()
    }

    /// Bytes in flight.
    pub fn in_flight(&self) -> u64 {
        self.rel.in_flight()
    }

    /// The send pointers as wire sequence numbers — ground truth for
    /// comparing against the vSwitch's passively reconstructed per-flow
    /// state (paper §3.1; the chaos suite asserts agreement against
    /// `AcdcDatapath::seq_view`).
    pub fn seq_view(&self) -> SeqView {
        SeqView {
            snd_una: self.wire_seq(self.rel.snd_una()),
            // Highest sent: a timeout rewinds `snd_nxt`, but the wire
            // high-water mark is what the switch observed.
            snd_nxt: self.wire_seq(self.rel.snd_nxt().max(self.rel.snd_max())),
        }
    }

    /// `snd_una` as a wire sequence number (see [`Endpoint::seq_view`]).
    pub fn wire_snd_una(&self) -> SeqNumber {
        self.seq_view().snd_una
    }

    /// `snd_nxt` as a wire sequence number (highest sent; see
    /// [`Endpoint::seq_view`]).
    pub fn wire_snd_nxt(&self) -> SeqNumber {
        self.seq_view().snd_nxt
    }

    // ------------------------------------------------------------------
    // Wire sequence mapping
    // ------------------------------------------------------------------

    /// Wire sequence number for a send-stream offset.
    fn wire_seq(&self, off: u64) -> SeqNumber {
        self.conn.iss() + 1u32 + (off as u32)
    }

    /// Wire ACK number for the receive side.
    fn wire_ack(&self) -> SeqNumber {
        let fin_extra = match self.rcv.fin_rcvd() {
            Some(f) if self.rcv.rcv_nxt() >= f => 1u32,
            _ => 0,
        };
        self.conn.irs() + 1u32 + (self.rcv.rcv_nxt() as u32) + fin_extra
    }

    /// Unwrap an incoming wire ACK into a send-stream offset (may exceed
    /// `stream_len` by one when it covers our FIN).
    fn unwrap_ack(&self, ack: SeqNumber) -> Option<u64> {
        let base = self.wire_seq(self.rel.snd_una());
        let d = ack - base; // signed distance
        let candidate = self.rel.snd_una() as i64 + i64::from(d);
        let max_valid = self.rel.snd_max() + if self.conn.fin_sent_ever() { 1 } else { 0 };
        if candidate < 0 || candidate as u64 > max_valid {
            None
        } else {
            Some(candidate as u64)
        }
    }

    /// Unwrap an incoming wire data sequence into a receive-stream offset.
    fn unwrap_seq(&self, seq: SeqNumber) -> i64 {
        let base = self.conn.irs() + 1u32 + (self.rcv.rcv_nxt() as u32);
        let d = seq - base;
        self.rcv.rcv_nxt() as i64 + i64::from(d)
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Earliest pending timer deadline, if any. The host arms one timer
    /// and calls [`Endpoint::on_timer`] when it fires.
    pub fn next_timer(&self) -> Option<Nanos> {
        [
            self.rel.rto_deadline(),
            self.rcv.delack_deadline(),
            self.conn.timewait_deadline(),
            self.flow.persist_deadline(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn arm_rto(&mut self, now: Nanos) {
        self.rel.arm_rto(now, self.cfg.rto_max);
    }

    fn maybe_disarm_rto(&mut self) {
        let outstanding = self.rel.snd_nxt() > self.rel.snd_una()
            || (self.conn.fin_sent() && !self.conn.fin_acked())
            || self.conn.need_syn()
            || self.conn.need_synack();
        if !outstanding {
            self.rel.disarm_rto();
        }
    }

    /// Handle timer expiry; the host calls this when `next_timer()` fires.
    pub fn on_timer(&mut self, now: Nanos) {
        self.conn.fire_timewait(now);
        self.rcv.fire_delack(now);
        if let Some(t) = self.rel.rto_deadline() {
            if now >= t {
                self.rel.clear_rto_deadline();
                self.handle_rto(now);
            }
        }
        if let Some(t) = self.flow.persist_deadline() {
            if now >= t {
                let probing_makes_sense = matches!(
                    self.conn.state(),
                    TcpState::Established | TcpState::CloseWait | TcpState::FinWait1
                ) && self.rel.snd_una() < self.rel.stream_len();
                self.flow.on_persist_fire(
                    now,
                    self.rel.rto(),
                    self.cfg.rto_max,
                    probing_makes_sense,
                );
            }
        }
    }

    fn handle_rto(&mut self, now: Nanos) {
        match self.conn.state() {
            TcpState::SynSent => {
                self.conn.retry_syn();
                self.rel.bump_backoff();
                self.arm_rto(now);
            }
            TcpState::SynRcvd => {
                self.conn.retry_synack();
                self.rel.bump_backoff();
                self.arm_rto(now);
            }
            TcpState::Closed | TcpState::Listen | TcpState::TimeWait => {}
            _ => {
                let outstanding = self.rel.snd_nxt() > self.rel.snd_una()
                    || (self.conn.fin_sent() && !self.conn.fin_acked());
                if !outstanding {
                    return;
                }
                self.cc.on_retransmit_timeout(now);
                // Go-back-N: rewind the send pointer; everything from
                // snd_una is resent as the window reopens.
                self.rel.on_timeout_rewind();
                self.conn.rewind_fin();
                self.arm_rto(now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Segment input
    // ------------------------------------------------------------------

    /// Feed an arriving segment (addressed to this endpoint).
    pub fn on_segment(&mut self, now: Nanos, seg: &Segment) {
        // One parse per packet lifetime: the NIC's checksum verification
        // already populated the cache, so this is normally a cache read.
        // A malformed frame (which the NIC should have dropped) is ignored.
        let Ok(meta) = seg.try_meta() else {
            return;
        };
        let flags = meta.flags;

        if flags.contains(TcpFlags::RST) {
            self.conn.on_rst();
            return;
        }

        match self.conn.state() {
            TcpState::Listen => {
                if flags.contains(TcpFlags::SYN) {
                    self.conn.on_listen_syn(meta.seq);
                    self.parse_syn_options(&meta);
                    // ECN negotiation: SYN carries ECE|CWR.
                    self.ecn.negotiate(
                        self.cfg.ecn
                            && flags.contains(TcpFlags::ECE)
                            && flags.contains(TcpFlags::CWR),
                    );
                    self.arm_rto(now);
                }
            }
            TcpState::SynSent => {
                if flags.contains(TcpFlags::SYN) && flags.contains(TcpFlags::ACK) {
                    if self.unwrap_ack(meta.ack) != Some(0) {
                        return; // not acking our SYN
                    }
                    self.conn.complete_active_open(meta.seq);
                    self.parse_syn_options(&meta);
                    self.ecn
                        .negotiate(self.cfg.ecn && flags.contains(TcpFlags::ECE));
                    self.flow.update_window(meta.window, true);
                    self.rel.disarm_rto();
                    if let Some(t0) = self.conn.syn_sent_at() {
                        self.rel
                            .take_rtt_sample(now - t0, self.cfg.rto_min, self.cfg.rto_max);
                    }
                    self.rcv.force_ack();
                }
            }
            _ => {
                self.on_segment_established(now, seg, &meta);
            }
        }
    }

    fn parse_syn_options(&mut self, meta: &PacketMeta) {
        if let Some(mss) = meta.mss {
            self.conn.negotiate_mss(mss);
        }
        if let Some(ws) = meta.wscale {
            self.flow.learn_wscale(ws);
        }
    }

    fn on_segment_established(&mut self, now: Nanos, seg: &Segment, meta: &PacketMeta) {
        let flags = meta.flags;

        // A retransmitted SYN-ACK while we are established: just re-ack.
        if flags.contains(TcpFlags::SYN) {
            if self.conn.state() == TcpState::SynRcvd && flags.contains(TcpFlags::ACK) {
                return;
            }
            self.rcv.force_ack();
            return;
        }

        // SYN-RCVD completes on the first valid ACK.
        if self.conn.state() == TcpState::SynRcvd
            && flags.contains(TcpFlags::ACK)
            && self.unwrap_ack(meta.ack) == Some(0)
        {
            self.conn.complete_passive_open();
            self.rel.disarm_rto();
        }

        if flags.contains(TcpFlags::ACK) {
            self.process_ack(now, seg, meta);
        }
        if seg.payload_len() > 0 || flags.contains(TcpFlags::FIN) {
            self.process_data(now, seg, meta);
        }
    }

    fn process_ack(&mut self, now: Nanos, seg: &Segment, meta: &PacketMeta) {
        let Some(ack_off) = self.unwrap_ack(meta.ack) else {
            return; // out-of-window ACK
        };
        let prev_raw_wnd = self.flow.last_raw_wnd();
        self.flow.update_window(meta.window, false);
        let ece = meta.flags.contains(TcpFlags::ECE);

        // Persist (zero-window probe) management, RFC 793/1122: arm when
        // the peer window closes while data is pending; cancel on reopen.
        if self.flow.peer_rwnd() == 0 {
            if self.rel.snd_nxt() < self.rel.stream_len() && self.flow.persist_deadline().is_none()
            {
                self.flow.arm_persist(now, self.rel.rto());
            }
        } else {
            self.flow.cancel_persist();
            // If a probe byte is still outstanding when the window
            // reopens, hand it back to the normal retransmission machinery.
            if self.rel.snd_nxt() > self.rel.snd_una() && self.rel.rto_deadline().is_none() {
                self.arm_rto(now);
            }
        }

        let fin_ack = self.conn.fin_sent_ever() && ack_off == self.rel.stream_len() + 1;
        let newly_acked = ack_off
            .min(self.rel.snd_max())
            .saturating_sub(self.rel.snd_una());

        if newly_acked == 0 && !fin_ack {
            // Duplicate ACK? Only if it carries no data, no window change,
            // and there is outstanding data (RFC 5681).
            if seg.payload_len() == 0
                && ack_off == self.rel.snd_una()
                && meta.window == prev_raw_wnd
                && self.rel.snd_nxt() > self.rel.snd_una()
                && self.rel.register_dupack() == 3
                && self.rel.recover().is_none()
            {
                // Fast retransmit.
                self.cc.on_fast_retransmit(now);
                self.rel.enter_fast_recovery();
            }
            // ECN processing still applies to duplicate ACKs for DCTCP.
            self.feed_cc_ack(now, 0, ece);
            return;
        }

        // New data acknowledged.
        self.rel.advance_una(ack_off);
        if fin_ack {
            self.conn.note_fin_acked();
        }

        // RTT sample (Karn: probe cleared on retransmission).
        self.rel
            .sample_rtt_from_probe(now, self.cfg.rto_min, self.cfg.rto_max);

        // NewReno recovery bookkeeping.
        self.rel.newreno_post_ack();

        self.feed_cc_ack(now, newly_acked, ece);

        // Restart or stop the retransmission timer.
        if self.rel.snd_nxt() > self.rel.snd_una()
            || (self.conn.fin_sent() && !self.conn.fin_acked())
        {
            self.arm_rto(now);
        } else {
            self.maybe_disarm_rto();
        }

        // Teardown transitions driven by our-FIN acknowledgement.
        if self.conn.fin_acked() && self.conn.on_fin_acked_transition(now, 2 * self.cfg.rto_min) {
            self.rel.clear_rto_deadline();
        }
    }

    fn feed_cc_ack(&mut self, now: Nanos, newly_acked: u64, ece: bool) {
        let dctcp = self.cc.wants_ecn();
        let marked = if dctcp && ece { newly_acked } else { 0 };
        // Linux only grows the window when the flow is actually
        // *cwnd-limited* (tcp_is_cwnd_limited): an application- or
        // NIC-limited flow must not inflate cwnd it never uses (that is
        // how senders avoid unbounded qdisc bufferbloat).
        let in_flight_before = self.rel.in_flight() + newly_acked;
        let cwnd = self.cc.cwnd();
        let cwnd_limited = if self.cc.in_slow_start() {
            cwnd < 2 * in_flight_before
        } else {
            in_flight_before + 2 * u64::from(self.conn.mss()) >= cwnd
        };
        let rtt = if newly_acked > 0 {
            // The sample fed here is the probe-based one; expose the
            // latest srtt to algorithms that want per-ack RTTs.
            self.rel.srtt()
        } else {
            None
        };
        // Classic ECN: react to ECE like loss, at most once per RTT,
        // and schedule CWR signalling.
        if !dctcp
            && self.ecn.ecn_ok()
            && ece
            && self.ecn.can_cut(now, self.rel.srtt(), self.cfg.rto_min)
        {
            self.cc.on_fast_retransmit(now);
            self.ecn.note_cut(now);
        }
        let congestion_signal = marked > 0 || (dctcp && ece);
        if (newly_acked > 0 && cwnd_limited) || congestion_signal {
            self.cc.on_ack(&AckEvent {
                now,
                newly_acked,
                marked,
                rtt,
                in_flight: self.rel.in_flight(),
                ece,
            });
        }
    }

    fn process_data(&mut self, now: Nanos, seg: &Segment, meta: &PacketMeta) {
        let start = self.unwrap_seq(meta.seq);
        let len = seg.payload_len() as u64;

        if meta.flags.contains(TcpFlags::FIN) {
            self.rcv.note_fin((start + len as i64) as u64);
        }

        // ECN feedback bookkeeping (on data packets only).
        if self.ecn.on_data_ecn(
            seg.ecn().is_ce(),
            self.cfg_is_dctcp(),
            meta.flags.contains(TcpFlags::CWR),
        ) {
            self.rcv.force_ack();
        }

        if len > 0 {
            self.rcv.accept(
                start,
                len,
                now,
                self.cfg.delack_segs,
                self.cfg.delack_timeout,
            );
        }

        // Consume the FIN when it is in order.
        if self.rcv.fin_in_order() {
            self.rcv.force_ack();
            if self.conn.on_fin_consumed(now, 2 * self.cfg.rto_min) {
                self.rel.clear_rto_deadline();
            }
        }
    }

    fn cfg_is_dctcp(&self) -> bool {
        self.cc.wants_ecn()
    }

    // ------------------------------------------------------------------
    // Segment output
    // ------------------------------------------------------------------

    /// Advertised receive window in bytes. The simulated application
    /// drains in-order data instantly, so the window is the full buffer;
    /// out-of-order data sits *inside* the advertised span and does not
    /// shrink the right edge (shrinking it would also defeat RFC 5681
    /// duplicate-ACK detection, which requires an unchanged window).
    fn adv_window_bytes(&self) -> u64 {
        self.cfg.rcv_buf
    }

    fn adv_window_raw(&self) -> u16 {
        acdc_packet::scale_rwnd(self.adv_window_bytes(), self.cfg.wscale)
    }

    /// Build the next outgoing segment, if anything needs sending.
    /// Hosts call this in a loop after every event until it yields `None`.
    pub fn poll_transmit(&mut self, now: Nanos) -> Option<Segment> {
        // 1. Handshake packets.
        if self.conn.take_need_syn() {
            return Some(self.make_syn(false));
        }
        if self.conn.take_need_synack() {
            return Some(self.make_syn(true));
        }
        // In TIME-WAIT / CLOSED we still answer retransmitted FINs with a
        // pure ACK (RFC 793) — otherwise the peer wedges in LAST-ACK.
        if matches!(self.conn.state(), TcpState::TimeWait | TcpState::Closed) {
            if self.rcv.ack_now() && self.rcv.fin_rcvd().is_some() {
                self.rcv.clear_ack_state();
                return Some(self.make_ack());
            }
            return None;
        }
        if !self.is_established()
            && !matches!(self.conn.state(), TcpState::LastAck | TcpState::Closing)
        {
            return None;
        }

        // 2. Head retransmission (fast retransmit / partial-ACK hole fill).
        if let Some(len) = self.rel.take_rtx_head(self.conn.mss()) {
            self.arm_rto(now);
            return Some(self.make_data(self.rel.snd_una(), len as usize, false));
        }

        // 2b. Zero-window probe: one byte of real data past the window.
        // Probe retransmission is owned by the *persist* timer (not the
        // RTO, which would needlessly collapse cwnd while the peer is
        // simply full), so no retransmission timer is armed here.
        if self.flow.take_window_probe() {
            let state_ok = matches!(
                self.conn.state(),
                TcpState::Established | TcpState::CloseWait | TcpState::FinWait1
            );
            if state_ok && self.flow.peer_rwnd() == 0 && self.rel.snd_una() < self.rel.stream_len()
            {
                let off = self.rel.snd_una();
                self.rel.extend_for_probe();
                self.rcv.clear_ack_state();
                return Some(self.make_data(off, 1, false));
            }
        }

        // 3. New data within the windows.
        if self.can_send_data() {
            let usable = self.usable_window();
            let remaining = self.rel.stream_len() - self.rel.snd_nxt();
            let len = remaining.min(u64::from(self.conn.mss())).min(usable);
            if len > 0 {
                let off = self.rel.advance_nxt(len);
                // FIN may ride the last data segment.
                let fin = self.fin_ready();
                if fin {
                    self.conn.send_fin();
                }
                self.rel.maybe_arm_rtt_probe(now, off + len);
                if self.rel.rto_deadline().is_none() {
                    self.arm_rto(now);
                }
                self.rcv.clear_ack_state();
                return Some(self.make_data(off, len as usize, fin));
            }
        }

        // 4. A bare FIN once all data is out and acknowledged as sendable.
        if self.fin_ready() && !self.conn.fin_sent() {
            self.conn.send_fin();
            if self.rel.rto_deadline().is_none() {
                self.arm_rto(now);
            }
            self.rcv.clear_ack_state();
            return Some(self.make_data(self.rel.snd_nxt(), 0, true));
        }

        // 5. A pure ACK if one is due.
        if self.rcv.ack_now() {
            self.rcv.clear_ack_state();
            return Some(self.make_ack());
        }

        None
    }

    fn fin_ready(&self) -> bool {
        self.conn.fin_queued()
            && !self.conn.fin_sent()
            && self.rel.snd_nxt() == self.rel.stream_len()
    }

    fn can_send_data(&self) -> bool {
        // LAST-ACK is included: a timeout rewinds `snd_nxt`, and the data
        // ahead of our FIN must still be retransmittable from that state.
        matches!(
            self.conn.state(),
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::LastAck
                | TcpState::Closing
        ) && self.rel.snd_nxt() < self.rel.stream_len()
    }

    fn usable_window(&self) -> u64 {
        let cwnd = self.cc.cwnd();
        let flow = if self.cfg.ignore_peer_rwnd {
            u64::MAX
        } else {
            // Peer window is relative to snd_una.
            (self.rel.snd_una() + self.flow.peer_rwnd()).saturating_sub(self.rel.snd_nxt())
        };
        let cong = cwnd.saturating_sub(self.rel.in_flight());
        cong.min(flow)
    }

    fn ip_repr(&self, ecn: Ecn) -> Ipv4Repr {
        Ipv4Repr {
            src_addr: self.cfg.local_ip,
            dst_addr: self.cfg.remote_ip,
            protocol: PROTO_TCP,
            ecn,
            payload_len: 0,
            ttl: Ipv4Repr::DEFAULT_TTL,
        }
    }

    fn base_tcp(&self) -> TcpRepr {
        let mut t = TcpRepr::new(self.cfg.local_port, self.cfg.remote_port);
        t.window = self.adv_window_raw();
        t
    }

    fn make_syn(&self, is_synack: bool) -> Segment {
        let mut t = self.base_tcp();
        t.seq = self.conn.iss();
        t.flags = TcpFlags::SYN;
        if is_synack {
            t.flags |= TcpFlags::ACK;
            t.ack = self.conn.irs() + 1u32;
            if self.ecn.ecn_ok() {
                t.flags |= TcpFlags::ECE;
            }
        } else if self.cfg.ecn {
            t.flags |= TcpFlags::ECE | TcpFlags::CWR;
        }
        // SYN windows are never scaled.
        t.window = self.adv_window_bytes().min(u64::from(u16::MAX)) as u16;
        t.options = vec![
            TcpOption::MaxSegmentSize(self.cfg.mss as u16),
            TcpOption::WindowScale(self.cfg.wscale),
            TcpOption::NoOperation,
        ];
        Segment::new_tcp(self.ip_repr(Ecn::NotEct), t, 0)
    }

    fn make_data(&mut self, off: u64, len: usize, fin: bool) -> Segment {
        let mut t = self.base_tcp();
        t.seq = self.wire_seq(off);
        t.ack = self.wire_ack();
        t.flags = TcpFlags::ACK;
        if fin {
            t.flags |= TcpFlags::FIN;
        }
        if len > 0 && self.ecn.take_cwr() {
            t.flags |= TcpFlags::CWR;
        }
        if self.ecn.echo_ece(self.cfg_is_dctcp()) {
            t.flags |= TcpFlags::ECE;
        }
        // DCTCP sets ECT on every packet (Linux marks the whole socket);
        // classic ECN only on data segments (RFC 3168 forbids ECT on pure
        // ACKs).
        let ecn = if self.ecn.ecn_ok() && (len > 0 || self.cfg_is_dctcp()) {
            Ecn::Ect0
        } else {
            Ecn::NotEct
        };
        Segment::new_tcp(self.ip_repr(ecn), t, len)
    }

    fn make_ack(&self) -> Segment {
        let mut t = self.base_tcp();
        t.seq = self.wire_seq(self.rel.snd_nxt());
        t.ack = self.wire_ack();
        t.flags = TcpFlags::ACK;
        if self.ecn.echo_ece(self.cfg_is_dctcp()) {
            t.flags |= TcpFlags::ECE;
        }
        let ecn = if self.ecn.ecn_ok() && self.cfg_is_dctcp() {
            Ecn::Ect0
        } else {
            Ecn::NotEct
        };
        Segment::new_tcp(self.ip_repr(ecn), t, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_cc::CcKind;
    use acdc_stats::time::{MICROSECOND, MILLISECOND};

    const A_IP: [u8; 4] = [10, 0, 0, 1];
    const B_IP: [u8; 4] = [10, 0, 0, 2];

    fn pair(cc: CcKind, mss: u32) -> (Endpoint, Endpoint) {
        let mut ca = TcpConfig::new(A_IP, 40000, B_IP, 5001, mss, cc);
        ca.iss = 1_000;
        let mut cb = TcpConfig::new(B_IP, 5001, A_IP, 40000, mss, cc);
        cb.iss = 9_000_000;
        (Endpoint::new_active(ca), Endpoint::new_passive(cb))
    }

    /// A two-endpoint harness with a fixed one-way delay and optional
    /// fault injection on a→b data packets.
    struct Pipe {
        a: Endpoint,
        b: Endpoint,
        delay: Nanos,
        /// In flight: (deliver_at, to_b?, segment)
        wire: Vec<(Nanos, bool, Segment)>,
        now: Nanos,
        /// Drop the n-th a→b data packet (1-based counters).
        drop_nth_data: Vec<u64>,
        data_count: u64,
        /// CE-mark every a→b data packet whose index is in this list.
        mark_nth_data: Vec<u64>,
        /// Mark all data packets a→b.
        mark_all: bool,
        delivered_to_b: u64,
    }

    impl Pipe {
        fn new(a: Endpoint, b: Endpoint, delay: Nanos) -> Pipe {
            Pipe {
                a,
                b,
                delay,
                wire: Vec::new(),
                now: 0,
                drop_nth_data: Vec::new(),
                data_count: 0,
                mark_nth_data: Vec::new(),
                mark_all: false,
                delivered_to_b: 0,
            }
        }

        fn pump_out(&mut self) {
            loop {
                let mut emitted = false;
                while let Some(seg) = self.a.poll_transmit(self.now) {
                    let mut seg = seg;
                    if seg.payload_len() > 0 {
                        self.data_count += 1;
                        if self.drop_nth_data.contains(&self.data_count) {
                            emitted = true;
                            continue; // drop
                        }
                        if (self.mark_all || self.mark_nth_data.contains(&self.data_count))
                            && seg.ecn().is_ect()
                        {
                            seg.mark_ce();
                        }
                    }
                    self.wire.push((self.now + self.delay, true, seg));
                    emitted = true;
                }
                while let Some(seg) = self.b.poll_transmit(self.now) {
                    self.wire.push((self.now + self.delay, false, seg));
                    emitted = true;
                }
                if !emitted {
                    break;
                }
            }
        }

        /// Run the exchange until `deadline` or quiescence.
        fn run(&mut self, deadline: Nanos) {
            self.pump_out();
            loop {
                // Next event: earliest wire delivery or endpoint timer.
                let wire_t = self.wire.iter().map(|w| w.0).min();
                let timer_t = [self.a.next_timer(), self.b.next_timer()]
                    .into_iter()
                    .flatten()
                    .min();
                let next = match (wire_t, timer_t) {
                    (Some(w), Some(t)) => w.min(t),
                    (Some(w), None) => w,
                    (None, Some(t)) => t,
                    (None, None) => break,
                };
                if next > deadline {
                    break;
                }
                self.now = next;
                // Deliver due packets (stable order).
                let mut due: Vec<(Nanos, bool, Segment)> = Vec::new();
                let mut rest = Vec::new();
                for item in self.wire.drain(..) {
                    if item.0 <= self.now {
                        due.push(item);
                    } else {
                        rest.push(item);
                    }
                }
                self.wire = rest;
                for (_, to_b, seg) in due {
                    if to_b {
                        self.delivered_to_b += seg.payload_len() as u64;
                        self.b.on_segment(self.now, &seg);
                    } else {
                        self.a.on_segment(self.now, &seg);
                    }
                    // Hosts drain the endpoint after every packet; do the
                    // same so e.g. each out-of-order arrival produces its
                    // own duplicate ACK.
                    self.pump_out();
                }
                // Fire timers.
                if self.a.next_timer().is_some_and(|t| t <= self.now) {
                    self.a.on_timer(self.now);
                }
                if self.b.next_timer().is_some_and(|t| t <= self.now) {
                    self.b.on_timer(self.now);
                }
                self.pump_out();
            }
        }
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(10 * MILLISECOND);
        assert!(p.a.is_established());
        assert!(p.b.is_established());
        assert_eq!(p.a.state(), TcpState::Established);
        assert_eq!(p.b.state(), TcpState::Established);
        // SYN RTT sampled.
        assert!(p.a.srtt().unwrap() >= 100 * MICROSECOND);
    }

    #[test]
    fn bulk_transfer_delivers_everything() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(1_000_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(2_000 * MILLISECOND);
        assert_eq!(p.b.delivered_bytes(), 1_000_000);
        assert_eq!(p.a.acked_bytes(), 1_000_000);
        assert_eq!(p.a.retransmitted_segments(), 0);
    }

    #[test]
    fn mss_negotiation_uses_min() {
        let mut ca = TcpConfig::new(A_IP, 1, B_IP, 2, 8948, CcKind::Cubic);
        ca.iss = 5;
        let cb = TcpConfig::new(B_IP, 2, A_IP, 1, 1448, CcKind::Cubic);
        let mut a = Endpoint::new_active(ca);
        a.open(0);
        a.send(100_000);
        let b = Endpoint::new_passive(cb);
        let mut p = Pipe::new(a, b, 10 * MICROSECOND);
        p.run(MILLISECOND * 500);
        assert_eq!(p.a.mss(), 1448);
        assert_eq!(p.b.delivered_bytes(), 100_000);
    }

    #[test]
    fn fast_retransmit_recovers_from_single_loss() {
        let (mut a, b) = pair(CcKind::Reno, 1448);
        a.open(0);
        a.send(500_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.drop_nth_data = vec![30];
        p.run(2_000 * MILLISECOND);
        assert_eq!(p.b.delivered_bytes(), 500_000);
        assert!(p.a.retransmitted_segments() >= 1);
        assert_eq!(p.a.timeouts(), 0, "loss should be repaired without RTO");
    }

    #[test]
    fn rto_recovers_from_tail_loss() {
        let (mut a, b) = pair(CcKind::Reno, 1448);
        a.open(0);
        a.send(10 * 1448);
        // Drop the last segment: no dupacks possible → RTO required.
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.drop_nth_data = vec![10];
        p.run(2_000 * MILLISECOND);
        assert_eq!(p.b.delivered_bytes(), 10 * 1448);
        assert!(p.a.timeouts() >= 1);
    }

    #[test]
    fn multiple_losses_eventually_deliver() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(300_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.drop_nth_data = vec![5, 6, 7, 40, 80, 81, 120];
        p.run(5_000 * MILLISECOND);
        assert_eq!(p.b.delivered_bytes(), 300_000);
        assert_eq!(p.a.acked_bytes(), 300_000);
    }

    #[test]
    fn graceful_close_reaches_closed_states() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(10_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(100 * MILLISECOND);
        p.a.close();
        p.b.close();
        p.run(1_000 * MILLISECOND);
        assert!(p.a.is_closed(), "a state {:?}", p.a.state());
        assert!(p.b.is_closed(), "b state {:?}", p.b.state());
    }

    #[test]
    fn flow_control_respects_peer_window() {
        let (mut a, mut b) = pair(CcKind::Cubic, 1000);
        b.cfg.rcv_buf = 4_000; // tiny receive buffer
        a.open(0);
        a.send(1_000_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        // Run briefly: sender must never have more than ~4 KB in flight.
        p.run(MILLISECOND);
        assert!(
            p.a.in_flight() <= 4_000,
            "in flight {} exceeds peer window",
            p.a.in_flight()
        );
    }

    #[test]
    fn ignore_peer_rwnd_oversends() {
        let (mut a0, mut b) = pair(CcKind::Cubic, 1000);
        let mut cfg = a0.cfg.clone();
        cfg.ignore_peer_rwnd = true;
        let mut a = Endpoint::new_active(cfg);
        b.cfg.rcv_buf = 4_000;
        a.open(0);
        a.send(100_000_000); // enough that the transfer is still running
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        // Stop mid-slow-start so in-flight reflects the congestion window.
        p.run(600 * MICROSECOND);
        assert!(
            p.a.in_flight() > 4_000,
            "non-conforming stack should ignore the window (in flight {})",
            p.a.in_flight()
        );
        let _ = &mut a0;
    }

    #[test]
    fn dctcp_echo_reduces_window_on_marks() {
        let (mut a, b) = pair(CcKind::Dctcp, 1448);
        a.open(0);
        a.send(2_000_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.mark_all = true;
        p.run(200 * MILLISECOND);
        // Persistent marking must hold the window near the floor.
        assert!(
            p.a.cwnd() < 30_000,
            "cwnd {} should be suppressed by marks",
            p.a.cwnd()
        );
        assert!(p.b.delivered_bytes() > 0);
    }

    #[test]
    fn ecn_negotiation_requires_both_sides() {
        // DCTCP client against a non-ECN server: ecn_ok must be false.
        let mut ca = TcpConfig::new(A_IP, 1, B_IP, 2, 1448, CcKind::Dctcp);
        ca.iss = 7;
        let cb = TcpConfig::new(B_IP, 2, A_IP, 1, 1448, CcKind::Cubic);
        let mut a = Endpoint::new_active(ca);
        a.open(0);
        a.send(10_000);
        let b = Endpoint::new_passive(cb);
        let mut p = Pipe::new(a, b, 10 * MICROSECOND);
        p.run(100 * MILLISECOND);
        assert!(!p.a.ecn_negotiated());
        assert!(!p.b.ecn_negotiated());
        assert_eq!(p.b.delivered_bytes(), 10_000);
    }

    #[test]
    fn wire_sequence_wraparound_mid_transfer() {
        // Put iss near the top of the sequence space so the transfer wraps.
        let mut ca = TcpConfig::new(A_IP, 1, B_IP, 2, 1448, CcKind::Cubic);
        ca.iss = u32::MAX - 20_000;
        let mut cb = TcpConfig::new(B_IP, 2, A_IP, 1, 1448, CcKind::Cubic);
        cb.iss = u32::MAX - 5;
        let mut a = Endpoint::new_active(ca);
        a.open(0);
        a.send(500_000);
        let b = Endpoint::new_passive(cb);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(2_000 * MILLISECOND);
        assert_eq!(p.b.delivered_bytes(), 500_000);
        assert_eq!(p.a.acked_bytes(), 500_000);
    }

    #[test]
    fn delayed_ack_coalesces() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(100 * 1448);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(500 * MILLISECOND);
        // With delack=2 the receiver sends roughly one ACK per two
        // segments; the sender's stream is fully acked regardless.
        assert_eq!(p.a.acked_bytes(), 100 * 1448);
    }

    #[test]
    fn window_trace_is_observable() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(10_000_000);
        let start_cwnd = a.cwnd();
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(20 * MILLISECOND);
        assert!(p.a.cwnd() > start_cwnd, "cwnd should grow during transfer");
    }

    #[test]
    fn seq_view_matches_wire_accessors() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(100_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(5 * MILLISECOND);
        let v = p.a.seq_view();
        assert_eq!(v.snd_una, p.a.wire_snd_una());
        assert_eq!(v.snd_nxt, p.a.wire_snd_nxt());
        assert_eq!(u64::from(v.outstanding()), p.a.in_flight());
    }
}
