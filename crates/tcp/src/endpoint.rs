//! The TCP endpoint state machine.
//!
//! One [`Endpoint`] is one side of one connection, pre-bound to a 4-tuple
//! (the simulation knows its flows up front, so there is no listener
//! socket; a passive endpoint simply starts in [`TcpState::Listen`]).
//!
//! Internally all stream positions are **64-bit offsets** (0 = first
//! payload byte); they are converted to and from 32-bit wire sequence
//! numbers at the packet boundary, so arithmetic never worries about
//! wraparound while the wire format stays faithful.

use acdc_cc::{AckEvent, CcConfig, CongestionControl};
use acdc_packet::{
    Ecn, FlowKey, Ipv4Repr, PacketMeta, Segment, SeqNumber, TcpFlags, TcpOption, TcpRepr, PROTO_TCP,
};
use acdc_stats::time::Nanos;

use crate::TcpConfig;

/// Connection states (RFC 793 subset; no simultaneous open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Passive endpoint waiting for a SYN.
    Listen,
    /// Active endpoint that has sent its SYN.
    SynSent,
    /// Passive endpoint that has answered with SYN-ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN is acknowledged; waiting for the peer's.
    FinWait2,
    /// Both sides closed simultaneously: peer's FIN consumed while ours
    /// is still unacknowledged.
    Closing,
    /// Peer closed first; we may still send.
    CloseWait,
    /// We answered the peer's FIN with our own.
    LastAck,
    /// Both FINs exchanged; draining the network.
    TimeWait,
    /// Fully closed.
    Closed,
}

/// A sent-segment probe for RTT sampling (Karn's algorithm: one sample at
/// a time, never from retransmitted data).
#[derive(Debug, Clone, Copy)]
struct RttProbe {
    end_off: u64,
    sent_at: Nanos,
}

/// One side of a TCP connection.
pub struct Endpoint {
    cfg: TcpConfig,
    cc: Box<dyn CongestionControl>,
    state: TcpState,

    // ---- send side ----
    iss: SeqNumber,
    /// Stream bytes accepted from the application.
    stream_len: u64,
    /// First unacknowledged stream offset.
    snd_una: u64,
    /// Next stream offset to send.
    snd_nxt: u64,
    /// Highest stream offset ever sent (high-water mark; differs from
    /// `snd_nxt` after a timeout rewinds the send pointer).
    snd_max: u64,
    /// Application requested close.
    fin_queued: bool,
    /// FIN is currently counted as in flight (cleared by a timeout rewind).
    fin_sent: bool,
    /// FIN has been transmitted at least once (ACK validation window).
    fin_sent_ever: bool,
    /// FIN acknowledged.
    fin_acked: bool,
    /// Peer receive window in bytes (already scaled), relative to `snd_una`.
    peer_rwnd: u64,
    /// Raw window field of the last ACK (for duplicate-ACK detection).
    last_raw_wnd: u16,
    peer_wscale: u8,
    /// Effective MSS after negotiation.
    mss: u32,
    dupacks: u32,
    /// NewReno recovery point (stream offset) while in fast recovery.
    recover: Option<u64>,
    /// Pending head retransmission (fast retransmit or partial ACK).
    rtx_head_pending: bool,
    rtt_probe: Option<RttProbe>,
    srtt: Option<Nanos>,
    rttvar: Nanos,
    rto: Nanos,
    rto_deadline: Option<Nanos>,
    backoff: u32,
    /// Zero-window probe (persist) timer: armed when the peer closes its
    /// window while we still have data to send.
    persist_deadline: Option<Nanos>,
    persist_backoff: u32,
    /// A 1-byte window probe is due on the next poll.
    window_probe_pending: bool,
    /// Classic-ECN: a cut is pending CWR signalling on the next data.
    cwr_pending: bool,
    last_ecn_cut: Option<Nanos>,

    // ---- receive side ----
    irs: SeqNumber,
    /// Next expected in-order stream offset.
    rcv_nxt: u64,
    /// Out-of-order received ranges `(start, end)`, sorted, disjoint.
    ooo: Vec<(u64, u64)>,
    /// Peer FIN offset, once seen.
    fin_rcvd: Option<u64>,
    /// ECN negotiated on this connection.
    ecn_ok: bool,
    /// DCTCP-style accurate echo state.
    ce_state: bool,
    /// Classic ECE latch.
    ece_latch: bool,
    /// Segments received since the last ACK we sent.
    unacked_segs: u32,
    delack_deadline: Option<Nanos>,
    ack_now: bool,
    timewait_deadline: Option<Nanos>,

    // ---- handshake bookkeeping ----
    syn_sent_at: Option<Nanos>,
    need_syn: bool,
    need_synack: bool,

    // ---- stats ----
    retransmitted_segments: u64,
    timeouts: u64,
}

impl core::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Endpoint")
            .field("state", &self.state)
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("rcv_nxt", &self.rcv_nxt)
            .field("cwnd", &self.cc.cwnd())
            .finish()
    }
}

impl Endpoint {
    /// Create an active (connecting) endpoint. Call
    /// [`Endpoint::open`] to emit the SYN.
    pub fn new_active(cfg: TcpConfig) -> Endpoint {
        Endpoint::new(cfg, false)
    }

    /// Create a passive endpoint waiting for a SYN.
    pub fn new_passive(cfg: TcpConfig) -> Endpoint {
        Endpoint::new(cfg, true)
    }

    fn new(cfg: TcpConfig, passive: bool) -> Endpoint {
        let cc_cfg = CcConfig::host(cfg.mss);
        let cc = cfg.cc.build(cc_cfg);
        let cc: Box<dyn CongestionControl> = match cfg.cwnd_clamp {
            Some(clamp) => Box::new(acdc_cc::Clamped::new(cc, clamp)),
            None => cc,
        };
        Endpoint {
            iss: SeqNumber(cfg.iss),
            state: if passive {
                TcpState::Listen
            } else {
                TcpState::Closed
            },
            cc,
            stream_len: 0,
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            fin_queued: false,
            fin_sent: false,
            fin_sent_ever: false,
            fin_acked: false,
            peer_rwnd: u64::from(u16::MAX),
            last_raw_wnd: 0,
            peer_wscale: 0,
            mss: cfg.mss,
            dupacks: 0,
            recover: None,
            rtx_head_pending: false,
            rtt_probe: None,
            srtt: None,
            rttvar: 0,
            rto: cfg.rto_min.max(acdc_stats::time::MILLISECOND),
            rto_deadline: None,
            backoff: 0,
            persist_deadline: None,
            persist_backoff: 0,
            window_probe_pending: false,
            cwr_pending: false,
            last_ecn_cut: None,
            irs: SeqNumber(0),
            rcv_nxt: 0,
            ooo: Vec::new(),
            fin_rcvd: None,
            ecn_ok: false,
            ce_state: false,
            ece_latch: false,
            unacked_segs: 0,
            delack_deadline: None,
            ack_now: false,
            timewait_deadline: None,
            syn_sent_at: None,
            need_syn: false,
            need_synack: false,
            retransmitted_segments: 0,
            timeouts: 0,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Application interface
    // ------------------------------------------------------------------

    /// Begin the active open (emit a SYN on the next poll).
    pub fn open(&mut self, now: Nanos) {
        assert_eq!(self.state, TcpState::Closed, "open() on used endpoint");
        self.state = TcpState::SynSent;
        self.need_syn = true;
        self.syn_sent_at = Some(now);
        self.arm_rto(now);
    }

    /// Enqueue `bytes` of application data for transmission.
    pub fn send(&mut self, bytes: u64) {
        assert!(!self.fin_queued, "send() after close()");
        self.stream_len += bytes;
    }

    /// Close the sending direction once all queued data is delivered.
    pub fn close(&mut self) {
        self.fin_queued = true;
    }

    /// Stop offering new data: the stream is truncated at the highest
    /// offset already sent (in-flight data still completes). Used by the
    /// harness to end long-lived flows at a scheduled time (Figure 14's
    /// convergence test adds and removes flows every 30 s).
    pub fn stop_sending(&mut self) {
        if !self.fin_queued {
            self.stream_len = self.stream_len.min(self.snd_max.max(self.snd_nxt));
        }
    }

    /// Total stream bytes acknowledged by the peer.
    pub fn acked_bytes(&self) -> u64 {
        self.snd_una
    }

    /// Total stream bytes the application asked to send.
    pub fn queued_bytes(&self) -> u64 {
        self.stream_len
    }

    /// Total in-order stream bytes received (delivered to the app).
    pub fn delivered_bytes(&self) -> u64 {
        self.rcv_nxt
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// The endpoint's configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// The wire 5-tuple of this endpoint's *egress* (local → remote)
    /// direction — the same key the vSwitch flow table and the host NIC
    /// demux use.
    pub fn flow_key(&self) -> FlowKey {
        FlowKey {
            src_ip: self.cfg.local_ip,
            dst_ip: self.cfg.remote_ip,
            src_port: self.cfg.local_port,
            dst_port: self.cfg.remote_port,
        }
    }

    /// Is the connection established (data can flow)?
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::FinWait2
        )
    }

    /// Has the connection fully closed (both FINs exchanged + acked)?
    pub fn is_closed(&self) -> bool {
        matches!(self.state, TcpState::Closed | TcpState::TimeWait)
    }

    /// Current congestion window, bytes (for window tracing, Figure 9/10).
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// The congestion-control algorithm (for inspection).
    pub fn cc(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    /// Smoothed RTT estimate, if sampled yet.
    pub fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Nanos {
        self.rto
    }

    /// Segments retransmitted (fast or timeout-driven).
    pub fn retransmitted_segments(&self) -> u64 {
        self.retransmitted_segments
    }

    /// Retransmission-timeout count.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Current RTO backoff exponent: the armed timeout is
    /// `rto() << rto_backoff()` (capped at `rto_max`). Non-zero only
    /// while consecutive timeouts go unrepaired; reset by forward ACK
    /// progress.
    pub fn rto_backoff(&self) -> u32 {
        self.backoff
    }

    /// The peer's advertised receive window in bytes, as last seen
    /// (after AC/DC rewriting, this *is* the enforced window).
    pub fn peer_rwnd(&self) -> u64 {
        self.peer_rwnd
    }

    /// Bytes in flight.
    pub fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// `snd_una` as a wire sequence number — ground truth for comparing
    /// against the vSwitch's passively reconstructed per-flow state
    /// (paper §3.1; exercised by the chaos suite).
    pub fn wire_snd_una(&self) -> SeqNumber {
        self.wire_seq(self.snd_una)
    }

    /// `snd_nxt` as a wire sequence number (highest sent, ground truth
    /// for the vSwitch's reconstructed `snd_nxt`).
    pub fn wire_snd_nxt(&self) -> SeqNumber {
        self.wire_seq(self.snd_nxt.max(self.snd_max))
    }

    // ------------------------------------------------------------------
    // Wire sequence mapping
    // ------------------------------------------------------------------

    /// Wire sequence number for a send-stream offset.
    fn wire_seq(&self, off: u64) -> SeqNumber {
        self.iss + 1u32 + (off as u32)
    }

    /// Wire ACK number for the receive side.
    fn wire_ack(&self) -> SeqNumber {
        let fin_extra = match self.fin_rcvd {
            Some(f) if self.rcv_nxt >= f => 1u32,
            _ => 0,
        };
        self.irs + 1u32 + (self.rcv_nxt as u32) + fin_extra
    }

    /// Unwrap an incoming wire ACK into a send-stream offset (may exceed
    /// `stream_len` by one when it covers our FIN).
    fn unwrap_ack(&self, ack: SeqNumber) -> Option<u64> {
        let base = self.wire_seq(self.snd_una);
        let d = ack - base; // signed distance
        let candidate = self.snd_una as i64 + i64::from(d);
        let max_valid = self.snd_max + if self.fin_sent_ever { 1 } else { 0 };
        if candidate < 0 || candidate as u64 > max_valid {
            None
        } else {
            Some(candidate as u64)
        }
    }

    /// Unwrap an incoming wire data sequence into a receive-stream offset.
    fn unwrap_seq(&self, seq: SeqNumber) -> i64 {
        let base = self.irs + 1u32 + (self.rcv_nxt as u32);
        let d = seq - base;
        self.rcv_nxt as i64 + i64::from(d)
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Earliest pending timer deadline, if any. The host arms one timer
    /// and calls [`Endpoint::on_timer`] when it fires.
    pub fn next_timer(&self) -> Option<Nanos> {
        [
            self.rto_deadline,
            self.delack_deadline,
            self.timewait_deadline,
            self.persist_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn arm_rto(&mut self, now: Nanos) {
        let rto = self.rto << self.backoff.min(10);
        self.rto_deadline = Some(now + rto.min(self.cfg.rto_max));
    }

    fn maybe_disarm_rto(&mut self) {
        let outstanding = self.snd_nxt > self.snd_una
            || (self.fin_sent && !self.fin_acked)
            || self.need_syn
            || self.need_synack;
        if !outstanding {
            self.rto_deadline = None;
            self.backoff = 0;
        }
    }

    /// Handle timer expiry; the host calls this when `next_timer()` fires.
    pub fn on_timer(&mut self, now: Nanos) {
        if let Some(t) = self.timewait_deadline {
            if now >= t {
                self.timewait_deadline = None;
                self.state = TcpState::Closed;
            }
        }
        if let Some(t) = self.delack_deadline {
            if now >= t {
                self.delack_deadline = None;
                if self.unacked_segs > 0 {
                    self.ack_now = true;
                }
            }
        }
        if let Some(t) = self.rto_deadline {
            if now >= t {
                self.rto_deadline = None;
                self.handle_rto(now);
            }
        }
        if let Some(t) = self.persist_deadline {
            if now >= t {
                let probing_makes_sense = matches!(
                    self.state,
                    TcpState::Established | TcpState::CloseWait | TcpState::FinWait1
                ) && self.snd_una < self.stream_len;
                if probing_makes_sense {
                    // Send a 1-byte window probe beyond the advertised
                    // window and re-arm with exponential backoff. The probe
                    // carries real stream data; a reopened window acks it.
                    self.window_probe_pending = true;
                    self.persist_backoff = (self.persist_backoff + 1).min(10);
                    let delay = (self.rto << self.persist_backoff).min(self.cfg.rto_max);
                    self.persist_deadline = Some(now + delay);
                } else {
                    // Connection finished or torn down: stop probing.
                    self.persist_deadline = None;
                    self.persist_backoff = 0;
                }
            }
        }
    }

    fn handle_rto(&mut self, now: Nanos) {
        match self.state {
            TcpState::SynSent => {
                self.need_syn = true;
                self.backoff += 1;
                self.arm_rto(now);
            }
            TcpState::SynRcvd => {
                self.need_synack = true;
                self.backoff += 1;
                self.arm_rto(now);
            }
            TcpState::Closed | TcpState::Listen | TcpState::TimeWait => {}
            _ => {
                let outstanding = self.snd_nxt > self.snd_una || (self.fin_sent && !self.fin_acked);
                if !outstanding {
                    return;
                }
                self.timeouts += 1;
                self.cc.on_retransmit_timeout(now);
                // Go-back-N: rewind the send pointer; everything from
                // snd_una is resent as the window reopens.
                self.snd_nxt = self.snd_una;
                self.fin_sent = false;
                self.dupacks = 0;
                self.recover = None;
                self.rtx_head_pending = false;
                self.rtt_probe = None; // Karn
                self.retransmitted_segments += 1;
                self.backoff += 1;
                self.arm_rto(now);
            }
        }
    }

    fn take_rtt_sample(&mut self, now: Nanos, sample: Nanos) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let diff = srtt.abs_diff(sample);
                self.rttvar = (3 * self.rttvar + diff) / 4;
                self.srtt = Some((7 * srtt + sample) / 8);
            }
        }
        let srtt = self.srtt.unwrap();
        self.rto = (srtt + (4 * self.rttvar).max(acdc_stats::time::MILLISECOND / 1000))
            .max(self.cfg.rto_min)
            .min(self.cfg.rto_max);
        let _ = now;
    }

    // ------------------------------------------------------------------
    // Segment input
    // ------------------------------------------------------------------

    /// Feed an arriving segment (addressed to this endpoint).
    pub fn on_segment(&mut self, now: Nanos, seg: &Segment) {
        // One parse per packet lifetime: the NIC's checksum verification
        // already populated the cache, so this is normally a cache read.
        // A malformed frame (which the NIC should have dropped) is ignored.
        let Ok(meta) = seg.try_meta() else {
            return;
        };
        let flags = meta.flags;

        if flags.contains(TcpFlags::RST) {
            self.state = TcpState::Closed;
            return;
        }

        match self.state {
            TcpState::Listen => {
                if flags.contains(TcpFlags::SYN) {
                    self.irs = meta.seq;
                    self.parse_syn_options(&meta);
                    // ECN negotiation: SYN carries ECE|CWR.
                    self.ecn_ok = self.cfg.ecn
                        && flags.contains(TcpFlags::ECE)
                        && flags.contains(TcpFlags::CWR);
                    self.state = TcpState::SynRcvd;
                    self.need_synack = true;
                    self.arm_rto(now);
                }
            }
            TcpState::SynSent => {
                if flags.contains(TcpFlags::SYN) && flags.contains(TcpFlags::ACK) {
                    if self.unwrap_ack(meta.ack) != Some(0) {
                        return; // not acking our SYN
                    }
                    self.irs = meta.seq;
                    self.parse_syn_options(&meta);
                    self.ecn_ok = self.cfg.ecn && flags.contains(TcpFlags::ECE);
                    self.update_peer_window(meta.window, true);
                    self.state = TcpState::Established;
                    self.rto_deadline = None;
                    self.backoff = 0;
                    if let Some(t0) = self.syn_sent_at {
                        self.take_rtt_sample(now, now - t0);
                    }
                    self.ack_now = true;
                }
            }
            _ => {
                self.on_segment_established(now, seg, &meta);
            }
        }
    }

    fn parse_syn_options(&mut self, meta: &PacketMeta) {
        if let Some(mss) = meta.mss {
            self.mss = self.mss.min(u32::from(mss));
        }
        if let Some(ws) = meta.wscale {
            self.peer_wscale = ws.min(14);
        }
    }

    fn update_peer_window(&mut self, raw: u16, syn: bool) {
        self.last_raw_wnd = raw;
        self.peer_rwnd = if syn {
            u64::from(raw)
        } else {
            acdc_packet::unscale_rwnd(raw, self.peer_wscale)
        };
    }

    fn on_segment_established(&mut self, now: Nanos, seg: &Segment, meta: &PacketMeta) {
        let flags = meta.flags;

        // A retransmitted SYN-ACK while we are established: just re-ack.
        if flags.contains(TcpFlags::SYN) {
            if self.state == TcpState::SynRcvd && flags.contains(TcpFlags::ACK) {
                return;
            }
            self.ack_now = true;
            return;
        }

        // SYN-RCVD completes on the first valid ACK.
        if self.state == TcpState::SynRcvd
            && flags.contains(TcpFlags::ACK)
            && self.unwrap_ack(meta.ack) == Some(0)
        {
            self.state = TcpState::Established;
            self.rto_deadline = None;
            self.backoff = 0;
            self.need_synack = false;
        }

        if flags.contains(TcpFlags::ACK) {
            self.process_ack(now, seg, meta);
        }
        if seg.payload_len() > 0 || flags.contains(TcpFlags::FIN) {
            self.process_data(now, seg, meta);
        }
    }

    fn process_ack(&mut self, now: Nanos, seg: &Segment, meta: &PacketMeta) {
        let Some(ack_off) = self.unwrap_ack(meta.ack) else {
            return; // out-of-window ACK
        };
        let prev_raw_wnd = self.last_raw_wnd;
        self.update_peer_window(meta.window, false);
        let ece = meta.flags.contains(TcpFlags::ECE);

        // Persist (zero-window probe) management, RFC 793/1122: arm when
        // the peer window closes while data is pending; cancel on reopen.
        if self.peer_rwnd == 0 {
            if self.snd_nxt < self.stream_len && self.persist_deadline.is_none() {
                self.persist_backoff = 0;
                self.persist_deadline = Some(now + self.rto);
            }
        } else {
            self.persist_deadline = None;
            self.persist_backoff = 0;
            // If a probe byte is still outstanding when the window
            // reopens, hand it back to the normal retransmission machinery.
            if self.snd_nxt > self.snd_una && self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
        }

        let fin_ack = self.fin_sent_ever && ack_off == self.stream_len + 1;
        let newly_acked = ack_off.min(self.snd_max).saturating_sub(self.snd_una);

        if newly_acked == 0 && !fin_ack {
            // Duplicate ACK? Only if it carries no data, no window change,
            // and there is outstanding data (RFC 5681).
            if seg.payload_len() == 0
                && ack_off == self.snd_una
                && meta.window == prev_raw_wnd
                && self.snd_nxt > self.snd_una
            {
                self.dupacks += 1;
                if self.dupacks == 3 && self.recover.is_none() {
                    // Fast retransmit.
                    self.cc.on_fast_retransmit(now);
                    self.recover = Some(self.snd_nxt);
                    self.rtx_head_pending = true;
                    self.rtt_probe = None; // Karn
                }
            }
            // ECN processing still applies to duplicate ACKs for DCTCP.
            self.feed_cc_ack(now, 0, ece);
            return;
        }

        // New data acknowledged. The ACK may cover data sent before a
        // timeout rewound `snd_nxt`; pull the send pointer forward so we
        // do not retransmit bytes the receiver already has.
        self.snd_una = ack_off.min(self.snd_max);
        self.snd_nxt = self.snd_nxt.max(self.snd_una);
        crate::strict_invariant!(
            self.snd_una <= self.snd_nxt && self.snd_nxt <= self.snd_max,
            "send pointers out of order: una={} nxt={} max={}",
            self.snd_una,
            self.snd_nxt,
            self.snd_max
        );
        if fin_ack {
            self.fin_acked = true;
            self.fin_sent = true;
        }
        self.dupacks = 0;
        self.backoff = 0;

        // RTT sample (Karn: probe cleared on retransmission).
        if let Some(p) = self.rtt_probe {
            if self.snd_una >= p.end_off {
                let sample = now - p.sent_at;
                self.take_rtt_sample(now, sample);
                self.rtt_probe = None;
            }
        }

        // NewReno recovery bookkeeping.
        if let Some(recover) = self.recover {
            if self.snd_una >= recover {
                self.recover = None;
            } else {
                // Partial ACK: retransmit the next hole immediately.
                self.rtx_head_pending = true;
                self.retransmitted_segments += 1;
            }
        }

        self.feed_cc_ack(now, newly_acked, ece);

        // Restart or stop the retransmission timer.
        if self.snd_nxt > self.snd_una || (self.fin_sent && !self.fin_acked) {
            self.arm_rto(now);
        } else {
            self.maybe_disarm_rto();
        }

        // Teardown transitions driven by our-FIN acknowledgement.
        if self.fin_acked {
            match self.state {
                TcpState::FinWait1 => self.state = TcpState::FinWait2,
                TcpState::Closing => {
                    self.state = TcpState::TimeWait;
                    self.timewait_deadline = Some(now + 2 * self.cfg.rto_min);
                    self.rto_deadline = None;
                }
                TcpState::LastAck => {
                    self.state = TcpState::Closed;
                    self.rto_deadline = None;
                }
                _ => {}
            }
        }
    }

    fn feed_cc_ack(&mut self, now: Nanos, newly_acked: u64, ece: bool) {
        let dctcp = self.cc.wants_ecn();
        let marked = if dctcp && ece { newly_acked } else { 0 };
        // Linux only grows the window when the flow is actually
        // *cwnd-limited* (tcp_is_cwnd_limited): an application- or
        // NIC-limited flow must not inflate cwnd it never uses (that is
        // how senders avoid unbounded qdisc bufferbloat).
        let in_flight_before = self.in_flight() + newly_acked;
        let cwnd = self.cc.cwnd();
        let cwnd_limited = if self.cc.in_slow_start() {
            cwnd < 2 * in_flight_before
        } else {
            in_flight_before + 2 * u64::from(self.mss) >= cwnd
        };
        let rtt = if newly_acked > 0 {
            // The sample fed here is the probe-based one; expose the
            // latest srtt to algorithms that want per-ack RTTs.
            self.srtt
        } else {
            None
        };
        // Classic ECN: react to ECE like loss, at most once per RTT,
        // and schedule CWR signalling.
        if !dctcp && self.ecn_ok && ece {
            let can_cut = match self.last_ecn_cut {
                None => true,
                Some(t) => now.saturating_sub(t) >= self.srtt.unwrap_or(self.cfg.rto_min),
            };
            if can_cut {
                self.cc.on_fast_retransmit(now);
                self.last_ecn_cut = Some(now);
                self.cwr_pending = true;
            }
        }
        let congestion_signal = marked > 0 || (dctcp && ece);
        if (newly_acked > 0 && cwnd_limited) || congestion_signal {
            self.cc.on_ack(&AckEvent {
                now,
                newly_acked,
                marked,
                rtt,
                in_flight: self.in_flight(),
                ece,
            });
        }
    }

    fn process_data(&mut self, now: Nanos, seg: &Segment, meta: &PacketMeta) {
        let start = self.unwrap_seq(meta.seq);
        let len = seg.payload_len() as u64;
        let has_fin = meta.flags.contains(TcpFlags::FIN);

        if has_fin {
            let fin_off = (start + len as i64) as u64;
            if self.fin_rcvd.is_none() {
                self.fin_rcvd = Some(fin_off);
            }
        }

        // ECN feedback bookkeeping (on data packets only).
        if self.ecn_ok {
            let ce = seg.ecn().is_ce();
            if self.cfg_is_dctcp() {
                if ce != self.ce_state {
                    // DCTCP receiver: state change forces an immediate ACK
                    // so the echo stream stays byte-accurate.
                    self.ack_now = true;
                    self.ce_state = ce;
                }
            } else if ce {
                self.ece_latch = true;
            }
            if meta.flags.contains(TcpFlags::CWR) {
                self.ece_latch = false;
            }
        }

        if len > 0 {
            let end = start + len as i64;
            if end <= self.rcv_nxt as i64 {
                // Entirely duplicate data → ACK right away (dupack fuel).
                self.ack_now = true;
            } else {
                let s = start.max(self.rcv_nxt as i64) as u64;
                let e = end as u64;
                if start as u64 <= self.rcv_nxt && e > self.rcv_nxt {
                    // In-order (possibly overlapping) data.
                    self.rcv_nxt = e;
                    self.drain_ooo();
                    self.unacked_segs += 1;
                    if self.unacked_segs >= self.cfg.delack_segs {
                        self.ack_now = true;
                    } else if self.delack_deadline.is_none() {
                        self.delack_deadline = Some(now + self.cfg.delack_timeout);
                    }
                } else {
                    // Out of order: buffer the range, ACK immediately.
                    self.insert_ooo(s, e);
                    self.ack_now = true;
                }
            }
        }

        // Consume the FIN when it is in order.
        if let Some(f) = self.fin_rcvd {
            if self.rcv_nxt >= f {
                self.ack_now = true;
                match self.state {
                    TcpState::Established => self.state = TcpState::CloseWait,
                    TcpState::FinWait2 => {
                        self.state = TcpState::TimeWait;
                        self.timewait_deadline = Some(now + 2 * self.cfg.rto_min);
                        self.rto_deadline = None;
                    }
                    TcpState::FinWait1 => {
                        if self.fin_acked {
                            self.state = TcpState::TimeWait;
                            self.timewait_deadline = Some(now + 2 * self.cfg.rto_min);
                            self.rto_deadline = None;
                        } else {
                            // Simultaneous close: our FIN (and possibly
                            // data) still needs acknowledgement — keep the
                            // retransmission machinery alive.
                            self.state = TcpState::Closing;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    fn cfg_is_dctcp(&self) -> bool {
        self.cc.wants_ecn()
    }

    fn insert_ooo(&mut self, s: u64, e: u64) {
        if s >= e {
            return;
        }
        self.ooo.push((s, e));
        self.ooo.sort_unstable();
        // Merge overlapping/adjacent ranges.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.ooo.len());
        for &(s, e) in &self.ooo {
            if let Some(last) = merged.last_mut() {
                if s <= last.1 {
                    last.1 = last.1.max(e);
                    continue;
                }
            }
            merged.push((s, e));
        }
        self.ooo = merged;
    }

    fn drain_ooo(&mut self) {
        while let Some(&(s, e)) = self.ooo.first() {
            if s <= self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.max(e);
                self.ooo.remove(0);
            } else {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Segment output
    // ------------------------------------------------------------------

    /// Advertised receive window in bytes. The simulated application
    /// drains in-order data instantly, so the window is the full buffer;
    /// out-of-order data sits *inside* the advertised span and does not
    /// shrink the right edge (shrinking it would also defeat RFC 5681
    /// duplicate-ACK detection, which requires an unchanged window).
    fn adv_window_bytes(&self) -> u64 {
        self.cfg.rcv_buf
    }

    fn adv_window_raw(&self) -> u16 {
        acdc_packet::scale_rwnd(self.adv_window_bytes(), self.cfg.wscale)
    }

    /// Build the next outgoing segment, if anything needs sending.
    /// Hosts call this in a loop after every event until it yields `None`.
    pub fn poll_transmit(&mut self, now: Nanos) -> Option<Segment> {
        // 1. Handshake packets.
        if self.need_syn {
            self.need_syn = false;
            return Some(self.make_syn(false));
        }
        if self.need_synack {
            self.need_synack = false;
            return Some(self.make_syn(true));
        }
        // In TIME-WAIT / CLOSED we still answer retransmitted FINs with a
        // pure ACK (RFC 793) — otherwise the peer wedges in LAST-ACK.
        if matches!(self.state, TcpState::TimeWait | TcpState::Closed) {
            if self.ack_now && self.fin_rcvd.is_some() {
                self.clear_ack_state();
                return Some(self.make_ack());
            }
            return None;
        }
        if !self.is_established() && !matches!(self.state, TcpState::LastAck | TcpState::Closing) {
            return None;
        }

        // 2. Head retransmission (fast retransmit / partial-ACK hole fill).
        if self.rtx_head_pending && self.snd_nxt > self.snd_una {
            self.rtx_head_pending = false;
            self.retransmitted_segments += 1;
            let len = (self.snd_nxt - self.snd_una).min(u64::from(self.mss));
            self.arm_rto(now);
            return Some(self.make_data(self.snd_una, len as usize, false));
        }
        self.rtx_head_pending = false;

        // 2b. Zero-window probe: one byte of real data past the window.
        // Probe retransmission is owned by the *persist* timer (not the
        // RTO, which would needlessly collapse cwnd while the peer is
        // simply full), so no retransmission timer is armed here.
        if self.window_probe_pending {
            self.window_probe_pending = false;
            let state_ok = matches!(
                self.state,
                TcpState::Established | TcpState::CloseWait | TcpState::FinWait1
            );
            if state_ok && self.peer_rwnd == 0 && self.snd_una < self.stream_len {
                let off = self.snd_una;
                if self.snd_nxt == self.snd_una {
                    self.snd_nxt += 1;
                    self.snd_max = self.snd_max.max(self.snd_nxt);
                }
                let _ = now;
                self.clear_ack_state();
                return Some(self.make_data(off, 1, false));
            }
        }

        // 3. New data within the windows.
        if self.can_send_data() {
            let usable = self.usable_window();
            let remaining = self.stream_len - self.snd_nxt;
            let len = remaining.min(u64::from(self.mss)).min(usable);
            if len > 0 {
                let off = self.snd_nxt;
                self.snd_nxt += len;
                self.snd_max = self.snd_max.max(self.snd_nxt);
                // FIN may ride the last data segment.
                let fin = self.fin_ready();
                if fin {
                    self.fin_sent = true;
                    self.fin_sent_ever = true;
                    self.after_fin_sent();
                }
                if self.rtt_probe.is_none() {
                    self.rtt_probe = Some(RttProbe {
                        end_off: off + len,
                        sent_at: now,
                    });
                }
                if self.rto_deadline.is_none() {
                    self.arm_rto(now);
                }
                self.clear_ack_state();
                return Some(self.make_data(off, len as usize, fin));
            }
        }

        // 4. A bare FIN once all data is out and acknowledged as sendable.
        if self.fin_ready() && !self.fin_sent {
            self.fin_sent = true;
            self.fin_sent_ever = true;
            self.after_fin_sent();
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
            self.clear_ack_state();
            return Some(self.make_data(self.snd_nxt, 0, true));
        }

        // 5. A pure ACK if one is due.
        if self.ack_now {
            self.clear_ack_state();
            return Some(self.make_ack());
        }

        None
    }

    fn after_fin_sent(&mut self) {
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            _ => {}
        }
    }

    fn fin_ready(&self) -> bool {
        self.fin_queued && !self.fin_sent && self.snd_nxt == self.stream_len
    }

    fn can_send_data(&self) -> bool {
        // LAST-ACK is included: a timeout rewinds `snd_nxt`, and the data
        // ahead of our FIN must still be retransmittable from that state.
        matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::LastAck
                | TcpState::Closing
        ) && self.snd_nxt < self.stream_len
    }

    fn usable_window(&self) -> u64 {
        let cwnd = self.cc.cwnd();
        let flow = if self.cfg.ignore_peer_rwnd {
            u64::MAX
        } else {
            // Peer window is relative to snd_una.
            (self.snd_una + self.peer_rwnd).saturating_sub(self.snd_nxt)
        };
        let cong = cwnd.saturating_sub(self.in_flight());
        cong.min(flow)
    }

    fn clear_ack_state(&mut self) {
        self.ack_now = false;
        self.unacked_segs = 0;
        self.delack_deadline = None;
    }

    fn ip_repr(&self, ecn: Ecn) -> Ipv4Repr {
        Ipv4Repr {
            src_addr: self.cfg.local_ip,
            dst_addr: self.cfg.remote_ip,
            protocol: PROTO_TCP,
            ecn,
            payload_len: 0,
            ttl: Ipv4Repr::DEFAULT_TTL,
        }
    }

    fn base_tcp(&self) -> TcpRepr {
        let mut t = TcpRepr::new(self.cfg.local_port, self.cfg.remote_port);
        t.window = self.adv_window_raw();
        t
    }

    fn make_syn(&mut self, is_synack: bool) -> Segment {
        let mut t = self.base_tcp();
        t.seq = self.iss;
        t.flags = TcpFlags::SYN;
        if is_synack {
            t.flags |= TcpFlags::ACK;
            t.ack = self.irs + 1u32;
            if self.ecn_ok {
                t.flags |= TcpFlags::ECE;
            }
        } else if self.cfg.ecn {
            t.flags |= TcpFlags::ECE | TcpFlags::CWR;
        }
        // SYN windows are never scaled.
        t.window = self.adv_window_bytes().min(u64::from(u16::MAX)) as u16;
        t.options = vec![
            TcpOption::MaxSegmentSize(self.cfg.mss as u16),
            TcpOption::WindowScale(self.cfg.wscale),
            TcpOption::NoOperation,
        ];
        Segment::new_tcp(self.ip_repr(Ecn::NotEct), t, 0)
    }

    fn make_data(&mut self, off: u64, len: usize, fin: bool) -> Segment {
        let mut t = self.base_tcp();
        t.seq = self.wire_seq(off);
        t.ack = self.wire_ack();
        t.flags = TcpFlags::ACK;
        if fin {
            t.flags |= TcpFlags::FIN;
        }
        if len > 0 && self.cwr_pending {
            t.flags |= TcpFlags::CWR;
            self.cwr_pending = false;
        }
        if self.echo_ece() {
            t.flags |= TcpFlags::ECE;
        }
        // DCTCP sets ECT on every packet (Linux marks the whole socket);
        // classic ECN only on data segments (RFC 3168 forbids ECT on pure
        // ACKs).
        let ecn = if self.ecn_ok && (len > 0 || self.cfg_is_dctcp()) {
            Ecn::Ect0
        } else {
            Ecn::NotEct
        };
        Segment::new_tcp(self.ip_repr(ecn), t, len)
    }

    fn make_ack(&mut self) -> Segment {
        let mut t = self.base_tcp();
        t.seq = self.wire_seq(self.snd_nxt);
        t.ack = self.wire_ack();
        t.flags = TcpFlags::ACK;
        if self.echo_ece() {
            t.flags |= TcpFlags::ECE;
        }
        let ecn = if self.ecn_ok && self.cfg_is_dctcp() {
            Ecn::Ect0
        } else {
            Ecn::NotEct
        };
        Segment::new_tcp(self.ip_repr(ecn), t, 0)
    }

    fn echo_ece(&self) -> bool {
        if !self.ecn_ok {
            return false;
        }
        if self.cfg_is_dctcp() {
            self.ce_state
        } else {
            self.ece_latch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acdc_cc::CcKind;
    use acdc_stats::time::{MICROSECOND, MILLISECOND};

    const A_IP: [u8; 4] = [10, 0, 0, 1];
    const B_IP: [u8; 4] = [10, 0, 0, 2];

    fn pair(cc: CcKind, mss: u32) -> (Endpoint, Endpoint) {
        let mut ca = TcpConfig::new(A_IP, 40000, B_IP, 5001, mss, cc);
        ca.iss = 1_000;
        let mut cb = TcpConfig::new(B_IP, 5001, A_IP, 40000, mss, cc);
        cb.iss = 9_000_000;
        (Endpoint::new_active(ca), Endpoint::new_passive(cb))
    }

    /// A two-endpoint harness with a fixed one-way delay and optional
    /// fault injection on a→b data packets.
    struct Pipe {
        a: Endpoint,
        b: Endpoint,
        delay: Nanos,
        /// In flight: (deliver_at, to_b?, segment)
        wire: Vec<(Nanos, bool, Segment)>,
        now: Nanos,
        /// Drop the n-th a→b data packet (1-based counters).
        drop_nth_data: Vec<u64>,
        data_count: u64,
        /// CE-mark every a→b data packet whose index is in this list.
        mark_nth_data: Vec<u64>,
        /// Mark all data packets a→b.
        mark_all: bool,
        delivered_to_b: u64,
    }

    impl Pipe {
        fn new(a: Endpoint, b: Endpoint, delay: Nanos) -> Pipe {
            Pipe {
                a,
                b,
                delay,
                wire: Vec::new(),
                now: 0,
                drop_nth_data: Vec::new(),
                data_count: 0,
                mark_nth_data: Vec::new(),
                mark_all: false,
                delivered_to_b: 0,
            }
        }

        fn pump_out(&mut self) {
            loop {
                let mut emitted = false;
                while let Some(seg) = self.a.poll_transmit(self.now) {
                    let mut seg = seg;
                    if seg.payload_len() > 0 {
                        self.data_count += 1;
                        if self.drop_nth_data.contains(&self.data_count) {
                            emitted = true;
                            continue; // drop
                        }
                        if (self.mark_all || self.mark_nth_data.contains(&self.data_count))
                            && seg.ecn().is_ect()
                        {
                            seg.mark_ce();
                        }
                    }
                    self.wire.push((self.now + self.delay, true, seg));
                    emitted = true;
                }
                while let Some(seg) = self.b.poll_transmit(self.now) {
                    self.wire.push((self.now + self.delay, false, seg));
                    emitted = true;
                }
                if !emitted {
                    break;
                }
            }
        }

        /// Run the exchange until `deadline` or quiescence.
        fn run(&mut self, deadline: Nanos) {
            self.pump_out();
            loop {
                // Next event: earliest wire delivery or endpoint timer.
                let wire_t = self.wire.iter().map(|w| w.0).min();
                let timer_t = [self.a.next_timer(), self.b.next_timer()]
                    .into_iter()
                    .flatten()
                    .min();
                let next = match (wire_t, timer_t) {
                    (Some(w), Some(t)) => w.min(t),
                    (Some(w), None) => w,
                    (None, Some(t)) => t,
                    (None, None) => break,
                };
                if next > deadline {
                    break;
                }
                self.now = next;
                // Deliver due packets (stable order).
                let mut due: Vec<(Nanos, bool, Segment)> = Vec::new();
                let mut rest = Vec::new();
                for item in self.wire.drain(..) {
                    if item.0 <= self.now {
                        due.push(item);
                    } else {
                        rest.push(item);
                    }
                }
                self.wire = rest;
                for (_, to_b, seg) in due {
                    if to_b {
                        self.delivered_to_b += seg.payload_len() as u64;
                        self.b.on_segment(self.now, &seg);
                    } else {
                        self.a.on_segment(self.now, &seg);
                    }
                    // Hosts drain the endpoint after every packet; do the
                    // same so e.g. each out-of-order arrival produces its
                    // own duplicate ACK.
                    self.pump_out();
                }
                // Fire timers.
                if self.a.next_timer().is_some_and(|t| t <= self.now) {
                    self.a.on_timer(self.now);
                }
                if self.b.next_timer().is_some_and(|t| t <= self.now) {
                    self.b.on_timer(self.now);
                }
                self.pump_out();
            }
        }
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(10 * MILLISECOND);
        assert!(p.a.is_established());
        assert!(p.b.is_established());
        assert_eq!(p.a.state(), TcpState::Established);
        assert_eq!(p.b.state(), TcpState::Established);
        // SYN RTT sampled.
        assert!(p.a.srtt().unwrap() >= 100 * MICROSECOND);
    }

    #[test]
    fn bulk_transfer_delivers_everything() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(1_000_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(2_000 * MILLISECOND);
        assert_eq!(p.b.delivered_bytes(), 1_000_000);
        assert_eq!(p.a.acked_bytes(), 1_000_000);
        assert_eq!(p.a.retransmitted_segments(), 0);
    }

    #[test]
    fn mss_negotiation_uses_min() {
        let mut ca = TcpConfig::new(A_IP, 1, B_IP, 2, 8948, CcKind::Cubic);
        ca.iss = 5;
        let cb = TcpConfig::new(B_IP, 2, A_IP, 1, 1448, CcKind::Cubic);
        let mut a = Endpoint::new_active(ca);
        a.open(0);
        a.send(100_000);
        let b = Endpoint::new_passive(cb);
        let mut p = Pipe::new(a, b, 10 * MICROSECOND);
        p.run(MILLISECOND * 500);
        assert_eq!(p.a.mss, 1448);
        assert_eq!(p.b.delivered_bytes(), 100_000);
    }

    #[test]
    fn fast_retransmit_recovers_from_single_loss() {
        let (mut a, b) = pair(CcKind::Reno, 1448);
        a.open(0);
        a.send(500_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.drop_nth_data = vec![30];
        p.run(2_000 * MILLISECOND);
        assert_eq!(p.b.delivered_bytes(), 500_000);
        assert!(p.a.retransmitted_segments() >= 1);
        assert_eq!(p.a.timeouts(), 0, "loss should be repaired without RTO");
    }

    #[test]
    fn rto_recovers_from_tail_loss() {
        let (mut a, b) = pair(CcKind::Reno, 1448);
        a.open(0);
        a.send(10 * 1448);
        // Drop the last segment: no dupacks possible → RTO required.
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.drop_nth_data = vec![10];
        p.run(2_000 * MILLISECOND);
        assert_eq!(p.b.delivered_bytes(), 10 * 1448);
        assert!(p.a.timeouts() >= 1);
    }

    #[test]
    fn multiple_losses_eventually_deliver() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(300_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.drop_nth_data = vec![5, 6, 7, 40, 80, 81, 120];
        p.run(5_000 * MILLISECOND);
        assert_eq!(p.b.delivered_bytes(), 300_000);
        assert_eq!(p.a.acked_bytes(), 300_000);
    }

    #[test]
    fn graceful_close_reaches_closed_states() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(10_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(100 * MILLISECOND);
        p.a.close();
        p.b.close();
        p.run(1_000 * MILLISECOND);
        assert!(p.a.is_closed(), "a state {:?}", p.a.state());
        assert!(p.b.is_closed(), "b state {:?}", p.b.state());
    }

    #[test]
    fn flow_control_respects_peer_window() {
        let (mut a, mut b) = pair(CcKind::Cubic, 1000);
        b.cfg.rcv_buf = 4_000; // tiny receive buffer
        a.open(0);
        a.send(1_000_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        // Run briefly: sender must never have more than ~4 KB in flight.
        p.run(MILLISECOND);
        assert!(
            p.a.in_flight() <= 4_000,
            "in flight {} exceeds peer window",
            p.a.in_flight()
        );
    }

    #[test]
    fn ignore_peer_rwnd_oversends() {
        let (mut a0, mut b) = pair(CcKind::Cubic, 1000);
        let mut cfg = a0.cfg.clone();
        cfg.ignore_peer_rwnd = true;
        let mut a = Endpoint::new_active(cfg);
        b.cfg.rcv_buf = 4_000;
        a.open(0);
        a.send(100_000_000); // enough that the transfer is still running
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        // Stop mid-slow-start so in-flight reflects the congestion window.
        p.run(600 * MICROSECOND);
        assert!(
            p.a.in_flight() > 4_000,
            "non-conforming stack should ignore the window (in flight {})",
            p.a.in_flight()
        );
        let _ = &mut a0;
    }

    #[test]
    fn dctcp_echo_reduces_window_on_marks() {
        let (mut a, b) = pair(CcKind::Dctcp, 1448);
        a.open(0);
        a.send(2_000_000);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.mark_all = true;
        p.run(200 * MILLISECOND);
        // Persistent marking must hold the window near the floor.
        assert!(
            p.a.cwnd() < 30_000,
            "cwnd {} should be suppressed by marks",
            p.a.cwnd()
        );
        assert!(p.b.delivered_bytes() > 0);
    }

    #[test]
    fn ecn_negotiation_requires_both_sides() {
        // DCTCP client against a non-ECN server: ecn_ok must be false.
        let mut ca = TcpConfig::new(A_IP, 1, B_IP, 2, 1448, CcKind::Dctcp);
        ca.iss = 7;
        let cb = TcpConfig::new(B_IP, 2, A_IP, 1, 1448, CcKind::Cubic);
        let mut a = Endpoint::new_active(ca);
        a.open(0);
        a.send(10_000);
        let b = Endpoint::new_passive(cb);
        let mut p = Pipe::new(a, b, 10 * MICROSECOND);
        p.run(100 * MILLISECOND);
        assert!(!p.a.ecn_ok);
        assert!(!p.b.ecn_ok);
        assert_eq!(p.b.delivered_bytes(), 10_000);
    }

    #[test]
    fn wire_sequence_wraparound_mid_transfer() {
        // Put iss near the top of the sequence space so the transfer wraps.
        let mut ca = TcpConfig::new(A_IP, 1, B_IP, 2, 1448, CcKind::Cubic);
        ca.iss = u32::MAX - 20_000;
        let mut cb = TcpConfig::new(B_IP, 2, A_IP, 1, 1448, CcKind::Cubic);
        cb.iss = u32::MAX - 5;
        let mut a = Endpoint::new_active(ca);
        a.open(0);
        a.send(500_000);
        let b = Endpoint::new_passive(cb);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(2_000 * MILLISECOND);
        assert_eq!(p.b.delivered_bytes(), 500_000);
        assert_eq!(p.a.acked_bytes(), 500_000);
    }

    #[test]
    fn delayed_ack_coalesces() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(100 * 1448);
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(500 * MILLISECOND);
        // With delack=2 the receiver sends roughly one ACK per two
        // segments; the sender's stream is fully acked regardless.
        assert_eq!(p.a.acked_bytes(), 100 * 1448);
    }

    #[test]
    fn window_trace_is_observable() {
        let (mut a, b) = pair(CcKind::Cubic, 1448);
        a.open(0);
        a.send(10_000_000);
        let start_cwnd = a.cwnd();
        let mut p = Pipe::new(a, b, 50 * MICROSECOND);
        p.run(20 * MILLISECOND);
        assert!(p.a.cwnd() > start_cwnd, "cwnd should grow during transfer");
    }
}
