//! Connection management: the RFC 793 state machine, ISN bookkeeping,
//! MSS negotiation and the FIN lifecycle.
//!
//! `acdc-scope: endpoint.conn-mgmt` — every mutation of connection-
//! lifecycle state lives in this file; the [`Endpoint`] orchestrator and
//! the other components read it through the accessor methods only. The
//! write-scope manifest (`crates/xtask/scopes.toml`) makes that contract
//! machine-checked: `xtask analyze` flags any write to these fields from
//! another file.
//!
//! [`Endpoint`]: crate::Endpoint

use acdc_packet::SeqNumber;
use acdc_stats::time::Nanos;

use crate::TcpState;

/// Connection-lifecycle state for one endpoint: where we are in the RFC
/// 793 diagram, the negotiated parameters, and which control packets
/// (SYN / SYN-ACK / FIN) are pending or accounted for.
#[derive(Debug)]
pub struct ConnMgmt {
    state: TcpState,
    /// Our initial send sequence number.
    local_iss: SeqNumber,
    /// The peer's initial sequence number, once learned.
    irs: SeqNumber,
    /// Effective MSS after negotiation.
    eff_mss: u32,
    /// Application requested close.
    fin_queued: bool,
    /// FIN is currently counted as in flight (cleared by a timeout rewind).
    fin_sent: bool,
    /// FIN has been transmitted at least once (ACK validation window).
    fin_sent_ever: bool,
    /// FIN acknowledged.
    fin_acked: bool,
    /// A SYN must be (re)transmitted on the next poll.
    need_syn: bool,
    /// A SYN-ACK must be (re)transmitted on the next poll.
    need_synack: bool,
    /// When the active SYN went out (handshake RTT sample).
    syn_sent_at: Option<Nanos>,
    /// TIME-WAIT expiry.
    timewait_deadline: Option<Nanos>,
}

impl ConnMgmt {
    /// Fresh connection state: `Listen` for a passive endpoint, `Closed`
    /// (awaiting [`ConnMgmt::begin_active_open`]) for an active one.
    pub fn new(iss: SeqNumber, mss: u32, passive: bool) -> ConnMgmt {
        ConnMgmt {
            state: if passive {
                TcpState::Listen
            } else {
                TcpState::Closed
            },
            local_iss: iss,
            irs: SeqNumber(0),
            eff_mss: mss,
            fin_queued: false,
            fin_sent: false,
            fin_sent_ever: false,
            fin_acked: false,
            need_syn: false,
            need_synack: false,
            syn_sent_at: None,
            timewait_deadline: None,
        }
    }

    // ---- views -------------------------------------------------------

    /// Current connection state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Our initial send sequence number.
    pub fn iss(&self) -> SeqNumber {
        self.local_iss
    }

    /// The peer's initial sequence number (zero until learned).
    pub fn irs(&self) -> SeqNumber {
        self.irs
    }

    /// Effective MSS after negotiation.
    pub fn mss(&self) -> u32 {
        self.eff_mss
    }

    /// Has the application requested close?
    pub fn fin_queued(&self) -> bool {
        self.fin_queued
    }

    /// Is our FIN currently counted as in flight?
    pub fn fin_sent(&self) -> bool {
        self.fin_sent
    }

    /// Has our FIN ever been transmitted?
    pub fn fin_sent_ever(&self) -> bool {
        self.fin_sent_ever
    }

    /// Has the peer acknowledged our FIN?
    pub fn fin_acked(&self) -> bool {
        self.fin_acked
    }

    /// Is a SYN retransmission pending?
    pub fn need_syn(&self) -> bool {
        self.need_syn
    }

    /// Is a SYN-ACK retransmission pending?
    pub fn need_synack(&self) -> bool {
        self.need_synack
    }

    /// When the active SYN went out, for the handshake RTT sample.
    pub fn syn_sent_at(&self) -> Option<Nanos> {
        self.syn_sent_at
    }

    /// TIME-WAIT expiry deadline, if armed.
    pub fn timewait_deadline(&self) -> Option<Nanos> {
        self.timewait_deadline
    }

    // ---- transitions -------------------------------------------------

    /// Begin the active open: queue the SYN and record its send time.
    ///
    /// # Panics
    /// If the endpoint was already opened.
    pub fn begin_active_open(&mut self, now: Nanos) {
        assert_eq!(self.state, TcpState::Closed, "open() on used endpoint");
        self.state = TcpState::SynSent;
        self.need_syn = true;
        self.syn_sent_at = Some(now);
    }

    /// The application closed its sending direction.
    pub fn queue_close(&mut self) {
        self.fin_queued = true;
    }

    /// An RST arrived: hard-close the connection.
    pub fn on_rst(&mut self) {
        self.state = TcpState::Closed;
    }

    /// A SYN arrived in `Listen`: record the peer's ISN and queue the
    /// SYN-ACK.
    pub fn on_listen_syn(&mut self, peer_isn: SeqNumber) {
        self.irs = peer_isn;
        self.state = TcpState::SynRcvd;
        self.need_synack = true;
    }

    /// A valid SYN-ACK arrived in `SynSent`: record the peer's ISN and
    /// establish.
    pub fn complete_active_open(&mut self, peer_isn: SeqNumber) {
        self.irs = peer_isn;
        self.state = TcpState::Established;
    }

    /// The first valid ACK completed the passive handshake.
    pub fn complete_passive_open(&mut self) {
        self.state = TcpState::Established;
        self.need_synack = false;
    }

    /// Clamp the MSS to the peer's advertised value.
    pub fn negotiate_mss(&mut self, peer_mss: u16) {
        self.eff_mss = self.eff_mss.min(u32::from(peer_mss));
    }

    /// The retransmission timer fired while our SYN was unanswered.
    pub fn retry_syn(&mut self) {
        self.need_syn = true;
    }

    /// The retransmission timer fired while our SYN-ACK was unanswered.
    pub fn retry_synack(&mut self) {
        self.need_synack = true;
    }

    /// Consume a pending SYN transmission, if one is queued.
    pub fn take_need_syn(&mut self) -> bool {
        let due = self.need_syn;
        self.need_syn = false;
        due
    }

    /// Consume a pending SYN-ACK transmission, if one is queued.
    pub fn take_need_synack(&mut self) -> bool {
        let due = self.need_synack;
        self.need_synack = false;
        due
    }

    /// Our FIN is going out (possibly riding a data segment): account for
    /// it and take the close-side state transition.
    pub fn send_fin(&mut self) {
        self.fin_sent = true;
        self.fin_sent_ever = true;
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            _ => {}
        }
    }

    /// A timeout rewind un-counts the in-flight FIN (it will be resent
    /// as the send pointer catches back up).
    pub fn rewind_fin(&mut self) {
        self.fin_sent = false;
    }

    /// The peer's ACK covers our FIN.
    pub fn note_fin_acked(&mut self) {
        self.fin_acked = true;
        self.fin_sent = true;
    }

    /// Take the teardown transition driven by our-FIN acknowledgement.
    /// Returns `true` when the retransmission deadline must be cleared
    /// (the connection reached TIME-WAIT or fully closed).
    pub fn on_fin_acked_transition(&mut self, now: Nanos, timewait: Nanos) -> bool {
        match self.state {
            TcpState::FinWait1 => {
                self.state = TcpState::FinWait2;
                false
            }
            TcpState::Closing => {
                self.state = TcpState::TimeWait;
                self.timewait_deadline = Some(now + timewait);
                true
            }
            TcpState::LastAck => {
                self.state = TcpState::Closed;
                true
            }
            _ => false,
        }
    }

    /// The peer's FIN was consumed in order: take the receive-side
    /// teardown transition. Returns `true` when the retransmission
    /// deadline must be cleared (the connection reached TIME-WAIT).
    pub fn on_fin_consumed(&mut self, now: Nanos, timewait: Nanos) -> bool {
        match self.state {
            TcpState::Established => {
                self.state = TcpState::CloseWait;
                false
            }
            TcpState::FinWait2 => {
                self.state = TcpState::TimeWait;
                self.timewait_deadline = Some(now + timewait);
                true
            }
            TcpState::FinWait1 => {
                if self.fin_acked {
                    self.state = TcpState::TimeWait;
                    self.timewait_deadline = Some(now + timewait);
                    true
                } else {
                    // Simultaneous close: our FIN (and possibly data)
                    // still needs acknowledgement — keep the
                    // retransmission machinery alive.
                    self.state = TcpState::Closing;
                    false
                }
            }
            _ => false,
        }
    }

    /// Expire TIME-WAIT if its deadline has passed.
    pub fn fire_timewait(&mut self, now: Nanos) {
        if let Some(t) = self.timewait_deadline {
            if now >= t {
                self.timewait_deadline = None;
                self.state = TcpState::Closed;
            }
        }
    }
}
