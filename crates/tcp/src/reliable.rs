//! Send-side reliable delivery: the sliding send pointers, NewReno loss
//! recovery, Karn RTT estimation and the retransmission/backoff timer.
//!
//! `acdc-scope: endpoint.reliable-delivery` — every mutation of the send
//! pointers (`snd_una`/`snd_nxt`/`snd_max`), the recovery state and the
//! RTO machinery lives in this file. The [`Endpoint`] orchestrator reads
//! the pointers through views (notably [`SeqView`], the shared currency
//! for comparing against the vSwitch's passively reconstructed state)
//! and drives transitions through the methods here; `xtask analyze`
//! rejects writes from any other file.
//!
//! All offsets are 64-bit stream positions (0 = first payload byte);
//! wire-sequence conversion happens at the [`Endpoint`] packet boundary.
//!
//! [`Endpoint`]: crate::Endpoint

pub use acdc_packet::SeqView;
use acdc_stats::time::Nanos;

/// A sent-segment probe for RTT sampling (Karn's algorithm: one sample
/// at a time, never from retransmitted data).
#[derive(Debug, Clone, Copy)]
struct RttProbe {
    end_off: u64,
    sent_at: Nanos,
}

/// Send-side reliability state for one endpoint: what has been queued,
/// sent and acknowledged, plus the machinery that repairs the gaps
/// (duplicate-ACK fast retransmit, NewReno partial-ACK hole filling,
/// and the exponentially backed-off retransmission timeout).
#[derive(Debug)]
pub struct ReliableDelivery {
    /// Stream bytes accepted from the application.
    stream_len: u64,
    /// First unacknowledged stream offset.
    snd_una: u64,
    /// Next stream offset to send.
    snd_nxt: u64,
    /// Highest stream offset ever sent (high-water mark; differs from
    /// `snd_nxt` after a timeout rewinds the send pointer).
    snd_max: u64,
    dupacks: u32,
    /// NewReno recovery point (stream offset) while in fast recovery.
    recover: Option<u64>,
    /// Pending head retransmission (fast retransmit or partial ACK).
    rtx_head_pending: bool,
    rtt_probe: Option<RttProbe>,
    srtt: Option<Nanos>,
    rttvar: Nanos,
    rto: Nanos,
    rto_deadline: Option<Nanos>,
    backoff: u32,
    retransmitted_segments: u64,
    timeouts: u64,
}

impl ReliableDelivery {
    /// Fresh send-side state with the RFC 6298 initial RTO floor.
    pub fn new(rto_min: Nanos) -> ReliableDelivery {
        ReliableDelivery {
            stream_len: 0,
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            dupacks: 0,
            recover: None,
            rtx_head_pending: false,
            rtt_probe: None,
            srtt: None,
            rttvar: 0,
            rto: rto_min.max(acdc_stats::time::MILLISECOND),
            rto_deadline: None,
            backoff: 0,
            retransmitted_segments: 0,
            timeouts: 0,
        }
    }

    // ---- views -------------------------------------------------------

    /// Total stream bytes the application asked to send.
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// First unacknowledged stream offset.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next stream offset to send.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// Highest stream offset ever sent.
    pub fn snd_max(&self) -> u64 {
        self.snd_max
    }

    /// Bytes in flight.
    pub fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Consecutive duplicate ACKs seen at `snd_una`.
    pub fn dupacks(&self) -> u32 {
        self.dupacks
    }

    /// NewReno recovery point, while in fast recovery.
    pub fn recover(&self) -> Option<u64> {
        self.recover
    }

    /// Smoothed RTT estimate, if sampled yet.
    pub fn srtt(&self) -> Option<Nanos> {
        self.srtt
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Nanos {
        self.rto
    }

    /// Armed retransmission deadline, if any.
    pub fn rto_deadline(&self) -> Option<Nanos> {
        self.rto_deadline
    }

    /// Current RTO backoff exponent.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// Segments retransmitted (fast or timeout-driven).
    pub fn retransmitted_segments(&self) -> u64 {
        self.retransmitted_segments
    }

    /// Retransmission-timeout count.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    // ---- application stream -----------------------------------------

    /// Accept `bytes` of application data into the send stream.
    pub fn enqueue(&mut self, bytes: u64) {
        self.stream_len += bytes;
    }

    /// Truncate the stream at the highest offset already sent (used by
    /// the harness to end long-lived flows; in-flight data completes).
    pub fn truncate_unsent(&mut self) {
        self.stream_len = self.stream_len.min(self.snd_max.max(self.snd_nxt));
    }

    // ---- RTO timer ---------------------------------------------------

    /// Arm (or re-arm) the retransmission timer with the current backoff.
    pub fn arm_rto(&mut self, now: Nanos, rto_max: Nanos) {
        let rto = self.rto << self.backoff.min(10);
        self.rto_deadline = Some(now + rto.min(rto_max));
    }

    /// Disarm the retransmission timer and reset the backoff (nothing is
    /// outstanding).
    pub fn disarm_rto(&mut self) {
        self.rto_deadline = None;
        self.backoff = 0;
    }

    /// Clear the armed deadline without touching the backoff (timer fire
    /// or teardown).
    pub fn clear_rto_deadline(&mut self) {
        self.rto_deadline = None;
    }

    /// Bump the backoff exponent after an unanswered handshake packet.
    pub fn bump_backoff(&mut self) {
        self.backoff += 1;
    }

    // ---- RTT estimation ---------------------------------------------

    /// Fold one RTT sample into the RFC 6298 estimator and recompute the
    /// RTO within `[rto_min, rto_max]`.
    pub fn take_rtt_sample(&mut self, sample: Nanos, rto_min: Nanos, rto_max: Nanos) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let diff = srtt.abs_diff(sample);
                self.rttvar = (3 * self.rttvar + diff) / 4;
                self.srtt = Some((7 * srtt + sample) / 8);
            }
        }
        let srtt = self.srtt.unwrap();
        self.rto = (srtt + (4 * self.rttvar).max(acdc_stats::time::MILLISECOND / 1000))
            .max(rto_min)
            .min(rto_max);
    }

    /// Arm an RTT probe on freshly sent data ending at `end_off`, unless
    /// one is already outstanding (Karn: one sample at a time).
    pub fn maybe_arm_rtt_probe(&mut self, now: Nanos, end_off: u64) {
        if self.rtt_probe.is_none() {
            self.rtt_probe = Some(RttProbe {
                end_off,
                sent_at: now,
            });
        }
    }

    /// Sample the RTT from the outstanding probe if the cumulative ACK
    /// has covered it.
    pub fn sample_rtt_from_probe(&mut self, now: Nanos, rto_min: Nanos, rto_max: Nanos) {
        if let Some(p) = self.rtt_probe {
            if self.snd_una >= p.end_off {
                let sample = now - p.sent_at;
                self.take_rtt_sample(sample, rto_min, rto_max);
                self.rtt_probe = None;
            }
        }
    }

    // ---- ACK processing ---------------------------------------------

    /// Count a duplicate ACK; returns the new count.
    pub fn register_dupack(&mut self) -> u32 {
        self.dupacks += 1;
        self.dupacks
    }

    /// Enter NewReno fast recovery: record the recovery point, queue the
    /// head retransmission, and discard the RTT probe (Karn).
    pub fn enter_fast_recovery(&mut self) {
        self.recover = Some(self.snd_nxt);
        self.rtx_head_pending = true;
        self.rtt_probe = None;
    }

    /// Advance `snd_una` for a cumulative ACK at `ack_off`. The ACK may
    /// cover data sent before a timeout rewound `snd_nxt`; the send
    /// pointer is pulled forward so bytes the receiver already has are
    /// not retransmitted. Forward progress resets the duplicate-ACK
    /// count and the RTO backoff.
    pub fn advance_una(&mut self, ack_off: u64) {
        self.snd_una = ack_off.min(self.snd_max);
        self.snd_nxt = self.snd_nxt.max(self.snd_una);
        crate::strict_invariant!(
            self.snd_una <= self.snd_nxt && self.snd_nxt <= self.snd_max,
            "send pointers out of order: una={} nxt={} max={}",
            self.snd_una,
            self.snd_nxt,
            self.snd_max
        );
        self.dupacks = 0;
        self.backoff = 0;
    }

    /// NewReno bookkeeping after forward ACK progress: leave recovery at
    /// the recovery point, or retransmit the next hole on a partial ACK.
    pub fn newreno_post_ack(&mut self) {
        if let Some(recover) = self.recover {
            if self.snd_una >= recover {
                self.recover = None;
            } else {
                self.rtx_head_pending = true;
                self.retransmitted_segments += 1;
            }
        }
    }

    // ---- timeout recovery -------------------------------------------

    /// Retransmission timeout: go-back-N. Rewinds the send pointer to
    /// `snd_una` (everything is resent as the window reopens), clears
    /// the fast-recovery state and the RTT probe (Karn), and bumps the
    /// backoff. The caller notifies congestion control and the FIN
    /// accounting separately.
    pub fn on_timeout_rewind(&mut self) {
        self.timeouts += 1;
        self.snd_nxt = self.snd_una;
        self.dupacks = 0;
        self.recover = None;
        self.rtx_head_pending = false;
        self.rtt_probe = None; // Karn
        self.retransmitted_segments += 1;
        self.backoff += 1;
    }

    // ---- transmission ------------------------------------------------

    /// Consume a pending head retransmission. Returns the retransmit
    /// length (bounded by `mss` and the outstanding span) when one is
    /// due, clearing the pending flag either way.
    pub fn take_rtx_head(&mut self, mss: u32) -> Option<u64> {
        let due = self.rtx_head_pending && self.snd_nxt > self.snd_una;
        self.rtx_head_pending = false;
        if due {
            self.retransmitted_segments += 1;
            Some((self.snd_nxt - self.snd_una).min(u64::from(mss)))
        } else {
            None
        }
    }

    /// Extend the sent span by one byte for a zero-window probe, if the
    /// probe byte is not already outstanding.
    pub fn extend_for_probe(&mut self) {
        if self.snd_nxt == self.snd_una {
            self.snd_nxt += 1;
            self.snd_max = self.snd_max.max(self.snd_nxt);
        }
    }

    /// Advance the send pointer over `len` freshly sent bytes; returns
    /// the offset the segment starts at.
    pub fn advance_nxt(&mut self, len: u64) -> u64 {
        let off = self.snd_nxt;
        self.snd_nxt += len;
        self.snd_max = self.snd_max.max(self.snd_nxt);
        off
    }
}
