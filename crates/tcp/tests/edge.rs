//! Edge-case tests for the TCP endpoint, driven by direct segment
//! exchange (no simulator).

use acdc_cc::CcKind;
use acdc_packet::{Ecn, Ipv4Repr, Segment, SeqNumber, TcpFlags, TcpRepr, PROTO_TCP};
use acdc_stats::time::{MILLISECOND, SECOND};
use acdc_tcp::{Endpoint, TcpConfig, TcpState};

const A_IP: [u8; 4] = [10, 0, 0, 1];
const B_IP: [u8; 4] = [10, 0, 0, 2];

fn cfg_a(cc: CcKind) -> TcpConfig {
    let mut c = TcpConfig::new(A_IP, 40_000, B_IP, 5_001, 1448, cc);
    c.iss = 100;
    c
}

fn cfg_b(cc: CcKind) -> TcpConfig {
    let mut c = TcpConfig::new(B_IP, 5_001, A_IP, 40_000, 1448, cc);
    c.iss = 900_000;
    c
}

/// Exchange everything both endpoints currently want to send.
fn exchange(now: u64, a: &mut Endpoint, b: &mut Endpoint) {
    loop {
        let mut moved = false;
        while let Some(s) = a.poll_transmit(now) {
            b.on_segment(now, &s);
            moved = true;
        }
        while let Some(s) = b.poll_transmit(now) {
            a.on_segment(now, &s);
            moved = true;
        }
        if !moved {
            break;
        }
    }
}

fn established_pair(cc: CcKind) -> (Endpoint, Endpoint) {
    let mut a = Endpoint::new_active(cfg_a(cc));
    let mut b = Endpoint::new_passive(cfg_b(cc));
    a.open(0);
    exchange(0, &mut a, &mut b);
    assert!(a.is_established() && b.is_established());
    (a, b)
}

#[test]
fn rst_tears_down_immediately() {
    let (mut a, _b) = established_pair(CcKind::Cubic);
    let mut t = TcpRepr::new(5_001, 40_000);
    t.flags = TcpFlags::RST;
    t.seq = SeqNumber(900_001);
    let rst = Segment::new_tcp(
        Ipv4Repr {
            src_addr: B_IP,
            dst_addr: A_IP,
            protocol: PROTO_TCP,
            ecn: Ecn::NotEct,
            payload_len: 0,
            ttl: 64,
        },
        t,
        0,
    );
    a.on_segment(1_000, &rst);
    assert_eq!(a.state(), TcpState::Closed);
    assert!(
        a.poll_transmit(2_000).is_none(),
        "closed endpoints are quiet"
    );
}

#[test]
fn syn_is_retransmitted_with_backoff() {
    let mut a = Endpoint::new_active(cfg_a(CcKind::Reno));
    a.open(0);
    let s1 = a.poll_transmit(0).expect("first SYN");
    assert!(s1.tcp_flags().contains(TcpFlags::SYN));
    assert!(a.poll_transmit(0).is_none());

    // No SYN-ACK: the timer must re-arm with exponential backoff.
    let t1 = a.next_timer().expect("rto armed");
    a.on_timer(t1);
    let s2 = a.poll_transmit(t1).expect("retransmitted SYN");
    assert!(s2.tcp_flags().contains(TcpFlags::SYN));
    let t2 = a.next_timer().expect("rto re-armed");
    assert!(
        t2 - t1 > t1,
        "backoff must grow: first at {t1}, second after {}",
        t2 - t1
    );
}

#[test]
fn window_scale_is_clamped_to_14() {
    let mut a = Endpoint::new_active(cfg_a(CcKind::Cubic));
    let mut b = Endpoint::new_passive(cfg_b(CcKind::Cubic));
    a.open(0);
    let syn = a.poll_transmit(0).unwrap();
    // Tamper: replace the window-scale option with an illegal 30.
    let mut repr = syn.tcp_repr().unwrap();
    for o in &mut repr.options {
        if let acdc_packet::TcpOption::WindowScale(w) = o {
            *w = 30;
        }
    }
    let ip = Ipv4Repr::parse(&syn.ip()).unwrap();
    let tampered = Segment::new_tcp(ip, repr, 0);
    b.on_segment(1, &tampered);
    // RFC 7323: receivers clamp the shift to 14.
    exchange(2, &mut a, &mut b);
    a.send(10_000);
    exchange(3, &mut a, &mut b);
    assert_eq!(b.delivered_bytes(), 10_000);
}

#[test]
fn delayed_ack_fires_on_timer() {
    let (mut a, mut b) = established_pair(CcKind::Cubic);
    a.send(100); // less than delack_segs segments
    while let Some(s) = a.poll_transmit(1_000) {
        b.on_segment(1_000, &s);
    }
    // b holds the ACK (1 small segment < delack threshold)...
    assert!(b.poll_transmit(1_000).is_none(), "ACK delayed");
    let t = b.next_timer().expect("delack timer armed");
    assert!(t <= 1_000 + 2 * MILLISECOND);
    b.on_timer(t);
    let ack = b.poll_transmit(t).expect("delayed ACK emitted");
    assert!(ack.is_pure_ack());
    a.on_segment(t + 10, &ack);
    assert_eq!(a.acked_bytes(), 100);
}

#[test]
fn stop_sending_truncates_cleanly() {
    let (mut a, mut b) = established_pair(CcKind::Cubic);
    a.send(1 << 30); // "unlimited"
                     // Move some of it.
    for round in 0..50u64 {
        exchange(10_000 + round * 100, &mut a, &mut b);
    }
    let delivered = b.delivered_bytes();
    assert!(delivered > 0);
    a.stop_sending();
    // Drain whatever remains in flight.
    for round in 0..50u64 {
        exchange(1_000_000 + round * 100, &mut a, &mut b);
    }
    let final_delivered = b.delivered_bytes();
    assert_eq!(a.acked_bytes(), final_delivered);
    // And nothing more ever comes.
    exchange(2_000_000, &mut a, &mut b);
    assert_eq!(b.delivered_bytes(), final_delivered);
}

#[test]
fn zero_window_blocks_sending() {
    let (mut a, mut b) = established_pair(CcKind::Cubic);
    a.send(100_000);
    // Fabricate an ACK advertising a zero window.
    let mut t = TcpRepr::new(5_001, 40_000);
    t.flags = TcpFlags::ACK;
    t.seq = SeqNumber(900_001);
    t.ack = SeqNumber(101); // acks nothing new (handshake only)
    t.window = 0;
    let zwin = Segment::new_tcp(
        Ipv4Repr {
            src_addr: B_IP,
            dst_addr: A_IP,
            protocol: PROTO_TCP,
            ecn: Ecn::NotEct,
            payload_len: 0,
            ttl: 64,
        },
        t,
        0,
    );
    a.on_segment(1_000, &zwin);
    assert_eq!(a.peer_rwnd(), 0);
    assert!(
        a.poll_transmit(1_001).is_none(),
        "no data may move into a zero window"
    );
    let _ = &mut b;
}

#[test]
fn duplicate_data_is_reacked_not_redelivered() {
    let (mut a, mut b) = established_pair(CcKind::Cubic);
    a.send(1448);
    let data = a.poll_transmit(100).expect("one segment");
    b.on_segment(200, &data);
    let first = b.delivered_bytes();
    // Deliver the exact same segment again (network duplication).
    b.on_segment(300, &data);
    assert_eq!(b.delivered_bytes(), first, "no double delivery");
    let ack = b.poll_transmit(300).expect("immediate re-ACK");
    assert!(ack.is_pure_ack());
}

#[test]
fn srtt_and_rto_converge_with_clean_samples() {
    let (mut a, mut b) = established_pair(CcKind::Reno);
    let mut now = 0u64;
    for _ in 0..50 {
        a.send(1448);
        while let Some(s) = a.poll_transmit(now) {
            b.on_segment(now + 200_000, &s); // 200 µs one way
        }
        now += 400_000;
        while let Some(s) = b.poll_transmit(now) {
            a.on_segment(now, &s);
        }
        now += 100_000;
    }
    let srtt = a.srtt().expect("samples taken");
    // Path RTT is 400 µs; delayed ACKs (single small segments) add up to
    // one driver round, so the estimate sits between the two.
    assert!(
        (300_000..=1_000_000).contains(&srtt),
        "srtt {srtt} should be ≈400–900 µs"
    );
    assert_eq!(a.rto(), 10 * MILLISECOND, "RTOmin floor binds");
    assert!(a.rto() < SECOND);
}

#[test]
fn zero_window_probe_recovers_from_lost_window_update() {
    let (mut a, mut b) = established_pair(CcKind::Cubic);
    a.send(100_000);
    // Peer slams the window shut.
    let mut t = TcpRepr::new(5_001, 40_000);
    t.flags = TcpFlags::ACK;
    t.seq = SeqNumber(900_001);
    t.ack = SeqNumber(101);
    t.window = 0;
    let ip = Ipv4Repr {
        src_addr: B_IP,
        dst_addr: A_IP,
        protocol: PROTO_TCP,
        ecn: Ecn::NotEct,
        payload_len: 0,
        ttl: 64,
    };
    a.on_segment(1_000, &Segment::new_tcp(ip, t.clone(), 0));
    assert_eq!(a.peer_rwnd(), 0);
    assert!(a.poll_transmit(1_001).is_none());

    // The persist timer must be armed and, on expiry, emit a 1-byte probe.
    let probe_at = a.next_timer().expect("persist timer armed");
    a.on_timer(probe_at);
    let probe = a.poll_transmit(probe_at).expect("window probe emitted");
    assert_eq!(probe.payload_len(), 1, "1-byte probe past the window");

    // The reopening ACK (the lost window update's retransmission) covers
    // the probe byte and reopens the window; data flows again.
    let mut reopen = t;
    reopen.ack = SeqNumber(102); // probe byte consumed
    reopen.window = 60_000;
    a.on_segment(probe_at + 1_000, &Segment::new_tcp(ip, reopen, 0));
    assert!(a.peer_rwnd() > 0);
    let next = a
        .poll_transmit(probe_at + 1_001)
        .expect("data resumes after reopen");
    assert!(next.payload_len() > 1);
    // Persist timer cancelled: the only timer left is the RTO.
    let _ = &mut b;
}

#[test]
fn persist_probe_backs_off_exponentially() {
    let (mut a, _b) = established_pair(CcKind::Cubic);
    a.send(50_000);
    let mut t = TcpRepr::new(5_001, 40_000);
    t.flags = TcpFlags::ACK;
    t.seq = SeqNumber(900_001);
    t.ack = SeqNumber(101);
    t.window = 0;
    let ip = Ipv4Repr {
        src_addr: B_IP,
        dst_addr: A_IP,
        protocol: PROTO_TCP,
        ecn: Ecn::NotEct,
        payload_len: 0,
        ttl: 64,
    };
    a.on_segment(1_000, &Segment::new_tcp(ip, t, 0));
    let t1 = a.next_timer().unwrap();
    a.on_timer(t1);
    let _probe1 = a.poll_transmit(t1);
    let t2 = a.next_timer().unwrap();
    a.on_timer(t2);
    let t3 = a.next_timer().unwrap();
    assert!(
        t3 - t2 > t2 - t1,
        "persist interval must back off: {} then {}",
        t2 - t1,
        t3 - t2
    );
}
