//! Per-component property tests for the decomposed endpoint: the
//! [`ReliableDelivery`] send-pointer invariants and the [`Receive`]
//! out-of-order range invariants, mirroring the `strict-invariants`
//! debug asserts but driven by arbitrary operation sequences instead of
//! full transfers (those live in `props.rs`).
//!
//! The components are exercised directly — no pipe, no packets — so a
//! violated invariant pins the owning module, not the orchestration.

use acdc_stats::time::{Nanos, MILLISECOND};
use acdc_tcp::receive::Receive;
use acdc_tcp::reliable::ReliableDelivery;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// ReliableDelivery: snd_una ≤ snd_nxt ≤ snd_max, always
// ---------------------------------------------------------------------

/// One abstract send-side event. ACK offsets and send lengths are drawn
/// relative to the current pointer positions inside `apply`, so every
/// generated sequence is a plausible connection history.
#[derive(Debug, Clone)]
enum SendOp {
    /// Enqueue application bytes.
    Enqueue(u64),
    /// Transmit up to `len` new bytes (clamped to the stream).
    Send(u64),
    /// A cumulative ACK covering `frac`/255 of the outstanding span.
    Ack(u8),
    /// Three duplicate ACKs → enter fast recovery.
    FastRecovery,
    /// Retransmission timeout: go-back-N rewind.
    Timeout,
    /// A zero-window probe extends the sent span by one byte.
    Probe,
    /// The head retransmission is consumed by the poll loop.
    TakeRtx,
}

fn send_op() -> impl Strategy<Value = SendOp> {
    prop_oneof![
        (1u64..100_000).prop_map(SendOp::Enqueue),
        (1u64..20_000).prop_map(SendOp::Send),
        any::<u8>().prop_map(SendOp::Ack),
        Just(SendOp::FastRecovery),
        Just(SendOp::Timeout),
        Just(SendOp::Probe),
        Just(SendOp::TakeRtx),
    ]
}

fn apply(rel: &mut ReliableDelivery, op: &SendOp, now: Nanos) {
    match *op {
        SendOp::Enqueue(n) => rel.enqueue(n),
        SendOp::Send(len) => {
            let sendable = rel.stream_len().saturating_sub(rel.snd_nxt());
            let len = len.min(sendable);
            if len > 0 {
                let off = rel.advance_nxt(len);
                rel.maybe_arm_rtt_probe(now, off + len);
            }
        }
        SendOp::Ack(frac) => {
            let span = rel.snd_max() - rel.snd_una();
            let ack_off = rel.snd_una() + span * u64::from(frac) / 255;
            if ack_off > rel.snd_una() {
                rel.advance_una(ack_off);
                rel.sample_rtt_from_probe(now, 10 * MILLISECOND, 640 * MILLISECOND);
                rel.newreno_post_ack();
            } else if rel.snd_nxt() > rel.snd_una() {
                rel.register_dupack();
            }
        }
        SendOp::FastRecovery => {
            if rel.snd_nxt() > rel.snd_una() && rel.recover().is_none() {
                rel.enter_fast_recovery();
            }
        }
        SendOp::Timeout => {
            if rel.snd_nxt() > rel.snd_una() {
                rel.on_timeout_rewind();
            }
        }
        SendOp::Probe => rel.extend_for_probe(),
        SendOp::TakeRtx => {
            let _ = rel.take_rtx_head(1448);
        }
    }
}

proptest! {
    /// The send pointers stay ordered (`snd_una ≤ snd_nxt ≤ snd_max`)
    /// and within the probe-extended stream across any interleaving of
    /// sends, cumulative ACKs, fast-recovery entries, timeout rewinds
    /// and window probes.
    #[test]
    fn reliable_pointers_stay_ordered(ops in prop::collection::vec(send_op(), 1..80)) {
        let mut rel = ReliableDelivery::new(10 * MILLISECOND);
        let mut now: Nanos = 0;
        for op in &ops {
            now += 100; // strictly increasing clock
            apply(&mut rel, op, now);
            prop_assert!(
                rel.snd_una() <= rel.snd_nxt(),
                "snd_una {} > snd_nxt {} after {:?}",
                rel.snd_una(), rel.snd_nxt(), op
            );
            prop_assert!(
                rel.snd_nxt() <= rel.snd_max(),
                "snd_nxt {} > snd_max {} after {:?}",
                rel.snd_nxt(), rel.snd_max(), op
            );
            // The sent span never outruns the stream by more than the
            // single zero-window probe byte.
            prop_assert!(
                rel.snd_max() <= rel.stream_len() + 1,
                "snd_max {} beyond stream {} + probe after {:?}",
                rel.snd_max(), rel.stream_len(), op
            );
            prop_assert_eq!(rel.in_flight(), rel.snd_nxt() - rel.snd_una());
        }
    }

    /// A timeout rewind parks `snd_nxt` exactly at `snd_una` and clears
    /// the recovery state; subsequent full ACK of `snd_max` restores a
    /// quiescent sender.
    #[test]
    fn timeout_rewind_then_full_ack_quiesces(
        ops in prop::collection::vec(send_op(), 1..40),
    ) {
        let mut rel = ReliableDelivery::new(10 * MILLISECOND);
        let mut now: Nanos = 0;
        for op in &ops {
            now += 100;
            apply(&mut rel, op, now);
        }
        if rel.snd_nxt() > rel.snd_una() {
            rel.on_timeout_rewind();
            prop_assert_eq!(rel.snd_nxt(), rel.snd_una());
            prop_assert!(rel.recover().is_none());
        }
        if rel.snd_max() > rel.snd_una() {
            rel.advance_una(rel.snd_max());
        }
        prop_assert_eq!(rel.in_flight(), 0);
        prop_assert_eq!(rel.dupacks(), 0);
        prop_assert_eq!(rel.backoff(), 0);
    }
}

// ---------------------------------------------------------------------
// Receive: OOO ranges sorted, disjoint, merge-correct
// ---------------------------------------------------------------------

/// Check the out-of-order set is sorted, non-empty-per-range, disjoint
/// and non-adjacent-to-rcv_nxt (anything touching `rcv_nxt` must have
/// been drained).
fn assert_ooo_invariants(rcv: &Receive) {
    let ranges = rcv.ooo_ranges();
    let mut prev_end: Option<u64> = None;
    for &(s, e) in ranges {
        prop_assert!(s < e, "empty/inverted range ({s}, {e})");
        prop_assert!(
            s > rcv.rcv_nxt(),
            "range ({s}, {e}) at/below rcv_nxt {} must have drained",
            rcv.rcv_nxt()
        );
        if let Some(p) = prev_end {
            prop_assert!(s > p, "ranges unsorted or overlapping: {s} after end {p}");
        }
        prev_end = Some(e);
    }
}

proptest! {
    /// Feeding arbitrary (possibly overlapping, duplicate, out-of-order)
    /// spans keeps the OOO set sorted and disjoint, never moves
    /// `rcv_nxt` backwards, and — once every byte of a contiguous prefix
    /// has been offered — delivers exactly that prefix.
    #[test]
    fn ooo_ranges_stay_sorted_disjoint(
        spans in prop::collection::vec((0u64..2_000, 1u64..600), 1..60),
    ) {
        let mut rcv = Receive::new();
        let mut offered_end: u64 = 0;
        let mut prev_rcv_nxt: u64 = 0;
        let mut now: Nanos = 0;
        for &(start, len) in &spans {
            now += 1_000;
            rcv.accept(start as i64, len, now, 2, MILLISECOND);
            offered_end = offered_end.max(start + len);
            prop_assert!(rcv.rcv_nxt() >= prev_rcv_nxt, "rcv_nxt moved backwards");
            prev_rcv_nxt = rcv.rcv_nxt();
            assert_ooo_invariants(&rcv);
            prop_assert!(rcv.rcv_nxt() <= offered_end);
        }
        // Offer the full prefix in order: everything must drain.
        let mut off = 0;
        while off < offered_end {
            let len = 500u64.min(offered_end - off);
            now += 1_000;
            rcv.accept(off as i64, len, now, 2, MILLISECOND);
            off += len;
        }
        prop_assert_eq!(rcv.rcv_nxt(), offered_end, "prefix not fully delivered");
        prop_assert!(rcv.ooo_ranges().is_empty(), "OOO residue after full delivery");
    }

    /// Delivered bytes equal the union of offered spans clipped at the
    /// first hole: the component neither invents nor loses data.
    #[test]
    fn rcv_nxt_matches_contiguous_union(
        spans in prop::collection::vec((0u64..1_000, 1u64..300), 1..40),
    ) {
        let mut rcv = Receive::new();
        let mut now: Nanos = 0;
        for &(start, len) in &spans {
            now += 1_000;
            rcv.accept(start as i64, len, now, 2, MILLISECOND);
        }
        // Reference model: byte-set union, then longest contiguous prefix.
        let max_end = spans.iter().map(|&(s, l)| s + l).max().unwrap() as usize;
        let mut covered = vec![false; max_end];
        for &(s, l) in &spans {
            for b in s..s + l {
                covered[b as usize] = true;
            }
        }
        let expect = covered.iter().take_while(|&&c| c).count() as u64;
        prop_assert_eq!(rcv.rcv_nxt(), expect);
        assert_ooo_invariants(&rcv);
    }
}
